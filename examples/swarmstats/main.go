// Swarmstats: computes the paper's instance parameters (ℓ*, ρ*, ξ) for
// several swarm families and shows Proposition 1's chain
// ℓ* ≤ ρ* ≤ ξ ≤ n·ℓ* holding on each, along with the makespan models the
// parameters feed. A small tour of the analytics behind the algorithms.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"text/tabwriter"

	"freezetag"
)

func main() {
	rng := rand.New(rand.NewSource(2024))
	families := []*freezetag.Instance{
		freezetag.Line(40, 1.5),                  // maximal eccentricity
		freezetag.GridSwarm(7, 2),                // dense lattice
		freezetag.RandomWalk(rng, 60, 0.8),       // organic swarm
		freezetag.UniformDisk(rng, 80, 6),        // dense disk
		freezetag.ClusterChain(rng, 4, 8, 5, .7), // sparse clusters
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "family\tn\tℓ*\tρ*\tξ\tn·ℓ*\tProp.1 ok\tASep model\tAGrid model")
	for _, in := range families {
		p := freezetag.ParamsOf(in)
		ok := p.Ell <= p.Rho+1e-9 && p.Rho <= p.Xi+1e-9 && p.Xi <= float64(p.N)*p.Ell+1e-9
		asep := p.Rho + p.Ell*p.Ell*math.Log2(math.Max(2, p.Rho/p.Ell))
		agrid := p.Ell * p.Xi
		fmt.Fprintf(w, "%s\t%d\t%.2f\t%.2f\t%.2f\t%.2f\t%v\t%.1f\t%.1f\n",
			in.Name, p.N, p.Ell, p.Rho, p.Xi, float64(p.N)*p.Ell, ok, asep, agrid)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nASep model = ρ + ℓ²·lg(ρ/ℓ)   (Theorem 1's makespan shape)")
	fmt.Println("AGrid model = ℓ·ξ              (Theorem 4's makespan shape)")
	fmt.Println("Smaller ℓ* favors AGrid; spread-out swarms (large ξ) favor ASeparator.")
}
