// Adversarial: demonstrates the paper's two lower-bound constructions.
//
//  1. Theorem 2: a replay adversary hides one robot per disk of the ℓ/2-grid
//     at the spot the algorithm sweeps last, forcing Ω(ρ + ℓ²log(ρ/ℓ))
//     makespan out of ASeparator.
//  2. Theorem 3: with a budget below π(ℓ²−1)/2 the source provably cannot
//     even find a single adversarially placed robot in its ℓ-ball.
package main

import (
	"fmt"
	"log"

	"freezetag/internal/adversary"
	"freezetag/internal/dftp"
	"freezetag/internal/instance"
)

func main() {
	// --- Theorem 2 ------------------------------------------------------
	rho, ell := 12.0, 2.0
	n := int(rho * rho / (ell * ell))
	fmt.Printf("Theorem 2 replay adversary (ρ=%g, ℓ=%g, %d hidden robots)\n", rho, ell, n)

	base := instance.CentersOnly(rho, ell, n)
	tup := dftp.Tuple{Ell: ell, Rho: rho, N: base.N()}
	easy, _, err := dftp.Solve(dftp.ASeparator{}, base, tup, 0)
	if err != nil {
		log.Fatal(err)
	}
	hard, err := adversary.Theorem2(dftp.ASeparator{}, rho, ell, n, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  friendly placement (disk centers): makespan %.1f\n", easy.Makespan)
	fmt.Printf("  adversarial placement (replay):    makespan %.1f\n", hard.Makespan)
	fmt.Printf("  lower-bound model ρ+ℓ²lg(ρ/ℓ):     %.1f\n\n", rho+ell*ell*2.58)

	// --- Theorem 3 ------------------------------------------------------
	ell3 := 6.0
	fmt.Printf("Theorem 3 energy threshold (ℓ=%g, threshold π(ℓ²−1)/2 ≈ %.1f)\n",
		ell3, 3.14159*(ell3*ell3-1)/2)
	for _, mult := range []float64{0.25, 0.5, 1.0, 8.0, 14.0} {
		res := adversary.Theorem3(ell3, mult*res3Threshold(ell3))
		verdict := "robot NOT found — budget below the discovery bound"
		if res.Found {
			verdict = fmt.Sprintf("robot found after %.1f distance", res.Energy)
		}
		fmt.Printf("  budget %6.1f (%.2f× threshold): %s\n", res.Budget, mult, verdict)
	}
}

func res3Threshold(ell float64) float64 { return 3.14159265 * (ell*ell - 1) / 2 }
