// Quickstart: wake up a random swarm of 40 sleeping robots with ASeparator
// and print the run metrics — the smallest end-to-end use of the library's
// public API (instance generation → algorithm → simulation).
package main

import (
	"fmt"
	"log"
	"math/rand"

	"freezetag"
)

func main() {
	// A swarm laid out by a random walk from the source: dense, organic,
	// and ℓ-connected by construction.
	rng := rand.New(rand.NewSource(42))
	swarm := freezetag.RandomWalk(rng, 40, 0.9)

	// The tuple (ℓ, ρ, n) is the knowledge the source starts with; derive
	// an admissible one from the instance's exact parameters.
	tup := freezetag.TupleFor(swarm)
	fmt.Printf("swarm %q: n=%d, tuple (ℓ=%.3g, ρ=%.3g)\n",
		swarm.Name, swarm.N(), tup.Ell, tup.Rho)

	res, rep, err := freezetag.Solve(freezetag.ASeparator, swarm, tup, 0 /* unlimited energy */)
	if err != nil {
		log.Fatalf("simulation failed: %v", err)
	}
	if !res.AllAwake {
		log.Fatalf("algorithm left %d robots asleep", swarm.N()-res.Awakened)
	}
	fmt.Printf("all %d robots awake\n", res.Awakened)
	fmt.Printf("makespan:      %.2f (time of the last wake-up)\n", res.Makespan)
	fmt.Printf("max energy:    %.2f (longest distance moved by one robot)\n", res.MaxEnergy)
	fmt.Printf("total energy:  %.2f\n", res.TotalEnergy)
	fmt.Printf("rounds:        %d\n", rep.Rounds)
}
