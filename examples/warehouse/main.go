// Warehouse: an aisle-structured robot fleet must be woken under a per-robot
// energy budget — the scenario motivating the paper's energy-constrained
// algorithms. AGrid runs on the minimum budget Θ(ℓ²); AWave spends more
// energy for a much better makespan once the fleet is spread out; and a
// starved budget below the Theorem 3 threshold cannot even get started.
package main

import (
	"fmt"
	"log"

	"freezetag"
)

// buildWarehouse lays robots along aisles: `aisles` columns of `perAisle`
// robots with `pitch` spacing, aisle spacing `gap`, plus a cross-aisle rail
// at the top connecting the aisles. The docking station (source) sits at the
// origin, at the head of the first aisle.
func buildWarehouse(aisles, perAisle int, pitch, gap float64) *freezetag.Instance {
	var pts []freezetag.Point
	for a := 0; a < aisles; a++ {
		x := float64(a) * gap
		for i := 1; i <= perAisle; i++ {
			pts = append(pts, freezetag.Pt(x, float64(i)*pitch))
		}
	}
	top := float64(perAisle) * pitch
	for a := 0; a < aisles-1; a++ {
		x := float64(a) * gap
		for s := pitch; s < gap; s += pitch {
			pts = append(pts, freezetag.Pt(x+s, top))
		}
	}
	return freezetag.NewInstance("warehouse", freezetag.Pt(0, 0), pts)
}

func main() {
	fleet := buildWarehouse(4, 12, 1.0, 4.0)
	p := freezetag.ParamsOf(fleet)
	tup := freezetag.TupleFor(fleet)
	fmt.Printf("warehouse fleet: n=%d, ℓ*=%.3g, ρ*=%.3g, ξ=%.3g\n",
		fleet.N(), p.Ell, p.Rho, p.Xi)

	// AGrid on the paper's minimal energy regime Θ(ℓ²).
	r := 2 * tup.Ell
	gridBudget := 10 * (r*r + 20*r)
	res, _, err := freezetag.Solve(freezetag.AGrid, fleet, tup, gridBudget)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAGrid  (budget %.0f = Θ(ℓ²)):\n", gridBudget)
	fmt.Printf("  all awake: %v, makespan %.1f, max energy %.1f\n",
		res.AllAwake, res.Makespan, res.MaxEnergy)

	// AWave with its Θ(ℓ²logℓ) energy appetite.
	res2, _, err := freezetag.Solve(freezetag.AWave, fleet, tup, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAWave (energy Θ(ℓ²logℓ)):\n")
	fmt.Printf("  all awake: %v, makespan %.1f, max energy %.1f\n",
		res2.AllAwake, res2.Makespan, res2.MaxEnergy)

	// Starving AGrid demonstrates the Theorem 3 regime: with too little
	// energy the fleet cannot even be discovered.
	tiny := tup.Ell * tup.Ell / 2
	res3, _, err := freezetag.Solve(freezetag.AGrid, fleet, tup, tiny)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nAGrid starved (budget %.1f < π(ℓ²−1)/2):\n", tiny)
	fmt.Printf("  all awake: %v (awakened %d/%d), %d robots halted out of energy\n",
		res3.AllAwake, res3.Awakened, fleet.N(), len(res3.Violations))
}
