// Search-and-rescue: beacons are scattered in sparse clusters across a wide
// area (large ℓ relative to the density) and one active unit must activate
// them all. The example compares all four algorithms on the same swarm —
// makespan, per-robot energy, and the trade-off Table 1 predicts:
// ASeparator wins on makespan with unbounded energy, AGrid spends the least
// energy, AWave sits in between, and ASeparatorAuto pays a constant factor
// for not knowing ρ.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"text/tabwriter"

	"freezetag"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	// Three camps of beacons strung along a ridge, 6 units apart.
	swarm := freezetag.ClusterChain(rng, 3, 10, 6.0, 1.0)
	p := freezetag.ParamsOf(swarm)
	tup := freezetag.TupleFor(swarm)
	fmt.Printf("beacon field: n=%d, ℓ*=%.3g, ρ*=%.3g, ξ=%.3g\n\n",
		swarm.N(), p.Ell, p.Rho, p.Xi)

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "algorithm\tmakespan\tmax energy\ttotal energy\trounds")
	algs := []freezetag.Algorithm{
		freezetag.ASeparator, freezetag.ASeparatorAuto,
		freezetag.AGrid, freezetag.AWave,
	}
	for _, alg := range algs {
		res, rep, err := freezetag.Solve(alg, swarm, tup, 0)
		if err != nil {
			log.Fatalf("%s: %v", alg.Name(), err)
		}
		if !res.AllAwake {
			log.Fatalf("%s left beacons dark", alg.Name())
		}
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.1f\t%d\n",
			alg.Name(), res.Makespan, res.MaxEnergy, res.TotalEnergy, rep.Rounds)
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nTable 1's trade-off: AGrid minimizes per-robot energy, ASeparator")
	fmt.Println("minimizes makespan, AWave trades a log factor of energy for speed,")
	fmt.Println("and ASeparatorAuto needs only ℓ at a constant-factor cost (§5).")
}
