package freezetag_test

import (
	"math/rand"
	"path/filepath"
	"testing"

	"freezetag"
)

func TestPublicAPISolve(t *testing.T) {
	swarm := freezetag.RandomWalk(rand.New(rand.NewSource(1)), 25, 0.9)
	tup := freezetag.TupleFor(swarm)
	for _, alg := range []freezetag.Algorithm{
		freezetag.ASeparator, freezetag.AGrid, freezetag.ASeparatorAuto,
	} {
		res, rep, err := freezetag.Solve(alg, swarm, tup, 0)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if !res.AllAwake {
			t.Fatalf("%s: incomplete wake-up", alg.Name())
		}
		if len(rep.Misses) > 0 {
			t.Fatalf("%s: schedule misses %v", alg.Name(), rep.Misses)
		}
	}
}

func TestPublicAPIInstanceRoundTrip(t *testing.T) {
	in := freezetag.NewInstance("custom", freezetag.Pt(0, 0),
		[]freezetag.Point{freezetag.Pt(1, 0), freezetag.Pt(2, 1)})
	path := filepath.Join(t.TempDir(), "i.json")
	if err := in.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := freezetag.LoadInstance(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.N() != 2 || got.Name != "custom" {
		t.Fatalf("round trip: %+v", got)
	}
}

func TestPublicAPIParams(t *testing.T) {
	in := freezetag.Line(10, 2)
	p := freezetag.ParamsOf(in)
	if p.Ell != 2 || p.Rho != 20 || p.Xi != 20 || p.N != 10 {
		t.Fatalf("params = %+v", p)
	}
}

func TestPublicAPIGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	gens := []*freezetag.Instance{
		freezetag.Line(5, 1),
		freezetag.RandomWalk(rng, 5, 1),
		freezetag.UniformDisk(rng, 5, 3),
		freezetag.GridSwarm(3, 1),
		freezetag.ClusterChain(rng, 2, 3, 4, 0.5),
	}
	for _, in := range gens {
		if in.N() == 0 {
			t.Errorf("%s: empty instance", in.Name)
		}
	}
}

func TestPublicAPIBudget(t *testing.T) {
	in := freezetag.Line(10, 1)
	tup := freezetag.TupleFor(in)
	// Starve the run: it must report honestly rather than succeed.
	res, _, err := freezetag.Solve(freezetag.AGrid, in, tup, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.AllAwake {
		t.Error("starved run should not complete")
	}
	if len(res.Violations) == 0 {
		t.Error("budget violations should be reported")
	}
	if res.MaxEnergy > 0.5+1e-9 {
		t.Errorf("budget exceeded: %v", res.MaxEnergy)
	}
}

func TestPublicAPISolvePortfolio(t *testing.T) {
	swarm := freezetag.RandomWalk(rand.New(rand.NewSource(3)), 24, 0.9)
	tup := freezetag.TupleFor(swarm)
	obj, err := freezetag.ParseObjective("min-makespan")
	if err != nil {
		t.Fatal(err)
	}
	p := freezetag.Portfolio{
		Algorithms: []freezetag.Algorithm{freezetag.ASeparator, freezetag.AGrid},
		Objective:  obj,
	}
	res, err := freezetag.SolvePortfolio(p, swarm, tup, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Res.AllAwake {
		t.Fatal("portfolio winner left robots asleep")
	}
	if len(res.Racers) != 2 || res.Winner < 0 || res.Winner > 1 {
		t.Fatalf("racer stats: %+v", res.Racers)
	}
	// The winner must be at least as good as every completed racer.
	for _, rr := range res.Racers {
		if rr.Status == "completed" && rr.Makespan < res.Res.Makespan {
			t.Fatalf("racer %+v beats the declared winner", rr)
		}
	}
}

func TestPublicAPIHashRequest(t *testing.T) {
	in := freezetag.Line(10, 1)
	tup := freezetag.TupleFor(in)
	h1 := freezetag.HashRequest(freezetag.AGrid, in, tup, 0)
	h2 := freezetag.HashRequest(freezetag.AGrid, in, tup, 0)
	if h1 != h2 {
		t.Fatalf("identical requests hashed differently: %s vs %s", h1, h2)
	}
	if len(h1) != 64 {
		t.Fatalf("hash %q is not sha256 hex", h1)
	}
	if h1 == freezetag.HashRequest(freezetag.AWave, in, tup, 0) {
		t.Fatal("different algorithms share a request hash")
	}
	// Unconstrained budgets (≤ 0) are one key.
	if h1 != freezetag.HashRequest(freezetag.AGrid, in, tup, -1) {
		t.Fatal("budget 0 and -1 should share a request hash")
	}
}

func TestPublicAPIHeterogeneous(t *testing.T) {
	swarm, err := freezetag.Family("line+speedband:0.5", 10, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(swarm.Profiles) != 10 {
		t.Fatalf("speedband family carries %d profiles, want 10", len(swarm.Profiles))
	}
	res, rep, err := freezetag.Solve(freezetag.AGrid, swarm, freezetag.TupleFor(swarm), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllAwake || len(rep.Misses) > 0 {
		t.Fatalf("heterogeneous solve incomplete: awake=%v misses=%v", res.AllAwake, rep.Misses)
	}

	// Explicit profiles change the request hash; plain instances keep theirs.
	plain := freezetag.Line(10, 1)
	tup := freezetag.TupleFor(plain)
	h1 := freezetag.HashRequest(freezetag.AGrid, plain, tup, 0)
	prof := freezetag.NewInstance(plain.Name, plain.Source, plain.Points)
	prof.Profiles = freezetag.UniformProfiles(10, freezetag.Profile{Speed: 0.5})
	if h2 := freezetag.HashRequest(freezetag.AGrid, prof, tup, 0); h2 == h1 {
		t.Fatal("profiles did not change the request hash")
	}
}
