module freezetag

go 1.24
