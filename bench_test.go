// Package freezetag_test is the benchmark harness of the reproduction: one
// benchmark per table/figure of the paper (regenerating the experiment and
// reporting its headline quantity as a custom metric), plus micro-benchmarks
// of the substrates (simulator, disk-graph analytics, exploration planning,
// wake-up trees) for -benchmem profiling.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// The full experiment tables (with CSVs) come from: go run ./cmd/dftp-bench
// -scale full.
package freezetag_test

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"freezetag"
	"freezetag/internal/dftp"
	"freezetag/internal/diskgraph"
	"freezetag/internal/experiments"
	"freezetag/internal/explore"
	"freezetag/internal/geom"
	"freezetag/internal/instance"
	"freezetag/internal/portfolio"
	"freezetag/internal/report"
	"freezetag/internal/service"
	"freezetag/internal/sim"
	"freezetag/internal/spatial"
	"freezetag/internal/wakeup"
)

// benchRunner is the shared pool for the experiment benchmarks: GOMAXPROCS
// workers, so BenchmarkTable1_* report the parallel-engine wall-clock on
// multi-core machines. Tables are bit-identical at any worker count.
var benchRunner = experiments.NewRunner()

// benchExperiment runs one experiment generator per iteration and fails the
// benchmark on any error.
func benchExperiment(b *testing.B, fn func(experiments.Scale) (*report.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		tb, err := fn(experiments.Quick)
		if err != nil {
			b.Fatal(err)
		}
		if tb.NumRows() == 0 {
			b.Fatal("empty experiment table")
		}
	}
}

// --- Table 1 rows -------------------------------------------------------------

func BenchmarkTable1_ASeparatorRho(b *testing.B)   { benchExperiment(b, benchRunner.E1RhoSweep) }
func BenchmarkTable1_ASeparatorEll(b *testing.B)   { benchExperiment(b, benchRunner.E1EllSweep) }
func BenchmarkTable1_EnergyThreshold(b *testing.B) { benchExperiment(b, benchRunner.E2EnergyThreshold) }
func BenchmarkTable1_AGrid(b *testing.B)           { benchExperiment(b, benchRunner.E3AGrid) }
func BenchmarkTable1_AWave(b *testing.B)           { benchExperiment(b, benchRunner.E4AWave) }
func BenchmarkTable1_LowerBoundThm2(b *testing.B)  { benchExperiment(b, benchRunner.E5LowerBound) }
func BenchmarkThm6_PathConstruction(b *testing.B)  { benchExperiment(b, benchRunner.E6Path) }

// --- Figures ------------------------------------------------------------------

func BenchmarkFig1_Phases(b *testing.B)       { benchExperiment(b, benchRunner.F1Phases) }
func BenchmarkFig4_Explore(b *testing.B)      { benchExperiment(b, benchRunner.F4Explore) }
func BenchmarkFig5_Construction(b *testing.B) { benchExperiment(b, benchRunner.F5Construction) }

// --- Lemmas -------------------------------------------------------------------

func BenchmarkLem2_WakeTree(b *testing.B)   { benchExperiment(b, benchRunner.L2WakeTree) }
func BenchmarkLem5_DFSampling(b *testing.B) { benchExperiment(b, benchRunner.L5DFSampling) }

// --- Ablations ------------------------------------------------------------------

func BenchmarkAblation_TreeVsOptimal(b *testing.B) { benchExperiment(b, benchRunner.A1TreeQuality) }
func BenchmarkAblation_RhoEstimation(b *testing.B) { benchExperiment(b, benchRunner.A2RhoEstimation) }
func BenchmarkAblation_TeamGrowth(b *testing.B)    { benchExperiment(b, benchRunner.A3TeamGrowth) }
func BenchmarkAblation_EllRobustness(b *testing.B) { benchExperiment(b, benchRunner.A4EllRobustness) }
func BenchmarkAblation_ChainBaseline(b *testing.B) { benchExperiment(b, benchRunner.A5Baseline) }
func BenchmarkCrossover_AGridVsAWave(b *testing.B) { benchExperiment(b, benchRunner.E7Crossover) }

// --- Runner: serial vs parallel fan-out -----------------------------------------

// benchRunnerWorkers runs a bundle of trial-heavy Quick sweeps on a pool of
// the given size; comparing the _Serial and _Parallel variants measures the
// engine's fan-out speedup (they produce bit-identical tables).
func benchRunnerWorkers(b *testing.B, workers int) {
	b.Helper()
	r := experiments.NewRunner(experiments.WithWorkers(workers))
	for i := 0; i < b.N; i++ {
		for _, fn := range []func(experiments.Scale) (*report.Table, error){
			r.E1RhoSweep, r.E3AGrid, r.E5LowerBound, r.F4Explore,
		} {
			if _, err := fn(experiments.Quick); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkRunner_Serial(b *testing.B) { benchRunnerWorkers(b, 1) }
func BenchmarkRunner_Parallel(b *testing.B) {
	benchRunnerWorkers(b, runtime.GOMAXPROCS(0))
}

// --- Headline end-to-end runs with reported makespan ---------------------------

func benchAlgorithm(b *testing.B, alg dftp.Algorithm, inst *instance.Instance) {
	b.Helper()
	tup := dftp.TupleFor(inst)
	var mk, en float64
	for i := 0; i < b.N; i++ {
		res, rep, err := dftp.Solve(alg, inst, tup, 0)
		if err != nil {
			b.Fatal(err)
		}
		if !res.AllAwake || len(rep.Misses) > 0 {
			b.Fatalf("incomplete run (awake=%v misses=%d)", res.AllAwake, len(rep.Misses))
		}
		mk, en = res.Makespan, res.MaxEnergy
	}
	b.ReportMetric(mk, "makespan")
	b.ReportMetric(en, "maxEnergy")
}

func BenchmarkEndToEnd_ASeparator_Line64(b *testing.B) {
	benchAlgorithm(b, dftp.ASeparator{}, instance.Line(64, 1))
}

func BenchmarkEndToEnd_ASeparator_Walk60(b *testing.B) {
	benchAlgorithm(b, dftp.ASeparator{}, instance.RandomWalk(rand.New(rand.NewSource(1)), 60, 0.9))
}

func BenchmarkEndToEnd_AGrid_Line32(b *testing.B) {
	benchAlgorithm(b, dftp.AGrid{}, instance.Line(32, 1))
}

func BenchmarkEndToEnd_AWave_Walk40(b *testing.B) {
	benchAlgorithm(b, dftp.AWave{}, instance.RandomWalk(rand.New(rand.NewSource(2)), 40, 0.9))
}

func BenchmarkEndToEnd_ASeparatorAuto_Line32(b *testing.B) {
	benchAlgorithm(b, dftp.ASeparatorAuto{}, instance.Line(32, 1))
}

// BenchmarkEndToEnd_Faulted measures what a fault plan costs on the same
// instance: the fault-free baseline, crash-stop with the repair layer
// (detection watches + monitor polls + rescue trees), and crash-stop
// without it (less work — crashed subtrees are simply lost; whether the
// run still completes depends on how much redundancy the algorithm's own
// schedule happens to carry). Completion is reported as a metric so the
// three rows can be compared honestly.
func BenchmarkEndToEnd_Faulted(b *testing.B) {
	in := instance.UniformDisk(rand.New(rand.NewSource(5)), 60, 12)
	tup := dftp.TupleFor(in)
	specs := []struct {
		name   string
		faults *dftp.Faults
	}{
		{"fault-free", nil},
		{"crash-stop-repair", &dftp.Faults{Kind: "crash-stop", Rate: 0.3, Seed: 42, Repair: true}},
		{"crash-stop-no-repair", &dftp.Faults{Kind: "crash-stop", Rate: 0.3, Seed: 42}},
	}
	for _, s := range specs {
		b.Run(s.name, func(b *testing.B) {
			var mk, comp float64
			for i := 0; i < b.N; i++ {
				res, _, err := dftp.SolveFaulted(context.Background(), nil, nil, dftp.AGrid{}, in, tup, 0, s.faults, nil)
				if err != nil {
					b.Fatal(err)
				}
				mk = res.Makespan
				comp = float64(res.Awakened) / float64(in.N())
			}
			b.ReportMetric(mk, "makespan")
			b.ReportMetric(comp, "completion")
		})
	}
}

func BenchmarkWakeup_Optimal10(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	ts := make([]wakeup.Target, 10)
	for i := range ts {
		ts[i] = wakeup.Target{ID: i + 1, Pos: geom.Pt(rng.Float64()*10, rng.Float64()*10)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if wakeup.OptimalMakespan(geom.Origin, ts) <= 0 {
			b.Fatal("bad optimum")
		}
	}
}

// --- Substrate micro-benchmarks -------------------------------------------------

func BenchmarkSim_MoveLookCycle(b *testing.B) {
	sleepers := make([]geom.Point, 100)
	rng := rand.New(rand.NewSource(3))
	for i := range sleepers {
		sleepers[i] = geom.Pt(rng.Float64()*20, rng.Float64()*20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := sim.NewEngine(sim.Config{Source: geom.Origin, Sleepers: sleepers})
		e.Spawn(sim.SourceID, func(p *sim.Proc) {
			for j := 0; j < 100; j++ {
				if err := p.MoveTo(geom.Pt(float64(j%20), float64(j%17))); err != nil {
					b.Error(err)
					return
				}
				p.Look()
			}
		})
		if _, err := e.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSpatial_Within(b *testing.B) {
	g := spatial.NewGrid(1)
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 10000; i++ {
		g.Insert(i, geom.Pt(rng.Float64()*100, rng.Float64()*100))
	}
	var buf []int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.Within(buf[:0], geom.Pt(50, 50), 1)
	}
	_ = buf
}

func BenchmarkDiskGraph_Params(b *testing.B) {
	inst := instance.RandomWalk(rand.New(rand.NewSource(5)), 300, 0.9)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = diskgraph.ComputeParams(inst.Source, inst.Points)
	}
}

// benchConnectivity prices the ℓ* derivation on a generated family at a
// given size: _Dense is the O(n²) Prim oracle, _Grid the spatial-grid
// Borůvka that replaced it on the cold path. The two return bit-identical
// values (asserted by the diskgraph property tests); only the time differs.
func benchConnectivity(b *testing.B, family string, n int, param float64, dense bool) {
	b.Helper()
	in, err := instance.Family(family, n, param, 9)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var ell float64
		if dense {
			ell = diskgraph.ConnectivityThresholdDenseIn(nil, in.Source, in.Points)
		} else {
			ell = diskgraph.ConnectivityThresholdIn(nil, in.Source, in.Points)
		}
		if ell <= 0 {
			b.Fatal("degenerate threshold")
		}
	}
}

func BenchmarkConnectivityThreshold_Dense512(b *testing.B) {
	benchConnectivity(b, "walk", 512, 0.9, true)
}
func BenchmarkConnectivityThreshold_Grid512(b *testing.B) {
	benchConnectivity(b, "walk", 512, 0.9, false)
}
func BenchmarkConnectivityThreshold_Dense4096(b *testing.B) {
	benchConnectivity(b, "walk", 4096, 0.9, true)
}
func BenchmarkConnectivityThreshold_Grid4096(b *testing.B) {
	benchConnectivity(b, "walk", 4096, 0.9, false)
}

// The disk family is the well-conditioned case the grid pass is designed
// around: uniform density, so nearest-foreign queries stay local.
func BenchmarkConnectivityThreshold_DiskDense4096(b *testing.B) {
	benchConnectivity(b, "disk", 4096, 64, true)
}
func BenchmarkConnectivityThreshold_DiskGrid4096(b *testing.B) {
	benchConnectivity(b, "disk", 4096, 64, false)
}

func BenchmarkWakeup_BuildTree(b *testing.B) {
	rng := rand.New(rand.NewSource(6))
	ts := make([]wakeup.Target, 500)
	for i := range ts {
		ts[i] = wakeup.Target{ID: i + 1, Pos: geom.Pt(rng.Float64()*50, rng.Float64()*50)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		root := wakeup.BuildTree(geom.Origin, ts)
		if wakeup.Size(root) != len(ts) {
			b.Fatal("bad tree")
		}
	}
}

func BenchmarkExplore_PlanRect(b *testing.B) {
	r := geom.RectWH(geom.Origin, 64, 64)
	for i := 0; i < b.N; i++ {
		pl := explore.PlanRect(r)
		if len(pl.Stops) == 0 {
			b.Fatal("empty plan")
		}
	}
}

// --- Portfolio racing ---------------------------------------------------------

// benchPortfolioInstance is the fixed instance the portfolio benchmarks
// race on.
func benchPortfolioInstance() *instance.Instance {
	return instance.RandomWalk(rand.New(rand.NewSource(8)), 32, 0.9)
}

func benchPortfolioAlgs() []dftp.Algorithm {
	return []dftp.Algorithm{dftp.ASeparator{}, dftp.AGrid{}, dftp.AWave{}, dftp.ASeparatorAuto{}}
}

// BenchmarkPortfolio_Race runs the full four-entrant min-makespan race per
// iteration; compare with _BestFixed (the single algorithm the race ends up
// picking — the price of not knowing the winner a priori) and
// _FirstUnderCancel (the early-stop objective, which cancels the losers).
func BenchmarkPortfolio_Race(b *testing.B) {
	in := benchPortfolioInstance()
	tup := dftp.TupleFor(in)
	pf := portfolio.Portfolio{Algorithms: benchPortfolioAlgs(), Objective: portfolio.MinMakespan{}}
	var mk float64
	for i := 0; i < b.N; i++ {
		res, err := portfolio.Race(pf, in, tup, 0, portfolio.Options{})
		if err != nil {
			b.Fatal(err)
		}
		mk = res.Res.Makespan
	}
	b.ReportMetric(mk, "makespan")
}

// BenchmarkPortfolio_BestFixed is the oracle baseline: solve only with the
// algorithm the race would declare the winner.
func BenchmarkPortfolio_BestFixed(b *testing.B) {
	in := benchPortfolioInstance()
	tup := dftp.TupleFor(in)
	pf := portfolio.Portfolio{Algorithms: benchPortfolioAlgs(), Objective: portfolio.MinMakespan{}}
	res, err := portfolio.Race(pf, in, tup, 0, portfolio.Options{})
	if err != nil {
		b.Fatal(err)
	}
	best := pf.Algorithms[res.Winner]
	b.ResetTimer()
	benchAlgorithm(b, best, in)
}

// BenchmarkPortfolio_FirstUnderCancel races with a first-under-budget
// target the first entrant meets, so the remaining racers are cancelled —
// the early-stop speed win over the full race.
func BenchmarkPortfolio_FirstUnderCancel(b *testing.B) {
	in := benchPortfolioInstance()
	tup := dftp.TupleFor(in)
	pf := portfolio.Portfolio{Algorithms: benchPortfolioAlgs(), Objective: portfolio.FirstUnder{MaxMakespan: 1e9}}
	var cancelled int
	for i := 0; i < b.N; i++ {
		res, err := portfolio.Race(pf, in, tup, 0, portfolio.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if !res.Satisfied {
			b.Fatal("target not met")
		}
		cancelled = res.Cancelled
	}
	b.ReportMetric(float64(cancelled), "cancelled")
}

// --- Solver service -----------------------------------------------------------

// serviceSolveRequest is the fixed request the service benchmarks use.
func serviceSolveRequest(seed int64) service.SolveRequest {
	return service.SolveRequest{Algorithm: "agrid", Family: "walk", N: 32, Param: 0.9, Seed: seed}
}

// BenchmarkService_SolveCold measures the uncached path: every iteration is
// a distinct request (fresh seed), so each one resolves, hashes, queues, and
// simulates. The cold/cached pair is the baseline later caching PRs compare
// against.
func BenchmarkService_SolveCold(b *testing.B) {
	s := service.New(service.Config{QueueDepth: 1, CacheBytes: 1})
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(serviceSolveRequest(int64(i))); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkService_SolveCached measures the hit path: one warm-up solve,
// then every iteration is the identical request served from the LRU
// (resolve + hash + lookup, no simulation).
func BenchmarkService_SolveCached(b *testing.B) {
	s := service.New(service.Config{})
	defer s.Close()
	if _, err := s.Solve(serviceSolveRequest(0)); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sv, err := s.Solve(serviceSolveRequest(0))
		if err != nil {
			b.Fatal(err)
		}
		if !sv.Hit {
			b.Fatal("cached benchmark missed the cache")
		}
	}
}

// BenchmarkService_SolveColdRepeatedFamily measures the cold path on a
// repeated family shape: every iteration changes the budget, so each
// request hashes differently (a genuine cold solve — resolve + queue +
// simulate + marshal) but the (family, n, param, seed, metric) shape
// repeats, so after the first iteration the (ℓ*, ρ*) derivation is served
// by the params memo.
func BenchmarkService_SolveColdRepeatedFamily(b *testing.B) {
	s := service.New(service.Config{QueueDepth: 1, CacheBytes: 1})
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := serviceSolveRequest(0)
		req.Budget = 1e6 + float64(i)
		if _, err := s.Solve(req); err != nil {
			b.Fatal(err)
		}
	}
	if b.N > 1 && s.Stats().ParamsMemoHits != int64(b.N-1) {
		b.Fatalf("params memo hits = %d, want %d", s.Stats().ParamsMemoHits, b.N-1)
	}
}

// BenchmarkService_SolveSteadyState is the zero-allocation serving target:
// traces dropped, a repeated family shape (params memo hit from iteration
// two on), and a distinct budget per iteration so every request still
// resolves, hashes, queues, simulates, and marshals. With warm per-worker
// arenas the entire chain reuses the previous iteration's buffers, so
// allocs/op converges to the arena bookkeeping floor (≤ 50 per the
// acceptance bar; the CI gate in service asserts it stays there).
func BenchmarkService_SolveSteadyState(b *testing.B) {
	s := service.New(service.Config{QueueDepth: 1, CacheBytes: 1, DropTraces: true})
	defer s.Close()
	// Warm the arenas and the params memo before measuring.
	for i := 0; i < 3; i++ {
		req := serviceSolveRequest(0)
		req.Budget = 2e6 + float64(i)
		if _, err := s.Solve(req); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := serviceSolveRequest(0)
		req.Budget = 1e6 + float64(i)
		if _, err := s.Solve(req); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkService_PortfolioRace measures a full served four-entrant race
// (cold, distinct seed per iteration): the third leg of the sim-hot-path
// baseline snapshotted in BENCH_4.json alongside SolveCold and SolveCached.
func BenchmarkService_PortfolioRace(b *testing.B) {
	s := service.New(service.Config{QueueDepth: 1, CacheBytes: 1})
	defer s.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, err := s.SolvePortfolio(service.PortfolioRequest{
			Algorithms: []string{"aseparator", "agrid", "awave"},
			Family:     "walk", N: 24, Param: 0.9, Seed: int64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// --- Metrics ------------------------------------------------------------------

// BenchmarkMetric_Dist prices one distance evaluation per metric — the
// innermost call of every grid query, travel computation, and wake-tree
// greedy after the pluggable-metric refactor. lp:3 and lp:4 exercise the
// integer-exponent fast path (repeated multiplication + single-Pow
// inverse, bit-identical to the generic formulation); lp:2.5 the generic
// two-transcendental path.
func BenchmarkMetric_Dist(b *testing.B) {
	var lps []geom.Metric
	for _, p := range []float64{2.5, 3, 4} {
		m, err := geom.Lp(p)
		if err != nil {
			b.Fatal(err)
		}
		lps = append(lps, m)
	}
	rng := rand.New(rand.NewSource(1))
	pts := make([]geom.Point, 1024)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	for _, m := range append([]geom.Metric{geom.L1, geom.L2, geom.LInf}, lps...) {
		b.Run(m.Name(), func(b *testing.B) {
			var sink float64
			for i := 0; i < b.N; i++ {
				p, q := pts[i%len(pts)], pts[(i+7)%len(pts)]
				sink += m.Dist(p, q)
			}
			benchSink = sink
		})
	}
}

var benchSink float64

// BenchmarkMetric_DistBatch prices one distance through geom.DistBatch at
// several block sizes, against the per-call Dist loop over the same block
// (the "percall" rows). Reported ns/op is per point, so a row is directly
// comparable with its percall twin and with BenchmarkMetric_Dist. The
// ≥ 64-point blocks are the scan-consumer regime (grid cells, Borůvka
// rings, ρ* cells); the acceptance target is batch ≥ 2× percall for lp:3
// there.
func BenchmarkMetric_DistBatch(b *testing.B) {
	lp3, err := geom.Lp(3)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	pts := make([]geom.Point, 1024)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*100, rng.Float64()*100)
	}
	origin := geom.Pt(50, 50)
	out := make([]float64, len(pts))
	for _, m := range []geom.Metric{geom.L1, geom.L2, geom.LInf, lp3} {
		for _, block := range []int{16, 64, 256, 1024} {
			b.Run(fmt.Sprintf("%s/batch%d", m.Name(), block), func(b *testing.B) {
				blk := pts[:block]
				b.SetBytes(0)
				for i := 0; i < b.N; i += block {
					geom.DistBatch(m, origin, blk, out)
				}
				benchSink = out[0]
			})
			b.Run(fmt.Sprintf("%s/percall%d", m.Name(), block), func(b *testing.B) {
				blk := pts[:block]
				for i := 0; i < b.N; i += block {
					for j, q := range blk {
						out[j] = m.Dist(origin, q)
					}
				}
				benchSink = out[0]
			})
		}
	}
}

// BenchmarkEndToEnd_AGrid_Walk32_Metrics prices a full AGrid solve per
// metric: the per-metric cost of the abstraction on the sim hot path (the
// ℓ2 row is directly comparable with the pre-refactor
// BenchmarkEndToEnd_AGrid numbers).
func BenchmarkEndToEnd_AGrid_Walk32_Metrics(b *testing.B) {
	in := instance.RandomWalk(rand.New(rand.NewSource(8)), 32, 0.9)
	for _, m := range []geom.Metric{geom.L1, geom.L2, geom.LInf} {
		tup := dftp.TupleForIn(m, in)
		b.Run(m.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, _, err := freezetag.SolveIn(m, freezetag.AGrid, in, tup, 0)
				if err != nil {
					b.Fatal(err)
				}
				if !res.AllAwake {
					b.Fatal("incomplete wake-up")
				}
			}
		})
	}
}

// BenchmarkEndToEnd_Heterogeneous solves one walk instance homogeneous and
// at two speed spreads: the deltas are the price of heterogeneity (slower
// robots stretch simulated time; the discrete-event count barely moves).
func BenchmarkEndToEnd_Heterogeneous(b *testing.B) {
	for _, band := range []string{"", "+speedband:0.5", "+speedband:0.25"} {
		name := "homogeneous"
		if band != "" {
			name = band[1:]
		}
		in, err := instance.Family("walk"+band, 32, 0.9, 8)
		if err != nil {
			b.Fatal(err)
		}
		tup := dftp.TupleFor(in)
		b.Run(name, func(b *testing.B) {
			var mk float64
			for i := 0; i < b.N; i++ {
				res, _, err := freezetag.Solve(freezetag.AGrid, in, tup, 0)
				if err != nil {
					b.Fatal(err)
				}
				if !res.AllAwake {
					b.Fatal("incomplete wake-up")
				}
				mk = res.Makespan
			}
			b.ReportMetric(mk, "makespan")
		})
	}
}
