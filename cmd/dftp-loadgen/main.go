// Command dftp-loadgen drives a running dftp-serve with a configurable
// traffic mix and reports client-side latency, throughput, and cache
// behavior — the measurement half of the daemon's observability story.
//
// Usage:
//
//	dftp-loadgen [-addr http://127.0.0.1:8080] [-duration 10s]
//	             [-concurrency 8] [-qps 0] [-qps-curve 50,100,200]
//	             [-mix "weight=3,endpoint=solve,algorithm=agrid,family=walk,n=32,param=0.9,seeds=20"]...
//	             [-seed 1] [-report out.json] [-label name]
//
// Traffic model. Each -mix flag defines one weighted request shape; a
// request picks a shape in proportion to its weight, then a seed uniformly
// from the shape's seed pool — the pool size is the knob that trades cache
// hits against cold solves (seeds=1 is all-hot, seeds=10⁶ is all-cold).
// Shape keys:
//
//	weight=N       relative weight (default 1)
//	endpoint=E     solve (default) or portfolio
//	algorithm=A    solve algorithm (default agrid)
//	algorithms=A+B portfolio entrants (default agrid+awave)
//	family=F       instance family (default walk)
//	n=N            robots (default 32)
//	param=P        family parameter (default 0.9)
//	metric=M       geometry: l2 (default), l1, linf, lp:<p>
//	speed=S        heterogeneous profiles: every robot gets speed S
//	budget=B       per-robot energy budget (0 = unconstrained)
//	seeds=K        seed pool size (default 20)
//	faults=SPEC    fault plan: "<kind>[;rate=R][;seed=S][;byz=K][;down=D][;repair]"
//	               (semicolon-separated — commas delimit mix keys)
//	name=X         label in the report (default mix<i>)
//
// Pacing. -concurrency alone runs a closed loop: that many workers issue
// requests back-to-back, so offered load adapts to server latency. -qps > 0
// switches to an open loop: requests start on a fixed schedule regardless
// of completions (bounded by -max-inflight; arrivals past the bound are
// counted as saturated, not silently dropped — open-loop honesty is the
// point of the mode). -qps-curve runs the whole workload once per step,
// producing a latency-under-load curve in a single report.
//
// Measurement. Client latency lands in power-of-two-bucket histograms
// (internal/obs — the same ones the server uses), and each response's
// Server-Timing header is parsed to split client latency into server-side
// stages (resolve/queue/sim/marshal) versus network + client overhead.
// Outcomes (hit/coalesced/miss/shed/error) come from the header's cache
// descriptor, so rates match the server's own accounting. The report is a
// BENCH-style JSON document: environment block plus per-step and per-mix
// p50/p95/p99 latencies and hit/shed rates.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"freezetag/internal/dftp"
	"freezetag/internal/instance"
	"freezetag/internal/obs"
	"freezetag/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dftp-loadgen:", err)
		os.Exit(1)
	}
}

// mixFlag collects repeated -mix flags.
type mixFlag []string

func (m *mixFlag) String() string     { return strings.Join(*m, " ") }
func (m *mixFlag) Set(v string) error { *m = append(*m, v); return nil }

// shape is one parsed traffic shape.
type shape struct {
	Name       string   `json:"name"`
	Weight     int      `json:"weight"`
	Endpoint   string   `json:"endpoint"`
	Algorithm  string   `json:"algorithm,omitempty"`
	Algorithms []string `json:"algorithms,omitempty"`
	Family     string   `json:"family"`
	N          int      `json:"n"`
	Param      float64  `json:"param"`
	Metric     string   `json:"metric,omitempty"`
	Speed      float64  `json:"speed,omitempty"`
	Budget     float64  `json:"budget,omitempty"`
	Seeds      int      `json:"seeds"`

	Faults *dftp.Faults `json:"faults,omitempty"`
}

func parseShape(spec string, idx int) (shape, error) {
	sh := shape{
		Name:     fmt.Sprintf("mix%d", idx),
		Weight:   1,
		Endpoint: "solve",
		Family:   "walk",
		N:        32,
		Param:    0.9,
		Seeds:    20,
	}
	alg := ""
	algs := ""
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return sh, fmt.Errorf("mix %q: %q is not key=value", spec, kv)
		}
		var err error
		switch k {
		case "name":
			sh.Name = v
		case "weight":
			sh.Weight, err = strconv.Atoi(v)
		case "endpoint":
			sh.Endpoint = v
		case "algorithm":
			alg = v
		case "algorithms":
			algs = v
		case "family":
			sh.Family = v
		case "n":
			sh.N, err = strconv.Atoi(v)
		case "param":
			sh.Param, err = strconv.ParseFloat(v, 64)
		case "metric":
			sh.Metric = v
		case "speed":
			sh.Speed, err = strconv.ParseFloat(v, 64)
		case "budget":
			sh.Budget, err = strconv.ParseFloat(v, 64)
		case "seeds":
			sh.Seeds, err = strconv.Atoi(v)
		case "faults":
			sh.Faults, err = parseMixFaults(v)
		default:
			return sh, fmt.Errorf("mix %q: unknown key %q", spec, k)
		}
		if err != nil {
			return sh, fmt.Errorf("mix %q: key %q: %v", spec, k, err)
		}
	}
	switch sh.Endpoint {
	case "solve":
		if alg == "" {
			alg = "agrid"
		}
		sh.Algorithm = alg
	case "portfolio":
		if algs == "" {
			algs = "agrid+awave"
		}
		sh.Algorithms = strings.Split(algs, "+")
	default:
		return sh, fmt.Errorf("mix %q: endpoint %q (want solve or portfolio)", spec, sh.Endpoint)
	}
	if sh.Weight < 1 || sh.Seeds < 1 || sh.N < 1 {
		return sh, fmt.Errorf("mix %q: weight, seeds, and n must be ≥ 1", spec)
	}
	return sh, nil
}

// body renders the request payload for one (shape, seed) draw. Marshaling
// through the service's own wire types keeps the generator honest: it can
// only send what the API can parse.
func (sh *shape) body(seed int64) ([]byte, error) {
	var profiles []instance.Profile
	if sh.Speed > 0 {
		profiles = make([]instance.Profile, sh.N)
		for i := range profiles {
			profiles[i] = instance.Profile{Speed: sh.Speed}
		}
	}
	if sh.Endpoint == "portfolio" {
		return json.Marshal(service.PortfolioRequest{
			Algorithms: sh.Algorithms,
			Metric:     sh.Metric,
			Family:     sh.Family,
			N:          sh.N,
			Param:      sh.Param,
			Seed:       seed,
			Budget:     sh.Budget,
			Profiles:   profiles,
			Faults:     sh.Faults,
		})
	}
	return json.Marshal(service.SolveRequest{
		Algorithm: sh.Algorithm,
		Metric:    sh.Metric,
		Family:    sh.Family,
		N:         sh.N,
		Param:     sh.Param,
		Seed:      seed,
		Budget:    sh.Budget,
		Profiles:  profiles,
		Faults:    sh.Faults,
	})
}

// parseMixFaults parses a mix shape's faults= value — the dftp-run compact
// fault spec with ';' in place of ',' so it survives the mix key splitter:
// "<kind>[;rate=R][;seed=S][;byz=K][;down=D][;repair[=bool]]".
func parseMixFaults(spec string) (*dftp.Faults, error) {
	parts := strings.Split(strings.TrimSpace(spec), ";")
	f := &dftp.Faults{Kind: strings.TrimSpace(parts[0])}
	for _, part := range parts[1:] {
		key, val, hasVal := strings.Cut(strings.TrimSpace(part), "=")
		var err error
		switch key {
		case "rate":
			f.Rate, err = strconv.ParseFloat(val, 64)
		case "seed":
			f.Seed, err = strconv.ParseInt(val, 10, 64)
		case "byz":
			f.Byzantine, err = strconv.Atoi(val)
		case "down":
			f.Downtime, err = strconv.ParseFloat(val, 64)
		case "repair":
			f.Repair = true
			if hasVal {
				f.Repair, err = strconv.ParseBool(val)
			}
		default:
			return nil, fmt.Errorf("unknown fault option %q", key)
		}
		if err != nil {
			return nil, fmt.Errorf("fault option %q: %v", key, err)
		}
	}
	return f, f.Validate()
}

// serverTiming is one parsed Server-Timing header.
type serverTiming struct {
	outcome string                   // cache;desc=...
	traceID string                   // traceid;desc="..."
	stages  map[string]time.Duration // name;dur=ms
}

// parseServerTiming decodes the subset of the Server-Timing grammar the
// daemon emits: comma-separated entries, each `name;dur=<ms>` or
// `name;desc=<token|quoted>`.
func parseServerTiming(h string) serverTiming {
	st := serverTiming{stages: map[string]time.Duration{}}
	for _, entry := range strings.Split(h, ",") {
		parts := strings.Split(strings.TrimSpace(entry), ";")
		if len(parts) < 2 {
			continue
		}
		name := parts[0]
		for _, p := range parts[1:] {
			k, v, ok := strings.Cut(p, "=")
			if !ok {
				continue
			}
			switch k {
			case "dur":
				if ms, err := strconv.ParseFloat(v, 64); err == nil {
					st.stages[name] = time.Duration(ms * float64(time.Millisecond))
				}
			case "desc":
				v = strings.Trim(v, `"`)
				switch name {
				case "cache":
					st.outcome = v
				case "traceid":
					st.traceID = v
				}
			}
		}
	}
	return st
}

// collector aggregates one run step's client-side measurements. Histograms
// are the server's lock-free power-of-two ones; the map updates take a
// mutex (loadgen rates are far below the histograms' design point, the
// shared code path is the point).
type collector struct {
	client  *obs.Histogram // end-to-end client latency (seconds)
	server  *obs.Histogram // server total per Server-Timing
	network *obs.Histogram // client minus server: network + client overhead

	mu        sync.Mutex
	requests  int64
	netErrors int64
	saturated int64 // open-loop arrivals skipped at the in-flight bound
	outcomes  map[string]int64
	statuses  map[int]int64
	stages    map[string]*obs.Histogram
	perMix    map[string]*mixStats
	traceSeen int64 // responses carrying a traceid entry
}

type mixStats struct {
	requests int64
	outcomes map[string]int64
	client   *obs.Histogram
}

const histMin, histMax = -20, 5

func newCollector(shapes []shape) *collector {
	c := &collector{
		client:   obs.NewHistogram(histMin, histMax),
		server:   obs.NewHistogram(histMin, histMax),
		network:  obs.NewHistogram(histMin, histMax),
		outcomes: map[string]int64{},
		statuses: map[int]int64{},
		stages:   map[string]*obs.Histogram{},
		perMix:   map[string]*mixStats{},
	}
	for _, st := range []string{"resolve", "queue", "sim", "marshal"} {
		c.stages[st] = obs.NewHistogram(histMin, histMax)
	}
	for _, sh := range shapes {
		c.perMix[sh.Name] = &mixStats{outcomes: map[string]int64{}, client: obs.NewHistogram(histMin, histMax)}
	}
	return c
}

func (c *collector) record(mix string, status int, lat time.Duration, st serverTiming, netErr bool) {
	c.client.Record(lat.Seconds())
	if total, ok := st.stages["total"]; ok {
		c.server.Record(total.Seconds())
		if net := lat - total; net > 0 {
			c.network.Record(net.Seconds())
		}
	}
	for name, d := range st.stages {
		if h, ok := c.stages[name]; ok {
			h.Record(d.Seconds())
		}
	}
	c.mu.Lock()
	c.requests++
	if netErr {
		c.netErrors++
	}
	if status != 0 {
		c.statuses[status]++
	}
	if st.outcome != "" {
		c.outcomes[st.outcome]++
	}
	if st.traceID != "" {
		c.traceSeen++
	}
	if m := c.perMix[mix]; m != nil {
		m.requests++
		if st.outcome != "" {
			m.outcomes[st.outcome]++
		}
		m.client.Record(lat.Seconds())
	}
	c.mu.Unlock()
}

// Report wire types: a BENCH-style document with one entry per load step.

type latencySummary struct {
	P50Ms  float64 `json:"p50Ms"`
	P95Ms  float64 `json:"p95Ms"`
	P99Ms  float64 `json:"p99Ms"`
	MeanMs float64 `json:"meanMs"`
	Count  uint64  `json:"count"`
}

func summarizeHist(h *obs.Histogram) latencySummary {
	s := h.Snapshot()
	mean := 0.0
	if s.Count > 0 {
		mean = s.Sum / float64(s.Count)
	}
	return latencySummary{
		P50Ms:  s.Quantile(0.50) * 1e3,
		P95Ms:  s.Quantile(0.95) * 1e3,
		P99Ms:  s.Quantile(0.99) * 1e3,
		MeanMs: mean * 1e3,
		Count:  s.Count,
	}
}

type mixReport struct {
	Name     string           `json:"name"`
	Requests int64            `json:"requests"`
	HitRate  float64          `json:"hitRate"`
	Outcomes map[string]int64 `json:"outcomes"`
	Latency  latencySummary   `json:"latency"`
}

type stepReport struct {
	TargetQPS     float64                   `json:"targetQps"` // 0 = closed loop
	Concurrency   int                       `json:"concurrency"`
	DurationSec   float64                   `json:"durationSec"`
	Requests      int64                     `json:"requests"`
	AchievedQPS   float64                   `json:"achievedQps"`
	NetErrors     int64                     `json:"netErrors"`
	Saturated     int64                     `json:"saturated,omitempty"`
	Outcomes      map[string]int64          `json:"outcomes"`
	Statuses      map[string]int64          `json:"statuses"`
	HitRate       float64                   `json:"hitRate"`
	ShedRate      float64                   `json:"shedRate"`
	CoalesceRate  float64                   `json:"coalesceRate"`
	TraceIDRate   float64                   `json:"traceIdRate"` // responses carrying a traceid Server-Timing entry
	ClientLatency latencySummary            `json:"clientLatency"`
	ServerLatency latencySummary            `json:"serverLatency"`
	NetworkLag    latencySummary            `json:"networkLag"`
	Stages        map[string]latencySummary `json:"stages"`
	ServerMemory  *memReport                `json:"serverMemory,omitempty"`
	PerMix        []mixReport               `json:"perMix"`
}

// memReport is the server's allocation pressure over one load step, diffed
// from /metricsz scrapes taken immediately before and after the step. It
// ties the latency curves to their usual cause at saturation: bytes
// allocated per request and the GC cycles they force.
type memReport struct {
	GCCycles         int64   `json:"gcCycles"`         // completed GC cycles during the step
	AllocBytes       int64   `json:"allocBytes"`       // heap bytes allocated during the step
	AllocBytesPerReq float64 `json:"allocBytesPerReq"` // allocBytes / step requests
	HeapStartBytes   int64   `json:"heapStartBytes"`   // live heap at step start
	HeapEndBytes     int64   `json:"heapEndBytes"`     // live heap at step end
}

// scrapeMem pulls the runtime gauges from /metricsz. A zero value with
// ok=false (endpoint missing, old server) just omits serverMemory from the
// report rather than failing the run.
type memSample struct {
	gcCycles   int64
	allocTotal int64
	heapAlloc  int64
}

func scrapeMem(client *http.Client, addr string) (memSample, bool) {
	var s memSample
	resp, err := client.Get(addr + "/metricsz")
	if err != nil {
		return s, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return s, false
	}
	found := 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		var dst *int64
		switch name {
		case "go_gc_cycles_total":
			dst = &s.gcCycles
		case "go_alloc_bytes_total":
			dst = &s.allocTotal
		case "go_heap_alloc_bytes":
			dst = &s.heapAlloc
		default:
			continue
		}
		v, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			continue
		}
		*dst = int64(v)
		found++
	}
	return s, found == 3
}

type report struct {
	Tool        string       `json:"tool"`
	Label       string       `json:"label,omitempty"`
	Description string       `json:"description"`
	Environment environment  `json:"environment"`
	Target      string       `json:"target"`
	Mixes       []shape      `json:"mixes"`
	Steps       []stepReport `json:"steps"`
}

type environment struct {
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	Note       string `json:"note,omitempty"`
}

func (c *collector) reportStep(targetQPS float64, concurrency int, elapsed time.Duration, shapes []shape) stepReport {
	c.mu.Lock()
	defer c.mu.Unlock()
	sr := stepReport{
		TargetQPS:     targetQPS,
		Concurrency:   concurrency,
		DurationSec:   elapsed.Seconds(),
		Requests:      c.requests,
		NetErrors:     c.netErrors,
		Saturated:     c.saturated,
		Outcomes:      c.outcomes,
		Statuses:      map[string]int64{},
		ClientLatency: summarizeHist(c.client),
		ServerLatency: summarizeHist(c.server),
		NetworkLag:    summarizeHist(c.network),
		Stages:        map[string]latencySummary{},
	}
	if elapsed > 0 {
		sr.AchievedQPS = float64(c.requests) / elapsed.Seconds()
	}
	for code, n := range c.statuses {
		sr.Statuses[strconv.Itoa(code)] = n
	}
	for name, h := range c.stages {
		sr.Stages[name] = summarizeHist(h)
	}
	served := c.outcomes["hit"] + c.outcomes["coalesced"] + c.outcomes["miss"]
	if served > 0 {
		sr.HitRate = float64(c.outcomes["hit"]+c.outcomes["coalesced"]) / float64(served)
		sr.CoalesceRate = float64(c.outcomes["coalesced"]) / float64(served)
	}
	if seen := served + c.outcomes["shed"]; seen > 0 {
		sr.ShedRate = float64(c.outcomes["shed"]) / float64(seen)
	}
	if c.requests > 0 {
		sr.TraceIDRate = float64(c.traceSeen) / float64(c.requests)
	}
	for _, sh := range shapes {
		m := c.perMix[sh.Name]
		mr := mixReport{Name: sh.Name, Requests: m.requests, Outcomes: m.outcomes, Latency: summarizeHist(m.client)}
		if served := m.outcomes["hit"] + m.outcomes["coalesced"] + m.outcomes["miss"]; served > 0 {
			mr.HitRate = float64(m.outcomes["hit"]+m.outcomes["coalesced"]) / float64(served)
		}
		sr.PerMix = append(sr.PerMix, mr)
	}
	return sr
}

// pickShape draws a shape index in proportion to weight.
func pickShape(shapes []shape, totalWeight int, rng *rand.Rand) *shape {
	w := rng.IntN(totalWeight)
	for i := range shapes {
		w -= shapes[i].Weight
		if w < 0 {
			return &shapes[i]
		}
	}
	return &shapes[len(shapes)-1]
}

// fire issues one request and records it.
func fire(client *http.Client, addr string, sh *shape, seed int64, col *collector) {
	body, err := sh.body(seed)
	if err != nil {
		col.record(sh.Name, 0, 0, serverTiming{}, true)
		return
	}
	start := time.Now()
	resp, err := client.Post(addr+"/v1/"+sh.Endpoint, "application/json", bytes.NewReader(body))
	if err != nil {
		col.record(sh.Name, 0, time.Since(start), serverTiming{}, true)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	lat := time.Since(start)
	col.record(sh.Name, resp.StatusCode, lat, parseServerTiming(resp.Header.Get("Server-Timing")), false)
}

// runStep drives one load step and returns its report. baseSeed offsets
// the request seed space (fixed across steps, so a warm cache stays warm
// from one step to the next, as it would in production); stream picks the
// RNG stream — callers must vary it per step, or every step would replay
// the exact shape/seed draw sequence of the one before it and report an
// artificially perfect hit rate.
func runStep(addr string, shapes []shape, totalWeight int, qps float64, concurrency, maxInflight int,
	duration time.Duration, baseSeed, stream int64, client *http.Client) stepReport {
	col := newCollector(shapes)
	stop := time.After(duration)
	start := time.Now()

	if qps <= 0 {
		// Closed loop: concurrency workers, back-to-back requests.
		var wg sync.WaitGroup
		done := make(chan struct{})
		go func() { <-stop; close(done) }()
		for w := 0; w < concurrency; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewPCG(uint64(baseSeed), uint64(stream)<<16|uint64(w)))
				for {
					select {
					case <-done:
						return
					default:
					}
					sh := pickShape(shapes, totalWeight, rng)
					fire(client, addr, sh, baseSeed+int64(rng.IntN(sh.Seeds)), col)
				}
			}(w)
		}
		wg.Wait()
		return col.reportStep(0, concurrency, time.Since(start), shapes)
	}

	// Open loop: fixed arrival schedule, bounded in-flight.
	interval := time.Duration(float64(time.Second) / qps)
	if interval <= 0 {
		interval = time.Microsecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	sem := make(chan struct{}, maxInflight)
	rng := rand.New(rand.NewPCG(uint64(baseSeed), uint64(stream)<<16))
	var wg sync.WaitGroup
	var saturated atomic.Int64
loop:
	for {
		select {
		case <-stop:
			break loop
		case <-tick.C:
			sh := pickShape(shapes, totalWeight, rng)
			seed := baseSeed + int64(rng.IntN(sh.Seeds))
			select {
			case sem <- struct{}{}:
				wg.Add(1)
				go func() {
					defer func() { <-sem; wg.Done() }()
					fire(client, addr, sh, seed, col)
				}()
			default:
				saturated.Add(1)
			}
		}
	}
	wg.Wait()
	col.mu.Lock()
	col.saturated = saturated.Load()
	col.mu.Unlock()
	return col.reportStep(qps, maxInflight, time.Since(start), shapes)
}

func run() error {
	var mixes mixFlag
	var (
		addr        = flag.String("addr", "http://127.0.0.1:8080", "dftp-serve base URL")
		duration    = flag.Duration("duration", 10*time.Second, "run length per load step")
		concurrency = flag.Int("concurrency", 8, "closed-loop worker count (ignored when -qps > 0)")
		qps         = flag.Float64("qps", 0, "open-loop arrival rate; 0 = closed loop")
		qpsCurve    = flag.String("qps-curve", "", "comma-separated open-loop steps (e.g. 50,100,200); overrides -qps")
		maxInflight = flag.Int("max-inflight", 256, "open-loop in-flight bound; arrivals past it count as saturated")
		seed        = flag.Int64("seed", 1, "base seed for shape/seed draws")
		reportPath  = flag.String("report", "", "write the JSON report here (default stdout)")
		label       = flag.String("label", "", "label recorded in the report")
		note        = flag.String("note", "", "environment note recorded in the report")
	)
	flag.Var(&mixes, "mix", "one traffic shape as key=value pairs (repeatable; see package doc)")
	flag.Parse()

	specs := []string(mixes)
	if len(specs) == 0 {
		// Default workload: a cache-friendly solve mix, a colder solve mix
		// on a second family/metric, and a light portfolio stream.
		specs = []string{
			"name=hot-solve,weight=6,algorithm=agrid,family=walk,n=32,param=0.9,seeds=10",
			"name=cold-solve,weight=3,algorithm=awave,family=disk,n=32,param=1.0,metric=l1,seeds=200",
			"name=race,weight=1,endpoint=portfolio,algorithms=agrid+awave,family=walk,n=32,param=0.9,seeds=5",
		}
	}
	shapes := make([]shape, len(specs))
	totalWeight := 0
	for i, spec := range specs {
		sh, err := parseShape(spec, i)
		if err != nil {
			return err
		}
		shapes[i] = sh
		totalWeight += sh.Weight
	}

	var steps []float64
	if *qpsCurve != "" {
		for _, part := range strings.Split(*qpsCurve, ",") {
			v, err := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if err != nil || v <= 0 {
				return fmt.Errorf("-qps-curve entry %q: want a positive number", part)
			}
			steps = append(steps, v)
		}
	} else {
		steps = []float64{*qps} // 0 = one closed-loop step
	}

	client := &http.Client{Timeout: 60 * time.Second}
	// Fail fast if the target isn't there: one healthz round-trip.
	if resp, err := client.Get(*addr + "/healthz"); err != nil {
		return fmt.Errorf("target %s unreachable: %w", *addr, err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	rep := report{
		Tool:        "dftp-loadgen",
		Label:       *label,
		Description: "Client-side latency/throughput under a weighted traffic mix against dftp-serve; Server-Timing splits client latency into server stages vs network.",
		Environment: environment{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, GOMAXPROCS: runtime.GOMAXPROCS(0), Note: *note},
		Target:      *addr,
		Mixes:       shapes,
	}
	for i, stepQPS := range steps {
		mode := "closed"
		if stepQPS > 0 {
			mode = fmt.Sprintf("open @ %g qps", stepQPS)
		}
		fmt.Fprintf(os.Stderr, "dftp-loadgen: step %s for %s (%d mixes)\n", mode, *duration, len(shapes))
		before, okBefore := scrapeMem(client, *addr)
		sr := runStep(*addr, shapes, totalWeight, stepQPS, *concurrency, *maxInflight, *duration, *seed, int64(i), client)
		if after, okAfter := scrapeMem(client, *addr); okBefore && okAfter {
			mr := &memReport{
				GCCycles:       after.gcCycles - before.gcCycles,
				AllocBytes:     after.allocTotal - before.allocTotal,
				HeapStartBytes: before.heapAlloc,
				HeapEndBytes:   after.heapAlloc,
			}
			if sr.Requests > 0 {
				mr.AllocBytesPerReq = float64(mr.AllocBytes) / float64(sr.Requests)
			}
			sr.ServerMemory = mr
		}
		sort.Slice(sr.PerMix, func(i, j int) bool { return sr.PerMix[i].Name < sr.PerMix[j].Name })
		rep.Steps = append(rep.Steps, sr)
		fmt.Fprintf(os.Stderr, "dftp-loadgen:   %d reqs, %.1f qps, hit %.2f shed %.2f, client p50/p95/p99 = %.2f/%.2f/%.2f ms\n",
			sr.Requests, sr.AchievedQPS, sr.HitRate, sr.ShedRate,
			sr.ClientLatency.P50Ms, sr.ClientLatency.P95Ms, sr.ClientLatency.P99Ms)
		if sr.ServerMemory != nil {
			fmt.Fprintf(os.Stderr, "dftp-loadgen:   server: %d GC cycles, %.1f MB allocated (%.0f B/req), heap %.1f -> %.1f MB\n",
				sr.ServerMemory.GCCycles, float64(sr.ServerMemory.AllocBytes)/1e6, sr.ServerMemory.AllocBytesPerReq,
				float64(sr.ServerMemory.HeapStartBytes)/1e6, float64(sr.ServerMemory.HeapEndBytes)/1e6)
		}
	}

	out, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	out = append(out, '\n')
	if *reportPath == "" {
		_, err = os.Stdout.Write(out)
		return err
	}
	if err := os.WriteFile(*reportPath, out, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "dftp-loadgen: report written to %s\n", *reportPath)
	return nil
}
