// Command dftp-run solves one dFTP instance with one of the paper's
// algorithms — or races several of them as a portfolio — and prints the run
// metrics.
//
// Usage:
//
//	dftp-run -alg aseparator|agrid|awave|aseparatorauto|portfolio
//	         [-metric l1|l2|linf|lp:<p>]
//	         [-algs aseparator,agrid,...] [-objective min-makespan]
//	         [-instance file.json] [-family line|walk|disk|grid|chain]
//	         [-n 32] [-param 1.0] [-budget 0] [-seed 1]
//	         [-profiles "2,1:5,0.5:3"]
//	         [-faults "crash-stop,rate=0.3,seed=42,repair"]
//	         [-trace out.csv] [-json]
//
// Without -instance, an instance is generated from -family/-n/-param; the
// family may carry heterogeneity modifiers ("walk+speedband:2+capband:30",
// see instance.Family). With -metric, all distances — travel times, energy,
// the radius-1 look, and the derived (ℓ, ρ) tuple — are measured in the
// given ℓp metric (default ℓ2); unknown or degenerate metrics (lp:0,
// lp:NaN) are rejected up front. With -profiles, the robots get explicit
// per-robot capability profiles: a comma-separated "speed[:capacity]" list,
// one entry per robot, overriding any instance- or modifier-supplied
// profiles. With -alg portfolio, the -algs entrants race concurrently under
// -objective ("min-makespan", "min-energy", "weighted:0.7,0.3",
// "first-under-budget:makespan=120,energy=50") and the winning schedule is
// reported with per-racer stats. With -faults, the run executes under a
// deterministic fault plan: the spec is the kind followed by comma-separated
// options ("crash-stop,rate=0.3,seed=42,repair"; kinds crash-stop,
// crash-recovery, wake-drop, wake-dup, byzantine; options rate=, seed=,
// byz=, down=, repair), or a raw JSON object matching the service's
// "faults" field. With -json, the result is printed as the solver service's
// SolveResponse (or PortfolioResponse) — byte-comparable with a POST
// /v1/solve (or /v1/portfolio) reply for the same request.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"freezetag/internal/dftp"
	"freezetag/internal/geom"
	"freezetag/internal/instance"
	"freezetag/internal/portfolio"
	"freezetag/internal/service"
	"freezetag/internal/sim"
	"freezetag/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dftp-run:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		algName  = flag.String("alg", "aseparator", "algorithm: aseparator, agrid, awave, aseparatorauto, portfolio")
		metName  = flag.String("metric", "l2", "distance metric: "+geom.MetricNames())
		algsList = flag.String("algs", "aseparator,agrid,awave,aseparatorauto", "portfolio entrants, in priority order (with -alg portfolio)")
		objName  = flag.String("objective", "min-makespan", "portfolio objective (with -alg portfolio)")
		instPath = flag.String("instance", "", "instance JSON file (overrides -family)")
		family   = flag.String("family", "walk", "generated family: line, walk, disk, grid, chain")
		n        = flag.Int("n", 32, "number of robots for generated instances")
		param    = flag.Float64("param", 1.0, "family parameter (spacing / step / radius)")
		budget   = flag.Float64("budget", 0, "per-robot energy budget (0 = unconstrained)")
		seed     = flag.Int64("seed", 1, "random seed for generated instances (and the portfolio's racer streams)")
		profSpec = flag.String("profiles", "", `per-robot "speed[:capacity]" list, comma-separated (empty = homogeneous)`)
		faultStr = flag.String("faults", "", `fault plan: "<kind>[,rate=R][,seed=S][,byz=K][,down=D][,repair]" or JSON (empty = fault-free)`)
		traceOut = flag.String("trace", "", "write the event trace as CSV to this file")
		jsonOut  = flag.Bool("json", false, "print the result as the service's response JSON")
	)
	flag.Parse()

	metric, err := geom.ParseMetric(*metName)
	if err != nil {
		return fmt.Errorf("-metric: %w", err)
	}
	inst, err := loadOrGenerate(*instPath, *family, *n, *param, *seed)
	if err != nil {
		return err
	}
	if *profSpec != "" {
		profiles, err := parseProfiles(*profSpec)
		if err != nil {
			return fmt.Errorf("-profiles: %w", err)
		}
		inst.Profiles = profiles
	}
	if err := inst.ValidateProfiles(); err != nil {
		return err
	}
	faults, err := parseFaults(*faultStr)
	if err != nil {
		return fmt.Errorf("-faults: %w", err)
	}
	// One parameter derivation (O(n²) Prim) serves both the tuple and the
	// printed params.
	params := inst.ParamsIn(metric)
	tup := dftp.TupleFromParams(params)
	if !*jsonOut {
		fmt.Printf("instance: %s (n=%d)\n", inst.Name, inst.N())
		fmt.Printf("metric:   %s\n", metric.Name())
		if inst.Heterogeneous() {
			fmt.Printf("profiles: %d robots, min speed %.4g\n", len(inst.Profiles), inst.MinSpeed())
		}
		fmt.Printf("params:   ℓ*=%.4g ρ*=%.4g ξ=%.4g  tuple=(ℓ=%.4g, ρ=%.4g, n=%d)\n",
			params.Ell, params.Rho, params.Xi, tup.Ell, tup.Rho, tup.N)
		if faults != nil {
			fmt.Printf("faults:   %s rate=%.4g seed=%d repair=%v\n",
				faults.Kind, faults.Rate, faults.Seed, faults.Repair)
		}
	}

	if strings.EqualFold(*algName, "portfolio") {
		return runPortfolio(*algsList, *objName, metric, inst, tup, *budget, *seed, faults, *traceOut, *jsonOut)
	}

	alg, err := service.AlgorithmByName(*algName)
	if err != nil {
		return err
	}
	// Only pay for event recording when the trace is actually wanted.
	var rec *trace.Recorder
	var traceFn func(sim.Event)
	if *traceOut != "" {
		rec = trace.New()
		traceFn = rec.Record
	}
	res, rep, err := dftp.SolveFaulted(context.Background(), nil, metric, alg, inst, tup, *budget, faults, traceFn)
	if err != nil {
		return fmt.Errorf("simulation: %w", err)
	}

	if *jsonOut {
		hash := instance.HashRequestFaulted(metric, alg.Name(), inst, tup.Ell, tup.Rho, tup.N, *budget, faults.Canon())
		out := service.NewSolveResponse(hash, alg, metric, inst, tup, *budget, res, rep)
		out.Faults = service.NewFaultsEcho(faults, res, inst.N())
		body, err := json.Marshal(out)
		if err != nil {
			return err
		}
		fmt.Println(string(body))
	} else {
		fmt.Printf("algorithm: %s\n", alg.Name())
		printRun(res, rep, inst.N())
		printFaults(faults, res)
	}

	if *traceOut != "" {
		if err := writeTraceCSV(*traceOut, rec); err != nil {
			return err
		}
		if !*jsonOut {
			fmt.Printf("trace:     %d events -> %s\n", rec.Len(), *traceOut)
		}
	}
	if !res.AllAwake {
		return fmt.Errorf("run left %d robots asleep", inst.N()-res.Awakened)
	}
	return nil
}

// runPortfolio races the -algs entrants under the metric and reports the
// winner.
func runPortfolio(algsList, objName string, metric geom.Metric, inst *instance.Instance, tup dftp.Tuple,
	budget float64, seed int64, faults *dftp.Faults, traceOut string, jsonOut bool) error {
	var algs []dftp.Algorithm
	for _, name := range strings.Split(algsList, ",") {
		if name = strings.TrimSpace(name); name == "" {
			continue
		}
		alg, err := service.AlgorithmByName(name)
		if err != nil {
			return err
		}
		algs = append(algs, alg)
	}
	obj, err := portfolio.ParseObjective(objName)
	if err != nil {
		return err
	}
	pf := portfolio.Portfolio{Algorithms: algs, Objective: obj, Seed: seed}
	res, err := portfolio.Race(pf, inst, tup, budget,
		portfolio.Options{Trace: traceOut != "", Metric: metric, Faults: faults})
	if err != nil {
		return fmt.Errorf("race: %w", err)
	}

	if jsonOut {
		hash := instance.HashRequestFaulted(metric, pf.Name(), inst, tup.Ell, tup.Rho, tup.N, budget, faults.Canon())
		out := service.NewPortfolioResponse(hash, pf, metric, inst, tup, budget, res)
		out.Faults = service.NewFaultsEcho(faults, res.Res, inst.N())
		body, err := json.Marshal(out)
		if err != nil {
			return err
		}
		fmt.Println(string(body))
	} else {
		fmt.Printf("portfolio: %s\n", pf.Name())
		fmt.Printf("winner:    %s (racer %d, satisfied=%v, %d cancelled)\n",
			res.Racers[res.Winner].Algorithm, res.Winner, res.Satisfied, res.Cancelled)
		for _, rr := range res.Racers {
			switch rr.Status {
			case portfolio.StatusWon, portfolio.StatusCompleted:
				fmt.Printf("  racer %d %-14s %-9s makespan=%.4f maxEnergy=%.4f score=%.4f\n",
					rr.Index, rr.Algorithm, rr.Status, rr.Makespan, rr.MaxEnergy, rr.Score)
			case portfolio.StatusError:
				fmt.Printf("  racer %d %-14s %-9s %s\n", rr.Index, rr.Algorithm, rr.Status, rr.Err)
			default:
				fmt.Printf("  racer %d %-14s %-9s\n", rr.Index, rr.Algorithm, rr.Status)
			}
		}
		printRun(res.Res, res.Rep, inst.N())
		printFaults(faults, res.Res)
	}

	if traceOut != "" {
		rec := trace.New()
		for _, ev := range res.Events {
			rec.Record(ev)
		}
		if err := writeTraceCSV(traceOut, rec); err != nil {
			return err
		}
		if !jsonOut {
			fmt.Printf("trace:     %d events (winner) -> %s\n", rec.Len(), traceOut)
		}
	}
	if !res.Res.AllAwake {
		return fmt.Errorf("winning run left %d robots asleep", inst.N()-res.Res.Awakened)
	}
	return nil
}

// printRun prints the shared result block of a single run.
func printRun(res sim.Result, rep *dftp.Report, n int) {
	fmt.Printf("makespan:  %.4f\n", res.Makespan)
	fmt.Printf("duration:  %.4f\n", res.Duration)
	fmt.Printf("awakened:  %d/%d (all awake: %v)\n", res.Awakened, n, res.AllAwake)
	fmt.Printf("energy:    max=%.4f total=%.4f\n", res.MaxEnergy, res.TotalEnergy)
	fmt.Printf("rounds:    %d\n", rep.Rounds)
	if len(rep.Misses) > 0 {
		fmt.Printf("schedule misses: %d (first: %s)\n", len(rep.Misses), rep.Misses[0])
	}
	if len(res.Violations) > 0 {
		fmt.Printf("budget violations: %d (first: %s)\n", len(res.Violations), res.Violations[0])
	}
}

// printFaults prints the fault/repair block of a faulted run.
func printFaults(f *dftp.Faults, res sim.Result) {
	if f == nil {
		return
	}
	fs := res.Faults
	fmt.Printf("faults:    injected=%d (crash=%d recover=%d drop=%d dup=%d byz=%d) skips=%d repairs=%d\n",
		fs.Injected(), fs.CrashStops, fs.Recoveries, fs.WakeDrops, fs.WakeDups,
		fs.ByzTakeovers, fs.RosterSkips, fs.Repairs)
}

// parseFaults parses the -faults spec: empty means fault-free, a leading
// "{" means the service's JSON "faults" object, anything else is the
// compact form "<kind>[,rate=R][,seed=S][,byz=K][,down=D][,repair[=bool]]".
func parseFaults(spec string) (*dftp.Faults, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	f := &dftp.Faults{}
	if strings.HasPrefix(spec, "{") {
		if err := json.Unmarshal([]byte(spec), f); err != nil {
			return nil, err
		}
		return f, f.Validate()
	}
	parts := strings.Split(spec, ",")
	f.Kind = strings.TrimSpace(parts[0])
	for _, part := range parts[1:] {
		key, val, hasVal := strings.Cut(strings.TrimSpace(part), "=")
		var err error
		switch key {
		case "rate":
			f.Rate, err = strconv.ParseFloat(val, 64)
		case "seed":
			f.Seed, err = strconv.ParseInt(val, 10, 64)
		case "byz":
			f.Byzantine, err = strconv.Atoi(val)
		case "down":
			f.Downtime, err = strconv.ParseFloat(val, 64)
		case "repair":
			f.Repair = true
			if hasVal {
				f.Repair, err = strconv.ParseBool(val)
			}
		default:
			return nil, fmt.Errorf("unknown option %q (have rate, seed, byz, down, repair)", key)
		}
		if err != nil {
			return nil, fmt.Errorf("option %q: %v", key, err)
		}
	}
	return f, f.Validate()
}

func writeTraceCSV(path string, rec *trace.Recorder) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("trace file: %w", err)
	}
	defer f.Close()
	return rec.WriteCSV(f)
}

func loadOrGenerate(path, family string, n int, param float64, seed int64) (*instance.Instance, error) {
	if path != "" {
		return instance.Load(path)
	}
	return instance.Family(family, n, param, seed)
}

// parseProfiles parses the -profiles spec: a comma-separated list of
// "speed" or "speed:capacity" entries, one per sleeping robot, e.g.
// "2,1:5,0.5:3". Validation of the parsed values (speeds finite and > 0)
// happens in instance.ValidateProfiles.
func parseProfiles(spec string) ([]instance.Profile, error) {
	parts := strings.Split(spec, ",")
	profiles := make([]instance.Profile, 0, len(parts))
	for i, part := range parts {
		speedStr, capStr, hasCap := strings.Cut(strings.TrimSpace(part), ":")
		speed, err := strconv.ParseFloat(speedStr, 64)
		if err != nil {
			return nil, fmt.Errorf("entry %d: bad speed %q", i, speedStr)
		}
		p := instance.Profile{Speed: speed}
		if hasCap {
			if p.Capacity, err = strconv.ParseFloat(capStr, 64); err != nil {
				return nil, fmt.Errorf("entry %d: bad capacity %q", i, capStr)
			}
		}
		profiles = append(profiles, p)
	}
	return profiles, nil
}
