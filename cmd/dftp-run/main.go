// Command dftp-run solves one dFTP instance with one of the paper's
// algorithms and prints the run metrics.
//
// Usage:
//
//	dftp-run -alg aseparator|agrid|awave|aseparatorauto [-instance file.json]
//	         [-family line|walk|disk|grid|chain] [-n 32] [-param 1.0]
//	         [-budget 0] [-seed 1] [-trace out.csv] [-json]
//
// Without -instance, an instance is generated from -family/-n/-param.
// With -json, the result is printed as the solver service's SolveResponse
// (one compact JSON object) — byte-comparable with a POST /v1/solve reply
// for the same request.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"freezetag/internal/dftp"
	"freezetag/internal/instance"
	"freezetag/internal/service"
	"freezetag/internal/sim"
	"freezetag/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dftp-run:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		algName  = flag.String("alg", "aseparator", "algorithm: aseparator, agrid, awave, aseparatorauto")
		instPath = flag.String("instance", "", "instance JSON file (overrides -family)")
		family   = flag.String("family", "walk", "generated family: line, walk, disk, grid, chain")
		n        = flag.Int("n", 32, "number of robots for generated instances")
		param    = flag.Float64("param", 1.0, "family parameter (spacing / step / radius)")
		budget   = flag.Float64("budget", 0, "per-robot energy budget (0 = unconstrained)")
		seed     = flag.Int64("seed", 1, "random seed for generated instances")
		traceOut = flag.String("trace", "", "write the event trace as CSV to this file")
		jsonOut  = flag.Bool("json", false, "print the result as the service's SolveResponse JSON")
	)
	flag.Parse()

	alg, err := service.AlgorithmByName(*algName)
	if err != nil {
		return err
	}
	inst, err := loadOrGenerate(*instPath, *family, *n, *param, *seed)
	if err != nil {
		return err
	}
	tup := dftp.TupleFor(inst)
	if !*jsonOut {
		fmt.Printf("instance: %s (n=%d)\n", inst.Name, inst.N())
		p := inst.Params()
		fmt.Printf("params:   ℓ*=%.4g ρ*=%.4g ξ=%.4g  tuple=(ℓ=%.4g, ρ=%.4g, n=%d)\n",
			p.Ell, p.Rho, p.Xi, tup.Ell, tup.Rho, tup.N)
	}

	// Only pay for event recording when the trace is actually wanted.
	var rec *trace.Recorder
	var traceFn func(sim.Event)
	if *traceOut != "" {
		rec = trace.New()
		traceFn = rec.Record
	}
	res, rep, err := dftp.SolveTraced(alg, inst, tup, *budget, traceFn)
	if err != nil {
		return fmt.Errorf("simulation: %w", err)
	}

	if *jsonOut {
		hash := instance.HashRequest(alg.Name(), inst, tup.Ell, tup.Rho, tup.N, *budget)
		body, err := json.Marshal(service.NewSolveResponse(hash, alg, inst, tup, *budget, res, rep))
		if err != nil {
			return err
		}
		fmt.Println(string(body))
	} else {
		fmt.Printf("algorithm: %s\n", alg.Name())
		fmt.Printf("makespan:  %.4f\n", res.Makespan)
		fmt.Printf("duration:  %.4f\n", res.Duration)
		fmt.Printf("awakened:  %d/%d (all awake: %v)\n", res.Awakened, inst.N(), res.AllAwake)
		fmt.Printf("energy:    max=%.4f total=%.4f\n", res.MaxEnergy, res.TotalEnergy)
		fmt.Printf("rounds:    %d\n", rep.Rounds)
		if len(rep.Misses) > 0 {
			fmt.Printf("schedule misses: %d (first: %s)\n", len(rep.Misses), rep.Misses[0])
		}
		if len(res.Violations) > 0 {
			fmt.Printf("budget violations: %d (first: %s)\n", len(res.Violations), res.Violations[0])
		}
	}

	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			return fmt.Errorf("trace file: %w", err)
		}
		defer f.Close()
		if err := rec.WriteCSV(f); err != nil {
			return err
		}
		if !*jsonOut {
			fmt.Printf("trace:     %d events -> %s\n", rec.Len(), *traceOut)
		}
	}
	if !res.AllAwake {
		return fmt.Errorf("run left %d robots asleep", inst.N()-res.Awakened)
	}
	return nil
}

func loadOrGenerate(path, family string, n int, param float64, seed int64) (*instance.Instance, error) {
	if path != "" {
		return instance.Load(path)
	}
	return instance.Family(family, n, param, seed)
}
