// Command dftp-serve runs the freeze-tag solver as a long-running HTTP
// daemon: a content-addressed result cache and a bounded job queue in front
// of the deterministic simulator.
//
// Usage:
//
//	dftp-serve [-addr :8080] [-workers 0] [-queue 64] [-cache-mb 64] [-traces]
//
// Endpoints:
//
//	POST /v1/solve         one solve (inline instance or family/n/param/seed)
//	POST /v1/portfolio     race several algorithms, return the winner
//	POST /v1/batch         many solves, order-preserving response
//	GET  /v1/solve/{hash}  cache probe (404 on miss, never computes)
//	GET  /v1/trace/{hash}  cached event stream as NDJSON
//	GET  /healthz          liveness
//	GET  /statsz           cache hit rate, queue depth, solves/races served
//
// SIGINT/SIGTERM shut the server down gracefully: in-flight requests
// complete, the queue drains, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"freezetag/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dftp-serve:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "solver pool size (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 64, "job queue depth (full queue sheds with 429)")
		cacheMB = flag.Int64("cache-mb", 64, "result cache budget in MiB (approximate retained bytes: responses + traces)")
		traces  = flag.Bool("traces", true, "retain per-solve event traces for GET /v1/trace/{hash} (disable to cache responses only)")
	)
	flag.Parse()

	svc := service.New(service.Config{
		Workers:    *workers,
		QueueDepth: *queue,
		CacheBytes: *cacheMB << 20,
		DropTraces: !*traces,
	})
	defer svc.Close()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	st := svc.Stats()
	fmt.Printf("dftp-serve: listening on %s (workers=%d queue=%d cache=%dMiB traces=%v)\n",
		*addr, st.Workers, st.QueueCapacity, st.CacheCapacity>>20, st.TracesRetained)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Println("dftp-serve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
