// Command dftp-serve runs the freeze-tag solver as a long-running HTTP
// daemon: a content-addressed result cache and a bounded job queue in front
// of the deterministic simulator.
//
// Usage:
//
//	dftp-serve [-addr :8080] [-workers 0] [-queue 64] [-cache-mb 64] [-traces]
//	           [-log-format text|json] [-log-level info] [-pprof addr]
//	           [-trace-buffer 256] [-trace-sample 0.01] [-trace-slow 250ms]
//
// Endpoints:
//
//	POST /v1/solve         one solve (inline instance or family/n/param/seed)
//	POST /v1/portfolio     race several algorithms, return the winner
//	POST /v1/batch         many solves, order-preserving response
//	GET  /v1/solve/{hash}  cache probe (404 on miss, never computes)
//	GET  /v1/trace/{hash}  cached event stream as NDJSON
//	GET  /healthz          liveness
//	GET  /statsz           cache hit rate, queue depth, solves/races served (JSON)
//	GET  /metricsz         full metric registry, Prometheus text exposition
//	GET  /buildz           build/version info and process uptime
//	GET  /tracez           flight recorder: recent kept request traces
//	GET  /tracez/{id}      one trace; ?format=trace-event for Perfetto
//
// Every solve/portfolio response carries a Server-Timing header with the
// request's per-stage breakdown and trace ID; -log-format/-log-level
// control the structured per-request log on stderr. -pprof starts
// net/http/pprof on a separate listener (keep it off public interfaces).
//
// Request tracing keeps slow (≥ -trace-slow), errored, and shed requests
// always, plus a -trace-sample fraction of the rest, in a -trace-buffer
// ring served by /tracez. Set -trace-buffer 0 to disable tracing,
// -trace-sample 0 to keep only the always-keep classes, -trace-slow 0 to
// drop the slow policy.
//
// SIGINT/SIGTERM shut the server down gracefully: in-flight requests
// complete, the queue drains, then the process exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"freezetag/internal/service"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dftp-serve:", err)
		os.Exit(1)
	}
}

// newLogger builds the request logger from the -log-format/-log-level
// flags. Format "none" (or empty) disables request logging entirely — the
// service's hot path then never touches the logging machinery.
func newLogger(format, level string) (*slog.Logger, error) {
	if format == "" || format == "none" {
		return nil, nil
	}
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("-log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("-log-format %q: want text, json, or none", format)
	}
}

func run() error {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		workers   = flag.Int("workers", 0, "solver pool size (0 = GOMAXPROCS)")
		queue     = flag.Int("queue", 64, "job queue depth (full queue sheds with 429)")
		cacheMB   = flag.Int64("cache-mb", 64, "result cache budget in MiB (approximate retained bytes: responses + traces)")
		traces    = flag.Bool("traces", true, "retain per-solve event traces for GET /v1/trace/{hash} (disable to cache responses only)")
		logFormat = flag.String("log-format", "text", "structured request log format: text, json, or none")
		logLevel  = flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this separate address (empty = disabled)")

		traceBuffer = flag.Int("trace-buffer", 256, "completed-trace ring capacity for GET /tracez (0 = disable request tracing)")
		traceSample = flag.Float64("trace-sample", 0.01, "probability of keeping a fast successful request's trace (slow/errored/shed always keep)")
		traceSlow   = flag.Duration("trace-slow", 250*time.Millisecond, "always keep traces of requests at least this slow (0 = no slow policy)")
	)
	flag.Parse()

	// The service treats 0 as "use default" and negative as "disabled";
	// for flags the natural spelling of disabled is 0, so map it.
	cfgBuffer := *traceBuffer
	if cfgBuffer == 0 {
		cfgBuffer = -1
	}
	cfgSample := *traceSample
	if cfgSample == 0 {
		cfgSample = -1
	}
	cfgSlow := *traceSlow
	if cfgSlow == 0 {
		cfgSlow = -1
	}

	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		return err
	}

	svc := service.New(service.Config{
		Workers:     *workers,
		QueueDepth:  *queue,
		CacheBytes:  *cacheMB << 20,
		DropTraces:  !*traces,
		Logger:      logger,
		TraceBuffer: cfgBuffer,
		TraceSample: cfgSample,
		TraceSlow:   cfgSlow,
	})
	defer svc.Close()

	srv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	if *pprofAddr != "" {
		// The blank net/http/pprof import registers its handlers on
		// http.DefaultServeMux; serving that mux on a separate listener keeps
		// the profiler off the API address entirely.
		pprofSrv := &http.Server{
			Addr:              *pprofAddr,
			Handler:           http.DefaultServeMux,
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := pprofSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				fmt.Fprintln(os.Stderr, "dftp-serve: pprof:", err)
			}
		}()
		defer pprofSrv.Close()
		fmt.Printf("dftp-serve: pprof on %s\n", *pprofAddr)
	}
	st := svc.Stats()
	fmt.Printf("dftp-serve: listening on %s (workers=%d queue=%d cache=%dMiB traces=%v)\n",
		*addr, st.Workers, st.QueueCapacity, st.CacheCapacity>>20, st.TracesRetained)

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop()
	fmt.Println("dftp-serve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errCh; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
