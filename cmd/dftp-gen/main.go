// Command dftp-gen generates dFTP instances (including the paper's
// lower-bound constructions) and writes them as JSON.
//
// Usage:
//
//	dftp-gen -family line -n 32 -param 1.5 -out line.json
//	dftp-gen -family path -ell 2 -rho 40 -B 3 -xi 100 -out path.json
//	dftp-gen -family diskgrid -ell 2 -rho 16 -n 64 -out hard.json
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strings"

	"freezetag/internal/instance"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dftp-gen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		family = flag.String("family", "walk", "line, walk, disk, grid, chain, path, diskgrid, centers")
		n      = flag.Int("n", 32, "number of robots")
		param  = flag.Float64("param", 1.0, "family parameter (spacing / step / radius)")
		ell    = flag.Float64("ell", 2, "ℓ for path/diskgrid/centers")
		rho    = flag.Float64("rho", 16, "ρ for path/diskgrid/centers")
		b      = flag.Float64("B", 3, "energy budget for the Theorem 6 path")
		xi     = flag.Float64("xi", 0, "prescribed ξ for the Theorem 6 path (0 = ρ)")
		seed   = flag.Int64("seed", 1, "random seed")
		out    = flag.String("out", "", "output JSON path (default stdout summary only)")
	)
	flag.Parse()

	var in *instance.Instance
	var err error
	rng := rand.New(rand.NewSource(*seed))
	switch strings.ToLower(*family) {
	case "line":
		in = instance.Line(*n, *param)
	case "walk":
		in = instance.RandomWalk(rng, *n, *param)
	case "disk":
		in = instance.UniformDisk(rng, *n, *param*10)
	case "grid":
		k := 1
		for k*k < *n {
			k++
		}
		in = instance.GridSwarm(k, *param)
	case "chain":
		in = instance.ClusterChain(rng, *n/8+1, 8, *param*5, *param)
	case "path":
		x := *xi
		if x <= 0 {
			x = *rho
		}
		in, err = instance.BuildPath(instance.PathSpec{Ell: *ell, Rho: *rho, B: *b, Xi: x})
		if err != nil {
			return err
		}
	case "diskgrid":
		in = instance.DiskGridStatic(*rho, *ell, *n)
	case "centers":
		in = instance.CentersOnly(*rho, *ell, *n)
	default:
		return fmt.Errorf("unknown family %q", *family)
	}

	p := in.Params()
	fmt.Printf("generated %s: n=%d ℓ*=%.4g ρ*=%.4g ξ=%.4g\n", in.Name, in.N(), p.Ell, p.Rho, p.Xi)
	if *out != "" {
		if err := in.Save(*out); err != nil {
			return err
		}
		fmt.Printf("written to %s\n", *out)
	}
	return nil
}
