// Command dftp-trace runs one algorithm on one instance with full event
// tracing and prints the phase/wake timeline that regenerates the content of
// the paper's Figures 1–2 (ASeparator phases) and the wave pictures of
// AGrid/AWave.
//
// Usage:
//
//	dftp-trace -alg aseparator -family diskgrid -rho 12 -ell 2 -n 48 [-csv out.csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"freezetag/internal/dftp"
	"freezetag/internal/instance"
	"freezetag/internal/sim"
	"freezetag/internal/trace"
	"freezetag/internal/viz"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dftp-trace:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		algName = flag.String("alg", "aseparator", "aseparator, agrid, awave")
		family  = flag.String("family", "diskgrid", "diskgrid, line, centers")
		ell     = flag.Float64("ell", 2, "ℓ")
		rho     = flag.Float64("rho", 12, "ρ")
		n       = flag.Int("n", 48, "number of robots")
		csvOut  = flag.String("csv", "", "write the raw event trace as CSV")
		plot    = flag.Int("plot", 0, "render this many ASCII wake-front frames")
	)
	flag.Parse()

	var inst *instance.Instance
	switch strings.ToLower(*family) {
	case "diskgrid":
		inst = instance.DiskGridStatic(*rho, *ell, *n)
	case "centers":
		inst = instance.CentersOnly(*rho, *ell, *n)
	case "line":
		inst = instance.Line(*n, *ell)
	default:
		return fmt.Errorf("unknown family %q", *family)
	}

	var alg dftp.Algorithm
	switch strings.ToLower(*algName) {
	case "aseparator":
		alg = dftp.ASeparator{}
	case "agrid":
		alg = dftp.AGrid{}
	case "awave":
		alg = dftp.AWave{}
	default:
		return fmt.Errorf("unknown algorithm %q", *algName)
	}

	rec := trace.New()
	e := sim.NewEngine(sim.Config{Source: inst.Source, Sleepers: inst.Points, Trace: rec.Record})
	tup := dftp.TupleFor(inst)
	rep := alg.Install(e, tup)
	res, err := e.Run()
	if err != nil {
		return err
	}

	fmt.Printf("%s on %s: makespan %.3f, %d events, rounds/depth %d\n",
		alg.Name(), inst.Name, res.Makespan, rec.Len(), rep.Rounds)
	for _, kind := range []string{"spawn", "look", "move", "wake", "barrier", "done"} {
		fmt.Printf("  %-8s %d\n", kind, rec.CountKind(kind))
	}

	// Wake-front timeline in tenths of the makespan — the "wave" picture.
	times, counts := rec.WakeFront()
	fmt.Println("wake front (t, awake):")
	if len(times) > 0 {
		step := res.Makespan / 10
		idx := 0
		for b := 1; b <= 10; b++ {
			limit := float64(b) * step
			for idx < len(times) && times[idx] <= limit {
				idx++
			}
			cnt := 0
			if idx > 0 {
				cnt = counts[idx-1]
			}
			fmt.Printf("  t=%8.2f  %4d/%d\n", limit, cnt, inst.N())
		}
	}

	if *plot > 0 {
		fmt.Println(viz.Legend())
		for _, fr := range viz.Replay(72, 24, inst.Source, inst.Points, rec.Events(), *plot) {
			fmt.Printf("t = %.2f  (%d/%d awake)\n%s", fr.T, fr.Awake, inst.N(), fr.Canvas)
		}
	}

	if *csvOut != "" {
		f, err := os.Create(*csvOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := rec.WriteCSV(f); err != nil {
			return err
		}
		fmt.Printf("trace written to %s\n", *csvOut)
	}
	if !res.AllAwake {
		return fmt.Errorf("%d robots left asleep", inst.N()-res.Awakened)
	}
	return nil
}
