// Command dftp-bench regenerates every experiment table of the reproduction
// (the paper's Table 1 rows, the lower-bound constructions, and the
// lemma-level building-block measurements) and renders them to stdout or to
// CSV files.
//
// Usage:
//
//	dftp-bench [-scale quick|full] [-csv dir] [-only E3]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"freezetag/internal/experiments"
	"freezetag/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dftp-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scaleName = flag.String("scale", "quick", "experiment scale: quick or full")
		csvDir    = flag.String("csv", "", "also write each table as CSV into this directory")
		only      = flag.String("only", "", "run only tables whose title contains this substring")
		ablations = flag.Bool("ablations", false, "also run the ablation suite (A1-A4)")
	)
	flag.Parse()

	scale := experiments.Quick
	if strings.EqualFold(*scaleName, "full") {
		scale = experiments.Full
	}
	start := time.Now()
	tables, err := experiments.All(scale)
	if err != nil {
		return err
	}
	if *ablations {
		abl, err := experiments.Ablations(scale)
		if err != nil {
			return err
		}
		tables = append(tables, abl...)
	}
	shown := 0
	for _, tb := range tables {
		if *only != "" && !strings.Contains(tb.Title, *only) {
			continue
		}
		shown++
		if err := tb.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		if *csvDir != "" {
			if err := writeCSV(*csvDir, tb); err != nil {
				return err
			}
		}
	}
	fmt.Printf("%d tables in %.1fs (scale %s)\n", shown, time.Since(start).Seconds(), *scaleName)
	return nil
}

func writeCSV(dir string, tb *report.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, tb.Title)
	if len(name) > 60 {
		name = name[:60]
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return tb.WriteCSV(f)
}
