// Command dftp-bench regenerates every experiment table of the reproduction
// (the paper's Table 1 rows, the lower-bound constructions, and the
// lemma-level building-block measurements) and renders them to stdout or to
// CSV files.
//
// Usage:
//
//	dftp-bench [-scale quick|full] [-workers N] [-csv dir] [-only E3]
//
// Trials within each table fan out over a worker pool (GOMAXPROCS workers by
// default); per-trial RNG streams are derived from the sweep seed and trial
// index, so the tables are bit-identical at any -workers value.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"freezetag/internal/experiments"
	"freezetag/internal/report"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dftp-bench:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		scaleName = flag.String("scale", "quick", "experiment scale: quick or full")
		csvDir    = flag.String("csv", "", "also write each table as CSV into this directory")
		only      = flag.String("only", "", "run only tables whose title contains this substring")
		ablations = flag.Bool("ablations", false, "also run the ablation suite (A1-A5)")
		workers   = flag.Int("workers", 0, "worker-pool size for parallel trials (0 = GOMAXPROCS)")
		seed      = flag.Int64("seed", experiments.DefaultSeed, "sweep seed for the per-trial RNG streams")
	)
	flag.Parse()

	scale := experiments.Quick
	if strings.EqualFold(*scaleName, "full") {
		scale = experiments.Full
	}
	opts := []experiments.Option{experiments.WithSeed(*seed)}
	if *workers != 0 {
		opts = append(opts, experiments.WithWorkers(*workers))
	}
	runner := experiments.NewRunner(opts...)
	start := time.Now()
	tables, err := runner.All(scale)
	if err != nil {
		return err
	}
	if *ablations {
		abl, err := runner.Ablations(scale)
		if err != nil {
			return err
		}
		tables = append(tables, abl...)
	}
	shown := 0
	for _, tb := range tables {
		if *only != "" && !strings.Contains(tb.Title, *only) {
			continue
		}
		shown++
		if err := tb.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		if *csvDir != "" {
			if err := writeCSV(*csvDir, tb); err != nil {
				return err
			}
		}
	}
	fmt.Printf("%d tables in %.1fs (scale %s, %d workers)\n",
		shown, time.Since(start).Seconds(), *scaleName, runner.Workers())
	return nil
}

func writeCSV(dir string, tb *report.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	name := strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		default:
			return '_'
		}
	}, tb.Title)
	if len(name) > 60 {
		name = name[:60]
	}
	f, err := os.Create(filepath.Join(dir, name+".csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	return tb.WriteCSV(f)
}
