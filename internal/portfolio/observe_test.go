package portfolio

import (
	"reflect"
	"sync"
	"testing"

	"freezetag/internal/dftp"
)

// TestObserveReportsEveryRacer: a full (no early-stop) race observes one
// RacerObservation per entrant, each with a positive wall time and no
// abort.
func TestObserveReportsEveryRacer(t *testing.T) {
	in := walkInstance(1)
	tup := dftp.TupleFor(in)
	var mu sync.Mutex
	seen := make(map[int]RacerObservation)
	p := Portfolio{Algorithms: allFour(), Seed: 7}
	if _, err := Race(p, in, tup, 0, Options{Workers: 2, Observe: func(ob RacerObservation) {
		mu.Lock()
		seen[ob.Index] = ob
		mu.Unlock()
	}}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(p.Algorithms) {
		t.Fatalf("observed %d racers, want %d", len(seen), len(p.Algorithms))
	}
	for i, ob := range seen {
		if ob.Aborted {
			t.Errorf("racer %d observed as aborted in a race without early stop", i)
		}
		if ob.Wall <= 0 {
			t.Errorf("racer %d wall time = %v, want > 0", i, ob.Wall)
		}
		if ob.Algorithm != p.Algorithms[i].Name() {
			t.Errorf("racer %d algorithm = %q, want %q", i, ob.Algorithm, p.Algorithms[i].Name())
		}
		if ob.CancelLatency != 0 {
			t.Errorf("racer %d cancel latency = %v, want 0 (never cancelled)", i, ob.CancelLatency)
		}
	}
}

// TestObserveCancelledRacers: under a trivially satisfiable first-under
// objective at one worker, racer 0 wins and every later racer is skipped —
// the observations must say so, with zero wall time for never-started runs.
func TestObserveCancelledRacers(t *testing.T) {
	in := walkInstance(1)
	tup := dftp.TupleFor(in)
	var mu sync.Mutex
	var obs []RacerObservation
	p := Portfolio{Algorithms: allFour(), Objective: FirstUnder{MaxMakespan: 1e9}, Seed: 7}
	if _, err := Race(p, in, tup, 0, Options{Workers: 1, Observe: func(ob RacerObservation) {
		mu.Lock()
		obs = append(obs, ob)
		mu.Unlock()
	}}); err != nil {
		t.Fatal(err)
	}
	if len(obs) != len(p.Algorithms) {
		t.Fatalf("observed %d racers, want %d", len(obs), len(p.Algorithms))
	}
	aborted := 0
	for _, ob := range obs {
		if ob.Aborted {
			aborted++
			if ob.Wall != 0 {
				// At one worker the race is decided before any later racer
				// starts, so aborted racers were skipped, not stopped mid-run.
				t.Errorf("racer %d skipped but reports wall time %v", ob.Index, ob.Wall)
			}
		}
	}
	if aborted != len(p.Algorithms)-1 {
		t.Errorf("aborted = %d, want %d", aborted, len(p.Algorithms)-1)
	}
}

// TestObserveDoesNotChangeOutcome: racing with and without an observer
// produces identical deterministic results.
func TestObserveDoesNotChangeOutcome(t *testing.T) {
	in := walkInstance(1)
	tup := dftp.TupleFor(in)
	p := Portfolio{Algorithms: allFour(), Seed: 7}
	ref, err := Race(p, in, tup, 0, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Race(p, in, tup, 0, Options{Workers: 2, Observe: func(RacerObservation) {}})
	if err != nil {
		t.Fatal(err)
	}
	if got.Winner != ref.Winner || !reflect.DeepEqual(got.Racers, ref.Racers) {
		t.Fatal("observer changed the race outcome")
	}
}
