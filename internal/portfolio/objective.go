package portfolio

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"freezetag/internal/sim"
)

// Objective judges a race: it ranks completed runs and, for early-stop
// objectives, decides when a run is good enough to end the race before the
// remaining racers finish.
type Objective interface {
	// Name is the canonical descriptor of the objective (all spellings
	// ParseObjective accepts for the same objective produce one Name). It is
	// part of the portfolio's content hash, so equal objectives must produce
	// equal names.
	Name() string
	// Score is the scalar the portfolio minimizes when picking the winner
	// (lower is better). Runs that wake every robot always beat runs that do
	// not, regardless of score.
	Score(res sim.Result) float64
	// Accept reports whether res meets the objective's early-stop target.
	// The lowest-indexed accepting racer wins and every racer behind it is
	// cancelled; objectives with no early-stop target always return false.
	Accept(res sim.Result) bool
}

// MinMakespan picks the completed run with the smallest makespan.
type MinMakespan struct{}

// Name implements Objective.
func (MinMakespan) Name() string { return "min-makespan" }

// Score implements Objective.
func (MinMakespan) Score(res sim.Result) float64 { return res.Makespan }

// Accept implements Objective: never early-stops.
func (MinMakespan) Accept(sim.Result) bool { return false }

// MinEnergy picks the completed run with the smallest per-robot peak energy.
type MinEnergy struct{}

// Name implements Objective.
func (MinEnergy) Name() string { return "min-energy" }

// Score implements Objective.
func (MinEnergy) Score(res sim.Result) float64 { return res.MaxEnergy }

// Accept implements Objective: never early-stops.
func (MinEnergy) Accept(sim.Result) bool { return false }

// Weighted blends makespan and peak energy: score = WMakespan·makespan +
// WEnergy·maxEnergy. Weights must be non-negative and not both zero.
type Weighted struct {
	WMakespan float64
	WEnergy   float64
}

// Name implements Objective.
func (w Weighted) Name() string {
	return fmt.Sprintf("weighted(%s,%s)", canonNum(w.WMakespan), canonNum(w.WEnergy))
}

// Score implements Objective.
func (w Weighted) Score(res sim.Result) float64 {
	return w.WMakespan*res.Makespan + w.WEnergy*res.MaxEnergy
}

// Accept implements Objective: never early-stops.
func (Weighted) Accept(sim.Result) bool { return false }

// FirstUnder is the early-stop objective: the first racer (in portfolio
// order) whose completed run wakes every robot within the given caps wins
// immediately and the racers behind it are cancelled — the speed win of the
// portfolio. A cap ≤ 0 leaves that axis unconstrained; at least one cap must
// be set. When no racer meets the caps, the race degrades to min-makespan
// over the completed runs and the result is marked unsatisfied.
type FirstUnder struct {
	MaxMakespan float64
	MaxEnergy   float64
}

// Name implements Objective.
func (f FirstUnder) Name() string {
	return fmt.Sprintf("first-under(%s,%s)", canonNum(f.MaxMakespan), canonNum(f.MaxEnergy))
}

// Score implements Objective: the fallback rank when no racer satisfies.
func (FirstUnder) Score(res sim.Result) float64 { return res.Makespan }

// Accept implements Objective.
func (f FirstUnder) Accept(res sim.Result) bool {
	if !res.AllAwake {
		return false
	}
	if f.MaxMakespan > 0 && res.Makespan > f.MaxMakespan {
		return false
	}
	if f.MaxEnergy > 0 && res.MaxEnergy > f.MaxEnergy {
		return false
	}
	return true
}

// UnderFaults ranks algorithms by their worst makespan over several
// independent fault draws — the portfolio's resilience objective. It requires
// the race to run under a fault specification (Options.Faults); each entrant
// endures Draws seeded draws (draw j reseeds the specification with
// rngstream.TrialSeed(seed, j)) and is scored by its representative — worst —
// run: incomplete wake-ups dominate, then the largest makespan. The winner is
// therefore the algorithm that degrades least under the fault model, not the
// one that got the luckiest draw.
type UnderFaults struct {
	// Draws is the number of independent fault draws per entrant; ≤ 0 means 3.
	Draws int
}

// draws returns the effective draw count.
func (u UnderFaults) draws() int {
	if u.Draws <= 0 {
		return 3
	}
	return u.Draws
}

// Name implements Objective.
func (u UnderFaults) Name() string {
	return fmt.Sprintf("min-makespan-under-faults(draws=%d)", u.draws())
}

// Score implements Objective: the representative (worst-draw) makespan.
func (UnderFaults) Score(res sim.Result) float64 { return res.Makespan }

// Accept implements Objective: never early-stops — every entrant must endure
// all of its draws.
func (UnderFaults) Accept(sim.Result) bool { return false }

// validate rejects objectives whose parameters make the race meaningless.
// Non-finite parameters are rejected outright: a NaN cap is never exceeded
// by a comparison, so it would silently disable the budget it claims to
// enforce, and NaN/Inf weights make every score comparison false (the race
// would always pick entrant 0).
func validate(obj Objective) error {
	finite := func(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }
	switch o := obj.(type) {
	case Weighted:
		if !finite(o.WMakespan) || !finite(o.WEnergy) {
			return fmt.Errorf("portfolio: weighted objective needs finite weights, got (%g, %g)",
				o.WMakespan, o.WEnergy)
		}
		if o.WMakespan < 0 || o.WEnergy < 0 || (o.WMakespan == 0 && o.WEnergy == 0) {
			return fmt.Errorf("portfolio: weighted objective needs non-negative weights, not both zero (got %g, %g)",
				o.WMakespan, o.WEnergy)
		}
	case FirstUnder:
		if !finite(o.MaxMakespan) || !finite(o.MaxEnergy) {
			return fmt.Errorf("portfolio: first-under-budget objective needs finite caps, got (%g, %g)",
				o.MaxMakespan, o.MaxEnergy)
		}
		if o.MaxMakespan <= 0 && o.MaxEnergy <= 0 {
			return fmt.Errorf("portfolio: first-under-budget objective needs a makespan or energy cap")
		}
	case UnderFaults:
		// Each draw is a full simulation per entrant; the cap bounds the work
		// a single request can demand of the serving tier.
		if o.Draws > 64 {
			return fmt.Errorf("portfolio: under-faults objective caps at 64 draws, got %d", o.Draws)
		}
	}
	return nil
}

// canonNum prints a float in shortest-round-trip form: deterministic and
// injective, so distinct parameters give distinct canonical names.
func canonNum(f float64) string { return strconv.FormatFloat(f, 'g', -1, 64) }

// ObjectiveNames lists the objective spellings ParseObjective accepts.
func ObjectiveNames() []string {
	return []string{"min-makespan", "min-energy", "weighted:WM,WE",
		"first-under-budget:makespan=M[,energy=E]",
		"min-makespan-under-faults[:draws=N]"}
}

// ParseObjective builds an Objective from its wire/CLI spelling:
//
//	min-makespan                               (alias: makespan)
//	min-energy                                 (alias: energy)
//	weighted:0.7,0.3                           (makespan weight, energy weight;
//	                                            bare "weighted" means 0.5,0.5)
//	first-under-budget:makespan=120,energy=50  (either cap optional, not both;
//	                                            alias: first-under)
//	min-makespan-under-faults:draws=5          (draws optional, default 3;
//	                                            alias: under-faults)
//
// The empty string means min-makespan. Spellings of the same objective parse
// to the same canonical Name, so they hash — and cache — identically.
func ParseObjective(s string) (Objective, error) {
	name, arg, hasArg := strings.Cut(strings.TrimSpace(s), ":")
	name = strings.ToLower(strings.TrimSpace(name))
	bad := func(format string, args ...interface{}) (Objective, error) {
		return nil, fmt.Errorf("portfolio: objective %q: %s (have %s)",
			s, fmt.Sprintf(format, args...), strings.Join(ObjectiveNames(), ", "))
	}
	switch name {
	case "", "min-makespan", "makespan":
		if hasArg {
			return bad("takes no parameters")
		}
		return MinMakespan{}, nil
	case "min-energy", "energy":
		if hasArg {
			return bad("takes no parameters")
		}
		return MinEnergy{}, nil
	case "weighted", "blend":
		w := Weighted{WMakespan: 0.5, WEnergy: 0.5}
		if hasArg {
			wm, we, ok := strings.Cut(arg, ",")
			if !ok {
				return bad("needs two comma-separated weights")
			}
			var err1, err2 error
			w.WMakespan, err1 = strconv.ParseFloat(strings.TrimSpace(wm), 64)
			w.WEnergy, err2 = strconv.ParseFloat(strings.TrimSpace(we), 64)
			if err1 != nil || err2 != nil {
				return bad("bad weights %q", arg)
			}
		}
		if err := validate(w); err != nil {
			return nil, err
		}
		return w, nil
	case "first-under-budget", "first-under":
		var f FirstUnder
		if !hasArg {
			return bad("needs makespan= and/or energy= caps")
		}
		for _, kv := range strings.Split(arg, ",") {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return bad("bad cap %q", kv)
			}
			val, err := strconv.ParseFloat(strings.TrimSpace(v), 64)
			if err != nil {
				return bad("bad cap %q", kv)
			}
			switch strings.ToLower(strings.TrimSpace(k)) {
			case "makespan", "mk":
				f.MaxMakespan = val
			case "energy", "en":
				f.MaxEnergy = val
			default:
				return bad("unknown cap %q", k)
			}
		}
		if err := validate(f); err != nil {
			return nil, err
		}
		return f, nil
	case "min-makespan-under-faults", "under-faults":
		var u UnderFaults
		if hasArg {
			k, v, ok := strings.Cut(arg, "=")
			if !ok || strings.ToLower(strings.TrimSpace(k)) != "draws" {
				return bad("takes a single draws=N parameter")
			}
			n, err := strconv.Atoi(strings.TrimSpace(v))
			if err != nil || n < 1 {
				return bad("bad draw count %q", v)
			}
			u.Draws = n
		}
		if err := validate(u); err != nil {
			return nil, err
		}
		return u, nil
	default:
		return bad("unknown objective")
	}
}
