// Package portfolio is the racing engine: it runs several dFTP algorithms
// concurrently on one instance and returns the best schedule under a
// pluggable Objective. The paper's algorithms trade makespan against energy
// differently per instance family (separator waves win on clustered swarms,
// greedy grids win on dense disks), so no single algorithm dominates; racing
// them exploits that complementarity, and for early-stop objectives
// (FirstUnder) the engine cancels losing racers mid-simulation via
// context-based cancellation (sim.RunCtx), so a portfolio can finish as soon
// as any entrant produces a good-enough schedule.
//
// Results are deterministic by construction, exactly like the experiment
// engine this package borrows its machinery from: every racer gets a private
// RNG stream derived from the portfolio seed and its index (the splitmix64
// scheme of internal/rngstream), the winner is decided by portfolio order
// and deterministic simulation results — never by wall-clock arrival — and
// scheduling-dependent observations (which racers were actually aborted
// mid-run) are kept out of the reported racer stats. Same portfolio, same
// instance, same seed ⇒ identical winner and identical stats at any worker
// count, which is what makes portfolio responses content-addressable and
// cacheable by the solver service.
package portfolio

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"time"

	"freezetag/internal/dftp"
	"freezetag/internal/geom"
	"freezetag/internal/instance"
	"freezetag/internal/rngstream"
	"freezetag/internal/sim"
	"freezetag/internal/trace"
)

// Portfolio is the meta-algorithm: an ordered list of entrant algorithms
// plus the objective that judges them. Order is significant — it is the
// deterministic tie-break, and for early-stop objectives the priority: the
// lowest-indexed racer meeting the target wins even if a later racer
// happened to finish first on the wall clock.
type Portfolio struct {
	// Algorithms are the entrants, in priority order. At least one.
	Algorithms []dftp.Algorithm
	// Objective judges the race; nil means MinMakespan.
	Objective Objective
	// Seed derives the racers' private RNG streams: racer i owns the stream
	// rngstream.New(Seed, i), reported as RacerResult.Seed. The paper's four
	// algorithms are deterministic and draw nothing from their streams, but
	// the streams are part of each racer's identity — and of the portfolio's
	// content hash — so randomized entrants can join later without breaking
	// the schedule-independence contract.
	Seed int64
}

// objective returns the configured objective, defaulting to MinMakespan.
func (p Portfolio) objective() Objective {
	if p.Objective == nil {
		return MinMakespan{}
	}
	return p.Objective
}

// Name returns the canonical descriptor of the portfolio — the string that
// takes the algorithm's place in the solve-request content hash. Entrant
// order, objective, and seed are all part of it.
func (p Portfolio) Name() string {
	names := make([]string, len(p.Algorithms))
	for i, a := range p.Algorithms {
		names[i] = a.Name()
	}
	return fmt.Sprintf("portfolio[%s;obj=%s;seed=%d]",
		strings.Join(names, ","), p.objective().Name(), p.Seed)
}

// Status classifies a racer's outcome in the reported stats.
type Status string

// Racer statuses. Cancelled covers every racer behind the winner of an
// early-stop race, whether it was skipped before starting, aborted
// mid-simulation, or had already finished when the winner was decided — the
// distinction depends on scheduling, so the stats do not make it.
const (
	StatusWon       Status = "won"
	StatusCompleted Status = "completed"
	StatusCancelled Status = "cancelled"
	StatusError     Status = "error"
)

// RacerResult is one entrant's deterministic outcome. Metrics are only
// present for Won/Completed racers; Cancelled racers report identity alone.
type RacerResult struct {
	Index     int
	Algorithm string
	// Seed is the racer's private RNG-stream seed.
	Seed   int64
	Status Status
	// Satisfied reports whether the run met the objective's early-stop
	// target (always false for objectives without one).
	Satisfied   bool
	Makespan    float64
	Duration    float64
	MaxEnergy   float64
	TotalEnergy float64
	AllAwake    bool
	Awakened    int
	Rounds      int
	Score       float64
	Err         string
}

// Result is the outcome of a race.
type Result struct {
	// Winner indexes Racers; the winning racer has StatusWon.
	Winner int
	// Satisfied reports whether the winner met the objective's early-stop
	// target (relevant for FirstUnder; false means the race fell back to the
	// objective's score over all completed runs).
	Satisfied bool
	// Cancelled counts racers with StatusCancelled. Deterministic.
	Cancelled int
	// Racers holds one deterministic entry per entrant, in portfolio order.
	Racers []RacerResult
	// Res and Rep are the winning run's full simulation result and report.
	Res sim.Result
	Rep *dftp.Report
	// Events is the winning run's event trace (only when Options.Trace).
	Events []sim.Event

	// Aborted counts racers whose simulation was actually skipped or stopped
	// mid-run. It depends on scheduling — unlike Cancelled, it MUST NOT be
	// serialized into cacheable responses; it exists for diagnostics and for
	// tests that assert cancellation really happens.
	Aborted int
}

// Options tune a race. Workers, Trace, and Observe never change the
// outcome; Metric changes the problem itself (every racer simulates under
// it), so it is part of the race's content-addressed identity at the
// service layer.
type Options struct {
	// Workers bounds the racing pool (default GOMAXPROCS, clamped to the
	// number of entrants). Any value produces identical results.
	Workers int
	// Trace records the winning run's event stream into Result.Events.
	Trace bool
	// Metric is the distance every racer's simulation is measured in (nil
	// means ℓ2). Objectives thereby score makespan and energy under the
	// instance's metric automatically — the sim results are already in it.
	Metric geom.Metric
	// Observe, when non-nil, receives one RacerObservation per entrant as
	// its run finishes. Observations carry wall-clock timings — they are
	// scheduling-dependent by nature, which is why they flow through this
	// side channel instead of the deterministic Result: the serving tier
	// feeds them to latency histograms and logs, never into cacheable
	// response bodies. Observe may be called from several worker goroutines
	// concurrently and must be safe for that.
	Observe func(RacerObservation)
	// Faults runs every racer under the given fault specification
	// (dftp.SolveFaulted). Like Metric it changes the problem itself, so it is
	// part of the race's content-addressed identity at the service layer. The
	// UnderFaults objective requires it.
	Faults *dftp.Faults
}

// RacerObservation is one entrant's wall-clock telemetry: how long its
// simulation actually ran on this host, and — for racers cancelled
// mid-run — how long cancellation took to bite (the lag between the
// winning racer firing the cancel and this racer's simulation unwinding).
// Everything here depends on scheduling; none of it is part of the race's
// deterministic outcome.
type RacerObservation struct {
	Index     int
	Algorithm string
	// Start is when the racer's simulation began on this host (zero for
	// racers skipped before starting). Together with Wall it places the
	// racer as a child span on a request's trace timeline.
	Start time.Time
	// Wall is the racer's simulation wall time (zero for racers skipped
	// before starting).
	Wall time.Duration
	// CancelLatency is how long after its context was cancelled the racer's
	// simulation actually returned; zero for racers that were not cancelled
	// mid-run.
	CancelLatency time.Duration
	// Aborted reports the racer was skipped or stopped mid-run.
	Aborted bool
}

// racerRun is one racer's raw, possibly scheduling-dependent outcome before
// the deterministic normalization pass.
type racerRun struct {
	res      sim.Result
	rep      *dftp.Report
	err      error
	accepted bool
	aborted  bool // skipped or ctx-stopped; scheduling-dependent
	// faults is the specification that produced res — under an UnderFaults
	// objective, the representative (worst) draw's reseeded copy — so a traced
	// race can reproduce the winning run exactly.
	faults *dftp.Faults
}

// control coordinates early stopping: best is the lowest accepted index so
// far, and accepting racer i cancels every racer behind it. Racers ahead of
// i keep running — one of them may still accept and supersede i.
type control struct {
	mu      sync.Mutex
	best    int
	cancels []context.CancelFunc
	// cancelledAt records when each racer's cancel first fired (zero until
	// then); the observability side channel derives cancellation latency
	// from it. Never consulted by the deterministic outcome.
	cancelledAt []time.Time
}

func (c *control) accepted(i int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.best >= 0 && c.best <= i {
		return
	}
	c.best = i
	now := time.Now()
	for j := i + 1; j < len(c.cancels); j++ {
		if c.cancelledAt[j].IsZero() {
			c.cancelledAt[j] = now
		}
		c.cancels[j]()
	}
}

// cancelTime returns when racer i's cancel fired (zero if it never did).
func (c *control) cancelTime(i int) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cancelledAt[i]
}

// doomed reports whether racer i can no longer win (a lower index accepted).
func (c *control) doomed(i int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.best >= 0 && c.best < i
}

// Race runs every entrant of p on the instance concurrently and returns the
// winner under p's objective. The budget is the usual per-robot energy
// budget (≤ 0 unconstrained), applied to every racer. A heterogeneous
// instance races every entrant under its per-robot profiles — speeds scale
// travel time and capacities override the uniform budget (dftp.SolveIn) —
// so objectives score the runs the profiles actually produce.
func Race(p Portfolio, inst *instance.Instance, tup dftp.Tuple, budget float64, opts Options) (*Result, error) {
	if len(p.Algorithms) == 0 {
		return nil, errors.New("portfolio: no algorithms to race")
	}
	obj := p.objective()
	if err := validate(obj); err != nil {
		return nil, err
	}
	if err := opts.Faults.Validate(); err != nil {
		return nil, err
	}
	if _, ok := obj.(UnderFaults); ok && opts.Faults == nil {
		return nil, errors.New("portfolio: the under-faults objective needs a fault specification (Options.Faults)")
	}

	k := len(p.Algorithms)
	ctl := &control{best: -1, cancels: make([]context.CancelFunc, k), cancelledAt: make([]time.Time, k)}
	ctxs := make([]context.Context, k)
	for i := range ctxs {
		ctxs[i], ctl.cancels[i] = context.WithCancel(context.Background())
	}
	defer func() {
		for _, cancel := range ctl.cancels {
			cancel()
		}
	}()

	// Fan the racers out over a bounded pool — the experiment engine's
	// worker-pool shape, with the same splitmix64 per-index RNG streams.
	runs := make([]racerRun, k)
	workers := opts.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > k {
		workers = k
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				runs[i] = runRacer(p, obj, inst, tup, budget, opts.Metric, opts.Faults, i, ctxs[i], ctl, opts.Observe)
			}
		}()
	}
	for i := 0; i < k; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()

	out, err := assemble(p, obj, runs)
	if err != nil {
		return nil, err
	}
	if opts.Trace {
		// Racers run untraced (recording k streams to keep one would hold
		// k traces in memory); the simulator is deterministic, so
		// re-solving the winner with a recorder reproduces the winning run
		// exactly, at the cost of one extra simulation per traced race.
		rec := trace.New()
		if winF := runs[out.Winner].faults; winF != nil {
			if _, _, err := dftp.SolveFaulted(context.Background(), nil, opts.Metric, p.Algorithms[out.Winner], inst, tup, budget, winF, rec.Record); err != nil {
				return nil, fmt.Errorf("portfolio: re-tracing the winner: %w", err)
			}
		} else if _, _, err := dftp.SolveIn(context.Background(), opts.Metric, p.Algorithms[out.Winner], inst, tup, budget, rec.Record); err != nil {
			return nil, fmt.Errorf("portfolio: re-tracing the winner: %w", err)
		}
		out.Events = rec.Events()
	}
	return out, nil
}

// runRacer executes entrant i unless the race is already decided against it.
func runRacer(p Portfolio, obj Objective, inst *instance.Instance, tup dftp.Tuple, budget float64,
	m geom.Metric, faults *dftp.Faults, i int, ctx context.Context, ctl *control, observe func(RacerObservation)) racerRun {
	if ctl.doomed(i) {
		if observe != nil {
			observe(RacerObservation{Index: i, Algorithm: p.Algorithms[i].Name(), Aborted: true})
		}
		return racerRun{aborted: true}
	}
	var start time.Time
	if observe != nil {
		start = time.Now()
	}
	res, rep, resFaults, err := solveRacer(ctx, m, p.Algorithms[i], inst, tup, budget, faults, obj)
	if ctx.Err() != nil {
		// Aborted mid-run: the result is partial and scheduling-dependent —
		// discard everything but the fact of the abort.
		if observe != nil {
			ob := RacerObservation{Index: i, Algorithm: p.Algorithms[i].Name(), Start: start, Wall: time.Since(start), Aborted: true}
			if at := ctl.cancelTime(i); !at.IsZero() {
				ob.CancelLatency = time.Since(at)
			}
			observe(ob)
		}
		return racerRun{aborted: true}
	}
	if observe != nil {
		observe(RacerObservation{Index: i, Algorithm: p.Algorithms[i].Name(), Start: start, Wall: time.Since(start)})
	}
	if err != nil {
		return racerRun{err: err}
	}
	run := racerRun{res: res, rep: rep, faults: resFaults, accepted: obj.Accept(res)}
	if run.accepted {
		ctl.accepted(i)
	}
	return run
}

// solveRacer runs one entrant, under the race's fault specification when one
// is set. Under an UnderFaults objective the entrant endures Draws
// independent fault draws — draw j reseeds the specification with
// rngstream.TrialSeed(seed, j) — and the representative result is the worst
// draw (incomplete wake-ups first, then the largest makespan, earliest draw
// on exact ties), so the objective scores each algorithm by its worst
// observed behavior. The returned specification is the one that produced the
// returned result; a traced race replays it to reproduce the winning run.
func solveRacer(ctx context.Context, m geom.Metric, alg dftp.Algorithm, inst *instance.Instance,
	tup dftp.Tuple, budget float64, faults *dftp.Faults, obj Objective) (sim.Result, *dftp.Report, *dftp.Faults, error) {
	if faults == nil {
		res, rep, err := dftp.SolveIn(ctx, m, alg, inst, tup, budget, nil)
		return res, rep, nil, err
	}
	uf, multi := obj.(UnderFaults)
	if !multi {
		res, rep, err := dftp.SolveFaulted(ctx, nil, m, alg, inst, tup, budget, faults, nil)
		return res, rep, faults, err
	}
	var (
		worstRes sim.Result
		worstRep *dftp.Report
		worstF   *dftp.Faults
	)
	for j := 0; j < uf.draws(); j++ {
		fj := *faults
		fj.Seed = rngstream.TrialSeed(faults.Seed, j)
		res, rep, err := dftp.SolveFaulted(ctx, nil, m, alg, inst, tup, budget, &fj, nil)
		if err != nil {
			return res, rep, &fj, err
		}
		if worstF == nil || worseDraw(res, worstRes) {
			worstRes, worstRep, worstF = res, rep, &fj
		}
	}
	return worstRes, worstRep, worstF, nil
}

// worseDraw reports whether a is a strictly worse draw than b: incomplete
// wake-ups dominate, then larger makespan.
func worseDraw(a, b sim.Result) bool {
	if a.AllAwake != b.AllAwake {
		return !a.AllAwake
	}
	return a.Makespan > b.Makespan
}

// assemble normalizes the raw runs into a deterministic Result. The winner
// is decided by portfolio order and simulation content only: the lowest
// accepted index if any racer met the early-stop target, otherwise the best
// score among completed runs (complete wake-ups first, then score, then
// index). Every racer behind an early-stop winner reports StatusCancelled
// with no metrics, whether or not it happened to finish — its outcome is
// unknowable in general (it may have been stopped mid-run), so reporting it
// would make the response depend on scheduling.
func assemble(p Portfolio, obj Objective, runs []racerRun) (*Result, error) {
	out := &Result{Winner: -1}
	for i, run := range runs {
		if run.aborted {
			out.Aborted++
		}
		if run.accepted && out.Winner < 0 {
			out.Winner = i
			out.Satisfied = true
		}
	}
	if out.Winner < 0 {
		// No early stop: every racer ran to completion (or errored)
		// deterministically; pick the best completed run.
		for i, run := range runs {
			if run.err != nil || run.aborted {
				continue
			}
			if out.Winner < 0 || better(obj, run.res, runs[out.Winner].res) {
				out.Winner = i
			}
		}
	}
	if out.Winner < 0 {
		errs := make([]string, 0, len(runs))
		for i, run := range runs {
			if run.err != nil {
				errs = append(errs, fmt.Sprintf("%s: %v", p.Algorithms[i].Name(), run.err))
			}
		}
		return nil, fmt.Errorf("portfolio: every racer failed: %s", strings.Join(errs, "; "))
	}

	win := runs[out.Winner]
	out.Res, out.Rep = win.res, win.rep
	out.Racers = make([]RacerResult, len(runs))
	for i, run := range runs {
		rr := RacerResult{Index: i, Algorithm: p.Algorithms[i].Name(), Seed: rngstream.TrialSeed(p.Seed, i)}
		switch {
		case i == out.Winner:
			rr.Status = StatusWon
		case out.Satisfied && i > out.Winner:
			rr.Status = StatusCancelled
		case run.err != nil:
			rr.Status = StatusError
			rr.Err = run.err.Error()
		default:
			rr.Status = StatusCompleted
		}
		if rr.Status == StatusWon || rr.Status == StatusCompleted {
			rr.Satisfied = run.accepted
			rr.Makespan = run.res.Makespan
			rr.Duration = run.res.Duration
			rr.MaxEnergy = run.res.MaxEnergy
			rr.TotalEnergy = run.res.TotalEnergy
			rr.AllAwake = run.res.AllAwake
			rr.Awakened = run.res.Awakened
			rr.Rounds = run.rep.Rounds
			rr.Score = obj.Score(run.res)
		}
		if rr.Status == StatusCancelled {
			out.Cancelled++
		}
		out.Racers[i] = rr
	}
	return out, nil
}

// better reports whether a beats b under obj: complete wake-ups first, then
// lower score; the caller's index order breaks exact ties.
func better(obj Objective, a, b sim.Result) bool {
	if a.AllAwake != b.AllAwake {
		return a.AllAwake
	}
	return obj.Score(a) < obj.Score(b)
}
