package portfolio

import (
	"reflect"
	"testing"

	"freezetag/internal/dftp"
	"freezetag/internal/geom"
)

// Races under a non-default metric keep the full determinism contract —
// identical winner and racer stats at any worker count — and actually
// simulate in the metric: scores differ from the ℓ2 race on a diagonal-rich
// instance.
func TestRaceMetricDeterministicAndDistinct(t *testing.T) {
	in := walkInstance(3)
	for _, m := range []geom.Metric{geom.L1, geom.LInf} {
		tup := dftp.TupleForIn(m, in)
		p := Portfolio{Algorithms: allFour(), Objective: MinMakespan{}, Seed: 7}
		ref, err := Race(p, in, tup, 0, Options{Workers: 1, Metric: m})
		if err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		for _, workers := range []int{2, 4} {
			got, err := Race(p, in, tup, 0, Options{Workers: workers, Metric: m})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", m.Name(), workers, err)
			}
			if got.Winner != ref.Winner || !reflect.DeepEqual(got.Racers, ref.Racers) {
				t.Fatalf("%s workers=%d: race not schedule-independent", m.Name(), workers)
			}
		}
		if !ref.Res.AllAwake {
			t.Fatalf("%s: winning run left robots asleep", m.Name())
		}
		// Same instance raced under ℓ2 must score differently (the walk
		// instance has diagonal steps, so metric distances differ).
		l2, err := Race(p, in, dftp.TupleFor(in), 0, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if l2.Res.Makespan == ref.Res.Makespan {
			t.Errorf("%s makespan equals ℓ2 makespan (%g) — metric not reaching the racers?",
				m.Name(), l2.Res.Makespan)
		}
	}
}
