package portfolio

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"freezetag/internal/dftp"
	"freezetag/internal/instance"
)

func allFour() []dftp.Algorithm {
	return []dftp.Algorithm{dftp.ASeparator{}, dftp.AGrid{}, dftp.AWave{}, dftp.ASeparatorAuto{}}
}

func walkInstance(seed int64) *instance.Instance {
	return instance.RandomWalk(rand.New(rand.NewSource(seed)), 24, 0.9)
}

// The acceptance criterion of the PR: a race's winner and racer stats are
// decided by portfolio order and simulation content, never by scheduling —
// so any worker count produces the identical Result. Run with -race.
func TestRaceDeterministicAcrossWorkers(t *testing.T) {
	in := walkInstance(1)
	tup := dftp.TupleFor(in)
	objectives := []Objective{
		MinMakespan{},
		MinEnergy{},
		Weighted{WMakespan: 0.5, WEnergy: 0.5},
		FirstUnder{MaxMakespan: 1e9},                   // everyone satisfies: racer 0 wins, rest cancelled
		FirstUnder{MaxMakespan: 1e-9, MaxEnergy: 1e-9}, // nobody satisfies: fallback
	}
	for _, obj := range objectives {
		p := Portfolio{Algorithms: allFour(), Objective: obj, Seed: 7}
		ref, err := Race(p, in, tup, 0, Options{Workers: 1})
		if err != nil {
			t.Fatalf("%s: %v", obj.Name(), err)
		}
		for _, workers := range []int{2, 4, 8} {
			got, err := Race(p, in, tup, 0, Options{Workers: workers})
			if err != nil {
				t.Fatalf("%s workers=%d: %v", obj.Name(), workers, err)
			}
			if got.Winner != ref.Winner || got.Satisfied != ref.Satisfied || got.Cancelled != ref.Cancelled {
				t.Fatalf("%s workers=%d: winner/satisfied/cancelled = %d/%v/%d, want %d/%v/%d",
					obj.Name(), workers, got.Winner, got.Satisfied, got.Cancelled,
					ref.Winner, ref.Satisfied, ref.Cancelled)
			}
			if !reflect.DeepEqual(got.Racers, ref.Racers) {
				t.Fatalf("%s workers=%d: racer stats differ:\n%+v\nvs\n%+v",
					obj.Name(), workers, got.Racers, ref.Racers)
			}
			if !reflect.DeepEqual(got.Res, ref.Res) {
				t.Fatalf("%s workers=%d: winning result differs", obj.Name(), workers)
			}
		}
	}
}

// first-under-budget ends the race at the first (in portfolio order)
// satisfying racer and cancels everyone behind it. Serially, the cancelled
// racers provably never simulate (Aborted counts them).
func TestFirstUnderCancelsLosers(t *testing.T) {
	in := walkInstance(2)
	tup := dftp.TupleFor(in)
	p := Portfolio{Algorithms: allFour(), Objective: FirstUnder{MaxMakespan: 1e9}}
	res, err := Race(p, in, tup, 0, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != 0 || !res.Satisfied {
		t.Fatalf("winner=%d satisfied=%v, want racer 0 to win immediately", res.Winner, res.Satisfied)
	}
	if res.Cancelled != 3 {
		t.Fatalf("cancelled=%d, want 3", res.Cancelled)
	}
	if res.Aborted != 3 {
		t.Fatalf("serial race aborted %d racers, want 3 (losers must not simulate)", res.Aborted)
	}
	for _, rr := range res.Racers[1:] {
		if rr.Status != StatusCancelled || rr.Makespan != 0 || rr.Satisfied {
			t.Fatalf("loser stats leak scheduling-dependent data: %+v", rr)
		}
	}
	if res.Racers[0].Status != StatusWon || !res.Racers[0].Satisfied {
		t.Fatalf("winner stats: %+v", res.Racers[0])
	}
}

// Portfolio order is priority: a later racer that satisfies the target only
// wins if every earlier racer completed without satisfying it.
func TestFirstUnderRespectsOrder(t *testing.T) {
	in := walkInstance(3)
	tup := dftp.TupleFor(in)
	// Find two algorithms with distinct makespans and order the worse first.
	var mks []float64
	for _, alg := range allFour() {
		res, _, err := dftp.Solve(alg, in, tup, 0)
		if err != nil {
			t.Fatal(err)
		}
		mks = append(mks, res.Makespan)
	}
	worse, better := -1, -1
	for i := range mks {
		for j := range mks {
			if mks[i] > mks[j] {
				worse, better = i, j
			}
		}
	}
	if worse < 0 {
		t.Skip("all four algorithms tie on this instance")
	}
	cap := (mks[worse] + mks[better]) / 2
	p := Portfolio{
		Algorithms: []dftp.Algorithm{allFour()[worse], allFour()[better], allFour()[worse]},
		Objective:  FirstUnder{MaxMakespan: cap},
	}
	res, err := Race(p, in, tup, 0, Options{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != 1 || !res.Satisfied {
		t.Fatalf("winner=%d satisfied=%v, want racer 1 (first satisfying in order)", res.Winner, res.Satisfied)
	}
	if res.Racers[0].Status != StatusCompleted || res.Racers[0].Satisfied {
		t.Fatalf("racer 0 (over cap) should complete unsatisfied: %+v", res.Racers[0])
	}
	if res.Racers[2].Status != StatusCancelled {
		t.Fatalf("racer 2 should be cancelled: %+v", res.Racers[2])
	}
}

// When nobody meets the caps the race degrades to the objective's score over
// the completed runs, marked unsatisfied, with nothing cancelled.
func TestFirstUnderFallback(t *testing.T) {
	in := walkInstance(4)
	tup := dftp.TupleFor(in)
	p := Portfolio{Algorithms: allFour(), Objective: FirstUnder{MaxMakespan: 1e-9}}
	res, err := Race(p, in, tup, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Satisfied || res.Cancelled != 0 {
		t.Fatalf("satisfied=%v cancelled=%d, want unsatisfied fallback", res.Satisfied, res.Cancelled)
	}
	for i, rr := range res.Racers {
		if i == res.Winner {
			continue
		}
		if rr.Status != StatusCompleted {
			t.Fatalf("racer %d: %+v", i, rr)
		}
		if rr.Makespan < res.Racers[res.Winner].Makespan {
			t.Fatalf("fallback winner is not min-makespan: %+v beats %+v", rr, res.Racers[res.Winner])
		}
	}
}

// The winner under each pure objective matches a direct argmin over
// individual solves (the portfolio adds concurrency, never semantics).
func TestWinnerMatchesDirectArgmin(t *testing.T) {
	in := walkInstance(5)
	tup := dftp.TupleFor(in)
	for _, obj := range []Objective{MinMakespan{}, MinEnergy{}, Weighted{WMakespan: 1, WEnergy: 2}} {
		best, bestScore := -1, 0.0
		for i, alg := range allFour() {
			res, _, err := dftp.Solve(alg, in, tup, 0)
			if err != nil {
				t.Fatal(err)
			}
			if s := obj.Score(res); best < 0 || s < bestScore {
				best, bestScore = i, s
			}
		}
		res, err := Race(Portfolio{Algorithms: allFour(), Objective: obj}, in, tup, 0, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if res.Winner != best {
			t.Fatalf("%s: portfolio winner %d, direct argmin %d", obj.Name(), res.Winner, best)
		}
		if res.Racers[best].Score != bestScore {
			t.Fatalf("%s: winner score %v, want %v", obj.Name(), res.Racers[best].Score, bestScore)
		}
	}
}

// Tracing records the winning run's events without changing the outcome.
func TestTraceRecordsWinner(t *testing.T) {
	in := walkInstance(6)
	tup := dftp.TupleFor(in)
	p := Portfolio{Algorithms: allFour(), Objective: MinMakespan{}}
	plain, err := Race(p, in, tup, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	traced, err := Race(p, in, tup, 0, Options{Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.Events) != 0 {
		t.Fatal("untraced race recorded events")
	}
	if len(traced.Events) == 0 {
		t.Fatal("traced race recorded no events")
	}
	if traced.Winner != plain.Winner || !reflect.DeepEqual(traced.Racers, plain.Racers) {
		t.Fatal("tracing changed the race outcome")
	}
	wakes := 0
	for _, ev := range traced.Events {
		if ev.Kind == "wake" {
			wakes++
		}
	}
	if wakes != in.N() {
		t.Fatalf("winner trace has %d wakes for n=%d", wakes, in.N())
	}
}

func TestParseObjectiveCanonical(t *testing.T) {
	same := [][]string{
		{"", "min-makespan", "makespan", "Min-Makespan"},
		{"min-energy", "energy"},
		{"weighted", "weighted:0.5,0.5", "weighted: .5 , 0.50 "},
		{"first-under-budget:makespan=120", "first-under:mk=120", "first-under-budget: makespan = 120.0 "},
	}
	for _, group := range same {
		var name string
		for i, s := range group {
			obj, err := ParseObjective(s)
			if err != nil {
				t.Fatalf("%q: %v", s, err)
			}
			if i == 0 {
				name = obj.Name()
			} else if obj.Name() != name {
				t.Fatalf("%q canonicalizes to %q, want %q", s, obj.Name(), name)
			}
		}
	}
	for _, bad := range []string{
		"fastest", "weighted:1", "weighted:a,b", "weighted:0,0", "weighted:-1,2",
		"weighted:nan,nan", "weighted:+inf,0",
		"first-under-budget", "first-under-budget:mk=x", "first-under-budget:rounds=3",
		"first-under-budget:makespan=nan", "first-under-budget:energy=inf",
		"min-makespan:1",
	} {
		if _, err := ParseObjective(bad); err == nil {
			t.Errorf("%q parsed without error", bad)
		}
	}
}

func TestPortfolioName(t *testing.T) {
	p := Portfolio{Algorithms: []dftp.Algorithm{dftp.AGrid{}, dftp.AWave{}}, Seed: 3}
	name := p.Name()
	for _, want := range []string{"AGrid,AWave", "min-makespan", "seed=3"} {
		if !strings.Contains(name, want) {
			t.Fatalf("descriptor %q missing %q", name, want)
		}
	}
	q := Portfolio{Algorithms: []dftp.Algorithm{dftp.AWave{}, dftp.AGrid{}}, Seed: 3}
	if q.Name() == name {
		t.Fatal("entrant order must be part of the descriptor")
	}
}

func TestRaceNoAlgorithms(t *testing.T) {
	in := walkInstance(7)
	if _, err := Race(Portfolio{}, in, dftp.TupleFor(in), 0, Options{}); err == nil {
		t.Fatal("empty portfolio raced without error")
	}
}
