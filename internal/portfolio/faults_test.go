package portfolio

import (
	"math"
	"math/rand"
	"reflect"
	"testing"

	"freezetag/internal/dftp"
	"freezetag/internal/instance"
)

func TestParseObjectiveUnderFaults(t *testing.T) {
	for _, s := range []string{"min-makespan-under-faults", "under-faults"} {
		obj, err := ParseObjective(s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if obj.Name() != "min-makespan-under-faults(draws=3)" {
			t.Errorf("%q: Name = %q", s, obj.Name())
		}
	}
	obj, err := ParseObjective("under-faults:draws=5")
	if err != nil {
		t.Fatal(err)
	}
	if obj.(UnderFaults).Draws != 5 {
		t.Errorf("draws = %d, want 5", obj.(UnderFaults).Draws)
	}
	for _, s := range []string{"under-faults:draws=0", "under-faults:draws=x", "under-faults:d=5", "under-faults:draws=100"} {
		if _, err := ParseObjective(s); err == nil {
			t.Errorf("%q: expected an error", s)
		}
	}
}

func TestUnderFaultsNeedsFaults(t *testing.T) {
	in := instance.Line(8, 1)
	p := Portfolio{Algorithms: allFour(), Objective: UnderFaults{}}
	if _, err := Race(p, in, dftp.TupleFor(in), math.Inf(1), Options{}); err == nil {
		t.Error("UnderFaults without Options.Faults should fail")
	}
	bad := &dftp.Faults{Kind: "crash-stop", Rate: 2}
	if _, err := Race(p, in, dftp.TupleFor(in), math.Inf(1), Options{Faults: bad}); err == nil {
		t.Error("malformed fault spec should fail the race up front")
	}
}

// TestRaceUnderFaultsDeterministic: same portfolio + instance + fault spec ⇒
// identical winner, racer stats, and scores at any worker count.
func TestRaceUnderFaultsDeterministic(t *testing.T) {
	in := instance.UniformDisk(rand.New(rand.NewSource(43)), 50, 10)
	f := &dftp.Faults{Kind: "crash-stop", Rate: 0.3, Seed: 11, Repair: true}
	p := Portfolio{Algorithms: allFour(), Objective: UnderFaults{Draws: 3}, Seed: 2}
	var ref *Result
	for _, workers := range []int{1, 2, 8} {
		res, err := Race(p, in, dftp.TupleFor(in), math.Inf(1), Options{Workers: workers, Faults: f})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		res.Aborted = 0 // scheduling-dependent by contract
		if ref == nil {
			ref = res
			continue
		}
		if res.Winner != ref.Winner || !reflect.DeepEqual(res.Racers, ref.Racers) {
			t.Fatalf("workers=%d diverged: winner %d vs %d", workers, res.Winner, ref.Winner)
		}
	}
	// With repair armed every draw completes, so the winner must be complete.
	if !ref.Res.AllAwake {
		t.Errorf("winner incomplete under repair: %+v", ref.Res.Faults)
	}
	if ref.Res.Faults.Injected() == 0 {
		t.Error("winning run reports no injected faults; the plan looks inert")
	}
}

// TestRaceFaultedTrace: a traced faulted race reproduces the winning run —
// the re-solve must use the representative draw's spec, not the base seed.
func TestRaceFaultedTrace(t *testing.T) {
	in := instance.UniformDisk(rand.New(rand.NewSource(47)), 40, 10)
	f := &dftp.Faults{Kind: "crash-stop", Rate: 0.3, Seed: 21, Repair: true}
	p := Portfolio{Algorithms: allFour(), Objective: UnderFaults{Draws: 2}, Seed: 4}
	res, err := Race(p, in, dftp.TupleFor(in), math.Inf(1), Options{Trace: true, Faults: f})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) == 0 {
		t.Fatal("traced race returned no events")
	}
	// The trace must contain the winning run's wake of every robot plus the
	// injected fault events of the representative draw.
	wakes, faults := 0, 0
	for _, ev := range res.Events {
		switch {
		case ev.Kind == "wake":
			wakes++
		case ev.Kind == "fault-crash" || ev.Kind == "repair":
			faults++
		}
	}
	if wakes != in.N() {
		t.Errorf("trace has %d wakes, want %d", wakes, in.N())
	}
	if res.Res.Faults.CrashStops > 0 && faults == 0 {
		t.Error("winning run crashed robots but the trace has no fault events")
	}
}

// TestRaceFaultedSingleDraw: a non-UnderFaults objective under faults runs
// the spec verbatim (seed unchanged) for every racer.
func TestRaceFaultedSingleDraw(t *testing.T) {
	in := instance.UniformDisk(rand.New(rand.NewSource(53)), 40, 10)
	f := &dftp.Faults{Kind: "wake-drop", Rate: 0.3, Seed: 9, Repair: true}
	res, err := Race(Portfolio{Algorithms: allFour(), Seed: 1}, in, dftp.TupleFor(in), math.Inf(1), Options{Faults: f})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Res.AllAwake {
		t.Errorf("winner incomplete under repair")
	}
	if res.Res.Faults.WakeDrops == 0 {
		t.Error("no wake drops injected")
	}
}
