package wakeup

import (
	"math/rand"
	"testing"

	"freezetag/internal/geom"
)

func profiledTargets(rng *rand.Rand, n int, w float64) []Target {
	ts := randomTargets(rng, n, w)
	for i := range ts {
		ts[i].Speed = 0.25 + rng.Float64()*1.5
		if rng.Intn(2) == 0 {
			ts[i].Capacity = 2 + rng.Float64()*20
		}
	}
	return ts
}

// Heterogeneous trees stay valid wake-up trees: every target appears exactly
// once, and the profile rides along on its node.
func TestBuildTreeHeteroValid(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		ts := profiledTargets(rng, 1+rng.Intn(40), 10)
		root := BuildTreeIn(nil, geom.Origin, ts)
		if !Valid(root, idsOf(ts)) {
			t.Fatalf("trial %d: invalid heterogeneous tree", trial)
		}
		byID := make(map[int]Target, len(ts))
		for _, tg := range ts {
			byID[tg.ID] = tg
		}
		var check func(n *Node)
		check = func(n *Node) {
			if n == nil {
				return
			}
			want := byID[n.ID]
			if n.Speed != want.Speed || n.Capacity != want.Capacity {
				t.Fatalf("trial %d: node %d carries profile (%g,%g), want (%g,%g)",
					trial, n.ID, n.Speed, n.Capacity, want.Speed, want.Capacity)
			}
			for _, c := range n.Children {
				check(c)
			}
		}
		check(root)
	}
}

// Zero-valued profiles are the homogeneous model: a tree built from targets
// with Speed/Capacity left zero must be structurally identical to the plain
// BuildTree result, and all-unit speeds likewise (the greedy weights divide
// by exactly 1).
func TestBuildTreeUnitProfilesMatchPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 10; trial++ {
		ts := randomTargets(rng, 1+rng.Intn(30), 8)
		plain := BuildTree(geom.Origin, ts)
		unit := append([]Target(nil), ts...)
		for i := range unit {
			unit[i].Speed = 1
		}
		got := BuildTreeIn(nil, geom.Origin, unit)
		var same func(a, b *Node) bool
		same = func(a, b *Node) bool {
			if (a == nil) != (b == nil) {
				return false
			}
			if a == nil {
				return true
			}
			if a.ID != b.ID || len(a.Children) != len(b.Children) {
				return false
			}
			for i := range a.Children {
				if !same(a.Children[i], b.Children[i]) {
					return false
				}
			}
			return true
		}
		if !same(plain, got) {
			t.Fatalf("trial %d: unit-speed tree differs structurally from the plain tree", trial)
		}
		if Makespan(geom.Origin, plain) != MakespanProfiledIn(nil, geom.Origin, 1, got) {
			t.Fatalf("trial %d: unit-speed profiled makespan differs from plain", trial)
		}
	}
}

// Slowing every robot by a uniform factor scales the profiled makespan by
// exactly 1/factor when the waker slows too (every leg divides by the same
// speed), and never improves it when only the swarm slows.
func TestMakespanProfiledSpeedScaling(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 10; trial++ {
		ts := randomTargets(rng, 2+rng.Intn(20), 6)
		base := BuildTree(geom.Origin, ts)
		ms := Makespan(geom.Origin, base)

		slowed := append([]Target(nil), ts...)
		for i := range slowed {
			slowed[i].Speed = 0.5
		}
		root := BuildTreeIn(nil, geom.Origin, slowed)
		// Waker also at 0.5: the whole schedule stretches by exactly 2 for
		// the same tree shape; the heterogeneous builder may find a better
		// shape, so allow ≤ with a slack of 1e-9 only on the upper side.
		all := MakespanProfiledIn(nil, geom.Origin, 0.5, root)
		if all > 2*ms+1e-9 {
			t.Fatalf("trial %d: uniformly halving speeds more than doubled the makespan: %v vs %v",
				trial, all, ms)
		}
		if all < ms-1e-9 {
			t.Fatalf("trial %d: halving speeds improved the makespan: %v vs %v", trial, all, ms)
		}
		// Unit-speed waker, slow swarm: still never beats the homogeneous run.
		mixed := MakespanProfiledIn(nil, geom.Origin, 1, root)
		if mixed < ms-1e-9 {
			t.Fatalf("trial %d: slow swarm beat the homogeneous makespan: %v vs %v", trial, mixed, ms)
		}
	}
}

// The capacity-aware handoff: when one child subtree costs more than the
// woken robot's private capacity but the other fits, the builder routes the
// woken robot down the affordable side. Probed statistically — across many
// random capacity-constrained instances the profiled makespan of the built
// tree must never exceed the plain tree's profiled makespan by more than the
// swap could save, and at least one instance must differ structurally.
func TestBuildTreeCapacityAwareHandoff(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	differed := false
	for trial := 0; trial < 30; trial++ {
		ts := profiledTargets(rng, 6+rng.Intn(20), 12)
		root := BuildTreeIn(nil, geom.Origin, ts)
		if !Valid(root, idsOf(ts)) {
			t.Fatalf("trial %d: capacity-constrained tree invalid", trial)
		}
		unit := append([]Target(nil), ts...)
		for i := range unit {
			unit[i].Speed, unit[i].Capacity = 0, 0
		}
		plain := BuildTreeIn(nil, geom.Origin, unit)
		var same func(a, b *Node) bool
		same = func(a, b *Node) bool {
			if (a == nil) != (b == nil) {
				return false
			}
			if a == nil {
				return true
			}
			if a.ID != b.ID || len(a.Children) != len(b.Children) {
				return false
			}
			for i := range a.Children {
				if !same(a.Children[i], b.Children[i]) {
					return false
				}
			}
			return true
		}
		if !same(root, plain) {
			differed = true
		}
	}
	if !differed {
		t.Error("30 profiled instances all produced the homogeneous tree shape — the heterogeneous builder is inert")
	}
}
