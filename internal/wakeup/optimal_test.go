package wakeup

import (
	"math"
	"math/rand"
	"testing"

	"freezetag/internal/geom"
)

func TestOptimalEmpty(t *testing.T) {
	if m := OptimalMakespan(geom.Origin, nil); m != 0 {
		t.Errorf("empty optimal = %v", m)
	}
}

func TestOptimalSingle(t *testing.T) {
	m := OptimalMakespan(geom.Origin, []Target{{ID: 1, Pos: geom.Pt(3, 4)}})
	if math.Abs(m-5) > 1e-12 {
		t.Errorf("optimal = %v, want 5", m)
	}
}

func TestOptimalTwoOpposite(t *testing.T) {
	// Two targets on opposite sides at distance 1: wake one (cost 1), then
	// waker and woken both cross (cost 2): makespan 3. No tree does better.
	ts := []Target{
		{ID: 1, Pos: geom.Pt(1, 0)},
		{ID: 2, Pos: geom.Pt(-1, 0)},
	}
	m := OptimalMakespan(geom.Origin, ts)
	if math.Abs(m-3) > 1e-9 {
		t.Errorf("optimal = %v, want 3", m)
	}
}

func TestOptimalLineSplit(t *testing.T) {
	// Four targets at ±1, ±2 on the x-axis. One optimal plan: wake +1 (1),
	// split — one robot continues to +2 (1), the other crosses to −1 (2)
	// then −2 (1): makespan 1+2+1 = 4.
	ts := []Target{
		{ID: 1, Pos: geom.Pt(1, 0)},
		{ID: 2, Pos: geom.Pt(2, 0)},
		{ID: 3, Pos: geom.Pt(-1, 0)},
		{ID: 4, Pos: geom.Pt(-2, 0)},
	}
	m := OptimalMakespan(geom.Origin, ts)
	if math.Abs(m-4) > 1e-9 {
		t.Errorf("optimal = %v, want 4", m)
	}
}

func TestOptimalIsLowerBoundForBuildTree(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	worst := 0.0
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(7)
		ts := make([]Target, n)
		for i := range ts {
			ts[i] = Target{ID: i + 1, Pos: geom.Pt(rng.Float64()*6-3, rng.Float64()*6-3)}
		}
		opt := OptimalMakespan(geom.Origin, ts)
		heur := Makespan(geom.Origin, BuildTree(geom.Origin, ts))
		if heur < opt-1e-9 {
			t.Fatalf("trial %d: heuristic %v beats 'optimal' %v — DP broken", trial, heur, opt)
		}
		if opt > 0 {
			if r := heur / opt; r > worst {
				worst = r
			}
		}
	}
	// The bisection tree is an O(1)-approximation; on small random inputs
	// it should stay well within a small constant of optimal.
	if worst > 4 {
		t.Errorf("approximation ratio reached %v, want ≤ 4", worst)
	}
}

func TestOptimalMatchesBruteForceTiny(t *testing.T) {
	// n=3 exhaustive check: enumerate all wake orders with all split
	// choices by brute force over labeled binary trees.
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 25; trial++ {
		ts := make([]Target, 3)
		for i := range ts {
			ts[i] = Target{ID: i + 1, Pos: geom.Pt(rng.Float64()*4-2, rng.Float64()*4-2)}
		}
		want := bruteOptimal3(geom.Origin, ts)
		got := OptimalMakespan(geom.Origin, ts)
		if math.Abs(got-want) > 1e-9 {
			t.Fatalf("trial %d: DP %v vs brute %v", trial, got, want)
		}
	}
}

// bruteOptimal3 enumerates every schedule for exactly three targets.
func bruteOptimal3(start geom.Point, ts []Target) float64 {
	best := math.Inf(1)
	d := func(a, b geom.Point) float64 { return a.Dist(b) }
	for first := 0; first < 3; first++ {
		var rest []Target
		for i, t := range ts {
			if i != first {
				rest = append(rest, t)
			}
		}
		p1 := ts[first].Pos
		t1 := d(start, p1)
		// Option A: split — each robot takes one remaining target.
		split := t1 + math.Max(d(p1, rest[0].Pos), d(p1, rest[1].Pos))
		// Option B/C: one robot chains both, in either order.
		chain1 := t1 + d(p1, rest[0].Pos) + d(rest[0].Pos, rest[1].Pos)
		chain2 := t1 + d(p1, rest[1].Pos) + d(rest[1].Pos, rest[0].Pos)
		// Option D: waker takes one, woken takes other, but also chains are
		// covered; the two-robot parallel chain split where one robot takes
		// both and the other one: covered by A/B/C since with 2 targets and
		// 2 robots those are all tree shapes.
		for _, v := range []float64{split, chain1, chain2} {
			if v < best {
				best = v
			}
		}
	}
	return best
}

func TestOptimalPanicsAboveLimit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("should panic above MaxOptimalTargets")
		}
	}()
	ts := make([]Target, MaxOptimalTargets+1)
	for i := range ts {
		ts[i] = Target{ID: i + 1, Pos: geom.Pt(float64(i), 0)}
	}
	OptimalMakespan(geom.Origin, ts)
}
