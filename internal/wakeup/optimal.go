package wakeup

import (
	"math"

	"freezetag/internal/geom"
)

// OptimalMakespan computes the exact optimal wake-up-tree makespan for a
// robot at start waking all targets, by dynamic programming over
// (owner position, remaining-target bitmask):
//
//	T(o, S)  = min over x ∈ S of d(o, x) + U(x, S \ {x})
//	U(x, S′) = min over partitions S′ = A ⊎ B of max(T(x, A), T(x, B))
//
// which is exactly the semantics of Algorithm 1 (after waking x, the waker
// and x split the remaining work, both starting at x's position). The DP is
// O(3ⁿ·n); practical for n ≤ about 14. It panics above MaxOptimalTargets —
// exact FTP is NP-hard and the exponential blow-up is a programming error,
// not a runtime condition.
func OptimalMakespan(start geom.Point, targets []Target) float64 {
	n := len(targets)
	if n == 0 {
		return 0
	}
	if n > MaxOptimalTargets {
		panic("wakeup: OptimalMakespan target count above MaxOptimalTargets")
	}
	pts := make([]geom.Point, n+1)
	pts[0] = start
	for i, t := range targets {
		pts[i+1] = t.Pos
	}
	// dist[i][j] between owner positions (0 = start, i = target i-1).
	dist := make([][]float64, n+1)
	for i := range dist {
		dist[i] = make([]float64, n+1)
		for j := range dist[i] {
			dist[i][j] = pts[i].Dist(pts[j])
		}
	}
	full := (1 << n) - 1
	// tMemo[(owner)<<n | mask] = T(owner, mask); owner ∈ [0, n].
	tMemo := make([]float64, (n+1)<<n)
	uMemo := make([]float64, (n+1)<<n)
	for i := range tMemo {
		tMemo[i] = -1
		uMemo[i] = -1
	}
	var tFn func(owner, mask int) float64
	var uFn func(owner, mask int) float64
	tFn = func(owner, mask int) float64 {
		if mask == 0 {
			return 0
		}
		key := owner<<n | mask
		if tMemo[key] >= 0 {
			return tMemo[key]
		}
		best := math.Inf(1)
		for x := 0; x < n; x++ {
			bit := 1 << x
			if mask&bit == 0 {
				continue
			}
			if v := dist[owner][x+1] + uFn(x+1, mask&^bit); v < best {
				best = v
			}
		}
		tMemo[key] = best
		return best
	}
	uFn = func(owner, mask int) float64 {
		if mask == 0 {
			return 0
		}
		key := owner<<n | mask
		if uMemo[key] >= 0 {
			return uMemo[key]
		}
		best := tFn(owner, mask) // trivial partition: one side empty
		// Enumerate submasks A of mask; by symmetry only visit A ≤ B.
		for a := (mask - 1) & mask; a > 0; a = (a - 1) & mask {
			b := mask &^ a
			if a > b {
				continue
			}
			ta := tFn(owner, a)
			if ta >= best {
				continue // max(ta, tb) ≥ ta ≥ best: prune
			}
			tb := tFn(owner, b)
			if m := math.Max(ta, tb); m < best {
				best = m
			}
		}
		uMemo[key] = best
		return best
	}
	return tFn(0, full)
}

// MaxOptimalTargets bounds OptimalMakespan's exponential DP.
const MaxOptimalTargets = 14
