package wakeup

import (
	"math/rand"
	"testing"

	"freezetag/internal/geom"
	"freezetag/internal/sim"
)

// propagateRun realizes one tree propagation over 40 random sleepers,
// optionally under a fault plan and with the repair layer armed, capturing
// the full event stream.
func propagateRun(t *testing.T, faults *sim.FaultPlan, repair bool) (sim.Result, []sim.Event) {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	ts := randomTargets(rng, 40, 12)
	sleepers := make([]geom.Point, len(ts))
	for i, tg := range ts {
		sleepers[i] = tg.Pos
	}
	var events []sim.Event
	e := sim.NewEngine(sim.Config{
		Source:   geom.Origin,
		Sleepers: sleepers,
		Faults:   faults,
		Trace:    func(ev sim.Event) { events = append(events, ev) },
	})
	root := BuildTree(geom.Origin, ts)
	e.Spawn(sim.SourceID, func(p *sim.Proc) { _ = Propagate(p, root, nil) })
	if repair {
		InstallRepair(e, RepairConfig{Poll: 0.5})
	}
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, events
}

// The headline zero-fault guarantee, part one: InstallRepair on a fault-free
// engine is a complete no-op — not one event of the run changes, bit for
// bit. The fault-free simulation is golden-locked upstream, so the repair
// layer must be invisible without a fault plan.
func TestRepairFaultFreeBitIdentical(t *testing.T) {
	base, baseEv := propagateRun(t, nil, false)
	armed, armedEv := propagateRun(t, nil, true)
	if len(baseEv) != len(armedEv) {
		t.Fatalf("event count changed: %d vs %d", len(baseEv), len(armedEv))
	}
	for i := range baseEv {
		if baseEv[i] != armedEv[i] {
			t.Fatalf("event %d changed: %+v vs %+v", i, baseEv[i], armedEv[i])
		}
	}
	if base.Makespan != armed.Makespan || base.Awakened != armed.Awakened {
		t.Fatalf("result changed: %+v vs %+v", base, armed)
	}
}

// Part two: a fault plan that injects nothing (FaultNone) with the repair
// layer armed must reproduce the fault-free wake schedule exactly — same
// wake order, same wake times, same makespan — with zero injections and
// zero repairs. The watched propagation variant may add monitor bookkeeping,
// but it must not perturb the schedule it guards.
func TestRepairZeroFaultSameSchedule(t *testing.T) {
	base, baseEv := propagateRun(t, nil, false)
	armed, armedEv := propagateRun(t, &sim.FaultPlan{Kind: sim.FaultNone, Seed: 1}, true)
	type wake struct {
		t     float64
		robot int
	}
	wakes := func(evs []sim.Event) []wake {
		var out []wake
		for _, ev := range evs {
			if ev.Kind == "wake" {
				out = append(out, wake{ev.T, ev.Robot})
			}
		}
		return out
	}
	bw, aw := wakes(baseEv), wakes(armedEv)
	if len(bw) != len(aw) {
		t.Fatalf("wake count: %d vs %d", len(bw), len(aw))
	}
	for i := range bw {
		if bw[i] != aw[i] {
			t.Fatalf("wake %d: fault-free %+v vs zero-fault repaired %+v", i, bw[i], aw[i])
		}
	}
	if base.Makespan != armed.Makespan {
		t.Fatalf("makespan: %v vs %v", base.Makespan, armed.Makespan)
	}
	if !armed.AllAwake {
		t.Fatal("zero-fault repaired run incomplete")
	}
	if got := armed.Faults; got.Injected() != 0 || got.Repairs != 0 {
		t.Fatalf("zero-fault run recorded faults: %+v", got)
	}
}
