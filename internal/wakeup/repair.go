package wakeup

import (
	"fmt"
	"math"
	"sort"

	"freezetag/internal/sim"
)

// This file is the self-stabilizing repair layer for wake-up trees: under a
// fault plan, every Propagate registers a speed-aware deadline watch on each
// subtree it hands off, and a monitor process on the source detects orphaned
// subtrees — an expected child that never woke within its deadline, a branch
// whose carrier crashed, a wake the channel dropped — and re-parents them by
// dispatching an idle awake robot with a freshly built tree over the robots
// still asleep. The design follows the related work's self-stabilization
// shape (closure + convergence): any configuration the faults can force is
// eventually detected from the sleeping set itself, so the repaired schedule
// converges to all-awake whenever a live rescuer remains; the source (fault-
// immune by construction) is the rescuer of last resort, which is what makes
// completion under crash-stop faults a guarantee rather than a likelihood.
//
// Model note: the monitor reads robot states and positions through the
// engine rather than through Look snapshots — a deliberate corrector-
// omniscience deviation (the detector is given perfect failure information;
// only the repair work itself is paid for in travel time). The bounded-
// inflation tests quantify the resulting extra makespan.

// RepairConfig parameterizes the repair layer. Zero values select defaults.
type RepairConfig struct {
	// Poll is the monitor's tick interval in virtual time; ≤ 0 means 1.
	// Callers should scale it to the instance (≈ ℓ / min-speed): detection
	// latency is one poll, so a too-fine poll wastes events and a too-coarse
	// one delays every rescue.
	Poll float64
	// Slack multiplies a subtree's estimated completion time to form its
	// watch deadline; ≤ 0 means 3. Larger values tolerate slower carriers
	// (crash-recovery outages) at the cost of later detection.
	Slack float64
	// MaxAttempts caps rescue attempts per robot before the monitor gives it
	// up (≤ 0 means 16) — the termination bound for unreachable robots, e.g.
	// a wake-drop plan at rate 1.
	MaxAttempts int
}

// watch is one outstanding handoff: the woken subtree's robot ids and the
// deadline by which all of them should be awake.
type watch struct {
	child    int
	deadline float64
	ids      []int
}

// Repairer is the per-engine repair state, stashed in engine scratch so a
// pooled engine reuses its buffers across runs.
type Repairer struct {
	cfg       RepairConfig
	installed bool
	watches   []watch
	orphans   []int
	idbuf     []int
	tbuf      []Target
	attempts  []int
}

// repairerOf returns the engine's repair state, creating an inert one on
// first use.
func repairerOf(e *sim.Engine) *Repairer {
	return sim.ScratchOf(e, "wakeup.repair", func() *Repairer { return &Repairer{} })
}

// ResetRun implements sim.RunScratch.
func (rp *Repairer) ResetRun() {
	rp.installed = false
	rp.watches = rp.watches[:0]
	rp.orphans = rp.orphans[:0]
	rp.attempts = rp.attempts[:0]
}

// InstallRepair arms the repair layer on a fault-injected engine: subsequent
// Propagate calls register watches, and a monitor process on the source
// rescues orphaned subtrees until the swarm is awake (or provably
// unreachable). On a fault-free engine it is a no-op, keeping the fault-free
// run bit-identical. Must be called after the algorithm's Install and before
// Run.
func InstallRepair(e *sim.Engine, cfg RepairConfig) {
	if !e.FaultsEnabled() {
		return
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 1
	}
	if cfg.Slack <= 0 {
		cfg.Slack = 3
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 16
	}
	rp := repairerOf(e)
	rp.cfg = cfg
	rp.installed = true
	if cap(rp.attempts) < e.NumRobots() {
		rp.attempts = make([]int, e.NumRobots())
	} else {
		rp.attempts = rp.attempts[:e.NumRobots()]
		for i := range rp.attempts {
			rp.attempts[i] = 0
		}
	}
	e.Spawn(sim.SourceID, rp.monitor)
}

// RepairInstalled reports whether the engine has an armed repair layer.
func RepairInstalled(e *sim.Engine) bool { return repairerOf(e).installed }

// appendTreeIDs appends every robot id in the subtree to buf, preorder.
func appendTreeIDs(n *Node, buf []int) []int {
	if n == nil {
		return buf
	}
	buf = append(buf, n.ID)
	for _, c := range n.Children {
		buf = appendTreeIDs(c, buf)
	}
	return buf
}

// orphanSubtree queues every robot of the subtree for rescue; the rescue
// sweep re-checks who is still asleep before acting, so over-reporting is
// safe (double coverage is tolerated by TryWake).
func (rp *Repairer) orphanSubtree(n *Node) {
	rp.orphans = appendTreeIDs(n, rp.orphans)
}

// addWatch registers a deadline watch on the subtree just handed to child:
// the estimated completion time of the handoff, scaled by the slack factor,
// plus one poll of detection latency.
func (rp *Repairer) addWatch(e *sim.Engine, node *Node, woken *Node) {
	t := MakespanProfiledIn(e.Metric(), node.Pos, node.Speed, woken)
	rp.watches = append(rp.watches, watch{
		child:    node.ID,
		deadline: e.Now() + rp.cfg.Slack*t + rp.cfg.Poll,
		ids:      appendTreeIDs(woken, nil),
	})
}

// propagateRepair is Builder.Propagate under an armed repair layer: the walk
// and wake order are identical, but every handoff is watched, a dropped wake
// or crashed carrier orphans its branch instead of silently losing it, and a
// stale roster (double coverage by a rescue) is tolerated.
func (b *Builder) propagateRepair(p *sim.Proc, root *Node, cont func(*sim.Proc), rp *Repairer) error {
	e := p.Engine()
	node := root
	for node != nil {
		if err := p.MoveTo(node.Pos); err != nil {
			// Carrier crashed or ran dry: everything it still owed is
			// orphaned for the monitor to re-parent.
			rp.orphanSubtree(node)
			return err
		}
		var woken, kept *Node
		switch len(node.Children) {
		case 0:
		case 1:
			woken = node.Children[0]
		default:
			woken, kept = node.Children[0], node.Children[1]
		}
		hs := b.hands.Take(1)
		hs = append(hs, propHandler{b: b, sub: woken, cont: cont})
		if p.TryWake(node.ID, &hs[0]) {
			if woken != nil {
				rp.addWatch(e, node, woken)
			}
		} else {
			// The wake did not take: an injected drop (node still asleep) or
			// double coverage (a rescue got here first, and may not have
			// covered our woken share). Requeue whatever is still asleep.
			if e.Robot(node.ID).State() == sim.Asleep {
				rp.orphans = append(rp.orphans, node.ID)
			}
			if woken != nil {
				rp.orphanSubtree(woken)
			}
		}
		node = kept
	}
	return nil
}

// monitor is the repair-layer process on the source robot. It never moves
// the source itself — it only observes, dispatches rescues on idle robots
// (the source included, when it is otherwise idle), and releases stalled
// synchronization — so it composes with any algorithm's own use of robot 0.
func (rp *Repairer) monitor(p *sim.Proc) {
	e := p.Engine()
	for {
		p.Wait(rp.cfg.Poll)
		now := p.Now()
		// Resolve watches: completed branches are dropped, expired ones are
		// converted to orphans.
		live := rp.watches[:0]
		for _, w := range rp.watches {
			pending := false
			for _, id := range w.ids {
				if e.Robot(id).State() == sim.Asleep {
					pending = true
					break
				}
			}
			if !pending {
				continue
			}
			if now >= w.deadline {
				for _, id := range w.ids {
					if e.Robot(id).State() == sim.Asleep {
						rp.orphans = append(rp.orphans, id)
					}
				}
				continue
			}
			live = append(live, w)
		}
		rp.watches = live
		// Quiescent sweep: nothing is scheduled, robots remain asleep, and
		// no watch covers them — branches lost outside tree propagation
		// (exploration wakes, escorts) land here.
		if e.Quiescent() && e.AsleepCount() > 0 && len(rp.watches) == 0 && len(rp.orphans) == 0 {
			rp.orphans = e.AppendAsleep(rp.orphans)
		}
		dispatched := 0
		if len(rp.orphans) > 0 {
			dispatched = rp.rescue(e)
		}
		if !e.Quiescent() {
			continue
		}
		// Quiescent: whatever is parked now can only be released by us.
		if e.ParkedCount() > 0 {
			if n := e.ReleaseStalled(); n > 0 {
				e.RecordRepair(sim.SourceID, fmt.Sprintf("release-stalled %d", n))
			}
			continue
		}
		if e.AsleepCount() == 0 {
			return
		}
		if dispatched == 0 && len(rp.watches) == 0 {
			// Hopeless: sleepers remain but every rescue avenue is exhausted
			// (attempt caps hit, or no live rescuer exists). Terminate so
			// the run can report its partial completion.
			return
		}
	}
}

// rescue re-parents the orphan queue: the still-asleep, not-given-up orphans
// become one fresh wake tree rooted at the nearest idle awake robot. Returns
// the number of rescues dispatched (0 or 1 — one rescuer takes the whole
// batch and fans out through tree propagation).
func (rp *Repairer) rescue(e *sim.Engine) int {
	sort.Ints(rp.orphans)
	still := rp.idbuf[:0]
	for i, id := range rp.orphans {
		if i > 0 && id == rp.orphans[i-1] {
			continue
		}
		if e.Robot(id).State() != sim.Asleep || rp.attempts[id] >= rp.cfg.MaxAttempts {
			continue
		}
		still = append(still, id)
	}
	rp.orphans = rp.orphans[:0]
	rp.idbuf = still
	if len(still) == 0 {
		return 0
	}
	rid := rp.pickRescuer(e, still[0])
	if rid < 0 {
		// No idle live rescuer right now; requeue and retry next tick.
		rp.orphans = append(rp.orphans, still...)
		return 0
	}
	for _, id := range still {
		rp.attempts[id]++
	}
	ids := append([]int(nil), still...)
	e.RecordRepair(rid, fmt.Sprintf("rescue %d", len(ids)))
	e.Spawn(rid, func(q *sim.Proc) {
		// Re-filter at run time (a racing branch may have woken some), then
		// build a fresh tree from the rescuer's position — re-parenting by
		// reconstruction — and propagate it under the same repair layer.
		// Continuations are not re-attached: the orphans' round duties died
		// with their branch, and the stalled-release path absorbs whatever
		// synchronization was counting on them.
		ts := rp.tbuf[:0]
		for _, id := range ids {
			r := q.Engine().Robot(id)
			if r.State() != sim.Asleep {
				continue
			}
			t := Target{ID: id, Pos: r.Pos()}
			if q.Engine().Heterogeneous() {
				t.Speed = r.Speed()
				if b := r.Budget(); !math.IsInf(b, 1) {
					t.Capacity = b - r.Energy()
				}
			}
			ts = append(ts, t)
		}
		rp.tbuf = ts[:0]
		if len(ts) == 0 {
			return
		}
		b := BuilderOf(q.Engine())
		root := b.BuildIn(q.Engine().Metric(), q.Self().Pos(), ts)
		_ = b.propagateRepair(q, root, nil, rp)
	})
	return 1
}

// pickRescuer returns the awake, live, idle robot nearest (in travel time)
// to orphan robot `to`, or -1 when none exists. The source counts as idle
// when the monitor is its only live process — it never moves for the
// monitor, so a rescue process may drive it freely.
func (rp *Repairer) pickRescuer(e *sim.Engine, to int) int {
	dst := e.Robot(to).Pos()
	best, bd := -1, math.Inf(1)
	for id := 0; id < e.NumRobots(); id++ {
		r := e.Robot(id)
		if r.State() != sim.Awake || r.Halted() || e.Down(id) || e.IsByzantine(id) {
			continue
		}
		idle := 0
		if id == sim.SourceID {
			idle = 1 // the monitor itself
		}
		if e.LiveProcs(id) != idle {
			continue
		}
		if d := e.Metric().Dist(r.Pos(), dst) / r.Speed(); d < bd {
			best, bd = id, d
		}
	}
	return best
}
