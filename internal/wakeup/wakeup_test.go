package wakeup

import (
	"math"
	"math/rand"
	"testing"

	"freezetag/internal/geom"
	"freezetag/internal/sim"
)

func randomTargets(rng *rand.Rand, n int, w float64) []Target {
	ts := make([]Target, n)
	for i := range ts {
		ts[i] = Target{ID: i + 1, Pos: geom.Pt(rng.Float64()*w, rng.Float64()*w)}
	}
	return ts
}

func idsOf(ts []Target) []int {
	ids := make([]int, len(ts))
	for i, t := range ts {
		ids[i] = t.ID
	}
	return ids
}

func TestBuildTreeEmpty(t *testing.T) {
	if root := BuildTree(geom.Origin, nil); root != nil {
		t.Errorf("empty targets should give nil tree, got %+v", root)
	}
	if m := Makespan(geom.Origin, nil); m != 0 {
		t.Errorf("nil tree makespan = %v", m)
	}
}

func TestBuildTreeSingle(t *testing.T) {
	root := BuildTree(geom.Origin, []Target{{ID: 5, Pos: geom.Pt(3, 4)}})
	if root == nil || root.ID != 5 || len(root.Children) != 0 {
		t.Fatalf("tree = %+v", root)
	}
	if m := Makespan(geom.Origin, root); math.Abs(m-5) > 1e-9 {
		t.Errorf("makespan = %v, want 5", m)
	}
}

func TestBuildTreeValidRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(100)
		ts := randomTargets(rng, n, 10)
		root := BuildTree(geom.Origin, ts)
		if !Valid(root, idsOf(ts)) {
			t.Fatalf("trial %d: invalid tree over %d targets", trial, n)
		}
		if Size(root) != n {
			t.Fatalf("trial %d: size = %d, want %d", trial, Size(root), n)
		}
	}
}

func TestMakespanLinearInR(t *testing.T) {
	// Lemma 2 analogue: a robot at the center of a width-R square wakes
	// everything within c·R for a constant c (ours ≈ 10.1; check 12 with
	// slack for the entry leg).
	rng := rand.New(rand.NewSource(29))
	for _, width := range []float64{1, 4, 16, 64} {
		worst := 0.0
		for trial := 0; trial < 20; trial++ {
			n := 5 + rng.Intn(120)
			ts := make([]Target, n)
			for i := range ts {
				ts[i] = Target{ID: i + 1, Pos: geom.Pt(
					(rng.Float64()-0.5)*width, (rng.Float64()-0.5)*width)}
			}
			m := Makespan(geom.Origin, BuildTree(geom.Origin, ts))
			if r := m / width; r > worst {
				worst = r
			}
		}
		if worst > 12 {
			t.Errorf("width %v: makespan/width = %v, want ≤ 12", width, worst)
		}
	}
}

func TestMakespanScalesLinearly(t *testing.T) {
	// Same layout scaled 8x must give exactly 8x makespan (scale invariance
	// of the construction).
	rng := rand.New(rand.NewSource(41))
	ts := randomTargets(rng, 60, 10)
	big := make([]Target, len(ts))
	for i, x := range ts {
		big[i] = Target{ID: x.ID, Pos: x.Pos.Scale(8)}
	}
	m1 := Makespan(geom.Origin, BuildTree(geom.Origin, ts))
	m8 := Makespan(geom.Origin, BuildTree(geom.Origin, big))
	if math.Abs(m8-8*m1) > 1e-6*m8 {
		t.Errorf("m8 = %v, want 8·m1 = %v", m8, 8*m1)
	}
}

func TestCoLocatedTargets(t *testing.T) {
	// All targets at the same point: degenerate-region chain, makespan ≈
	// distance to the point.
	ts := make([]Target, 20)
	for i := range ts {
		ts[i] = Target{ID: i + 1, Pos: geom.Pt(3, 4)}
	}
	root := BuildTree(geom.Origin, ts)
	if !Valid(root, idsOf(ts)) {
		t.Fatal("invalid tree for co-located targets")
	}
	if m := Makespan(geom.Origin, root); math.Abs(m-5) > 1e-6 {
		t.Errorf("makespan = %v, want ≈ 5", m)
	}
}

func TestDepthReasonable(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	ts := randomTargets(rng, 200, 20)
	root := BuildTree(geom.Origin, ts)
	if d := Depth(root); d > 200 {
		t.Errorf("depth = %d for 200 targets", d)
	}
}

func TestPropagateWakesAll(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	pts := make([]geom.Point, 40)
	ts := make([]Target, 40)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*6-3, rng.Float64()*6-3)
		ts[i] = Target{ID: i + 1, Pos: pts[i]}
	}
	e := sim.NewEngine(sim.Config{Source: geom.Origin, Sleepers: pts})
	root := BuildTree(geom.Origin, ts)
	contCount := 0
	e.Spawn(sim.SourceID, func(p *sim.Proc) {
		if err := Propagate(p, root, func(q *sim.Proc) { contCount++ }); err != nil {
			t.Errorf("Propagate: %v", err)
		}
	})
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllAwake {
		t.Fatalf("only %d of %d awakened", res.Awakened, len(pts))
	}
	if contCount != len(pts) {
		t.Errorf("cont ran on %d robots, want %d", contCount, len(pts))
	}
	// Simulated makespan must equal the analytic Makespan.
	if math.Abs(res.Makespan-Makespan(geom.Origin, root)) > 1e-9 {
		t.Errorf("simulated %v vs analytic %v", res.Makespan, Makespan(geom.Origin, root))
	}
}

func TestPropagateParallelism(t *testing.T) {
	// Two far-apart clusters: propagation must overlap in time, so the
	// makespan is far below the total travel.
	var pts []geom.Point
	var ts []Target
	for i := 0; i < 8; i++ {
		p := geom.Pt(10+float64(i)*0.01, 0)
		pts = append(pts, p)
		ts = append(ts, Target{ID: i + 1, Pos: p})
	}
	for i := 0; i < 8; i++ {
		p := geom.Pt(-10-float64(i)*0.01, 0)
		pts = append(pts, p)
		ts = append(ts, Target{ID: i + 9, Pos: p})
	}
	e := sim.NewEngine(sim.Config{Source: geom.Origin, Sleepers: pts})
	root := BuildTree(geom.Origin, ts)
	e.Spawn(sim.SourceID, func(p *sim.Proc) {
		if err := Propagate(p, root, nil); err != nil {
			t.Errorf("Propagate: %v", err)
		}
	})
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllAwake {
		t.Fatal("not all awake")
	}
	total := res.TotalEnergy
	if res.Makespan >= total {
		t.Errorf("no parallelism: makespan %v ≥ total travel %v", res.Makespan, total)
	}
	// First wake costs ~10, the cross-cluster branch ~20 more; the whole
	// thing stays within 2·diam ≈ 40 while serial travel would exceed 40.
	if res.Makespan > 40 {
		t.Errorf("makespan = %v, want ≤ 2·diam = 40", res.Makespan)
	}
}

func TestPropagateMatchesMakespanRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(60)
		pts := make([]geom.Point, n)
		ts := make([]Target, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*8, rng.Float64()*8)
			ts[i] = Target{ID: i + 1, Pos: pts[i]}
		}
		start := geom.Pt(4, 4)
		e := sim.NewEngine(sim.Config{Source: start, Sleepers: pts})
		root := BuildTree(start, ts)
		e.Spawn(sim.SourceID, func(p *sim.Proc) {
			if err := Propagate(p, root, nil); err != nil {
				t.Errorf("Propagate: %v", err)
			}
		})
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllAwake {
			t.Fatalf("trial %d: not all awake", trial)
		}
		if math.Abs(res.Makespan-Makespan(start, root)) > 1e-9 {
			t.Fatalf("trial %d: sim %v vs analytic %v", trial, res.Makespan, Makespan(start, root))
		}
	}
}

func TestValidRejectsBadTrees(t *testing.T) {
	// Duplicate id.
	bad := &Node{ID: 1, Children: []*Node{{ID: 1}}}
	if Valid(bad, []int{1}) {
		t.Error("duplicate id accepted")
	}
	// Ternary node.
	tern := &Node{ID: 1, Children: []*Node{{ID: 2}, {ID: 3}, {ID: 4}}}
	if Valid(tern, []int{1, 2, 3, 4}) {
		t.Error("ternary node accepted")
	}
	// Missing id.
	chain := &Node{ID: 1}
	if Valid(chain, []int{1, 2}) {
		t.Error("missing id accepted")
	}
}
