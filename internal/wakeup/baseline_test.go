package wakeup

import (
	"math"
	"math/rand"
	"testing"

	"freezetag/internal/geom"
)

func TestChainMakespanSimple(t *testing.T) {
	ts := []Target{
		{ID: 1, Pos: geom.Pt(1, 0)},
		{ID: 2, Pos: geom.Pt(2, 0)},
	}
	// Greedy: 0→1 (1) →2 (1) = 2.
	if m := ChainMakespan(geom.Origin, ts); math.Abs(m-2) > 1e-12 {
		t.Errorf("chain = %v, want 2", m)
	}
	if m := ChainMakespan(geom.Origin, nil); m != 0 {
		t.Errorf("empty chain = %v", m)
	}
}

func TestChainTreeStructure(t *testing.T) {
	ts := []Target{
		{ID: 1, Pos: geom.Pt(3, 0)},
		{ID: 2, Pos: geom.Pt(1, 0)},
		{ID: 3, Pos: geom.Pt(2, 0)},
	}
	root := ChainTree(geom.Origin, ts)
	// Nearest-first: 2 (x=1), 3 (x=2), 1 (x=3).
	if root.ID != 2 {
		t.Fatalf("root = %d, want 2", root.ID)
	}
	if len(root.Children) != 1 || root.Children[0].ID != 3 {
		t.Fatalf("chain order broken: %+v", root)
	}
	if !Valid(root, []int{1, 2, 3}) {
		t.Error("chain tree invalid")
	}
	// Chain tree makespan equals ChainMakespan.
	if m, c := Makespan(geom.Origin, root), ChainMakespan(geom.Origin, ts); math.Abs(m-c) > 1e-12 {
		t.Errorf("tree makespan %v != chain %v", m, c)
	}
}

func TestTreeBeatsChainAtScale(t *testing.T) {
	// With many spread-out targets, the binary wake-up tree must crush the
	// chain baseline (parallelism ~ doubling).
	rng := rand.New(rand.NewSource(31))
	ts := make([]Target, 100)
	for i := range ts {
		ts[i] = Target{ID: i + 1, Pos: geom.Pt(rng.Float64()*20-10, rng.Float64()*20-10)}
	}
	chain := ChainMakespan(geom.Origin, ts)
	tree := Makespan(geom.Origin, BuildTree(geom.Origin, ts))
	if tree >= chain/3 {
		t.Errorf("tree %v not ≥3x faster than chain %v", tree, chain)
	}
}

func TestChainNeverBeatsOptimal(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(6)
		ts := make([]Target, n)
		for i := range ts {
			ts[i] = Target{ID: i + 1, Pos: geom.Pt(rng.Float64()*6-3, rng.Float64()*6-3)}
		}
		opt := OptimalMakespan(geom.Origin, ts)
		chain := ChainMakespan(geom.Origin, ts)
		if chain < opt-1e-9 {
			t.Fatalf("trial %d: chain %v beats optimal %v", trial, chain, opt)
		}
	}
}
