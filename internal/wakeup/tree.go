// Package wakeup implements centralized wake-up trees and their distributed
// realization.
//
// A wake-up tree (the paper's §1.1) is a rooted tree over robot positions in
// which every node has at most two children; a robot that wakes node x hands
// x one subtree and keeps the other (Algorithm 1), so the set of awake robots
// doubles its workforce along the way. BuildTree constructs a tree whose
// makespan is O(diam) via recursive longest-side bisection: waking the point
// nearest to the current position costs at most the current region's
// diameter, and each two levels of bisection halve the region diameter, so
// the total is a geometric series ≈ 2(√2+√1.25)/(1-1/2) · R ≈ 10.1·R for a
// width-R square — the same O(1)-approximation regime as [YBMK15, BCGH24]
// (their constants are tighter; only O(R) matters downstream).
package wakeup

import (
	"math"

	"freezetag/internal/arena"
	"freezetag/internal/geom"
	"freezetag/internal/sim"
)

// Node is one robot in a wake-up tree. Children has length ≤ 2; Children[0]
// is the subtree the newly woken robot takes over, Children[1] the subtree
// the waker keeps (Algorithm 1's child1/child2). Speed and Capacity carry
// the robot's capability profile when the tree was built from heterogeneous
// targets (both zero in the homogeneous model: speed 0 reads as 1,
// capacity 0 as unconstrained).
type Node struct {
	ID       int
	Pos      geom.Point
	Speed    float64
	Capacity float64
	Children []*Node
}

// Target pairs a sleeping robot's id with its (initial) position and,
// optionally, its capability profile: Speed 0 means unit speed and
// Capacity 0 means unconstrained, so zero-valued targets reproduce the
// homogeneous model exactly.
type Target struct {
	ID       int
	Pos      geom.Point
	Speed    float64
	Capacity float64
}

// speedOf normalizes a profile speed: 0 (absent) reads as unit speed.
func speedOf(s float64) float64 {
	if s <= 0 {
		return 1
	}
	return s
}

// BuildTree builds a wake-up tree over targets for a robot starting at
// start, greedy under the Euclidean metric. It returns nil for an empty
// target set. The tree's makespan from start is O(diam(targets ∪ {start})):
// see the package comment.
func BuildTree(start geom.Point, targets []Target) *Node {
	return BuildTreeIn(nil, start, targets)
}

// BuildTreeIn is BuildTree with the nearest-target greedy measured under
// metric m (nil defaults to ℓ2). The recursion's region bisection is
// axis-aligned and works unchanged for every supported metric; since all ℓp
// distances are within a constant factor of each other in the plane, the
// O(diam) makespan guarantee carries over with the metric's constant.
//
// Heterogeneous targets (any Speed ∉ {0, 1} or Capacity > 0) switch the
// greedy to speed-weighted time (argmin dist/speed: a fast robot slightly
// farther away is woken first, because waking it is an investment in the
// rest of the propagation) and make the Algorithm 1 handoff capacity-aware:
// the deeper subtree goes to the woken robot when it is fast enough — and
// has the capacity — to carry it, and stays with the waker otherwise.
// Homogeneous targets take the exact pre-profile code path: every weight
// divides by speed 1, and no handoff swap ever fires.
func BuildTreeIn(m geom.Metric, start geom.Point, targets []Target) *Node {
	var b Builder
	return b.BuildIn(m, start, targets)
}

// Builder carries wake-tree construction state and owns the backing storage
// of the trees it builds: nodes, child-pointer pairs, and propagation
// handlers all come from grow-only slabs. A zero Builder is ready to use and
// behaves like the one-shot BuildTreeIn; a Builder fetched with BuilderOf
// lives in an engine's scratch stash, where its slabs are rewound between
// the runs of a pooled engine — so every tree it ever built is invalidated
// when the engine is Reset, and steady-state tree construction allocates
// nothing.
type Builder struct {
	m      geom.Metric
	hetero bool
	nodes  arena.Slab[Node]
	kids   arena.Slab[*Node]
	hands  arena.Slab[propHandler]
	ts     []Target // working copy of the current build's targets
	part   []Target // bisection partition scratch (see build)
}

// BuilderOf returns the engine's pooled tree builder.
func BuilderOf(e *sim.Engine) *Builder {
	return sim.ScratchOf(e, "wakeup.builder", func() *Builder { return &Builder{} })
}

// ResetRun implements sim.RunScratch: trees and handlers from the previous
// run are invalidated, their storage reused.
func (b *Builder) ResetRun() {
	b.nodes.Reset()
	b.kids.Reset()
	b.hands.Reset()
}

// BuildIn is BuildTreeIn building from the Builder's pooled storage. The
// returned tree is bit-identical to BuildTreeIn's — same nearest-first
// greedy, same bisection, same handoff rules — and remains valid until the
// Builder's next ResetRun.
func (b *Builder) BuildIn(m geom.Metric, start geom.Point, targets []Target) *Node {
	if len(targets) == 0 {
		return nil
	}
	// Inline fold of geom.BoundingRect over {start} ∪ target positions, in
	// the same order and with the same math.Min/Max operations, without
	// materializing the point slice.
	region := geom.Rect{Min: start, Max: start}
	hetero := false
	for _, t := range targets {
		region.Min.X = math.Min(region.Min.X, t.Pos.X)
		region.Min.Y = math.Min(region.Min.Y, t.Pos.Y)
		region.Max.X = math.Max(region.Max.X, t.Pos.X)
		region.Max.Y = math.Max(region.Max.Y, t.Pos.Y)
		if (t.Speed > 0 && t.Speed != 1) || t.Capacity > 0 {
			hetero = true
		}
	}
	b.m = geom.MetricOrL2(m)
	b.hetero = hetero
	b.ts = append(b.ts[:0], targets...)
	return b.build(b.ts, region, start)
}

// newNode carves one node from the slab. Slab chunks never move, so the
// returned pointer stays valid across future allocations.
func (b *Builder) newNode(t Target) *Node {
	ns := b.nodes.Take(1)
	ns = append(ns, Node{ID: t.ID, Pos: t.Pos, Speed: t.Speed, Capacity: t.Capacity})
	return &ns[0]
}

// build constructs the subtree for the targets inside region, to be woken by
// a robot currently at from. It owns (and may reorder) ts.
func (b *Builder) build(ts []Target, region geom.Rect, from geom.Point) *Node {
	if len(ts) == 0 {
		return nil
	}
	m := b.m
	// Wake the target nearest in travel time to the current position: cost ≤
	// diam(region)/minSpeed. Homogeneous speeds are exactly 1, so the weight
	// is the plain distance and the pre-profile tree is reproduced. The
	// (time, ID) minimum is unique — ids are — so it does not depend on the
	// order the targets are scanned in.
	nearest := 0
	bd := math.Inf(1)
	for i, t := range ts {
		if d := m.Dist(from, t.Pos) / speedOf(t.Speed); d < bd ||
			(d == bd && (t.ID < ts[nearest].ID)) {
			nearest, bd = i, d
		}
	}
	ts[0], ts[nearest] = ts[nearest], ts[0]
	node := b.newNode(ts[0])
	rest := ts[1:]
	if len(rest) == 0 {
		return node
	}
	// Degenerate region: all positions (numerically) coincide, so geometric
	// bisection cannot separate them. Chain the remaining targets; every
	// edge has length ≈ 0 so the makespan is unaffected.
	if region.Diam() <= 4*geom.Eps {
		child := b.build(rest, region, node.Pos)
		if child != nil {
			ks := b.kids.Take(1)
			node.Children = append(ks, child)
		}
		return node
	}
	r1, r2 := region.SplitLongestSide()
	// Stable in-place partition of rest into r1's targets followed by r2's:
	// r1 members compact forward, r2 members divert to the scratch buffer
	// and are copied back behind them. Both halves keep their relative
	// order, so the recursion sees exactly the in1/in2 sequences the
	// append-based partition produced.
	b.part = b.part[:0]
	n1 := 0
	for _, t := range rest {
		if r1.ContainsStrict(t.Pos) || (!r2.ContainsStrict(t.Pos) && r1.Contains(t.Pos)) {
			rest[n1] = t
			n1++
		} else {
			b.part = append(b.part, t)
		}
	}
	copy(rest[n1:], b.part)
	c1 := b.build(rest[:n1], r1, node.Pos)
	c2 := b.build(rest[n1:], r2, node.Pos)
	// Children[0] goes to the woken robot, Children[1] stays with the waker.
	if b.hetero && c1 != nil && c2 != nil && b.swapHandoff(node, c1, c2) {
		c1, c2 = c2, c1
	}
	nc := 0
	if c1 != nil {
		nc++
	}
	if c2 != nil {
		nc++
	}
	if nc > 0 {
		ks := b.kids.Take(nc)
		if c1 != nil {
			ks = append(ks, c1)
		}
		if c2 != nil {
			ks = append(ks, c2)
		}
		node.Children = ks
	}
	return node
}

// swapHandoff decides whether the Algorithm 1 handoff at node should be
// flipped so the woken robot takes c2 instead of c1. Two deterministic
// rules, capacity first:
//
//   - a capacity-limited woken robot must not be handed a subtree whose
//     critical path it cannot afford when the other one is affordable;
//   - otherwise, a fast woken robot (speed > 1) takes the deeper subtree
//     and a slow one (speed < 1) the shallower, leaving the other branch to
//     the waker, whose speed the builder cannot know statically.
func (b *Builder) swapHandoff(node, c1, c2 *Node) bool {
	if node.Capacity > 0 {
		cost1 := MakespanIn(b.m, node.Pos, c1)
		cost2 := MakespanIn(b.m, node.Pos, c2)
		if cost1 > node.Capacity && cost2 <= node.Capacity {
			return true
		}
		if cost2 > node.Capacity && cost1 <= node.Capacity {
			return false
		}
	}
	sp := speedOf(node.Speed)
	d1, d2 := Depth(c1), Depth(c2)
	if sp > 1 {
		return d2 > d1
	}
	if sp < 1 {
		return d1 > d2
	}
	return false
}

// Makespan returns the time to wake the whole tree under Euclidean travel.
func Makespan(start geom.Point, root *Node) float64 {
	return MakespanIn(nil, start, root)
}

// MakespanIn returns the time to wake the whole tree when the waking robot
// starts at start and every robot moves at unit speed under metric m: the
// node's wake time is the arrival time of its waker, and after a wake both
// robots proceed in parallel per Algorithm 1.
func MakespanIn(m geom.Metric, start geom.Point, root *Node) float64 {
	if root == nil {
		return 0
	}
	mm := geom.MetricOrL2(m)
	arrive := mm.Dist(start, root.Pos)
	var sub float64
	switch len(root.Children) {
	case 0:
	case 1:
		sub = MakespanIn(mm, root.Pos, root.Children[0])
	default:
		sub = math.Max(
			MakespanIn(mm, root.Pos, root.Children[0]),
			MakespanIn(mm, root.Pos, root.Children[1]),
		)
	}
	return arrive + sub
}

// MakespanProfiledIn is MakespanIn under per-robot speeds: the waker
// travels to the root at startSpeed, and the Algorithm 1 split sends the
// woken robot (root.Speed) down Children[0] while the waker continues at
// startSpeed down Children[1]. Zero speeds read as 1, so a profile-free
// tree yields exactly MakespanIn.
func MakespanProfiledIn(m geom.Metric, start geom.Point, startSpeed float64, root *Node) float64 {
	if root == nil {
		return 0
	}
	mm := geom.MetricOrL2(m)
	arrive := mm.Dist(start, root.Pos) / speedOf(startSpeed)
	var sub float64
	switch len(root.Children) {
	case 0:
	case 1:
		// The woken robot takes the unique child (see Propagate).
		sub = MakespanProfiledIn(mm, root.Pos, root.Speed, root.Children[0])
	default:
		sub = math.Max(
			MakespanProfiledIn(mm, root.Pos, root.Speed, root.Children[0]),
			MakespanProfiledIn(mm, root.Pos, startSpeed, root.Children[1]),
		)
	}
	return arrive + sub
}

// Size returns the number of nodes in the tree.
func Size(root *Node) int {
	if root == nil {
		return 0
	}
	n := 1
	for _, c := range root.Children {
		n += Size(c)
	}
	return n
}

// Valid reports whether the tree is structurally a wake-up tree over exactly
// the given target ids: binary, and covering each id exactly once.
func Valid(root *Node, ids []int) bool {
	seen := make(map[int]bool, len(ids))
	if !walk(root, seen) {
		return false
	}
	if len(seen) != len(ids) {
		return false
	}
	for _, id := range ids {
		if !seen[id] {
			return false
		}
	}
	return true
}

func walk(n *Node, seen map[int]bool) bool {
	if n == nil {
		return true
	}
	if len(n.Children) > 2 || seen[n.ID] {
		return false
	}
	seen[n.ID] = true
	for _, c := range n.Children {
		if !walk(c, seen) {
			return false
		}
	}
	return true
}

// Depth returns the maximum number of edges on a root-to-leaf path.
func Depth(root *Node) int {
	if root == nil {
		return -1
	}
	d := 0
	for _, c := range root.Children {
		if cd := Depth(c) + 1; cd > d {
			d = cd
		}
	}
	return d
}
