// Package wakeup implements centralized wake-up trees and their distributed
// realization.
//
// A wake-up tree (the paper's §1.1) is a rooted tree over robot positions in
// which every node has at most two children; a robot that wakes node x hands
// x one subtree and keeps the other (Algorithm 1), so the set of awake robots
// doubles its workforce along the way. BuildTree constructs a tree whose
// makespan is O(diam) via recursive longest-side bisection: waking the point
// nearest to the current position costs at most the current region's
// diameter, and each two levels of bisection halve the region diameter, so
// the total is a geometric series ≈ 2(√2+√1.25)/(1-1/2) · R ≈ 10.1·R for a
// width-R square — the same O(1)-approximation regime as [YBMK15, BCGH24]
// (their constants are tighter; only O(R) matters downstream).
package wakeup

import (
	"math"

	"freezetag/internal/geom"
)

// Node is one robot in a wake-up tree. Children has length ≤ 2; Children[0]
// is the subtree the newly woken robot takes over, Children[1] the subtree
// the waker keeps (Algorithm 1's child1/child2).
type Node struct {
	ID       int
	Pos      geom.Point
	Children []*Node
}

// Target pairs a sleeping robot's id with its (initial) position.
type Target struct {
	ID  int
	Pos geom.Point
}

// BuildTree builds a wake-up tree over targets for a robot starting at
// start, greedy under the Euclidean metric. It returns nil for an empty
// target set. The tree's makespan from start is O(diam(targets ∪ {start})):
// see the package comment.
func BuildTree(start geom.Point, targets []Target) *Node {
	return BuildTreeIn(nil, start, targets)
}

// BuildTreeIn is BuildTree with the nearest-target greedy measured under
// metric m (nil defaults to ℓ2). The recursion's region bisection is
// axis-aligned and works unchanged for every supported metric; since all ℓp
// distances are within a constant factor of each other in the plane, the
// O(diam) makespan guarantee carries over with the metric's constant.
func BuildTreeIn(m geom.Metric, start geom.Point, targets []Target) *Node {
	if len(targets) == 0 {
		return nil
	}
	pts := make([]geom.Point, 0, len(targets)+1)
	pts = append(pts, start)
	for _, t := range targets {
		pts = append(pts, t.Pos)
	}
	region := geom.BoundingRect(pts)
	ts := append([]Target(nil), targets...)
	return build(geom.MetricOrL2(m), ts, region, start)
}

// build constructs the subtree for the targets inside region, to be woken by
// a robot currently at from. It owns (and may reorder) ts.
func build(m geom.Metric, ts []Target, region geom.Rect, from geom.Point) *Node {
	if len(ts) == 0 {
		return nil
	}
	// Wake the target nearest to the current position: cost ≤ diam(region).
	nearest := 0
	bd := math.Inf(1)
	for i, t := range ts {
		if d := m.Dist(from, t.Pos); d < bd ||
			(d == bd && (t.ID < ts[nearest].ID)) {
			nearest, bd = i, d
		}
	}
	ts[0], ts[nearest] = ts[nearest], ts[0]
	node := &Node{ID: ts[0].ID, Pos: ts[0].Pos}
	rest := ts[1:]
	if len(rest) == 0 {
		return node
	}
	// Degenerate region: all positions (numerically) coincide, so geometric
	// bisection cannot separate them. Chain the remaining targets; every
	// edge has length ≈ 0 so the makespan is unaffected.
	if region.Diam() <= 4*geom.Eps {
		child := build(m, rest, region, node.Pos)
		if child != nil {
			node.Children = append(node.Children, child)
		}
		return node
	}
	r1, r2 := region.SplitLongestSide()
	var in1, in2 []Target
	for _, t := range rest {
		if r1.ContainsStrict(t.Pos) || (!r2.ContainsStrict(t.Pos) && r1.Contains(t.Pos)) {
			in1 = append(in1, t)
		} else {
			in2 = append(in2, t)
		}
	}
	c1 := build(m, in1, r1, node.Pos)
	c2 := build(m, in2, r2, node.Pos)
	// Children[0] goes to the woken robot, Children[1] stays with the waker.
	if c1 != nil {
		node.Children = append(node.Children, c1)
	}
	if c2 != nil {
		node.Children = append(node.Children, c2)
	}
	return node
}

// Makespan returns the time to wake the whole tree under Euclidean travel.
func Makespan(start geom.Point, root *Node) float64 {
	return MakespanIn(nil, start, root)
}

// MakespanIn returns the time to wake the whole tree when the waking robot
// starts at start and every robot moves at unit speed under metric m: the
// node's wake time is the arrival time of its waker, and after a wake both
// robots proceed in parallel per Algorithm 1.
func MakespanIn(m geom.Metric, start geom.Point, root *Node) float64 {
	if root == nil {
		return 0
	}
	mm := geom.MetricOrL2(m)
	arrive := mm.Dist(start, root.Pos)
	var sub float64
	switch len(root.Children) {
	case 0:
	case 1:
		sub = MakespanIn(mm, root.Pos, root.Children[0])
	default:
		sub = math.Max(
			MakespanIn(mm, root.Pos, root.Children[0]),
			MakespanIn(mm, root.Pos, root.Children[1]),
		)
	}
	return arrive + sub
}

// Size returns the number of nodes in the tree.
func Size(root *Node) int {
	if root == nil {
		return 0
	}
	n := 1
	for _, c := range root.Children {
		n += Size(c)
	}
	return n
}

// Valid reports whether the tree is structurally a wake-up tree over exactly
// the given target ids: binary, and covering each id exactly once.
func Valid(root *Node, ids []int) bool {
	seen := make(map[int]bool, len(ids))
	if !walk(root, seen) {
		return false
	}
	if len(seen) != len(ids) {
		return false
	}
	for _, id := range ids {
		if !seen[id] {
			return false
		}
	}
	return true
}

func walk(n *Node, seen map[int]bool) bool {
	if n == nil {
		return true
	}
	if len(n.Children) > 2 || seen[n.ID] {
		return false
	}
	seen[n.ID] = true
	for _, c := range n.Children {
		if !walk(c, seen) {
			return false
		}
	}
	return true
}

// Depth returns the maximum number of edges on a root-to-leaf path.
func Depth(root *Node) int {
	if root == nil {
		return -1
	}
	d := 0
	for _, c := range root.Children {
		if cd := Depth(c) + 1; cd > d {
			d = cd
		}
	}
	return d
}
