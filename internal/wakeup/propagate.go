package wakeup

import "freezetag/internal/sim"

// Propagate realizes a wake-up tree on the simulator, implementing the
// paper's Algorithm 1 ("Propagate Wake-Up Tree"). The calling process moves
// to the root, wakes it, and the tree is split between waker and woken at
// every step: the woken robot takes Children[0], the waker continues with
// Children[1]. Each woken robot runs cont (may be nil) once its share of the
// propagation is complete — this is how AGrid/AWave attach round
// participation to freshly awakened robots.
//
// Propagate returns when the caller's own share is done; other branches
// continue in their own processes. Robots in the tree must still be asleep
// when reached — the paper's conflict-freedom precondition (Lemma 2), which
// the callers establish by operating in exclusive regions.
func Propagate(p *sim.Proc, root *Node, cont func(*sim.Proc)) error {
	var b Builder
	return b.Propagate(p, root, cont)
}

// propHandler is the wake handler of one tree node, carved from the
// Builder's handler slab: waking a wave of n robots installs n handlers
// without capturing n closures. It stays live until its process has run, so
// the slab rewinds only between runs (ResetRun).
type propHandler struct {
	b    *Builder
	sub  *Node
	cont func(*sim.Proc)
}

// RunProc implements sim.Handler: the woken robot propagates the subtree it
// was handed, then joins the continuation.
func (h *propHandler) RunProc(q *sim.Proc) {
	if h.sub != nil {
		// Budget exhaustion surfaces via engine violations; the branch
		// simply stops where it halted.
		_ = h.b.Propagate(q, h.sub, h.cont)
	}
	if h.cont != nil {
		h.cont(q)
	}
}

// Propagate is the package-level Propagate drawing its per-wake handlers
// from the Builder's slab. The walk, the wake order, and every spawned
// process are identical; only the handler storage differs.
//
// Under a fault plan with an armed repair layer (InstallRepair) the
// propagation switches to the watched variant; the fault-free path below is
// untouched, keeping fault-free runs bit-identical.
func (b *Builder) Propagate(p *sim.Proc, root *Node, cont func(*sim.Proc)) error {
	if e := p.Engine(); e.FaultsEnabled() {
		if rp := repairerOf(e); rp.installed {
			return b.propagateRepair(p, root, cont, rp)
		}
	}
	node := root
	for node != nil {
		if err := p.MoveTo(node.Pos); err != nil {
			return err
		}
		var woken, kept *Node
		switch len(node.Children) {
		case 0:
			// Leaf: woken robot only runs its continuation.
		case 1:
			// Unique child: the woken robot takes it, the waker stops.
			woken = node.Children[0]
		default:
			woken, kept = node.Children[0], node.Children[1]
		}
		hs := b.hands.Take(1)
		hs = append(hs, propHandler{b: b, sub: woken, cont: cont})
		p.WakeH(node.ID, &hs[0])
		node = kept
	}
	return nil
}
