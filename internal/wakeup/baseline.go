package wakeup

import (
	"math"

	"freezetag/internal/geom"
)

// ChainMakespan is the no-delegation baseline: a single robot wakes every
// target itself, visiting them greedily nearest-first, and woken robots do
// not help. This is the strategy a naive solution uses; wake-up trees beat
// it by the workforce-doubling of Algorithm 1. Returns 0 for no targets.
func ChainMakespan(start geom.Point, targets []Target) float64 {
	remaining := append([]Target(nil), targets...)
	cur := start
	var total float64
	for len(remaining) > 0 {
		best := 0
		bd := math.Inf(1)
		for i, t := range remaining {
			if d := cur.Dist(t.Pos); d < bd {
				best, bd = i, d
			}
		}
		total += bd
		cur = remaining[best].Pos
		remaining[best] = remaining[len(remaining)-1]
		remaining = remaining[:len(remaining)-1]
	}
	return total
}

// ChainTree builds the degenerate wake-up tree realizing the chain strategy
// (every node has exactly one child, in greedy nearest-first order), so the
// baseline can also be executed on the simulator via Propagate. Note that
// under Algorithm 1's semantics the woken robot carries the chain on — the
// timing is identical to a single robot doing all the work.
func ChainTree(start geom.Point, targets []Target) *Node {
	remaining := append([]Target(nil), targets...)
	cur := start
	var root, tail *Node
	for len(remaining) > 0 {
		best := 0
		bd := math.Inf(1)
		for i, t := range remaining {
			if d := cur.Dist(t.Pos); d < bd {
				best, bd = i, d
			}
		}
		node := &Node{ID: remaining[best].ID, Pos: remaining[best].Pos}
		if tail == nil {
			root = node
		} else {
			tail.Children = []*Node{node}
		}
		tail = node
		cur = node.Pos
		remaining[best] = remaining[len(remaining)-1]
		remaining = remaining[:len(remaining)-1]
	}
	return root
}
