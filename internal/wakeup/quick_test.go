package wakeup

import (
	"math/rand"
	"testing"
	"testing/quick"

	"freezetag/internal/geom"
)

// targetsFromSeed derives a bounded random target set from a quick-generated
// seed, keeping the property functions deterministic per input.
func targetsFromSeed(seed int64, maxN int) []Target {
	rng := rand.New(rand.NewSource(seed))
	n := 1 + rng.Intn(maxN)
	ts := make([]Target, n)
	for i := range ts {
		ts[i] = Target{ID: i + 1, Pos: geom.Pt(rng.Float64()*10-5, rng.Float64()*10-5)}
	}
	return ts
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 60, Rand: rand.New(rand.NewSource(1))}
}

// Property: BuildTree always yields a valid binary tree covering every
// target exactly once.
func TestQuickTreeValidity(t *testing.T) {
	f := func(seed int64) bool {
		ts := targetsFromSeed(seed, 60)
		root := BuildTree(geom.Origin, ts)
		ids := make([]int, len(ts))
		for i := range ts {
			ids[i] = ts[i].ID
		}
		return Valid(root, ids) && Size(root) == len(ts)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: the tree makespan is at least the distance to the farthest
// target (trivial lower bound) and at least the chain-free floor of the
// nearest target.
func TestQuickMakespanFloors(t *testing.T) {
	f := func(seed int64) bool {
		ts := targetsFromSeed(seed, 40)
		m := Makespan(geom.Origin, BuildTree(geom.Origin, ts))
		far := 0.0
		for _, x := range ts {
			if d := x.Pos.Norm(); d > far {
				far = d
			}
		}
		return m >= far-1e-9
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: translating the whole input translates nothing about the
// makespan (translation invariance).
func TestQuickTranslationInvariance(t *testing.T) {
	f := func(seed int64, dx, dy float64) bool {
		if dx != dx || dy != dy || dx > 1e6 || dx < -1e6 || dy > 1e6 || dy < -1e6 {
			return true // skip NaN/huge offsets
		}
		ts := targetsFromSeed(seed, 25)
		off := geom.Pt(dx, dy)
		moved := make([]Target, len(ts))
		for i, x := range ts {
			moved[i] = Target{ID: x.ID, Pos: x.Pos.Add(off)}
		}
		a := Makespan(geom.Origin, BuildTree(geom.Origin, ts))
		b := Makespan(off, BuildTree(off, moved))
		diff := a - b
		if diff < 0 {
			diff = -diff
		}
		return diff <= 1e-6*(1+a)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: ChainMakespan dominates the tree makespan (delegation can only
// help) and both dominate the optimal for small n.
func TestQuickChainDominatesTree(t *testing.T) {
	f := func(seed int64) bool {
		ts := targetsFromSeed(seed, 30)
		chain := ChainMakespan(geom.Origin, ts)
		tree := Makespan(geom.Origin, BuildTree(geom.Origin, ts))
		// Not strictly guaranteed point-wise (different orders), but the
		// chain visits everything serially so it dominates up to the greedy
		// order's slack; assert the robust direction with tolerance.
		return chain >= tree*0.99-1e-9
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}
