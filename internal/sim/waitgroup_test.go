package sim

import (
	"errors"
	"math"
	"testing"

	"freezetag/internal/geom"
)

func TestWaitGroupReleasesAtCompletion(t *testing.T) {
	sleepers := []geom.Point{geom.Pt(1, 0), geom.Pt(2, 0)}
	e := NewEngine(Config{Source: geom.Origin, Sleepers: sleepers})
	var releaseTime float64
	e.Spawn(SourceID, func(p *Proc) {
		wg := e.NewWaitGroup()
		if err := p.MoveTo(geom.Pt(1, 0)); err != nil {
			t.Errorf("move: %v", err)
		}
		wg.Add(1)
		p.Wake(1, func(q *Proc) {
			q.Wait(5) // finishes at t=6
			wg.Done()
		})
		wg.Add(1)
		if err := p.MoveTo(geom.Pt(2, 0)); err != nil {
			t.Errorf("move: %v", err)
		}
		p.Wake(2, func(q *Proc) {
			q.Wait(1) // finishes at t=3
			wg.Done()
		})
		wg.Wait(p)
		releaseTime = p.Now()
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(releaseTime-6) > 1e-9 {
		t.Errorf("released at %v, want 6 (latest Done)", releaseTime)
	}
}

func TestWaitGroupZeroCountImmediate(t *testing.T) {
	e := NewEngine(Config{Source: geom.Origin})
	e.Spawn(SourceID, func(p *Proc) {
		wg := e.NewWaitGroup()
		wg.Wait(p) // returns immediately
		if p.Now() != 0 {
			t.Errorf("zero-count Wait advanced time to %v", p.Now())
		}
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitGroupNeverDoneDeadlocks(t *testing.T) {
	e := NewEngine(Config{Source: geom.Origin})
	e.Spawn(SourceID, func(p *Proc) {
		wg := e.NewWaitGroup()
		wg.Add(1)
		wg.Wait(p)
		t.Error("Wait returned without Done")
	})
	_, err := e.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestWaitGroupPanicsOnNegative(t *testing.T) {
	e := NewEngine(Config{Source: geom.Origin})
	wg := e.NewWaitGroup()
	defer func() {
		if recover() == nil {
			t.Fatal("Done below zero should panic")
		}
	}()
	wg.Done()
}

func TestWaitGroupPanicsOnBadAdd(t *testing.T) {
	e := NewEngine(Config{Source: geom.Origin})
	wg := e.NewWaitGroup()
	defer func() {
		if recover() == nil {
			t.Fatal("Add(0) should panic")
		}
	}()
	wg.Add(0)
}

func TestWaitGroupPending(t *testing.T) {
	e := NewEngine(Config{Source: geom.Origin})
	wg := e.NewWaitGroup()
	wg.Add(3)
	if wg.Pending() != 3 {
		t.Errorf("Pending = %d", wg.Pending())
	}
	wg.Done()
	if wg.Pending() != 2 {
		t.Errorf("Pending = %d", wg.Pending())
	}
}

func TestWaitGroupMultipleWaiters(t *testing.T) {
	sleepers := []geom.Point{geom.Pt(0, 0), geom.Pt(0, 0)}
	e := NewEngine(Config{Source: geom.Origin, Sleepers: sleepers})
	released := 0
	e.Spawn(SourceID, func(p *Proc) {
		wg := e.NewWaitGroup()
		wg.Add(1)
		p.Wake(1, func(q *Proc) {
			q.Wait(2)
			wg.Done()
		})
		p.Wake(2, func(q *Proc) {
			wg.Wait(q)
			released++
		})
		wg.Wait(p)
		released++
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if released != 2 {
		t.Errorf("released %d waiters, want 2", released)
	}
}
