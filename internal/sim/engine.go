package sim

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"freezetag/internal/arena"
	"freezetag/internal/geom"
	"freezetag/internal/spatial"
)

// Profile is one sleeping robot's capability profile: a travel speed
// (distance δ takes time δ/Speed) and a private energy capacity (≤ 0 means
// "inherit Config.Budget"). It mirrors instance.Profile without importing
// the instance layer.
type Profile struct {
	Speed    float64
	Capacity float64
}

// Config parameterizes an Engine.
type Config struct {
	// Source is the initial position of the always-awake source robot.
	Source geom.Point
	// Sleepers are the initial positions of the n sleeping robots; robot i+1
	// sleeps at Sleepers[i].
	Sleepers []geom.Point
	// Budget is the per-robot energy budget B. Zero or negative means
	// unconstrained (stored as +Inf).
	Budget float64
	// Profiles, when non-empty, gives robot i+1 the capability profile
	// Profiles[i] (one entry per sleeper; the source is always unit-speed
	// and keeps Budget). Empty means the homogeneous unit-speed model.
	Profiles []Profile
	// Metric is the distance the whole model is measured in: travel times,
	// energy, and the radius-1 Look. Nil means Euclidean (ℓ2), the paper's
	// setting.
	Metric geom.Metric
	// Trace, when non-nil, receives every simulation event in order.
	Trace func(Event)
	// Faults, when non-nil, injects the plan's deterministic faults into the
	// run and switches the engine's roster contracts from panic-on-bug to
	// tolerate-and-count (see FaultPlan). Nil keeps the fault-free model
	// bit-identical to the pre-fault engine.
	Faults *FaultPlan
}

// Event is a trace record emitted by the engine.
type Event struct {
	T     float64
	Robot int
	// Kind is "move", "look", "wake", "spawn", "barrier", "done", "halt", or
	// — under fault injection — "fault-crash", "fault-recover",
	// "fault-wakedrop", "fault-wakedup", "fault-byz", "fault-roster",
	// "repair".
	Kind  string
	Pos   geom.Point
	Extra string
}

// Engine is the deterministic discrete-event simulator. Create one with
// NewEngine, install the source program with Spawn, then call Run.
//
// Engine is not safe for concurrent use from outside; internally it enforces
// a strict handoff so at most one robot process executes at any instant.
type Engine struct {
	now      float64
	seq      int64
	metric   geom.Metric
	robots   []*Robot
	block    []Robot // backing array of robots, reused across Reset
	minSpeed float64 // slowest robot speed (source included); 1 when homogeneous
	hetero   bool    // Config.Profiles was non-empty

	sleeping *spatial.Grid // indexes robots by id while asleep (look radius 1)
	awake    *spatial.Grid // indexes awake robots by id

	pq       eventHeap
	park     chan parkMsg
	barriers map[string]*barrier
	// parked holds every process currently parked indefinitely (barriers,
	// wait-groups); used for deadlock detection and shutdown.
	parked map[*Proc]struct{}

	// queryBuf backs the engine-level grid queries (Look's sleeping and
	// awake scans). The engine runs one process at a time and each query's
	// result is consumed before the next query, so one buffer serves every
	// Look of the run without allocating.
	queryBuf []int

	trace func(Event)

	// Event-loop probe counters: plain (non-atomic) int64s incremented on
	// the single-threaded event loop, so counting is free of contention and
	// the totals are as deterministic as the schedule itself. They surface
	// in Result for the serving tier's metrics; they are never serialized
	// into response bodies.
	steps int64 // event dispatches (one scheduled process resume each)
	looks int64 // Look snapshots taken
	moves int64 // completed robot moves (team members count individually)

	asleepCount int
	lastWake    float64
	violations  []string
	running     bool

	// pooled marks an engine owned by a worker arena (NewEngineIn): finished
	// process goroutines park in procFree for reuse instead of exiting, and
	// Reset rewinds the engine for the next instance. Directly constructed
	// engines (NewEngine) keep the one-shot lifecycle: spawn, run, discard.
	pooled   bool
	procFree []*Proc
	// sight backs every Look snapshot of the run; energyBuf backs
	// Result.EnergyByRobot. Both are invalidated by Reset, which is safe
	// because nothing built from a pooled run may outlive its job.
	sight     arena.Slab[Sighting]
	energyBuf []float64
	// scratch holds per-algorithm reusable state keyed by algorithm name
	// (see ScratchOf); values implementing RunScratch rewind on Reset.
	scratch map[string]any

	// Fault-injection state (nil/zero on fault-free runs — see faults.go).
	faults   *FaultPlan
	wakeRand *rand.Rand // sequential wake-fault stream
	fstats   FaultStats
	// wgs registers every WaitGroup built on this engine so ReleaseStalled
	// can void them; pidSeq numbers processes in spawn order so stalled
	// releases have a deterministic order.
	wgs         []*WaitGroup
	pidSeq      int64
	firstRepair float64
	lastRepair  float64
}

// RunScratch is implemented by scratch values that must rewind between runs;
// Engine.Reset invokes it on every stashed scratch value that has it.
type RunScratch interface{ ResetRun() }

// ScratchOf returns the engine's scratch value under key, building it with mk
// on first use. Algorithm installers use it to keep their round bookkeeping
// (registries, reusable buffers, memoized closures) alive across the runs of
// a pooled engine. A key reused at a different type panics.
func ScratchOf[T any](e *Engine, key string, mk func() T) T {
	if e.scratch == nil {
		e.scratch = make(map[string]any)
	}
	if v, ok := e.scratch[key]; ok {
		return v.(T)
	}
	v := mk()
	e.scratch[key] = v
	return v
}

type parkMsg struct {
	p    *Proc
	kind parkKind
	at   float64
}

type parkKind int

const (
	parkYield parkKind = iota + 1 // resume at time `at`
	parkWait                      // parked indefinitely (barrier)
	parkDone                      // process finished
)

type schedItem struct {
	t   float64
	seq int64
	p   *Proc
}

// eventHeap is a typed binary min-heap over (time, sequence). The
// hand-rolled sift loops perform the same comparisons container/heap would,
// without boxing every schedItem through an interface on push and pop —
// the event loop runs one push and one pop per simulation step, which made
// that boxing one of the simulator's top allocation sites.
type eventHeap []schedItem

func (h eventHeap) less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}

func (h *eventHeap) push(it schedItem) {
	*h = append(*h, it)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *eventHeap) pop() schedItem {
	s := *h
	n := len(s) - 1
	top := s[0]
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && s.less(l, smallest) {
			smallest = l
		}
		if r < n && s.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
	return top
}

type barrier struct {
	need    int
	waiters []*Proc
}

// NewEngine builds an engine over the given instance. Robot 0 is the awake
// source; robots 1..n start asleep at Config.Sleepers.
//
// Everything sized by the robot count — the robot records themselves, the
// spatial indexes, the event heap — is allocated up front in one block
// each, so a simulation's steady state allocates only per-process resume
// machinery and whatever the algorithm itself builds.
func NewEngine(cfg Config) *Engine { return newEngine(cfg, false) }

func newEngine(cfg Config, pooled bool) *Engine {
	n := len(cfg.Sleepers)
	metric := geom.MetricOrL2(cfg.Metric)
	e := &Engine{
		metric:   metric,
		sleeping: spatial.NewGridInCap(metric, 1, n),
		awake:    spatial.NewGridInCap(metric, 1, n+1),
		pq:       make(eventHeap, 0, n+2),
		park:     make(chan parkMsg),
		barriers: make(map[string]*barrier),
		parked:   make(map[*Proc]struct{}),
		trace:    cfg.Trace,
		pooled:   pooled,
	}
	e.populate(cfg)
	return e
}

// NewEngineIn returns an engine backed by the worker arena a: the first call
// builds a pooled engine and stashes it; later calls reset that engine
// against the new configuration, so the whole simulation substrate — robot
// block, spatial grids, event heap, process goroutines, algorithm scratch —
// is reused across the jobs of one worker. A nil arena falls back to a
// fresh one-shot NewEngine.
func NewEngineIn(a *arena.Arena, cfg Config) *Engine {
	if a == nil {
		return NewEngine(cfg)
	}
	slot := arena.Of(a, "sim.engine", func() *engineSlot { return &engineSlot{} })
	if slot.e == nil {
		slot.e = newEngine(cfg, true)
	} else {
		slot.e.Reset(cfg)
	}
	return slot.e
}

// engineSlot is the arena stash entry for a pooled engine; the indirection
// exists so arena.Close can release the engine's idle goroutine pool.
type engineSlot struct{ e *Engine }

func (s *engineSlot) Close() {
	if s.e != nil {
		s.e.Close()
		s.e = nil
	}
}

// populate loads cfg's robot population into an otherwise-clean engine. It
// is the shared tail of newEngine and Reset; Reset reuses the robot block
// and grid storage, so on a same-shape instance it allocates nothing.
func (e *Engine) populate(cfg Config) {
	budget := cfg.Budget
	if budget <= 0 {
		budget = math.Inf(1)
	}
	n := len(cfg.Sleepers)
	if len(cfg.Profiles) != 0 && len(cfg.Profiles) != n {
		panic(fmt.Sprintf("sim: %d profiles for %d sleepers", len(cfg.Profiles), n))
	}
	e.minSpeed = 1
	e.hetero = len(cfg.Profiles) > 0
	if cap(e.block) < n+1 {
		e.block = make([]Robot, n+1)
		e.robots = make([]*Robot, n+1)
	} else {
		e.block = e.block[:n+1]
		e.robots = e.robots[:n+1]
	}
	block := e.block
	block[0] = Robot{id: SourceID, initPos: cfg.Source, pos: cfg.Source, state: Awake, budget: budget, speed: 1}
	e.robots[0] = &block[0]
	e.awake.Insert(SourceID, cfg.Source)
	for i, p := range cfg.Sleepers {
		speed, b := 1.0, budget
		if len(cfg.Profiles) > 0 {
			pr := cfg.Profiles[i]
			if !(pr.Speed > 0) || math.IsInf(pr.Speed, 1) {
				panic(fmt.Sprintf("sim: robot %d speed must be finite and > 0, got %g", i+1, pr.Speed))
			}
			speed = pr.Speed
			if pr.Capacity > 0 {
				b = pr.Capacity
			}
		}
		block[i+1] = Robot{id: i + 1, initPos: p, pos: p, state: Asleep, budget: b, speed: speed}
		e.robots[i+1] = &block[i+1]
		e.sleeping.Insert(i+1, p)
		if speed < e.minSpeed {
			e.minSpeed = speed
		}
	}
	e.asleepCount = n
	e.faults = cfg.Faults
	if cfg.Faults != nil {
		e.installFaults(cfg.Faults)
	}
}

// Reset rewinds a pooled engine for a fresh run over cfg, reusing every
// piece of run-sized storage: the robot block, both spatial grids, the event
// heap, the Look slab, and all algorithm scratch (values implementing
// RunScratch are rewound). The idle process-goroutine pool survives. Every
// slice handed out by the previous run (Look snapshots, EnergyByRobot) is
// invalidated.
func (e *Engine) Reset(cfg Config) {
	if !e.pooled {
		panic("sim: Reset on a non-pooled engine")
	}
	metric := geom.MetricOrL2(cfg.Metric)
	e.now = 0
	e.seq = 0
	e.metric = metric
	e.sleeping.Reset(metric)
	e.awake.Reset(metric)
	e.pq = e.pq[:0]
	clear(e.barriers)
	clear(e.parked)
	e.trace = cfg.Trace
	e.steps, e.looks, e.moves = 0, 0, 0
	e.lastWake = 0
	e.violations = e.violations[:0]
	e.running = false
	e.sight.Reset()
	e.faults = nil
	e.wakeRand = nil
	e.fstats = FaultStats{}
	e.wgs = e.wgs[:0]
	e.pidSeq = 0
	e.firstRepair, e.lastRepair = 0, 0
	for _, v := range e.scratch {
		if r, ok := v.(RunScratch); ok {
			r.ResetRun()
		}
	}
	e.populate(cfg)
}

// Close terminates the engine's idle pooled goroutines. It is required (and
// only meaningful) for pooled engines; arena teardown calls it via the
// stashed engineSlot. The engine must not be run again after Close.
func (e *Engine) Close() {
	for _, p := range e.procFree {
		e.kill(p)
	}
	e.procFree = e.procFree[:0]
}

// Now returns the current virtual time.
func (e *Engine) Now() float64 { return e.now }

// Metric returns the distance the run is measured in. Algorithm code must
// compute all travel and visibility distances through it.
func (e *Engine) Metric() geom.Metric { return e.metric }

// MinSpeed returns the slowest robot speed in the swarm (source included).
// Worst-case travel-time bounds calibrated for unit speed stay valid when
// divided by it; it is exactly 1 for a homogeneous engine, so that division
// is then the IEEE-754 identity.
func (e *Engine) MinSpeed() float64 { return e.minSpeed }

// Heterogeneous reports whether the engine was built with per-robot
// profiles. Algorithm code uses it to keep the homogeneous fast paths
// byte-identical to the pre-profile model.
func (e *Engine) Heterogeneous() bool { return e.hetero }

// dist is the engine-level distance between two points under the run metric.
func (e *Engine) dist(p, q geom.Point) float64 { return e.metric.Dist(p, q) }

// Robot returns the robot with the given id; it panics on unknown ids, which
// are always a programming error in algorithm code.
func (e *Engine) Robot(id int) *Robot {
	if id < 0 || id >= len(e.robots) {
		panic(fmt.Sprintf("sim: unknown robot id %d", id))
	}
	return e.robots[id]
}

// NumRobots returns n+1 (source included).
func (e *Engine) NumRobots() int { return len(e.robots) }

// AsleepCount returns the number of robots still asleep.
func (e *Engine) AsleepCount() int { return e.asleepCount }

// Handler is the interface form of a process body. Converting a function to
// a Handler via handlerFunc is allocation-free (func values are
// pointer-shaped), and algorithm code with a hot wake path can implement
// RunProc on a pooled struct to avoid capturing closures per wake.
type Handler interface{ RunProc(*Proc) }

// HandlerFunc adapts a plain function to Handler.
type HandlerFunc func(*Proc)

// RunProc implements Handler.
func (f HandlerFunc) RunProc(p *Proc) { f(p) }

// Spawn schedules fn to run as a new process on the given awake robot at the
// current virtual time. It is the entry point for the source program and for
// handlers attached to newly awakened robots.
func (e *Engine) Spawn(id int, fn func(*Proc)) { e.SpawnH(id, HandlerFunc(fn)) }

// SpawnH is Spawn taking a Handler. On a pooled engine the process record
// and its goroutine come from the free list when one is idle, so steady-
// state spawning allocates nothing.
func (e *Engine) SpawnH(id int, h Handler) {
	r := e.Robot(id)
	if r.state != Awake || (e.faults != nil && r.stopped) {
		if e.faults != nil {
			// Under injection the roster can go stale between a Look and the
			// Spawn it motivates (the robot crashed, or its wake was dropped):
			// absorb the spawn as a counted skip instead of panicking.
			e.fstats.RosterSkips++
			e.emit(Event{T: e.now, Robot: id, Kind: "fault-roster", Pos: r.pos, Extra: "spawn"})
			return
		}
		panic(fmt.Sprintf("sim: Spawn on non-awake robot %d", id))
	}
	if r.byz && h != nil {
		// Adversary takeover: the robot's program is replaced by the fault
		// plan's wander program. The substitution happens at spawn so every
		// path that hands a Byzantine robot work — wake handlers, repair
		// rescues — is covered.
		e.fstats.ByzTakeovers++
		e.emit(Event{T: e.now, Robot: id, Kind: "fault-byz", Pos: r.pos})
		h = byzHandler{plan: e.faults}
	}
	var p *Proc
	if n := len(e.procFree); n > 0 {
		p = e.procFree[n-1]
		e.procFree = e.procFree[:n-1]
		p.r = r
		p.fn = h
	} else {
		p = &Proc{eng: e, r: r, resume: make(chan struct{}), fn: h}
		go p.loop()
	}
	p.pid = e.pidSeq
	e.pidSeq++
	r.procs++
	e.push(p, e.now)
	e.emit(Event{T: e.now, Robot: id, Kind: "spawn", Pos: r.pos})
}

// Tracing reports whether the engine has a trace sink installed. Algorithm
// code may use it to skip work whose only observable effect is trace events.
func (e *Engine) Tracing() bool { return e.trace != nil }

func (e *Engine) push(p *Proc, t float64) {
	delete(e.parked, p)
	e.seq++
	e.pq.push(schedItem{t: t, seq: e.seq, p: p})
}

func (e *Engine) emit(ev Event) {
	if e.trace != nil {
		e.trace(ev)
	}
}

// Result summarizes a completed run.
type Result struct {
	// Makespan is the time the last robot was awakened. If some robots were
	// never awakened it is the time of the last event and AllAwake is false.
	Makespan float64
	// Duration is the virtual time at which all processes terminated
	// (includes post-wake-up movement and synchronization).
	Duration float64
	AllAwake bool
	Awakened int
	// MaxEnergy is the largest per-robot energy spent; EnergyByRobot lists
	// all of them indexed by robot id.
	MaxEnergy     float64
	TotalEnergy   float64
	EnergyByRobot []float64
	// Violations lists budget violations (robot halted mid-algorithm).
	Violations []string
	// Steps, Looks, and Moves are the engine's event-loop probe counters:
	// event dispatches, Look snapshots, and completed robot moves. They are
	// deterministic (the event loop is single-threaded and schedule-
	// independent) and exist for observability — the serving tier feeds
	// them into its metrics registry. They MUST NOT be serialized into
	// cacheable response bodies: the wire format is byte-locked by golden
	// fixtures that predate them.
	Steps int64
	Looks int64
	Moves int64
	// Faults counts the run's injected faults and repair actions; all zero
	// on a fault-free run. Like the probe counters it is deterministic and
	// must never be serialized into the byte-locked fault-free wire format.
	Faults FaultStats
}

// ErrDeadlock is returned by Run when processes remain parked on a barrier
// that can never be released.
var ErrDeadlock = errors.New("sim: deadlock — processes parked on unreleased barriers")

// ErrCancelled is returned (wrapping the context's error) by RunCtx when the
// context is cancelled before the simulation completes. The partial Result is
// still returned, describing the state at the instant the run was abandoned.
var ErrCancelled = errors.New("sim: run cancelled")

// Run executes the simulation to completion and returns the summary. It is
// an error to call Run twice or before any process was spawned.
func (e *Engine) Run() (Result, error) { return e.RunCtx(context.Background()) }

// RunCtx is Run with cooperative cancellation: the context is polled between
// event dispatches (no robot process is ever interrupted mid-step), and on
// cancellation every live process is unwound before RunCtx returns, so no
// goroutine outlives the call. Cancellation is the mechanism the portfolio
// racing engine uses to stop losing racers early.
func (e *Engine) RunCtx(ctx context.Context) (Result, error) {
	if e.running {
		return Result{}, errors.New("sim: Run called twice")
	}
	e.running = true
	var done <-chan struct{}
	if ctx != nil {
		done = ctx.Done()
	}
	var cancelErr error
	for len(e.pq) > 0 {
		if done != nil {
			select {
			case <-done:
				cancelErr = fmt.Errorf("%w: %w", ErrCancelled, ctx.Err())
			default:
			}
			if cancelErr != nil {
				break
			}
		}
		it := e.pq.pop()
		e.steps++
		if it.t < e.now-geom.Eps {
			return Result{}, fmt.Errorf("sim: time went backwards: %v -> %v", e.now, it.t)
		}
		if it.t > e.now {
			e.now = it.t
		}
		it.p.resume <- struct{}{}
		msg := <-e.park
		switch msg.kind {
		case parkYield:
			e.push(msg.p, msg.at)
		case parkWait:
			// Parked indefinitely; the releasing process re-enqueues it.
			e.parked[msg.p] = struct{}{}
		case parkDone:
			msg.p.r.procs--
			e.emit(Event{T: e.now, Robot: msg.p.r.id, Kind: "done", Pos: msg.p.r.pos})
			if e.pooled {
				// The goroutine is looping back to wait for its next body;
				// the record rejoins the free list for the next SpawnH.
				e.procFree = append(e.procFree, msg.p)
			}
		}
	}
	err := cancelErr
	if err != nil {
		// Unwind every scheduled process. Each killed process panics with a
		// sentinel right after resuming, touching no engine state.
		for len(e.pq) > 0 {
			e.kill(e.pq.pop().p)
		}
	}
	if len(e.parked) > 0 {
		if err == nil {
			err = ErrDeadlock
		}
		// Unwind parked goroutines so no process leaks past Run.
		for p := range e.parked {
			e.kill(p)
		}
		clear(e.parked)
		clear(e.barriers)
	}
	return e.result(), err
}

// kill unwinds one live process goroutine: the next (forced) resume makes it
// panic with the errKilled sentinel, recovered by its Spawn wrapper.
func (e *Engine) kill(p *Proc) {
	p.killed = true
	p.resume <- struct{}{}
}

func (e *Engine) result() Result {
	if cap(e.energyBuf) < len(e.robots) {
		e.energyBuf = make([]float64, len(e.robots))
	}
	res := Result{
		Makespan:      e.lastWake,
		Duration:      e.now,
		AllAwake:      e.asleepCount == 0,
		Awakened:      len(e.robots) - 1 - e.asleepCount,
		EnergyByRobot: e.energyBuf[:len(e.robots)],
		Violations:    append([]string(nil), e.violations...),
		Steps:         e.steps,
		Looks:         e.looks,
		Moves:         e.moves,
		Faults:        e.fstats,
	}
	res.Faults.FirstRepair, res.Faults.LastRepair = e.firstRepair, e.lastRepair
	if !res.AllAwake {
		res.Makespan = e.now
	}
	for i, r := range e.robots {
		res.EnergyByRobot[i] = r.energy
		res.TotalEnergy += r.energy
		if r.energy > res.MaxEnergy {
			res.MaxEnergy = r.energy
		}
	}
	return res
}

// SleepingWithin returns the ids of sleeping robots within distance d of p,
// sorted ascending. This is the engine-level query behind Look; algorithm
// code must use Proc.Look, which fixes d = 1. The returned slice aliases
// the engine's query buffer: it is valid only until the next engine-level
// query, and callers that keep ids copy them (Look does).
func (e *Engine) sleepingWithin(p geom.Point, d float64) []int {
	e.queryBuf = e.sleeping.Within(e.queryBuf[:0], p, d)
	sort.Ints(e.queryBuf)
	return e.queryBuf
}

func (e *Engine) awakeWithin(p geom.Point, d float64) []int {
	e.queryBuf = e.awake.Within(e.queryBuf[:0], p, d)
	sort.Ints(e.queryBuf)
	return e.queryBuf
}

// wake flips robot id to Awake at the current time. Caller guarantees
// co-location (checked by Proc.Wake).
func (e *Engine) wake(id int) {
	r := e.Robot(id)
	if r.state != Asleep {
		panic(fmt.Sprintf("sim: waking non-asleep robot %d", id))
	}
	r.state = Awake
	r.wakeAt = e.now
	e.sleeping.Remove(id)
	e.awake.Insert(id, r.pos)
	e.asleepCount--
	if e.now > e.lastWake {
		e.lastWake = e.now
	}
	e.emit(Event{T: e.now, Robot: id, Kind: "wake", Pos: r.pos})
}

// moveRobot finalizes a completed move: position, energy, index.
func (e *Engine) moveRobot(r *Robot, dst geom.Point, dist float64) {
	e.moves++
	r.pos = dst
	r.energy += dist
	e.awake.Insert(r.id, dst)
	e.emit(Event{T: e.now, Robot: r.id, Kind: "move", Pos: dst})
}

// AllRobots returns the engine's robots; callers must not mutate them. Used
// by harnesses for reporting.
func (e *Engine) AllRobots() []*Robot { return e.robots }
