package sim

import (
	"math"
	"math/rand"
	"testing"

	"freezetag/internal/geom"
)

// Property: total energy equals the sum of all move distances, and per-robot
// energy equals each robot's own path length, under random interleaved
// programs.
func TestEnergyConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(5)
		sleepers := make([]geom.Point, n)
		for i := range sleepers {
			sleepers[i] = geom.Origin // co-located for instant wake
		}
		e := NewEngine(Config{Source: geom.Origin, Sleepers: sleepers})
		expect := make([]float64, n+1)
		// Pre-generate random walks per robot so expectations are exact.
		walks := make([][]geom.Point, n+1)
		for r := 0; r <= n; r++ {
			cur := geom.Origin
			steps := 1 + rng.Intn(6)
			for s := 0; s < steps; s++ {
				next := geom.Pt(rng.Float64()*10-5, rng.Float64()*10-5)
				expect[r] += cur.Dist(next)
				cur = next
				walks[r] = append(walks[r], next)
			}
		}
		e.Spawn(SourceID, func(p *Proc) {
			for i := 1; i <= n; i++ {
				i := i
				p.Wake(i, func(q *Proc) {
					if err := q.MovePath(walks[q.ID()]); err != nil {
						t.Errorf("walk: %v", err)
					}
				})
			}
			if err := p.MovePath(walks[0]); err != nil {
				t.Errorf("walk: %v", err)
			}
		})
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		var want float64
		for r := 0; r <= n; r++ {
			want += expect[r]
			if math.Abs(res.EnergyByRobot[r]-expect[r]) > 1e-9 {
				t.Fatalf("trial %d robot %d: energy %v, want %v",
					trial, r, res.EnergyByRobot[r], expect[r])
			}
		}
		if math.Abs(res.TotalEnergy-want) > 1e-6 {
			t.Fatalf("trial %d: total %v, want %v", trial, res.TotalEnergy, want)
		}
	}
}

// Property: makespan never exceeds duration, and wake times are
// non-decreasing in the order robots were woken.
func TestMakespanWithinDuration(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	for trial := 0; trial < 15; trial++ {
		n := 2 + rng.Intn(8)
		sleepers := make([]geom.Point, n)
		for i := range sleepers {
			sleepers[i] = geom.Pt(rng.Float64()*6-3, rng.Float64()*6-3)
		}
		e := NewEngine(Config{Source: geom.Origin, Sleepers: sleepers})
		e.Spawn(SourceID, func(p *Proc) {
			// Chain wake-up in id order, then wander a bit afterwards.
			for i := 1; i <= n; i++ {
				if err := p.MoveTo(sleepers[i-1]); err != nil {
					t.Errorf("move: %v", err)
					return
				}
				p.Wake(i, nil)
			}
			if err := p.MoveTo(geom.Origin); err != nil {
				t.Errorf("move: %v", err)
			}
		})
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		if !res.AllAwake {
			t.Fatal("chain wake incomplete")
		}
		if res.Makespan > res.Duration+1e-12 {
			t.Fatalf("makespan %v > duration %v", res.Makespan, res.Duration)
		}
		prev := 0.0
		for i := 1; i <= n; i++ {
			w := e.Robot(i).WakeTime()
			if w < prev-1e-12 {
				t.Fatalf("wake times not monotone: %v after %v", w, prev)
			}
			prev = w
		}
	}
}

// Property: a robot's wake time is at least its distance from the source
// (information cannot travel faster than the robots).
func TestWakeTimeDistanceFloor(t *testing.T) {
	rng := rand.New(rand.NewSource(57))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(6)
		sleepers := make([]geom.Point, n)
		for i := range sleepers {
			sleepers[i] = geom.Pt(rng.Float64()*8-4, rng.Float64()*8-4)
		}
		e := NewEngine(Config{Source: geom.Origin, Sleepers: sleepers})
		e.Spawn(SourceID, func(p *Proc) {
			for i := 1; i <= n; i++ {
				if err := p.MoveTo(sleepers[i-1]); err != nil {
					t.Errorf("move: %v", err)
					return
				}
				p.Wake(i, nil)
			}
		})
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= n; i++ {
			r := e.Robot(i)
			if r.WakeTime() < r.InitPos().Norm()-1e-9 {
				t.Fatalf("robot %d woke at %v, below distance floor %v",
					i, r.WakeTime(), r.InitPos().Norm())
			}
		}
	}
}

// Property: Look results are exactly the ball-membership predicate.
func TestLookMatchesPredicate(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 20; trial++ {
		n := 1 + rng.Intn(30)
		sleepers := make([]geom.Point, n)
		for i := range sleepers {
			sleepers[i] = geom.Pt(rng.Float64()*4-2, rng.Float64()*4-2)
		}
		at := geom.Pt(rng.Float64()*4-2, rng.Float64()*4-2)
		e := NewEngine(Config{Source: at, Sleepers: sleepers})
		e.Spawn(SourceID, func(p *Proc) {
			snap := p.Look()
			seen := map[int]bool{}
			for _, s := range snap.Asleep {
				seen[s.ID] = true
			}
			for i := 1; i <= n; i++ {
				want := sleepers[i-1].Within(at, 1)
				if seen[i] != want {
					t.Errorf("trial %d: robot %d visibility %v, want %v",
						trial, i, seen[i], want)
				}
			}
		})
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
	}
}

func TestEscortChainPreservesColocation(t *testing.T) {
	sleepers := []geom.Point{geom.Origin, geom.Origin, geom.Origin}
	e := NewEngine(Config{Source: geom.Origin, Sleepers: sleepers})
	e.Spawn(SourceID, func(p *Proc) {
		for i := 1; i <= 3; i++ {
			p.Wake(i, nil)
		}
		members := []int{1, 2, 3}
		waypoints := []geom.Point{geom.Pt(3, 0), geom.Pt(3, 4), geom.Pt(-1, 2)}
		for _, wp := range waypoints {
			var err error
			members, err = p.Escort(members, wp)
			if err != nil {
				t.Fatalf("escort: %v", err)
			}
			for _, id := range members {
				if !p.Engine().Robot(id).Pos().Eq(wp) {
					t.Fatalf("member %d at %v, want %v", id, p.Engine().Robot(id).Pos(), wp)
				}
			}
		}
		if len(members) != 3 {
			t.Fatalf("lost members: %v", members)
		}
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestBarrierManyParticipants(t *testing.T) {
	n := 12
	sleepers := make([]geom.Point, n)
	for i := range sleepers {
		sleepers[i] = geom.Origin
	}
	e := NewEngine(Config{Source: geom.Origin, Sleepers: sleepers})
	var releases []float64
	e.Spawn(SourceID, func(p *Proc) {
		for i := 1; i <= n; i++ {
			i := i
			p.Wake(i, func(q *Proc) {
				q.Wait(float64(i)) // staggered arrivals 1..n
				q.Barrier("big", n+1)
				releases = append(releases, q.Now())
			})
		}
		p.Barrier("big", n+1)
		releases = append(releases, p.Now())
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(releases) != n+1 {
		t.Fatalf("%d releases, want %d", len(releases), n+1)
	}
	for _, r := range releases {
		if math.Abs(r-float64(n)) > 1e-9 {
			t.Fatalf("release at %v, want %d (last arrival)", r, n)
		}
	}
}
