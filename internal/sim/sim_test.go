package sim

import (
	"errors"
	"math"
	"testing"

	"freezetag/internal/geom"
)

func TestMoveTiming(t *testing.T) {
	e := NewEngine(Config{Source: geom.Origin})
	var arrive float64
	e.Spawn(SourceID, func(p *Proc) {
		if err := p.MoveTo(geom.Pt(3, 4)); err != nil {
			t.Errorf("MoveTo: %v", err)
		}
		arrive = p.Now()
	})
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(arrive-5) > 1e-9 {
		t.Errorf("arrival time = %v, want 5 (unit speed)", arrive)
	}
	if math.Abs(res.EnergyByRobot[0]-5) > 1e-9 {
		t.Errorf("energy = %v, want 5", res.EnergyByRobot[0])
	}
	if math.Abs(res.Duration-5) > 1e-9 {
		t.Errorf("duration = %v, want 5", res.Duration)
	}
}

func TestLookRadiusOne(t *testing.T) {
	sleepers := []geom.Point{geom.Pt(0.5, 0), geom.Pt(1, 0), geom.Pt(1.5, 0)}
	e := NewEngine(Config{Source: geom.Origin, Sleepers: sleepers})
	var snap Snapshot
	e.Spawn(SourceID, func(p *Proc) { snap = p.Look() })
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(snap.Asleep) != 2 {
		t.Fatalf("saw %d sleeping robots, want 2 (radius-1 visibility)", len(snap.Asleep))
	}
	if snap.Asleep[0].ID != 1 || snap.Asleep[1].ID != 2 {
		t.Errorf("sightings = %+v", snap.Asleep)
	}
	if len(snap.Awake) != 0 {
		t.Errorf("awake sightings = %+v", snap.Awake)
	}
}

func TestLookSeesAwake(t *testing.T) {
	e := NewEngine(Config{Source: geom.Origin, Sleepers: []geom.Point{geom.Pt(0.5, 0)}})
	var sawAwake int
	e.Spawn(SourceID, func(p *Proc) {
		if err := p.MoveTo(geom.Pt(0.5, 0)); err != nil {
			t.Errorf("move: %v", err)
		}
		p.Wake(1, nil)
		snap := p.Look()
		sawAwake = len(snap.Awake)
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sawAwake != 1 {
		t.Errorf("awake sightings = %d, want 1", sawAwake)
	}
}

func TestWakeRequiresColocation(t *testing.T) {
	e := NewEngine(Config{Source: geom.Origin, Sleepers: []geom.Point{geom.Pt(2, 0)}})
	e.Spawn(SourceID, func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("Wake at distance should panic")
			}
		}()
		p.Wake(1, nil)
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWakeSpawnsHandler(t *testing.T) {
	e := NewEngine(Config{Source: geom.Origin, Sleepers: []geom.Point{geom.Pt(1, 0), geom.Pt(2, 0)}})
	e.Spawn(SourceID, func(p *Proc) {
		if err := p.MoveTo(geom.Pt(1, 0)); err != nil {
			t.Errorf("move: %v", err)
		}
		p.Wake(1, func(q *Proc) {
			if err := q.MoveTo(geom.Pt(2, 0)); err != nil {
				t.Errorf("handler move: %v", err)
			}
			q.Wake(2, nil)
		})
	})
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllAwake {
		t.Fatal("all robots should be awake")
	}
	if math.Abs(res.Makespan-2) > 1e-9 {
		t.Errorf("makespan = %v, want 2 (chain 0→1→2)", res.Makespan)
	}
	if w := e.Robot(2).WakeTime(); math.Abs(w-2) > 1e-9 {
		t.Errorf("robot 2 wake time = %v", w)
	}
}

func TestBudgetHaltsRobot(t *testing.T) {
	e := NewEngine(Config{Source: geom.Origin, Budget: 3})
	var gotErr error
	e.Spawn(SourceID, func(p *Proc) {
		gotErr = p.MoveTo(geom.Pt(10, 0))
	})
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	var be *ErrBudget
	if !errors.As(gotErr, &be) {
		t.Fatalf("want *ErrBudget, got %v", gotErr)
	}
	if !e.Robot(0).Pos().Eq(geom.Pt(3, 0)) {
		t.Errorf("halted position = %v, want (3,0)", e.Robot(0).Pos())
	}
	if len(res.Violations) != 1 {
		t.Errorf("violations = %v", res.Violations)
	}
	if math.Abs(res.MaxEnergy-3) > 1e-9 {
		t.Errorf("MaxEnergy = %v", res.MaxEnergy)
	}
}

func TestWaitUntil(t *testing.T) {
	e := NewEngine(Config{Source: geom.Origin})
	var t1, t2 float64
	e.Spawn(SourceID, func(p *Proc) {
		p.WaitUntil(7)
		t1 = p.Now()
		p.WaitUntil(3) // in the past: no-op
		t2 = p.Now()
		p.Wait(1.5)
		if math.Abs(p.Now()-8.5) > 1e-9 {
			t.Errorf("after Wait, now = %v", p.Now())
		}
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if t1 != 7 || t2 != 7 {
		t.Errorf("t1=%v t2=%v", t1, t2)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	e := NewEngine(Config{Source: geom.Origin, Sleepers: []geom.Point{geom.Pt(1, 0)}})
	var releaseA, releaseB float64
	e.Spawn(SourceID, func(p *Proc) {
		if err := p.MoveTo(geom.Pt(1, 0)); err != nil {
			t.Errorf("move: %v", err)
		}
		p.Wake(1, func(q *Proc) {
			q.Wait(5) // arrives at barrier at t=6
			q.Barrier("meet", 2)
			releaseB = q.Now()
		})
		p.Barrier("meet", 2) // arrives at t=1
		releaseA = p.Now()
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(releaseA-6) > 1e-9 || math.Abs(releaseB-6) > 1e-9 {
		t.Errorf("barrier releases at %v / %v, want 6 / 6", releaseA, releaseB)
	}
}

func TestDeadlockDetected(t *testing.T) {
	e := NewEngine(Config{Source: geom.Origin})
	e.Spawn(SourceID, func(p *Proc) {
		p.Barrier("never", 2)
	})
	_, err := e.Run()
	if !errors.Is(err, ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

func TestEscort(t *testing.T) {
	sleepers := []geom.Point{geom.Pt(1, 0), geom.Pt(1, 0.5)}
	e := NewEngine(Config{Source: geom.Origin, Sleepers: sleepers})
	e.Spawn(SourceID, func(p *Proc) {
		if err := p.MoveTo(geom.Pt(1, 0)); err != nil {
			t.Errorf("move: %v", err)
		}
		p.Wake(1, nil)
		// Member 1 must be co-located before escorting: it already is (woken
		// at its own position where the leader stands).
		arrived, err := p.Escort([]int{1}, geom.Pt(4, 4))
		if err != nil {
			t.Errorf("escort: %v", err)
		}
		if len(arrived) != 1 || arrived[0] != 1 {
			t.Errorf("arrived = %v", arrived)
		}
	})
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !e.Robot(1).Pos().Eq(geom.Pt(4, 4)) {
		t.Errorf("member position = %v", e.Robot(1).Pos())
	}
	wantE := geom.Pt(1, 0).Dist(geom.Pt(4, 4))
	if math.Abs(e.Robot(1).Energy()-wantE) > 1e-9 {
		t.Errorf("member energy = %v, want %v", e.Robot(1).Energy(), wantE)
	}
	if res.AllAwake {
		t.Error("robot 2 should still be asleep")
	}
}

func TestEscortMemberBudget(t *testing.T) {
	e := NewEngine(Config{Source: geom.Origin, Sleepers: []geom.Point{geom.Pt(0, 0)}, Budget: 5})
	e.Spawn(SourceID, func(p *Proc) {
		p.Wake(1, nil)
		// Drain member 1's budget by escorting back and forth.
		if _, err := p.Escort([]int{1}, geom.Pt(2, 0)); err != nil {
			t.Errorf("escort 1: %v", err)
		}
		if _, err := p.Escort([]int{1}, geom.Pt(0, 0)); err != nil {
			t.Errorf("escort 2: %v", err)
		}
		// Both have spent 4 of 5; a 2-unit move exhausts them. The leader
		// errors, the member halts.
		_, err := p.Escort([]int{1}, geom.Pt(2, 0))
		var be *ErrBudget
		if !errors.As(err, &be) {
			t.Errorf("want budget error, got %v", err)
		}
	})
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxEnergy > 5+1e-9 {
		t.Errorf("MaxEnergy = %v exceeds budget", res.MaxEnergy)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		sleepers := []geom.Point{geom.Pt(1, 0), geom.Pt(0, 1), geom.Pt(-1, 0), geom.Pt(0, -1)}
		e := NewEngine(Config{Source: geom.Origin, Sleepers: sleepers})
		e.Spawn(SourceID, func(p *Proc) {
			snap := p.Look()
			for _, s := range snap.Asleep {
				if err := p.MoveTo(s.Pos); err != nil {
					t.Errorf("move: %v", err)
				}
				p.Wake(s.ID, func(q *Proc) {
					if err := q.MoveTo(geom.Origin); err != nil {
						t.Errorf("handler move: %v", err)
					}
				})
			}
		})
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		times := make([]float64, 0, 4)
		for i := 1; i <= 4; i++ {
			times = append(times, e.Robot(i).WakeTime())
		}
		times = append(times, res.Duration, res.TotalEnergy)
		return times
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic run: %v vs %v", a, b)
		}
	}
}

func TestMakespanUnawakened(t *testing.T) {
	e := NewEngine(Config{Source: geom.Origin, Sleepers: []geom.Point{geom.Pt(100, 0)}})
	e.Spawn(SourceID, func(p *Proc) { p.Wait(1) })
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.AllAwake || res.Awakened != 0 {
		t.Errorf("AllAwake=%v Awakened=%d", res.AllAwake, res.Awakened)
	}
}

func TestTraceEvents(t *testing.T) {
	var kinds []string
	e := NewEngine(Config{
		Source:   geom.Origin,
		Sleepers: []geom.Point{geom.Pt(1, 0)},
		Trace:    func(ev Event) { kinds = append(kinds, ev.Kind) },
	})
	e.Spawn(SourceID, func(p *Proc) {
		p.Look()
		if err := p.MoveTo(geom.Pt(1, 0)); err != nil {
			t.Errorf("move: %v", err)
		}
		p.Wake(1, nil)
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	want := []string{"spawn", "look", "move", "wake", "done"}
	if len(kinds) != len(want) {
		t.Fatalf("events = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("events = %v, want %v", kinds, want)
		}
	}
}

func TestRunTwiceErrors(t *testing.T) {
	e := NewEngine(Config{Source: geom.Origin})
	e.Spawn(SourceID, func(p *Proc) {})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Run(); err == nil {
		t.Fatal("second Run should error")
	}
}

func TestZeroDistanceMoveFree(t *testing.T) {
	e := NewEngine(Config{Source: geom.Pt(2, 2), Budget: 0.5})
	e.Spawn(SourceID, func(p *Proc) {
		if err := p.MoveTo(geom.Pt(2, 2)); err != nil {
			t.Errorf("zero move: %v", err)
		}
		if p.Now() != 0 {
			t.Errorf("zero move advanced time to %v", p.Now())
		}
	})
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalEnergy != 0 {
		t.Errorf("TotalEnergy = %v", res.TotalEnergy)
	}
}

func TestMovePath(t *testing.T) {
	e := NewEngine(Config{Source: geom.Origin})
	e.Spawn(SourceID, func(p *Proc) {
		err := p.MovePath([]geom.Point{geom.Pt(1, 0), geom.Pt(1, 1), geom.Pt(0, 1)})
		if err != nil {
			t.Errorf("MovePath: %v", err)
		}
	})
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.TotalEnergy-3) > 1e-9 {
		t.Errorf("path energy = %v, want 3", res.TotalEnergy)
	}
}
