package sim

import (
	"fmt"

	"freezetag/internal/geom"
)

// Proc is the blocking API one robot process programs against. All methods
// must be called from the process's own goroutine (the function passed to
// Spawn or Wake); the engine guarantees only one process runs at a time, so
// Proc methods may freely read and mutate engine state.
type Proc struct {
	eng    *Engine
	r      *Robot
	resume chan struct{}
	killed bool    // set by the engine to unwind a deadlocked process
	fn     Handler // body to run on next resume; cleared once started
	pid    int64   // spawn sequence number; orders stalled-process releases
}

// errKilled unwinds a process goroutine that the engine terminated while it
// was parked: either on a barrier that can never release (deadlock shutdown
// path) or anywhere at all after the run's context was cancelled (RunCtx).
var errKilled = &struct{ s string }{"sim: process killed"}

// loop is the process goroutine. On a pooled engine it survives the body:
// after reporting parkDone it waits for the engine to hand it a new body via
// SpawnH (the engine recycles the record through procFree). On a one-shot
// engine it exits after a single body, preserving the original lifecycle. A
// kill — before the body ever ran or anywhere inside it — always exits the
// goroutine: a killed process's state is unknown, so it never rejoins the
// pool.
func (p *Proc) loop() {
	for {
		<-p.resume
		if p.killed {
			return
		}
		p.runOne()
		if p.killed {
			return
		}
		p.eng.park <- parkMsg{p: p, kind: parkDone}
		if !p.eng.pooled {
			return
		}
	}
}

// runOne executes the pending body, converting the errKilled unwind panic
// back into a normal return (the caller checks p.killed); any other panic is
// a genuine algorithm bug and propagates.
func (p *Proc) runOne() {
	defer func() {
		if rec := recover(); rec != nil && rec != errKilled {
			panic(rec)
		}
	}()
	fn := p.fn
	p.fn = nil
	fn.RunProc(p)
}

// ID returns the robot id this process runs on.
func (p *Proc) ID() int { return p.r.id }

// Self returns the robot record.
func (p *Proc) Self() *Robot { return p.r }

// Now returns the current virtual time.
func (p *Proc) Now() float64 { return p.eng.now }

// Engine returns the owning engine, for read-only queries by harness code.
func (p *Proc) Engine() *Engine { return p.eng }

// yieldAt parks the process until virtual time t. A process the engine has
// killed (cancelled run) unwinds here instead of parking: the engine's event
// loop is gone, so parking again would block forever.
func (p *Proc) yieldAt(t float64) {
	if p.killed {
		panic(errKilled)
	}
	p.eng.park <- parkMsg{p: p, kind: parkYield, at: t}
	<-p.resume
	if p.killed {
		panic(errKilled)
	}
}

// parkWait parks the process indefinitely; some other process re-enqueues it.
func (p *Proc) parkWait() {
	if p.killed {
		panic(errKilled)
	}
	p.eng.park <- parkMsg{p: p, kind: parkWait}
	<-p.resume
	if p.killed {
		panic(errKilled)
	}
}

// ErrBudget is the error type reported when a move would exceed the robot's
// energy budget. The robot is halted in place with its budget exhausted up to
// the reachable prefix of the move, matching the model where a robot simply
// cannot move further.
type ErrBudget struct {
	Robot  int
	Needed float64
	Left   float64
}

// Error implements error.
func (e *ErrBudget) Error() string {
	return fmt.Sprintf("sim: robot %d out of energy (needs %.4g, has %.4g)", e.Robot, e.Needed, e.Left)
}

// MoveTo moves the robot in a straight line to dst at its own speed,
// blocking for virtual time equal to the metric distance divided by the
// robot's speed (straight segments are geodesics of every supported
// metric; homogeneous robots have speed exactly 1, so the division is the
// identity). If the move would exceed the energy budget the robot advances
// as far as its budget allows, is halted, and an *ErrBudget is returned —
// budgets bound distance, not time, so a fast robot drains its budget no
// slower per meter than a slow one.
func (p *Proc) MoveTo(dst geom.Point) error {
	return p.moveToAt(dst, p.r.speed)
}

// moveToAt is MoveTo at an explicit speed: Escort uses it to slow a team
// leader down to the pace of its slowest member.
func (p *Proc) moveToAt(dst geom.Point, speed float64) error {
	if p.r.faulty {
		return p.moveFaulty(dst, speed)
	}
	d := p.eng.dist(p.r.pos, dst)
	if d <= geom.Eps {
		return nil
	}
	return p.moveLeg(dst, d, speed)
}

// moveLeg finishes a move of metric length d > Eps to dst under the energy
// budget. It is the shared tail of the fault-free and crash-injected move
// paths; the fault-free behavior is exactly the pre-fault moveToAt.
func (p *Proc) moveLeg(dst geom.Point, d, speed float64) error {
	if left := p.r.remaining(); d > left+geom.Eps {
		// Partial move to budget exhaustion, then halt.
		stop := geom.MoveToward(p.eng.metric, p.r.pos, dst, left)
		if left > 0 {
			p.yieldAt(p.eng.now + left/speed)
			p.eng.moveRobot(p.r, stop, left)
		}
		p.r.stopped = true
		err := &ErrBudget{Robot: p.r.id, Needed: d, Left: left}
		p.eng.violations = append(p.eng.violations, err.Error())
		p.eng.emit(Event{T: p.eng.now, Robot: p.r.id, Kind: "halt", Pos: p.r.pos})
		return err
	}
	p.yieldAt(p.eng.now + d/speed)
	p.eng.moveRobot(p.r, dst, d)
	return nil
}

// MovePath moves the robot along the polyline, stopping early on budget
// exhaustion.
func (p *Proc) MovePath(path []geom.Point) error {
	for _, q := range path {
		if err := p.MoveTo(q); err != nil {
			return err
		}
	}
	return nil
}

// WaitUntil blocks until virtual time t. Times in the past return
// immediately; waiting consumes no energy.
func (p *Proc) WaitUntil(t float64) {
	if t <= p.eng.now {
		return
	}
	p.yieldAt(t)
}

// Wait blocks for duration d ≥ 0.
func (p *Proc) Wait(d float64) {
	if d > 0 {
		p.yieldAt(p.eng.now + d)
	}
}

// Snapshot is the result of a Look: the robots visible within distance 1,
// separated by status, with their *current* positions. For sleeping robots
// the current position is the initial position p_i.
type Snapshot struct {
	Asleep []Sighting
	Awake  []Sighting
}

// Sighting is one visible robot.
type Sighting struct {
	ID  int
	Pos geom.Point
}

// Look performs a discrete snapshot: all robots within metric distance 1 of
// the caller, in ascending id order. The caller itself is excluded. The
// engine-level queries below share one scratch buffer (each result is
// consumed before the next query runs); the returned Snapshot's slices are
// carved from the engine's run-lifetime sighting slab, so callers may retain
// them for the rest of the run — they are invalidated only when a pooled
// engine is Reset for its next job.
func (p *Proc) Look() Snapshot {
	p.eng.looks++
	var snap Snapshot
	if ids := p.eng.sleepingWithin(p.r.pos, 1); len(ids) > 0 {
		snap.Asleep = p.eng.sight.Take(len(ids))
		for _, id := range ids {
			snap.Asleep = append(snap.Asleep, Sighting{ID: id, Pos: p.eng.Robot(id).pos})
		}
	}
	if ids := p.eng.awakeWithin(p.r.pos, 1); len(ids) > 0 {
		snap.Awake = p.eng.sight.Take(len(ids) - 1)
		for _, id := range ids {
			if id == p.r.id {
				continue
			}
			snap.Awake = append(snap.Awake, Sighting{ID: id, Pos: p.eng.Robot(id).pos})
		}
	}
	p.eng.emit(Event{T: p.eng.now, Robot: p.r.id, Kind: "look", Pos: p.r.pos})
	return snap
}

// Wake awakens the co-located sleeping robot id. If handler is non-nil a new
// process is spawned on the awakened robot at the current time; a nil handler
// leaves it awake but passive (a recruited team member escorted by its team
// leader). Wake panics if the robots are not co-located or the target is not
// asleep — both are algorithm bugs, not runtime conditions.
func (p *Proc) Wake(id int, handler func(*Proc)) {
	if handler == nil {
		p.WakeH(id, nil)
		return
	}
	p.WakeH(id, HandlerFunc(handler))
}

// WakeH is Wake taking a Handler; the wake-tree propagation path uses it
// with slab-pooled handlers so that fanning a wave across n robots does not
// allocate n closures.
func (p *Proc) WakeH(id int, handler Handler) {
	if p.eng.faults != nil {
		p.wakeFaulted(id, handler)
		return
	}
	r := p.eng.Robot(id)
	if r.state != Asleep {
		panic(fmt.Sprintf("sim: robot %d is not asleep", id))
	}
	if !p.r.pos.Eq(r.pos) {
		panic(fmt.Sprintf("sim: robot %d at %v cannot wake robot %d at %v: not co-located",
			p.r.id, p.r.pos, id, r.pos))
	}
	p.eng.wake(id)
	if handler != nil {
		p.eng.SpawnH(id, handler)
	}
}

// Escort moves the caller and every robot in ids (all awake, co-located with
// the caller) to dst as one co-located group: everyone pays the distance in
// energy, and the group arrives together after that travel time. The group
// travels at the speed of its slowest member (the caller included) — a team
// stays a team, so its fast robots wait for the slow ones. It implements
// team movement. If any member exhausts its budget, that member halts in
// place and is dropped from the team — as is any member already halted by an
// earlier exhaustion, so a stale roster keeps working; the returned slice
// holds the ids that completed the move (the caller is not listed). A caller
// budget exhaustion returns the error and moves nobody further.
func (p *Proc) Escort(ids []int, dst geom.Point) ([]int, error) {
	start := p.r.pos
	d := p.eng.dist(start, dst)
	speed := p.r.speed
	faulted := p.eng.faults != nil
	for _, id := range ids {
		r := p.eng.Robot(id)
		if r.stopped {
			// Halted by an earlier budget exhaustion (already recorded as a
			// violation): the team leaves it where it died rather than
			// treating the stale roster entry as an algorithm bug.
			continue
		}
		if faulted && (r.state != Awake || !r.pos.Eq(start)) {
			// Under fault injection a stale roster entry is a runtime
			// condition (a crash or repair raced this team's bookkeeping):
			// the member is left behind and counted, not panicked over.
			p.eng.fstats.RosterSkips++
			p.eng.emit(Event{T: p.eng.now, Robot: p.r.id, Kind: "fault-roster", Pos: p.r.pos,
				Extra: fmt.Sprintf("escort %d", id)})
			continue
		}
		if r.state != Awake {
			panic(fmt.Sprintf("sim: Escort of non-awake robot %d", id))
		}
		if !r.pos.Eq(p.r.pos) {
			panic(fmt.Sprintf("sim: Escort member %d at %v not co-located with leader at %v",
				id, r.pos, p.r.pos))
		}
		if r.speed < speed {
			speed = r.speed
		}
	}
	if err := p.moveToAt(dst, speed); err != nil {
		return nil, err
	}
	arrived := make([]int, 0, len(ids))
	for _, id := range ids {
		r := p.eng.Robot(id)
		if r.stopped {
			continue
		}
		if faulted && (r.state != Awake || !r.pos.Eq(start)) {
			// Skipped above (members are passive, so the invalid set cannot
			// change while the leader moves); already counted there.
			continue
		}
		if faulted && r.faulty && p.escortCrash(r, dst, d) {
			continue
		}
		if d > r.remaining()+geom.Eps {
			// Member stops where its budget runs out along the segment.
			left := r.remaining()
			stop := geom.MoveToward(p.eng.metric, r.pos, dst, left)
			p.eng.moveRobot(r, stop, left)
			r.stopped = true
			e := &ErrBudget{Robot: id, Needed: d, Left: left}
			p.eng.violations = append(p.eng.violations, e.Error())
			continue
		}
		p.eng.moveRobot(r, dst, d)
		arrived = append(arrived, id)
	}
	return arrived, nil
}

// Barrier parks the process until need processes in total have arrived at the
// same key, then releases them all at the arrival time of the last. Keys are
// single-use: the barrier is deleted on release.
func (p *Proc) Barrier(key string, need int) {
	if need <= 0 {
		panic("sim: Barrier needs a positive count")
	}
	if need == 1 {
		// A one-party barrier releases its sole arriver immediately; the
		// general path below would build and tear down a barrier record for
		// nothing. Only the count-mismatch check and the trace event are
		// observable, so that is all this path does.
		if b := p.eng.barriers[key]; b != nil {
			panic(fmt.Sprintf("sim: Barrier %q count mismatch: %d vs %d", key, b.need, need))
		}
		p.eng.emit(Event{T: p.eng.now, Robot: p.r.id, Kind: "barrier", Pos: p.r.pos, Extra: key})
		return
	}
	b := p.eng.barriers[key]
	if b == nil {
		b = &barrier{need: need}
		p.eng.barriers[key] = b
	}
	if b.need != need {
		panic(fmt.Sprintf("sim: Barrier %q count mismatch: %d vs %d", key, b.need, need))
	}
	p.eng.emit(Event{T: p.eng.now, Robot: p.r.id, Kind: "barrier", Pos: p.r.pos, Extra: key})
	if len(b.waiters)+1 == need {
		// Last arriver releases everyone, sorted for determinism. Waiter
		// lists are team-sized; insertion sort keeps the release path free
		// of sort.Slice's reflection allocations.
		ws := b.waiters
		delete(p.eng.barriers, key)
		for i := 1; i < len(ws); i++ {
			for j := i; j > 0 && ws[j].r.id < ws[j-1].r.id; j-- {
				ws[j], ws[j-1] = ws[j-1], ws[j]
			}
		}
		for _, w := range ws {
			p.eng.push(w, p.eng.now)
		}
		return
	}
	b.waiters = append(b.waiters, p)
	p.parkWait()
}

// Stopped reports whether the robot was halted by budget exhaustion.
func (p *Proc) Stopped() bool { return p.r.stopped }
