package sim

import (
	"context"
	"errors"
	"testing"

	"freezetag/internal/geom"
)

// Cancelling mid-run stops the event loop at the next dispatch, unwinds the
// live process, and returns the partial result with ErrCancelled.
func TestRunCtxCancelMidRun(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	moves := 0
	e := NewEngine(Config{Source: geom.Origin, Trace: func(ev Event) {
		if ev.Kind == "move" {
			moves++
			if moves == 3 {
				cancel()
			}
		}
	}})
	steps := 0
	e.Spawn(SourceID, func(p *Proc) {
		for i := 0; i < 100; i++ {
			if err := p.MoveTo(geom.Pt(float64(i%7), float64(i%5))); err != nil {
				t.Errorf("move: %v", err)
				return
			}
			steps++
		}
	})
	res, err := e.RunCtx(ctx)
	if !errors.Is(err, ErrCancelled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want ErrCancelled wrapping context.Canceled", err)
	}
	if steps >= 100 {
		t.Fatal("cancelled run executed the whole program")
	}
	if res.Duration <= 0 {
		t.Fatalf("partial result has no elapsed time: %+v", res)
	}
}

// A context cancelled before RunCtx starts aborts before any dispatch, even
// with processes both scheduled and parked on barriers.
func TestRunCtxCancelBeforeStart(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := NewEngine(Config{Source: geom.Origin})
	ran := false
	e.Spawn(SourceID, func(p *Proc) { ran = true })
	if _, err := e.RunCtx(ctx); !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
	if ran {
		t.Fatal("process ran under a pre-cancelled context")
	}
}

// Cancellation unwinds processes parked on barriers too (the parked set, not
// just the scheduled queue), so no goroutine outlives RunCtx.
func TestRunCtxCancelUnwindsBarrier(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	e := NewEngine(Config{Source: geom.Origin, Sleepers: []geom.Point{geom.Pt(0.5, 0)}, Trace: func(ev Event) {
		if ev.Kind == "barrier" {
			cancel()
		}
	}})
	e.Spawn(SourceID, func(p *Proc) {
		if err := p.MoveTo(geom.Pt(0.5, 0)); err != nil {
			t.Errorf("move: %v", err)
			return
		}
		p.Wake(1, func(q *Proc) {
			// Parks forever: the source never arrives at this barrier.
			q.Barrier("never", 2)
		})
		// Keep dispatching events so the cancel poll runs after the barrier.
		for i := 0; i < 10; i++ {
			p.Wait(1)
		}
	})
	if _, err := e.RunCtx(ctx); !errors.Is(err, ErrCancelled) {
		t.Fatalf("err = %v, want ErrCancelled", err)
	}
}

// A nil context behaves like Run: no polling, runs to completion.
func TestRunCtxNil(t *testing.T) {
	e := NewEngine(Config{Source: geom.Origin})
	e.Spawn(SourceID, func(p *Proc) { p.Wait(1) })
	if _, err := e.RunCtx(nil); err != nil {
		t.Fatal(err)
	}
}
