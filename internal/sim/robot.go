// Package sim implements the paper's Look-Compute-Move robot model as a
// deterministic discrete-event simulator.
//
// Each active robot is a goroutine ("process") executing straight-line
// algorithm code against a blocking API (MoveTo, Look, Wake, WaitUntil,
// Barrier). A strict-handoff scheduler runs exactly one process at a time and
// orders resumptions by (virtual time, monotone sequence number), so
// identical inputs always produce identical executions — goroutines give the
// programming model of concurrent robots without nondeterminism.
//
// Model facts enforced here, matching §1.2 of the paper:
//   - robots move at unit speed by default (moving distance δ takes time
//     δ), with all distances measured in the engine's Config.Metric (ℓ2 by
//     default; any ℓp norm may be plugged in — see geom.Metric); a
//     heterogeneous engine (Config.Profiles) gives robot i speed sᵢ, so its
//     moves take time δ/sᵢ while energy stays distance-based;
//   - snapshots are discrete: Look returns robots within metric distance 1
//     at the instant of the call, and movement alone discovers nothing;
//   - waking and variable exchange require co-location;
//   - sleeping robots do nothing until awakened;
//   - each robot optionally carries an energy budget B bounding its total
//     movement length.
package sim

import (
	"fmt"
	"math"
	"math/rand"

	"freezetag/internal/geom"
)

// State is the lifecycle state of a robot.
type State int

// Robot lifecycle states. A robot is Asleep until some awake robot wakes it;
// it is then Awake forever (the paper has no re-sleep transition).
const (
	Asleep State = iota + 1
	Awake
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case Asleep:
		return "asleep"
	case Awake:
		return "awake"
	default:
		return fmt.Sprintf("State(%d)", int(s))
	}
}

// SourceID is the robot ID of the source s. Sleeping robots have IDs 1..n
// matching their index in the instance point set.
const SourceID = 0

// Robot is the engine's record of one robot. Fields are read-mostly from
// algorithm code through accessor methods on Proc and Engine.
type Robot struct {
	id      int
	initPos geom.Point
	pos     geom.Point
	state   State
	energy  float64 // total distance moved so far
	budget  float64 // energy budget B; +Inf when unconstrained
	speed   float64 // travel speed (distance δ takes time δ/speed); 1 in the homogeneous model
	wakeAt  float64 // virtual time of awakening; 0 for the source
	stopped bool    // true once the robot's energy budget was exhausted or it crash-stopped

	// Fault-injection state, populated by Engine.installFaults; all zero on
	// fault-free runs (populate overwrites the whole record, so pooled
	// engines cannot leak fault state between jobs).
	faulty    bool       // carries a crash assignment (crash-stop or crash-recovery)
	crashAt   float64    // odometer reading at which the next crash fires
	downUntil float64    // 0 = up; +Inf = crash-stopped; else outage end time
	frnd      *rand.Rand // private fault stream (crash redraws, downtimes)
	byz       bool       // adversary-controlled
	procs     int        // live processes on this robot
}

// ID returns the robot's identifier.
func (r *Robot) ID() int { return r.id }

// InitPos returns the robot's initial position p_i — its globally unique
// identity in the paper's model.
func (r *Robot) InitPos() geom.Point { return r.initPos }

// Pos returns the robot's current position.
func (r *Robot) Pos() geom.Point { return r.pos }

// State returns Asleep or Awake.
func (r *Robot) State() State { return r.state }

// Energy returns the total distance moved so far.
func (r *Robot) Energy() float64 { return r.energy }

// Budget returns the robot's energy budget (+Inf when unconstrained).
func (r *Robot) Budget() float64 { return r.budget }

// Speed returns the robot's travel speed: moving distance δ takes time
// δ/Speed. Exactly 1 for every robot of a homogeneous engine.
func (r *Robot) Speed() float64 { return r.speed }

// WakeTime returns the virtual time at which the robot was awakened. Zero for
// the source and for robots still asleep (check State to distinguish).
func (r *Robot) WakeTime() float64 { return r.wakeAt }

// Halted reports whether the robot is permanently down: its energy budget
// was exhausted or an injected crash-stop fired. Repair code uses it to
// exclude dead robots from rescue duty.
func (r *Robot) Halted() bool { return r.stopped }

// remaining returns the budget left, +Inf when unconstrained.
func (r *Robot) remaining() float64 {
	if math.IsInf(r.budget, 1) {
		return math.Inf(1)
	}
	return r.budget - r.energy
}
