package sim

import (
	"testing"

	"freezetag/internal/geom"
)

// probeRun runs a small fixed scenario — source looks, walks to two
// sleepers, wakes them — and returns the result.
func probeRun(t *testing.T) Result {
	t.Helper()
	e := NewEngine(Config{Source: geom.Origin, Sleepers: []geom.Point{geom.Pt(1, 0), geom.Pt(2, 0)}})
	e.Spawn(SourceID, func(p *Proc) {
		p.Look()
		if err := p.MoveTo(geom.Pt(1, 0)); err != nil {
			t.Errorf("move: %v", err)
		}
		p.Wake(1, nil)
		p.Look()
		if err := p.MoveTo(geom.Pt(2, 0)); err != nil {
			t.Errorf("move: %v", err)
		}
		p.Wake(2, nil)
	})
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestProbeCounters pins the event-loop probe counters on a fixed scenario:
// the exact values are part of the schedule, so they are asserted exactly,
// not just as "nonzero".
func TestProbeCounters(t *testing.T) {
	res := probeRun(t)
	if res.Looks != 2 {
		t.Errorf("Looks = %d, want 2", res.Looks)
	}
	if res.Moves != 2 {
		t.Errorf("Moves = %d, want 2", res.Moves)
	}
	// One spawn dispatch plus one resume per completed move: the exact step
	// count is schedule-determined; assert the invariant floor and that it
	// was recorded at all.
	if res.Steps < res.Moves+1 {
		t.Errorf("Steps = %d, want ≥ %d", res.Steps, res.Moves+1)
	}
}

// TestProbeCountersDeterministic asserts repeated runs report identical
// probe counters — they are part of the deterministic schedule, so any
// drift is a scheduling leak.
func TestProbeCountersDeterministic(t *testing.T) {
	ref := probeRun(t)
	for i := 0; i < 5; i++ {
		got := probeRun(t)
		if got.Steps != ref.Steps || got.Looks != ref.Looks || got.Moves != ref.Moves {
			t.Fatalf("run %d probes = (%d,%d,%d), ref = (%d,%d,%d)",
				i, got.Steps, got.Looks, got.Moves, ref.Steps, ref.Looks, ref.Moves)
		}
	}
}

// TestProbeCountersEscort asserts every escorted team member's arrival
// counts as a move — the serving tier's moves counter prices total
// mechanical work, not just leader segments.
func TestProbeCountersEscort(t *testing.T) {
	e := NewEngine(Config{Source: geom.Origin, Sleepers: []geom.Point{geom.Pt(0, 0)}})
	e.Spawn(SourceID, func(p *Proc) {
		p.Wake(1, nil)
		if _, err := p.Escort([]int{1}, geom.Pt(1, 0)); err != nil {
			t.Errorf("escort: %v", err)
		}
	})
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Moves != 2 { // leader + escorted member
		t.Errorf("Moves = %d, want 2", res.Moves)
	}
}
