package sim

import "fmt"

// WaitGroup tracks outstanding simulation activities (e.g. recursive
// wake-up branches) so one process can park until all of them complete.
// Unlike sync.WaitGroup this is a virtual-time construct: Wait parks the
// process and the final Done re-enqueues it at the completion time.
//
// All methods must be called from process goroutines (or before Run), under
// the engine's strict handoff; no additional locking is needed.
type WaitGroup struct {
	eng     *Engine
	count   int
	waiters []*Proc
}

// NewWaitGroup returns an empty WaitGroup bound to the engine. The group is
// registered with the engine so a fault-repair ReleaseStalled can void it
// (the registry is rewound on Reset).
func (e *Engine) NewWaitGroup() *WaitGroup {
	w := &WaitGroup{eng: e}
	e.wgs = append(e.wgs, w)
	return w
}

// Add increments the outstanding count by n > 0.
func (w *WaitGroup) Add(n int) {
	if n <= 0 {
		panic("sim: WaitGroup.Add requires n > 0")
	}
	w.count += n
}

// Done decrements the outstanding count, releasing any parked waiters when
// it reaches zero.
func (w *WaitGroup) Done() {
	if w.count <= 0 {
		if w.eng.faults != nil {
			// A stalled-process release (fault repair) already zeroed this
			// group; late Done calls from released branches are absorbed.
			return
		}
		panic(fmt.Sprintf("sim: WaitGroup.Done below zero (count=%d)", w.count))
	}
	w.count--
	if w.count == 0 {
		for _, p := range w.waiters {
			w.eng.push(p, w.eng.now)
		}
		w.waiters = nil
	}
}

// Wait parks the calling process until the count is zero. A zero count
// returns immediately.
func (w *WaitGroup) Wait(p *Proc) {
	if w.count == 0 {
		return
	}
	w.waiters = append(w.waiters, p)
	p.parkWait()
}

// Pending returns the current outstanding count.
func (w *WaitGroup) Pending() int { return w.count }
