package sim

import (
	"math"
	"math/rand"
	"testing"

	"freezetag/internal/geom"
)

func builtinMetrics(t *testing.T) map[string]geom.Metric {
	t.Helper()
	ms := map[string]geom.Metric{"l2 (nil)": nil}
	for _, name := range []string{"l1", "l2", "linf", "lp:3"} {
		m, err := geom.ParseMetric(name)
		if err != nil {
			t.Fatal(err)
		}
		ms[name] = m
	}
	return ms
}

// Property: a profiled robot moving a path takes exactly pathLength/speed
// time under every metric, and spends pathLength energy — speed scales time,
// never energy.
func TestHeteroTravelTimeIsDistOverSpeed(t *testing.T) {
	for name, m := range builtinMetrics(t) {
		rng := rand.New(rand.NewSource(91))
		for trial := 0; trial < 10; trial++ {
			n := 1 + rng.Intn(4)
			sleepers := make([]geom.Point, n)
			profiles := make([]Profile, n)
			for i := range sleepers {
				sleepers[i] = geom.Origin // co-located for instant wake
				profiles[i] = Profile{Speed: 0.2 + rng.Float64()*2.8}
			}
			e := NewEngine(Config{
				Source: geom.Origin, Sleepers: sleepers,
				Metric: m, Profiles: profiles,
			})
			walks := make([][]geom.Point, n+1)
			dist := make([]float64, n+1)
			mm := geom.MetricOrL2(m)
			for r := 0; r <= n; r++ {
				cur := geom.Origin
				for s := 0; s < 1+rng.Intn(5); s++ {
					next := geom.Pt(rng.Float64()*10-5, rng.Float64()*10-5)
					dist[r] += mm.Dist(cur, next)
					cur = next
					walks[r] = append(walks[r], next)
				}
			}
			done := make([]float64, n+1)
			e.Spawn(SourceID, func(p *Proc) {
				for i := 1; i <= n; i++ {
					p.Wake(i, func(q *Proc) {
						if err := q.MovePath(walks[q.ID()]); err != nil {
							t.Errorf("walk: %v", err)
						}
						done[q.ID()] = q.Now()
					})
				}
				if err := p.MovePath(walks[0]); err != nil {
					t.Errorf("walk: %v", err)
				}
				done[0] = p.Now()
			})
			res, err := e.Run()
			if err != nil {
				t.Fatal(err)
			}
			for r := 0; r <= n; r++ {
				speed := 1.0 // source
				if r > 0 {
					speed = profiles[r-1].Speed
				}
				if want := dist[r] / speed; math.Abs(done[r]-want) > 1e-9 {
					t.Fatalf("%s trial %d robot %d (speed %g): finished at %v, want dist/speed = %v",
						name, trial, r, speed, done[r], want)
				}
				if math.Abs(res.EnergyByRobot[r]-dist[r]) > 1e-9 {
					t.Fatalf("%s trial %d robot %d: energy %v, want distance %v (speed must not scale energy)",
						name, trial, r, res.EnergyByRobot[r], dist[r])
				}
			}
		}
	}
}

// Property: no wake-up chain beats physics — robot i cannot wake before
// d_m(source, pᵢ)/s_max, the time the fastest robot in the swarm would need
// to fly straight there. Holds under every metric and any courier chain.
func TestHeteroWakeTimeSpeedScaledFloor(t *testing.T) {
	for name, m := range builtinMetrics(t) {
		rng := rand.New(rand.NewSource(73))
		mm := geom.MetricOrL2(m)
		for trial := 0; trial < 8; trial++ {
			n := 3 + rng.Intn(5)
			sleepers := make([]geom.Point, n)
			profiles := make([]Profile, n)
			smax := 1.0 // the unit-speed source
			for i := range sleepers {
				sleepers[i] = geom.Pt(rng.Float64()*8-4, rng.Float64()*8-4)
				profiles[i] = Profile{Speed: 0.25 + rng.Float64()*1.75}
				if profiles[i].Speed > smax {
					smax = profiles[i].Speed
				}
			}
			e := NewEngine(Config{
				Source: geom.Origin, Sleepers: sleepers,
				Metric: m, Profiles: profiles,
			})
			// Greedy relay: every woken robot takes the next still-assigned
			// sleeper, so couriers of all speeds participate.
			next := 0
			var assign func(p *Proc)
			assign = func(p *Proc) {
				for {
					if next >= n {
						return
					}
					i := next + 1
					next++
					if err := p.MoveTo(sleepers[i-1]); err != nil {
						t.Errorf("move: %v", err)
						return
					}
					p.Wake(i, assign)
				}
			}
			e.Spawn(SourceID, assign)
			if _, err := e.Run(); err != nil {
				t.Fatal(err)
			}
			for i := 1; i <= n; i++ {
				r := e.Robot(i)
				floor := mm.Dist(geom.Origin, r.InitPos()) / smax
				if r.WakeTime() < floor-1e-9 {
					t.Fatalf("%s trial %d robot %d woke at %v, below speed-scaled floor %v",
						name, trial, i, r.WakeTime(), floor)
				}
			}
		}
	}
}

// A heterogeneous engine with all-unit profiles times and budgets every move
// exactly like the homogeneous engine: d/1.0 is d bit-for-bit, so attaching
// explicit unit profiles must not perturb a single event.
func TestHeteroUnitProfilesMatchHomogeneous(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	n := 6
	sleepers := make([]geom.Point, n)
	for i := range sleepers {
		sleepers[i] = geom.Pt(rng.Float64()*6-3, rng.Float64()*6-3)
	}
	run := func(profiles []Profile) Result {
		e := NewEngine(Config{Source: geom.Origin, Sleepers: sleepers, Profiles: profiles, Budget: 40})
		e.Spawn(SourceID, func(p *Proc) {
			for i := 1; i <= n; i++ {
				if err := p.MoveTo(sleepers[i-1]); err != nil {
					t.Fatal(err)
				}
				p.Wake(i, nil)
			}
		})
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	unit := make([]Profile, n)
	for i := range unit {
		unit[i] = Profile{Speed: 1}
	}
	a, b := run(nil), run(unit)
	if a.Makespan != b.Makespan || a.Duration != b.Duration || a.TotalEnergy != b.TotalEnergy {
		t.Fatalf("unit profiles perturbed the run: %+v vs %+v", a, b)
	}
	for r := 0; r <= n; r++ {
		if a.EnergyByRobot[r] != b.EnergyByRobot[r] {
			t.Fatalf("robot %d energy differs: %v vs %v", r, a.EnergyByRobot[r], b.EnergyByRobot[r])
		}
	}
}

// Per-robot capacities bind individually: a robot with a small private
// capacity halts even when the uniform budget is generous, and one with a
// large capacity outlives a tight uniform budget.
func TestHeteroCapacityOverridesBudget(t *testing.T) {
	sleepers := []geom.Point{geom.Pt(1, 0), geom.Pt(2, 0)}
	e := NewEngine(Config{
		Source:   geom.Origin,
		Sleepers: sleepers,
		Budget:   100,
		Profiles: []Profile{{Speed: 1, Capacity: 0.5}, {Speed: 1, Capacity: 200}},
	})
	var tightErr, looseErr error
	e.Spawn(SourceID, func(p *Proc) {
		if err := p.MoveTo(sleepers[0]); err != nil {
			t.Fatal(err)
		}
		p.Wake(1, func(q *Proc) {
			tightErr = q.MoveTo(geom.Pt(50, 0)) // needs 49 > capacity 0.5
		})
		if err := p.MoveTo(sleepers[1]); err != nil {
			t.Fatal(err)
		}
		p.Wake(2, func(q *Proc) {
			looseErr = q.MoveTo(geom.Pt(150, 0)) // needs 148 ≤ capacity 200
		})
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if tightErr == nil {
		t.Error("robot 1 exceeded its 0.5 capacity without error")
	}
	if looseErr != nil {
		t.Errorf("robot 2 halted despite capacity 200: %v", looseErr)
	}
}
