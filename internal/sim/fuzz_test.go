package sim

import (
	"errors"
	"math"
	"testing"

	"freezetag/internal/geom"
	"freezetag/internal/rngstream"
)

// fuzzProgram is a deliberately naive greedy wake strategy: every awake
// robot repeatedly claims the nearest unclaimed sleeper, walks there, and
// tries to wake it. It exists only to drive the fault machinery — crashes
// strand claims, wake-drops waste trips, Byzantine robots never claim — so
// the fuzzer can hammer every roster path without the wakeup layer on top.
func fuzzProgram(positions []geom.Point, claimed []bool) func(*Proc) {
	var prog func(*Proc)
	prog = func(p *Proc) {
		for {
			best, bestD := -1, math.Inf(1)
			for i, q := range positions {
				if claimed[i] {
					continue
				}
				if d := p.Engine().Metric().Dist(p.Self().Pos(), q); d < bestD {
					best, bestD = i, d
				}
			}
			if best < 0 {
				return
			}
			claimed[best] = true
			if err := p.MoveTo(positions[best]); err != nil {
				return
			}
			p.TryWake(best+1, HandlerFunc(prog))
		}
	}
	return prog
}

// FuzzFaultedRun crashes, revives, deafens, duplicates, and corrupts random
// robots at fuzzer-chosen rates and asserts the engine's core fault
// invariants: no panic on any draw, the roster is conserved (faults disable
// robots, never remove them), no sleeper wakes twice, the awakened count is
// consistent, and the whole faulted run — events, counters, makespan — is
// bit-identical when replayed from the same seed.
func FuzzFaultedRun(f *testing.F) {
	f.Add(int64(1), uint8(40), uint8(1), uint8(24))  // crash-stop
	f.Add(int64(7), uint8(60), uint8(2), uint8(16))  // crash-recovery
	f.Add(int64(3), uint8(80), uint8(3), uint8(20))  // wake-drop
	f.Add(int64(9), uint8(50), uint8(4), uint8(12))  // wake-dup
	f.Add(int64(5), uint8(0), uint8(5), uint8(18))   // byzantine
	f.Add(int64(11), uint8(100), uint8(1), uint8(8)) // every robot faulty
	f.Add(int64(2), uint8(30), uint8(0), uint8(10))  // tolerant mode, no faults
	f.Fuzz(func(t *testing.T, seed int64, rateByte, kindByte, nByte uint8) {
		n := 4 + int(nByte)%29 // 4..32 sleepers
		kind := FaultKind(int(kindByte) % 6)
		rate := float64(int(rateByte)%101) / 100
		rng := rngstream.New(seed, 99)
		positions := make([]geom.Point, n)
		for i := range positions {
			positions[i] = geom.Pt(rng.Float64()*20-10, rng.Float64()*20-10)
		}
		plan := &FaultPlan{
			Kind: kind, Seed: seed, Rate: rate,
			CrashDist: 3, Downtime: 2, Byzantine: 1 + int(uint64(seed)&3),
		}
		if kind == FaultByzantine {
			plan.WanderPath = func(id int, from geom.Point) []geom.Point {
				return []geom.Point{geom.Pt(float64(id), 0), from}
			}
		}

		run := func() (Result, []Event, int) {
			var events []Event
			e := NewEngine(Config{
				Source:   geom.Origin,
				Sleepers: positions,
				Faults:   plan,
				Trace:    func(ev Event) { events = append(events, ev) },
			})
			claimed := make([]bool, n)
			e.Spawn(SourceID, fuzzProgram(positions, claimed))
			res, err := e.Run()
			if err != nil && !errors.Is(err, ErrDeadlock) {
				t.Fatalf("run: %v", err)
			}
			return res, events, e.NumRobots()
		}

		res, events, robots := run()
		if robots != n+1 {
			t.Fatalf("roster not conserved: %d robots, want %d", robots, n+1)
		}
		woken := make(map[int]int)
		for _, ev := range events {
			if ev.Kind == "wake" {
				woken[ev.Robot]++
			}
		}
		for id, c := range woken {
			if c != 1 {
				t.Fatalf("robot %d woke %d times", id, c)
			}
			if id < 1 || id > n {
				t.Fatalf("wake event for out-of-roster robot %d", id)
			}
		}
		if res.Awakened != len(woken) {
			t.Fatalf("Awakened = %d but %d wake events", res.Awakened, len(woken))
		}
		if res.Awakened < 0 || res.Awakened > n {
			t.Fatalf("Awakened = %d out of [0,%d]", res.Awakened, n)
		}
		if res.AllAwake != (res.Awakened == n) {
			t.Fatalf("AllAwake=%v with %d/%d awakened", res.AllAwake, res.Awakened, n)
		}

		res2, events2, _ := run()
		if res.Makespan != res2.Makespan || res.Awakened != res2.Awakened ||
			res.Faults != res2.Faults {
			t.Fatalf("replay diverged: %+v vs %+v", res, res2)
		}
		if len(events) != len(events2) {
			t.Fatalf("replay emitted %d events vs %d", len(events), len(events2))
		}
		for i := range events {
			if events[i] != events2[i] {
				t.Fatalf("event %d diverged: %+v vs %+v", i, events[i], events2[i])
			}
		}
	})
}
