package sim

import (
	"fmt"
	"math"
	"sort"

	"freezetag/internal/geom"
	"freezetag/internal/rngstream"
)

// FaultKind selects the failure model a FaultPlan injects. The kinds map the
// related work's fault taxonomy onto the Look-Compute-Move model: crash-stop
// and crash-recovery are the classic process-failure models applied to robot
// movement, the wake faults are the unreliable-channel analogue (a co-located
// Wake is the model's only communication primitive), and Byzantine hands k
// robots to the adversary.
type FaultKind int

const (
	// FaultNone injects nothing; a plan with this kind only changes the
	// engine into its fault-tolerant mode (roster panics become skips).
	FaultNone FaultKind = iota
	// FaultCrashStop halts a faulty robot mid-move at a drawn odometer
	// reading; it stays down for the rest of the run.
	FaultCrashStop
	// FaultCrashRecovery is FaultCrashStop followed by a drawn downtime,
	// after which the robot resumes, in place, whatever move it was making.
	FaultCrashRecovery
	// FaultWakeDrop makes a co-located Wake fail silently with probability
	// Rate: the target stays asleep and the waker does not notice.
	FaultWakeDrop
	// FaultWakeDup makes a Wake fire twice with probability Rate. Waking is
	// at-least-once, so the duplicate is absorbed; it is observable as a
	// fault event and counter (and is what a repair layer must tolerate).
	FaultWakeDup
	// FaultByzantine hands Byzantine robots to the adversary: when such a
	// robot is woken with a handler, the handler is replaced by the plan's
	// WanderPath program — the robot wanders instead of doing its share.
	FaultByzantine
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultCrashStop:
		return "crash-stop"
	case FaultCrashRecovery:
		return "crash-recovery"
	case FaultWakeDrop:
		return "wake-drop"
	case FaultWakeDup:
		return "wake-dup"
	case FaultByzantine:
		return "byzantine"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// FaultPlan is a deterministic fault-injection schedule. Every draw comes
// from splitmix64 streams derived from Seed (the rngstream scheme shared with
// the experiment and portfolio engines): crash assignments and crash points
// use one stream per robot, wake faults one sequential stream, Byzantine
// selection its own stream — so the same (instance, plan) pair always injects
// the identical fault sequence, at any worker count.
//
// The source robot (id 0) is immune to every kind: the model's source is the
// trusted coordinator, and its immunity is what makes repair-layer
// completion guarantees possible at all.
type FaultPlan struct {
	// Kind selects the failure model.
	Kind FaultKind
	// Seed roots every derived stream.
	Seed int64
	// Rate is the per-robot fault probability for the crash kinds and the
	// per-wake fault probability for the wake kinds. Ignored by Byzantine.
	Rate float64
	// CrashDist scales the odometer reading at which a faulty robot's next
	// crash fires (drawn uniformly from [0, CrashDist)); ≤ 0 means 1.
	CrashDist float64
	// Downtime scales a crash-recovery outage: down for (0.5+u)·Downtime
	// with u uniform in [0,1); ≤ 0 means 1.
	Downtime float64
	// Byzantine is the number of adversary-controlled robots (FaultByzantine
	// only), chosen by a seeded shuffle of ids 1..n.
	Byzantine int
	// WanderPath, for Byzantine robots, returns the path robot id wanders
	// along instead of executing its handler. Nil means the robot simply
	// does nothing when woken.
	WanderPath func(id int, from geom.Point) []geom.Point
}

// FaultStats counts injected faults and repair actions. All counts are
// deterministic: they are incremented on the single-threaded event loop.
type FaultStats struct {
	// CrashStops and Recoveries count crash events (a crash-recovery robot
	// counts one Recovery per outage; CrashStops are permanent).
	CrashStops int64
	Recoveries int64
	// WakeDrops and WakeDups count injected wake faults.
	WakeDrops int64
	WakeDups  int64
	// ByzTakeovers counts handler substitutions on Byzantine robots.
	ByzTakeovers int64
	// RosterSkips counts tolerated stale-roster operations (a Wake or Escort
	// aimed at a robot that is no longer asleep / co-located) — panics in
	// the fault-free model, runtime conditions under fault injection.
	RosterSkips int64
	// Repairs counts repair-layer interventions (rescue dispatches and
	// stalled-process releases).
	Repairs int64
	// FirstRepair and LastRepair bound the virtual-time window the repair
	// layer was active in (both zero when Repairs is 0). The serving tier
	// scales them against the makespan to approximate a "repair" stage span.
	FirstRepair float64
	LastRepair  float64
}

// Injected returns the total number of injected faults (repairs and roster
// skips are consequences, not injections).
func (s FaultStats) Injected() int64 {
	return s.CrashStops + s.Recoveries + s.WakeDrops + s.WakeDups + s.ByzTakeovers
}

// ErrCrashed is the error a move returns when the moving robot's injected
// crash fires. Crash-stop leaves the robot down for good; the crash-recovery
// path handles the outage internally and never surfaces this error.
type ErrCrashed struct{ Robot int }

// Error implements error.
func (e *ErrCrashed) Error() string {
	return fmt.Sprintf("sim: robot %d crashed", e.Robot)
}

// installFaults seeds the per-robot fault state from plan. Called from
// populate, so a pooled engine re-derives the identical assignment on every
// Reset with the same plan.
func (e *Engine) installFaults(plan *FaultPlan) {
	switch plan.Kind {
	case FaultCrashStop, FaultCrashRecovery:
		scale := plan.CrashDist
		if scale <= 0 {
			scale = 1
		}
		for i := 1; i < len(e.robots); i++ {
			rnd := rngstream.New(plan.Seed, i)
			if rnd.Float64() >= plan.Rate {
				continue
			}
			r := e.robots[i]
			r.faulty = true
			r.crashAt = rnd.Float64() * scale
			r.frnd = rnd
		}
	case FaultWakeDrop, FaultWakeDup:
		e.wakeRand = rngstream.New(plan.Seed, 0)
	case FaultByzantine:
		n := len(e.robots) - 1
		k := plan.Byzantine
		if k > n {
			k = n
		}
		if k <= 0 {
			return
		}
		// Partial Fisher–Yates over ids 1..n on a dedicated stream picks the
		// k adversary-controlled robots; the id buffer borrows the engine's
		// query scratch (no queries are in flight during populate).
		rnd := rngstream.New(plan.Seed, -1)
		buf := e.queryBuf[:0]
		for i := 1; i <= n; i++ {
			buf = append(buf, i)
		}
		for i := 0; i < k; i++ {
			j := i + rnd.Intn(n-i)
			buf[i], buf[j] = buf[j], buf[i]
			e.robots[buf[i]].byz = true
		}
		e.queryBuf = buf[:0]
	}
}

// FaultsEnabled reports whether the engine runs under a fault plan. It flips
// the roster contracts from panic-on-bug to tolerate-and-count: under
// injection a stale roster is a runtime condition, not an algorithm bug.
func (e *Engine) FaultsEnabled() bool { return e.faults != nil }

// FaultStats returns the fault counters accumulated so far; the final values
// are also carried on Result.Faults.
func (e *Engine) FaultStats() FaultStats { return e.fstats }

// IsByzantine reports whether robot id is adversary-controlled.
func (e *Engine) IsByzantine(id int) bool { return e.Robot(id).byz }

// Down reports whether robot id is currently in a crash outage (permanently
// for crash-stop).
func (e *Engine) Down(id int) bool { return e.Robot(id).downUntil > e.now }

// LiveProcs returns the number of live processes running on robot id. Repair
// code uses it to pick idle rescuers and to avoid stacking movement-conflict
// processes on one robot.
func (e *Engine) LiveProcs(id int) int { return e.Robot(id).procs }

// Quiescent reports whether nothing besides the calling process is scheduled.
// Only meaningful from inside a running process (the engine pops the caller's
// own event before resuming it).
func (e *Engine) Quiescent() bool { return len(e.pq) == 0 }

// ParkedCount returns the number of processes parked indefinitely (barriers,
// wait-groups). A quiescent engine with parked processes is a deadlock in the
// making; repair code releases them via ReleaseStalled.
func (e *Engine) ParkedCount() int { return len(e.parked) }

// AppendAsleep appends the ids of all robots still asleep to buf, in
// ascending id order.
func (e *Engine) AppendAsleep(buf []int) []int {
	for _, r := range e.robots {
		if r.state == Asleep {
			buf = append(buf, r.id)
		}
	}
	return buf
}

// RecordRepair counts one repair-layer intervention attributed to robot id
// and emits the "repair" trace event.
func (e *Engine) RecordRepair(id int, note string) {
	e.fstats.Repairs++
	if e.fstats.Repairs == 1 || e.now > e.lastRepair {
		e.lastRepair = e.now
	}
	if e.fstats.Repairs == 1 {
		e.firstRepair = e.now
	}
	e.emit(Event{T: e.now, Robot: id, Kind: "repair", Pos: e.Robot(id).pos, Extra: note})
}

// RepairWindow returns the virtual-time interval [first, last] spanned by the
// run's repair interventions, and ok=false when none happened. The serving
// tier scales it against wall-clock simulation time to attribute a repair
// stage on request timelines.
func (e *Engine) RepairWindow() (first, last float64, ok bool) {
	if e.fstats.Repairs == 0 {
		return 0, 0, false
	}
	return e.firstRepair, e.lastRepair, true
}

// ReleaseStalled re-enqueues every indefinitely-parked process at the current
// time and voids the synchronization they were parked on: all barrier records
// are dropped and every engine-built WaitGroup is zeroed (so released waiters
// that re-check it fall through, and stragglers' Done calls are absorbed).
// It returns the number of processes released.
//
// This is the self-stabilization escape hatch: when injected faults have
// killed the branches that would have released a barrier or wait-group, the
// parked survivors would deadlock the run. Repair code calls this only when
// the engine is otherwise quiescent, so a released process resumes into a
// world where the work it was waiting on is provably never coming.
func (e *Engine) ReleaseStalled() int {
	n := len(e.parked)
	if n > 0 {
		// Deterministic release order: sort by spawn sequence (map iteration
		// order would leak into the schedule otherwise).
		procs := make([]*Proc, 0, n)
		for p := range e.parked {
			procs = append(procs, p)
		}
		sort.Slice(procs, func(i, j int) bool { return procs[i].pid < procs[j].pid })
		for _, p := range procs {
			e.push(p, e.now)
		}
	}
	clear(e.barriers)
	for _, w := range e.wgs {
		w.count = 0
		w.waiters = w.waiters[:0]
	}
	return n
}

// moveFaulty is the crash-kind move path for a robot carrying a fault
// assignment: the move is cut at the odometer reading where the next crash
// fires. Crash-stop halts the robot for good and returns *ErrCrashed;
// crash-recovery parks it for a drawn downtime and then resumes the move
// from where it stopped (redrawing the next crash point).
func (p *Proc) moveFaulty(dst geom.Point, speed float64) error {
	for {
		d := p.eng.dist(p.r.pos, dst)
		if d <= geom.Eps {
			return nil
		}
		gap := p.r.crashAt - p.r.energy
		if gap > d-geom.Eps || gap > p.r.remaining()+geom.Eps {
			// The crash point lies beyond this move (or beyond the budget,
			// which halts the robot first anyway): plain move semantics.
			return p.moveLeg(dst, d, speed)
		}
		if gap > 0 {
			stop := geom.MoveToward(p.eng.metric, p.r.pos, dst, gap)
			p.yieldAt(p.eng.now + gap/speed)
			p.eng.moveRobot(p.r, stop, gap)
		}
		plan := p.eng.faults
		p.eng.emit(Event{T: p.eng.now, Robot: p.r.id, Kind: "fault-crash", Pos: p.r.pos})
		if plan.Kind == FaultCrashStop {
			p.r.stopped = true
			p.r.downUntil = math.Inf(1)
			p.eng.fstats.CrashStops++
			return &ErrCrashed{Robot: p.r.id}
		}
		mean := plan.Downtime
		if mean <= 0 {
			mean = 1
		}
		p.eng.fstats.Recoveries++
		p.r.downUntil = p.eng.now + (0.5+p.r.frnd.Float64())*mean
		p.yieldAt(p.r.downUntil)
		p.r.downUntil = 0
		p.eng.emit(Event{T: p.eng.now, Robot: p.r.id, Kind: "fault-recover", Pos: p.r.pos})
		scale := plan.CrashDist
		if scale <= 0 {
			scale = 1
		}
		p.r.crashAt = p.r.energy + p.r.frnd.Float64()*scale
		// Loop: continue the interrupted move toward dst.
	}
}

// escortCrash fires a passive escort member's crash when it lies inside the
// segment of length d the team just covered toward dst. Passive members have
// no process of their own, so Escort is the only place their odometer
// advances and hence the only place their crash can fire. Returns true when
// the member crashed (it is dropped from the team where it fell); the crash
// position is applied at the team's arrival time, matching how Escort already
// applies member budget exhaustion.
func (p *Proc) escortCrash(r *Robot, dst geom.Point, d float64) bool {
	gap := r.crashAt - r.energy
	if gap > d-geom.Eps || gap > r.remaining()+geom.Eps {
		return false
	}
	if gap < 0 {
		gap = 0
	}
	stop := geom.MoveToward(p.eng.metric, r.pos, dst, gap)
	p.eng.moveRobot(r, stop, gap)
	p.eng.emit(Event{T: p.eng.now, Robot: r.id, Kind: "fault-crash", Pos: r.pos})
	plan := p.eng.faults
	if plan.Kind == FaultCrashStop {
		r.stopped = true
		r.downUntil = math.Inf(1)
		p.eng.fstats.CrashStops++
		return true
	}
	mean := plan.Downtime
	if mean <= 0 {
		mean = 1
	}
	p.eng.fstats.Recoveries++
	r.downUntil = p.eng.now + (0.5+r.frnd.Float64())*mean
	scale := plan.CrashDist
	if scale <= 0 {
		scale = 1
	}
	r.crashAt = r.energy + r.frnd.Float64()*scale
	return true
}

// wakeFaulted is the WakeH path under a fault plan: stale rosters are
// tolerated (counted, not panicked — a repair process may have raced the
// original schedule here), and the wake itself is subjected to the plan's
// channel faults.
func (p *Proc) wakeFaulted(id int, handler Handler) {
	r := p.eng.Robot(id)
	if r.state != Asleep || !p.r.pos.Eq(r.pos) {
		p.eng.fstats.RosterSkips++
		p.eng.emit(Event{T: p.eng.now, Robot: p.r.id, Kind: "fault-roster", Pos: p.r.pos,
			Extra: fmt.Sprintf("wake %d", id)})
		return
	}
	switch plan := p.eng.faults; plan.Kind {
	case FaultWakeDrop:
		if p.eng.wakeRand.Float64() < plan.Rate {
			p.eng.fstats.WakeDrops++
			p.eng.emit(Event{T: p.eng.now, Robot: p.r.id, Kind: "fault-wakedrop", Pos: p.r.pos,
				Extra: fmt.Sprintf("wake %d", id)})
			return
		}
	case FaultWakeDup:
		if p.eng.wakeRand.Float64() < plan.Rate {
			// The duplicate fires into a robot that is awake by the time it
			// lands; waking is at-least-once, so it is absorbed.
			p.eng.fstats.WakeDups++
			p.eng.emit(Event{T: p.eng.now, Robot: p.r.id, Kind: "fault-wakedup", Pos: p.r.pos,
				Extra: fmt.Sprintf("wake %d", id)})
		}
	}
	p.eng.wake(id)
	if handler != nil {
		p.eng.SpawnH(id, handler)
	}
}

// TryWake is the fault-aware Wake: instead of treating a stale roster as an
// algorithm bug it reports the outcome. It returns true when robot id ends up
// awake by this call, false when the target was not asleep, not co-located,
// or the wake was dropped by an injected fault. Repair code uses it to
// re-wake orphans without racing the original schedule.
func (p *Proc) TryWake(id int, handler Handler) bool {
	r := p.eng.Robot(id)
	if r.state != Asleep || !p.r.pos.Eq(r.pos) {
		return false
	}
	p.WakeH(id, handler)
	return r.state == Awake
}

// byzHandler replaces the real handler on an adversary-controlled robot: the
// robot wanders the plan's path instead of doing its share of the schedule.
type byzHandler struct{ plan *FaultPlan }

// RunProc implements Handler.
func (b byzHandler) RunProc(p *Proc) {
	if b.plan == nil || b.plan.WanderPath == nil {
		return
	}
	// Budget exhaustion or a crash just strands the wanderer early.
	_ = p.MovePath(b.plan.WanderPath(p.r.id, p.r.pos))
}
