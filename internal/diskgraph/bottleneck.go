package diskgraph

import (
	"math"
	"runtime"
	"sync"

	"freezetag/internal/geom"
)

// This file implements the grid-accelerated bottleneck-MST pass behind
// ConnectivityThresholdIn. The machinery is deliberately self-contained —
// a flat CSR cell index over the vertex slice rather than spatial.Grid —
// because the pass scans millions of (cell, vertex) pairs and every map
// lookup or closure call on that path is measurable.

// ringSafety shrinks the ring-pruning radius by a hair: cell coordinates
// come from floating-point division, so a vertex pair k cells apart is
// guaranteed farther than (k−1)·cell only up to a few ulps. The factor
// keeps ring pruning strictly conservative — nothing that could still
// matter is ever pruned — which is what makes the grid pass exactly equal
// to the dense one instead of almost.
const ringSafety = 1 - 1e-9

// cellIndex buckets vertex indices into a bounded integer lattice of square
// cells in CSR layout: cell (x, y) owns ids[start[x*ny+y]:start[x*ny+y+1]].
type cellIndex struct {
	cell   float64
	nx, ny int
	start  []int32
	ids    []int32
	// cpts is pts[ids[j]] copied into CSR order, so batch cell scans hand a
	// contiguous point block straight to geom.DistBatch. It is built only
	// under batch-accelerated metrics: for plain per-point metrics the copy
	// is dead weight — an extra point array's worth of cache footprint that
	// measurably slows the ℓ2 grid-Borůvka path.
	cpts   []geom.Point
	cx, cy []int32 // per-vertex cell coordinates
	batch  bool    // geom.BatchAccelerated(metric): big cells go through DistBatch
}

// newCellIndex buckets pts into cells of the given size. The caller
// guarantees finite coordinates and a positive cell.
func newCellIndex(m geom.Metric, pts []geom.Point, minX, minY, cell float64) *cellIndex {
	n := len(pts)
	ci := &cellIndex{cell: cell, batch: geom.BatchAccelerated(m), cx: make([]int32, n), cy: make([]int32, n)}
	for i, p := range pts {
		// Division rounding can nudge an on-boundary coordinate a hair
		// negative; clamp to keep the lattice non-negative.
		cx := max(int32((p.X-minX)/cell), 0)
		cy := max(int32((p.Y-minY)/cell), 0)
		ci.cx[i], ci.cy[i] = cx, cy
		ci.nx = max(ci.nx, int(cx)+1)
		ci.ny = max(ci.ny, int(cy)+1)
	}
	ci.start = make([]int32, ci.nx*ci.ny+1)
	for i := range pts {
		ci.start[int(ci.cx[i])*ci.ny+int(ci.cy[i])+1]++
	}
	for c := 1; c < len(ci.start); c++ {
		ci.start[c] += ci.start[c-1]
	}
	ci.ids = make([]int32, n)
	if ci.batch {
		ci.cpts = make([]geom.Point, n)
	}
	fill := make([]int32, ci.nx*ci.ny)
	for i := range pts {
		c := int(ci.cx[i])*ci.ny + int(ci.cy[i])
		j := ci.start[c] + fill[c]
		ci.ids[j] = int32(i)
		if ci.batch {
			ci.cpts[j] = pts[i]
		}
		fill[c]++
	}
	return ci
}

// ringSearch is the per-vertex state of a phase-B collective search.
type ringSearch struct {
	bestD  []float64 // best foreign distance found so far
	bestTo []int32   // its vertex, -1 if none
}

// cellBatchMin is the cell population below which a scan stays on the
// per-point Dist loop; smaller blocks don't amortize the batch kernel's
// dispatch. Both paths fold the same distances in the same order, so the
// choice never changes a result bit.
const cellBatchMin = 8

// scanScratch is one worker's reusable phase-B buffers: the pending-member
// list plus the distance block filled by geom.DistBatch. Each worker owns
// its scratch exclusively, so batching stays race-free at any pool size.
type scanScratch struct {
	active []int32
	dists  []float64
}

// ensure grows the distance buffer to hold n entries.
func (sc *scanScratch) ensure(n int) {
	if cap(sc.dists) < n {
		sc.dists = make([]float64, n+n/2+8)
	}
}

// scanCell scans one cell for vertices foreign to root rv, updating v's
// best candidate. root is the per-vertex root snapshot of the current round
// — the union-find is only mutated between rounds, so a flat array load
// replaces a find per scanned vertex on the hottest loop in the pass.
// Under a batch-accelerated metric (the ℓp integer family), big cells hand
// their whole contiguous point block to geom.DistBatch and fold the result;
// the fold visits foreign members in cell order, exactly the order the
// per-point loop compares in, and DistBatch is bit-identical to Dist, so
// the candidate (and every subsequent merge decision) is unchanged.
func (ci *cellIndex) scanCell(m geom.Metric, pts []geom.Point, root []int32, rv int32, v, x, y int, rs *ringSearch, sc *scanScratch) {
	base := x*ci.ny + y
	s, e := ci.start[base], ci.start[base+1]
	p := pts[v]
	bestD, bestTo := rs.bestD[v], rs.bestTo[v]
	ids := ci.ids[s:e]
	if !ci.batch {
		// Per-point metric: exactly the pre-batch scan (no cpts copy even
		// exists in this mode — see newCellIndex).
		for _, id := range ids {
			if root[id] == rv {
				continue // same component (or v itself)
			}
			if d := m.Dist(pts[id], p); d < bestD {
				bestD, bestTo = d, id
			}
		}
		rs.bestD[v], rs.bestTo[v] = bestD, bestTo
		return
	}
	cpts := ci.cpts[s:e]
	if len(ids) < cellBatchMin {
		// Near-empty cell: a batch round-trip through the distance buffer
		// costs more than the per-point calls it saves. Same bits either
		// way — cpts[i] is pts[ids[i]] by construction.
		for i, id := range ids {
			if root[id] == rv {
				continue // same component (or v itself)
			}
			if d := m.Dist(cpts[i], p); d < bestD {
				bestD, bestTo = d, id
			}
		}
		rs.bestD[v], rs.bestTo[v] = bestD, bestTo
		return
	}
	sc.ensure(len(ids))
	d := sc.dists[:len(ids)]
	geom.DistBatch(m, p, cpts, d)
	for i, id := range ids {
		if root[id] == rv {
			continue // same component (or v itself); its distance is unused
		}
		if dd := d[i]; dd < bestD {
			bestD, bestTo = dd, id
		}
	}
	rs.bestD[v], rs.bestTo[v] = bestD, bestTo
}

// scanRing scans the perimeter cells of the given ring around vertex v;
// done reports that the ring already covers the whole lattice, i.e. v has
// seen every vertex.
func (ci *cellIndex) scanRing(m geom.Metric, pts []geom.Point, root []int32, rv int32, v, ring int, rs *ringSearch, sc *scanScratch) (done bool) {
	cx, cy := int(ci.cx[v]), int(ci.cy[v])
	x0, x1 := cx-ring, cx+ring
	y0, y1 := cy-ring, cy+ring
	for x := max(x0, 0); x <= min(x1, ci.nx-1); x++ {
		if x == x0 || x == x1 {
			for y := max(y0, 0); y <= min(y1, ci.ny-1); y++ {
				ci.scanCell(m, pts, root, rv, v, x, y, rs, sc)
			}
			continue
		}
		if y0 >= 0 { // interior column: perimeter rows only
			ci.scanCell(m, pts, root, rv, v, x, y0, rs, sc)
		}
		if y1 != y0 && y1 <= ci.ny-1 {
			ci.scanCell(m, pts, root, rv, v, x, y1, rs, sc)
		}
	}
	return x0 <= 0 && y0 <= 0 && x1 >= ci.nx-1 && y1 >= ci.ny-1
}

// bottleneckGridIn computes the bottleneck-MST weight by Borůvka over the
// cell index: each round, every component finds its cheapest outgoing edge
// and the edges merge components union-find style; the largest merging
// weight is ℓ*.
//
// Exactness does not depend on tie-breaking: any tree whose every edge was,
// when added, a minimum-weight edge leaving some current component has
// bottleneck exactly ℓ* — (≤) each such edge is at most ℓ* because the
// ℓ*-ball graph is connected and therefore crosses every cut with an edge
// of weight ≤ ℓ*; (≥) any spanning tree's maximum edge is at least ℓ* by
// minimality of the threshold. Both passes take max/min over the same
// float64 Dist values (every supported metric is bitwise symmetric in its
// arguments), so the returned float is identical to the dense pass's.
//
// Each round runs in two phases. Phase A: vertices whose cached
// nearest-foreign candidate is still foreign contribute it for free — a
// component only grows, so a candidate that survived is still exactly the
// nearest foreign vertex. Phase B: the vertices whose candidate was
// absorbed re-search, grouped by component and ring-synchronized: the
// whole group expands one cell ring at a time sharing the component's best
// outgoing weight as a prune bound, so the moment any member touches a
// foreign vertex, members deep inside the component stop scanning. A
// pruned member can only be hiding edges at least as heavy as one the
// component already holds, so the per-component minimum — and therefore
// the bottleneck — is unaffected. Rounds at least halve the component
// count, giving near-linear total work for well-conditioned sets.
//
// The per-component searches are mutually independent — every slot a
// search writes (rs.best*, cand*, noneWithin by vertex; min* by root) is
// owned by exactly one component this round, and root/head/next/uf are
// read-only during phase B — so they fan out over a worker pool in the
// experiments-runner style. The merge step stays sequential, and the
// result is bit-identical at any worker count: each component's search
// runs the exact serial scan order internally, and components never read
// each other's state.
func bottleneckGridIn(m geom.Metric, pts []geom.Point, minX, minY, cell float64) float64 {
	n := len(pts)
	uf := newUnionFind(n)
	comps := n

	st := &boruvkaState{
		m:          m,
		pts:        pts,
		ci:         newCellIndex(m, pts, minX, minY, cell),
		candTo:     make([]int32, n),
		candD:      make([]float64, n),
		noneWithin: make([]float64, n),
		minD:       make([]float64, n),
		minFrom:    make([]int32, n),
		minTo:      make([]int32, n),
		head:       make([]int32, n),
		next:       make([]int32, n),
		root:       make([]int32, n),
		rs:         ringSearch{bestD: make([]float64, n), bestTo: make([]int32, n)},
	}
	pendingRoots := make([]int32, 0, 16)
	serialSc := &scanScratch{active: make([]int32, 0, 64)}
	for i := range st.candTo {
		st.candTo[i] = -1
	}

	var bottleneck float64
	for comps > 1 {
		for i := range st.minD {
			st.minD[i] = math.Inf(1)
			st.head[i] = -1
		}
		for v := 0; v < n; v++ {
			st.root[v] = int32(uf.find(v))
		}
		// Phase A.
		pendingRoots = pendingRoots[:0]
		pendingVerts := 0
		for v := 0; v < n; v++ {
			rv := st.root[v]
			if to := st.candTo[v]; to >= 0 {
				if st.root[to] != rv {
					if st.candD[v] < st.minD[rv] {
						st.minD[rv], st.minFrom[rv], st.minTo[rv] = st.candD[v], int32(v), to
					}
					continue
				}
				// The cached nearest foreign vertex was absorbed: its
				// distance becomes v's foreign-distance floor.
				st.candTo[v] = -1
				st.noneWithin[v] = math.Max(st.noneWithin[v], st.candD[v])
			}
			if st.head[rv] < 0 {
				pendingRoots = append(pendingRoots, rv)
			}
			st.next[v] = st.head[rv]
			st.head[rv] = int32(v)
			pendingVerts++
		}
		// Phase B.
		if workers := phaseBWorkers(len(pendingRoots), pendingVerts); workers > 1 {
			idx := make(chan int)
			var wg sync.WaitGroup
			wg.Add(workers)
			for w := 0; w < workers; w++ {
				go func() {
					defer wg.Done()
					sc := &scanScratch{active: make([]int32, 0, 64)}
					for i := range idx {
						st.searchComponent(pendingRoots[i], sc)
					}
				}()
			}
			for i := range pendingRoots {
				idx <- i
			}
			close(idx)
			wg.Wait()
		} else {
			for _, rv := range pendingRoots {
				st.searchComponent(rv, serialSc)
			}
		}
		// Merge every component along its recorded cheapest outgoing edge.
		merged := false
		for r := 0; r < n; r++ {
			if math.IsInf(st.minD[r], 1) {
				continue // not a round-start root, or found no edge
			}
			if uf.union(int(st.minFrom[r]), int(st.minTo[r])) {
				comps--
				if st.minD[r] > bottleneck {
					bottleneck = st.minD[r]
				}
				merged = true
			}
		}
		if !merged {
			break // safety valve; unreachable for finite coordinates
		}
	}
	return bottleneck
}

// boruvkaState is the shared round state of bottleneckGridIn, grouped so
// the per-component phase-B searches can run as methods from pool workers.
// Slices indexed by vertex (candTo, candD, noneWithin, rs.best*) or by root
// (minD, minFrom, minTo) are written only for vertices/roots of the
// component being searched, which is what makes concurrent searches safe.
type boruvkaState struct {
	m   geom.Metric
	pts []geom.Point
	ci  *cellIndex

	candTo     []int32 // cached nearest foreign vertex, -1 = unknown
	candD      []float64
	noneWithin []float64 // no foreign vertex lies closer than this floor
	minD       []float64 // per-root cheapest outgoing edge this round
	minFrom    []int32
	minTo      []int32
	head       []int32 // per-root phase-B pending list, linked via next
	next       []int32
	root       []int32 // per-vertex root snapshot of the current round
	rs         ringSearch
}

// phaseBWorkersOverride, when positive, pins the phase-B pool size; tests
// use it to exercise the parallel path on single-core runners and to check
// bit-identity across worker counts.
var phaseBWorkersOverride = 0

// parallelPhaseBMinVerts is the pending-vertex count below which a round's
// phase B stays serial: tiny rounds (the common tail, where almost every
// candidate survived phase A) would pay more in goroutine handoff than the
// searches cost. Purely a performance dispatch — serial and parallel
// searches write identical values.
const parallelPhaseBMinVerts = 256

// phaseBWorkers sizes the phase-B pool for a round with the given pending
// component and vertex counts.
func phaseBWorkers(roots, verts int) int {
	w := runtime.GOMAXPROCS(0)
	if phaseBWorkersOverride > 0 {
		w = phaseBWorkersOverride
	} else if verts < parallelPhaseBMinVerts {
		return 1
	}
	if w > roots {
		w = roots
	}
	return w
}

// searchComponent runs one component's ring-synchronized phase-B search:
// every pending member expands one cell ring at a time, sharing the
// component's best outgoing weight as the prune bound. sc is the calling
// worker's private scratch.
func (st *boruvkaState) searchComponent(rv int32, sc *scanScratch) {
	r := int(rv)
	active := sc.active[:0]
	for v := st.head[r]; v >= 0; v = st.next[v] {
		if st.noneWithin[v] >= st.minD[r] && !math.IsInf(st.minD[r], 1) {
			// v's foreign-distance floor already matches the component's
			// phase-A bound, and the in-round bound only shrinks: v cannot
			// contribute a better edge. This is what keeps settled interior
			// vertices O(1) per round.
			continue
		}
		active = append(active, v)
		st.rs.bestD[v] = math.Inf(1)
		st.rs.bestTo[v] = -1
	}
	bound := st.minD[r]
	for ring := 0; len(active) > 0; ring++ {
		if ring > 0 && bound <= float64(ring-1)*st.ci.cell*ringSafety {
			// Unscanned rings hold only vertices farther than the
			// component's best edge; drop the stragglers without exact
			// caches, remembering the certified foreign-free radius around
			// each.
			for _, v := range active {
				st.candTo[v] = -1
				st.noneWithin[v] = math.Max(st.noneWithin[v], float64(ring-1)*st.ci.cell*ringSafety)
			}
			break
		}
		// After scanning ring k, everything unscanned is farther than
		// k·cell (up to ulps — hence ringSafety).
		certified := float64(ring) * st.ci.cell * ringSafety
		keep := active[:0]
		for _, v := range active {
			done := st.ci.scanRing(st.m, st.pts, st.root, rv, int(v), ring, &st.rs, sc)
			if d := st.rs.bestD[v]; d < bound {
				bound = d
			}
			if done || st.rs.bestD[v] <= certified {
				if to := st.rs.bestTo[v]; to >= 0 {
					st.candTo[v], st.candD[v] = to, st.rs.bestD[v]
					if st.rs.bestD[v] < st.minD[r] {
						st.minD[r], st.minFrom[r], st.minTo[r] = st.rs.bestD[v], v, to
					}
				} else {
					st.candTo[v] = -1
				}
				continue
			}
			keep = append(keep, v)
		}
		active = keep
	}
	sc.active = active[:0]
}

// unionFind is a plain disjoint-set forest with path halving and union by
// rank, sized once for the vertex count.
type unionFind struct {
	parent []int32
	rank   []int8
}

func newUnionFind(n int) *unionFind {
	u := &unionFind{parent: make([]int32, n), rank: make([]int8, n)}
	for i := range u.parent {
		u.parent[i] = int32(i)
	}
	return u
}

func (u *unionFind) find(v int) int {
	for int(u.parent[v]) != v {
		u.parent[v] = u.parent[u.parent[v]] // path halving
		v = int(u.parent[v])
	}
	return v
}

// union merges the sets of a and b, reporting false when already joined.
func (u *unionFind) union(a, b int) bool {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return false
	}
	if u.rank[ra] < u.rank[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = int32(ra)
	if u.rank[ra] == u.rank[rb] {
		u.rank[ra]++
	}
	return true
}
