package diskgraph

import (
	"math"
	"math/rand"
	"testing"

	"freezetag/internal/geom"
)

func linePoints(n int, step float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(float64(i+1)*step, 0)
	}
	return pts
}

func TestNewAdjacency(t *testing.T) {
	// Source at origin, points at 1, 2, 3 on the x-axis; δ = 1 connects
	// consecutive vertices only.
	g := New(geom.Origin, linePoints(3, 1), 1)
	if g.N() != 4 {
		t.Fatalf("N = %d", g.N())
	}
	if got := g.Neighbors(0); len(got) != 1 || got[0] != 1 {
		t.Errorf("Neighbors(0) = %v", got)
	}
	if got := g.Neighbors(1); len(got) != 2 {
		t.Errorf("Neighbors(1) = %v", got)
	}
	if g.Degree(3) != 1 {
		t.Errorf("Degree(3) = %d", g.Degree(3))
	}
}

func TestZeroDelta(t *testing.T) {
	g := New(geom.Origin, linePoints(3, 1), 0)
	for v := 0; v < g.N(); v++ {
		if g.Degree(v) != 0 {
			t.Errorf("Degree(%d) = %d with δ=0", v, g.Degree(v))
		}
	}
	if g.Connected() {
		t.Error("graph with no edges and 4 vertices should be disconnected")
	}
}

func TestConnected(t *testing.T) {
	if !New(geom.Origin, nil, 1).Connected() {
		t.Error("single vertex should be connected")
	}
	if !New(geom.Origin, linePoints(5, 1), 1).Connected() {
		t.Error("unit-spaced line should be connected at δ=1")
	}
	if New(geom.Origin, linePoints(5, 1.01), 1).Connected() {
		t.Error("1.01-spaced line should be disconnected at δ=1")
	}
}

func TestShortestDists(t *testing.T) {
	g := New(geom.Origin, linePoints(4, 1), 1)
	dist := g.ShortestDists(0)
	for i, want := range []float64{0, 1, 2, 3, 4} {
		if math.Abs(dist[i]-want) > 1e-9 {
			t.Errorf("dist[%d] = %v, want %v", i, dist[i], want)
		}
	}
}

func TestShortestDistsUnreachable(t *testing.T) {
	pts := []geom.Point{geom.Pt(1, 0), geom.Pt(10, 0)}
	g := New(geom.Origin, pts, 1)
	dist := g.ShortestDists(0)
	if !math.IsInf(dist[2], 1) {
		t.Errorf("unreachable vertex dist = %v", dist[2])
	}
}

func TestEccentricity(t *testing.T) {
	g := New(geom.Origin, linePoints(4, 1), 1)
	if ecc := g.Eccentricity(0); math.Abs(ecc-4) > 1e-9 {
		t.Errorf("Eccentricity = %v, want 4", ecc)
	}
	// Shortcut edge: δ=2 allows 2-hops.
	g2 := New(geom.Origin, linePoints(4, 1), 2)
	if ecc := g2.Eccentricity(0); math.Abs(ecc-4) > 1e-9 {
		t.Errorf("Eccentricity with δ=2 = %v, want 4 (geodesic on a line)", ecc)
	}
}

func TestHopDists(t *testing.T) {
	g := New(geom.Origin, linePoints(4, 1), 2)
	hops := g.HopDists(0)
	// δ=2 on unit line: hop distance is ceil(i/2).
	want := []int{0, 1, 1, 2, 2}
	for i := range want {
		if hops[i] != want[i] {
			t.Errorf("hops[%d] = %d, want %d", i, hops[i], want[i])
		}
	}
}

func TestShortestPath(t *testing.T) {
	g := New(geom.Origin, linePoints(4, 1), 1)
	path := g.ShortestPath(0, 4)
	want := []int{0, 1, 2, 3, 4}
	if len(path) != len(want) {
		t.Fatalf("path = %v", path)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
	// Unreachable.
	g2 := New(geom.Origin, []geom.Point{geom.Pt(100, 0)}, 1)
	if p := g2.ShortestPath(0, 1); p != nil {
		t.Errorf("unreachable path = %v", p)
	}
}

func TestConnectivityThreshold(t *testing.T) {
	// Unit line: threshold exactly 1.
	if ell := ConnectivityThreshold(geom.Origin, linePoints(5, 1)); math.Abs(ell-1) > 1e-9 {
		t.Errorf("ℓ* = %v, want 1", ell)
	}
	// A gap of 3 dominates.
	pts := append(linePoints(3, 1), geom.Pt(6, 0), geom.Pt(7, 0))
	if ell := ConnectivityThreshold(geom.Origin, pts); math.Abs(ell-3) > 1e-9 {
		t.Errorf("ℓ* = %v, want 3", ell)
	}
	// Empty set.
	if ell := ConnectivityThreshold(geom.Origin, nil); ell != 0 {
		t.Errorf("ℓ* of empty = %v", ell)
	}
}

func TestConnectivityThresholdIsTight(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		n := 3 + rng.Intn(30)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*20, rng.Float64()*20)
		}
		ell := ConnectivityThreshold(geom.Origin, pts)
		if !New(geom.Origin, pts, ell).Connected() {
			t.Fatalf("trial %d: graph at δ=ℓ* must be connected", trial)
		}
		if ell > 1e-6 && New(geom.Origin, pts, ell*0.999).Connected() {
			t.Fatalf("trial %d: graph just below ℓ* must be disconnected", trial)
		}
	}
}

func TestXiAt(t *testing.T) {
	// Unit line of 4 points: ξ₁ = 4.
	if xi := XiAt(geom.Origin, linePoints(4, 1), 1); math.Abs(xi-4) > 1e-9 {
		t.Errorf("ξ = %v, want 4", xi)
	}
	// Disconnected at small ℓ.
	if xi := XiAt(geom.Origin, linePoints(4, 1), 0.5); !math.IsInf(xi, 1) {
		t.Errorf("ξ below threshold = %v, want +Inf", xi)
	}
	if xi := XiAt(geom.Origin, nil, 1); xi != 0 {
		t.Errorf("ξ of empty = %v", xi)
	}
}

func TestAdmissible(t *testing.T) {
	cases := []struct {
		ell, rho float64
		n        int
		want     bool
	}{
		{1, 4, 10, true},
		{1, 4, 3, false},  // ρ > nℓ
		{2, 1, 10, false}, // ρ < ℓ
		{0, 1, 10, false}, // ℓ = 0
		{1, 1, 1, true},
	}
	for _, c := range cases {
		if got := Admissible(c.ell, c.rho, c.n); got != c.want {
			t.Errorf("Admissible(%v,%v,%d) = %v, want %v", c.ell, c.rho, c.n, got, c.want)
		}
	}
}

// Property: Proposition 1 (ℓ* ≤ ρ* ≤ ξ ≤ nℓ*) on random clustered instances.
func TestProposition1Random(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 60; trial++ {
		n := 1 + rng.Intn(40)
		pts := make([]geom.Point, n)
		// Random walk from the source keeps instances loosely connected so
		// the parameters stay in interesting ranges.
		cur := geom.Origin
		for i := range pts {
			cur = cur.Add(geom.Pt(rng.Float64()*2-1, rng.Float64()*2-1))
			pts[i] = cur
		}
		if !CheckProposition1(geom.Origin, pts) {
			p := ComputeParams(geom.Origin, pts)
			t.Fatalf("trial %d: Proposition 1 violated: %+v", trial, p)
		}
	}
}

// Property: Lemma 6 — ξℓ ≤ 12·ρ*²/ℓ for any ℓ ≥ ℓ*, and hop count from the
// source is at most 1 + 2ξℓ/ℓ.
func TestLemma6Random(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 40; trial++ {
		n := 2 + rng.Intn(30)
		pts := make([]geom.Point, n)
		cur := geom.Origin
		for i := range pts {
			cur = cur.Add(geom.Pt(rng.Float64()*1.2-0.6, rng.Float64()*1.2-0.6))
			pts[i] = cur
		}
		p := ComputeParams(geom.Origin, pts)
		for _, ell := range []float64{p.Ell, p.Ell * 1.5, p.Ell * 3} {
			xi := XiAt(geom.Origin, pts, ell)
			if math.IsInf(xi, 1) {
				t.Fatalf("trial %d: disconnected at ℓ ≥ ℓ*", trial)
			}
			if xi > 12*p.Rho*p.Rho/ell+1e-9 {
				t.Fatalf("trial %d: ξ=%v > 12ρ²/ℓ=%v", trial, xi, 12*p.Rho*p.Rho/ell)
			}
			g := New(geom.Origin, pts, ell)
			hops := g.HopDists(0)
			for v, h := range hops {
				if float64(h) > 1+2*xi/ell+1e-9 {
					t.Fatalf("trial %d: vertex %d hops=%d > 1+2ξ/ℓ=%v", trial, v, h, 1+2*xi/ell)
				}
			}
		}
	}
}

// Property: eccentricity is monotone non-increasing in ℓ (more edges can
// only shorten shortest paths).
func TestXiMonotoneInEll(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(25)
		pts := make([]geom.Point, n)
		cur := geom.Origin
		for i := range pts {
			cur = cur.Add(geom.Pt(rng.Float64()*2-1, rng.Float64()*2-1))
			pts[i] = cur
		}
		ell := ConnectivityThreshold(geom.Origin, pts)
		prev := math.Inf(1)
		for _, mult := range []float64{1, 1.2, 1.5, 2, 4} {
			xi := XiAt(geom.Origin, pts, ell*mult)
			if xi > prev+1e-9 {
				t.Fatalf("trial %d: ξ increased from %v to %v as ℓ grew", trial, prev, xi)
			}
			prev = xi
		}
	}
}
