package diskgraph

import (
	"math"
	"math/rand"
	"testing"

	"freezetag/internal/geom"
)

// gridOracleMetrics are the metric spellings the ISSUE pins for the
// grid-vs-dense cross-check: the three named metrics, a fractional ℓp, and
// the integer-exponent ℓp fast path.
func gridOracleMetrics(t *testing.T) []geom.Metric {
	t.Helper()
	ms := []geom.Metric{geom.L1, geom.L2, geom.LInf}
	for _, p := range []float64{2.5, 3} {
		m, err := geom.Lp(p)
		if err != nil {
			t.Fatalf("Lp(%g): %v", p, err)
		}
		ms = append(ms, m)
	}
	return ms
}

// bottleneckInstances generates point sets across the shapes the grid pass
// must stay exact on: uniform spreads, tight clusters joined by long
// bottleneck edges, walks, collinear sets, and duplicated points. Sizes
// straddle denseBottleneckCutoff so both dispatch arms run.
func bottleneckInstances(rng *rand.Rand) [][]geom.Point {
	var out [][]geom.Point
	for _, n := range []int{0, 1, 2, denseBottleneckCutoff - 1, denseBottleneckCutoff + 5, 300} {
		uniform := make([]geom.Point, n)
		for i := range uniform {
			uniform[i] = geom.Pt(rng.Float64()*40-20, rng.Float64()*40-20)
		}
		out = append(out, uniform)
	}
	clustered := make([]geom.Point, 0, 240)
	for c := 0; c < 4; c++ {
		cx, cy := rng.Float64()*500-250, rng.Float64()*500-250
		for i := 0; i < 60; i++ {
			clustered = append(clustered, geom.Pt(cx+rng.Float64(), cy+rng.Float64()))
		}
	}
	out = append(out, clustered)
	walk := make([]geom.Point, 200)
	x, y := 0.0, 0.0
	for i := range walk {
		x += (rng.Float64() - 0.5) * 2
		y += (rng.Float64() - 0.5) * 2
		walk[i] = geom.Pt(x, y)
	}
	out = append(out, walk)
	line := make([]geom.Point, 150)
	for i := range line {
		line[i] = geom.Pt(float64(i)*1.3, 0)
	}
	out = append(out, line)
	dup := make([]geom.Point, 120)
	for i := range dup {
		dup[i] = geom.Pt(float64(i%9), float64(i%6))
	}
	out = append(out, dup)
	return out
}

// The grid-accelerated ℓ* must equal the dense-Prim ℓ* exactly — not within
// a tolerance: the value feeds request hashes. The bottleneck weight of the
// float edge graph is algorithm-independent, and both passes evaluate the
// same bitwise-symmetric Dist calls, so any inequality here is a bug.
func TestConnectivityThresholdGridMatchesDense(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for _, m := range gridOracleMetrics(t) {
		for trial, pts := range bottleneckInstances(rng) {
			src := geom.Pt(rng.Float64()*10-5, rng.Float64()*10-5)
			got := ConnectivityThresholdIn(m, src, pts)
			want := ConnectivityThresholdDenseIn(m, src, pts)
			if got != want {
				t.Errorf("%s instance %d (n=%d): grid ℓ* = %x, dense ℓ* = %x",
					m.Name(), trial, len(pts), got, want)
			}
		}
	}
}

// Fuzz the grid pass on random instance sizes and scales; every value must
// match the dense oracle bit for bit.
func TestConnectivityThresholdGridFuzzed(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	metrics := gridOracleMetrics(t)
	for i := 0; i < 120; i++ {
		m := metrics[i%len(metrics)]
		n := denseBottleneckCutoff + rng.Intn(150)
		scale := math.Pow(10, float64(rng.Intn(6)-2))
		pts := make([]geom.Point, n)
		for j := range pts {
			pts[j] = geom.Pt((rng.Float64()-0.5)*scale, (rng.Float64()-0.5)*scale)
		}
		if rng.Intn(2) == 0 {
			pts[n-1] = geom.Pt(scale*100, scale*100) // far outlier: ℓ* is its edge
		}
		got := ConnectivityThresholdIn(m, geom.Origin, pts)
		want := ConnectivityThresholdDenseIn(m, geom.Origin, pts)
		if got != want {
			t.Fatalf("%s n=%d scale=%g: grid ℓ* = %x, dense ℓ* = %x", m.Name(), n, scale, got, want)
		}
	}
}

// ComputeParamsIn shares one vertex slice and one δ-ball graph across the
// derivation; its three outputs must equal the independent derivations the
// callers used to run — exactly, since ℓ* and ρ* feed request hashes.
func TestComputeParamsSharedDerivationExact(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	for _, m := range gridOracleMetrics(t) {
		for trial, pts := range bottleneckInstances(rng) {
			src := geom.Pt(rng.Float64()*4-2, rng.Float64()*4-2)
			p := ComputeParamsIn(m, src, pts)
			if want := ConnectivityThresholdDenseIn(m, src, pts); p.Ell != want {
				t.Errorf("%s instance %d: shared Ell = %x, dense = %x", m.Name(), trial, p.Ell, want)
			}
			if want := geom.MaxDistFromIn(m, src, pts); p.Rho != want {
				t.Errorf("%s instance %d: shared Rho = %x, dense = %x", m.Name(), trial, p.Rho, want)
			}
			if want := XiAtIn(m, src, pts, p.Ell); p.Xi != want {
				t.Errorf("%s instance %d: shared Xi = %x, independent = %x", m.Name(), trial, p.Xi, want)
			}
			if p.N != len(pts) {
				t.Errorf("%s instance %d: N = %d, want %d", m.Name(), trial, p.N, len(pts))
			}
		}
	}
}

// The phase-B worker pool must return bit-identical thresholds at every
// pool size — including on single-core runners where GOMAXPROCS alone
// would never exercise the parallel branch. Run with -race, this is also
// the data-race check on the per-component slot-disjointness argument.
func TestConnectivityThresholdGridParallelMatchesSerial(t *testing.T) {
	defer func() { phaseBWorkersOverride = 0 }()
	rng := rand.New(rand.NewSource(53))
	for _, m := range gridOracleMetrics(t) {
		for trial, pts := range bottleneckInstances(rng) {
			if len(pts) <= denseBottleneckCutoff {
				continue // dense dispatch: no phase B to parallelize
			}
			src := geom.Pt(rng.Float64()*10-5, rng.Float64()*10-5)
			phaseBWorkersOverride = 0
			want := ConnectivityThresholdIn(m, src, pts)
			for _, workers := range []int{1, 2, 3, 8} {
				phaseBWorkersOverride = workers
				if got := ConnectivityThresholdIn(m, src, pts); got != want {
					t.Errorf("%s instance %d (n=%d) workers=%d: ℓ* = %x, serial ℓ* = %x",
						m.Name(), trial, len(pts), workers, got, want)
				}
			}
		}
	}
}

// Coincident and degenerate inputs must keep the dense pass's exact
// behavior through the dispatch.
func TestConnectivityThresholdGridDegenerate(t *testing.T) {
	same := make([]geom.Point, 200)
	for i := range same {
		same[i] = geom.Pt(2, 3)
	}
	if got := ConnectivityThresholdIn(nil, geom.Pt(2, 3), same); got != 0 {
		t.Errorf("coincident ℓ* = %v, want 0", got)
	}
	// A coincident cloud with one far point: ℓ* is exactly that edge.
	pts := append(append([]geom.Point(nil), same...), geom.Pt(102, 3))
	got := ConnectivityThresholdIn(nil, geom.Pt(2, 3), pts)
	if want := ConnectivityThresholdDenseIn(nil, geom.Pt(2, 3), pts); got != want {
		t.Errorf("cloud+outlier ℓ* = %x, dense = %x", got, want)
	}
	nan := make([]geom.Point, 150)
	for i := range nan {
		nan[i] = geom.Pt(float64(i), 0)
	}
	nan[75] = geom.Pt(math.NaN(), 0)
	gotNaN := ConnectivityThresholdIn(nil, geom.Origin, nan)
	wantNaN := ConnectivityThresholdDenseIn(nil, geom.Origin, nan)
	if gotNaN != wantNaN && !(math.IsNaN(gotNaN) && math.IsNaN(wantNaN)) {
		t.Errorf("NaN input ℓ* = %v, dense = %v", gotNaN, wantNaN)
	}
}

// A finite-but-subnormal coordinate spread underflows the grid cell size;
// the dispatch must fall back to the dense pass instead of building a
// degenerate lattice (int32 overflow on some platforms).
func TestConnectivityThresholdSubnormalExtent(t *testing.T) {
	pts := make([]geom.Point, 150)
	for i := range pts {
		pts[i] = geom.Pt(float64(i)*5e-324, 0)
	}
	got := ConnectivityThresholdIn(nil, geom.Origin, pts)
	want := ConnectivityThresholdDenseIn(nil, geom.Origin, pts)
	if got != want {
		t.Fatalf("subnormal extent ℓ* = %x, dense = %x", got, want)
	}
}
