// Package diskgraph provides the δ-disk-graph analytics the paper's
// parameters are defined on: connectivity, the connectivity threshold ℓ*
// (the bottleneck edge of the Euclidean MST), the ℓ-eccentricity ξℓ (max
// shortest-path distance from the source in the ℓ-disk graph), and
// hop-bounded paths.
//
// The vertex set is always P ∪ {s} with the source s stored at index 0 and
// the points of P at indices 1..n, matching the paper's convention.
package diskgraph

import (
	"math"
	"sort"

	"freezetag/internal/geom"
	"freezetag/internal/spatial"
)

// Graph is the δ-disk graph over a source and a point set. Edges connect
// vertices at metric distance ≤ δ and are weighted by that distance (ℓ2
// unless built with NewIn — under other metrics the "disks" are the metric's
// balls: diamonds for ℓ1, squares for ℓ∞).
type Graph struct {
	// Pts holds all vertex positions; Pts[0] is the source.
	Pts   []geom.Point
	Delta float64
	adj   [][]edge
}

type edge struct {
	to int
	w  float64
}

// New builds the Euclidean δ-disk graph of {source} ∪ points.
func New(source geom.Point, points []geom.Point, delta float64) *Graph {
	return NewIn(nil, source, points, delta)
}

// NewIn builds the δ-ball graph of {source} ∪ points under metric m (nil
// defaults to ℓ2). The adjacency lists are built with a spatial grid, so
// construction is near-linear for bounded density; it degrades gracefully
// for dense sets.
func NewIn(m geom.Metric, source geom.Point, points []geom.Point, delta float64) *Graph {
	pts := make([]geom.Point, 0, len(points)+1)
	pts = append(pts, source)
	pts = append(pts, points...)
	return newFromPts(geom.MetricOrL2(m), pts, delta)
}

// newFromPts builds the δ-ball graph over an already-assembled vertex slice
// (taking ownership of it) — the parameter derivation materializes the
// slice once and shares it between the bottleneck, radius, and eccentricity
// passes. m must be non-nil.
func newFromPts(m geom.Metric, pts []geom.Point, delta float64) *Graph {
	g := &Graph{Pts: pts, Delta: delta, adj: make([][]edge, len(pts))}
	if delta <= 0 {
		return g
	}
	idx := spatial.NewGridInCap(m, delta, len(pts))
	for i, p := range pts {
		idx.Insert(i, p)
	}
	var buf []int
	for i, p := range pts {
		buf = idx.Within(buf[:0], p, delta)
		for _, j := range buf {
			if j == i {
				continue
			}
			g.adj[i] = append(g.adj[i], edge{to: j, w: m.Dist(p, pts[j])})
		}
		sort.Slice(g.adj[i], func(a, b int) bool { return g.adj[i][a].to < g.adj[i][b].to })
	}
	return g
}

// N returns the number of vertices (n+1 including the source).
func (g *Graph) N() int { return len(g.Pts) }

// Neighbors returns the indices adjacent to vertex v in ascending order.
func (g *Graph) Neighbors(v int) []int {
	out := make([]int, len(g.adj[v]))
	for i, e := range g.adj[v] {
		out[i] = e.to
	}
	return out
}

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return len(g.adj[v]) }

// Connected reports whether the graph is connected. An empty or single-vertex
// graph is connected.
func (g *Graph) Connected() bool {
	n := g.N()
	if n <= 1 {
		return true
	}
	seen := make([]bool, n)
	stack := []int{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[v] {
			if !seen[e.to] {
				seen[e.to] = true
				count++
				stack = append(stack, e.to)
			}
		}
	}
	return count == n
}

// ShortestDists runs Dijkstra from vertex src and returns the array of
// shortest-path distances (math.Inf(1) for unreachable vertices).
func (g *Graph) ShortestDists(src int) []float64 {
	n := g.N()
	dist := make([]float64, n)
	for i := range dist {
		dist[i] = math.Inf(1)
	}
	dist[src] = 0
	pq := distHeap{{v: src, d: 0}}
	for len(pq) > 0 {
		item := pq.pop()
		if item.d > dist[item.v] {
			continue
		}
		for _, e := range g.adj[item.v] {
			if nd := item.d + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				pq.push(distItem{v: e.to, d: nd})
			}
		}
	}
	return dist
}

// Eccentricity returns ξ = max_v dist(src, v), the weighted eccentricity of
// src. It equals the minimum weighted depth of a spanning tree rooted at src
// (the shortest-path tree realizes it; no spanning tree can do better since
// tree paths are graph paths). Returns +Inf when the graph is disconnected.
func (g *Graph) Eccentricity(src int) float64 {
	dist := g.ShortestDists(src)
	var ecc float64
	for _, d := range dist {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// HopDists returns the hop counts (unweighted BFS distances) from src, with
// -1 for unreachable vertices.
func (g *Graph) HopDists(src int) []int {
	n := g.N()
	hops := make([]int, n)
	for i := range hops {
		hops[i] = -1
	}
	hops[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range g.adj[v] {
			if hops[e.to] == -1 {
				hops[e.to] = hops[v] + 1
				queue = append(queue, e.to)
			}
		}
	}
	return hops
}

// ShortestPath returns one shortest path (as vertex indices) from src to dst,
// or nil if dst is unreachable.
func (g *Graph) ShortestPath(src, dst int) []int {
	n := g.N()
	dist := make([]float64, n)
	prev := make([]int, n)
	for i := range dist {
		dist[i] = math.Inf(1)
		prev[i] = -1
	}
	dist[src] = 0
	pq := distHeap{{v: src, d: 0}}
	for len(pq) > 0 {
		item := pq.pop()
		if item.d > dist[item.v] {
			continue
		}
		if item.v == dst {
			break
		}
		for _, e := range g.adj[item.v] {
			if nd := item.d + e.w; nd < dist[e.to] {
				dist[e.to] = nd
				prev[e.to] = item.v
				pq.push(distItem{v: e.to, d: nd})
			}
		}
	}
	if math.IsInf(dist[dst], 1) {
		return nil
	}
	var path []int
	for v := dst; v != -1; v = prev[v] {
		path = append(path, v)
	}
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

type distItem struct {
	v int
	d float64
}

// distHeap is a typed binary min-heap by distance. The hand-rolled sift
// loops perform the same comparisons container/heap would, without boxing
// every item through an interface on push and pop.
type distHeap []distItem

func (h distHeap) less(i, j int) bool { return h[i].d < h[j].d }

func (h *distHeap) push(it distItem) {
	*h = append(*h, it)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(i, parent) {
			break
		}
		s[i], s[parent] = s[parent], s[i]
		i = parent
	}
}

func (h *distHeap) pop() distItem {
	s := *h
	n := len(s) - 1
	top := s[0]
	s[0] = s[n]
	s = s[:n]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && s.less(l, smallest) {
			smallest = l
		}
		if r < n && s.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			break
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
	return top
}
