package diskgraph

import (
	"math"

	"freezetag/internal/geom"
)

// Params bundles the three instance parameters the paper's bounds are stated
// in, computed exactly from a source and point set.
type Params struct {
	Rho float64 // ρ*: max distance from the source to any point of P
	Ell float64 // ℓ*: connectivity threshold of (P, s)
	Xi  float64 // ξℓ*: ℓ*-eccentricity of the source (see XiAt for other ℓ)
	N   int     // |P|
}

// ComputeParams returns the exact Euclidean (ρ*, ℓ*, ξ_{ℓ*}) of the instance.
func ComputeParams(source geom.Point, points []geom.Point) Params {
	return ComputeParamsIn(nil, source, points)
}

// ComputeParamsIn returns the exact (ρ*, ℓ*, ξ_{ℓ*}) of the instance under
// metric m (nil defaults to ℓ2). The three parameters are all
// metric-dependent: the same point set has a different radius, connectivity
// threshold, and eccentricity under ℓ1, ℓ2 and ℓ∞.
//
// The derivation is the solver service's cold path, so it is organized
// around sharing: the vertex slice is materialized once; ℓ* comes from the
// grid-accelerated bottleneck pass (near-linear for well-conditioned sets,
// see ConnectivityThresholdIn); ρ* from the grid-pruned farthest-point
// scan; and the δ-ball graph is built once, at δ = ℓ*, for ξ. Every value
// is bit-identical to the dense derivation it replaced.
func ComputeParamsIn(m geom.Metric, source geom.Point, points []geom.Point) Params {
	m = geom.MetricOrL2(m)
	pts := make([]geom.Point, 0, len(points)+1)
	pts = append(pts, source)
	pts = append(pts, points...)
	p := Params{
		Rho: geom.MaxDistFromGridIn(m, source, points),
		Ell: bottleneckIn(m, pts),
		N:   len(points),
	}
	if len(points) > 0 {
		p.Xi = newFromPts(m, pts, p.Ell).Eccentricity(0)
	}
	return p
}

// ConnectivityThreshold computes the Euclidean ℓ*.
func ConnectivityThreshold(source geom.Point, points []geom.Point) float64 {
	return ConnectivityThresholdIn(nil, source, points)
}

// ConnectivityThresholdIn computes ℓ* under metric m: the least δ making the
// δ-ball graph of P ∪ {s} connected. It equals the largest edge weight of
// the metric minimum spanning tree (the bottleneck connectivity radius).
// Small inputs run the dense O(n²) Prim pass; large ones a spatial-grid
// Borůvka whose component-merging edges are found with nearest-foreign-
// vertex queries — near-linear for well-conditioned point sets, exact for
// all (see bottleneckGridIn), and bit-identical to the dense pass, which
// remains available as ConnectivityThresholdDenseIn and serves as the
// property-test oracle. Returns 0 when P is empty.
func ConnectivityThresholdIn(m geom.Metric, source geom.Point, points []geom.Point) float64 {
	m = geom.MetricOrL2(m)
	pts := make([]geom.Point, 0, len(points)+1)
	pts = append(pts, source)
	pts = append(pts, points...)
	return bottleneckIn(m, pts)
}

// denseBottleneckCutoff is the vertex count below which the dense Prim pass
// beats the grid build it would amortize. Purely a performance dispatch:
// both passes return identical floats.
const denseBottleneckCutoff = 96

// bottleneckIn computes the bottleneck-MST weight of the complete metric
// graph over pts, dispatching between the dense and grid passes.
func bottleneckIn(m geom.Metric, pts []geom.Point) float64 {
	if len(pts) <= denseBottleneckCutoff {
		return bottleneckDenseIn(m, pts)
	}
	minX, minY, maxX, maxY := math.Inf(1), math.Inf(1), math.Inf(-1), math.Inf(-1)
	for _, p := range pts {
		minX = math.Min(minX, p.X)
		minY = math.Min(minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	ext := math.Max(maxX-minX, maxY-minY)
	if ext == 0 {
		return 0 // every vertex coincides: all edges weigh exactly 0
	}
	cell := ext / math.Sqrt(float64(len(pts)))
	if math.IsNaN(ext) || math.IsInf(ext, 0) || cell == 0 {
		// Degenerate coordinates: NaN/Inf spreads, or a subnormal extent
		// whose cell size underflows to 0 (the coordinate divisions would
		// then overflow int32). Keep the dense pass's exact behavior.
		return bottleneckDenseIn(m, pts)
	}
	return bottleneckGridIn(m, pts, minX, minY, cell)
}

// ConnectivityThresholdDenseIn is the dense O(n²)-time O(n)-memory Prim
// pass over the complete metric graph — the oracle the grid pass is
// cross-checked against, and the fallback for degenerate coordinates.
func ConnectivityThresholdDenseIn(m geom.Metric, source geom.Point, points []geom.Point) float64 {
	m = geom.MetricOrL2(m)
	pts := make([]geom.Point, 0, len(points)+1)
	pts = append(pts, source)
	pts = append(pts, points...)
	return bottleneckDenseIn(m, pts)
}

func bottleneckDenseIn(m geom.Metric, pts []geom.Point) float64 {
	n := len(pts)
	if n <= 1 {
		return 0
	}
	best := make([]float64, n) // cheapest connection cost into the tree
	inTree := make([]bool, n)
	for i := range best {
		best[i] = math.Inf(1)
	}
	best[0] = 0
	var bottleneck float64
	for iter := 0; iter < n; iter++ {
		v := -1
		bd := math.Inf(1)
		for i := 0; i < n; i++ {
			if !inTree[i] && best[i] < bd {
				v, bd = i, best[i]
			}
		}
		if v == -1 {
			break // disconnected input is impossible: complete metric graph
		}
		inTree[v] = true
		if bd > bottleneck {
			bottleneck = bd
		}
		for i := 0; i < n; i++ {
			if !inTree[i] {
				if d := m.Dist(pts[v], pts[i]); d < best[i] {
					best[i] = d
				}
			}
		}
	}
	return bottleneck
}

// XiAt computes the Euclidean ℓ-eccentricity ξℓ of the source.
func XiAt(source geom.Point, points []geom.Point, ell float64) float64 {
	return XiAtIn(nil, source, points, ell)
}

// XiAtIn computes ξℓ under metric m: the maximum shortest-path distance from
// s in the ℓ-ball graph of P ∪ {s}, equivalently the minimum weighted depth
// over spanning trees rooted at s. Returns +Inf when the ℓ-ball graph is
// disconnected.
func XiAtIn(m geom.Metric, source geom.Point, points []geom.Point, ell float64) float64 {
	if len(points) == 0 {
		return 0
	}
	g := NewIn(m, source, points, ell)
	return g.Eccentricity(0)
}

// Admissible reports whether the tuple (ℓ, ρ, n) is admissible per the paper:
// ℓ ≤ ρ ≤ n·ℓ (with ℓ, ρ > 0).
func Admissible(ell, rho float64, n int) bool {
	return ell > 0 && rho >= ell && rho <= float64(n)*ell
}

// CheckProposition1 verifies the inequality chain of Proposition 1 for the
// instance: 0 < ℓ* ≤ ρ* ≤ ξℓ ≤ n·ℓ* (evaluated at ℓ = ℓ*). It returns true
// when every inequality holds within geom.Eps, and is exercised by the
// property-based test-suite on random instances.
func CheckProposition1(source geom.Point, points []geom.Point) bool {
	if len(points) == 0 {
		return true
	}
	p := ComputeParams(source, points)
	eps := geom.Eps * float64(len(points)+1)
	return p.Ell > 0 &&
		p.Ell <= p.Rho+eps &&
		p.Rho <= p.Xi+eps &&
		p.Xi <= float64(p.N)*p.Ell+eps
}
