// Package wander is the adversary's Byzantine movement program, split into a
// leaf package (geometry and RNG streams only) so the fault-injection layer
// can use it without importing the replay adversary, which itself sits above
// the algorithms it attacks.
package wander

import (
	"freezetag/internal/geom"
	"freezetag/internal/rngstream"
)

// Program returns the movement program of Byzantine robots under a fault
// plan: robot id, when handed work, instead wanders through `steps` points
// drawn uniformly from region (≤ 0 means 4). The path is a pure function of
// (seed, id) — each robot draws from its own splitmix64 stream — so an
// adversarial run is as deterministic as a faithful one, which is what lets
// fault-injected results be content-addressed and replayed.
//
// Wandering inside the instance's bounding region is the worst reasonable
// behavior for a wake schedule: the robot stays plausible (it moves, it
// spends energy, it may even stand co-located with sleepers) while
// contributing nothing — the disruption the self-stabilization literature's
// "malicious actions" model captures.
func Program(seed int64, region geom.Rect, steps int) func(id int, from geom.Point) []geom.Point {
	if steps <= 0 {
		steps = 4
	}
	w, h := region.Width(), region.Height()
	return func(id int, from geom.Point) []geom.Point {
		rnd := rngstream.New(seed, id)
		path := make([]geom.Point, steps)
		for i := range path {
			path[i] = geom.Pt(region.Min.X+rnd.Float64()*w, region.Min.Y+rnd.Float64()*h)
		}
		return path
	}
}
