package adversary

import (
	"fmt"

	"freezetag/internal/dftp"
	"freezetag/internal/explore"
	"freezetag/internal/geom"
	"freezetag/internal/instance"
	"freezetag/internal/sim"
)

// Theorem2Result reports one adversarial replay experiment.
type Theorem2Result struct {
	// Instance is the final adversarial placement.
	Instance *instance.Instance
	// Makespan is the algorithm's makespan on the final placement.
	Makespan float64
	// Rounds is the number of replay iterations performed.
	Rounds int
}

// Theorem2 realizes the Theorem 2 construction against alg: one hidden robot
// per disk D_c of the connected center family (Figure 5a), placed by replay
// at the last-covered cell of its disk. It returns the hardened instance and
// the algorithm's makespan on it, which Theorem 2 lower-bounds by
// Ω(ρ + ℓ²log(ρ/ℓ)).
func Theorem2(alg dftp.Algorithm, rho, ell float64, n, replays int) (Theorem2Result, error) {
	all := instance.CentersC(rho, ell)
	m := n
	if m > len(all)-1 {
		m = len(all) - 1
	}
	centers := instance.ConnectedCenters(rho, ell, m)
	disks := make([]geom.Disk, len(centers))
	for i, c := range centers {
		disks[i] = geom.DiskAt(c, ell/4)
	}
	// Initial guess: disk centers.
	pts := append([]geom.Point(nil), centers...)
	region := geom.RectWH(geom.Pt(-rho-1, -rho-1), 2*rho+2, 2*rho+2)

	var last sim.Result
	for round := 0; round < replays; round++ {
		inst := &instance.Instance{
			Name:   fmt.Sprintf("thm2-%s-r%d", alg.Name(), round),
			Source: geom.Origin,
			Points: pts,
		}
		tracker := NewTracker(region, ell/16)
		e := sim.NewEngine(sim.Config{
			Source:   inst.Source,
			Sleepers: inst.Points,
			Trace: func(ev sim.Event) {
				if ev.Kind == "look" {
					tracker.Mark(ev.Pos, ev.T)
				}
			},
		})
		tup := dftp.Tuple{Ell: ell, Rho: rho, N: len(pts)}
		rep := alg.Install(e, tup)
		res, err := e.Run()
		if err != nil {
			return Theorem2Result{}, fmt.Errorf("adversary: replay %d: %w", round, err)
		}
		if !res.AllAwake {
			return Theorem2Result{}, fmt.Errorf("adversary: replay %d left robots asleep", round)
		}
		if len(rep.Misses) > 0 {
			return Theorem2Result{}, fmt.Errorf("adversary: replay %d schedule miss: %s", round, rep.Misses[0])
		}
		last = res
		// Relocate every hidden robot to the last-covered cell of its disk.
		next := make([]geom.Point, len(pts))
		for i, d := range disks {
			pos, _, _ := tracker.LastCovered(d)
			next[i] = pos
		}
		pts = next
	}
	final := &instance.Instance{
		Name:   fmt.Sprintf("thm2-%s-final", alg.Name()),
		Source: geom.Origin,
		Points: pts,
	}
	return Theorem2Result{Instance: final, Makespan: last.Makespan, Rounds: replays}, nil
}

// Theorem3Result reports one energy-threshold probe.
type Theorem3Result struct {
	Budget    float64
	Found     bool
	Energy    float64 // energy actually spent by the source
	Threshold float64 // the paper's π(ℓ²−1)/2 bound, A·(ℓ²−1)/2 per metric
}

// Theorem3 probes the energy lower bound: a single hidden robot in B(0, ℓ)
// placed at the spot a budget-B spiral searcher covers last. Because the
// spiral trajectory is oblivious (it does not depend on the target until
// discovery), a single replay realizes the exact adversary. Per Theorem 3,
// budgets below π(ℓ²−1)/2 cannot find the robot.
func Theorem3(ell, budget float64) Theorem3Result {
	return Theorem3In(nil, ell, budget)
}

// Theorem3In is Theorem 3 under metric m (nil defaults to ℓ2): the hidden
// robot lives in the metric ball B_m(0, ℓ), the spiral's winding pitch,
// travel costs, and looks all follow m, and the area argument generalizes
// with the metric's unit-ball area A — sweeping B_m(0, ℓ) minus the freebie
// radius-1 look costs A(ℓ²−1)/2, so that is the reported Threshold (2 for
// ℓ1, π for ℓ2, 4 for ℓ∞).
func Theorem3In(m geom.Metric, ell, budget float64) Theorem3Result {
	m = geom.MetricOrL2(m)
	disk := geom.DiskAt(geom.Origin, ell)
	threshold := geom.UnitBallArea(m) * (ell*ell - 1) / 2
	// The spiral is calibrated in Euclidean radii, but the hidden robot lives
	// in the metric ball: sweep out to its ℓ2 circumradius (ℓ√2 for ℓ∞, whose
	// corners an ℓ2-radius-ℓ spiral would never visit; exactly ℓ for ℓ1/ℓ2).
	sweepR := ell * geom.CircumradiusL2(m)
	region := geom.RectWH(geom.Pt(-sweepR-1, -sweepR-1), 2*sweepR+2, 2*sweepR+2)

	// Pass 1: record what a budget-B spiral covers, with the target far away
	// so the trajectory is the full budget-limited spiral.
	tracker := NewTrackerIn(m, region, ell/32)
	e1 := sim.NewEngine(sim.Config{
		Source:   geom.Origin,
		Sleepers: []geom.Point{geom.Pt(4*ell, 4*ell)},
		Budget:   budget,
		Metric:   m,
		Trace: func(ev sim.Event) {
			if ev.Kind == "look" {
				tracker.Mark(ev.Pos, ev.T)
			}
		},
	})
	e1.Spawn(sim.SourceID, func(p *sim.Proc) {
		_, _, _ = explore.Spiral(p, sweepR)
	})
	if _, err := e1.Run(); err != nil {
		return Theorem3Result{Budget: budget, Threshold: threshold}
	}

	// Adversarial placement: last-covered (or uncovered) cell of B_m(0, ℓ).
	target, _, _ := tracker.LastCovered(disk)

	// Pass 2: the actual hunt.
	e2 := sim.NewEngine(sim.Config{
		Source:   geom.Origin,
		Sleepers: []geom.Point{target},
		Budget:   budget,
		Metric:   m,
	})
	var found bool
	e2.Spawn(sim.SourceID, func(p *sim.Proc) {
		_, ok, _ := explore.Spiral(p, sweepR)
		found = ok
	})
	res, err := e2.Run()
	out := Theorem3Result{
		Budget:    budget,
		Found:     found,
		Threshold: threshold,
	}
	if err == nil {
		out.Energy = res.MaxEnergy
	}
	return out
}
