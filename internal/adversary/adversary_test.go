package adversary

import (
	"math"
	"testing"

	"freezetag/internal/dftp"
	"freezetag/internal/geom"
	"freezetag/internal/instance"
)

func TestTrackerMarkAndQuery(t *testing.T) {
	region := geom.RectWH(geom.Pt(-5, -5), 10, 10)
	tr := NewTracker(region, 0.25)
	d := geom.DiskAt(geom.Origin, 2)
	if f := tr.CoveredFraction(d); f != 0 {
		t.Fatalf("initial coverage = %v", f)
	}
	// One snapshot at the center covers the radius-1 core.
	tr.Mark(geom.Origin, 1)
	f := tr.CoveredFraction(d)
	if f <= 0.15 || f >= 0.5 {
		// Area ratio is (1/2)² = 0.25.
		t.Errorf("coverage after one center snapshot = %v, want ≈ 0.25", f)
	}
	pos, _, covered := tr.LastCovered(d)
	if covered {
		t.Error("disk should not be fully covered")
	}
	if pos.Dist(geom.Origin) <= 1 {
		t.Errorf("uncovered pick %v lies in the covered core", pos)
	}
	if !d.Contains(pos) {
		t.Errorf("uncovered pick %v outside the disk", pos)
	}
}

func TestTrackerFullCoverage(t *testing.T) {
	region := geom.RectWH(geom.Pt(-3, -3), 6, 6)
	tr := NewTracker(region, 0.2)
	d := geom.DiskAt(geom.Origin, 1.5)
	// Cover everything with a dense sweep; later snapshots must win the
	// last-covered query.
	var lastP geom.Point
	tm := 0.0
	for x := -2.5; x <= 2.5; x += 0.5 {
		for y := -2.5; y <= 2.5; y += 0.5 {
			tm++
			tr.Mark(geom.Pt(x, y), tm)
			lastP = geom.Pt(x, y)
		}
	}
	_ = lastP
	pos, when, covered := tr.LastCovered(d)
	if !covered {
		t.Fatal("disk should be covered")
	}
	if when <= 0 {
		t.Errorf("cover time = %v", when)
	}
	if !d.Contains(pos) {
		t.Errorf("last-covered %v outside disk", pos)
	}
	if f := tr.CoveredFraction(d); f != 1 {
		t.Errorf("fraction = %v, want 1", f)
	}
}

func TestTheorem3BelowThreshold(t *testing.T) {
	ell := 6.0
	threshold := math.Pi * (ell*ell - 1) / 2 // ≈ 55
	res := Theorem3(ell, threshold*0.3)
	if res.Found {
		t.Errorf("budget %.3g (0.3×threshold %.3g) should not find the adversarial robot",
			res.Budget, threshold)
	}
}

func TestTheorem3AmpleBudget(t *testing.T) {
	ell := 6.0
	// The spiral needs ~πℓ²/pitch plus slack; give a generous multiple.
	res := Theorem3(ell, 12*math.Pi*ell*ell)
	if !res.Found {
		t.Errorf("ample budget should find the robot (energy %v)", res.Energy)
	}
}

func TestTheorem3Monotone(t *testing.T) {
	// Found-status must be monotone in budget across a sweep.
	ell := 5.0
	prev := false
	for _, mult := range []float64{0.2, 0.5, 1, 3, 8, 15} {
		res := Theorem3(ell, mult*math.Pi*ell*ell/2)
		if prev && !res.Found {
			t.Errorf("found at smaller budget but not at %v×", mult)
		}
		if res.Found {
			prev = true
		}
	}
	if !prev {
		t.Error("never found even at 15× the threshold")
	}
}

func TestTheorem2HardensInstance(t *testing.T) {
	// A small adversarial run: the hardened instance must still satisfy the
	// construction invariants (ℓ-connected, radius ≤ ρ) and force a
	// nontrivial makespan.
	rho, ell := 8.0, 2.0
	out, err := Theorem2(dftp.ASeparator{}, rho, ell, 40, 2)
	if err != nil {
		t.Fatal(err)
	}
	p := out.Instance.Params()
	if p.Ell > ell+1e-9 {
		t.Errorf("hardened ℓ* = %v exceeds ℓ = %v (Lemma 13 broken)", p.Ell, ell)
	}
	if p.Rho > rho+1e-9 {
		t.Errorf("hardened ρ* = %v exceeds ρ", p.Rho)
	}
	if out.Makespan < rho {
		t.Errorf("makespan %v below ρ = %v", out.Makespan, rho)
	}
}

func TestTheorem2HarderThanCenters(t *testing.T) {
	// The adversarial placement should not be easier than the naive
	// center placement by more than noise.
	rho, ell := 8.0, 2.0
	adv, err := Theorem2(dftp.ASeparator{}, rho, ell, 30, 2)
	if err != nil {
		t.Fatal(err)
	}
	base := instance.CentersOnly(rho, ell, 30)
	tup := dftp.Tuple{Ell: ell, Rho: rho, N: base.N()}
	res, _, err := dftp.Solve(dftp.ASeparator{}, base, tup, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllAwake {
		t.Fatal("baseline run incomplete")
	}
	if adv.Makespan < 0.5*res.Makespan {
		t.Errorf("adversarial makespan %v far below center-placement %v",
			adv.Makespan, res.Makespan)
	}
}
