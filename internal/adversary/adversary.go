// Package adversary implements the paper's lower-bound constructions
// (Theorems 2 and 3) against concrete algorithm executions.
//
// The paper's adversary places each hidden robot at the exact last point of
// its disk the algorithm explores. For a deterministic algorithm this can be
// realized by replay: run the algorithm, record the time at which every cell
// of every disk was first covered by a radius-1 snapshot, move each hidden
// robot to (the center of) the cell of its disk covered last, and run again.
// Each replay round weakly increases the work the algorithm must do before
// its first discovery in each disk; a handful of rounds realizes the
// Ω(area/2) sweeping cost the bounds rest on.
//
// Substitution note (DESIGN.md §6): coverage is tracked on a finite cell
// grid (resolution ℓ/16), so placements are adversarial up to one cell — a
// (1−ε) factor on the area argument, irrelevant to the Ω(·) shape.
package adversary

import (
	"math"

	"freezetag/internal/geom"
)

// Tracker accumulates look-coverage over a rectangular region at a fixed
// cell resolution and remembers when each cell was first covered.
type Tracker struct {
	m      geom.Metric
	region geom.Rect
	cell   float64
	nx, ny int
	// firstCover[i] is the virtual time cell i was first covered by a
	// snapshot; NaN when never covered.
	firstCover []float64
}

// NewTracker builds a tracker over region with the given cell size and
// Euclidean looks.
func NewTracker(region geom.Rect, cell float64) *Tracker {
	return NewTrackerIn(nil, region, cell)
}

// NewTrackerIn builds a tracker whose radius-1 looks are measured under
// metric m (nil defaults to ℓ2), matching a simulation run under the same
// metric.
func NewTrackerIn(m geom.Metric, region geom.Rect, cell float64) *Tracker {
	if cell <= 0 {
		panic("adversary: cell size must be positive")
	}
	nx := int(math.Ceil(region.Width()/cell)) + 1
	ny := int(math.Ceil(region.Height()/cell)) + 1
	fc := make([]float64, nx*ny)
	for i := range fc {
		fc[i] = math.NaN()
	}
	return &Tracker{m: geom.MetricOrL2(m), region: region, cell: cell, nx: nx, ny: ny, firstCover: fc}
}

func (t *Tracker) cellCenter(ix, iy int) geom.Point {
	return geom.Pt(
		t.region.Min.X+(float64(ix)+0.5)*t.cell,
		t.region.Min.Y+(float64(iy)+0.5)*t.cell,
	)
}

// Mark records a radius-1 snapshot taken at p at virtual time tm: every cell
// whose center lies within metric distance 1 of p is covered. The scan box
// p ± 1 bounds the look ball under every supported metric (each dominates
// the Chebyshev distance, so its unit ball fits the unit square).
func (t *Tracker) Mark(p geom.Point, tm float64) {
	minX := int(math.Floor((p.X - 1 - t.region.Min.X) / t.cell))
	maxX := int(math.Ceil((p.X + 1 - t.region.Min.X) / t.cell))
	minY := int(math.Floor((p.Y - 1 - t.region.Min.Y) / t.cell))
	maxY := int(math.Ceil((p.Y + 1 - t.region.Min.Y) / t.cell))
	for ix := max(0, minX); ix <= maxX && ix < t.nx; ix++ {
		for iy := max(0, minY); iy <= maxY && iy < t.ny; iy++ {
			idx := iy*t.nx + ix
			if !math.IsNaN(t.firstCover[idx]) {
				continue
			}
			if t.m.Dist(t.cellCenter(ix, iy), p) <= 1+geom.Eps {
				t.firstCover[idx] = tm
			}
		}
	}
}

// LastCovered returns the point of the disk covered latest (preferring any
// never-covered cell) along with its cover time; covered == false when some
// cell of the disk was never covered at all. The disk is measured under the
// tracker's metric: for a NewTrackerIn tracker, d is the metric ball
// B_m(d.Center, d.R).
func (t *Tracker) LastCovered(d geom.Disk) (pos geom.Point, when float64, covered bool) {
	bestT := math.Inf(-1)
	var bestP geom.Point
	found := false
	minX := int(math.Floor((d.Center.X - d.R - t.region.Min.X) / t.cell))
	maxX := int(math.Ceil((d.Center.X + d.R - t.region.Min.X) / t.cell))
	minY := int(math.Floor((d.Center.Y - d.R - t.region.Min.Y) / t.cell))
	maxY := int(math.Ceil((d.Center.Y + d.R - t.region.Min.Y) / t.cell))
	for ix := max(0, minX); ix <= maxX && ix < t.nx; ix++ {
		for iy := max(0, minY); iy <= maxY && iy < t.ny; iy++ {
			c := t.cellCenter(ix, iy)
			// Keep candidate cells strictly inside the disk so adversarial
			// placements never leak outside D_c (which would break the
			// instance's ℓ-connectivity guarantee).
			if t.m.Dist(c, d.Center) > d.R-t.cell {
				continue
			}
			ft := t.firstCover[iy*t.nx+ix]
			if math.IsNaN(ft) {
				return c, math.Inf(1), false
			}
			if ft > bestT {
				bestT, bestP, found = ft, c, true
			}
		}
	}
	if !found {
		// Disk smaller than a cell: fall back to its center.
		return d.Center, 0, true
	}
	return bestP, bestT, true
}

// CoveredFraction returns the fraction of disk cells covered, with the disk
// measured under the tracker's metric.
func (t *Tracker) CoveredFraction(d geom.Disk) float64 {
	total, cov := 0, 0
	minX := int(math.Floor((d.Center.X - d.R - t.region.Min.X) / t.cell))
	maxX := int(math.Ceil((d.Center.X + d.R - t.region.Min.X) / t.cell))
	minY := int(math.Floor((d.Center.Y - d.R - t.region.Min.Y) / t.cell))
	maxY := int(math.Ceil((d.Center.Y + d.R - t.region.Min.Y) / t.cell))
	for ix := max(0, minX); ix <= maxX && ix < t.nx; ix++ {
		for iy := max(0, minY); iy <= maxY && iy < t.ny; iy++ {
			if t.m.Dist(t.cellCenter(ix, iy), d.Center) > d.R+geom.Eps {
				continue
			}
			total++
			if !math.IsNaN(t.firstCover[iy*t.nx+ix]) {
				cov++
			}
		}
	}
	if total == 0 {
		return 1
	}
	return float64(cov) / float64(total)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
