package rngstream

import "testing"

// The derivation is a published contract: experiment tables and portfolio
// racer identities both embed these seeds, so the finalizer must not drift.
func TestTrialSeedContract(t *testing.T) {
	seen := map[int64]int{}
	for i := 0; i < 1000; i++ {
		s := TrialSeed(42, i)
		if s != TrialSeed(42, i) {
			t.Fatalf("not deterministic at %d", i)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("collision: indices %d and %d both got %d", prev, i, s)
		}
		seen[s] = i
	}
	if TrialSeed(1, 0) == TrialSeed(2, 0) {
		t.Error("different sweep seeds produced the same stream seed")
	}
}

func TestNewStreamsIndependent(t *testing.T) {
	a, b := New(7, 0), New(7, 1)
	same := 0
	for i := 0; i < 16; i++ {
		if a.Int63() == b.Int63() {
			same++
		}
	}
	if same == 16 {
		t.Fatal("streams 0 and 1 are identical")
	}
	c, d := New(7, 0), New(7, 0)
	for i := 0; i < 16; i++ {
		if c.Int63() != d.Int63() {
			t.Fatal("the same stream replayed differently")
		}
	}
}
