// Package rngstream derives independent deterministic RNG streams from a
// single sweep seed. It is the randomness contract shared by the parallel
// experiment engine (internal/experiments) and the portfolio racing engine
// (internal/portfolio): every unit of concurrent work draws only from its
// private stream, decided by (seed, index) alone, so results never depend on
// worker count or execution order.
package rngstream

import "math/rand"

// TrialSeed derives the RNG seed of stream i from the sweep seed with a
// splitmix64 finalizer. Streams are decided by (seed, i) alone — independent
// of worker count and execution order — which is what makes parallel fan-out
// bit-identical to serial execution.
func TrialSeed(seed int64, i int) int64 {
	z := uint64(seed) + 0x9E3779B97F4A7C15*(uint64(i)+1)
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// New returns stream i of the sweep seed as a ready-to-use *rand.Rand.
func New(seed int64, i int) *rand.Rand {
	return rand.New(rand.NewSource(TrialSeed(seed, i)))
}
