package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"sync"
	"testing"
	"time"

	"freezetag/internal/dftp"
	"freezetag/internal/instance"
	"freezetag/internal/sim"
)

// solveDirect runs the resolved request straight through the library
// facade, bypassing the service.
func solveDirect(r resolved) (sim.Result, *dftp.Report, error) {
	return dftp.Solve(r.alg, r.inst, r.tup, r.budget)
}

func walkRequest(seed int64) SolveRequest {
	return SolveRequest{Algorithm: "agrid", Family: "walk", N: 24, Param: 0.9, Seed: seed}
}

func newTestService(t *testing.T, cfg Config) *Service {
	t.Helper()
	s := New(cfg)
	t.Cleanup(s.Close)
	return s
}

// The acceptance criterion of the PR: serving the same request twice runs
// exactly one simulation, and the cached bytes are identical to the cold
// ones.
func TestSolveCacheByteIdentical(t *testing.T) {
	s := newTestService(t, Config{Workers: 2})

	cold, err := s.Solve(walkRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	if cold.Hit {
		t.Fatal("first solve reported a cache hit")
	}
	warm, err := s.Solve(walkRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Hit {
		t.Fatal("second identical solve missed the cache")
	}
	if !bytes.Equal(cold.Body, warm.Body) {
		t.Fatalf("cached response differs from cold response:\n%s\nvs\n%s", cold.Body, warm.Body)
	}
	if warm.Hash != cold.Hash {
		t.Fatalf("hash changed between identical requests: %s vs %s", cold.Hash, warm.Hash)
	}
	if got := s.Stats().Solves; got != 1 {
		t.Fatalf("two identical requests ran %d simulations, want 1", got)
	}

	var resp SolveResponse
	if err := json.Unmarshal(cold.Body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Hash != cold.Hash || !resp.AllAwake || resp.Algorithm != "AGrid" || resp.N != 24 {
		t.Fatalf("implausible response: %+v", resp)
	}
}

// Concurrent identical requests must coalesce into one simulation
// (single-flight), all receiving identical bytes. Run with -race.
func TestConcurrentSingleFlight(t *testing.T) {
	s := newTestService(t, Config{Workers: 4})
	const goroutines = 32

	bodies := make([][]byte, goroutines)
	errs := make([]error, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func(i int) {
			defer wg.Done()
			sv, err := s.Solve(walkRequest(2))
			bodies[i], errs[i] = sv.Body, err
		}(i)
	}
	wg.Wait()

	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if !bytes.Equal(bodies[i], bodies[0]) {
			t.Fatalf("goroutine %d got different bytes", i)
		}
	}
	if got := s.Stats().Solves; got != 1 {
		t.Fatalf("%d concurrent identical requests ran %d simulations, want 1", goroutines, got)
	}
}

// Distinct concurrent requests all complete and are each simulated once.
func TestConcurrentDistinctRequests(t *testing.T) {
	s := newTestService(t, Config{Workers: 4, QueueDepth: 64})
	const distinct = 8

	var wg sync.WaitGroup
	errs := make([]error, distinct*4)
	wg.Add(len(errs))
	for i := range errs {
		go func(i int) {
			defer wg.Done()
			_, errs[i] = s.Solve(walkRequest(int64(i % distinct)))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if got := s.Stats().Solves; got != distinct {
		t.Fatalf("ran %d simulations for %d distinct requests", got, distinct)
	}
}

// A full queue sheds load with ErrQueueFull instead of blocking.
func TestQueueSheds(t *testing.T) {
	release := make(chan struct{})
	var releaseOnce sync.Once
	doRelease := func() { releaseOnce.Do(func() { close(release) }) }
	started := make(chan struct{}, 64)
	s := New(Config{Workers: 1, QueueDepth: 1, preSolve: func() {
		started <- struct{}{}
		<-release
	}})
	defer func() {
		doRelease()
		s.Close()
	}()

	// Occupy the single worker and wait until it is inside the solve...
	go s.Solve(walkRequest(10))
	<-started
	// ...fill the one queue slot and wait until the slot is really taken...
	go s.Solve(walkRequest(11))
	for len(s.jobs) == 0 {
		time.Sleep(time.Millisecond)
	}
	// ...then the next distinct request must shed immediately.
	if _, err := s.Solve(walkRequest(12)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow request got %v, want ErrQueueFull", err)
	}
	if s.Stats().Shed != 1 {
		t.Fatalf("shed counter = %d, want 1", s.Stats().Shed)
	}
	// After the backlog drains, the shed request succeeds (retry while the
	// queue is still emptying).
	doRelease()
	deadline := time.Now().Add(10 * time.Second)
	for {
		_, err := s.Solve(walkRequest(12))
		if err == nil {
			break
		}
		if !errors.Is(err, ErrQueueFull) || time.Now().After(deadline) {
			t.Fatalf("post-drain solve: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
}

// Inline instances and family parameters that generate the same instance
// share one cache entry: the key is content, not request shape.
func TestInlineAndFamilyShareKey(t *testing.T) {
	s := newTestService(t, Config{Workers: 2})

	gen, err := instance.Family("walk", 24, 0.9, 3)
	if err != nil {
		t.Fatal(err)
	}
	byFamily, err := s.Solve(walkRequest(3))
	if err != nil {
		t.Fatal(err)
	}
	inline, err := s.Solve(SolveRequest{Algorithm: "agrid", Instance: gen})
	if err != nil {
		t.Fatal(err)
	}
	if !inline.Hit || inline.Hash != byFamily.Hash {
		t.Fatalf("inline equivalent missed the cache: hit=%v %s vs %s", inline.Hit, inline.Hash, byFamily.Hash)
	}
	if s.Stats().Solves != 1 {
		t.Fatalf("ran %d simulations", s.Stats().Solves)
	}
}

func TestBadRequests(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	cases := map[string]SolveRequest{
		"unknown algorithm": {Algorithm: "dijkstra", Family: "walk", N: 8, Param: 1},
		"no instance":       {Algorithm: "agrid"},
		"unknown family":    {Algorithm: "agrid", Family: "torus", N: 8, Param: 1},
		"bad n":             {Algorithm: "agrid", Family: "walk", N: 0, Param: 1},
		"empty inline":      {Algorithm: "agrid", Instance: &instance.Instance{Name: "empty"}},
		"bad tuple": {Algorithm: "agrid", Family: "walk", N: 8, Param: 1,
			Tuple: &TupleJSON{Ell: -1, Rho: 1, N: 8}},
	}
	for name, req := range cases {
		if _, err := s.Solve(req); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: got %v, want ErrBadRequest", name, err)
		}
	}
	if s.Stats().Solves != 0 {
		t.Fatalf("bad requests ran %d simulations", s.Stats().Solves)
	}
}

func TestAlgorithmAliasesShareKey(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	a, err := s.Solve(walkRequest(5))
	if err != nil {
		t.Fatal(err)
	}
	req := walkRequest(5)
	req.Algorithm = "Grid"
	b, err := s.Solve(req)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Hit || a.Hash != b.Hash {
		t.Fatalf("alias missed the cache: %s vs %s", a.Hash, b.Hash)
	}
}

// The cache budget is approximate retained bytes: filling it past the
// budget evicts the least recently used entries, never the newest.
func TestLRUEvictionByBytes(t *testing.T) {
	// Measure one entry's footprint (traces off: entries of the same shape
	// then differ only by a few digits of formatted floats).
	probe := newTestService(t, Config{Workers: 1, DropTraces: true})
	if _, err := probe.Solve(walkRequest(100)); err != nil {
		t.Fatal(err)
	}
	probe.mu.Lock()
	per := probe.cache.total
	probe.mu.Unlock()
	if per <= 0 {
		t.Fatalf("entry footprint %d", per)
	}

	s := newTestService(t, Config{Workers: 1, DropTraces: true, CacheBytes: 2*per + per/2})
	h := make([]string, 3)
	for i := range h {
		sv, err := s.Solve(walkRequest(int64(100 + i)))
		if err != nil {
			t.Fatal(err)
		}
		h[i] = sv.Hash
	}
	if _, ok := s.Probe(h[0]); ok {
		t.Fatal("oldest entry not evicted at a two-entry byte budget")
	}
	if _, ok := s.Probe(h[2]); !ok {
		t.Fatal("newest entry missing")
	}
	st := s.Stats()
	if st.CacheLen != 2 || st.CacheBytes > st.CacheCapacity {
		t.Fatalf("cache len=%d bytes=%d capacity=%d", st.CacheLen, st.CacheBytes, st.CacheCapacity)
	}
}

// Size accounting covers the event trace, which dominates a traced entry;
// dropping traces shrinks the footprint and empties GET /v1/trace.
func TestEntrySizeCountsTrace(t *testing.T) {
	traced := newTestService(t, Config{Workers: 1})
	plain := newTestService(t, Config{Workers: 1, DropTraces: true})
	sv1, err := traced.Solve(walkRequest(101))
	if err != nil {
		t.Fatal(err)
	}
	sv2, err := plain.Solve(walkRequest(101))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sv1.Body, sv2.Body) {
		t.Fatal("trace retention changed the response bytes")
	}
	tb, pb := traced.Stats().CacheBytes, plain.Stats().CacheBytes
	if tb <= 2*pb {
		t.Fatalf("traced entry %dB should dwarf untraced %dB", tb, pb)
	}
	if ev, ok := plain.TraceEvents(sv2.Hash); ok && len(ev) > 0 {
		t.Fatal("DropTraces retained a trace")
	}
	if ev, ok := traced.TraceEvents(sv1.Hash); !ok || len(ev) == 0 {
		t.Fatal("default config dropped the trace")
	}
}

// One entry is admitted even when it alone exceeds the byte budget, so a
// tiny cache still produces hits for the latest request.
func TestLRUOversizedEntryAdmitted(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, CacheBytes: 1})
	sv, err := s.Solve(walkRequest(102))
	if err != nil {
		t.Fatal(err)
	}
	warm, err := s.Solve(walkRequest(102))
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Hit || !bytes.Equal(warm.Body, sv.Body) {
		t.Fatal("oversized entry not served back")
	}
	if got := s.Stats().CacheLen; got != 1 {
		t.Fatalf("cache len %d, want 1", got)
	}
}

// A repeated family request is served through the shape→hash memo: the hit
// path never re-generates the instance. (The memo counter is the witness;
// the O(lookup) claim is BenchmarkService_SolveCached's delta.)
func TestShapeMemoServesRepeats(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	cold, err := s.Solve(walkRequest(103))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().MemoHits; got != 0 {
		t.Fatalf("cold solve counted %d memo hits", got)
	}
	warm, err := s.Solve(walkRequest(103))
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Hit || !bytes.Equal(warm.Body, cold.Body) {
		t.Fatal("memoized repeat not served from cache")
	}
	if got := s.Stats().MemoHits; got != 1 {
		t.Fatalf("memo hits = %d, want 1", got)
	}
	// Budget spellings that hash identically share the memo entry too.
	neg := walkRequest(103)
	neg.Budget = -1
	sv, err := s.Solve(neg)
	if err != nil {
		t.Fatal(err)
	}
	if !sv.Hit || s.Stats().MemoHits != 2 {
		t.Fatalf("negative-budget alias missed the memo (hits=%d)", s.Stats().MemoHits)
	}
	// Inline instances bypass the memo but still hit the content cache.
	gen, err := instance.Family("walk", 24, 0.9, 103)
	if err != nil {
		t.Fatal(err)
	}
	inline, err := s.Solve(SolveRequest{Algorithm: "agrid", Instance: gen})
	if err != nil {
		t.Fatal(err)
	}
	if !inline.Hit || s.Stats().MemoHits != 2 {
		t.Fatalf("inline request should hit the cache without the memo (memo=%d)", s.Stats().MemoHits)
	}
}

func TestCloseRejectsNewWork(t *testing.T) {
	s := New(Config{Workers: 1})
	if _, err := s.Solve(walkRequest(7)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := s.Solve(walkRequest(8)); !errors.Is(err, ErrClosed) {
		t.Fatalf("got %v, want ErrClosed", err)
	}
	s.Close() // idempotent
}

func TestStatsAccounting(t *testing.T) {
	s := newTestService(t, Config{Workers: 2})
	for i := 0; i < 3; i++ {
		if _, err := s.Solve(walkRequest(40)); err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Misses != 1 || st.Hits != 2 || st.Solves != 1 {
		t.Fatalf("stats = %+v, want 1 miss / 2 hits / 1 solve", st)
	}
	if want := 2.0 / 3.0; st.HitRate < want-1e-9 || st.HitRate > want+1e-9 {
		t.Fatalf("hit rate %v, want %v", st.HitRate, want)
	}
	if st.Workers != 2 || st.QueueCapacity != 64 || st.CacheCapacity != 64<<20 || !st.TracesRetained {
		t.Fatalf("config echo wrong: %+v", st)
	}
}

func TestTraceEventsCached(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	sv, err := s.Solve(walkRequest(9))
	if err != nil {
		t.Fatal(err)
	}
	events, ok := s.TraceEvents(sv.Hash)
	if !ok || len(events) == 0 {
		t.Fatalf("no trace cached for %s", sv.Hash)
	}
	wakes := 0
	for _, ev := range events {
		if ev.Kind == "wake" {
			wakes++
		}
	}
	if wakes != 24 {
		t.Fatalf("trace has %d wake events for n=24", wakes)
	}
	if _, ok := s.TraceEvents("deadbeef"); ok {
		t.Fatal("trace probe hit for unknown hash")
	}
}

func TestResponseMatchesDirectSolve(t *testing.T) {
	// The served numbers must equal a direct library solve of the same
	// resolved request — the service adds caching, never semantics.
	s := newTestService(t, Config{Workers: 1})
	sv, err := s.Solve(walkRequest(12))
	if err != nil {
		t.Fatal(err)
	}
	var resp SolveResponse
	if err := json.Unmarshal(sv.Body, &resp); err != nil {
		t.Fatal(err)
	}
	alg, err := AlgorithmByName(walkRequest(12).Algorithm)
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.resolve(alg, nil, walkRequest(12))
	if err != nil {
		t.Fatal(err)
	}
	res, rep, err := solveDirect(r)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Makespan != res.Makespan || resp.TotalEnergy != res.TotalEnergy || resp.Rounds != rep.Rounds {
		t.Fatalf("served %+v != direct (makespan=%v energy=%v rounds=%d)",
			resp, res.Makespan, res.TotalEnergy, rep.Rounds)
	}
	if resp.Awakened != 24 {
		t.Fatalf("awakened = %d", resp.Awakened)
	}
}

// The params memo must serve the derived tuple for repeats of a family
// shape — across algorithms and budgets, which change the content hash but
// not the instance — and must never change the tuple a request resolves to.
func TestParamsMemoSharedAcrossAlgorithmsAndBudgets(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, CacheBytes: 1})

	cold, err := s.Solve(walkRequest(3))
	if err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().ParamsMemoHits; got != 0 {
		t.Fatalf("first solve of the shape hit the params memo %d times", got)
	}
	var coldResp SolveResponse
	if err := json.Unmarshal(cold.Body, &coldResp); err != nil {
		t.Fatal(err)
	}

	// Same family shape, different budget and different algorithm: distinct
	// hashes (cold solves), same derivation.
	budgeted := walkRequest(3)
	budgeted.Budget = 1e6
	other := walkRequest(3)
	other.Algorithm = "awave"
	for i, req := range []SolveRequest{budgeted, other} {
		sv, err := s.Solve(req)
		if err != nil {
			t.Fatal(err)
		}
		if sv.Hit {
			t.Fatalf("request %d unexpectedly hit the result cache", i)
		}
		if sv.Hash == cold.Hash {
			t.Fatalf("request %d hashed identically to the base request", i)
		}
		var resp SolveResponse
		if err := json.Unmarshal(sv.Body, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Tuple != coldResp.Tuple {
			t.Fatalf("request %d resolved tuple %+v, want %+v", i, resp.Tuple, coldResp.Tuple)
		}
	}
	if got := s.Stats().ParamsMemoHits; got != 2 {
		t.Fatalf("paramsMemoHits = %d, want 2", got)
	}

	// A different seed is a different shape: no hit.
	if _, err := s.Solve(walkRequest(4)); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().ParamsMemoHits; got != 2 {
		t.Fatalf("different seed hit the params memo (hits = %d)", got)
	}
}

// An explicit tuple override and an inline instance must both bypass the
// params memo.
func TestParamsMemoBypasses(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})

	if _, err := s.Solve(walkRequest(5)); err != nil {
		t.Fatal(err)
	}
	override := walkRequest(5)
	override.Tuple = &TupleJSON{Ell: 2, Rho: 8, N: 24}
	sv, err := s.Solve(override)
	if err != nil {
		t.Fatal(err)
	}
	var resp SolveResponse
	if err := json.Unmarshal(sv.Body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Tuple != (TupleJSON{Ell: 2, Rho: 8, N: 24}) {
		t.Fatalf("override tuple not honored: %+v", resp.Tuple)
	}
	inst, err := instance.Family("walk", 24, 0.9, 5)
	if err != nil {
		t.Fatal(err)
	}
	inline := SolveRequest{Algorithm: "agrid", Instance: inst}
	if _, err := s.Solve(inline); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().ParamsMemoHits; got != 0 {
		t.Fatalf("paramsMemoHits = %d, want 0 (override and inline must bypass)", got)
	}
}
