package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"

	"freezetag/internal/portfolio"
)

func portfolioRequest(seed int64) PortfolioRequest {
	return PortfolioRequest{
		Algorithms: []string{"aseparator", "agrid", "awave", "aseparatorauto"},
		Objective:  "min-makespan",
		Family:     "walk", N: 24, Param: 0.9, Seed: seed,
	}
}

// The PR's acceptance criterion: two identical portfolio requests return
// byte-identical bodies with the second a cache hit — and the bytes do not
// depend on the service's worker count, because race outcomes are decided
// by portfolio order and simulation content, never scheduling.
func TestPortfolioByteIdenticalAndCached(t *testing.T) {
	s := newTestService(t, Config{Workers: 4})
	cold, err := s.SolvePortfolio(portfolioRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	if cold.Hit {
		t.Fatal("first race reported a cache hit")
	}
	warm, err := s.SolvePortfolio(portfolioRequest(1))
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Hit || !bytes.Equal(cold.Body, warm.Body) {
		t.Fatalf("second identical race: hit=%v, bytes equal=%v", warm.Hit, bytes.Equal(cold.Body, warm.Body))
	}
	if got := s.Stats().Races; got != 1 {
		t.Fatalf("two identical requests ran %d races, want 1", got)
	}

	for _, workers := range []int{1, 3} {
		other := newTestService(t, Config{Workers: workers})
		sv, err := other.SolvePortfolio(portfolioRequest(1))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(sv.Body, cold.Body) {
			t.Fatalf("workers=%d changed the response bytes:\n%s\nvs\n%s", workers, sv.Body, cold.Body)
		}
	}

	var resp PortfolioResponse
	if err := json.Unmarshal(cold.Body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Hash != cold.Hash || !resp.AllAwake || len(resp.Racers) != 4 {
		t.Fatalf("implausible response: %+v", resp)
	}
	if !strings.HasPrefix(resp.Algorithm, "portfolio[") || resp.Objective != "min-makespan" {
		t.Fatalf("descriptor fields: alg=%q obj=%q", resp.Algorithm, resp.Objective)
	}
	won := 0
	for _, rr := range resp.Racers {
		if rr.Status == "won" {
			won++
			if rr.Algorithm != resp.Winner {
				t.Fatalf("winner mismatch: %q vs %q", rr.Algorithm, resp.Winner)
			}
		}
	}
	if won != 1 {
		t.Fatalf("%d racers won", won)
	}
}

// first-under-budget over HTTP: the losing racers are cancelled (visible in
// the racer stats and the racersCancelled counter), the second identical
// POST is a cache hit, and the cached race is probe-able by hash.
func TestHTTPPortfolioFirstUnderCancels(t *testing.T) {
	s, srv := newTestServer(t, Config{Workers: 4})
	body := `{"algorithms":["agrid","aseparator","awave"],` +
		`"objective":"first-under-budget:makespan=1e9",` +
		`"family":"walk","n":24,"param":0.9,"seed":2}`
	post := func() (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/portfolio", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		return resp, data
	}
	r1, b1 := post()
	if r1.StatusCode != http.StatusOK || r1.Header.Get("X-Cache") != "miss" {
		t.Fatalf("cold race: %d X-Cache=%q %s", r1.StatusCode, r1.Header.Get("X-Cache"), b1)
	}
	r2, b2 := post()
	if r2.Header.Get("X-Cache") != "hit" || !bytes.Equal(b1, b2) {
		t.Fatalf("warm race: X-Cache=%q, identical=%v", r2.Header.Get("X-Cache"), bytes.Equal(b1, b2))
	}

	var resp PortfolioResponse
	if err := json.Unmarshal(b1, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Satisfied || resp.Winner != "AGrid" || resp.Cancelled != 2 {
		t.Fatalf("race outcome: %+v", resp)
	}
	for _, rr := range resp.Racers[1:] {
		if rr.Status != "cancelled" || rr.Makespan != 0 {
			t.Fatalf("loser not cancelled cleanly: %+v", rr)
		}
	}
	if got := s.Stats().RacersCancelled; got != 2 {
		t.Fatalf("racersCancelled = %d, want 2", got)
	}

	// The cached race is content-addressed like any solve.
	probe, err := http.Get(srv.URL + "/v1/solve/" + resp.Hash)
	if err != nil {
		t.Fatal(err)
	}
	probed, _ := io.ReadAll(probe.Body)
	probe.Body.Close()
	if probe.StatusCode != http.StatusOK || !bytes.Equal(probed, b1) {
		t.Fatalf("probe by hash: %d", probe.StatusCode)
	}
	// And its winning run's trace streams as NDJSON.
	tr, err := http.Get(srv.URL + "/v1/trace/" + resp.Hash)
	if err != nil {
		t.Fatal(err)
	}
	ndjson, _ := io.ReadAll(tr.Body)
	tr.Body.Close()
	if tr.StatusCode != http.StatusOK || len(bytes.TrimSpace(ndjson)) == 0 {
		t.Fatalf("trace by hash: %d (%d bytes)", tr.StatusCode, len(ndjson))
	}
}

// The served race equals a direct portfolio.Race of the same resolved
// request — the service adds caching, never semantics.
func TestPortfolioMatchesDirectRace(t *testing.T) {
	s := newTestService(t, Config{Workers: 2})
	sv, err := s.SolvePortfolio(portfolioRequest(3))
	if err != nil {
		t.Fatal(err)
	}
	pf, err := portfolioFor(portfolioRequest(3))
	if err != nil {
		t.Fatal(err)
	}
	r, err := s.resolvePortfolio(pf, nil, portfolioRequest(3))
	if err != nil {
		t.Fatal(err)
	}
	direct, err := portfolio.Race(r.pf, r.inst, r.tup, r.budget, portfolio.Options{})
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(NewPortfolioResponse(r.hash, r.pf, r.metric, r.inst, r.tup, r.budget, direct))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sv.Body, body) {
		t.Fatalf("served race differs from direct race:\n%s\nvs\n%s", sv.Body, body)
	}
}

// Repeated family-shaped portfolio requests ride the shape→hash memo.
func TestPortfolioMemo(t *testing.T) {
	s := newTestService(t, Config{Workers: 2})
	if _, err := s.SolvePortfolio(portfolioRequest(4)); err != nil {
		t.Fatal(err)
	}
	warm, err := s.SolvePortfolio(portfolioRequest(4))
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Hit || s.Stats().MemoHits != 1 {
		t.Fatalf("hit=%v memoHits=%d", warm.Hit, s.Stats().MemoHits)
	}
	// Different objective ⇒ different shape, different hash, new race.
	req := portfolioRequest(4)
	req.Objective = "min-energy"
	sv, err := s.SolvePortfolio(req)
	if err != nil {
		t.Fatal(err)
	}
	if sv.Hit || sv.Hash == warm.Hash {
		t.Fatal("objective is not part of the portfolio identity")
	}
}

func TestPortfolioBadRequests(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	tooMany := make([]string, maxPortfolioAlgorithms+1)
	for i := range tooMany {
		tooMany[i] = "agrid"
	}
	cases := map[string]PortfolioRequest{
		"no algorithms":     {Objective: "min-makespan", Family: "walk", N: 8, Param: 1},
		"too many entrants": {Algorithms: tooMany, Family: "walk", N: 8, Param: 1},
		"unknown algorithm": {Algorithms: []string{"dijkstra"}, Family: "walk", N: 8, Param: 1},
		"bad objective":     {Algorithms: []string{"agrid"}, Objective: "fastest", Family: "walk", N: 8, Param: 1},
		"nan cap":           {Algorithms: []string{"agrid"}, Objective: "first-under-budget:makespan=nan", Family: "walk", N: 8, Param: 1},
		"no instance":       {Algorithms: []string{"agrid"}},
		"bad caps":          {Algorithms: []string{"agrid"}, Objective: "first-under-budget", Family: "walk", N: 8, Param: 1},
	}
	for name, req := range cases {
		if _, err := s.SolvePortfolio(req); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: got %v, want ErrBadRequest", name, err)
		}
	}
	if s.Stats().Races != 0 {
		t.Fatalf("bad requests ran %d races", s.Stats().Races)
	}
}

// Objective spellings that canonicalize identically share one cache entry.
func TestPortfolioObjectiveAliasesShareKey(t *testing.T) {
	s := newTestService(t, Config{Workers: 2})
	a, err := s.SolvePortfolio(portfolioRequest(5))
	if err != nil {
		t.Fatal(err)
	}
	req := portfolioRequest(5)
	req.Objective = "Makespan"
	b, err := s.SolvePortfolio(req)
	if err != nil {
		t.Fatal(err)
	}
	if !b.Hit || a.Hash != b.Hash {
		t.Fatalf("alias missed the cache: %s vs %s", a.Hash, b.Hash)
	}
}

// Trace retention disabled: /v1/trace answers 404 with the reason even for
// cached hashes.
func TestHTTPTraceDisabled(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1, DropTraces: true})
	r1, b1 := postSolve(t, srv, walkBody)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d %s", r1.StatusCode, b1)
	}
	var resp SolveResponse
	if err := json.Unmarshal(b1, &resp); err != nil {
		t.Fatal(err)
	}
	tr, err := http.Get(srv.URL + "/v1/trace/" + resp.Hash)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(tr.Body)
	tr.Body.Close()
	if tr.StatusCode != http.StatusNotFound || !bytes.Contains(body, []byte("disabled")) {
		t.Fatalf("trace with retention disabled: %d %s", tr.StatusCode, body)
	}
}
