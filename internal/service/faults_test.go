package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
)

// The disk/60/1.2/seed-5 instance with fault seed 42 is the same draw as the
// dftp-level repair tests — crashes land on mid-escort carriers, so rescues
// are guaranteed to fire.
const faultedWalkBody = `{"algorithm":"agrid","family":"disk","n":60,"param":1.2,"seed":5,` +
	`"faults":{"kind":"crash-stop","rate":0.3,"seed":42,"repair":true}}`

// A faulted solve returns 200 with the spec echoed back plus fault and
// repair counters, and with repair enabled on crash-stop the swarm still
// reaches full completion.
func TestHTTPFaultedSolve(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2})

	resp, body := postSolve(t, srv, faultedWalkBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("faulted solve: %d %s", resp.StatusCode, body)
	}
	var sr SolveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.Faults == nil {
		t.Fatal("faulted solve response has no faults echo")
	}
	if sr.Faults.Spec.Kind != "crash-stop" || sr.Faults.Spec.Rate != 0.3 ||
		sr.Faults.Spec.Seed != 42 || !sr.Faults.Spec.Repair {
		t.Fatalf("faults spec not echoed: %+v", sr.Faults.Spec)
	}
	if sr.Faults.Injected == 0 || sr.Faults.CrashStops == 0 {
		t.Fatalf("rate-0.25 crash-stop injected nothing: %+v", sr.Faults)
	}
	if sr.Faults.Repairs == 0 {
		t.Fatalf("repair enabled but no repairs recorded: %+v", sr.Faults)
	}
	if !sr.AllAwake || sr.Faults.Completion != 1 {
		t.Fatalf("repaired crash-stop run incomplete: allAwake=%v completion=%v",
			sr.AllAwake, sr.Faults.Completion)
	}
}

// A fault-free solve must not grow a faults field — the response bytes are
// golden-locked to the pre-fault era.
func TestHTTPFaultFreeOmitsFaults(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1})
	_, body := postSolve(t, srv, walkBody)
	if bytes.Contains(body, []byte(`"faults"`)) {
		t.Fatalf("fault-free response mentions faults: %s", body)
	}
}

// Malformed fault specs are rejected with 400 before any work is queued.
func TestHTTPFaultedSolveBadSpec(t *testing.T) {
	s, srv := newTestServer(t, Config{Workers: 1})
	bad := []struct {
		name, faults string
	}{
		{"rate above one", `{"kind":"crash-stop","rate":1.5}`},
		{"negative rate", `{"kind":"crash-stop","rate":-0.1}`},
		{"unknown kind", `{"kind":"meteor-strike","rate":0.1}`},
		{"byzantine without count", `{"kind":"byzantine"}`},
		{"negative downtime", `{"kind":"crash-recovery","rate":0.1,"downtime":-2}`},
	}
	for _, c := range bad {
		body := `{"algorithm":"agrid","family":"walk","n":16,"param":0.9,"seed":1,"faults":` + c.faults + `}`
		resp, data := postSolve(t, srv, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", c.name, resp.StatusCode, data)
		}
	}
	if got := s.Stats().Solves; got != 0 {
		t.Fatalf("rejected requests still ran %d simulations", got)
	}
}

// The same instance with and without faults — and with two different fault
// specs — are three distinct requests: distinct hashes, distinct bodies, no
// memo aliasing in either direction.
func TestHTTPFaultedNoAliasing(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2})
	bodies := []string{
		`{"algorithm":"agrid","family":"disk","n":60,"param":1.2,"seed":5}`,
		faultedWalkBody,
		`{"algorithm":"agrid","family":"disk","n":60,"param":1.2,"seed":5,` +
			`"faults":{"kind":"wake-drop","rate":0.3,"seed":42,"repair":true}}`,
	}
	seen := map[string]string{}
	for _, b := range bodies {
		resp, data := postSolve(t, srv, b)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve %s: %d %s", b, resp.StatusCode, data)
		}
		if got := resp.Header.Get("X-Cache"); got != "miss" {
			t.Fatalf("first POST of %s hit the cache (%q) — memo aliasing", b, got)
		}
		var sr SolveResponse
		if err := json.Unmarshal(data, &sr); err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[sr.Hash]; dup {
			t.Fatalf("hash collision between %s and %s", prev, b)
		}
		seen[sr.Hash] = b
	}
}

// Replaying a faulted request hits the cache and returns byte-identical
// bodies — fault injection is deterministic, so the memo is sound.
func TestHTTPFaultedReplayCached(t *testing.T) {
	s, srv := newTestServer(t, Config{Workers: 2})
	r1, b1 := postSolve(t, srv, faultedWalkBody)
	r2, b2 := postSolve(t, srv, faultedWalkBody)
	if r1.StatusCode != http.StatusOK || r2.StatusCode != http.StatusOK {
		t.Fatalf("statuses %d %d", r1.StatusCode, r2.StatusCode)
	}
	if got := r2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("faulted replay X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("faulted replay body differs:\n%s\nvs\n%s", b1, b2)
	}
	if got := s.Stats().Solves; got != 1 {
		t.Fatalf("two identical faulted POSTs ran %d simulations", got)
	}
}

// After a faulted solve the metrics endpoint exposes the injection and
// repair counters.
func TestHTTPFaultMetrics(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1})
	if resp, body := postSolve(t, srv, faultedWalkBody); resp.StatusCode != http.StatusOK {
		t.Fatalf("faulted solve: %d %s", resp.StatusCode, body)
	}
	resp, err := http.Get(srv.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(data)
	if !strings.Contains(text, `dftp_faults_injected_total{kind="crash-stop"}`) {
		t.Errorf("metricsz missing dftp_faults_injected_total{kind=\"crash-stop\"}:\n%s", text)
	}
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, `dftp_faults_injected_total{kind="crash-stop"}`) &&
			strings.HasSuffix(strings.TrimSpace(line), " 0") {
			t.Errorf("crash-stop injection counter still zero: %s", line)
		}
	}
	if !strings.Contains(text, "dftp_repairs_total") {
		t.Errorf("metricsz missing dftp_repairs_total")
	}
}

// The under-faults portfolio objective requires a faults spec; without one
// the request is a 400, with one it runs and reports a winner.
func TestHTTPPortfolioUnderFaults(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 4})
	post := func(body string) (*http.Response, []byte) {
		t.Helper()
		resp, err := http.Post(srv.URL+"/v1/portfolio", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		return resp, data
	}

	missing := `{"algorithms":["agrid","awave"],"objective":"min-makespan-under-faults",` +
		`"family":"walk","n":24,"param":0.9,"seed":1}`
	if resp, data := post(missing); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("under-faults without faults: %d %s", resp.StatusCode, data)
	}

	ok := `{"algorithms":["agrid","awave"],"objective":"min-makespan-under-faults:draws=2",` +
		`"family":"walk","n":24,"param":0.9,"seed":1,` +
		`"faults":{"kind":"crash-stop","rate":0.2,"seed":11,"repair":true}}`
	resp, data := post(ok)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("under-faults portfolio: %d %s", resp.StatusCode, data)
	}
	var pr PortfolioResponse
	if err := json.Unmarshal(data, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Faults == nil || pr.Faults.Spec.Kind != "crash-stop" {
		t.Fatalf("portfolio response faults echo: %+v", pr.Faults)
	}
	if pr.Winner == "" {
		t.Fatalf("no winner: %s", data)
	}
}
