package service

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) (*Service, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		srv.Close()
		s.Close()
	})
	return s, srv
}

const walkBody = `{"algorithm":"agrid","family":"walk","n":24,"param":0.9,"seed":1}`

func postSolve(t *testing.T, srv *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(srv.URL+"/v1/solve", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// End-to-end acceptance: two identical POSTs over a live server run one
// simulation and return byte-identical bodies, with X-Cache miss then hit.
func TestHTTPSolveTwiceOneSimulation(t *testing.T) {
	s, srv := newTestServer(t, Config{Workers: 2})

	r1, b1 := postSolve(t, srv, walkBody)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("cold solve: %d %s", r1.StatusCode, b1)
	}
	if got := r1.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("cold X-Cache = %q", got)
	}
	r2, b2 := postSolve(t, srv, walkBody)
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("warm solve: %d %s", r2.StatusCode, b2)
	}
	if got := r2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("warm X-Cache = %q", got)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("cached body differs from cold body:\n%s\nvs\n%s", b1, b2)
	}
	if got := s.Stats().Solves; got != 1 {
		t.Fatalf("two identical POSTs ran %d simulations, want 1", got)
	}
}

// Hammer the server with concurrent identical and distinct requests; run
// with -race. Identical requests must coalesce to one simulation each.
func TestHTTPConcurrentHammer(t *testing.T) {
	s, srv := newTestServer(t, Config{Workers: 4, QueueDepth: 128})
	const perSeed, seeds = 8, 4

	var wg sync.WaitGroup
	errCh := make(chan error, perSeed*seeds)
	for seed := 0; seed < seeds; seed++ {
		body := fmt.Sprintf(`{"algorithm":"agrid","family":"walk","n":24,"param":0.9,"seed":%d}`, seed)
		for k := 0; k < perSeed; k++ {
			wg.Add(1)
			go func(body string) {
				defer wg.Done()
				resp, err := http.Post(srv.URL+"/v1/solve", "application/json", strings.NewReader(body))
				if err != nil {
					errCh <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("status %d", resp.StatusCode)
				}
			}(body)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if got := s.Stats().Solves; got != seeds {
		t.Fatalf("ran %d simulations for %d distinct payloads", got, seeds)
	}
}

func TestHTTPProbe(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1})

	// Probe before solving: 404 and no computation.
	resp, err := http.Get(srv.URL + "/v1/solve/0000000000000000000000000000000000000000000000000000000000000000")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("probe of unknown hash: %d", resp.StatusCode)
	}

	_, body := postSolve(t, srv, walkBody)
	var sr SolveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Get(srv.URL + "/v1/solve/" + sr.Hash)
	if err != nil {
		t.Fatal(err)
	}
	probed, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || resp.Header.Get("X-Cache") != "hit" {
		t.Fatalf("probe after solve: %d %q", resp.StatusCode, resp.Header.Get("X-Cache"))
	}
	if !bytes.Equal(probed, body) {
		t.Fatal("probe body differs from solve body")
	}
}

func TestHTTPTraceNDJSON(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1})
	_, body := postSolve(t, srv, walkBody)
	var sr SolveResponse
	if err := json.Unmarshal(body, &sr); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get(srv.URL + "/v1/trace/" + sr.Hash)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace: %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("trace content type %q", ct)
	}
	wakes, lines := 0, 0
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		lines++
		var ev struct {
			T    float64 `json:"t"`
			Kind string  `json:"kind"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("line %d not JSON: %v (%q)", lines, err, sc.Text())
		}
		if ev.Kind == "wake" {
			wakes++
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if lines == 0 || wakes != 24 {
		t.Fatalf("trace stream: %d lines, %d wakes (want 24 wakes)", lines, wakes)
	}

	resp, err = http.Get(srv.URL + "/v1/trace/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("trace of unknown hash: %d", resp.StatusCode)
	}
}

func TestHTTPBatchOrderPreserving(t *testing.T) {
	s, srv := newTestServer(t, Config{Workers: 4, QueueDepth: 64})
	batch := `{"requests":[
		{"algorithm":"agrid","family":"walk","n":24,"param":0.9,"seed":1},
		{"algorithm":"awave","family":"line","n":10,"param":1.0},
		{"algorithm":"agrid","family":"walk","n":24,"param":0.9,"seed":1},
		{"algorithm":"nope","family":"walk","n":8,"param":1.0}
	]}`
	resp, err := http.Post(srv.URL+"/v1/batch", "application/json", strings.NewReader(batch))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch: %d %s", resp.StatusCode, data)
	}
	var br BatchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != 4 {
		t.Fatalf("%d results for 4 requests", len(br.Results))
	}
	var first, third SolveResponse
	if err := json.Unmarshal(br.Results[0].Response, &first); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(br.Results[2].Response, &third); err != nil {
		t.Fatal(err)
	}
	if first.Algorithm != "AGrid" || first.N != 24 {
		t.Fatalf("slot 0 out of order: %+v", first)
	}
	if !bytes.Equal(br.Results[0].Response, br.Results[2].Response) {
		t.Fatal("duplicate batch items returned different bytes")
	}
	var second SolveResponse
	if err := json.Unmarshal(br.Results[1].Response, &second); err != nil {
		t.Fatal(err)
	}
	if second.Algorithm != "AWave" || second.N != 10 {
		t.Fatalf("slot 1 out of order: %+v", second)
	}
	if br.Results[3].Error == "" || br.Results[3].Response != nil {
		t.Fatalf("slot 3 should be an error: %+v", br.Results[3])
	}
	// Duplicates coalesce across a batch too: 2 simulations, not 3.
	if got := s.Stats().Solves; got != 2 {
		t.Fatalf("batch ran %d simulations, want 2", got)
	}
}

// A batch with more distinct items than the queue depth must not shed its
// own tail: batch fan-out is bounded, so an otherwise idle server completes
// every item.
func TestHTTPBatchLargerThanQueue(t *testing.T) {
	s, srv := newTestServer(t, Config{Workers: 2, QueueDepth: 2})
	var sb strings.Builder
	sb.WriteString(`{"requests":[`)
	const items = 12
	for i := 0; i < items; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"algorithm":"agrid","family":"walk","n":16,"param":0.9,"seed":%d}`, 200+i)
	}
	sb.WriteString(`]}`)
	resp, err := http.Post(srv.URL+"/v1/batch", "application/json", strings.NewReader(sb.String()))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var br BatchResponse
	if err := json.Unmarshal(data, &br); err != nil {
		t.Fatal(err)
	}
	if len(br.Results) != items {
		t.Fatalf("%d results for %d requests", len(br.Results), items)
	}
	for i, item := range br.Results {
		if item.Error != "" || item.Response == nil {
			t.Fatalf("slot %d shed or empty on an idle server: %+v", i, item)
		}
	}
	if got := s.Stats().Shed; got != 0 {
		t.Fatalf("idle-server batch shed %d items", got)
	}
}

func TestHTTPHealthzStatsz(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(srv.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(data), `"ok"`) {
		t.Fatalf("healthz: %d %s", resp.StatusCode, data)
	}

	postSolve(t, srv, walkBody)
	postSolve(t, srv, walkBody)
	resp, err = http.Get(srv.URL + "/statsz")
	if err != nil {
		t.Fatal(err)
	}
	data, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var st Stats
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatalf("statsz not JSON: %v (%s)", err, data)
	}
	if st.Solves != 1 || st.Hits != 1 || st.Misses != 1 || st.CacheLen != 1 {
		t.Fatalf("statsz = %+v", st)
	}
}

func TestHTTPBadRequests(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1})
	cases := []string{
		`not json at all`,
		`{"algorithm":"dijkstra","family":"walk","n":8,"param":1}`,
		`{"algorithm":"agrid"}`,
		`{"algorithm":"agrid","family":"torus","n":8,"param":1}`,
	}
	for _, body := range cases {
		resp, data := postSolve(t, srv, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("payload %q: status %d (%s), want 400", body, resp.StatusCode, data)
		}
		if !strings.Contains(string(data), `"error"`) {
			t.Errorf("payload %q: error body %q", body, data)
		}
	}
}

func TestHTTPQueueFull429(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	started := make(chan struct{}, 64)
	s := New(Config{Workers: 1, QueueDepth: 1, preSolve: func() {
		started <- struct{}{}
		<-release
	}})
	srv := httptest.NewServer(s.Handler())
	defer func() {
		once.Do(func() { close(release) })
		srv.Close()
		s.Close()
	}()

	solveAsync := func(seed int64) {
		go func() {
			resp, err := http.Post(srv.URL+"/v1/solve", "application/json",
				strings.NewReader(fmt.Sprintf(`{"algorithm":"agrid","family":"walk","n":24,"param":0.9,"seed":%d}`, seed)))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}()
	}
	solveAsync(50)
	<-started
	solveAsync(51)
	for len(s.jobs) == 0 {
		time.Sleep(time.Millisecond)
	}

	resp, data := postSolve(t, srv, `{"algorithm":"agrid","family":"walk","n":24,"param":0.9,"seed":52}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow: %d %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
}
