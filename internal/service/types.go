package service

import (
	"encoding/json"
	"fmt"
	"strings"

	"freezetag/internal/dftp"
	"freezetag/internal/geom"
	"freezetag/internal/instance"
	"freezetag/internal/portfolio"
	"freezetag/internal/sim"
)

// SolveRequest is the wire form of one solve. The instance comes either
// inline (Instance) or generated from a workload family (Family/N/Param/
// Seed); an inline instance wins when both are present. The tuple defaults
// to dftp.TupleFor(instance) and can be overridden. Requests with the same
// canonical content hash to the same key regardless of how the instance was
// supplied.
type SolveRequest struct {
	Algorithm string             `json:"algorithm"`
	Metric    string             `json:"metric,omitempty"` // l1 | l2 | linf | lp:<p>; empty = l2
	Instance  *instance.Instance `json:"instance,omitempty"`
	Family    string             `json:"family,omitempty"`
	N         int                `json:"n,omitempty"`
	Param     float64            `json:"param,omitempty"`
	Seed      int64              `json:"seed,omitempty"`
	Tuple     *TupleJSON         `json:"tuple,omitempty"`
	Budget    float64            `json:"budget,omitempty"`
	// Profiles, when non-empty, makes the solve heterogeneous: one profile
	// per sleeping robot (speeds finite and > 0, or the request is a 400).
	// It overrides any profiles the instance or family modifiers supplied,
	// and is content-addressed — two requests differing only in profiles
	// hash to different keys.
	Profiles []instance.Profile `json:"profiles,omitempty"`
	// Faults, when present, runs the solve under the given fault
	// specification (validated — malformed specs are a 400) and switches the
	// request's content address to the dftp-request/v4 form. Absent faults
	// leave the hash and response bytes exactly as the fault-free wire
	// format defines them.
	Faults *dftp.Faults `json:"faults,omitempty"`
}

// TupleJSON is the wire form of the (ℓ, ρ, n) knowledge tuple.
type TupleJSON struct {
	Ell float64 `json:"ell"`
	Rho float64 `json:"rho"`
	N   int     `json:"n"`
}

// SolveResponse is the wire form of one solve result. It is shared by
// POST /v1/solve and `dftp-run -json`, so command-line and served results
// are machine-comparable field for field.
type SolveResponse struct {
	Hash        string    `json:"hash"`
	Algorithm   string    `json:"algorithm"`
	Metric      string    `json:"metric"`
	Instance    string    `json:"instance"`
	N           int       `json:"n"`
	Tuple       TupleJSON `json:"tuple"`
	Budget      float64   `json:"budget"`
	Makespan    float64   `json:"makespan"`
	Duration    float64   `json:"duration"`
	AllAwake    bool      `json:"allAwake"`
	Awakened    int       `json:"awakened"`
	MaxEnergy   float64   `json:"maxEnergy"`
	TotalEnergy float64   `json:"totalEnergy"`
	Rounds      int       `json:"rounds"`
	Misses      []string  `json:"misses,omitempty"`
	Violations  []string  `json:"violations,omitempty"`
	// Profiles echoes the per-robot capability profiles the solve ran under
	// (omitted for homogeneous solves, keeping their bodies byte-identical
	// to the pre-profile wire format).
	Profiles []instance.Profile `json:"profiles,omitempty"`
	// Faults echoes a faulted solve's specification and injection outcome
	// (omitted for fault-free solves, keeping their bodies byte-identical to
	// the fault-free wire format).
	Faults *FaultsEcho `json:"faults,omitempty"`
}

// FaultsEcho is the fault section of a faulted solve's response: the
// specification the run executed — echoed back so clients can confirm what
// was injected — plus the deterministic injection counters and the resulting
// completion rate (awakened / n; 1 means the swarm still fully woke).
type FaultsEcho struct {
	Spec         dftp.Faults `json:"spec"`
	Injected     int64       `json:"injected"`
	CrashStops   int64       `json:"crashStops,omitempty"`
	Recoveries   int64       `json:"recoveries,omitempty"`
	WakeDrops    int64       `json:"wakeDrops,omitempty"`
	WakeDups     int64       `json:"wakeDups,omitempty"`
	ByzTakeovers int64       `json:"byzTakeovers,omitempty"`
	RosterSkips  int64       `json:"rosterSkips,omitempty"`
	Repairs      int64       `json:"repairs"`
	Completion   float64     `json:"completion"`
}

// NewFaultsEcho assembles the response's fault section from the spec and the
// run's deterministic fault counters. Nil spec (a fault-free solve) returns
// nil, which json omits.
func NewFaultsEcho(spec *dftp.Faults, res sim.Result, n int) *FaultsEcho {
	if spec == nil {
		return nil
	}
	f := res.Faults
	fe := &FaultsEcho{
		Spec:         *spec,
		Injected:     f.Injected(),
		CrashStops:   f.CrashStops,
		Recoveries:   f.Recoveries,
		WakeDrops:    f.WakeDrops,
		WakeDups:     f.WakeDups,
		ByzTakeovers: f.ByzTakeovers,
		RosterSkips:  f.RosterSkips,
		Repairs:      f.Repairs,
	}
	if n > 0 {
		fe.Completion = float64(res.Awakened) / float64(n)
	}
	return fe
}

// Named is anything with a canonical solver name: a dftp.Algorithm, or a
// portfolio.Portfolio whose Name is its hashed descriptor.
type Named interface{ Name() string }

// NewSolveResponse assembles the shared response struct from a solve's
// inputs and outputs. Budgets ≤ 0 are canonicalized to 0 (unconstrained)
// and the metric to its canonical name ("l2" when nil), matching the
// request hash.
func NewSolveResponse(hash string, alg Named, m geom.Metric, in *instance.Instance, tup dftp.Tuple, budget float64, res sim.Result, rep *dftp.Report) SolveResponse {
	if budget <= 0 {
		budget = 0
	}
	return SolveResponse{
		Hash:        hash,
		Algorithm:   alg.Name(),
		Metric:      geom.MetricOrL2(m).Name(),
		Instance:    in.Name,
		N:           in.N(),
		Tuple:       TupleJSON{Ell: tup.Ell, Rho: tup.Rho, N: tup.N},
		Budget:      budget,
		Makespan:    res.Makespan,
		Duration:    res.Duration,
		AllAwake:    res.AllAwake,
		Awakened:    res.Awakened,
		MaxEnergy:   res.MaxEnergy,
		TotalEnergy: res.TotalEnergy,
		Rounds:      rep.Rounds,
		Misses:      rep.Misses,
		Violations:  res.Violations,
		Profiles:    in.Profiles,
	}
}

// PortfolioRequest is the wire form of POST /v1/portfolio: a solve request
// whose single algorithm is replaced by an ordered list of entrants plus an
// objective (see portfolio.ParseObjective for the spellings; empty means
// min-makespan). Entrant order is significant — it is the deterministic
// tie-break and, for first-under-budget, the priority. Seed doubles as the
// family-generation seed and the portfolio seed deriving the racers'
// private RNG streams.
type PortfolioRequest struct {
	Algorithms []string           `json:"algorithms"`
	Objective  string             `json:"objective,omitempty"`
	Metric     string             `json:"metric,omitempty"` // l1 | l2 | linf | lp:<p>; empty = l2
	Instance   *instance.Instance `json:"instance,omitempty"`
	Family     string             `json:"family,omitempty"`
	N          int                `json:"n,omitempty"`
	Param      float64            `json:"param,omitempty"`
	Seed       int64              `json:"seed,omitempty"`
	Tuple      *TupleJSON         `json:"tuple,omitempty"`
	Budget     float64            `json:"budget,omitempty"`
	// Profiles races every entrant under per-robot capability profiles; see
	// SolveRequest.Profiles for the validation and hashing rules.
	Profiles []instance.Profile `json:"profiles,omitempty"`
	// Faults races every entrant under the given fault specification; see
	// SolveRequest.Faults for the validation and hashing rules. Required by
	// the min-makespan-under-faults objective.
	Faults *dftp.Faults `json:"faults,omitempty"`
}

// RacerStat is one entrant's outcome in a PortfolioResponse. Every field is
// deterministic — decided by portfolio order and simulation content, never
// by which racer happened to finish first — which is what lets portfolio
// responses be cached byte-for-byte. Cancelled racers (status "cancelled")
// report identity only: their runs were stopped, skipped, or discarded, and
// exposing anything more would make the response depend on scheduling.
type RacerStat struct {
	Index     int     `json:"index"`
	Algorithm string  `json:"algorithm"`
	Seed      int64   `json:"seed"`
	Status    string  `json:"status"` // won | completed | cancelled | error
	Satisfied bool    `json:"satisfied,omitempty"`
	Makespan  float64 `json:"makespan,omitempty"`
	MaxEnergy float64 `json:"maxEnergy,omitempty"`
	Score     float64 `json:"score,omitempty"`
	Error     string  `json:"error,omitempty"`
}

// PortfolioResponse is the wire form of one race: the winning run in the
// shared SolveResponse shape (Algorithm holds the portfolio's canonical
// descriptor — the string that was hashed; Winner the winning entrant) plus
// per-racer stats. Shared by POST /v1/portfolio and `dftp-run -alg
// portfolio -json`.
type PortfolioResponse struct {
	SolveResponse
	Objective string      `json:"objective"`
	Winner    string      `json:"winner"`
	Satisfied bool        `json:"satisfied"`
	Cancelled int         `json:"cancelled"`
	Racers    []RacerStat `json:"racers"`
}

// NewPortfolioResponse assembles the wire response from a race outcome.
func NewPortfolioResponse(hash string, pf portfolio.Portfolio, m geom.Metric, in *instance.Instance, tup dftp.Tuple, budget float64, res *portfolio.Result) PortfolioResponse {
	obj := pf.Objective
	if obj == nil {
		obj = portfolio.MinMakespan{}
	}
	winner := res.Racers[res.Winner]
	out := PortfolioResponse{
		SolveResponse: NewSolveResponse(hash, pf, m, in, tup, budget, res.Res, res.Rep),
		Objective:     obj.Name(),
		Winner:        winner.Algorithm,
		Satisfied:     res.Satisfied,
		Cancelled:     res.Cancelled,
		Racers:        make([]RacerStat, len(res.Racers)),
	}
	for i, rr := range res.Racers {
		out.Racers[i] = RacerStat{
			Index:     rr.Index,
			Algorithm: rr.Algorithm,
			Seed:      rr.Seed,
			Status:    string(rr.Status),
			Satisfied: rr.Satisfied,
			Makespan:  rr.Makespan,
			MaxEnergy: rr.MaxEnergy,
			Score:     rr.Score,
			Error:     rr.Err,
		}
	}
	return out
}

// BatchRequest is the wire form of POST /v1/batch.
type BatchRequest struct {
	Requests []SolveRequest `json:"requests"`
}

// BatchItem is one slot of a batch response, in request order: either the
// solve response or an error string (e.g. a shed request under load).
type BatchItem struct {
	Response json.RawMessage `json:"response,omitempty"`
	Error    string          `json:"error,omitempty"`
}

// BatchResponse is the wire form of the POST /v1/batch reply. Results[i]
// always corresponds to Requests[i].
type BatchResponse struct {
	Results []BatchItem `json:"results"`
}

// Stats is the /statsz payload.
type Stats struct {
	Hits            int64 `json:"hits"`            // served from the result cache
	Coalesced       int64 `json:"coalesced"`       // joined an identical in-flight solve
	Misses          int64 `json:"misses"`          // initiated a simulation
	Shed            int64 `json:"shed"`            // rejected with queue-full (HTTP 429)
	Solves          int64 `json:"solves"`          // simulations actually run
	Races           int64 `json:"races"`           // portfolio races actually run
	RacersCancelled int64 `json:"racersCancelled"` // losing racers cancelled by early-stop objectives
	MemoHits        int64 `json:"memoHits"`        // hits/coalesces served via the shape→hash memo (no instance re-generation)
	ParamsMemoHits  int64 `json:"paramsMemoHits"`  // cold solves whose (ℓ*, ρ*) derivation was served by the params memo
	// Derived ratios. All are defined as exactly 0 when their denominator
	// is zero (a fresh server), never NaN: encoding/json refuses NaN, so an
	// unguarded division would turn GET /statsz into a 500 at zero traffic.
	HitRate        float64 `json:"hitRate"`     // (hits+coalesced) / (hits+coalesced+misses)
	MemoHitRate    float64 `json:"memoHitRate"` // memoHits / (hits+coalesced) — cache serves that skipped instance materialization
	ShedRate       float64 `json:"shedRate"`    // shed / (hits+coalesced+misses+shed)
	QueueDepth     int     `json:"queueDepth"`
	QueueCapacity  int     `json:"queueCapacity"`
	QueueWeight    int     `json:"queueWeight"`    // admitted effective slots (width-weighted, queued + running)
	AdmissionCap   int     `json:"admissionCap"`   // queueWeight ceiling: queueCapacity + workers
	CacheLen       int     `json:"cacheLen"`       // entries currently cached
	CacheBytes     int64   `json:"cacheBytes"`     // approximate retained bytes
	CacheCapacity  int64   `json:"cacheCapacity"`  // cache budget in bytes
	TracesRetained bool    `json:"tracesRetained"` // per-entry event traces kept (GET /v1/trace)
	TracesKept     int64   `json:"tracesKept"`     // request traces kept by the /tracez flight recorder (lifetime)
	Workers        int     `json:"workers"`
}

// AlgorithmByName resolves the wire name of an algorithm (case-insensitive;
// the "a" prefix is optional: "agrid" and "grid" are the same).
func AlgorithmByName(name string) (dftp.Algorithm, error) {
	switch canonAlgName(name) {
	case "aseparator":
		return dftp.ASeparator{}, nil
	case "agrid":
		return dftp.AGrid{}, nil
	case "awave":
		return dftp.AWave{}, nil
	case "aseparatorauto":
		return dftp.ASeparatorAuto{}, nil
	default:
		return nil, fmt.Errorf("%w: unknown algorithm %q (have aseparator, agrid, awave, aseparatorauto)", ErrBadRequest, name)
	}
}

// canonAlgName lowercases and restores the "a" prefix, so "grid", "Grid",
// and "agrid" all canonicalize — and therefore hash — identically.
func canonAlgName(name string) string {
	n := strings.ToLower(name)
	switch n {
	case "separator", "grid", "wave", "separatorauto":
		return "a" + n
	}
	return n
}
