package service

import (
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"os"
	"strings"
	"testing"
)

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// responseFixture is one locked pre-heterogeneity (PR 5) served response:
// the raw request JSON (solve or race) and the exact body PR 5 returned for
// it under Config{Workers: 2, DropTraces: true}. Profile-free requests must
// keep serving these bytes — the hash is a live cache key and the body is
// what clients replay against.
type responseFixture struct {
	Desc  string          `json:"desc"`
	Solve json.RawMessage `json:"solve,omitempty"`
	Race  json.RawMessage `json:"race,omitempty"`
	Hash  string          `json:"hash"`
	Body  string          `json:"body"`
}

// Homogeneous requests — no profiles field — must produce byte-identical
// response bodies and request hashes to the PR 5 service.
func TestResponseCompatPR5Golden(t *testing.T) {
	data, err := os.ReadFile("testdata/response_golden_pr5.json")
	if err != nil {
		t.Fatal(err)
	}
	var fs []responseFixture
	if err := json.Unmarshal(data, &fs); err != nil {
		t.Fatal(err)
	}
	if len(fs) < 4 {
		t.Fatalf("only %d fixtures — the golden set was truncated", len(fs))
	}
	// Full instrumentation on — request logging included — to pin down that
	// timing and telemetry live only in headers/logs, never in the bodies.
	logger := slog.New(slog.NewJSONHandler(io.Discard, nil))
	_, srv := newTestServer(t, Config{Workers: 2, DropTraces: true, Logger: logger})
	for _, f := range fs {
		path, req := "/v1/solve", f.Solve
		if req == nil {
			path, req = "/v1/portfolio", f.Race
		}
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(string(req)))
		if err != nil {
			t.Fatal(err)
		}
		body := readAll(t, resp)
		if resp.StatusCode != http.StatusOK {
			t.Errorf("%s: status %d: %s", f.Desc, resp.StatusCode, body)
			continue
		}
		if got := strings.TrimRight(string(body), "\n"); got != f.Body {
			t.Errorf("%s: body changed:\n got  %s\n want %s", f.Desc, got, f.Body)
		}
		var out struct {
			Hash string `json:"hash"`
		}
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("%s: %v", f.Desc, err)
		}
		if out.Hash != f.Hash {
			t.Errorf("%s: hash changed:\n got  %s\n want %s", f.Desc, out.Hash, f.Hash)
		}
	}
}
