package service

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"math"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// getBody GETs a path from the test server and returns the response and body.
func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestServerTimingHitAndMiss: every solve response carries a Server-Timing
// header; a cold solve reports the full stage breakdown, a warm one the
// cache verdict — and neither leaks timing into the body.
func TestServerTimingHitAndMiss(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2})

	r1, b1 := postSolve(t, srv, walkBody)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("cold solve: %d %s", r1.StatusCode, b1)
	}
	st1 := r1.Header.Get("Server-Timing")
	if st1 == "" {
		t.Fatal("cold solve has no Server-Timing header")
	}
	if !strings.HasPrefix(st1, "cache;desc=miss") {
		t.Errorf("cold Server-Timing = %q, want cache;desc=miss prefix", st1)
	}
	for _, stage := range []string{"resolve;dur=", "queue;dur=", "sim;dur=", "marshal;dur=", "total;dur="} {
		if !strings.Contains(st1, stage) {
			t.Errorf("cold Server-Timing %q missing stage %q", st1, stage)
		}
	}

	r2, b2 := postSolve(t, srv, walkBody)
	st2 := r2.Header.Get("Server-Timing")
	if st2 == "" {
		t.Fatal("warm solve has no Server-Timing header")
	}
	if !strings.HasPrefix(st2, "cache;desc=hit") {
		t.Errorf("warm Server-Timing = %q, want cache;desc=hit prefix", st2)
	}
	for _, stage := range []string{"resolve;dur=", "total;dur="} {
		if !strings.Contains(st2, stage) {
			t.Errorf("warm Server-Timing %q missing stage %q", st2, stage)
		}
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("instrumented bodies differ between cold and warm serves")
	}
	// The timing header is per-request, not cached with the body.
	if st1 == st2 {
		t.Errorf("cold and warm Server-Timing identical (%q) — header cached with the body?", st1)
	}
}

// metricValue extracts one sample value from a Prometheus exposition by its
// exact series spelling (name plus label set as written by the exposition).
func metricValue(t *testing.T, exposition, series string) float64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(series) + ` (\S+)$`)
	m := re.FindStringSubmatch(exposition)
	if m == nil {
		t.Fatalf("series %q not found in exposition", series)
	}
	v, err := strconv.ParseFloat(m[1], 64)
	if err != nil {
		t.Fatalf("series %q value %q: %v", series, m[1], err)
	}
	return v
}

// TestMetricszExposition drives deterministic traffic and asserts the
// scrape moves: outcome counters, per-shape counters, stage histograms,
// and the sim probe totals all reflect the two solves and one race.
func TestMetricszExposition(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2})

	postSolve(t, srv, walkBody) // miss
	postSolve(t, srv, walkBody) // hit
	resp, body := getBody(t, srv.URL+"/metricsz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metricsz: %d %s", resp.StatusCode, body)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("metricsz Content-Type = %q", ct)
	}
	exp := string(body)

	if v := metricValue(t, exp, "dftp_cache_hits_total"); v != 1 {
		t.Errorf("dftp_cache_hits_total = %v, want 1", v)
	}
	if v := metricValue(t, exp, "dftp_cache_misses_total"); v != 1 {
		t.Errorf("dftp_cache_misses_total = %v, want 1", v)
	}
	if v := metricValue(t, exp, `dftp_requests_total{endpoint="solve",outcome="hit"}`); v != 1 {
		t.Errorf("requests{solve,hit} = %v, want 1", v)
	}
	if v := metricValue(t, exp, `dftp_requests_total{endpoint="solve",outcome="miss"}`); v != 1 {
		t.Errorf("requests{solve,miss} = %v, want 1", v)
	}
	if v := metricValue(t, exp, `dftp_requests_by_shape_total{endpoint="solve",algorithm="AGrid",metric="l2"}`); v != 2 {
		t.Errorf("requests_by_shape{AGrid} = %v, want 2", v)
	}
	// Both requests pass through the request-duration histogram; the solve
	// stage histograms see only the cold one.
	if v := metricValue(t, exp, `dftp_request_duration_seconds_count{endpoint="solve"}`); v != 2 {
		t.Errorf("request_duration count = %v, want 2", v)
	}
	if v := metricValue(t, exp, `dftp_stage_duration_seconds_count{stage="sim"}`); v != 1 {
		t.Errorf("stage sim count = %v, want 1", v)
	}
	for _, probe := range []string{"dftp_sim_steps_total", "dftp_sim_looks_total", "dftp_sim_moves_total", "dftp_sim_wakes_total"} {
		if v := metricValue(t, exp, probe); v <= 0 {
			t.Errorf("%s = %v, want > 0", probe, v)
		}
	}
	if v := metricValue(t, exp, "dftp_workers"); v != 2 {
		t.Errorf("dftp_workers = %v, want 2", v)
	}

	// A race moves the portfolio-side series, including racer telemetry.
	raceBody := `{"algorithms":["agrid","awave"],"family":"walk","n":16,"param":0.9,"seed":1}`
	resp2, data := func() (*http.Response, []byte) {
		r, err := http.Post(srv.URL+"/v1/portfolio", "application/json", strings.NewReader(raceBody))
		if err != nil {
			t.Fatal(err)
		}
		d, _ := io.ReadAll(r.Body)
		r.Body.Close()
		return r, d
	}()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("portfolio: %d %s", resp2.StatusCode, data)
	}
	_, body = getBody(t, srv.URL+"/metricsz")
	exp = string(body)
	if v := metricValue(t, exp, "dftp_races_total"); v != 1 {
		t.Errorf("dftp_races_total = %v, want 1", v)
	}
	if v := metricValue(t, exp, `dftp_requests_total{endpoint="portfolio",outcome="miss"}`); v != 1 {
		t.Errorf("requests{portfolio,miss} = %v, want 1", v)
	}
	if v := metricValue(t, exp, "dftp_racer_sim_seconds_count"); v < 2 {
		t.Errorf("racer_sim count = %v, want ≥ 2 (both entrants ran)", v)
	}
}

// TestStatszFreshServerNoNaN: a brand-new server's /statsz must be valid
// JSON with every derived ratio exactly 0 — an unguarded 0/0 would make
// json.Marshal fail and turn the endpoint into a 500.
func TestStatszFreshServerNoNaN(t *testing.T) {
	s, srv := newTestServer(t, Config{Workers: 1})

	resp, body := getBody(t, srv.URL+"/statsz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fresh statsz: %d %s", resp.StatusCode, body)
	}
	var fields map[string]any
	if err := json.Unmarshal(body, &fields); err != nil {
		t.Fatalf("fresh statsz is not valid JSON: %v\n%s", err, body)
	}
	for _, ratio := range []string{"hitRate", "memoHitRate", "shedRate"} {
		v, ok := fields[ratio]
		if !ok {
			t.Errorf("statsz missing %q", ratio)
			continue
		}
		if f, ok := v.(float64); !ok || f != 0 {
			t.Errorf("fresh %s = %v, want exactly 0", ratio, v)
		}
	}

	// Same invariant on the Go API (the JSON route can't even represent NaN,
	// so check the struct too).
	st := s.Stats()
	for name, v := range map[string]float64{"HitRate": st.HitRate, "MemoHitRate": st.MemoHitRate, "ShedRate": st.ShedRate} {
		if math.IsNaN(v) || v != 0 {
			t.Errorf("fresh Stats().%s = %v, want 0", name, v)
		}
	}
}

// TestBuildz: the endpoint reports the toolchain and a sane uptime even in
// test binaries (which carry no VCS stamps).
func TestBuildz(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1})
	resp, body := getBody(t, srv.URL+"/buildz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("buildz: %d %s", resp.StatusCode, body)
	}
	var info BuildInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatalf("buildz JSON: %v\n%s", err, body)
	}
	if !strings.HasPrefix(info.GoVersion, "go") {
		t.Errorf("goVersion = %q, want a go toolchain version", info.GoVersion)
	}
	if info.UptimeSeconds < 0 {
		t.Errorf("uptimeSeconds = %v, want ≥ 0", info.UptimeSeconds)
	}
}

// TestStatszMatchesMetricsz: /statsz is a read-through view of the same
// registry /metricsz renders, so after arbitrary traffic the two must agree
// on every shared counter.
func TestStatszMatchesMetricsz(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2})
	postSolve(t, srv, walkBody)
	postSolve(t, srv, walkBody)
	postSolve(t, srv, `{"algorithm":"awave","family":"walk","n":16,"param":0.9,"seed":3}`)

	_, statsBody := getBody(t, srv.URL+"/statsz")
	var st Stats
	if err := json.Unmarshal(statsBody, &st); err != nil {
		t.Fatal(err)
	}
	_, metricsBody := getBody(t, srv.URL+"/metricsz")
	exp := string(metricsBody)
	for series, want := range map[string]int64{
		"dftp_cache_hits_total":   st.Hits,
		"dftp_cache_misses_total": st.Misses,
		"dftp_solves_total":       st.Solves,
		"dftp_memo_hits_total":    st.MemoHits,
	} {
		if got := metricValue(t, exp, series); int64(got) != want {
			t.Errorf("%s = %v but statsz says %d", series, got, want)
		}
	}
}

// TestRequestLogging: with a Logger configured every request emits one
// structured record carrying the endpoint, outcome, hash, and stage
// durations.
func TestRequestLogging(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	_, srv := newTestServer(t, Config{Workers: 1, Logger: logger})

	postSolve(t, srv, walkBody)
	postSolve(t, srv, walkBody)
	postSolve(t, srv, `{"algorithm":"nope","family":"walk","n":8}`)

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d log records, want 3:\n%s", len(lines), buf.String())
	}
	type rec struct {
		Level    string `json:"level"`
		Msg      string `json:"msg"`
		Endpoint string `json:"endpoint"`
		Outcome  string `json:"outcome"`
		Hash     string `json:"hash"`
		Error    string `json:"error"`
	}
	var rs []rec
	for _, ln := range lines {
		var r rec
		if err := json.Unmarshal([]byte(ln), &r); err != nil {
			t.Fatalf("log line %q: %v", ln, err)
		}
		rs = append(rs, r)
	}
	if rs[0].Outcome != OutcomeMiss || rs[0].Hash == "" || rs[0].Endpoint != "solve" {
		t.Errorf("cold record = %+v, want solve/miss with a hash", rs[0])
	}
	if rs[1].Outcome != OutcomeHit {
		t.Errorf("warm record outcome = %q, want hit", rs[1].Outcome)
	}
	if rs[2].Level != "WARN" || rs[2].Outcome != OutcomeError || rs[2].Error == "" {
		t.Errorf("error record = %+v, want WARN error with message", rs[2])
	}
}
