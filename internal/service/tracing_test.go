package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"
)

// traceTestConfig keeps every trace deterministically: a zero slow
// threshold is "use default", so the tests pin an absurdly low one (1ns —
// every request is slow) and disable the sampler to make keeps
// policy-driven, not coin-driven.
func traceTestConfig(cfg Config) Config {
	cfg.TraceSlow = time.Nanosecond
	cfg.TraceSample = -1
	return cfg
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(data, out); err != nil {
			t.Fatalf("decode %s: %v\n%s", url, err, data)
		}
	}
	return resp
}

var traceIDRe = regexp.MustCompile(`traceid;desc="([^"]+)"`)

// A slow-kept cold solve must land in /tracez with all four stages, and
// its ID must appear in the Server-Timing header — the cross-link clients
// follow from a response to its trace.
func TestTracezSlowKeptSolve(t *testing.T) {
	_, srv := newTestServer(t, traceTestConfig(Config{Workers: 2}))

	resp, body := postSolve(t, srv, walkBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve: %d %s", resp.StatusCode, body)
	}
	st := resp.Header.Get("Server-Timing")
	m := traceIDRe.FindStringSubmatch(st)
	if m == nil {
		t.Fatalf("Server-Timing has no traceid entry: %q", st)
	}
	id := m[1]

	var tz TracezResponse
	getJSON(t, srv.URL+"/tracez", &tz)
	if tz.Kept < 1 || len(tz.Traces) < 1 {
		t.Fatalf("tracez kept=%d traces=%d, want ≥1", tz.Kept, len(tz.Traces))
	}
	var got *TracezSummary
	for i := range tz.Traces {
		if tz.Traces[i].ID == id {
			got = &tz.Traces[i]
		}
	}
	if got == nil {
		t.Fatalf("trace %s not in /tracez listing", id)
	}
	if got.Outcome != OutcomeMiss || !got.Slow {
		t.Fatalf("trace = %+v, want slow miss", got)
	}
	for _, stage := range []string{"resolve", "queue", "sim", "marshal"} {
		if _, ok := got.Stages[stage]; !ok {
			t.Fatalf("trace stages %v missing %q", got.Stages, stage)
		}
	}

	// The full view resolves by ID and orders root-track spans sequentially.
	var full TraceJSON
	getJSON(t, srv.URL+"/tracez/"+id, &full)
	if len(full.Spans) != 4 {
		t.Fatalf("full trace has %d spans, want 4: %+v", len(full.Spans), full.Spans)
	}
	for i := 1; i < len(full.Spans); i++ {
		if full.Spans[i].StartMs < full.Spans[i-1].StartMs {
			t.Fatalf("span %d starts before its predecessor: %+v", i, full.Spans)
		}
	}

	// And the trace-event rendering is valid Chrome trace JSON.
	respTE, err := http.Get(srv.URL + "/tracez/" + id + "?format=trace-event")
	if err != nil {
		t.Fatal(err)
	}
	te, _ := io.ReadAll(respTE.Body)
	respTE.Body.Close()
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(te, &doc); err != nil {
		t.Fatalf("trace-event output is not valid JSON: %v\n%s", err, te)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatalf("trace-event output has no events:\n%s", te)
	}
}

// Errored requests are always kept, even when the sampler would never
// fire and the request is fast.
func TestTracezErrorAlwaysKept(t *testing.T) {
	cfg := traceTestConfig(Config{Workers: 1})
	cfg.TraceSlow = -1 // slow policy off too: only the error policy can keep
	s, srv := newTestServer(t, cfg)

	resp, _ := postSolve(t, srv, `{"algorithm":"nope","family":"walk","n":8}`)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad algorithm: %d, want 400", resp.StatusCode)
	}
	if st := resp.Header.Get("Server-Timing"); !strings.Contains(st, "cache;desc=error") {
		t.Fatalf("error Server-Timing = %q, want cache;desc=error", st)
	}
	var tz TracezResponse
	getJSON(t, srv.URL+"/tracez", &tz)
	if len(tz.Traces) != 1 {
		t.Fatalf("kept %d traces, want exactly the errored one", len(tz.Traces))
	}
	tr := tz.Traces[0]
	if tr.Outcome != OutcomeError || tr.Error == "" {
		t.Fatalf("trace = %+v, want errored with message", tr)
	}
	if s.Stats().TracesKept != 1 {
		t.Fatalf("stats TracesKept = %d, want 1", s.Stats().TracesKept)
	}
}

// With tracing policies all disabled, nothing is kept and /tracez reports
// an empty recorder — but the endpoints still answer.
func TestTracezNothingKeptWhenDisabledPolicies(t *testing.T) {
	cfg := Config{Workers: 1, TraceSample: -1, TraceSlow: -1}
	_, srv := newTestServer(t, cfg)

	postSolve(t, srv, walkBody)
	var tz TracezResponse
	getJSON(t, srv.URL+"/tracez", &tz)
	if tz.Kept != 0 || tz.TotalKept != 0 {
		t.Fatalf("kept %d/%d traces with all policies off", tz.Kept, tz.TotalKept)
	}
	resp := getJSON(t, srv.URL+"/tracez/deadbeef", nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown trace id: %d, want 404", resp.StatusCode)
	}
}

// TraceBuffer < 0 disables the recorder entirely: /tracez is 404 and
// solves still work.
func TestTracezDisabled(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1, TraceBuffer: -1})
	resp, body := postSolve(t, srv, walkBody)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("solve with tracing disabled: %d %s", resp.StatusCode, body)
	}
	r := getJSON(t, srv.URL+"/tracez", nil)
	if r.StatusCode != http.StatusNotFound {
		t.Fatalf("/tracez with tracing disabled: %d, want 404", r.StatusCode)
	}
}

// An inbound W3C traceparent supplies the trace ID: the kept trace and the
// Server-Timing entry both carry the client's ID.
func TestTraceparentPropagation(t *testing.T) {
	_, srv := newTestServer(t, traceTestConfig(Config{Workers: 1}))

	const wantID = "4bf92f3577b34da6a3ce929d0e0e4736"
	req, _ := http.NewRequest("POST", srv.URL+"/v1/solve", strings.NewReader(walkBody))
	req.Header.Set("traceparent", "00-"+wantID+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	m := traceIDRe.FindStringSubmatch(resp.Header.Get("Server-Timing"))
	if m == nil || m[1] != wantID {
		t.Fatalf("Server-Timing traceid = %v, want %s", m, wantID)
	}
	var full TraceJSON
	getJSON(t, srv.URL+"/tracez/"+wantID, &full)
	if full.ID != wantID || !full.Sampled {
		t.Fatalf("trace = %+v, want id %s sampled (traceparent flag 01)", full.TracezSummary, wantID)
	}
}

// X-Request-ID is echoed on every response — success, client error, shed —
// and lands in the structured request log.
func TestRequestIDEchoEverywhere(t *testing.T) {
	var logBuf bytes.Buffer
	cfg := traceTestConfig(Config{Workers: 1, Logger: slog.New(slog.NewJSONHandler(&logBuf, nil))})
	_, srv := newTestServer(t, cfg)

	send := func(path, body, rid string) *http.Response {
		t.Helper()
		req, _ := http.NewRequest("POST", srv.URL+path, strings.NewReader(body))
		req.Header.Set("X-Request-ID", rid)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp
	}

	ok := send("/v1/solve", walkBody, "client-req-1")
	if got := ok.Header.Get("X-Request-ID"); got != "client-req-1" {
		t.Fatalf("success echo = %q", got)
	}
	bad := send("/v1/solve", `{"algorithm":"nope"}`, "client-req-2")
	if got := bad.Header.Get("X-Request-ID"); got != "client-req-2" {
		t.Fatalf("400 echo = %q", got)
	}
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad request status = %d", bad.StatusCode)
	}
	// Oversized body: rejected at decode (413), still echoed.
	huge := send("/v1/solve", `{"instance":{"points":[`+strings.Repeat("[0,0],", 6<<20)+`[0,0]]}}`, "client-req-3")
	if huge.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status = %d, want 413", huge.StatusCode)
	}
	if got := huge.Header.Get("X-Request-ID"); got != "client-req-3" {
		t.Fatalf("413 echo = %q", got)
	}
	// A hostile ID (header-breaking characters) is dropped, not reflected.
	evil := send("/v1/solve", walkBody, `x";evil=1`)
	if got := evil.Header.Get("X-Request-ID"); got != "" {
		t.Fatalf("hostile id reflected: %q", got)
	}

	// The client's ID joins the structured log record.
	if !strings.Contains(logBuf.String(), `"requestId":"client-req-1"`) {
		t.Fatalf("request log missing requestId:\n%s", logBuf.String())
	}
	// And the kept trace's ID appears in both the log and the listing.
	var tz TracezResponse
	getJSON(t, srv.URL+"/tracez", &tz)
	found := false
	for _, tr := range tz.Traces {
		if strings.Contains(logBuf.String(), `"trace":"`+tr.ID+`"`) {
			found = true
		}
	}
	if !found {
		t.Fatalf("no kept trace ID appears in the request log\nlog:\n%s", logBuf.String())
	}
}

// Shed responses (429) carry a queue-derived Retry-After — an integer
// number of seconds, at least 1 — plus the shed Server-Timing marker, and
// the shed trace is always kept.
func TestShedResponseHeadersAndTrace(t *testing.T) {
	block := make(chan struct{})
	cfg := traceTestConfig(Config{Workers: 1, QueueDepth: 1, preSolve: func() { <-block }})
	cfg.TraceSlow = -1 // only the shed policy may keep
	_, srv := newTestServer(t, cfg)
	defer close(block)

	// Fill the admission budget (QueueDepth+Workers = 2 effective slots)
	// with two requests held open by the blocked worker, then overflow.
	// The client goroutines stay blocked until the deferred close.
	for i := 0; i < 2; i++ {
		go func(i int) {
			body := fmt.Sprintf(`{"algorithm":"agrid","family":"walk","n":24,"param":0.9,"seed":%d}`, 100+i)
			resp, err := http.Post(srv.URL+"/v1/solve", "application/json", strings.NewReader(body))
			if err == nil {
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(i)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		var st Stats
		getJSON(t, srv.URL+"/statsz", &st)
		if st.QueueWeight >= 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: weight %d", st.QueueWeight)
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Admission is at capacity, so this request must shed without blocking.
	shedResp, _ := postSolve(t, srv, `{"algorithm":"agrid","family":"walk","n":24,"param":0.9,"seed":999}`)
	if shedResp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow request: %d, want 429", shedResp.StatusCode)
	}
	ra, err := strconv.Atoi(shedResp.Header.Get("Retry-After"))
	if err != nil || ra < 1 || ra > 60 {
		t.Fatalf("Retry-After = %q, want integer in [1,60]", shedResp.Header.Get("Retry-After"))
	}
	if st := shedResp.Header.Get("Server-Timing"); !strings.Contains(st, "cache;desc=shed") {
		t.Fatalf("shed Server-Timing = %q, want cache;desc=shed", st)
	}
	var tz TracezResponse
	getJSON(t, srv.URL+"/tracez", &tz)
	foundShed := false
	for _, tr := range tz.Traces {
		if tr.Outcome == OutcomeShed {
			foundShed = true
		}
	}
	if !foundShed {
		t.Fatalf("no shed trace kept; listing: %+v", tz.Traces)
	}
}

// A kept portfolio trace carries per-racer child spans on non-zero tracks.
func TestTracezPortfolioRacerSpans(t *testing.T) {
	_, srv := newTestServer(t, traceTestConfig(Config{Workers: 2}))

	body := `{"algorithms":["agrid","awave"],"family":"walk","n":24,"param":0.9,"seed":7}`
	resp, err := http.Post(srv.URL+"/v1/portfolio", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("portfolio: %d", resp.StatusCode)
	}
	m := traceIDRe.FindStringSubmatch(resp.Header.Get("Server-Timing"))
	if m == nil {
		t.Fatalf("portfolio Server-Timing has no traceid: %q", resp.Header.Get("Server-Timing"))
	}
	var full TraceJSON
	getJSON(t, srv.URL+"/tracez/"+m[1], &full)
	racers := 0
	for _, sp := range full.Spans {
		if sp.Track > 0 {
			if !strings.HasPrefix(sp.Name, "racer:") {
				t.Fatalf("non-root span %+v not a racer", sp)
			}
			racers++
		}
	}
	if racers != 2 {
		t.Fatalf("portfolio trace has %d racer spans, want 2: %+v", racers, full.Spans)
	}
	if full.Racers != 2 {
		t.Fatalf("summary racer count = %d, want 2", full.Racers)
	}
}

// The ring keeps the most recent TraceBuffer traces: older ones evict, and
// /tracez reports the eviction count.
func TestTracezRingEviction(t *testing.T) {
	cfg := traceTestConfig(Config{Workers: 1, TraceBuffer: 4})
	_, srv := newTestServer(t, cfg)

	for seed := 0; seed < 10; seed++ {
		body := fmt.Sprintf(`{"algorithm":"agrid","family":"walk","n":16,"param":0.9,"seed":%d}`, seed)
		resp, b := postSolve(t, srv, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("solve %d: %d %s", seed, resp.StatusCode, b)
		}
	}
	var tz TracezResponse
	getJSON(t, srv.URL+"/tracez", &tz)
	if tz.Capacity != 4 || tz.Kept != 4 {
		t.Fatalf("capacity/kept = %d/%d, want 4/4", tz.Capacity, tz.Kept)
	}
	if tz.TotalKept != 10 || tz.Evicted != 6 {
		t.Fatalf("totalKept/evicted = %d/%d, want 10/6", tz.TotalKept, tz.Evicted)
	}
	// Newest first: each listed trace started no earlier than its successor.
	for i := 1; i < len(tz.Traces); i++ {
		if tz.Traces[i].Start.After(tz.Traces[i-1].Start) {
			t.Fatalf("listing not newest-first at %d: %+v", i, tz.Traces)
		}
	}
}

// dftp_build_info is exposed with value 1 and the identity labels.
func TestBuildInfoMetric(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1})
	resp, err := http.Get(srv.URL + "/metricsz")
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	text := string(data)
	if !strings.Contains(text, "dftp_build_info{") {
		t.Fatalf("/metricsz missing dftp_build_info:\n%s", text)
	}
	re := regexp.MustCompile(`dftp_build_info\{[^}]*goVersion="[^"]+"[^}]*\} 1\n`)
	if !re.MatchString(text) {
		t.Fatalf("dftp_build_info lacks goVersion label or value 1:\n%s", text)
	}
	for _, label := range []string{"revision=", "modified="} {
		if !strings.Contains(text, label) {
			t.Fatalf("dftp_build_info missing %s label", label)
		}
	}
}
