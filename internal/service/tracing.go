// Per-request tracing: every HTTP request gets a trace ID (inbound W3C
// traceparent or X-Request-ID, minted otherwise), its resolve → queue →
// sim → marshal stages become a timestamped trace with child spans and
// events, and completed traces land in a fixed-capacity ring buffer
// (obs.TraceStore) served by GET /tracez.
//
// The keep policy is the whole design: slow, errored, and shed requests
// are ALWAYS kept (they are the ones worth explaining after the fact),
// everything else is kept with probability Config.TraceSample. Unkept
// requests never touch the store and never allocate — the stage data they
// would have contributed already lives on the caller's stack in the
// obs.Span the service keeps for histograms, preserving the cold-path
// zero-extra-allocation contract from the instrumentation PR.
package service

import (
	"encoding/json"
	"errors"
	"math/rand/v2"
	"net/http"
	"time"

	"freezetag/internal/obs"
)

// TraceOpt carries a request's trace identity, decided at the transport
// layer before the service sees the request. The zero value is valid:
// direct API callers (tests, benchmarks, batch items) pass TraceOpt{} and
// still get always-keep tracing for slow/errored/shed requests, with an
// ID minted lazily at keep time.
type TraceOpt struct {
	// ID is the trace ID: the inbound W3C traceparent trace-id, the
	// client's X-Request-ID, or a minted 16-byte hex ID. Empty means
	// "mint one only if the trace is kept".
	ID string
	// RequestID is the client-supplied X-Request-ID, echoed on the
	// response and attached to the structured request log so client and
	// server logs join on one key. Empty when the client sent none.
	RequestID string
	// Sampled marks the request pre-selected by probabilistic sampling
	// (or by an inbound traceparent sampled flag): its trace is kept even
	// if fast and successful.
	Sampled bool
}

// traceIngress derives a request's trace identity from its headers: a
// valid W3C traceparent wins (its sampled flag is honored), then a
// client-supplied X-Request-ID, then a minted ID — so every HTTP request
// has a trace ID, and the one in the response's Server-Timing header is
// the one a client can look up in /tracez and grep in the request log.
func (s *Service) traceIngress(r *http.Request) TraceOpt {
	var topt TraceOpt
	if id, sampled, ok := obs.ParseTraceparent(r.Header.Get("traceparent")); ok {
		topt.ID, topt.Sampled = id, sampled
	}
	if rid := sanitizeRequestID(r.Header.Get("X-Request-ID")); rid != "" {
		topt.RequestID = rid
		if topt.ID == "" {
			topt.ID = rid
		}
	}
	if topt.ID == "" {
		topt.ID = obs.NewTraceID()
	}
	if !topt.Sampled && s.cfg.TraceSample > 0 {
		topt.Sampled = rand.Float64() < s.cfg.TraceSample
	}
	return topt
}

// sanitizeRequestID accepts a client request ID only when it is safe to
// reflect into response headers, Server-Timing values, and log lines:
// 1–128 chars of a conservative token alphabet. Anything else is treated
// as absent rather than escaped — the ID's job is correlation, and an ID
// that needs escaping would corrupt the very greps it exists for.
func sanitizeRequestID(v string) string {
	if v == "" || len(v) > 128 {
		return ""
	}
	for i := 0; i < len(v); i++ {
		c := v[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '-' || c == '_' || c == '.' || c == ':' || c == '/' || c == '+' || c == '=' || c == '@':
		default:
			return ""
		}
	}
	return v
}

// Trace-keep policy reasons, the label values of dftp_traces_kept_total.
const (
	keepSlow    = "slow"
	keepError   = "error"
	keepShed    = "shed"
	keepSampled = "sampled"
)

// recordTrace applies the keep policy to one finished request and, when it
// keeps, assembles the trace and adds it to the ring. It runs inside
// finish, after the outcome is known — always-keep-slow needs the total.
// The unkept path returns without allocating.
func (s *Service) recordTrace(endpoint string, sv *Solved, sp *obs.Span, topt TraceOpt, err error) {
	if s.traces == nil {
		return
	}
	slow := s.cfg.TraceSlow > 0 && sv.Total >= s.cfg.TraceSlow
	var reason string
	switch {
	case sv.Outcome == OutcomeError:
		reason = keepError
	case sv.Outcome == OutcomeShed:
		reason = keepShed
	case slow:
		reason = keepSlow
	case topt.Sampled:
		reason = keepSampled
	default:
		return
	}
	if sv.TraceID == "" {
		sv.TraceID = obs.NewTraceID()
	}
	t := &obs.Trace{
		ID:      sv.TraceID,
		Name:    endpoint,
		Outcome: sv.Outcome,
		Start:   sp.Begin(),
		Total:   sv.Total,
		Slow:    slow,
		Sampled: topt.Sampled,
	}
	if err != nil {
		t.Error = err.Error()
	}
	// Stage spans, reconstructed sequentially from the request's stage
	// durations: resolve always ran; queue/sim/marshal only on runs (for
	// coalesced requests they describe the in-flight run that was joined,
	// same as Server-Timing). Synchronization gaps between stages are
	// folded into the following stage's start, so the timeline is an
	// honest approximation, exact at the resolve boundary.
	t.Spans = append(t.Spans, obs.TraceSpan{Name: "resolve", D: sv.Resolve})
	if sv.Outcome == OutcomeMiss || sv.Outcome == OutcomeCoalesced {
		off := sv.Resolve
		t.Spans = append(t.Spans, obs.TraceSpan{Name: "queue", Start: off, D: sv.Queue})
		off += sv.Queue
		t.Spans = append(t.Spans, obs.TraceSpan{Name: "sim", Start: off, D: sv.Sim})
		if sv.Repair > 0 {
			// Fault-injected runs: the estimated slice of sim spent inside the
			// repair layer's active window, right-aligned within the sim span
			// (repairs concentrate in the run's tail once faults have fired).
			t.Spans = append(t.Spans, obs.TraceSpan{Name: "repair", Start: off + sv.Sim - sv.Repair, D: sv.Repair})
		}
		off += sv.Sim
		t.Spans = append(t.Spans, obs.TraceSpan{Name: "marshal", Start: off, D: sv.Marshal})
	}
	switch sv.Outcome {
	case OutcomeHit:
		t.Events = append(t.Events, obs.TraceEvent{Name: "cache-hit", At: sv.Resolve})
	case OutcomeCoalesced:
		t.Events = append(t.Events, obs.TraceEvent{Name: "single-flight-join", At: sv.Resolve})
	case OutcomeMiss:
		t.Events = append(t.Events, obs.TraceEvent{Name: "cache-miss", At: sv.Resolve})
	case OutcomeShed:
		t.Events = append(t.Events, obs.TraceEvent{Name: "shed", At: sv.Total})
	case OutcomeError:
		t.Events = append(t.Events, obs.TraceEvent{Name: "error", At: sv.Total})
	}
	// Racer child spans (portfolio runs): wall-clock by nature, placed on
	// per-entrant tracks. A racer that started before this request's span
	// (possible for coalesced joiners) clamps to the trace start.
	for _, ob := range sv.racers {
		if ob.Start.IsZero() {
			t.Events = append(t.Events, obs.TraceEvent{Name: "racer-skipped:" + ob.Algorithm, At: sv.Total})
			continue
		}
		start := ob.Start.Sub(t.Start)
		if start < 0 {
			start = 0
		}
		t.Spans = append(t.Spans, obs.TraceSpan{
			Name: "racer:" + ob.Algorithm, Track: ob.Index + 1, Start: start, D: ob.Wall})
	}
	s.traces.Add(t)
	if c := s.tracesKept[reason]; c != nil {
		c.Inc()
	}
}

// TracezSummary is one trace in the GET /tracez listing: identity, verdicts,
// and the per-stage breakdown in milliseconds. The ID is the cross-link —
// the same value appears in the response's Server-Timing `traceid` entry
// and the structured request log's `trace` field.
type TracezSummary struct {
	ID       string             `json:"id"`
	Endpoint string             `json:"endpoint"`
	Outcome  string             `json:"outcome"`
	Error    string             `json:"error,omitempty"`
	Start    time.Time          `json:"start"`
	TotalMs  float64            `json:"totalMs"`
	Slow     bool               `json:"slow"`
	Sampled  bool               `json:"sampled"`
	Stages   map[string]float64 `json:"stages"`
	Racers   int                `json:"racers,omitempty"`
}

// TracezResponse is the GET /tracez payload.
type TracezResponse struct {
	Capacity        int             `json:"capacity"`
	Kept            int             `json:"kept"`      // traces currently held
	TotalKept       int64           `json:"totalKept"` // lifetime keeps
	Evicted         int64           `json:"evicted"`
	SampleRate      float64         `json:"sampleRate"`
	SlowThresholdMs float64         `json:"slowThresholdMs"`
	Traces          []TracezSummary `json:"traces"`
}

// TraceSpanJSON / TraceEventJSON / TraceJSON are the full single-trace
// view of GET /tracez/{id} (the default format; ?format=trace-event emits
// Chrome trace_event JSON instead).
type TraceSpanJSON struct {
	Name    string  `json:"name"`
	Track   int     `json:"track"`
	StartMs float64 `json:"startMs"`
	DurMs   float64 `json:"durMs"`
}

type TraceEventJSON struct {
	Name string  `json:"name"`
	AtMs float64 `json:"atMs"`
}

type TraceJSON struct {
	TracezSummary
	Spans  []TraceSpanJSON  `json:"spans"`
	Events []TraceEventJSON `json:"events,omitempty"`
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func summarize(t *obs.Trace) TracezSummary {
	sum := TracezSummary{
		ID:       t.ID,
		Endpoint: t.Name,
		Outcome:  t.Outcome,
		Error:    t.Error,
		Start:    t.Start,
		TotalMs:  ms(t.Total),
		Slow:     t.Slow,
		Sampled:  t.Sampled,
		Stages:   make(map[string]float64, 4),
	}
	for _, sp := range t.Spans {
		if sp.Track == 0 {
			sum.Stages[sp.Name] = ms(sp.D)
		} else {
			sum.Racers++
		}
	}
	return sum
}

// handleTracez lists the most recent traces, newest first. ?n= bounds the
// listing (default 64, capped by what the ring holds).
func (s *Service) handleTracez(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		s.writeError(w, http.StatusNotFound, errTracingDisabled)
		return
	}
	n := 64
	if q := r.URL.Query().Get("n"); q != "" {
		if v, err := parsePositiveInt(q); err == nil {
			n = v
		}
	}
	total := s.traces.Total()
	held := s.traces.Snapshot(n)
	out := TracezResponse{
		Capacity:        s.traces.Capacity(),
		Kept:            s.traces.Len(),
		TotalKept:       total,
		Evicted:         total - int64(s.traces.Len()),
		SampleRate:      sampleRate(s.cfg.TraceSample),
		SlowThresholdMs: slowMs(s.cfg.TraceSlow),
		Traces:          make([]TracezSummary, len(held)),
	}
	for i, t := range held {
		out.Traces[i] = summarize(t)
	}
	writeJSON(w, out)
}

// handleTracezOne serves one trace by ID: the full span/event view by
// default, Chrome trace_event JSON (Perfetto-loadable) with
// ?format=trace-event.
func (s *Service) handleTracezOne(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		s.writeError(w, http.StatusNotFound, errTracingDisabled)
		return
	}
	t, ok := s.traces.Get(r.PathValue("id"))
	if !ok {
		s.writeError(w, http.StatusNotFound, errTraceNotFound)
		return
	}
	if r.URL.Query().Get("format") == "trace-event" {
		w.Header().Set("Content-Type", "application/json")
		obs.WriteTraceEvent(w, t)
		return
	}
	out := TraceJSON{
		TracezSummary: summarize(t),
		Spans:         make([]TraceSpanJSON, len(t.Spans)),
	}
	for i, sp := range t.Spans {
		out.Spans[i] = TraceSpanJSON{Name: sp.Name, Track: sp.Track, StartMs: ms(sp.Start), DurMs: ms(sp.D)}
	}
	for _, ev := range t.Events {
		out.Events = append(out.Events, TraceEventJSON{Name: ev.Name, AtMs: ms(ev.At)})
	}
	writeJSON(w, out)
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	body, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Write(append(body, '\n'))
}

// sampleRate / slowMs render the effective config (negatives mean
// "disabled" and report as 0).
func sampleRate(v float64) float64 {
	if v < 0 {
		return 0
	}
	return v
}

func slowMs(d time.Duration) float64 {
	if d < 0 {
		return 0
	}
	return ms(d)
}

func parsePositiveInt(s string) (int, error) {
	n := 0
	if s == "" {
		return 0, errBadInt
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' || n > 1<<24 {
			return 0, errBadInt
		}
		n = n*10 + int(s[i]-'0')
	}
	if n < 1 {
		return 0, errBadInt
	}
	return n, nil
}

var (
	errTracingDisabled = errors.New("tracing disabled (serve with -trace-buffer > 0)")
	errTraceNotFound   = errors.New("trace not found (evicted or never kept)")
	errBadInt          = errors.New("want a positive integer")
)
