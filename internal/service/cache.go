package service

import (
	"container/list"

	"freezetag/internal/sim"
)

// entry is one cached solve: the exact marshaled response bytes (cache hits
// must be byte-identical to the cold response, so the bytes themselves are
// what is stored) plus the event trace for GET /v1/trace/{hash}.
type entry struct {
	hash   string
	body   []byte
	events []sim.Event
}

// lruCache is a plain LRU over request hashes. It is not safe for
// concurrent use; the Service serializes access under its mutex.
type lruCache struct {
	cap int
	ll  *list.List // front = most recently used; values are *entry
	m   map[string]*list.Element
}

func newLRU(capacity int) *lruCache {
	if capacity < 1 {
		capacity = 1
	}
	return &lruCache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element, capacity)}
}

func (c *lruCache) get(hash string) (*entry, bool) {
	el, ok := c.m[hash]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*entry), true
}

func (c *lruCache) add(e *entry) {
	if el, ok := c.m[e.hash]; ok {
		c.ll.MoveToFront(el)
		el.Value = e
		return
	}
	c.m[e.hash] = c.ll.PushFront(e)
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*entry).hash)
	}
}

func (c *lruCache) len() int { return c.ll.Len() }
