package service

import (
	"unsafe"

	"freezetag/internal/dftp"
	"freezetag/internal/instance"
	"freezetag/internal/sim"
)

// entry is one cached solve: the exact marshaled response bytes (cache hits
// must be byte-identical to the cold response, so the bytes themselves are
// what is stored) plus the event trace for GET /v1/trace/{hash} (empty when
// trace retention is disabled) and the entry's approximate retained bytes.
type entry struct {
	hash   string
	body   []byte
	events []sim.Event
	size   int64
}

// entryOverhead approximates per-entry bookkeeping outside the payload:
// list node, map bucket share, entry struct, slice headers.
const entryOverhead = 256

// sized computes and stores the entry's approximate retained bytes: body +
// hash + trace + bookkeeping. Event payloads are the struct plus its string
// fields; this is an estimate (the cache bound is approximate by contract),
// but it scales with exactly the quantities that made the old entry-count
// bound unbounded in practice: response size and trace length.
func (e *entry) sized() *entry {
	size := int64(len(e.body)+len(e.hash)) + entryOverhead
	size += int64(len(e.events)) * int64(unsafe.Sizeof(sim.Event{}))
	for _, ev := range e.events {
		size += int64(len(ev.Kind) + len(ev.Extra))
	}
	e.size = size
	return e
}

// lru is the move-to-front / evict-from-back core shared by the result
// cache and the shape memo; sizeOf decides the unit the capacity bounds
// (retained bytes for the result cache, entries for the memo). One element
// is always admitted even if it alone exceeds the capacity (the alternative
// — a cache that silently never stores — would disable idempotent replies
// entirely). Not safe for concurrent use; the Service serializes access
// under its mutex.
//
// The list is intrusive — nodes link each other directly — and evicted
// nodes park on a freelist for reuse, so a full cache in steady state
// (every add evicts) moves no garbage beyond the evicted values themselves.
// Hot-path lookups take the key as bytes (getBytes) so callers can probe
// with a stack-built key and only materialize a string on the miss path.
type lru[V any] struct {
	capacity   int64
	total      int64
	count      int
	sizeOf     func(V) int64
	m          map[string]*lruNode[V]
	head, tail *lruNode[V] // head = most recently used
	free       *lruNode[V] // evicted nodes, chained via next
}

type lruNode[V any] struct {
	key        string
	val        V
	prev, next *lruNode[V]
}

func newCache[V any](capacity int64, sizeOf func(V) int64) *lru[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &lru[V]{capacity: capacity, sizeOf: sizeOf, m: make(map[string]*lruNode[V])}
}

// unlink removes n from the use-order list (it stays in the map).
func (c *lru[V]) unlink(n *lruNode[V]) {
	if n.prev != nil {
		n.prev.next = n.next
	} else {
		c.head = n.next
	}
	if n.next != nil {
		n.next.prev = n.prev
	} else {
		c.tail = n.prev
	}
	n.prev, n.next = nil, nil
}

// toFront makes n the most recently used node.
func (c *lru[V]) toFront(n *lruNode[V]) {
	if c.head == n {
		return
	}
	if n.prev != nil || n.next != nil || c.tail == n {
		c.unlink(n)
	}
	n.next = c.head
	if c.head != nil {
		c.head.prev = n
	}
	c.head = n
	if c.tail == nil {
		c.tail = n
	}
}

func (c *lru[V]) get(key string) (V, bool) {
	n, ok := c.m[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.toFront(n)
	return n.val, true
}

// getBytes is get with the key passed as bytes: the map lookup compiles to
// the no-copy string-key form, so probing with a scratch-built key does not
// allocate. The key string is only needed when the caller goes on to add.
func (c *lru[V]) getBytes(key []byte) (V, bool) {
	n, ok := c.m[string(key)]
	if !ok {
		var zero V
		return zero, false
	}
	c.toFront(n)
	return n.val, true
}

func (c *lru[V]) add(key string, val V) {
	if n, ok := c.m[key]; ok {
		c.total += c.sizeOf(val) - c.sizeOf(n.val)
		n.val = val
		c.toFront(n)
	} else {
		n := c.free
		if n != nil {
			c.free = n.next
			n.next = nil
		} else {
			n = &lruNode[V]{}
		}
		n.key, n.val = key, val
		c.m[key] = n
		c.toFront(n)
		c.total += c.sizeOf(val)
		c.count++
	}
	for c.total > c.capacity && c.count > 1 {
		oldest := c.tail
		c.unlink(oldest)
		delete(c.m, oldest.key)
		c.total -= c.sizeOf(oldest.val)
		c.count--
		var zero V
		oldest.key, oldest.val = "", zero // release for GC before parking
		oldest.next = c.free
		c.free = oldest
	}
}

func (c *lru[V]) len() int { return c.count }

// newLRU builds the result cache: an LRU over request hashes bounded by
// approximate retained bytes, not entry count — a handful of huge traced
// responses and thousands of small ones are both held to one memory budget.
func newLRU(capBytes int64) *lru[*entry] {
	return newCache(capBytes, func(e *entry) int64 { return e.size })
}

// newMemoLRU builds the request-shape → hash memo: family-generated
// requests are keyed by their scalar parameters, so a repeat of a known
// shape finds its content hash — and therefore its cached result — without
// re-generating the instance and re-hashing its points (the old hit path
// was O(n) in instance size). Entry-count bounded: entries are two short
// strings.
func newMemoLRU(capacity int) *lru[string] {
	return newCache(int64(capacity), func(string) int64 { return 1 })
}

// paramsMemo is one family shape's memoized derivation: the admissible
// tuple and the generated instance itself. The instance is immutable once
// built (request-level profiles are applied copy-on-write downstream), so
// sharing one *Instance across every job of the same shape is safe and
// turns the steady-state resolve into two map lookups.
type paramsMemo struct {
	tup  dftp.Tuple
	inst *instance.Instance
}

// newParamsLRU builds the family-shape → derivation memo: generating the
// point set and deriving (ℓ*, ρ*) are the expensive half of a family
// request's cold path and depend only on (metric, family, n, param, seed),
// so repeats of the same family shape — under any algorithm, objective, or
// budget — skip both. Entry-count bounded: entries are a short string, three
// scalars, and a shared instance pointer.
func newParamsLRU(capacity int) *lru[paramsMemo] {
	return newCache(int64(capacity), func(paramsMemo) int64 { return 1 })
}
