package service

import (
	"container/list"
	"unsafe"

	"freezetag/internal/dftp"
	"freezetag/internal/sim"
)

// entry is one cached solve: the exact marshaled response bytes (cache hits
// must be byte-identical to the cold response, so the bytes themselves are
// what is stored) plus the event trace for GET /v1/trace/{hash} (empty when
// trace retention is disabled) and the entry's approximate retained bytes.
type entry struct {
	hash   string
	body   []byte
	events []sim.Event
	size   int64
}

// entryOverhead approximates per-entry bookkeeping outside the payload:
// list element, map bucket share, entry struct, slice headers.
const entryOverhead = 256

// sized computes and stores the entry's approximate retained bytes: body +
// hash + trace + bookkeeping. Event payloads are the struct plus its string
// fields; this is an estimate (the cache bound is approximate by contract),
// but it scales with exactly the quantities that made the old entry-count
// bound unbounded in practice: response size and trace length.
func (e *entry) sized() *entry {
	size := int64(len(e.body)+len(e.hash)) + entryOverhead
	size += int64(len(e.events)) * int64(unsafe.Sizeof(sim.Event{}))
	for _, ev := range e.events {
		size += int64(len(ev.Kind) + len(ev.Extra))
	}
	e.size = size
	return e
}

// lru is the move-to-front / evict-from-back core shared by the result
// cache and the shape memo; sizeOf decides the unit the capacity bounds
// (retained bytes for the result cache, entries for the memo). One element
// is always admitted even if it alone exceeds the capacity (the alternative
// — a cache that silently never stores — would disable idempotent replies
// entirely). Not safe for concurrent use; the Service serializes access
// under its mutex.
type lru[V any] struct {
	capacity int64
	total    int64
	sizeOf   func(V) int64
	ll       *list.List // front = most recently used
	m        map[string]*list.Element
}

type lruNode[V any] struct {
	key string
	val V
}

func newCache[V any](capacity int64, sizeOf func(V) int64) *lru[V] {
	if capacity < 1 {
		capacity = 1
	}
	return &lru[V]{capacity: capacity, sizeOf: sizeOf, ll: list.New(), m: make(map[string]*list.Element)}
}

func (c *lru[V]) get(key string) (V, bool) {
	el, ok := c.m[key]
	if !ok {
		var zero V
		return zero, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruNode[V]).val, true
}

func (c *lru[V]) add(key string, val V) {
	if el, ok := c.m[key]; ok {
		node := el.Value.(*lruNode[V])
		c.total += c.sizeOf(val) - c.sizeOf(node.val)
		node.val = val
		c.ll.MoveToFront(el)
	} else {
		c.m[key] = c.ll.PushFront(&lruNode[V]{key: key, val: val})
		c.total += c.sizeOf(val)
	}
	for c.total > c.capacity && c.ll.Len() > 1 {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		node := oldest.Value.(*lruNode[V])
		delete(c.m, node.key)
		c.total -= c.sizeOf(node.val)
	}
}

func (c *lru[V]) len() int { return c.ll.Len() }

// newLRU builds the result cache: an LRU over request hashes bounded by
// approximate retained bytes, not entry count — a handful of huge traced
// responses and thousands of small ones are both held to one memory budget.
func newLRU(capBytes int64) *lru[*entry] {
	return newCache(capBytes, func(e *entry) int64 { return e.size })
}

// newMemoLRU builds the request-shape → hash memo: family-generated
// requests are keyed by their scalar parameters, so a repeat of a known
// shape finds its content hash — and therefore its cached result — without
// re-generating the instance and re-hashing its points (the old hit path
// was O(n) in instance size). Entry-count bounded: entries are two short
// strings.
func newMemoLRU(capacity int) *lru[string] {
	return newCache(int64(capacity), func(string) int64 { return 1 })
}

// newParamsLRU builds the family-shape → derived-tuple memo: the (ℓ*, ρ*)
// derivation is the expensive half of a family request's cold path and
// depends only on (metric, family, n, param, seed), so repeats of the same
// family shape — under any algorithm, objective, or budget — skip it.
// Entry-count bounded: entries are a short string and three scalars.
func newParamsLRU(capacity int) *lru[dftp.Tuple] {
	return newCache(int64(capacity), func(dftp.Tuple) int64 { return 1 })
}
