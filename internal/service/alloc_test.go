//go:build !race

// Allocation-regression gates for the serving hot paths. These are the CI
// teeth behind the per-job arena work: the cache-hit path must stay
// allocation-free apart from key scratch, and a steady-state solve — same
// request shape, distinct budget, so the whole resolve → simulate → marshal
// chain runs on the worker arena — must stay within a small fixed budget
// (the pre-arena figure was ~2600 allocs per solve).
//
// Excluded under -race: the race runtime instruments allocations and breaks
// AllocsPerRun accounting. CI runs this file in the non-race benchmark smoke
// step instead.
package service

import (
	"testing"
)

// TestAllocs_CacheHit gates the fully-warm path: request shape known, result
// cached. Everything — shape key, memo probe, cache probe — must run on
// stack or pooled storage; the only tolerated allocations are the key
// scratch spill and metrics bookkeeping.
func TestAllocs_CacheHit(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, DropTraces: true})
	req := walkRequest(7)
	if _, err := s.Solve(req); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		sv, err := s.Solve(req)
		if err != nil {
			t.Fatal(err)
		}
		if !sv.Hit {
			t.Fatal("expected a cache hit")
		}
	})
	if allocs > 5 {
		t.Fatalf("cache-hit path allocates %.1f allocs/op, budget is 5", allocs)
	}
}

// TestAllocs_SteadyStateSolve gates the arena path: each iteration is a real
// simulation (the budget changes, so neither cache nor memo can serve it),
// but the request shape repeats, so the worker arena's engine, spatial
// grids, wake-tree builder, and explore pools are all reused. Mirrors
// BenchmarkService_SolveSteadyState; budget 50 versus ~2600 pre-arena.
func TestAllocs_SteadyStateSolve(t *testing.T) {
	s := newTestService(t, Config{Workers: 1, DropTraces: true, CacheBytes: 1, QueueDepth: 1})
	req := walkRequest(7)
	// Warm the arena: first runs of a shape grow the slabs and pools.
	for i := 0; i < 3; i++ {
		req.Budget = 2e6 + float64(i)
		if _, err := s.Solve(req); err != nil {
			t.Fatal(err)
		}
	}
	budget := 1e6
	allocs := testing.AllocsPerRun(100, func() {
		budget++
		req.Budget = budget
		sv, err := s.Solve(req)
		if err != nil {
			t.Fatal(err)
		}
		if sv.Hit {
			t.Fatal("steady-state iteration unexpectedly served from cache")
		}
	})
	if allocs > 50 {
		t.Fatalf("steady-state solve allocates %.1f allocs/op, budget is 50", allocs)
	}
}
