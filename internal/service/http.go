package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"time"

	"freezetag/internal/obs"
	"freezetag/internal/trace"
)

// Handler returns the service's HTTP API:
//
//	POST /v1/solve            solve one request (cache-first; X-Cache: hit|miss)
//	POST /v1/portfolio        race several algorithms, return the winner (cache-first)
//	POST /v1/batch            solve many requests, order-preserving reply
//	GET  /v1/solve/{hash}     cache probe — never computes; 404 on miss
//	GET  /v1/trace/{hash}     cached event stream as NDJSON; 404 on miss
//	GET  /healthz             liveness
//	GET  /statsz              cache/queue/solve/race counters (JSON view of /metricsz)
//	GET  /metricsz            full metric registry, Prometheus text exposition
//	GET  /buildz              build/version info and process uptime
//	GET  /tracez              flight recorder — recent kept request traces, newest first
//	GET  /tracez/{id}         one trace; ?format=trace-event emits Chrome trace JSON
//
// A client-supplied X-Request-ID is echoed on every response — success,
// shed, oversized-body, even 404 — so clients can correlate any outcome
// with their own logs.
func (s *Service) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("POST /v1/portfolio", s.handlePortfolio)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("GET /v1/solve/{hash}", s.handleProbe)
	mux.HandleFunc("GET /v1/trace/{hash}", s.handleTrace)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statsz", s.handleStatsz)
	mux.HandleFunc("GET /metricsz", s.handleMetricsz)
	mux.HandleFunc("GET /buildz", s.handleBuildz)
	mux.HandleFunc("GET /tracez", s.handleTracez)
	mux.HandleFunc("GET /tracez/{id}", s.handleTracezOne)
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if rid := sanitizeRequestID(r.Header.Get("X-Request-ID")); rid != "" {
			w.Header().Set("X-Request-Id", rid)
		}
		mux.ServeHTTP(w, r)
	})
}

// decodeStatus maps a request-decode failure: oversized bodies are 413,
// everything else is 400.
func decodeStatus(err error) int {
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// writeError renders a JSON error body. 429s carry a Retry-After derived
// from the live queue state rather than a constant, so backoff scales with
// how far behind the service actually is.
func (s *Service) writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json")
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	}
	w.WriteHeader(status)
	body, _ := json.Marshal(map[string]string{"error": err.Error()})
	w.Write(append(body, '\n'))
}

// retryAfterSeconds estimates how long a shed client should wait: the
// current backlog divided across the worker pool, priced at the mean
// simulation time observed so far (an optimistic 250ms before any solve
// has completed), clamped to [1s, 60s]. A nearly drained queue answers 1;
// a deep backlog of slow sims pushes clients to back off harder.
func (s *Service) retryAfterSeconds() int {
	depth := len(s.jobs)
	mean := 0.25
	if snap := s.stageSim.Snapshot(); snap.Count > 0 {
		mean = snap.Sum / float64(snap.Count)
	}
	secs := int(math.Ceil(float64(depth+1) * mean / float64(s.cfg.Workers)))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// statusFor maps service errors to HTTP statuses.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrBadRequest):
		return http.StatusBadRequest
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, ErrClosed):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// maxBodyBytes caps request bodies: the bounded queue limits request
// count, this limits request size, so one oversized payload can't bypass
// load shedding. 32 MiB comfortably fits six-figure-point inline instances.
const maxBodyBytes = 32 << 20

// maxBatchItems caps one batch: beyond it a disconnected client could pin
// the worker pool on abandoned work for a very long time.
const maxBatchItems = 4096

func (s *Service) handleSolve(w http.ResponseWriter, r *http.Request) {
	topt := s.traceIngress(r)
	var req SolveRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		s.writeError(w, decodeStatus(err), fmt.Errorf("decode request: %w", err))
		return
	}
	sv, err := s.SolveTraced(topt, req)
	s.writeSolved(w, sv, err)
}

func (s *Service) handlePortfolio(w http.ResponseWriter, r *http.Request) {
	topt := s.traceIngress(r)
	var req PortfolioRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		s.writeError(w, decodeStatus(err), fmt.Errorf("decode request: %w", err))
		return
	}
	sv, err := s.SolvePortfolioTraced(topt, req)
	s.writeSolved(w, sv, err)
}

// writeSolved renders a Solve/SolvePortfolio outcome: the cached-or-cold
// canonical bytes with the X-Cache verdict and a Server-Timing stage
// breakdown, or the mapped error. Timing lives only in headers — the body
// is the canonical cached bytes, identical across hot and cold serves.
// Shed and errored requests get the Server-Timing header too (with
// cache;desc=shed|error), so a client can tell server-side rejection time
// from network time without a success.
func (s *Service) writeSolved(w http.ResponseWriter, sv Solved, err error) {
	w.Header().Set("Server-Timing", serverTiming(sv))
	if err != nil {
		s.writeError(w, statusFor(err), err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if sv.Hit {
		w.Header().Set("X-Cache", "hit")
	} else {
		w.Header().Set("X-Cache", "miss")
	}
	w.Write(sv.Body)
}

// serverTiming renders a request's Server-Timing header value: the cache
// verdict as a descriptor, the stages that ran, the end-to-end total, and
// the trace ID (when the request has one) as a zero-duration entry — the
// cross-link into /tracez and the request log. Hits report resolve+total
// only (the other stages didn't run); coalesced requests report the
// in-flight run they joined.
func serverTiming(sv Solved) string {
	b := make([]byte, 0, 192)
	b = append(b, "cache;desc="...)
	b = append(b, sv.Outcome...)
	b = obs.AppendServerTiming(b, "resolve", sv.Resolve)
	if sv.Queue > 0 || sv.Outcome == OutcomeMiss {
		b = obs.AppendServerTiming(b, "queue", sv.Queue)
	}
	if sv.Sim > 0 || sv.Outcome == OutcomeMiss {
		b = obs.AppendServerTiming(b, "sim", sv.Sim)
	}
	if sv.Marshal > 0 || sv.Outcome == OutcomeMiss {
		b = obs.AppendServerTiming(b, "marshal", sv.Marshal)
	}
	b = obs.AppendServerTiming(b, "total", sv.Total)
	if sv.TraceID != "" {
		b = append(b, `, traceid;desc="`...)
		b = append(b, sv.TraceID...)
		b = append(b, '"')
	}
	return string(b)
}

func (s *Service) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes)).Decode(&req); err != nil {
		s.writeError(w, decodeStatus(err), fmt.Errorf("decode request: %w", err))
		return
	}
	if len(req.Requests) > maxBatchItems {
		s.writeError(w, http.StatusBadRequest,
			fmt.Errorf("batch of %d exceeds the %d-item limit", len(req.Requests), maxBatchItems))
		return
	}
	// Fan the batch out over the shared queue; identical items coalesce via
	// single-flight. Concurrency is bounded by the worker-pool size so a
	// large batch cannot fill the job queue and shed its own tail (or spawn
	// unbounded goroutines). Results land at their request's index, so the
	// reply is order-preserving no matter how the solves interleave.
	items := make([]BatchItem, len(req.Requests))
	bound := s.cfg.Workers
	if bound > s.cfg.QueueDepth {
		bound = s.cfg.QueueDepth
	}
	sem := make(chan struct{}, bound)
	var wg sync.WaitGroup
	for i, one := range req.Requests {
		// Stop fanning out once the client is gone; already-dispatched
		// items finish (their results are cached for a retry).
		if err := r.Context().Err(); err != nil {
			for j := i; j < len(req.Requests); j++ {
				items[j] = BatchItem{Error: "client disconnected before dispatch"}
			}
			break
		}
		sem <- struct{}{}
		wg.Add(1)
		go func(i int, one SolveRequest) {
			defer func() { <-sem; wg.Done() }()
			sv, err := s.Solve(one)
			if err != nil {
				items[i] = BatchItem{Error: err.Error()}
				return
			}
			items[i] = BatchItem{Response: sv.Body}
		}(i, one)
	}
	wg.Wait()
	w.Header().Set("Content-Type", "application/json")
	body, err := json.Marshal(BatchResponse{Results: items})
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Write(append(body, '\n'))
}

func (s *Service) handleProbe(w http.ResponseWriter, r *http.Request) {
	body, ok := s.Probe(r.PathValue("hash"))
	if !ok {
		s.writeError(w, http.StatusNotFound, errors.New("not cached"))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("X-Cache", "hit")
	w.Write(body)
}

func (s *Service) handleTrace(w http.ResponseWriter, r *http.Request) {
	if !s.TracesRetained() {
		s.writeError(w, http.StatusNotFound, errors.New("trace retention disabled (serve with -traces)"))
		return
	}
	events, ok := s.TraceEvents(r.PathValue("hash"))
	if !ok {
		s.writeError(w, http.StatusNotFound, errors.New("not cached"))
		return
	}
	w.Header().Set("Content-Type", "application/x-ndjson")
	trace.WriteEventsNDJSON(w, events)
}

func (s *Service) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	w.Write([]byte("{\"status\":\"ok\"}\n"))
}

func (s *Service) handleStatsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	body, err := json.Marshal(s.Stats())
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Write(append(body, '\n'))
}

// handleMetricsz renders the whole metric registry in Prometheus text
// exposition format 0.0.4. It is the scrape target; /statsz is a JSON
// convenience view over the same registry.
func (s *Service) handleMetricsz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
	// Allocation-pressure gauges for load tooling (dftp-loadgen diffs these
	// across a load step to report GC cycles and bytes allocated alongside
	// its latency curves). Read directly per scrape rather than registered:
	// ReadMemStats is too expensive to sample on the request path, and
	// scrapes are rare.
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Fprintf(w, "# HELP go_gc_cycles_total Completed GC cycles.\n# TYPE go_gc_cycles_total counter\ngo_gc_cycles_total %d\n", ms.NumGC)
	fmt.Fprintf(w, "# HELP go_heap_alloc_bytes Live heap bytes.\n# TYPE go_heap_alloc_bytes gauge\ngo_heap_alloc_bytes %d\n", ms.HeapAlloc)
	fmt.Fprintf(w, "# HELP go_alloc_bytes_total Cumulative bytes allocated on the heap.\n# TYPE go_alloc_bytes_total counter\ngo_alloc_bytes_total %d\n", ms.TotalAlloc)
}

// BuildInfo is the /buildz payload: enough to identify a running binary
// from the outside — toolchain, module version, VCS revision and dirtiness
// — plus how long this process has been up.
type BuildInfo struct {
	GoVersion     string  `json:"goVersion"`
	Module        string  `json:"module,omitempty"`
	ModuleVersion string  `json:"moduleVersion,omitempty"`
	Revision      string  `json:"revision,omitempty"`
	CommitTime    string  `json:"commitTime,omitempty"`
	Dirty         bool    `json:"dirty"`
	UptimeSeconds float64 `json:"uptimeSeconds"`
}

// readBuildInfo extracts the binary's embedded build identity — shared by
// GET /buildz and the dftp_build_info metric, so the two always agree.
func readBuildInfo() BuildInfo {
	var info BuildInfo
	if bi, ok := debug.ReadBuildInfo(); ok {
		info.GoVersion = bi.GoVersion
		info.Module = bi.Main.Path
		info.ModuleVersion = bi.Main.Version
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision":
				info.Revision = kv.Value
			case "vcs.time":
				info.CommitTime = kv.Value
			case "vcs.modified":
				info.Dirty = kv.Value == "true"
			}
		}
	}
	return info
}

// handleBuildz reports build/version info from the binary's embedded build
// metadata. Fields missing from the build (e.g. VCS stamps in `go test`
// binaries) are omitted rather than faked.
func (s *Service) handleBuildz(w http.ResponseWriter, r *http.Request) {
	info := readBuildInfo()
	info.UptimeSeconds = time.Since(s.start).Seconds()
	w.Header().Set("Content-Type", "application/json")
	body, err := json.Marshal(info)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Write(append(body, '\n'))
}
