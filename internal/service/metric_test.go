package service

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func metricRequest(metric string, seed int64) SolveRequest {
	r := walkRequest(seed)
	r.Metric = metric
	return r
}

// All three built-in metrics solve end-to-end through the service, with
// byte-identical cached replays, distinct content hashes, and the canonical
// metric name echoed in the response.
func TestSolveMetricsEndToEnd(t *testing.T) {
	s := newTestService(t, Config{Workers: 2})
	hashes := map[string]string{}
	for _, name := range []string{"l1", "l2", "linf"} {
		cold, err := s.Solve(metricRequest(name, 5))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		warm, err := s.Solve(metricRequest(name, 5))
		if err != nil {
			t.Fatalf("%s replay: %v", name, err)
		}
		if !warm.Hit || !bytes.Equal(cold.Body, warm.Body) {
			t.Fatalf("%s: cached replay not byte-identical (hit=%v)", name, warm.Hit)
		}
		var resp SolveResponse
		if err := json.Unmarshal(cold.Body, &resp); err != nil {
			t.Fatal(err)
		}
		if resp.Metric != name {
			t.Errorf("%s: response metric %q", name, resp.Metric)
		}
		if !resp.AllAwake {
			t.Errorf("%s: run left robots asleep", name)
		}
		if prev, dup := hashes[cold.Hash]; dup {
			t.Errorf("metrics %s and %s share hash %s", name, prev, cold.Hash)
		}
		hashes[cold.Hash] = name
	}
	// The omitted metric is ℓ2: same hash, same cache entry.
	sv, err := s.Solve(walkRequest(5))
	if err != nil {
		t.Fatal(err)
	}
	if hashes[sv.Hash] != "l2" || !sv.Hit {
		t.Errorf("omitted metric did not alias the ℓ2 entry (hash %s, hit %v)", sv.Hash, sv.Hit)
	}
}

// lp:2 normalizes to ℓ2 at the wire boundary too — one cache entry, one key.
func TestSolveMetricLp2AliasesL2(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	a, err := s.Solve(metricRequest("l2", 6))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Solve(metricRequest("lp:2", 6))
	if err != nil {
		t.Fatal(err)
	}
	if a.Hash != b.Hash || !b.Hit {
		t.Fatalf("lp:2 (%s, hit=%v) did not alias l2 (%s)", b.Hash, b.Hit, a.Hash)
	}
}

// Unknown and degenerate metric spellings are rejected with ErrBadRequest —
// mapped to HTTP 400 — for both solve and portfolio requests, never silently
// defaulted.
func TestMetricBadRequests(t *testing.T) {
	s := newTestService(t, Config{Workers: 1})
	for _, bad := range []string{"l3", "lp:0", "lp:NaN", "lp:-1", "lp:", "chebishev"} {
		if _, err := s.Solve(metricRequest(bad, 1)); !errors.Is(err, ErrBadRequest) {
			t.Errorf("Solve metric %q: got %v, want ErrBadRequest", bad, err)
		}
		pr := portfolioRequest(1)
		pr.Metric = bad
		if _, err := s.SolvePortfolio(pr); !errors.Is(err, ErrBadRequest) {
			t.Errorf("SolvePortfolio metric %q: got %v, want ErrBadRequest", bad, err)
		}
	}
	// And over HTTP: a degenerate metric answers 400 with a parse message.
	srv := httptest.NewServer(s.Handler())
	t.Cleanup(srv.Close)
	resp, err := srv.Client().Post(srv.URL+"/v1/solve", "application/json",
		strings.NewReader(`{"algorithm":"agrid","family":"walk","n":8,"param":0.9,"metric":"lp:0"}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Fatalf("degenerate metric answered %d, want 400", resp.StatusCode)
	}
}

// A portfolio race under a non-default metric is content-addressed, cached,
// and byte-stable like any other request.
func TestPortfolioMetricCached(t *testing.T) {
	s := newTestService(t, Config{Workers: 2})
	req := portfolioRequest(11)
	req.Metric = "l1"
	cold, err := s.SolvePortfolio(req)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := s.SolvePortfolio(req)
	if err != nil {
		t.Fatal(err)
	}
	if !warm.Hit || !bytes.Equal(cold.Body, warm.Body) {
		t.Fatal("l1 portfolio replay not byte-identical")
	}
	var resp PortfolioResponse
	if err := json.Unmarshal(cold.Body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Metric != "l1" || !resp.AllAwake {
		t.Fatalf("implausible l1 race response: metric=%q allAwake=%v", resp.Metric, resp.AllAwake)
	}
	l2req := portfolioRequest(11)
	l2, err := s.SolvePortfolio(l2req)
	if err != nil {
		t.Fatal(err)
	}
	if l2.Hash == cold.Hash {
		t.Fatal("l1 and l2 races share a hash")
	}
}

// Queue-level admission accounts for race width: a k-entrant race reserves
// min(k, Workers) effective slots, so a burst of portfolio requests sheds
// before it can oversubscribe the host — even when a width-blind job count
// would still admit more work.
func TestRaceWidthAdmissionSheds(t *testing.T) {
	gate := make(chan struct{})
	s := newTestService(t, Config{Workers: 2, QueueDepth: 2, preSolve: func() { <-gate }})
	// Admission capacity = QueueDepth + Workers = 4 effective slots.

	pfReq := func(seed int64) PortfolioRequest {
		return PortfolioRequest{
			Algorithms: []string{"agrid", "aseparator"}, // width 2
			Family:     "walk", N: 12, Param: 0.9, Seed: seed,
		}
	}
	results := make(chan error, 2)
	for _, seed := range []int64{1, 2} {
		seed := seed
		go func() {
			_, err := s.SolvePortfolio(pfReq(seed))
			results <- err
		}()
	}
	// Wait until both races are admitted (weight 4 = capacity).
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().QueueWeight < 4 {
		if time.Now().After(deadline) {
			t.Fatalf("races never admitted: stats %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if st := s.Stats(); st.AdmissionCap != 4 || st.QueueWeight != 4 {
		t.Fatalf("weight accounting off: %+v", st)
	}

	// Width-blind admission would accept this width-1 solve (only 2 jobs are
	// outstanding against a depth-2 queue + 2 workers); width accounting must
	// shed it, because the two races already reserve all 4 slots.
	if _, err := s.Solve(walkRequest(3)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third request got %v, want ErrQueueFull", err)
	}
	shed := s.Stats().Shed

	close(gate)
	for i := 0; i < 2; i++ {
		if err := <-results; err != nil {
			t.Fatalf("admitted race failed: %v", err)
		}
	}
	// Weight drains with completion; the shed request succeeds on retry.
	deadline = time.Now().Add(5 * time.Second)
	for {
		if _, err := s.Solve(walkRequest(3)); err == nil {
			break
		} else if !errors.Is(err, ErrQueueFull) || time.Now().After(deadline) {
			t.Fatalf("retry after drain: %v", err)
		}
		time.Sleep(time.Millisecond)
	}
	if st := s.Stats(); st.Shed != shed {
		t.Fatalf("retry shed again: %+v", st)
	}
	if got := s.Stats().QueueWeight; got != 0 {
		t.Fatalf("queue weight leaked: %d", got)
	}
}

// Width-1 loads shed at exactly the pre-refactor point: Workers running +
// QueueDepth queued, one more sheds.
func TestWidthOneAdmissionMatchesLegacy(t *testing.T) {
	gate := make(chan struct{})
	s := newTestService(t, Config{Workers: 1, QueueDepth: 1, preSolve: func() { <-gate }})
	done := make(chan error, 2)
	for _, seed := range []int64{21, 22} {
		seed := seed
		go func() {
			_, err := s.Solve(walkRequest(seed))
			done <- err
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.Stats().QueueWeight < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("solves never admitted: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	if _, err := s.Solve(walkRequest(23)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow got %v, want ErrQueueFull", err)
	}
	close(gate)
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
