// Package service turns the freeze-tag library into a long-running solver
// daemon: an HTTP/JSON API over a content-addressed result cache and a
// bounded job queue.
//
// Every request is canonically encoded and hashed (internal/instance); the
// hash keys an in-memory LRU of marshaled responses, so repeated requests —
// including duplicated and concurrent ones — are idempotent by construction:
// a cache hit returns bytes identical to the cold solve, concurrent
// identical requests coalesce into a single simulation (single-flight), and
// the bounded queue sheds excess load with ErrQueueFull (HTTP 429) instead
// of collapsing. The simulator is deterministic (PR 1), which is what makes
// caching sound: the cached result IS the result — and the portfolio racing
// engine (PR 3) keeps its responses deterministic too, so whole races cache
// the same way single solves do.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"math"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"time"

	"freezetag/internal/arena"
	"freezetag/internal/dftp"
	"freezetag/internal/geom"
	"freezetag/internal/instance"
	"freezetag/internal/obs"
	"freezetag/internal/portfolio"
	"freezetag/internal/sim"
	"freezetag/internal/trace"
)

// ErrBadRequest tags request-resolution failures (unknown algorithm, bad
// family, missing instance); the HTTP layer maps it to 400.
var ErrBadRequest = errors.New("bad request")

// ErrQueueFull is returned when the job queue is at capacity; the HTTP
// layer maps it to 429 Too Many Requests.
var ErrQueueFull = errors.New("job queue full")

// ErrClosed is returned by Solve after Close.
var ErrClosed = errors.New("service closed")

// Config sizes a Service. Zero values select the defaults.
type Config struct {
	// Workers is the solver pool size (default GOMAXPROCS). It also bounds
	// each portfolio race's internal racing pool.
	Workers int
	// QueueDepth bounds the number of queued-but-unstarted solves
	// (default 64). A full queue sheds new work with ErrQueueFull.
	QueueDepth int
	// CacheBytes bounds the result cache by approximate retained bytes —
	// marshaled response + event trace + bookkeeping — rather than entry
	// count, so varied workloads with huge traces and tiny ones share one
	// memory budget (default 64 MiB).
	CacheBytes int64
	// DropTraces disables per-entry event-trace retention: simulations run
	// untraced, cache entries hold only the marshaled response, and
	// GET /v1/trace/{hash} reports traces disabled.
	DropTraces bool
	// Logger, when non-nil, receives one structured record per request
	// (request hash, outcome, per-stage durations) plus request failures.
	// Nil disables request logging entirely — the hot path then never
	// touches the logging machinery, which is what keeps instrumentation
	// inside the cold-solve benchmark's ≤2%/≤5-alloc overhead budget.
	Logger *slog.Logger
	// TraceBuffer sizes the /tracez flight recorder: the ring of completed
	// request traces kept for after-the-fact inspection. 0 selects the
	// default (256); negative disables request tracing entirely.
	TraceBuffer int
	// TraceSample is the probability that a fast, successful request's
	// trace is kept. Slow, errored, and shed requests are always kept
	// regardless. 0 selects the default (0.01); negative keeps only the
	// always-keep classes.
	TraceSample float64
	// TraceSlow is the always-keep threshold: a request whose total
	// latency reaches it is traced no matter what the sampler said.
	// 0 selects the default (250ms); negative disables the slow policy.
	TraceSlow time.Duration
	// memoSize bounds the request-shape → hash memo in entries (default
	// 4096; entries are two short strings).
	memoSize int
	// preSolve, when set (tests only), runs in the worker before each
	// simulation — used to hold workers and fill the queue.
	preSolve func()
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 64
	}
	if c.CacheBytes < 1 {
		c.CacheBytes = 64 << 20
	}
	if c.memoSize < 1 {
		c.memoSize = 4096
	}
	if c.TraceBuffer == 0 {
		c.TraceBuffer = 256
	}
	if c.TraceSample == 0 {
		c.TraceSample = 0.01
	}
	if c.TraceSlow == 0 {
		c.TraceSlow = 250 * time.Millisecond
	}
	return c
}

// Solved is the outcome of a service solve.
type Solved struct {
	// Hash is the request's content-addressed key.
	Hash string
	// Body is the canonical marshaled SolveResponse (or PortfolioResponse).
	// Identical requests always receive identical bytes, cold or cached.
	Body []byte
	// Hit reports whether the solve was served without running a new
	// simulation (cache hit or coalesced into an in-flight one).
	Hit bool
	// Outcome classifies how the request was served: OutcomeHit,
	// OutcomeCoalesced, or OutcomeMiss.
	Outcome string
	// Stage durations of this request's wall-clock life, surfaced in the
	// Server-Timing response header and the structured request log — never
	// in Body, which stays byte-identical across hot and cold serves.
	// Queue/Sim/Marshal are zero for cache hits (those stages didn't run);
	// for coalesced requests they describe the in-flight run that was
	// joined. Total covers the whole call including synchronization.
	Resolve time.Duration
	Queue   time.Duration
	Sim     time.Duration
	Marshal time.Duration
	Total   time.Duration
	// Repair is the estimated share of Sim spent inside the fault-repair
	// layer's active window (zero for fault-free runs); it surfaces as a
	// "repair" child span on kept traces.
	Repair time.Duration
	// TraceID is the request's trace identity when one exists: the inbound
	// ID for HTTP requests, or a minted one if the trace was kept. Empty
	// means the request was neither externally identified nor kept. It is
	// surfaced in Server-Timing and the request log, never in Body.
	TraceID string
	// racers carries a portfolio run's per-racer observations to the trace
	// assembler (only populated while tracing is enabled).
	racers []portfolio.RacerObservation
}

// job is one queued unit of work: a simulation or a whole portfolio race,
// closed over by run. width is the job's effective admission weight: the
// number of worker slots its simulations can occupy at once (1 for a solve,
// min(k, Workers) for a k-entrant race, whose internal pool is clamped to
// Workers). run receives the call's stage clock so the worker-side stages
// (simulate, marshal) land next to the queue wait it measures itself.
type job struct {
	hash     string
	width    int
	enqueued time.Time
	call     *call
	// run executes the job on a worker. The arena is the executing worker's
	// per-slot scratch (reset between jobs, never shared): simulation jobs
	// check their whole engine out of it, so repeat shapes solve without
	// allocating. Jobs that can't use it (portfolio races run k engines on
	// racer goroutines) simply ignore it.
	run func(*stageTimes, *arena.Arena) (*entry, error)
}

// stageTimes is the worker-side half of a request's stage breakdown: the
// queue wait plus the run's simulate and marshal times. It lives on the
// single-flight call, written by the worker strictly before close(done) and
// read by waiters strictly after <-done, so no lock is needed.
type stageTimes struct {
	queue   time.Duration
	sim     time.Duration
	marshal time.Duration
	repair  time.Duration
	// racers is the run's per-racer observation list (portfolio runs with
	// tracing enabled only), sorted by entrant index. Like the durations
	// above it is written strictly before close(done).
	racers []portfolio.RacerObservation
}

// call is a single-flight slot: the first request for a hash creates it,
// concurrent duplicates wait on done and share the outcome (including the
// runner's stage timings — a coalesced request's Server-Timing reports the
// run it actually waited on).
type call struct {
	done chan struct{}
	ent  *entry
	err  error
	stageTimes
}

// Service is the solver daemon core. Create one with New, serve it over
// HTTP with Handler, and stop it with Close.
type Service struct {
	cfg   Config
	log   *slog.Logger
	start time.Time
	jobs  chan *job
	wg    sync.WaitGroup

	mu       sync.Mutex
	cache    *lru[*entry]
	shapes   *lru[string]
	params   *lru[paramsMemo]
	inflight map[string]*call
	closed   bool
	// queueWeight is the admitted-but-uncompleted effective slot count
	// (widths of queued and running jobs). Admission sheds when it would
	// exceed QueueDepth+Workers, so a burst of wide portfolio races cannot
	// oversubscribe the host the way width-blind counting would.
	queueWeight int

	// reg is the flight recorder: every lifetime counter below lives in it,
	// so GET /metricsz and /statsz are two views of the same registry and
	// can never disagree. The pointers are resolved once at construction;
	// the hot path does a single atomic add per event.
	reg             *obs.Registry
	hits            *obs.Counter
	coalesced       *obs.Counter
	misses          *obs.Counter
	shed            *obs.Counter
	solves          *obs.Counter
	races           *obs.Counter
	racersCancelled *obs.Counter
	memoHits        *obs.Counter
	paramsMemoHits  *obs.Counter
	simSteps        *obs.Counter
	simLooks        *obs.Counter
	simMoves        *obs.Counter
	simWakes        *obs.Counter
	repairs         *obs.Counter
	// faultsInjected maps a fault kind to its dftp_faults_injected_total
	// series; kinds are a fixed set, preregistered like reqOutcomes.
	faultsInjected map[string]*obs.Counter

	// Per-stage latency histograms (seconds, power-of-two buckets ~1µs…32s)
	// plus end-to-end request histograms per endpoint. stageRepair records
	// the approximate wall share of faulted runs spent inside the repair
	// layer's active window (zero-fault runs never touch it).
	stageResolve *obs.Histogram
	stageQueue   *obs.Histogram
	stageSim     *obs.Histogram
	stageRepair  *obs.Histogram
	stageMarshal *obs.Histogram
	durSolve     *obs.Histogram
	durPortfolio *obs.Histogram
	racerSim     *obs.Histogram
	racerCancel  *obs.Histogram

	// reqOutcomes maps {endpoint, outcome} to its dftp_requests_total
	// series; keys are preregistered so the hot path is one comparable-key
	// map lookup, no allocation. shapeCounters is the lazily grown
	// {endpoint, algorithm, metric} family, capped to bound cardinality.
	reqOutcomes   map[epOutcome]*obs.Counter
	shapeMu       sync.RWMutex
	shapeCounters map[shapeLabels]*obs.Counter

	// traces is the /tracez flight recorder (nil when disabled); tracesKept
	// counts keeps by policy reason (slow / error / shed / sampled).
	traces     *obs.TraceStore
	tracesKept map[string]*obs.Counter
}

// epOutcome keys a dftp_requests_total series.
type epOutcome struct{ endpoint, outcome string }

// shapeLabels keys a dftp_requests_by_shape_total series.
type shapeLabels struct{ endpoint, algorithm, metric string }

// Request outcome labels, also used as the X-Cache / Server-Timing cache
// descriptor and the structured-log outcome field.
const (
	OutcomeHit       = "hit"
	OutcomeCoalesced = "coalesced"
	OutcomeMiss      = "miss"
	OutcomeShed      = "shed"
	OutcomeError     = "error"
)

// histogram bucket range shared by all latency histograms: 2^-20s (~1µs)
// to 2^5s (32s) in octave steps.
const histMinExp, histMaxExp = -20, 5

// maxShapeSeries caps the lazily grown {endpoint, algorithm, metric}
// counter family. Algorithms are a fixed set but lp:<p> metrics are
// user-supplied, so without a cap a metric-scanning client could grow the
// registry without bound; past the cap new shapes collapse into
// metric="other".
const maxShapeSeries = 256

// New starts a Service with cfg's worker pool running.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:      cfg,
		log:      cfg.Logger,
		start:    time.Now(),
		jobs:     make(chan *job, cfg.QueueDepth),
		cache:    newLRU(cfg.CacheBytes),
		shapes:   newMemoLRU(cfg.memoSize),
		params:   newParamsLRU(cfg.memoSize),
		inflight: make(map[string]*call),
	}
	if cfg.TraceBuffer > 0 {
		s.traces = obs.NewTraceStore(cfg.TraceBuffer)
	}
	s.initObs()
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// initObs builds the service's metric registry: one series per lifetime
// counter (the /statsz fields), per-stage and per-endpoint latency
// histograms, racer telemetry, simulator probe totals, and callback gauges
// over the live cache/queue state.
func (s *Service) initObs() {
	r := obs.NewRegistry()
	s.reg = r
	s.hits = r.Counter("dftp_cache_hits_total", "Requests served from the result cache.")
	s.coalesced = r.Counter("dftp_cache_coalesced_total", "Requests that joined an identical in-flight solve.")
	s.misses = r.Counter("dftp_cache_misses_total", "Requests that initiated a simulation.")
	s.shed = r.Counter("dftp_shed_total", "Requests rejected with queue-full (HTTP 429).")
	s.solves = r.Counter("dftp_solves_total", "Simulations actually run.")
	s.races = r.Counter("dftp_races_total", "Portfolio races actually run.")
	s.racersCancelled = r.Counter("dftp_racers_cancelled_total", "Losing racers cancelled by early-stop objectives.")
	s.memoHits = r.Counter("dftp_memo_hits_total", "Hits/coalesces served via the shape→hash memo.")
	s.paramsMemoHits = r.Counter("dftp_params_memo_hits_total", "Cold solves whose parameter derivation was served by the params memo.")
	s.simSteps = r.Counter("dftp_sim_steps_total", "Simulator event-loop dispatches across all completed runs.")
	s.simLooks = r.Counter("dftp_sim_looks_total", "Simulator Look snapshots across all completed runs.")
	s.simMoves = r.Counter("dftp_sim_moves_total", "Completed robot moves across all completed runs.")
	s.simWakes = r.Counter("dftp_sim_wakes_total", "Robots awakened across all completed runs.")

	const stageHelp = "Per-stage request latency: resolve (validate + materialize + hash), queue (admission to worker pickup), sim (the simulation or whole race), repair (estimated share of sim inside the fault-repair window), marshal (response encoding)."
	s.stageResolve = r.Histogram("dftp_stage_duration_seconds", stageHelp, histMinExp, histMaxExp, obs.L("stage", "resolve"))
	s.stageQueue = r.Histogram("dftp_stage_duration_seconds", stageHelp, histMinExp, histMaxExp, obs.L("stage", "queue"))
	s.stageSim = r.Histogram("dftp_stage_duration_seconds", stageHelp, histMinExp, histMaxExp, obs.L("stage", "sim"))
	s.stageRepair = r.Histogram("dftp_stage_duration_seconds", stageHelp, histMinExp, histMaxExp, obs.L("stage", "repair"))
	s.stageMarshal = r.Histogram("dftp_stage_duration_seconds", stageHelp, histMinExp, histMaxExp, obs.L("stage", "marshal"))

	s.repairs = r.Counter("dftp_repairs_total", "Wake-tree repair interventions (rescue dispatches and stalled-process releases) across all completed runs.")
	s.faultsInjected = make(map[string]*obs.Counter)
	for _, kind := range []string{"crash-stop", "crash-recovery", "wake-drop", "wake-dup", "byzantine", "roster-skip"} {
		s.faultsInjected[kind] = r.Counter("dftp_faults_injected_total",
			"Faults injected into completed runs, by kind (roster-skip counts tolerated stale-roster operations).",
			obs.L("kind", kind))
	}

	const durHelp = "End-to-end request latency by endpoint, cache hits included."
	s.durSolve = r.Histogram("dftp_request_duration_seconds", durHelp, histMinExp, histMaxExp, obs.L("endpoint", "solve"))
	s.durPortfolio = r.Histogram("dftp_request_duration_seconds", durHelp, histMinExp, histMaxExp, obs.L("endpoint", "portfolio"))

	s.racerSim = r.Histogram("dftp_racer_sim_seconds", "Per-racer simulation wall time inside portfolio races.", histMinExp, histMaxExp)
	s.racerCancel = r.Histogram("dftp_racer_cancel_latency_seconds", "Lag between a racer's cancellation firing and its simulation unwinding.", histMinExp, histMaxExp)

	s.reqOutcomes = make(map[epOutcome]*obs.Counter)
	for _, ep := range []string{"solve", "portfolio"} {
		for _, oc := range []string{OutcomeHit, OutcomeCoalesced, OutcomeMiss, OutcomeShed, OutcomeError} {
			s.reqOutcomes[epOutcome{ep, oc}] = r.Counter("dftp_requests_total",
				"Requests by endpoint and outcome.", obs.L("endpoint", ep), obs.L("outcome", oc))
		}
	}
	s.shapeCounters = make(map[shapeLabels]*obs.Counter)

	s.tracesKept = make(map[string]*obs.Counter)
	for _, reason := range []string{keepSlow, keepError, keepShed, keepSampled} {
		s.tracesKept[reason] = r.Counter("dftp_traces_kept_total",
			"Request traces kept in the /tracez flight recorder, by keep reason.", obs.L("reason", reason))
	}
	r.Gauge("dftp_trace_buffer_entries", "Traces currently held by the /tracez ring.", func() float64 {
		if s.traces == nil {
			return 0
		}
		return float64(s.traces.Len())
	})
	r.Gauge("dftp_trace_buffer_capacity", "Capacity of the /tracez trace ring (0 = tracing disabled).", func() float64 {
		if s.traces == nil {
			return 0
		}
		return float64(s.traces.Capacity())
	})

	// Build identity as a constant-1 info gauge, the Prometheus convention
	// for joining metrics against version labels.
	bi := readBuildInfo()
	revision := bi.Revision
	if revision == "" {
		revision = "unknown"
	}
	r.Gauge("dftp_build_info", "Build identity of the running binary (value is always 1).", func() float64 { return 1 },
		obs.L("goVersion", bi.GoVersion), obs.L("revision", revision),
		obs.L("modified", fmt.Sprintf("%t", bi.Dirty)))

	r.Gauge("dftp_queue_depth", "Jobs queued but not yet picked up by a worker.", func() float64 {
		return float64(len(s.jobs))
	})
	r.Gauge("dftp_queue_weight", "Admitted effective worker slots (width-weighted, queued + running).", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.queueWeight)
	})
	r.Gauge("dftp_inflight", "Distinct request hashes currently being solved.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(len(s.inflight))
	})
	r.Gauge("dftp_cache_entries", "Entries in the result cache.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.cache.len())
	})
	r.Gauge("dftp_cache_bytes", "Approximate bytes retained by the result cache.", func() float64 {
		s.mu.Lock()
		defer s.mu.Unlock()
		return float64(s.cache.total)
	})
	r.Gauge("dftp_cache_capacity_bytes", "Result cache byte budget.", func() float64 {
		return float64(s.cfg.CacheBytes)
	})
	r.Gauge("dftp_queue_capacity", "Job queue depth limit.", func() float64 {
		return float64(s.cfg.QueueDepth)
	})
	r.Gauge("dftp_workers", "Solver pool size.", func() float64 {
		return float64(s.cfg.Workers)
	})
	r.Gauge("dftp_uptime_seconds", "Seconds since the service was constructed.", func() float64 {
		return time.Since(s.start).Seconds()
	})
}

// Registry exposes the service's metric registry: GET /metricsz renders
// it, and /statsz reads the same counters, so the two views are generated
// from one source of truth.
func (s *Service) Registry() *obs.Registry { return s.reg }

// countShape bumps the {endpoint, algorithm, metric} request counter,
// creating the series on first sight. The fast path is a read-locked
// lookup with a comparable struct key — no allocation. Past maxShapeSeries
// distinct shapes, new metrics collapse into metric="other" so hostile or
// scanning clients cannot grow the registry without bound.
func (s *Service) countShape(endpoint, algorithm, metric string) {
	key := shapeLabels{endpoint, algorithm, metric}
	s.shapeMu.RLock()
	c := s.shapeCounters[key]
	s.shapeMu.RUnlock()
	if c != nil {
		c.Inc()
		return
	}
	s.shapeMu.Lock()
	if c = s.shapeCounters[key]; c == nil {
		if len(s.shapeCounters) >= maxShapeSeries {
			key = shapeLabels{endpoint, algorithm, "other"}
			c = s.shapeCounters[key]
		}
		if c == nil {
			c = s.reg.Counter("dftp_requests_by_shape_total",
				"Requests by endpoint, algorithm, and metric (metric collapses to \"other\" past the cardinality cap).",
				obs.L("endpoint", key.endpoint), obs.L("algorithm", key.algorithm), obs.L("metric", key.metric))
			s.shapeCounters[key] = c
		}
	}
	s.shapeMu.Unlock()
	c.Inc()
}

// observeRacer is the portfolio race's telemetry sink: per-racer wall time
// and, for racers stopped mid-run, cancellation latency.
func (s *Service) observeRacer(ob portfolio.RacerObservation) {
	if ob.Wall > 0 {
		s.racerSim.Record(ob.Wall.Seconds())
	}
	if ob.CancelLatency > 0 {
		s.racerCancel.Record(ob.CancelLatency.Seconds())
	}
}

// logRequest emits one structured record per request when logging is
// enabled. Errors log at Warn with the error attached; successes at Info
// with the full stage breakdown. The trace ID (when the request has one)
// and the client's X-Request-ID land on every record, so one grep joins a
// log line, its /tracez trace, and the client's own logs.
func (s *Service) logRequest(endpoint string, sv Solved, topt TraceOpt, err error) {
	if s.log == nil {
		return
	}
	attrs := make([]slog.Attr, 0, 10)
	attrs = append(attrs, slog.String("endpoint", endpoint))
	level := slog.LevelInfo
	if err != nil {
		level = slog.LevelWarn
		attrs = append(attrs,
			slog.String("outcome", sv.Outcome),
			slog.Duration("total", sv.Total),
			slog.String("error", err.Error()))
	} else {
		attrs = append(attrs,
			slog.String("hash", sv.Hash),
			slog.String("outcome", sv.Outcome),
			slog.Duration("total", sv.Total),
			slog.Duration("resolve", sv.Resolve),
			slog.Duration("queue", sv.Queue),
			slog.Duration("sim", sv.Sim),
			slog.Duration("marshal", sv.Marshal))
	}
	if sv.TraceID != "" {
		attrs = append(attrs, slog.String("trace", sv.TraceID))
	}
	if topt.RequestID != "" {
		attrs = append(attrs, slog.String("requestId", topt.RequestID))
	}
	s.log.LogAttrs(context.Background(), level, "request", attrs...)
}

// Close drains the queue, stops the workers, and fails subsequent Solves
// with ErrClosed. Queued jobs still complete.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.jobs)
	s.wg.Wait()
}

// parseMetric resolves a request's metric spelling, wrapping rejections —
// unknown names, degenerate exponents like lp:0 or lp:NaN — in ErrBadRequest
// so the HTTP layer answers 400 instead of silently defaulting.
func parseMetric(s string) (geom.Metric, error) {
	m, err := geom.ParseMetric(s)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return m, nil
}

// resolveInstance materializes the instance/tuple/budget half of a request
// (shared by solve and portfolio requests): inline instance wins over
// family, the tuple defaults to dftp.TupleForIn(metric, instance), budgets
// ≤ 0 collapse to 0. Request-level profiles override whatever profiles the
// inline instance or family modifiers supplied, and the combined profile
// list is validated (speeds finite and > 0, one per robot). All failures
// wrap ErrBadRequest.
//
// Derived tuples of family-generated requests are memoized under
// (metric, family, n, param, seed): the derivation walks the whole point
// set (ℓ*, ρ*, ξ), and the same family shape recurs across algorithms,
// objectives, and budgets — all of which change the content hash but not
// the instance. Profiles never affect the derivation either — (ℓ*, ρ*, ξ)
// are pure geometry — so the memo is profile-blind by construction. A memo
// hit turns the cold path's parameter derivation into a map lookup
// (paramsMemoHits in /statsz).
func (s *Service) resolveInstance(m geom.Metric, inline *instance.Instance, family string, n int, param float64, seed int64, tupJSON *TupleJSON, budget float64, profiles []instance.Profile) (*instance.Instance, dftp.Tuple, float64, error) {
	var tup dftp.Tuple
	inst := inline
	var memoKey []byte
	var haveKey, memoHit bool
	var famInst *instance.Instance
	if inst == nil {
		if family == "" {
			return nil, tup, 0, fmt.Errorf("%w: request needs an inline instance or a family", ErrBadRequest)
		}
		// Memo-first: a known family shape yields both its generated instance
		// and its derived tuple from one map lookup, skipping generation and
		// the O(n²) parameter derivation entirely. The memoized instance is
		// the pristine generator output — request profiles are applied
		// copy-on-write below, never to the shared pointer.
		var pkb [96]byte
		if key, ok := paramsKey(pkb[:0], m, inline, family, n, param, seed); ok {
			memoKey, haveKey = key, true
			s.mu.Lock()
			memo, hit := s.params.getBytes(key)
			s.mu.Unlock()
			if hit {
				memoHit = true
				inst, tup = memo.inst, memo.tup
			}
		}
		if inst == nil {
			var err error
			inst, err = instance.Family(family, n, param, seed)
			if err != nil {
				return nil, tup, 0, fmt.Errorf("%w: %v", ErrBadRequest, err)
			}
			famInst = inst
		}
	} else if len(inst.Points) == 0 {
		return nil, tup, 0, fmt.Errorf("%w: inline instance has no points", ErrBadRequest)
	}
	if len(profiles) > 0 {
		// Copy-on-write: never mutate the caller's inline instance.
		cp := *inst
		cp.Profiles = profiles
		inst = &cp
	}
	if err := inst.ValidateProfiles(); err != nil {
		return nil, tup, 0, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if tupJSON != nil {
		tup = dftp.Tuple{Ell: tupJSON.Ell, Rho: tupJSON.Rho, N: tupJSON.N}
		if !tup.Admissible() {
			return nil, tup, 0, fmt.Errorf("%w: tuple (ℓ=%g, ρ=%g, n=%d) is not admissible (need 0 < ℓ ≤ ρ ≤ nℓ)",
				ErrBadRequest, tup.Ell, tup.Rho, tup.N)
		}
	} else if memoHit {
		s.paramsMemoHits.Add(1)
	} else {
		tup = dftp.TupleForIn(m, inst)
		if haveKey && famInst != nil {
			s.mu.Lock()
			s.params.add(string(memoKey), paramsMemo{tup: tup, inst: famInst})
			s.mu.Unlock()
		}
	}
	if budget < 0 {
		budget = 0
	}
	return inst, tup, budget, nil
}

// paramsKey is the tuple-memo key of a family-generated request: the
// scalars that determine the generated point set, plus the metric the
// parameters are measured in. Algorithm, objective, and budget are
// deliberately absent — they don't affect the derivation. Inline instances
// are not memoized (deriving their key would walk the points, which is the
// work the memo saves).
// Key builders append into a caller-provided buffer (typically a stack
// array) so the steady-state probe path — build key, getBytes — allocates
// nothing; the key is materialized as a string only when it is actually
// stored. appendLower is an ASCII strings.ToLower: family names are ASCII by
// construction (non-ASCII spellings fail family validation before any key is
// ever stored, so their keys can never be observed).
func appendLower(b []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if 'A' <= c && c <= 'Z' {
			c += 'a' - 'A'
		}
		b = append(b, c)
	}
	return b
}

func paramsKey(b []byte, m geom.Metric, inline *instance.Instance, family string, n int, param float64, seed int64) ([]byte, bool) {
	if inline != nil || family == "" {
		return nil, false
	}
	b = append(b, geom.MetricOrL2(m).Name()...)
	b = append(b, '|')
	b = appendLower(b, family)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(n), 10)
	b = append(b, '|')
	b = strconv.AppendUint(b, math.Float64bits(param), 16)
	b = append(b, '|')
	b = strconv.AppendInt(b, seed, 10)
	return b, true
}

// shapeKey is the memo key of a family-generated request: every scalar that
// determines the content hash — including the metric's canonical name, any
// request-level profiles, and the fault specification — without
// materializing the instance. Inline instances are not memoized (their hash
// already requires walking the points, so there is nothing to save).
// Family-modifier profiles need no extra key material: they are a
// deterministic function of the family string, which is already in the key.
func shapeKey(b []byte, solverName string, m geom.Metric, inline *instance.Instance, family string, n int, param float64, seed int64, tupJSON *TupleJSON, budget float64, profiles []instance.Profile, faults *dftp.Faults) ([]byte, bool) {
	if inline != nil || family == "" {
		return nil, false
	}
	if budget <= 0 {
		budget = 0
	}
	b = append(b, solverName...)
	b = append(b, '|')
	b = append(b, geom.MetricOrL2(m).Name()...)
	b = append(b, '|')
	b = appendLower(b, family)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(n), 10)
	b = append(b, '|')
	b = strconv.AppendUint(b, math.Float64bits(param), 16)
	b = append(b, '|')
	b = strconv.AppendInt(b, seed, 10)
	b = append(b, '|')
	b = strconv.AppendUint(b, math.Float64bits(budget), 16)
	if tupJSON != nil {
		b = append(b, "|t"...)
		b = strconv.AppendUint(b, math.Float64bits(tupJSON.Ell), 16)
		b = append(b, ',')
		b = strconv.AppendUint(b, math.Float64bits(tupJSON.Rho), 16)
		b = append(b, ',')
		b = strconv.AppendInt(b, int64(tupJSON.N), 10)
	}
	for _, p := range profiles {
		cap := p.Capacity
		if cap <= 0 {
			cap = 0 // same normalization as the canonical encoding
		}
		b = append(b, "|f"...)
		b = strconv.AppendUint(b, math.Float64bits(p.Speed), 16)
		b = append(b, ',')
		b = strconv.AppendUint(b, math.Float64bits(cap), 16)
	}
	if faults != nil {
		// Without this line, a faulted and a fault-free request of the same
		// shape would alias to one memo entry and serve each other's bytes.
		b = append(b, "|x"...)
		b = append(b, faults.Canon()...)
	}
	return b, true
}

// resolved is a solve request after validation: concrete algorithm, metric,
// instance, tuple, budget, and the content hash they determine.
type resolved struct {
	hash   string
	alg    dftp.Algorithm
	metric geom.Metric
	inst   *instance.Instance
	tup    dftp.Tuple
	budget float64
	faults *dftp.Faults
}

// resolve materializes the instance of req for the given (already
// validated) algorithm and metric, derives the tuple, and computes the
// request hash. All failures wrap ErrBadRequest.
func (s *Service) resolve(alg dftp.Algorithm, m geom.Metric, req SolveRequest) (resolved, error) {
	var r resolved
	inst, tup, budget, err := s.resolveInstance(m, req.Instance, req.Family, req.N, req.Param, req.Seed, req.Tuple, req.Budget, req.Profiles)
	if err != nil {
		return r, err
	}
	return resolved{
		hash:   instance.HashRequestFaulted(m, alg.Name(), inst, tup.Ell, tup.Rho, tup.N, budget, req.Faults.Canon()),
		alg:    alg,
		metric: m,
		inst:   inst,
		tup:    tup,
		budget: budget,
		faults: req.Faults,
	}, nil
}

// resolvedPortfolio is a portfolio request after validation.
type resolvedPortfolio struct {
	hash   string
	pf     portfolio.Portfolio
	metric geom.Metric
	inst   *instance.Instance
	tup    dftp.Tuple
	budget float64
	faults *dftp.Faults
}

// maxPortfolioAlgorithms caps one race's entrant list (duplicates are legal
// but each entrant is a full simulation): without it a single small request
// could queue unbounded work in one worker slot, the same hole
// maxBatchItems closes for /v1/batch.
const maxPortfolioAlgorithms = 16

// portfolioFor validates the algorithms/objective/seed half of a portfolio
// request. It is cheap (no instance generation), so the memo fast path can
// call it to derive the canonical descriptor.
func portfolioFor(req PortfolioRequest) (portfolio.Portfolio, error) {
	var pf portfolio.Portfolio
	if len(req.Algorithms) == 0 {
		return pf, fmt.Errorf("%w: portfolio needs at least one algorithm", ErrBadRequest)
	}
	if len(req.Algorithms) > maxPortfolioAlgorithms {
		return pf, fmt.Errorf("%w: portfolio of %d algorithms exceeds the %d-entrant limit",
			ErrBadRequest, len(req.Algorithms), maxPortfolioAlgorithms)
	}
	algs := make([]dftp.Algorithm, len(req.Algorithms))
	for i, name := range req.Algorithms {
		alg, err := AlgorithmByName(name)
		if err != nil {
			return pf, err
		}
		algs[i] = alg
	}
	obj, err := portfolio.ParseObjective(req.Objective)
	if err != nil {
		return pf, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return portfolio.Portfolio{Algorithms: algs, Objective: obj, Seed: req.Seed}, nil
}

// resolvePortfolio materializes the instance of req for the given (already
// validated) portfolio and metric and computes the request hash.
func (s *Service) resolvePortfolio(pf portfolio.Portfolio, m geom.Metric, req PortfolioRequest) (resolvedPortfolio, error) {
	var r resolvedPortfolio
	inst, tup, budget, err := s.resolveInstance(m, req.Instance, req.Family, req.N, req.Param, req.Seed, req.Tuple, req.Budget, req.Profiles)
	if err != nil {
		return r, err
	}
	return resolvedPortfolio{
		hash:   instance.HashRequestFaulted(m, pf.Name(), inst, tup.Ell, tup.Rho, tup.N, budget, req.Faults.Canon()),
		pf:     pf,
		metric: m,
		inst:   inst,
		tup:    tup,
		budget: budget,
		faults: req.Faults,
	}, nil
}

// Solve serves one request: from the cache when possible, by joining an
// identical in-flight solve otherwise, and by queueing a new simulation as
// the last resort. It blocks until the result is available. Errors:
// ErrBadRequest (invalid request), ErrQueueFull (load shed), ErrClosed, or
// a simulation failure.
func (s *Service) Solve(req SolveRequest) (Solved, error) {
	return s.SolveTraced(TraceOpt{}, req)
}

// SolveTraced is Solve with a transport-layer trace identity: the HTTP
// handler parses traceparent / X-Request-ID and rolls the sampling die
// once, then passes the verdict down here. Direct callers use Solve.
func (s *Service) SolveTraced(topt TraceOpt, req SolveRequest) (Solved, error) {
	sp := obs.StartSpan()
	// Memo fast path: a family request whose shape was seen before finds
	// its hash — and with luck its cached bytes — without re-generating the
	// instance and re-hashing its points.
	alg, err := AlgorithmByName(req.Algorithm)
	if err != nil {
		return s.finish("solve", s.durSolve, Solved{Resolve: sp.Mark("resolve")}, &sp, topt, err)
	}
	m, err := parseMetric(req.Metric)
	if err != nil {
		return s.finish("solve", s.durSolve, Solved{Resolve: sp.Mark("resolve")}, &sp, topt, err)
	}
	if err := req.Faults.Validate(); err != nil {
		err = fmt.Errorf("%w: %v", ErrBadRequest, err)
		return s.finish("solve", s.durSolve, Solved{Resolve: sp.Mark("resolve")}, &sp, topt, err)
	}
	s.countShape("solve", alg.Name(), geom.MetricOrL2(m).Name())
	var kb [128]byte
	key, keyed := shapeKey(kb[:0], alg.Name(), m, req.Instance, req.Family, req.N, req.Param, req.Seed, req.Tuple, req.Budget, req.Profiles, req.Faults)
	if keyed {
		if sv, handled, err := s.memoLookup(key); handled {
			sv.Resolve = sp.Mark("resolve")
			return s.finish("solve", s.durSolve, sv, &sp, topt, err)
		}
	}
	r, err := s.resolve(alg, m, req)
	resolveDur := sp.Mark("resolve")
	if err != nil {
		return s.finish("solve", s.durSolve, Solved{Resolve: resolveDur}, &sp, topt, err)
	}
	run := func(ts *stageTimes, ar *arena.Arena) (*entry, error) {
		rsp := obs.StartSpan()
		var rec *trace.Recorder
		var traceFn func(sim.Event)
		if !s.cfg.DropTraces {
			rec = trace.New()
			traceFn = rec.Record
		}
		res, rep, err := dftp.SolveFaulted(context.Background(), ar, r.metric, r.alg, r.inst, r.tup, r.budget, r.faults, traceFn)
		ts.sim = rsp.Mark("sim")
		s.stageSim.Record(ts.sim.Seconds())
		s.solves.Add(1)
		if err != nil {
			return nil, err
		}
		if ts.repair = repairShare(res, ts.sim); ts.repair > 0 {
			s.stageRepair.Record(ts.repair.Seconds())
		}
		s.recordSimProbes(res)
		out := NewSolveResponse(r.hash, r.alg, r.metric, r.inst, r.tup, r.budget, res, rep)
		out.Faults = NewFaultsEcho(r.faults, res, r.inst.N())
		body, err := json.Marshal(out)
		ts.marshal = rsp.Mark("marshal")
		s.stageMarshal.Record(ts.marshal.Seconds())
		if err != nil {
			return nil, err
		}
		ent := &entry{hash: r.hash, body: body}
		if rec != nil {
			ent.events = rec.Events()
		}
		return ent.sized(), nil
	}
	sv, err := s.startOrJoin(r.hash, string(key), 1, run)
	sv.Resolve = resolveDur
	return s.finish("solve", s.durSolve, sv, &sp, topt, err)
}

// recordSimProbes folds one completed run's event-loop probe counters into
// the registry totals.
func (s *Service) recordSimProbes(res sim.Result) {
	s.simSteps.Add(res.Steps)
	s.simLooks.Add(res.Looks)
	s.simMoves.Add(res.Moves)
	s.simWakes.Add(int64(res.Awakened))
	if f := res.Faults; f.Injected() != 0 || f.RosterSkips != 0 || f.Repairs != 0 {
		s.faultsInjected["crash-stop"].Add(f.CrashStops)
		s.faultsInjected["crash-recovery"].Add(f.Recoveries)
		s.faultsInjected["wake-drop"].Add(f.WakeDrops)
		s.faultsInjected["wake-dup"].Add(f.WakeDups)
		s.faultsInjected["byzantine"].Add(f.ByzTakeovers)
		s.faultsInjected["roster-skip"].Add(f.RosterSkips)
		s.repairs.Add(f.Repairs)
	}
}

// repairShare approximates how much of a faulted run's sim wall time fell
// inside the repair layer's active window: the virtual-time window scaled by
// wall/makespan. Zero for fault-free and repair-free runs.
func repairShare(res sim.Result, sim time.Duration) time.Duration {
	if res.Faults.Repairs == 0 || res.Makespan <= 0 {
		return 0
	}
	frac := (res.Faults.LastRepair - res.Faults.FirstRepair) / res.Makespan
	if frac <= 0 {
		return 0
	}
	if frac > 1 {
		frac = 1
	}
	return time.Duration(frac * float64(sim))
}

// finish closes out one request: it records the resolve-stage and
// endpoint-latency histograms and the outcome counter, emits the
// structured log record, and stamps the total onto the Solved for the
// HTTP layer's Server-Timing header. sv.Resolve must already be set by
// the caller (marked when resolution — validation, memo lookup or full
// instance materialization — actually finished). With the outcome and
// total known it also applies the trace keep policy: the unkept path adds
// nothing to the cold solve — no allocation, two comparisons.
func (s *Service) finish(endpoint string, dur *obs.Histogram, sv Solved, sp *obs.Span, topt TraceOpt, err error) (Solved, error) {
	s.stageResolve.Record(sv.Resolve.Seconds())
	sv.Total = sp.Total()
	dur.Record(sv.Total.Seconds())
	if err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			sv.Outcome = OutcomeShed
		default:
			sv.Outcome = OutcomeError
		}
	}
	if c := s.reqOutcomes[epOutcome{endpoint, sv.Outcome}]; c != nil {
		c.Inc()
	}
	sv.TraceID = topt.ID
	s.recordTrace(endpoint, &sv, sp, topt, err)
	s.logRequest(endpoint, sv, topt, err)
	return sv, err
}

// SolvePortfolio serves one portfolio race with the same cache-first /
// single-flight / bounded-queue semantics as Solve. The race itself runs k
// simulations concurrently inside one worker slot (its racing pool is
// bounded by Config.Workers); because race outcomes are deterministic at
// any worker count, the response is cacheable exactly like a single solve.
func (s *Service) SolvePortfolio(req PortfolioRequest) (Solved, error) {
	return s.SolvePortfolioTraced(TraceOpt{}, req)
}

// SolvePortfolioTraced is SolvePortfolio with a transport-layer trace
// identity (see SolveTraced). Kept portfolio traces carry per-racer child
// spans, collected from the race's Observe callback.
func (s *Service) SolvePortfolioTraced(topt TraceOpt, req PortfolioRequest) (Solved, error) {
	sp := obs.StartSpan()
	pf, err := portfolioFor(req)
	if err != nil {
		return s.finish("portfolio", s.durPortfolio, Solved{Resolve: sp.Mark("resolve")}, &sp, topt, err)
	}
	m, err := parseMetric(req.Metric)
	if err != nil {
		return s.finish("portfolio", s.durPortfolio, Solved{Resolve: sp.Mark("resolve")}, &sp, topt, err)
	}
	if err := req.Faults.Validate(); err != nil {
		err = fmt.Errorf("%w: %v", ErrBadRequest, err)
		return s.finish("portfolio", s.durPortfolio, Solved{Resolve: sp.Mark("resolve")}, &sp, topt, err)
	}
	if _, uf := pf.Objective.(portfolio.UnderFaults); uf && req.Faults == nil {
		err = fmt.Errorf("%w: objective %q needs a faults specification", ErrBadRequest, pf.Objective.Name())
		return s.finish("portfolio", s.durPortfolio, Solved{Resolve: sp.Mark("resolve")}, &sp, topt, err)
	}
	s.countShape("portfolio", pf.Name(), geom.MetricOrL2(m).Name())
	var kb [128]byte
	key, keyed := shapeKey(kb[:0], pf.Name(), m, req.Instance, req.Family, req.N, req.Param, req.Seed, req.Tuple, req.Budget, req.Profiles, req.Faults)
	if keyed {
		if sv, handled, err := s.memoLookup(key); handled {
			sv.Resolve = sp.Mark("resolve")
			return s.finish("portfolio", s.durPortfolio, sv, &sp, topt, err)
		}
	}
	r, err := s.resolvePortfolio(pf, m, req)
	resolveDur := sp.Mark("resolve")
	if err != nil {
		return s.finish("portfolio", s.durPortfolio, Solved{Resolve: resolveDur}, &sp, topt, err)
	}
	run := func(ts *stageTimes, _ *arena.Arena) (*entry, error) {
		rsp := obs.StartSpan()
		// With tracing enabled, tee the race's observations into the call
		// so kept traces get per-racer child spans. Observe runs from racer
		// goroutines, hence the mutex; the final sorted slice is published
		// via ts before close(done) like the stage durations.
		observe := s.observeRacer
		var rmu sync.Mutex
		var racerObs []portfolio.RacerObservation
		if s.traces != nil {
			observe = func(ob portfolio.RacerObservation) {
				s.observeRacer(ob)
				rmu.Lock()
				racerObs = append(racerObs, ob)
				rmu.Unlock()
			}
		}
		res, err := portfolio.Race(r.pf, r.inst, r.tup, r.budget,
			portfolio.Options{Workers: s.cfg.Workers, Trace: !s.cfg.DropTraces, Metric: r.metric,
				Observe: observe, Faults: r.faults})
		ts.sim = rsp.Mark("sim")
		// Race joined all racer goroutines before returning, so racerObs is
		// complete and safe to read without the mutex here.
		if len(racerObs) > 0 {
			sort.Slice(racerObs, func(i, j int) bool { return racerObs[i].Index < racerObs[j].Index })
			ts.racers = racerObs
		}
		s.stageSim.Record(ts.sim.Seconds())
		s.races.Add(1)
		if err != nil {
			return nil, err
		}
		s.solves.Add(int64(len(r.pf.Algorithms) - res.Aborted))
		s.racersCancelled.Add(int64(res.Cancelled))
		// Only the winning run's full sim.Result survives the race; losing
		// runs are summarized into RacerResult scalars, so probe totals
		// count winner event-loop work only.
		if ts.repair = repairShare(res.Res, ts.sim); ts.repair > 0 {
			s.stageRepair.Record(ts.repair.Seconds())
		}
		s.recordSimProbes(res.Res)
		out := NewPortfolioResponse(r.hash, r.pf, r.metric, r.inst, r.tup, r.budget, res)
		out.Faults = NewFaultsEcho(r.faults, res.Res, r.inst.N())
		body, err := json.Marshal(out)
		ts.marshal = rsp.Mark("marshal")
		s.stageMarshal.Record(ts.marshal.Seconds())
		if err != nil {
			return nil, err
		}
		return (&entry{hash: r.hash, body: body, events: res.Events}).sized(), nil
	}
	// A k-entrant race runs min(k, Workers) simulations concurrently inside
	// its worker slot; admission accounts for that width so a burst of
	// portfolio requests cannot oversubscribe the host.
	width := len(r.pf.Algorithms)
	if width > s.cfg.Workers {
		width = s.cfg.Workers
	}
	sv, err := s.startOrJoin(r.hash, string(key), width, run)
	sv.Resolve = resolveDur
	return s.finish("portfolio", s.durPortfolio, sv, &sp, topt, err)
}

// memoLookup serves a request whose shape key is already memoized: a cache
// hit or an in-flight join, without materializing the instance. handled is
// false when the caller must fall back to full resolution (unknown shape,
// or known shape whose result has been evicted).
func (s *Service) memoLookup(key []byte) (sv Solved, handled bool, err error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Solved{}, true, ErrClosed
	}
	hash, ok := s.shapes.getBytes(key)
	if !ok {
		s.mu.Unlock()
		return Solved{}, false, nil
	}
	if e, ok := s.cache.get(hash); ok {
		s.mu.Unlock()
		s.hits.Add(1)
		s.memoHits.Add(1)
		return Solved{Hash: hash, Body: e.body, Hit: true, Outcome: OutcomeHit}, true, nil
	}
	if c, ok := s.inflight[hash]; ok {
		s.mu.Unlock()
		<-c.done
		if c.err != nil {
			return Solved{}, true, c.err
		}
		s.coalesced.Add(1)
		s.memoHits.Add(1)
		return Solved{Hash: hash, Body: c.ent.body, Hit: true, Outcome: OutcomeCoalesced,
			Queue: c.queue, Sim: c.sim, Marshal: c.marshal, Repair: c.repair, racers: c.racers}, true, nil
	}
	s.mu.Unlock()
	return Solved{}, false, nil
}

// startOrJoin is the cache-first core shared by Solve and SolvePortfolio:
// serve the hash from the cache, join an identical in-flight job, or queue
// run as a new job of the given admission width. memoKey, when non-empty, is
// recorded so future requests of the same shape skip instance
// materialization.
//
// Admission is width-weighted: the sum of admitted-but-uncompleted widths is
// capped at QueueDepth+Workers (exactly the old queued+running limit when
// every job has width 1), so k-entrant races reserve k effective slots and
// shed under load like k solves would.
func (s *Service) startOrJoin(hash, memoKey string, width int, run func(*stageTimes, *arena.Arena) (*entry, error)) (Solved, error) {
	if width < 1 {
		width = 1
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Solved{}, ErrClosed
	}
	if memoKey != "" {
		s.shapes.add(memoKey, hash)
	}
	if e, ok := s.cache.get(hash); ok {
		s.mu.Unlock()
		s.hits.Add(1)
		return Solved{Hash: hash, Body: e.body, Hit: true, Outcome: OutcomeHit}, nil
	}
	if c, ok := s.inflight[hash]; ok {
		s.mu.Unlock()
		<-c.done
		if c.err != nil {
			return Solved{}, c.err
		}
		// Count only successful coalesces, so hitRate never credits
		// requests that were actually served an error.
		s.coalesced.Add(1)
		return Solved{Hash: hash, Body: c.ent.body, Hit: true, Outcome: OutcomeCoalesced,
			Queue: c.queue, Sim: c.sim, Marshal: c.marshal, Repair: c.repair, racers: c.racers}, nil
	}
	if s.queueWeight+width > s.cfg.QueueDepth+s.cfg.Workers {
		s.mu.Unlock()
		s.shed.Add(1)
		return Solved{}, ErrQueueFull
	}
	c := &call{done: make(chan struct{})}
	s.inflight[hash] = c
	j := &job{hash: hash, width: width, enqueued: time.Now(), call: c, run: run}
	select {
	case s.jobs <- j:
		s.queueWeight += width
		s.mu.Unlock()
	default:
		delete(s.inflight, hash)
		s.mu.Unlock()
		s.shed.Add(1)
		return Solved{}, ErrQueueFull
	}
	s.misses.Add(1)

	<-c.done
	if c.err != nil {
		return Solved{}, c.err
	}
	return Solved{Hash: hash, Body: c.ent.body, Hit: false, Outcome: OutcomeMiss,
		Queue: c.queue, Sim: c.sim, Marshal: c.marshal, racers: c.racers}, nil
}

// worker runs queued jobs, stores the marshaled response in the cache, and
// releases the single-flight waiters. Each worker owns one arena for its
// whole life: the simulation substrate inside it is built by the first job
// and reset — not reallocated — by every following one.
func (s *Service) worker() {
	defer s.wg.Done()
	ar := arena.New("worker")
	defer ar.Close()
	for j := range s.jobs {
		if s.cfg.preSolve != nil {
			s.cfg.preSolve()
		}
		j.call.queue = time.Since(j.enqueued)
		s.stageQueue.Record(j.call.queue.Seconds())
		ar.Reset()
		ent, err := j.run(&j.call.stageTimes, ar)
		s.mu.Lock()
		if ent != nil {
			s.cache.add(ent.hash, ent)
		}
		delete(s.inflight, j.hash)
		s.queueWeight -= j.width
		s.mu.Unlock()
		j.call.ent, j.call.err = ent, err
		close(j.call.done)
	}
}

// Probe returns the cached response bytes for a hash, if present. It never
// triggers a solve.
func (s *Service) Probe(hash string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.cache.get(hash)
	if !ok {
		return nil, false
	}
	return e.body, true
}

// TracesRetained reports whether per-entry event traces are kept (false
// under Config.DropTraces).
func (s *Service) TracesRetained() bool { return !s.cfg.DropTraces }

// TraceEvents returns the cached event stream for a hash, if present.
func (s *Service) TraceEvents(hash string) ([]sim.Event, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.cache.get(hash)
	if !ok {
		return nil, false
	}
	return e.events, true
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	cacheLen := s.cache.len()
	cacheBytes := s.cache.total
	queueWeight := s.queueWeight
	s.mu.Unlock()
	st := Stats{
		Hits:            s.hits.Load(),
		Coalesced:       s.coalesced.Load(),
		Misses:          s.misses.Load(),
		Shed:            s.shed.Load(),
		Solves:          s.solves.Load(),
		Races:           s.races.Load(),
		RacersCancelled: s.racersCancelled.Load(),
		MemoHits:        s.memoHits.Load(),
		ParamsMemoHits:  s.paramsMemoHits.Load(),
		QueueDepth:      len(s.jobs),
		QueueCapacity:   s.cfg.QueueDepth,
		QueueWeight:     queueWeight,
		AdmissionCap:    s.cfg.QueueDepth + s.cfg.Workers,
		CacheLen:        cacheLen,
		CacheBytes:      cacheBytes,
		CacheCapacity:   s.cfg.CacheBytes,
		TracesRetained:  !s.cfg.DropTraces,
		Workers:         s.cfg.Workers,
	}
	for _, c := range s.tracesKept {
		st.TracesKept += c.Load()
	}
	// Derived ratios: zero-denominator cases are exactly 0, never NaN —
	// json.Marshal rejects NaN, so a fresh server's /statsz must not divide.
	lookups := st.Hits + st.Coalesced + st.Misses
	if lookups > 0 {
		st.HitRate = float64(st.Hits+st.Coalesced) / float64(lookups)
	}
	if served := st.Hits + st.Coalesced; served > 0 {
		st.MemoHitRate = float64(st.MemoHits) / float64(served)
	}
	if seen := lookups + st.Shed; seen > 0 {
		st.ShedRate = float64(st.Shed) / float64(seen)
	}
	return st
}
