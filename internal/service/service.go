// Package service turns the freeze-tag library into a long-running solver
// daemon: an HTTP/JSON API over a content-addressed result cache and a
// bounded job queue.
//
// Every request is canonically encoded and hashed (internal/instance); the
// hash keys an in-memory LRU of marshaled responses, so repeated requests —
// including duplicated and concurrent ones — are idempotent by construction:
// a cache hit returns bytes identical to the cold solve, concurrent
// identical requests coalesce into a single simulation (single-flight), and
// the bounded queue sheds excess load with ErrQueueFull (HTTP 429) instead
// of collapsing. The simulator is deterministic (PR 1), which is what makes
// caching sound: the cached result IS the result.
package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"freezetag/internal/dftp"
	"freezetag/internal/instance"
	"freezetag/internal/sim"
	"freezetag/internal/trace"
)

// ErrBadRequest tags request-resolution failures (unknown algorithm, bad
// family, missing instance); the HTTP layer maps it to 400.
var ErrBadRequest = errors.New("bad request")

// ErrQueueFull is returned when the job queue is at capacity; the HTTP
// layer maps it to 429 Too Many Requests.
var ErrQueueFull = errors.New("job queue full")

// ErrClosed is returned by Solve after Close.
var ErrClosed = errors.New("service closed")

// Config sizes a Service. Zero values select the defaults.
type Config struct {
	// Workers is the solver pool size (default GOMAXPROCS).
	Workers int
	// QueueDepth bounds the number of queued-but-unstarted solves
	// (default 64). A full queue sheds new work with ErrQueueFull.
	QueueDepth int
	// CacheSize bounds the result LRU in entries (default 1024).
	CacheSize int
	// preSolve, when set (tests only), runs in the worker before each
	// simulation — used to hold workers and fill the queue.
	preSolve func()
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 64
	}
	if c.CacheSize < 1 {
		c.CacheSize = 1024
	}
	return c
}

// Solved is the outcome of a service solve.
type Solved struct {
	// Hash is the request's content-addressed key.
	Hash string
	// Body is the canonical marshaled SolveResponse. Identical requests
	// always receive identical bytes, cold or cached.
	Body []byte
	// Hit reports whether the solve was served without running a new
	// simulation (cache hit or coalesced into an in-flight one).
	Hit bool
}

// job is one queued simulation.
type job struct {
	hash   string
	alg    dftp.Algorithm
	inst   *instance.Instance
	tup    dftp.Tuple
	budget float64
	call   *call
}

// call is a single-flight slot: the first request for a hash creates it,
// concurrent duplicates wait on done and share the outcome.
type call struct {
	done chan struct{}
	ent  *entry
	err  error
}

// Service is the solver daemon core. Create one with New, serve it over
// HTTP with Handler, and stop it with Close.
type Service struct {
	cfg  Config
	jobs chan *job
	wg   sync.WaitGroup

	mu       sync.Mutex
	cache    *lruCache
	inflight map[string]*call
	closed   bool

	hits      atomic.Int64
	coalesced atomic.Int64
	misses    atomic.Int64
	shed      atomic.Int64
	solves    atomic.Int64
}

// New starts a Service with cfg's worker pool running.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:      cfg,
		jobs:     make(chan *job, cfg.QueueDepth),
		cache:    newLRU(cfg.CacheSize),
		inflight: make(map[string]*call),
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Close drains the queue, stops the workers, and fails subsequent Solves
// with ErrClosed. Queued jobs still complete.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.jobs)
	s.wg.Wait()
}

// resolved is a request after validation: concrete algorithm, instance,
// tuple, budget, and the content hash they determine.
type resolved struct {
	hash   string
	alg    dftp.Algorithm
	inst   *instance.Instance
	tup    dftp.Tuple
	budget float64
}

// resolve validates req, materializes its instance (inline wins over
// family), derives the tuple (override or TupleFor), and computes the
// request hash. All failures wrap ErrBadRequest.
func resolve(req SolveRequest) (resolved, error) {
	var r resolved
	alg, err := AlgorithmByName(req.Algorithm)
	if err != nil {
		return r, err
	}
	inst := req.Instance
	if inst == nil {
		if req.Family == "" {
			return r, fmt.Errorf("%w: request needs an inline instance or a family", ErrBadRequest)
		}
		inst, err = instance.Family(req.Family, req.N, req.Param, req.Seed)
		if err != nil {
			return r, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
	} else if len(inst.Points) == 0 {
		return r, fmt.Errorf("%w: inline instance has no points", ErrBadRequest)
	}
	var tup dftp.Tuple
	if req.Tuple != nil {
		tup = dftp.Tuple{Ell: req.Tuple.Ell, Rho: req.Tuple.Rho, N: req.Tuple.N}
		if !tup.Admissible() {
			return r, fmt.Errorf("%w: tuple (ℓ=%g, ρ=%g, n=%d) is not admissible (need 0 < ℓ ≤ ρ ≤ nℓ)",
				ErrBadRequest, tup.Ell, tup.Rho, tup.N)
		}
	} else {
		tup = dftp.TupleFor(inst)
	}
	budget := req.Budget
	if budget < 0 {
		budget = 0
	}
	r = resolved{
		hash:   instance.HashRequest(alg.Name(), inst, tup.Ell, tup.Rho, tup.N, budget),
		alg:    alg,
		inst:   inst,
		tup:    tup,
		budget: budget,
	}
	return r, nil
}

// Solve serves one request: from the cache when possible, by joining an
// identical in-flight solve otherwise, and by queueing a new simulation as
// the last resort. It blocks until the result is available. Errors:
// ErrBadRequest (invalid request), ErrQueueFull (load shed), ErrClosed, or
// a simulation failure.
func (s *Service) Solve(req SolveRequest) (Solved, error) {
	r, err := resolve(req)
	if err != nil {
		return Solved{}, err
	}

	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Solved{}, ErrClosed
	}
	if e, ok := s.cache.get(r.hash); ok {
		s.mu.Unlock()
		s.hits.Add(1)
		return Solved{Hash: r.hash, Body: e.body, Hit: true}, nil
	}
	if c, ok := s.inflight[r.hash]; ok {
		s.mu.Unlock()
		<-c.done
		if c.err != nil {
			return Solved{}, c.err
		}
		// Count only successful coalesces, so hitRate never credits
		// requests that were actually served an error.
		s.coalesced.Add(1)
		return Solved{Hash: r.hash, Body: c.ent.body, Hit: true}, nil
	}
	c := &call{done: make(chan struct{})}
	s.inflight[r.hash] = c
	j := &job{hash: r.hash, alg: r.alg, inst: r.inst, tup: r.tup, budget: r.budget, call: c}
	select {
	case s.jobs <- j:
		s.mu.Unlock()
	default:
		delete(s.inflight, r.hash)
		s.mu.Unlock()
		s.shed.Add(1)
		return Solved{}, ErrQueueFull
	}
	s.misses.Add(1)

	<-c.done
	if c.err != nil {
		return Solved{}, c.err
	}
	return Solved{Hash: r.hash, Body: c.ent.body, Hit: false}, nil
}

// worker runs queued simulations, stores the marshaled response in the
// cache, and releases the single-flight waiters.
func (s *Service) worker() {
	defer s.wg.Done()
	for j := range s.jobs {
		if s.cfg.preSolve != nil {
			s.cfg.preSolve()
		}
		rec := trace.New()
		res, rep, err := dftp.SolveTraced(j.alg, j.inst, j.tup, j.budget, rec.Record)
		s.solves.Add(1)
		var ent *entry
		if err == nil {
			var body []byte
			body, err = json.Marshal(NewSolveResponse(j.hash, j.alg, j.inst, j.tup, j.budget, res, rep))
			if err == nil {
				ent = &entry{hash: j.hash, body: body, events: rec.Events()}
			}
		}
		s.mu.Lock()
		if ent != nil {
			s.cache.add(ent)
		}
		delete(s.inflight, j.hash)
		s.mu.Unlock()
		j.call.ent, j.call.err = ent, err
		close(j.call.done)
	}
}

// Probe returns the cached response bytes for a hash, if present. It never
// triggers a solve.
func (s *Service) Probe(hash string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.cache.get(hash)
	if !ok {
		return nil, false
	}
	return e.body, true
}

// TraceEvents returns the cached event stream for a hash, if present.
func (s *Service) TraceEvents(hash string) ([]sim.Event, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.cache.get(hash)
	if !ok {
		return nil, false
	}
	return e.events, true
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	cacheLen := s.cache.len()
	s.mu.Unlock()
	st := Stats{
		Hits:          s.hits.Load(),
		Coalesced:     s.coalesced.Load(),
		Misses:        s.misses.Load(),
		Shed:          s.shed.Load(),
		Solves:        s.solves.Load(),
		QueueDepth:    len(s.jobs),
		QueueCapacity: s.cfg.QueueDepth,
		CacheLen:      cacheLen,
		CacheCapacity: s.cfg.CacheSize,
		Workers:       s.cfg.Workers,
	}
	if lookups := st.Hits + st.Coalesced + st.Misses; lookups > 0 {
		st.HitRate = float64(st.Hits+st.Coalesced) / float64(lookups)
	}
	return st
}
