// Package service turns the freeze-tag library into a long-running solver
// daemon: an HTTP/JSON API over a content-addressed result cache and a
// bounded job queue.
//
// Every request is canonically encoded and hashed (internal/instance); the
// hash keys an in-memory LRU of marshaled responses, so repeated requests —
// including duplicated and concurrent ones — are idempotent by construction:
// a cache hit returns bytes identical to the cold solve, concurrent
// identical requests coalesce into a single simulation (single-flight), and
// the bounded queue sheds excess load with ErrQueueFull (HTTP 429) instead
// of collapsing. The simulator is deterministic (PR 1), which is what makes
// caching sound: the cached result IS the result — and the portfolio racing
// engine (PR 3) keeps its responses deterministic too, so whole races cache
// the same way single solves do.
package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"

	"freezetag/internal/dftp"
	"freezetag/internal/geom"
	"freezetag/internal/instance"
	"freezetag/internal/portfolio"
	"freezetag/internal/sim"
	"freezetag/internal/trace"
)

// ErrBadRequest tags request-resolution failures (unknown algorithm, bad
// family, missing instance); the HTTP layer maps it to 400.
var ErrBadRequest = errors.New("bad request")

// ErrQueueFull is returned when the job queue is at capacity; the HTTP
// layer maps it to 429 Too Many Requests.
var ErrQueueFull = errors.New("job queue full")

// ErrClosed is returned by Solve after Close.
var ErrClosed = errors.New("service closed")

// Config sizes a Service. Zero values select the defaults.
type Config struct {
	// Workers is the solver pool size (default GOMAXPROCS). It also bounds
	// each portfolio race's internal racing pool.
	Workers int
	// QueueDepth bounds the number of queued-but-unstarted solves
	// (default 64). A full queue sheds new work with ErrQueueFull.
	QueueDepth int
	// CacheBytes bounds the result cache by approximate retained bytes —
	// marshaled response + event trace + bookkeeping — rather than entry
	// count, so varied workloads with huge traces and tiny ones share one
	// memory budget (default 64 MiB).
	CacheBytes int64
	// DropTraces disables per-entry event-trace retention: simulations run
	// untraced, cache entries hold only the marshaled response, and
	// GET /v1/trace/{hash} reports traces disabled.
	DropTraces bool
	// memoSize bounds the request-shape → hash memo in entries (default
	// 4096; entries are two short strings).
	memoSize int
	// preSolve, when set (tests only), runs in the worker before each
	// simulation — used to hold workers and fill the queue.
	preSolve func()
}

func (c Config) withDefaults() Config {
	if c.Workers < 1 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 64
	}
	if c.CacheBytes < 1 {
		c.CacheBytes = 64 << 20
	}
	if c.memoSize < 1 {
		c.memoSize = 4096
	}
	return c
}

// Solved is the outcome of a service solve.
type Solved struct {
	// Hash is the request's content-addressed key.
	Hash string
	// Body is the canonical marshaled SolveResponse (or PortfolioResponse).
	// Identical requests always receive identical bytes, cold or cached.
	Body []byte
	// Hit reports whether the solve was served without running a new
	// simulation (cache hit or coalesced into an in-flight one).
	Hit bool
}

// job is one queued unit of work: a simulation or a whole portfolio race,
// closed over by run. width is the job's effective admission weight: the
// number of worker slots its simulations can occupy at once (1 for a solve,
// min(k, Workers) for a k-entrant race, whose internal pool is clamped to
// Workers).
type job struct {
	hash  string
	width int
	call  *call
	run   func() (*entry, error)
}

// call is a single-flight slot: the first request for a hash creates it,
// concurrent duplicates wait on done and share the outcome.
type call struct {
	done chan struct{}
	ent  *entry
	err  error
}

// Service is the solver daemon core. Create one with New, serve it over
// HTTP with Handler, and stop it with Close.
type Service struct {
	cfg  Config
	jobs chan *job
	wg   sync.WaitGroup

	mu       sync.Mutex
	cache    *lru[*entry]
	shapes   *lru[string]
	params   *lru[dftp.Tuple]
	inflight map[string]*call
	closed   bool
	// queueWeight is the admitted-but-uncompleted effective slot count
	// (widths of queued and running jobs). Admission sheds when it would
	// exceed QueueDepth+Workers, so a burst of wide portfolio races cannot
	// oversubscribe the host the way width-blind counting would.
	queueWeight int

	hits            atomic.Int64
	coalesced       atomic.Int64
	misses          atomic.Int64
	shed            atomic.Int64
	solves          atomic.Int64
	races           atomic.Int64
	racersCancelled atomic.Int64
	memoHits        atomic.Int64
	paramsMemoHits  atomic.Int64
}

// New starts a Service with cfg's worker pool running.
func New(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:      cfg,
		jobs:     make(chan *job, cfg.QueueDepth),
		cache:    newLRU(cfg.CacheBytes),
		shapes:   newMemoLRU(cfg.memoSize),
		params:   newParamsLRU(cfg.memoSize),
		inflight: make(map[string]*call),
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Close drains the queue, stops the workers, and fails subsequent Solves
// with ErrClosed. Queued jobs still complete.
func (s *Service) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.jobs)
	s.wg.Wait()
}

// parseMetric resolves a request's metric spelling, wrapping rejections —
// unknown names, degenerate exponents like lp:0 or lp:NaN — in ErrBadRequest
// so the HTTP layer answers 400 instead of silently defaulting.
func parseMetric(s string) (geom.Metric, error) {
	m, err := geom.ParseMetric(s)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return m, nil
}

// resolveInstance materializes the instance/tuple/budget half of a request
// (shared by solve and portfolio requests): inline instance wins over
// family, the tuple defaults to dftp.TupleForIn(metric, instance), budgets
// ≤ 0 collapse to 0. Request-level profiles override whatever profiles the
// inline instance or family modifiers supplied, and the combined profile
// list is validated (speeds finite and > 0, one per robot). All failures
// wrap ErrBadRequest.
//
// Derived tuples of family-generated requests are memoized under
// (metric, family, n, param, seed): the derivation walks the whole point
// set (ℓ*, ρ*, ξ), and the same family shape recurs across algorithms,
// objectives, and budgets — all of which change the content hash but not
// the instance. Profiles never affect the derivation either — (ℓ*, ρ*, ξ)
// are pure geometry — so the memo is profile-blind by construction. A memo
// hit turns the cold path's parameter derivation into a map lookup
// (paramsMemoHits in /statsz).
func (s *Service) resolveInstance(m geom.Metric, inline *instance.Instance, family string, n int, param float64, seed int64, tupJSON *TupleJSON, budget float64, profiles []instance.Profile) (*instance.Instance, dftp.Tuple, float64, error) {
	var tup dftp.Tuple
	inst := inline
	if inst == nil {
		if family == "" {
			return nil, tup, 0, fmt.Errorf("%w: request needs an inline instance or a family", ErrBadRequest)
		}
		var err error
		inst, err = instance.Family(family, n, param, seed)
		if err != nil {
			return nil, tup, 0, fmt.Errorf("%w: %v", ErrBadRequest, err)
		}
	} else if len(inst.Points) == 0 {
		return nil, tup, 0, fmt.Errorf("%w: inline instance has no points", ErrBadRequest)
	}
	if len(profiles) > 0 {
		// Copy-on-write: never mutate the caller's inline instance.
		cp := *inst
		cp.Profiles = profiles
		inst = &cp
	}
	if err := inst.ValidateProfiles(); err != nil {
		return nil, tup, 0, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	if tupJSON != nil {
		tup = dftp.Tuple{Ell: tupJSON.Ell, Rho: tupJSON.Rho, N: tupJSON.N}
		if !tup.Admissible() {
			return nil, tup, 0, fmt.Errorf("%w: tuple (ℓ=%g, ρ=%g, n=%d) is not admissible (need 0 < ℓ ≤ ρ ≤ nℓ)",
				ErrBadRequest, tup.Ell, tup.Rho, tup.N)
		}
	} else if key, ok := paramsKey(m, inline, family, n, param, seed); ok {
		s.mu.Lock()
		memo, hit := s.params.get(key)
		s.mu.Unlock()
		if hit {
			s.paramsMemoHits.Add(1)
			tup = memo
		} else {
			tup = dftp.TupleForIn(m, inst)
			s.mu.Lock()
			s.params.add(key, tup)
			s.mu.Unlock()
		}
	} else {
		tup = dftp.TupleForIn(m, inst)
	}
	if budget < 0 {
		budget = 0
	}
	return inst, tup, budget, nil
}

// paramsKey is the tuple-memo key of a family-generated request: the
// scalars that determine the generated point set, plus the metric the
// parameters are measured in. Algorithm, objective, and budget are
// deliberately absent — they don't affect the derivation. Inline instances
// are not memoized (deriving their key would walk the points, which is the
// work the memo saves).
func paramsKey(m geom.Metric, inline *instance.Instance, family string, n int, param float64, seed int64) (string, bool) {
	if inline != nil || family == "" {
		return "", false
	}
	return fmt.Sprintf("%s|%s|%d|%x|%d", geom.MetricOrL2(m).Name(), strings.ToLower(family), n,
		math.Float64bits(param), seed), true
}

// shapeKey is the memo key of a family-generated request: every scalar that
// determines the content hash — including the metric's canonical name and
// any request-level profiles — without materializing the instance. Inline
// instances are not memoized (their hash already requires walking the
// points, so there is nothing to save). Family-modifier profiles need no
// extra key material: they are a deterministic function of the family
// string, which is already in the key.
func shapeKey(solverName string, m geom.Metric, inline *instance.Instance, family string, n int, param float64, seed int64, tupJSON *TupleJSON, budget float64, profiles []instance.Profile) (string, bool) {
	if inline != nil || family == "" {
		return "", false
	}
	if budget <= 0 {
		budget = 0
	}
	key := fmt.Sprintf("%s|%s|%s|%d|%x|%d|%x", solverName, geom.MetricOrL2(m).Name(), strings.ToLower(family), n,
		math.Float64bits(param), seed, math.Float64bits(budget))
	if tupJSON != nil {
		key += fmt.Sprintf("|t%x,%x,%d", math.Float64bits(tupJSON.Ell), math.Float64bits(tupJSON.Rho), tupJSON.N)
	}
	for _, p := range profiles {
		cap := p.Capacity
		if cap <= 0 {
			cap = 0 // same normalization as the canonical encoding
		}
		key += fmt.Sprintf("|f%x,%x", math.Float64bits(p.Speed), math.Float64bits(cap))
	}
	return key, true
}

// resolved is a solve request after validation: concrete algorithm, metric,
// instance, tuple, budget, and the content hash they determine.
type resolved struct {
	hash   string
	alg    dftp.Algorithm
	metric geom.Metric
	inst   *instance.Instance
	tup    dftp.Tuple
	budget float64
}

// resolve materializes the instance of req for the given (already
// validated) algorithm and metric, derives the tuple, and computes the
// request hash. All failures wrap ErrBadRequest.
func (s *Service) resolve(alg dftp.Algorithm, m geom.Metric, req SolveRequest) (resolved, error) {
	var r resolved
	inst, tup, budget, err := s.resolveInstance(m, req.Instance, req.Family, req.N, req.Param, req.Seed, req.Tuple, req.Budget, req.Profiles)
	if err != nil {
		return r, err
	}
	return resolved{
		hash:   instance.HashRequestIn(m, alg.Name(), inst, tup.Ell, tup.Rho, tup.N, budget),
		alg:    alg,
		metric: m,
		inst:   inst,
		tup:    tup,
		budget: budget,
	}, nil
}

// resolvedPortfolio is a portfolio request after validation.
type resolvedPortfolio struct {
	hash   string
	pf     portfolio.Portfolio
	metric geom.Metric
	inst   *instance.Instance
	tup    dftp.Tuple
	budget float64
}

// maxPortfolioAlgorithms caps one race's entrant list (duplicates are legal
// but each entrant is a full simulation): without it a single small request
// could queue unbounded work in one worker slot, the same hole
// maxBatchItems closes for /v1/batch.
const maxPortfolioAlgorithms = 16

// portfolioFor validates the algorithms/objective/seed half of a portfolio
// request. It is cheap (no instance generation), so the memo fast path can
// call it to derive the canonical descriptor.
func portfolioFor(req PortfolioRequest) (portfolio.Portfolio, error) {
	var pf portfolio.Portfolio
	if len(req.Algorithms) == 0 {
		return pf, fmt.Errorf("%w: portfolio needs at least one algorithm", ErrBadRequest)
	}
	if len(req.Algorithms) > maxPortfolioAlgorithms {
		return pf, fmt.Errorf("%w: portfolio of %d algorithms exceeds the %d-entrant limit",
			ErrBadRequest, len(req.Algorithms), maxPortfolioAlgorithms)
	}
	algs := make([]dftp.Algorithm, len(req.Algorithms))
	for i, name := range req.Algorithms {
		alg, err := AlgorithmByName(name)
		if err != nil {
			return pf, err
		}
		algs[i] = alg
	}
	obj, err := portfolio.ParseObjective(req.Objective)
	if err != nil {
		return pf, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return portfolio.Portfolio{Algorithms: algs, Objective: obj, Seed: req.Seed}, nil
}

// resolvePortfolio materializes the instance of req for the given (already
// validated) portfolio and metric and computes the request hash.
func (s *Service) resolvePortfolio(pf portfolio.Portfolio, m geom.Metric, req PortfolioRequest) (resolvedPortfolio, error) {
	var r resolvedPortfolio
	inst, tup, budget, err := s.resolveInstance(m, req.Instance, req.Family, req.N, req.Param, req.Seed, req.Tuple, req.Budget, req.Profiles)
	if err != nil {
		return r, err
	}
	return resolvedPortfolio{
		hash:   instance.HashRequestIn(m, pf.Name(), inst, tup.Ell, tup.Rho, tup.N, budget),
		pf:     pf,
		metric: m,
		inst:   inst,
		tup:    tup,
		budget: budget,
	}, nil
}

// Solve serves one request: from the cache when possible, by joining an
// identical in-flight solve otherwise, and by queueing a new simulation as
// the last resort. It blocks until the result is available. Errors:
// ErrBadRequest (invalid request), ErrQueueFull (load shed), ErrClosed, or
// a simulation failure.
func (s *Service) Solve(req SolveRequest) (Solved, error) {
	// Memo fast path: a family request whose shape was seen before finds
	// its hash — and with luck its cached bytes — without re-generating the
	// instance and re-hashing its points.
	alg, err := AlgorithmByName(req.Algorithm)
	if err != nil {
		return Solved{}, err
	}
	m, err := parseMetric(req.Metric)
	if err != nil {
		return Solved{}, err
	}
	key, keyed := shapeKey(alg.Name(), m, req.Instance, req.Family, req.N, req.Param, req.Seed, req.Tuple, req.Budget, req.Profiles)
	if keyed {
		if sv, handled, err := s.memoLookup(key); handled {
			return sv, err
		}
	}
	r, err := s.resolve(alg, m, req)
	if err != nil {
		return Solved{}, err
	}
	run := func() (*entry, error) {
		var rec *trace.Recorder
		var traceFn func(sim.Event)
		if !s.cfg.DropTraces {
			rec = trace.New()
			traceFn = rec.Record
		}
		res, rep, err := dftp.SolveIn(context.Background(), r.metric, r.alg, r.inst, r.tup, r.budget, traceFn)
		s.solves.Add(1)
		if err != nil {
			return nil, err
		}
		body, err := json.Marshal(NewSolveResponse(r.hash, r.alg, r.metric, r.inst, r.tup, r.budget, res, rep))
		if err != nil {
			return nil, err
		}
		ent := &entry{hash: r.hash, body: body}
		if rec != nil {
			ent.events = rec.Events()
		}
		return ent.sized(), nil
	}
	return s.startOrJoin(r.hash, key, 1, run)
}

// SolvePortfolio serves one portfolio race with the same cache-first /
// single-flight / bounded-queue semantics as Solve. The race itself runs k
// simulations concurrently inside one worker slot (its racing pool is
// bounded by Config.Workers); because race outcomes are deterministic at
// any worker count, the response is cacheable exactly like a single solve.
func (s *Service) SolvePortfolio(req PortfolioRequest) (Solved, error) {
	pf, err := portfolioFor(req)
	if err != nil {
		return Solved{}, err
	}
	m, err := parseMetric(req.Metric)
	if err != nil {
		return Solved{}, err
	}
	key, keyed := shapeKey(pf.Name(), m, req.Instance, req.Family, req.N, req.Param, req.Seed, req.Tuple, req.Budget, req.Profiles)
	if keyed {
		if sv, handled, err := s.memoLookup(key); handled {
			return sv, err
		}
	}
	r, err := s.resolvePortfolio(pf, m, req)
	if err != nil {
		return Solved{}, err
	}
	run := func() (*entry, error) {
		res, err := portfolio.Race(r.pf, r.inst, r.tup, r.budget,
			portfolio.Options{Workers: s.cfg.Workers, Trace: !s.cfg.DropTraces, Metric: r.metric})
		s.races.Add(1)
		if err != nil {
			return nil, err
		}
		s.solves.Add(int64(len(r.pf.Algorithms) - res.Aborted))
		s.racersCancelled.Add(int64(res.Cancelled))
		body, err := json.Marshal(NewPortfolioResponse(r.hash, r.pf, r.metric, r.inst, r.tup, r.budget, res))
		if err != nil {
			return nil, err
		}
		return (&entry{hash: r.hash, body: body, events: res.Events}).sized(), nil
	}
	// A k-entrant race runs min(k, Workers) simulations concurrently inside
	// its worker slot; admission accounts for that width so a burst of
	// portfolio requests cannot oversubscribe the host.
	width := len(r.pf.Algorithms)
	if width > s.cfg.Workers {
		width = s.cfg.Workers
	}
	return s.startOrJoin(r.hash, key, width, run)
}

// memoLookup serves a request whose shape key is already memoized: a cache
// hit or an in-flight join, without materializing the instance. handled is
// false when the caller must fall back to full resolution (unknown shape,
// or known shape whose result has been evicted).
func (s *Service) memoLookup(key string) (sv Solved, handled bool, err error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Solved{}, true, ErrClosed
	}
	hash, ok := s.shapes.get(key)
	if !ok {
		s.mu.Unlock()
		return Solved{}, false, nil
	}
	if e, ok := s.cache.get(hash); ok {
		s.mu.Unlock()
		s.hits.Add(1)
		s.memoHits.Add(1)
		return Solved{Hash: hash, Body: e.body, Hit: true}, true, nil
	}
	if c, ok := s.inflight[hash]; ok {
		s.mu.Unlock()
		<-c.done
		if c.err != nil {
			return Solved{}, true, c.err
		}
		s.coalesced.Add(1)
		s.memoHits.Add(1)
		return Solved{Hash: hash, Body: c.ent.body, Hit: true}, true, nil
	}
	s.mu.Unlock()
	return Solved{}, false, nil
}

// startOrJoin is the cache-first core shared by Solve and SolvePortfolio:
// serve the hash from the cache, join an identical in-flight job, or queue
// run as a new job of the given admission width. memoKey, when non-empty, is
// recorded so future requests of the same shape skip instance
// materialization.
//
// Admission is width-weighted: the sum of admitted-but-uncompleted widths is
// capped at QueueDepth+Workers (exactly the old queued+running limit when
// every job has width 1), so k-entrant races reserve k effective slots and
// shed under load like k solves would.
func (s *Service) startOrJoin(hash, memoKey string, width int, run func() (*entry, error)) (Solved, error) {
	if width < 1 {
		width = 1
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Solved{}, ErrClosed
	}
	if memoKey != "" {
		s.shapes.add(memoKey, hash)
	}
	if e, ok := s.cache.get(hash); ok {
		s.mu.Unlock()
		s.hits.Add(1)
		return Solved{Hash: hash, Body: e.body, Hit: true}, nil
	}
	if c, ok := s.inflight[hash]; ok {
		s.mu.Unlock()
		<-c.done
		if c.err != nil {
			return Solved{}, c.err
		}
		// Count only successful coalesces, so hitRate never credits
		// requests that were actually served an error.
		s.coalesced.Add(1)
		return Solved{Hash: hash, Body: c.ent.body, Hit: true}, nil
	}
	if s.queueWeight+width > s.cfg.QueueDepth+s.cfg.Workers {
		s.mu.Unlock()
		s.shed.Add(1)
		return Solved{}, ErrQueueFull
	}
	c := &call{done: make(chan struct{})}
	s.inflight[hash] = c
	j := &job{hash: hash, width: width, call: c, run: run}
	select {
	case s.jobs <- j:
		s.queueWeight += width
		s.mu.Unlock()
	default:
		delete(s.inflight, hash)
		s.mu.Unlock()
		s.shed.Add(1)
		return Solved{}, ErrQueueFull
	}
	s.misses.Add(1)

	<-c.done
	if c.err != nil {
		return Solved{}, c.err
	}
	return Solved{Hash: hash, Body: c.ent.body, Hit: false}, nil
}

// worker runs queued jobs, stores the marshaled response in the cache, and
// releases the single-flight waiters.
func (s *Service) worker() {
	defer s.wg.Done()
	for j := range s.jobs {
		if s.cfg.preSolve != nil {
			s.cfg.preSolve()
		}
		ent, err := j.run()
		s.mu.Lock()
		if ent != nil {
			s.cache.add(ent.hash, ent)
		}
		delete(s.inflight, j.hash)
		s.queueWeight -= j.width
		s.mu.Unlock()
		j.call.ent, j.call.err = ent, err
		close(j.call.done)
	}
}

// Probe returns the cached response bytes for a hash, if present. It never
// triggers a solve.
func (s *Service) Probe(hash string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.cache.get(hash)
	if !ok {
		return nil, false
	}
	return e.body, true
}

// TracesRetained reports whether per-entry event traces are kept (false
// under Config.DropTraces).
func (s *Service) TracesRetained() bool { return !s.cfg.DropTraces }

// TraceEvents returns the cached event stream for a hash, if present.
func (s *Service) TraceEvents(hash string) ([]sim.Event, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.cache.get(hash)
	if !ok {
		return nil, false
	}
	return e.events, true
}

// Stats snapshots the service counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	cacheLen := s.cache.len()
	cacheBytes := s.cache.total
	queueWeight := s.queueWeight
	s.mu.Unlock()
	st := Stats{
		Hits:            s.hits.Load(),
		Coalesced:       s.coalesced.Load(),
		Misses:          s.misses.Load(),
		Shed:            s.shed.Load(),
		Solves:          s.solves.Load(),
		Races:           s.races.Load(),
		RacersCancelled: s.racersCancelled.Load(),
		MemoHits:        s.memoHits.Load(),
		ParamsMemoHits:  s.paramsMemoHits.Load(),
		QueueDepth:      len(s.jobs),
		QueueCapacity:   s.cfg.QueueDepth,
		QueueWeight:     queueWeight,
		AdmissionCap:    s.cfg.QueueDepth + s.cfg.Workers,
		CacheLen:        cacheLen,
		CacheBytes:      cacheBytes,
		CacheCapacity:   s.cfg.CacheBytes,
		TracesRetained:  !s.cfg.DropTraces,
		Workers:         s.cfg.Workers,
	}
	if lookups := st.Hits + st.Coalesced + st.Misses; lookups > 0 {
		st.HitRate = float64(st.Hits+st.Coalesced) / float64(lookups)
	}
	return st
}
