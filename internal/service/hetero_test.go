package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"testing"
)

const profiledBody = `{"algorithm":"agrid","family":"line","n":4,"param":1,` +
	`"profiles":[{"speed":1},{"speed":0.5},{"speed":0.25,"capacity":30},{"speed":2}]}`

// A profiled solve round-trips: 200, the response echoes the profiles the
// solve ran under, the result is content-addressed (miss then hit with
// byte-identical bodies), and the hash differs from the homogeneous twin.
func TestHTTPSolveProfiled(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2})

	r1, b1 := postSolve(t, srv, profiledBody)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("profiled solve: %d %s", r1.StatusCode, b1)
	}
	if got := r1.Header.Get("X-Cache"); got != "miss" {
		t.Fatalf("cold X-Cache = %q", got)
	}
	var out SolveResponse
	if err := json.Unmarshal(b1, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Profiles) != 4 || out.Profiles[2].Speed != 0.25 || out.Profiles[2].Capacity != 30 {
		t.Fatalf("response did not echo the profiles: %+v", out.Profiles)
	}
	if !out.AllAwake {
		t.Fatalf("profiled solve incomplete: %s", b1)
	}

	r2, b2 := postSolve(t, srv, profiledBody)
	if got := r2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("warm X-Cache = %q", got)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("cached body differs:\n%s\n%s", b1, b2)
	}

	// The homogeneous twin is a different request with a different key and
	// no profiles echo.
	r3, b3 := postSolve(t, srv, `{"algorithm":"agrid","family":"line","n":4,"param":1}`)
	if r3.StatusCode != http.StatusOK {
		t.Fatalf("homogeneous twin: %d %s", r3.StatusCode, b3)
	}
	var twin SolveResponse
	if err := json.Unmarshal(b3, &twin); err != nil {
		t.Fatal(err)
	}
	if twin.Hash == out.Hash {
		t.Fatalf("profiled and homogeneous requests share hash %s", out.Hash)
	}
	if len(twin.Profiles) != 0 {
		t.Fatalf("homogeneous response grew a profiles field: %s", b3)
	}
}

// Bad profiles are request errors, not solver crashes: zero/negative/NaN
// speeds and count mismatches all map to 400 with a JSON error body.
func TestHTTPSolveProfileValidation(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1})
	bad := []string{
		`{"algorithm":"agrid","family":"line","n":3,"param":1,"profiles":[{"speed":1},{"speed":0},{"speed":1}]}`,
		`{"algorithm":"agrid","family":"line","n":3,"param":1,"profiles":[{"speed":1},{"speed":-2},{"speed":1}]}`,
		`{"algorithm":"agrid","family":"line","n":3,"param":1,"profiles":[{"speed":1}]}`,
	}
	for _, body := range bad {
		resp, data := postSolve(t, srv, body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", body, resp.StatusCode, data)
		}
		var e struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(data, &e); err != nil || e.Error == "" {
			t.Errorf("%s: error body not JSON: %s", body, data)
		}
	}
}

// Family-modifier profiles flow through the service: solving a speedband
// family echoes the generated profiles, and explicit request profiles
// override them (a different request, different hash).
func TestHTTPSolveFamilyModifier(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 1})
	r1, b1 := postSolve(t, srv, `{"algorithm":"awave","family":"line+speedband:0.5","n":4,"param":1,"seed":2}`)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("modifier solve: %d %s", r1.StatusCode, b1)
	}
	var out SolveResponse
	if err := json.Unmarshal(b1, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Profiles) != 4 {
		t.Fatalf("speedband family echoed %d profiles, want 4: %s", len(out.Profiles), b1)
	}
	for i, p := range out.Profiles {
		if p.Speed < 0.5 || p.Speed > 1 {
			t.Errorf("profile %d speed %g outside [0.5, 1]", i, p.Speed)
		}
	}

	r2, b2 := postSolve(t, srv,
		`{"algorithm":"awave","family":"line+speedband:0.5","n":4,"param":1,"seed":2,`+
			`"profiles":[{"speed":1},{"speed":1},{"speed":1},{"speed":1}]}`)
	if r2.StatusCode != http.StatusOK {
		t.Fatalf("override solve: %d %s", r2.StatusCode, b2)
	}
	var over SolveResponse
	if err := json.Unmarshal(b2, &over); err != nil {
		t.Fatal(err)
	}
	if over.Hash == out.Hash {
		t.Fatal("request-level profiles did not change the key")
	}
	for i, p := range over.Profiles {
		if p.Speed != 1 {
			t.Errorf("override profile %d speed %g, want 1", i, p.Speed)
		}
	}
}

// The portfolio endpoint accepts profiles too and races every entrant under
// them.
func TestHTTPPortfolioProfiled(t *testing.T) {
	_, srv := newTestServer(t, Config{Workers: 2})
	body := `{"algorithms":["agrid","awave"],"family":"line","n":4,"param":1,` +
		`"profiles":[{"speed":0.5},{"speed":0.5},{"speed":1},{"speed":1}]}`
	resp, err := http.Post(srv.URL+"/v1/portfolio", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	data := readAll(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("profiled race: %d %s", resp.StatusCode, data)
	}
	var out struct {
		AllAwake bool   `json:"allAwake"`
		Winner   string `json:"winner"`
		Racers   []struct {
			Status string `json:"status"`
		} `json:"racers"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Racers) != 2 {
		t.Fatalf("racers = %d, want 2: %s", len(out.Racers), data)
	}
	if !out.AllAwake || out.Winner == "" {
		t.Fatalf("profiled race incomplete: %s", data)
	}
	for i, r := range out.Racers {
		if r.Status != "won" && r.Status != "completed" {
			t.Errorf("racer %d status %q under profiles: %s", i, r.Status, data)
		}
	}
}
