package experiments

import (
	"strings"
	"testing"
)

// Each experiment must run to completion at Quick scale and produce a table
// with the expected columns and at least one data row.

func checkTable(t *testing.T, tb interface {
	String() string
	NumRows() int
}, wantCols ...string) {
	t.Helper()
	if tb.NumRows() == 0 {
		t.Fatalf("empty table:\n%s", tb.String())
	}
	s := tb.String()
	for _, c := range wantCols {
		if !strings.Contains(s, c) {
			t.Errorf("missing column %q in:\n%s", c, s)
		}
	}
}

func TestE1RhoSweep(t *testing.T) {
	tb, err := NewRunner().E1RhoSweep(Quick)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb, "rho", "makespan", "ratio")
}

func TestE1EllSweep(t *testing.T) {
	tb, err := NewRunner().E1EllSweep(Quick)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb, "ell", "makespan")
}

func TestE2EnergyThreshold(t *testing.T) {
	tb, err := NewRunner().E2EnergyThreshold(Quick)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb, "budget", "found")
	// The table must exhibit the threshold: a false row and a true row.
	s := tb.String()
	if !strings.Contains(s, "false") || !strings.Contains(s, "true") {
		t.Errorf("threshold not visible:\n%s", s)
	}
}

func TestE3AGrid(t *testing.T) {
	tb, err := NewRunner().E3AGrid(Quick)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb, "xi", "maxEnergy")
}

func TestE4AWave(t *testing.T) {
	if testing.Short() {
		t.Skip("AWave experiment is slow")
	}
	tb, err := NewRunner().E4AWave(Quick)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb, "makespan")
}

func TestE5LowerBound(t *testing.T) {
	tb, err := NewRunner().E5LowerBound(Quick)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb, "adversarial makespan")
}

func TestE6Path(t *testing.T) {
	tb, err := NewRunner().E6Path(Quick)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb, "xi (realized)", "B-disk ecc")
}

func TestE7Crossover(t *testing.T) {
	tb, err := NewRunner().E7Crossover(Quick)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb, "winner")
	// The crossover must be visible: AGrid wins at small ℓ, AWave at ℓ=8+.
	s := tb.String()
	if !strings.Contains(s, "AGrid") || !strings.Contains(s, "AWave") {
		t.Errorf("no crossover visible:\n%s", s)
	}
}

func TestF1Phases(t *testing.T) {
	tb, err := NewRunner().F1Phases(Quick)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb, "depth", "square width")
}

func TestF4Explore(t *testing.T) {
	tb, err := NewRunner().F4Explore(Quick)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb, "duration", "model")
}

func TestF5Construction(t *testing.T) {
	tb, err := NewRunner().F5Construction(Quick)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb, "|C|", "ℓ-connected")
	if strings.Contains(tb.String(), "false") {
		t.Errorf("construction invariant violated:\n%s", tb.String())
	}
}

func TestL2WakeTree(t *testing.T) {
	tb, err := NewRunner().L2WakeTree(Quick)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb, "max ratio")
}

func TestL5DFSampling(t *testing.T) {
	tb, err := NewRunner().L5DFSampling(Quick)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb, "recruit target", "duration")
}

func TestP1Portfolio(t *testing.T) {
	tb, err := NewRunner().P1Portfolio(Quick)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb, "portfolio", "winner", "portfolio/best")
	// The point of the portfolio: the winning algorithm changes across
	// families (the generator itself fails any row where the portfolio does
	// not match the best fixed algorithm).
	s := tb.String()
	if !strings.Contains(s, "ASeparator") || !strings.Contains(s, "AWave") {
		t.Errorf("no complementarity visible:\n%s", s)
	}
}

func TestXiSanity(t *testing.T) {
	tb, err := NewRunner().XiSanity()
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb, "ell*", "ok")
	if strings.Contains(tb.String(), "false") {
		t.Errorf("Proposition 1 violated:\n%s", tb.String())
	}
}
