package experiments

import (
	"strconv"
	"strings"
	"testing"
)

func TestA1TreeQuality(t *testing.T) {
	tb, err := NewRunner().A1TreeQuality(Quick)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb, "mean ratio", "max ratio")
	// Ratios must be ≥ 1 (optimal is a lower bound) — spot-check the render
	// contains no ratio below 1 by re-running the underlying measurement is
	// covered in wakeup tests; here just require non-empty rows.
	if tb.NumRows() < 3 {
		t.Errorf("expected 3 sizes, got %d rows", tb.NumRows())
	}
}

func TestA2RhoEstimation(t *testing.T) {
	tb, err := NewRunner().A2RhoEstimation(Quick)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb, "overhead")
}

func TestA3TeamGrowth(t *testing.T) {
	tb, err := NewRunner().A3TeamGrowth(Quick)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb, "speedup")
	// Team growth must help: every speedup > 1.
	for _, line := range strings.Split(tb.String(), "\n") {
		fields := strings.Fields(line)
		if len(fields) != 5 {
			continue
		}
		if v, err := strconv.ParseFloat(fields[4], 64); err == nil && v <= 1 {
			t.Errorf("team growth did not speed up sampling: %s", line)
		}
	}
}

func TestA4EllRobustness(t *testing.T) {
	tb, err := NewRunner().A4EllRobustness(Quick)
	if err != nil {
		t.Fatal(err)
	}
	checkTable(t, tb, "ell given")
	if strings.Contains(tb.String(), "INCOMPLETE") {
		t.Errorf("over-estimated ℓ broke correctness:\n%s", tb.String())
	}
}

func TestAblationsAll(t *testing.T) {
	tabs, err := Ablations(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if len(tabs) != 5 {
		t.Fatalf("got %d ablation tables, want 5", len(tabs))
	}
}
