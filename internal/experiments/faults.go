package experiments

import (
	"context"
	"fmt"

	"freezetag/internal/dftp"
	"freezetag/internal/instance"
	"freezetag/internal/report"
)

// F8FaultResilience is the fault-series sweep: fault rate × fault kind per
// algorithm, with the repair layer on versus off. Each cell averages a few
// seeded fault draws (streams derived from the sweep seed, so the table is
// bit-identical at any worker count) and reports the completion rate — the
// fraction of sleepers awakened — and the makespan inflation of the repaired
// runs over the fault-free baseline. The table is the repair layer's
// cost-benefit statement: under crash-stop faults repair restores completion
// 1.0 at a bounded makespan premium, while without it crashed carriers take
// whole subtrees down with them; wake-dup is the control row (at-least-once
// waking absorbs duplicates, so both columns stay at 1.0).
func (r *Runner) F8FaultResilience(scale Scale) (*report.Table, error) {
	algs := []dftp.Algorithm{dftp.ASeparator{}, dftp.AGrid{}}
	rates := []float64{0.15, 0.3}
	n, draws := 48, 3
	if scale == Full {
		algs = []dftp.Algorithm{dftp.ASeparator{}, dftp.AGrid{}, dftp.AWave{}, dftp.ASeparatorAuto{}}
		rates = []float64{0.1, 0.3, 0.5}
		n, draws = 80, 6
	}
	kinds := []string{"crash-stop", "crash-recovery", "wake-drop", "wake-dup", "byzantine"}
	type cfg struct {
		kind string
		rate float64
		alg  dftp.Algorithm
	}
	var cfgs []cfg
	for _, kind := range kinds {
		for _, rate := range rates {
			for _, alg := range algs {
				cfgs = append(cfgs, cfg{kind: kind, rate: rate, alg: alg})
			}
		}
	}
	t := report.NewTable("F8 — fault resilience: completion and makespan inflation, repair on vs off",
		"fault kind", "rate f", "algorithm", "base makespan",
		"completion (repair)", "inflation ×", "completion (no repair)")
	err := Sweep(r, t, cfgs, func(tr *Trial, c cfg) (Row, error) {
		in, err := instance.Family("disk", n, 1.2, r.seed)
		if err != nil {
			return nil, err
		}
		tup := dftp.TupleFor(in)
		base, _, err := dftp.SolveIn(context.Background(), nil, c.alg, in, tup, 0, nil)
		if err != nil {
			return nil, fmt.Errorf("%s baseline: %w", c.alg.Name(), err)
		}
		// One fault draw per (cell, d): the stream index folds in the cell's
		// trial index so no two cells share a draw.
		run := func(repair bool) (completion, meanMakespan float64, err error) {
			var compSum, msSum float64
			completed := 0
			for d := 0; d < draws; d++ {
				f := &dftp.Faults{
					Kind: c.kind, Rate: c.rate,
					Seed:   TrialSeed(r.seed, tr.Index*1000+d),
					Repair: repair,
				}
				if c.kind == "byzantine" {
					f.Byzantine = 1 + int(c.rate*float64(n))
				}
				res, _, err := dftp.SolveFaulted(context.Background(), nil, nil, c.alg, in, tup, 0, f, nil)
				if err != nil {
					return 0, 0, fmt.Errorf("%s under %s f=%g: %w", c.alg.Name(), c.kind, c.rate, err)
				}
				compSum += float64(res.Awakened) / float64(in.N())
				if res.AllAwake {
					msSum += res.Makespan
					completed++
				}
			}
			if completed > 0 {
				meanMakespan = msSum / float64(completed)
			}
			return compSum / float64(draws), meanMakespan, nil
		}
		repComp, repMs, err := run(true)
		if err != nil {
			return nil, err
		}
		noComp, _, err := run(false)
		if err != nil {
			return nil, err
		}
		inflation := 0.0
		if repMs > 0 {
			inflation = repMs / base.Makespan
		}
		return Row{c.kind, c.rate, c.alg.Name(), base.Makespan, repComp, inflation, noComp}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}
