package experiments

import (
	"strings"
	"testing"

	"freezetag/internal/report"
)

// The H1 sweep must run under the engine, produce one row per
// (family, spread) pair, and keep every racer's wake-up complete even at
// the widest speed spread (the slot bounds scale by 1/min-speed, so a
// schedule that overran would surface as an error, not a slow row).
func TestH1Heterogeneous(t *testing.T) {
	tb, err := NewRunner().H1Heterogeneous(Quick)
	if err != nil {
		t.Fatal(err)
	}
	out := tb.String()
	t.Logf("\n%s", out)
	for _, want := range []string{"line ℓ=1 (E1)", "line ℓ=4 (E4)", "clusters (A1)", "ASeparator"} {
		if !strings.Contains(out, want) {
			t.Errorf("H1 table lacks %q:\n%s", want, out)
		}
	}
	// 3 quick families × 3 spreads.
	if rows := strings.Count(out, "\n") - 3; rows != 9 {
		t.Errorf("H1 has %d rows, want 9:\n%s", rows, out)
	}
}

// The spread-1 rows are the homogeneous baseline: no speedband modifier, so
// the instance has no profiles and min speed exactly 1.
func TestH1BaselineIsHomogeneous(t *testing.T) {
	tb, err := NewRunner().H1Heterogeneous(Quick)
	if err != nil {
		t.Fatal(err)
	}
	s := tb.String()
	if strings.Contains(s, "speedband") {
		// The family label column must stay the plain family name; modifier
		// suffixes belong to instance names, not the table.
		t.Errorf("H1 table leaks modifier suffixes:\n%s", s)
	}
}

// H1 is deterministic at any worker count, like every sweep in the engine.
func TestH1ParallelMatchesSerial(t *testing.T) {
	assertTableIdentical(t, "H1Heterogeneous", func(r *Runner) (*report.Table, error) {
		return r.H1Heterogeneous(Quick)
	})
}
