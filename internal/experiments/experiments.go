// Package experiments regenerates every table and figure of the paper's
// evaluation as result tables: the Table 1 complexity rows (upper and lower
// bounds), the Theorem 6 construction, and the lemma-level building-block
// measurements behind Figures 1–5. Each experiment is a method on Runner
// returning a report.Table; trials fan out over the runner's worker pool
// with deterministic per-trial RNG streams, so tables are bit-identical at
// any worker count. cmd/dftp-bench renders them all, and bench_test.go wraps
// each one in a testing.B benchmark.
//
// The paper reports asymptotic bounds rather than absolute numbers, so each
// experiment reports the measured quantity next to the paper's model term
// and their ratio; a flat ratio column (and a log-log growth exponent close
// to the model's) is the reproduction criterion recorded in EXPERIMENTS.md.
package experiments

import (
	"context"
	"fmt"
	"math"

	"freezetag/internal/adversary"
	"freezetag/internal/dftp"
	"freezetag/internal/diskgraph"
	"freezetag/internal/geom"
	"freezetag/internal/instance"
	"freezetag/internal/metrics"
	"freezetag/internal/report"
)

// Scale selects experiment sizes: Quick for unit tests / CI, Full for the
// benchmark harness.
type Scale int

// Scales.
const (
	Quick Scale = iota + 1
	Full
)

// lg2 is a guarded log2 used in model terms.
func lg2(x float64) float64 {
	if x < 2 {
		x = 2
	}
	return math.Log2(x)
}

// solveOn runs alg on the instance and returns (makespan, maxEnergy).
func solveOn(alg dftp.Algorithm, in *instance.Instance, budget float64) (float64, float64, error) {
	return solveOnIn(nil, alg, in, budget)
}

// solveOnIn is solveOn under metric m (nil defaults to ℓ2): the tuple is
// derived and the simulation run in m.
func solveOnIn(m geom.Metric, alg dftp.Algorithm, in *instance.Instance, budget float64) (float64, float64, error) {
	tup := dftp.TupleForIn(m, in)
	res, rep, err := dftp.SolveIn(context.Background(), m, alg, in, tup, budget, nil)
	if err != nil {
		return 0, 0, fmt.Errorf("%s on %s: %w", alg.Name(), in.Name, err)
	}
	if !res.AllAwake {
		return 0, 0, fmt.Errorf("%s on %s: incomplete wake-up", alg.Name(), in.Name)
	}
	if len(rep.Misses) > 0 {
		return 0, 0, fmt.Errorf("%s on %s: schedule miss: %s", alg.Name(), in.Name, rep.Misses[0])
	}
	return res.Makespan, res.MaxEnergy, nil
}

// E1RhoSweep is Table 1 row 1 (ASeparator) swept in ρ at fixed ℓ: makespan
// against the model ρ + ℓ²log₂(ρ/ℓ), plus the growth exponent in ρ
// (expected ≈ 1 since the ρ term dominates this family).
func (r *Runner) E1RhoSweep(scale Scale) (*report.Table, error) {
	ns := []int{16, 32, 64}
	if scale == Full {
		ns = []int{16, 32, 64, 128, 192}
	}
	t := report.NewTable("E1a — ASeparator makespan vs ρ (ℓ=1, line family)",
		"rho", "ell", "n", "makespan", "model ρ+ℓ²lg(ρ/ℓ)", "ratio")
	type point struct {
		row     Row
		rho, mk float64
	}
	points, err := Map(r, ns, func(_ *Trial, n int) (point, error) {
		in := instance.Line(n, 1)
		mk, _, err := solveOn(dftp.ASeparator{}, in, 0)
		if err != nil {
			return point{}, err
		}
		rho := float64(n)
		model := rho + lg2(rho)
		return point{Row{rho, 1.0, n, mk, model, mk / model}, rho, mk}, nil
	})
	if err != nil {
		return nil, err
	}
	var xs, ys []float64
	for _, p := range points {
		t.AddRow(p.row...)
		xs = append(xs, p.rho)
		ys = append(ys, p.mk)
	}
	t.AddRow("growth exponent in rho", "", "", metrics.GrowthExponent(xs, ys), "model: 1.0", "")
	return t, nil
}

// E1EllSweep is Table 1 row 1 swept in ℓ at fixed ρ.
func (r *Runner) E1EllSweep(scale Scale) (*report.Table, error) {
	rho := 48.0
	ells := []float64{1, 2, 4}
	if scale == Full {
		ells = []float64{1, 2, 3, 4, 6}
	}
	t := report.NewTable("E1b — ASeparator makespan vs ℓ (ρ=48, line family)",
		"rho", "ell", "n", "makespan", "model ρ+ℓ²lg(ρ/ℓ)", "ratio")
	err := Sweep(r, t, ells, func(_ *Trial, ell float64) (Row, error) {
		n := int(rho / ell)
		in := instance.Line(n, ell)
		mk, _, err := solveOn(dftp.ASeparator{}, in, 0)
		if err != nil {
			return nil, err
		}
		model := rho + ell*ell*lg2(rho/ell)
		return Row{rho, ell, n, mk, model, mk / model}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E2EnergyThreshold is Table 1 row 2 (Theorem 3): feasibility of the
// single-robot adversarial discovery around the budget threshold — the
// paper's π(ℓ²−1)/2 under ℓ2, generalized per metric to A·(ℓ²−1)/2 with A
// the metric's unit-ball area (2 for ℓ1, 4 for ℓ∞). The metric is a sweep
// axis: the ℓ1 ball is smaller and its spiral pitch finer, the ℓ∞ ball
// larger and its sweep coarser, so the absolute budget at which discovery
// flips differs per norm while the threshold-relative flip stays put.
func (r *Runner) E2EnergyThreshold(scale Scale) (*report.Table, error) {
	ell := 6.0
	mults := []float64{0.25, 0.5, 1, 4, 12}
	if scale == Full {
		mults = []float64{0.1, 0.25, 0.5, 0.75, 1, 2, 4, 8, 12, 16}
	}
	type cfg struct {
		metric geom.Metric
		mult   float64
	}
	var cfgs []cfg
	for _, m := range []geom.Metric{geom.L1, geom.L2, geom.LInf} {
		for _, mu := range mults {
			cfgs = append(cfgs, cfg{metric: m, mult: mu})
		}
	}
	t := report.NewTable("E2 — Theorem 3 energy threshold A·(ℓ²−1)/2 (ℓ=6, adversarial single robot, per metric)",
		"metric", "ball area", "threshold", "budget/threshold", "budget", "found", "energy spent")
	err := Sweep(r, t, cfgs, func(_ *Trial, c cfg) (Row, error) {
		area := geom.UnitBallArea(c.metric)
		threshold := area * (ell*ell - 1) / 2
		res := adversary.Theorem3In(c.metric, ell, c.mult*threshold)
		return Row{c.metric.Name(), area, res.Threshold, c.mult, res.Budget,
			fmt.Sprintf("%v", res.Found), res.Energy}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E3AGrid is Table 1 row 3: AGrid makespan against ℓ·ξℓ and max per-robot
// energy against ℓ² on line instances (where ξℓ = ρ* = n·ℓ).
func (r *Runner) E3AGrid(scale Scale) (*report.Table, error) {
	type cfg struct {
		n   int
		ell float64
	}
	cfgs := []cfg{{16, 1}, {32, 1}, {16, 2}}
	if scale == Full {
		cfgs = []cfg{{16, 1}, {32, 1}, {64, 1}, {16, 2}, {32, 2}, {16, 3}}
	}
	t := report.NewTable("E3 — AGrid (line family; ξℓ = nℓ)",
		"ell", "xi", "makespan", "model ℓ·ξ", "ratio", "maxEnergy", "energy/ℓ²")
	err := Sweep(r, t, cfgs, func(_ *Trial, c cfg) (Row, error) {
		in := instance.Line(c.n, c.ell)
		mk, en, err := solveOn(dftp.AGrid{}, in, 0)
		if err != nil {
			return nil, err
		}
		xi := float64(c.n) * c.ell
		model := c.ell * xi
		return Row{c.ell, xi, mk, model, mk / model, en, en / (c.ell * c.ell)}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E4AWave is Table 1 row 4: AWave makespan against ξℓ + ℓ²log(ξℓ/ℓ) and max
// energy against ℓ²logℓ. Wave squares have width 8·max(ℓ,4)²·log₂max(ℓ,4) ≥
// 256, so multi-square behaviour needs long instances; Quick scale stays in
// the single-square regime.
func (r *Runner) E4AWave(scale Scale) (*report.Table, error) {
	type cfg struct {
		n   int
		ell float64
	}
	cfgs := []cfg{{30, 4}}
	if scale == Full {
		cfgs = []cfg{{30, 4}, {80, 4}, {150, 4}}
	}
	t := report.NewTable("E4 — AWave (line family; ξℓ = nℓ)",
		"ell", "xi", "makespan", "model ξ+ℓ²lg(ξ/ℓ)", "ratio", "maxEnergy", "energy/ℓ²lgℓ")
	err := Sweep(r, t, cfgs, func(_ *Trial, c cfg) (Row, error) {
		in := instance.Line(c.n, c.ell)
		mk, en, err := solveOn(dftp.AWave{}, in, 0)
		if err != nil {
			return nil, err
		}
		xi := float64(c.n) * c.ell
		lw := math.Max(c.ell, 4)
		model := xi + lw*lw*lg2(xi/lw)
		return Row{c.ell, xi, mk, model, mk / model, en, en / (lw * lw * lg2(lw))}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E5LowerBound is the Table 1 lower-bound column (Theorem 2): ASeparator
// makespan on the replay-hardened disk-grid instances vs the bound
// ρ + ℓ²log(ρ/ℓ).
func (r *Runner) E5LowerBound(scale Scale) (*report.Table, error) {
	rhos := []float64{8, 12}
	if scale == Full {
		rhos = []float64{8, 12, 16, 24}
	}
	ell := 2.0
	t := report.NewTable("E5 — Theorem 2 adversarial lower bound (ASeparator, ℓ=2)",
		"rho", "n", "adversarial makespan", "bound ρ+ℓ²lg(ρ/ℓ)", "ratio")
	err := Sweep(r, t, rhos, func(_ *Trial, rho float64) (Row, error) {
		n := int(rho * rho / (ell * ell))
		out, err := adversary.Theorem2(dftp.ASeparator{}, rho, ell, n, 2)
		if err != nil {
			return nil, err
		}
		bound := rho + ell*ell*lg2(rho/ell)
		return Row{rho, out.Instance.N(), out.Makespan, bound, out.Makespan / bound}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E6Path is the Theorem 6 construction: rectilinear-path instances with
// prescribed ξ. The theorem's proof quantity is the eccentricity of the
// source in the B-disk graph — no budget-B algorithm can beat it, because
// a robot with budget B can never bridge two horizontal runs (they are B+1
// apart). The table shows that this floor tracks ξ (the Ω(ξ) part of the
// bound) while an *unconstrained* algorithm (ASeparator) undercuts it by
// cutting across the plane — exactly the separation the theorem formalizes.
func (r *Runner) E6Path(scale Scale) (*report.Table, error) {
	xis := []float64{50, 100}
	if scale == Full {
		xis = []float64{50, 100, 150, 200}
	}
	t := report.NewTable("E6 — Theorem 6 path construction (ℓ=2, ρ=40, B=3)",
		"xi (spec)", "xi (realized)", "n",
		"B-disk ecc (floor for budget-B algs)", "floor/ξ",
		"ASeparator makespan (unbounded)")
	err := Sweep(r, t, xis, func(_ *Trial, xi float64) (Row, error) {
		spec := instance.PathSpec{Ell: 2, Rho: 40, B: 3, Xi: xi}
		in, err := instance.BuildPath(spec)
		if err != nil {
			return nil, err
		}
		p := in.Params()
		floor := diskgraph.XiAt(in.Source, in.Points, spec.B)
		mk, _, err := solveOn(dftp.ASeparator{}, in, 0)
		if err != nil {
			return nil, err
		}
		return Row{xi, p.Xi, in.N(), floor, floor / p.Xi, mk}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// E7Crossover locates the regime where AWave's makespan rate beats AGrid's
// (the "who wins" content of Table 1). Both algorithms advance one grid cell
// per synchronized round, so their long-line makespan per unit of ξ is
// 9·slotWidth/cellWidth. AGrid's rate is measured on line instances; AWave's
// is measured at ℓ ≤ 4 and computed from its calibrated schedule constants
// for larger ℓ (its cell width 8ℓ²log₂ℓ makes direct long-line simulation at
// ℓ ≥ 8 prohibitively large; the schedule constants are the same ones every
// measured AWave run above obeys).
//
// The metric is a sweep axis: under ℓ1 every slot-work bound inflates by the
// stretch √2 while a line instance's travel distances do not, so the two
// rates shift by different amounts and the ℓ at which AWave overtakes AGrid
// moves between norms — the crossover is metric-dependent, not a fixed
// constant of the algorithms.
func (r *Runner) E7Crossover(scale Scale) (*report.Table, error) {
	ells := []float64{1, 2, 4, 8, 16}
	if scale == Quick {
		ells = []float64{1, 2, 8}
	}
	type cfg struct {
		metric geom.Metric
		ell    float64
	}
	var cfgs []cfg
	for _, m := range []geom.Metric{geom.L1, geom.L2, geom.LInf} {
		for _, ell := range ells {
			cfgs = append(cfgs, cfg{metric: m, ell: ell})
		}
	}
	t := report.NewTable("E7 — AGrid vs AWave makespan rate per unit ξ (long-line regime, per metric)",
		"metric", "ell", "AGrid rate (measured)", "AWave rate", "AWave source", "winner")
	err := Sweep(r, t, cfgs, func(_ *Trial, c cfg) (Row, error) {
		// AGrid: measured on a line long enough for several rounds. Line
		// distances agree under every ℓp (the points are collinear), so the
		// per-metric differences are pure schedule-bound effects.
		n := int(math.Max(24, 32/c.ell))
		if scale == Full {
			n = int(math.Max(32, 64/c.ell))
		}
		in := instance.Line(n, c.ell)
		mk, _, err := solveOnIn(c.metric, dftp.AGrid{}, in, 0)
		if err != nil {
			return nil, err
		}
		gridRate := mk / (float64(n) * c.ell)

		// AWave: rate = 9·slotWidth / cellWidth from the same calibrated
		// schedule constants the simulator enforces (deadline-miss checked).
		waveRate, src := awaveRate(c.metric, c.ell, scale)
		winner := "AGrid"
		if waveRate < gridRate {
			winner = "AWave"
		}
		return Row{c.metric.Name(), c.ell, gridRate, waveRate, src, winner}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// awaveRate returns AWave's per-unit-ξ makespan rate under metric m: one
// 9-slot round advances one cell of width R, so the steady-state rate is
// 9·slotWidth·Stretch/R (the slot bounds are ℓ2-calibrated and inflate by
// the metric stretch, exactly as AWave.Install inflates them). At ℓ = 4 on
// Full scale the rate is validated by direct measurement across two
// consecutive wave rounds (lines reaching 1.2R and 2.2R, so the difference
// spans exactly one steady-state round); other ℓ use the same schedule
// constants the simulator enforces on every run.
func awaveRate(m geom.Metric, ell float64, scale Scale) (float64, string) {
	if scale == Full && ell == 4 {
		r := dftp.AWaveCellWidth(ell)
		n1 := int(r*1.2/ell) + 1
		n2 := int(r*2.2/ell) + 1
		in1 := instance.Line(n1, ell)
		in2 := instance.Line(n2, ell)
		mk1, _, err1 := solveOnIn(m, dftp.AWave{}, in1, 0)
		mk2, _, err2 := solveOnIn(m, dftp.AWave{}, in2, 0)
		if err1 == nil && err2 == nil && mk2 > mk1 {
			return (mk2 - mk1) / (float64(n2-n1) * ell), "measured"
		}
	}
	r := dftp.AWaveCellWidth(ell)
	slot := dftp.AWaveSlotWidth(ell)
	return 9 * slot * geom.MetricOrL2(m).Stretch() / r, "schedule"
}
