package experiments

import (
	"fmt"

	"freezetag/internal/dftp"
	"freezetag/internal/instance"
	"freezetag/internal/portfolio"
	"freezetag/internal/report"
)

// H1Heterogeneous races the fixed algorithms across speed-spread ratios on
// the P1/M1 instance families (E1 sparse lines, E4 fat lines, A1-style
// clustered chains). A spread of s puts every sleeping robot's speed in
// [1/s, 1] via the speedband family modifier (the profile stream is salted
// off the family seed, so the point set is byte-identical to the unmodified
// family at every spread); s = 1 is the homogeneous baseline. Growing s is
// where the makespan guarantees degrade: the slot-work bounds every
// schedule obeys scale by 1/min-speed, while actual travel degrades only on
// the legs the slow robots carry — the per-algorithm columns show which
// schedules pay the spread in full and which hide it, and the winner column
// where the portfolio's choice flips. Every trial is one min-makespan race,
// so the columns are the algorithms' own deterministic makespans (the race
// never cancels), bit-identical at any worker count.
func (r *Runner) H1Heterogeneous(scale Scale) (*report.Table, error) {
	entrants := []dftp.Algorithm{dftp.ASeparator{}, dftp.AGrid{}, dftp.AWave{}}
	spreads := []float64{1, 2, 4}
	if scale == Full {
		spreads = []float64{1, 1.5, 2, 4, 8}
	}
	type fam struct {
		label  string
		family string
		n      int
		param  float64
	}
	fams := []fam{
		{"line ℓ=1 (E1)", "line", 32, 1},
		{"line ℓ=4 (E4)", "line", 24, 4},
		{"clusters (A1)", "chain", 16, 1},
	}
	if scale == Full {
		fams = append(fams, fam{"line ℓ=1 long (E1)", "line", 96, 1})
	}
	type cfg struct {
		fam    fam
		spread float64
	}
	var cfgs []cfg
	for _, f := range fams {
		for _, s := range spreads {
			cfgs = append(cfgs, cfg{fam: f, spread: s})
		}
	}
	t := report.NewTable("H1 — heterogeneous speed spread: fixed algorithms raced at speeds in [1/s, 1]",
		"family", "spread s", "n", "min speed", "ASeparator", "AGrid", "AWave", "winner")
	err := Sweep(r, t, cfgs, func(_ *Trial, c cfg) (Row, error) {
		name := c.fam.family
		if c.spread != 1 {
			name = fmt.Sprintf("%s+speedband:%g", c.fam.family, 1/c.spread)
		}
		in, err := instance.Family(name, c.fam.n, c.fam.param, r.seed)
		if err != nil {
			return nil, err
		}
		tup := dftp.TupleFor(in)
		pf := portfolio.Portfolio{Algorithms: entrants, Objective: portfolio.MinMakespan{}, Seed: r.seed}
		res, err := portfolio.Race(pf, in, tup, 0, portfolio.Options{})
		if err != nil {
			return nil, fmt.Errorf("race on %s at spread %g: %w", in.Name, c.spread, err)
		}
		for _, rr := range res.Racers {
			if !rr.AllAwake {
				return nil, fmt.Errorf("%s on %s at spread %g: incomplete wake-up",
					rr.Algorithm, in.Name, c.spread)
			}
		}
		return Row{c.fam.label, c.spread, in.N(), in.MinSpeed(),
			res.Racers[0].Makespan, res.Racers[1].Makespan, res.Racers[2].Makespan,
			res.Racers[res.Winner].Algorithm}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}
