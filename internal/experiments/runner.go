package experiments

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"freezetag/internal/report"
	"freezetag/internal/rngstream"
)

// Runner fans experiment trials out over a fixed-size worker pool. Every
// experiment generator in this package is a method on Runner; the pool size
// only changes wall-clock time, never results: each trial gets a private RNG
// stream derived from the sweep seed and its trial index (see TrialSeed),
// and results are aggregated in trial order, so parallel output is
// bit-identical to serial output.
type Runner struct {
	workers int
	seed    int64
}

// DefaultSeed is the sweep seed used when WithSeed is not given. It is part
// of the reproduction contract: published tables are generated with it.
const DefaultSeed int64 = 0x5EEDF4EE

// Option configures a Runner.
type Option func(*Runner)

// WithWorkers sets the worker-pool size. Values below 1 are clamped to 1
// (serial execution). The default is runtime.GOMAXPROCS(0).
func WithWorkers(n int) Option {
	return func(r *Runner) {
		if n < 1 {
			n = 1
		}
		r.workers = n
	}
}

// WithSeed sets the sweep seed from which every per-trial RNG stream is
// derived.
func WithSeed(seed int64) Option {
	return func(r *Runner) { r.seed = seed }
}

// NewRunner builds a Runner with GOMAXPROCS workers and DefaultSeed, then
// applies opts.
func NewRunner(opts ...Option) *Runner {
	r := &Runner{workers: runtime.GOMAXPROCS(0), seed: DefaultSeed}
	if r.workers < 1 {
		r.workers = 1
	}
	for _, o := range opts {
		o(r)
	}
	return r
}

// Workers reports the worker-pool size.
func (r *Runner) Workers() int { return r.workers }

// Seed reports the sweep seed.
func (r *Runner) Seed() int64 { return r.seed }

// Trial is one unit of work in a sweep: its position in the parameter grid
// and its private deterministic RNG stream. Trials must draw randomness only
// from RNG (never a shared rand.Rand) so that results do not depend on the
// execution schedule.
type Trial struct {
	// Index is the trial's position in the sweep's parameter grid.
	Index int
	// RNG is the trial's private stream, seeded with TrialSeed(seed, Index).
	RNG *rand.Rand
}

// Row is one result row of a sweep, in report.Table cell order.
type Row []interface{}

// TrialSeed derives the RNG seed of trial i from the sweep seed with a
// splitmix64 finalizer (see internal/rngstream, the shared scheme). Streams
// are decided by (seed, i) alone — independent of worker count and execution
// order — which is what makes parallel sweeps bit-identical to serial ones.
func TrialSeed(seed int64, i int) int64 { return rngstream.TrialSeed(seed, i) }

func (r *Runner) trial(i int) *Trial {
	return &Trial{Index: i, RNG: rand.New(rand.NewSource(TrialSeed(r.seed, i)))}
}

// Map runs fn over params on r's worker pool and returns the results in
// parameter order. If any trials fail, the error of the lowest-indexed
// failing trial is returned (again independent of scheduling); the remaining
// trials still run to completion.
func Map[P, R any](r *Runner, params []P, fn func(*Trial, P) (R, error)) ([]R, error) {
	n := len(params)
	out := make([]R, n)
	if n == 0 {
		return out, nil
	}
	errs := make([]error, n)
	workers := r.workers
	if workers > n {
		workers = n
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i], errs[i] = fn(r.trial(i), params[i])
			}
		}()
	}
	for i := 0; i < n; i++ {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("trial %d: %w", i, err)
		}
	}
	return out, nil
}

// Sweep is the one-row-per-trial convenience over Map: it runs fn over
// params and appends each trial's row to tab in parameter order.
func Sweep[P any](r *Runner, tab *report.Table, params []P, fn func(*Trial, P) (Row, error)) error {
	rows, err := Map(r, params, fn)
	if err != nil {
		return err
	}
	for _, row := range rows {
		tab.AddRow(row...)
	}
	return nil
}
