package experiments

import (
	"strings"
	"testing"

	"freezetag/internal/report"
)

// The M1 sweep must run under the engine, produce one row per
// (family, metric) pair, and show per-metric results — ℓ*/ρ* change with the
// metric on the cluster family, makespans change on every family.
func TestM1Metrics(t *testing.T) {
	tb, err := NewRunner().M1Metrics(Quick)
	if err != nil {
		t.Fatal(err)
	}
	out := tb.String()
	for _, want := range []string{"l1", "l2", "linf", "ASeparator"} {
		if !strings.Contains(out, want) {
			t.Errorf("M1 table lacks %q:\n%s", want, out)
		}
	}
	// 3 quick families × 3 metrics.
	if rows := strings.Count(out, "\n") - 3; rows != 9 {
		t.Errorf("M1 has %d rows, want 9:\n%s", rows, out)
	}
}

// M1 is deterministic at any worker count, like every sweep in the engine.
func TestM1ParallelMatchesSerial(t *testing.T) {
	assertTableIdentical(t, "M1Metrics", func(r *Runner) (*report.Table, error) {
		return r.M1Metrics(Quick)
	})
}
