package experiments

import (
	"fmt"

	"freezetag/internal/dftp"
	"freezetag/internal/geom"
	"freezetag/internal/instance"
	"freezetag/internal/portfolio"
	"freezetag/internal/report"
)

// M1Metrics races the fixed algorithms across the built-in metrics on the
// P1 instance families (E1 sparse lines, E4 fat lines, A1-style clustered
// chains). The metric is a genuine experiment axis: the same point set has
// different (ℓ*, ρ*) per metric — ℓ1 inflates distances (up to √2×) and
// tightens the look ball, ℓ∞ deflates them and widens it — so makespans,
// energies, and even the winning algorithm can change between norms on one
// instance. Every trial is one min-makespan race, so the per-algorithm
// columns are the fixed algorithms' own deterministic makespans under that
// metric (the race never cancels), and the winner column is the argmin.
func (r *Runner) M1Metrics(scale Scale) (*report.Table, error) {
	entrants := []dftp.Algorithm{dftp.ASeparator{}, dftp.AGrid{}, dftp.AWave{}}
	metrics := []geom.Metric{geom.L1, geom.L2, geom.LInf}
	type cfg struct {
		family string
		metric geom.Metric
		build  func(*Trial) *instance.Instance
	}
	type fam struct {
		name  string
		build func(*Trial) *instance.Instance
	}
	fams := []fam{
		{"line ℓ=1 (E1)", func(*Trial) *instance.Instance { return instance.Line(32, 1) }},
		{"line ℓ=4 (E4)", func(*Trial) *instance.Instance { return instance.Line(24, 4) }},
		{"clusters (A1)", func(tr *Trial) *instance.Instance { return instance.ClusterChain(tr.RNG, 3, 8, 5, 1) }},
	}
	if scale == Full {
		fams = append(fams,
			fam{"line ℓ=1 long (E1)", func(*Trial) *instance.Instance { return instance.Line(96, 1) }},
			fam{"clusters wide (A1)", func(tr *Trial) *instance.Instance { return instance.ClusterChain(tr.RNG, 5, 8, 8, 1) }},
		)
	}
	var cfgs []cfg
	for _, f := range fams {
		for _, m := range metrics {
			cfgs = append(cfgs, cfg{family: f.name, metric: m, build: f.build})
		}
	}
	t := report.NewTable("M1 — metric sweep: fixed algorithms raced under ℓ1/ℓ2/ℓ∞",
		"family", "metric", "n", "ℓ*", "ρ*", "ASeparator", "AGrid", "AWave", "winner")
	err := Sweep(r, t, cfgs, func(tr *Trial, c cfg) (Row, error) {
		in := c.build(tr)
		tup := dftp.TupleForIn(c.metric, in)
		pf := portfolio.Portfolio{Algorithms: entrants, Objective: portfolio.MinMakespan{}, Seed: r.seed}
		res, err := portfolio.Race(pf, in, tup, 0, portfolio.Options{Metric: c.metric})
		if err != nil {
			return nil, fmt.Errorf("race on %s under %s: %w", in.Name, c.metric.Name(), err)
		}
		for _, rr := range res.Racers {
			if !rr.AllAwake {
				return nil, fmt.Errorf("%s on %s under %s: incomplete wake-up",
					rr.Algorithm, in.Name, c.metric.Name())
			}
		}
		p := in.ParamsIn(c.metric)
		return Row{c.family, c.metric.Name(), in.N(), p.Ell, p.Rho,
			res.Racers[0].Makespan, res.Racers[1].Makespan, res.Racers[2].Makespan,
			res.Racers[res.Winner].Algorithm}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}
