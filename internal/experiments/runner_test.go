package experiments

import (
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"freezetag/internal/report"
)

// TestTrialSeedStability pins the seed derivation: per-trial seeds depend on
// (sweep seed, index) only, differ across indices, and differ across sweep
// seeds. Changing TrialSeed changes every published table, so it must not
// drift silently.
func TestTrialSeedStability(t *testing.T) {
	seen := map[int64]int{}
	for i := 0; i < 1000; i++ {
		s := TrialSeed(DefaultSeed, i)
		if s2 := TrialSeed(DefaultSeed, i); s2 != s {
			t.Fatalf("TrialSeed not deterministic at %d: %d vs %d", i, s, s2)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision: trials %d and %d both got %d", prev, i, s)
		}
		seen[s] = i
	}
	if TrialSeed(1, 0) == TrialSeed(2, 0) {
		t.Error("different sweep seeds produced the same trial seed")
	}
}

// TestMapOrderAndStreams checks the two runner invariants at once: results
// come back in parameter order, and each trial's RNG stream is decided by
// its index alone, regardless of worker count.
func TestMapOrderAndStreams(t *testing.T) {
	params := make([]int, 64)
	for i := range params {
		params[i] = i
	}
	run := func(workers int) []float64 {
		r := NewRunner(WithWorkers(workers))
		out, err := Map(r, params, func(tr *Trial, p int) (float64, error) {
			if tr.Index != p {
				t.Errorf("trial index %d delivered param %d", tr.Index, p)
			}
			return float64(p) + tr.RNG.Float64(), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	serial := run(1)
	for _, workers := range []int{2, 4, 8} {
		par := run(workers)
		for i := range serial {
			if par[i] != serial[i] {
				t.Fatalf("workers=%d: trial %d diverged: %v vs %v",
					workers, i, par[i], serial[i])
			}
		}
	}
	for i, v := range serial {
		if int(v) != i {
			t.Fatalf("result %d out of order: %v", i, v)
		}
	}
}

// TestMapErrorIsLowestIndex checks that when several trials fail, the
// reported error is the lowest-indexed one — deterministic regardless of
// which worker hit its error first.
func TestMapErrorIsLowestIndex(t *testing.T) {
	boom := errors.New("boom")
	r := NewRunner(WithWorkers(4))
	_, err := Map(r, []int{0, 1, 2, 3, 4, 5}, func(_ *Trial, p int) (int, error) {
		if p == 2 || p == 5 {
			return 0, fmt.Errorf("param %d: %w", p, boom)
		}
		return p, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if !errors.Is(err, boom) || !strings.Contains(err.Error(), "trial 2") {
		t.Fatalf("want lowest-indexed failure (trial 2), got: %v", err)
	}
}

func TestMapEmptyAndClamp(t *testing.T) {
	r := NewRunner(WithWorkers(-3))
	if r.Workers() != 1 {
		t.Errorf("workers not clamped: %d", r.Workers())
	}
	out, err := Map(r, nil, func(_ *Trial, p int) (int, error) { return p, nil })
	if err != nil || len(out) != 0 {
		t.Errorf("empty sweep: out=%v err=%v", out, err)
	}
}

func TestSweepAppendsInOrder(t *testing.T) {
	tab := report.NewTable("t", "i")
	r := NewRunner(WithWorkers(8))
	err := Sweep(r, tab, []int{10, 20, 30, 40}, func(_ *Trial, p int) (Row, error) {
		return Row{p}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	want := "10\n20\n30\n40"
	if got := tab.String(); !strings.Contains(got, want) {
		t.Errorf("rows out of order:\n%s", got)
	}
}

// parallelWorkers picks a worker count that actually exercises concurrent
// trials even on single-core CI machines.
func parallelWorkers() int {
	if n := runtime.GOMAXPROCS(0); n > 1 {
		return n
	}
	return 4
}

// assertTableIdentical runs one experiment generator serially and in
// parallel and requires byte-identical renders — the engine's headline
// guarantee.
func assertTableIdentical(t *testing.T, name string,
	gen func(*Runner) (*report.Table, error)) {
	t.Helper()
	serialTab, err := gen(NewRunner(WithWorkers(1)))
	if err != nil {
		t.Fatalf("%s serial: %v", name, err)
	}
	parTab, err := gen(NewRunner(WithWorkers(parallelWorkers())))
	if err != nil {
		t.Fatalf("%s parallel: %v", name, err)
	}
	if s, p := serialTab.String(), parTab.String(); s != p {
		t.Errorf("%s: parallel table differs from serial.\nserial:\n%s\nparallel:\n%s",
			name, s, p)
	}
}

// TestParallelMatchesSerial is the integration test of the determinism
// contract on real experiments: a deterministic sweep (E1a), an RNG-heavy
// sweep (A1), and the slow multi-config sweep (E4).
func TestParallelMatchesSerial(t *testing.T) {
	assertTableIdentical(t, "E1RhoSweep", func(r *Runner) (*report.Table, error) {
		return r.E1RhoSweep(Quick)
	})
	assertTableIdentical(t, "A1TreeQuality", func(r *Runner) (*report.Table, error) {
		return r.A1TreeQuality(Quick)
	})
	if testing.Short() {
		t.Skip("skipping E4 (slow) in -short mode")
	}
	assertTableIdentical(t, "E4AWave", func(r *Runner) (*report.Table, error) {
		return r.E4AWave(Quick)
	})
}

// TestSeedChangesRNGTables checks WithSeed actually reaches the trial
// streams: an RNG-driven table must change under a different sweep seed.
func TestSeedChangesRNGTables(t *testing.T) {
	a, err := NewRunner(WithSeed(1)).A1TreeQuality(Quick)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRunner(WithSeed(2)).A1TreeQuality(Quick)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() == b.String() {
		t.Error("different sweep seeds produced identical RNG-driven tables")
	}
}
