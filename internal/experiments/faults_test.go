package experiments

import (
	"encoding/csv"
	"strconv"
	"strings"
	"testing"

	"freezetag/internal/report"
)

// f8Rows runs the quick F8 sweep once and returns its data rows keyed by
// column name.
func f8Rows(t *testing.T) []map[string]string {
	t.Helper()
	tb, err := NewRunner().F8FaultResilience(Quick)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", tb.String())
	var buf strings.Builder
	if err := tb.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	recs, err := csv.NewReader(strings.NewReader(buf.String())).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) < 2 {
		t.Fatalf("F8 produced no rows")
	}
	header := recs[0]
	var rows []map[string]string
	for _, rec := range recs[1:] {
		row := map[string]string{}
		for i, h := range header {
			row[h] = rec[i]
		}
		rows = append(rows, row)
	}
	return rows
}

func cellFloat(t *testing.T, row map[string]string, col string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(row[col], 64)
	if err != nil {
		t.Fatalf("column %q = %q: %v", col, row[col], err)
	}
	return v
}

// The F-series acceptance criterion: under crash-stop faults every
// algorithm with the repair layer completes all wake-ups (completion rate
// 1.0) at a bounded makespan premium, and without repair the completion
// rate drops — the table demonstrates the repair layer earns its cost.
// Wake-dup is the control: at-least-once waking absorbs duplicates, so both
// columns stay at 1.0.
func TestF8FaultResilience(t *testing.T) {
	rows := f8Rows(t)
	if len(rows) != 20 { // 5 kinds x 2 rates x 2 algorithms at quick scale
		t.Fatalf("F8 has %d rows, want 20", len(rows))
	}
	droppedWithoutRepair := false
	for _, row := range rows {
		kind := row["fault kind"]
		repComp := cellFloat(t, row, "completion (repair)")
		noComp := cellFloat(t, row, "completion (no repair)")
		switch kind {
		case "crash-stop":
			if repComp != 1 {
				t.Errorf("crash-stop %s f=%s: repaired completion %g, want 1.0",
					row["algorithm"], row["rate f"], repComp)
			}
			inflation := cellFloat(t, row, "inflation ×")
			if inflation <= 0 || inflation > 15 {
				t.Errorf("crash-stop %s f=%s: inflation %g out of (0, 15]",
					row["algorithm"], row["rate f"], inflation)
			}
			if noComp < 1 {
				droppedWithoutRepair = true
			}
		case "wake-dup":
			if repComp != 1 || noComp != 1 {
				t.Errorf("wake-dup %s f=%s: completions %g/%g, duplicates must be harmless",
					row["algorithm"], row["rate f"], repComp, noComp)
			}
		}
	}
	if !droppedWithoutRepair {
		t.Error("no crash-stop row lost completion without repair — the sweep shows no contrast")
	}
}

// F8 is deterministic at any worker count, like every sweep in the engine.
func TestF8ParallelMatchesSerial(t *testing.T) {
	assertTableIdentical(t, "F8FaultResilience", func(r *Runner) (*report.Table, error) {
		return r.F8FaultResilience(Quick)
	})
}
