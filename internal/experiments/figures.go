package experiments

import (
	"fmt"
	"sort"
	"strings"

	"freezetag/internal/dftp"
	"freezetag/internal/diskgraph"
	"freezetag/internal/explore"
	"freezetag/internal/geom"
	"freezetag/internal/instance"
	"freezetag/internal/metrics"
	"freezetag/internal/report"
	"freezetag/internal/sampling"
	"freezetag/internal/sim"
	"freezetag/internal/wakeup"
)

// F1Phases regenerates the content of Figures 1–2: the phase anatomy of one
// ASeparator execution — per recursion depth, the number of reorganization
// barriers (parallel branches) and square widths, plus the wake-up timeline.
// The experiment is a single simulation, so it is inherently serial.
func (r *Runner) F1Phases(scale Scale) (*report.Table, error) {
	n := 48
	if scale == Full {
		n = 96
	}
	t := report.NewTable("F1/F2 — ASeparator phase anatomy (disk-grid ρ=12 ℓ=2)",
		"depth", "square width", "barrier arrivals", "wake quantile t25/t50/t75/t100")
	rows, err := f1Phases(n)
	if err != nil {
		return nil, err
	}
	for _, row := range rows {
		t.AddRow(row...)
	}
	return t, nil
}

func f1Phases(n int) ([]Row, error) {
	in := instance.DiskGridStatic(12, 2, n)
	tup := dftp.TupleFor(in)

	type depthStat struct {
		branches int
		width    float64
	}
	stats := map[int]*depthStat{}
	var wakeTimes []float64
	e := sim.NewEngine(sim.Config{
		Source:   in.Source,
		Sleepers: in.Points,
		Trace: func(ev sim.Event) {
			switch ev.Kind {
			case "wake":
				wakeTimes = append(wakeTimes, ev.T)
			case "barrier":
				// Keys look like reorg/<nonce>/<cx,cy>/<width>/<depth>.
				if !strings.HasPrefix(ev.Extra, "reorg/") {
					return
				}
				parts := strings.Split(ev.Extra, "/")
				var width float64
				var depth int
				fmt.Sscanf(parts[len(parts)-2], "%g", &width)
				fmt.Sscanf(parts[len(parts)-1], "%d", &depth)
				ds := stats[depth]
				if ds == nil {
					ds = &depthStat{width: width}
					stats[depth] = ds
				}
				ds.branches++
			}
		},
	})
	rep := dftp.ASeparator{}.Install(e, tup)
	res, err := e.Run()
	if err != nil {
		return nil, err
	}
	if !res.AllAwake || len(rep.Misses) > 0 {
		return nil, fmt.Errorf("F1: run failed (awake=%v misses=%d)", res.AllAwake, len(rep.Misses))
	}
	depths := make([]int, 0, len(stats))
	for d := range stats {
		depths = append(depths, d)
	}
	sort.Ints(depths)
	sort.Float64s(wakeTimes)
	q := func(f float64) float64 {
		if len(wakeTimes) == 0 {
			return 0
		}
		i := int(f * float64(len(wakeTimes)-1))
		return wakeTimes[i]
	}
	quant := fmt.Sprintf("%.1f/%.1f/%.1f/%.1f", q(0.25), q(0.5), q(0.75), q(1))
	var rows []Row
	for i, d := range depths {
		qcol := ""
		if i == 0 {
			qcol = quant
		}
		rows = append(rows, Row{d, stats[d].width, stats[d].branches, qcol})
	}
	return rows, nil
}

// F4Explore regenerates Figure 4's content: Lemma 1 exploration cost across
// rectangle dimensions and team sizes, with the fitted model
// a·wh/k + b·(w+h) + c.
func (r *Runner) F4Explore(scale Scale) (*report.Table, error) {
	dims := [][2]float64{{8, 8}, {16, 8}}
	ks := []int{1, 2, 4}
	if scale == Full {
		dims = [][2]float64{{8, 8}, {16, 8}, {16, 16}, {32, 16}}
		ks = []int{1, 2, 4, 8}
	}
	type cfg struct {
		w, h float64
		k    int
	}
	var cfgs []cfg
	for _, d := range dims {
		for _, k := range ks {
			cfgs = append(cfgs, cfg{d[0], d[1], k})
		}
	}
	t := report.NewTable("F4 — Explore cost (Lemma 1: O(wh/k + w + h))",
		"w", "h", "k", "duration", "model wh/k+w+h", "ratio")
	type point struct {
		row  Row
		feat []float64
		y    float64
	}
	points, err := Map(r, cfgs, func(_ *Trial, c cfg) (point, error) {
		dur, err := exploreDuration(c.w, c.h, c.k)
		if err != nil {
			return point{}, err
		}
		model := c.w*c.h/float64(c.k) + c.w + c.h
		return point{
			row:  Row{c.w, c.h, c.k, dur, model, dur / model},
			feat: []float64{c.w * c.h / float64(c.k), c.w + c.h, 1},
			y:    dur,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	var feats [][]float64
	var ys []float64
	for _, p := range points {
		t.AddRow(p.row...)
		feats = append(feats, p.feat)
		ys = append(ys, p.y)
	}
	if coef, r2, err := metrics.FitLinear(feats, ys); err == nil {
		t.AddRow("fit", "", "", fmt.Sprintf("a=%.2f b=%.2f c=%.2f", coef[0], coef[1], coef[2]),
			fmt.Sprintf("R²=%.4f", r2), "")
	}
	return t, nil
}

// exploreDuration measures one team exploration of a w×h rectangle with k
// robots (k−1 teammates sleeping at the source get woken for free first).
func exploreDuration(w, h float64, k int) (float64, error) {
	var sleepers []geom.Point
	for i := 0; i < k-1; i++ {
		sleepers = append(sleepers, geom.Origin)
	}
	// One probe robot far inside so the sweep has something to find.
	sleepers = append(sleepers, geom.Pt(w*0.7, h*0.6))
	e := sim.NewEngine(sim.Config{Source: geom.Origin, Sleepers: sleepers})
	var dur float64
	var rerr error
	e.Spawn(sim.SourceID, func(p *sim.Proc) {
		var members []int
		for i := 1; i < k; i++ {
			p.Wake(i, nil)
			members = append(members, i)
		}
		start := p.Now()
		res, err := explore.Rect(p, members, geom.RectWH(geom.Origin, w, h), geom.Pt(w/2, h/2))
		if err != nil {
			rerr = err
			return
		}
		if len(res.Asleep) == 0 {
			rerr = fmt.Errorf("probe robot not found in %vx%v sweep", w, h)
			return
		}
		dur = p.Now() - start
	})
	if _, err := e.Run(); err != nil {
		return 0, err
	}
	return dur, rerr
}

// F5Construction regenerates Figure 5's content: the Theorem 2 layout
// statistics — |C| against the Lemma 12 bound 1+ρ²/ℓ², and the Lemma 13
// ℓ-connectivity of the disk-grid instances.
func (r *Runner) F5Construction(scale Scale) (*report.Table, error) {
	type cfg struct{ rho, ell float64 }
	cfgs := []cfg{{8, 2}, {16, 2}}
	if scale == Full {
		cfgs = []cfg{{8, 2}, {16, 2}, {32, 4}, {48, 4}}
	}
	t := report.NewTable("F5 — Theorem 2 construction (Lemmas 12–13)",
		"rho", "ell", "|C|", "bound 1+ρ²/ℓ²", "ℓ* of disk-grid", "ℓ-connected")
	err := Sweep(r, t, cfgs, func(_ *Trial, c cfg) (Row, error) {
		centers := instance.CentersC(c.rho, c.ell)
		in := instance.DiskGridStatic(c.rho, c.ell, 1<<20)
		p := in.Params()
		return Row{c.rho, c.ell, len(centers), 1 + c.rho*c.rho/(c.ell*c.ell),
			p.Ell, fmt.Sprintf("%v", p.Ell <= c.ell+1e-9)}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// L2WakeTree measures Lemma 2's constant: the worst makespan/width ratio of
// the centralized wake-up tree over random squares (paper constant 5 with
// the [BCGH24] tree; ours is the ≈10.1 longest-side-bisection constant).
func (r *Runner) L2WakeTree(scale Scale) (*report.Table, error) {
	widths := []float64{4, 16}
	trials := 20
	if scale == Full {
		widths = []float64{4, 16, 64, 256}
		trials = 60
	}
	t := report.NewTable("L2 — wake-up tree makespan/width (paper: ≤5R; ours: ≤~10.1R)",
		"width", "trials", "mean ratio", "max ratio")
	err := Sweep(r, t, widths, func(tr *Trial, w float64) (Row, error) {
		var ratios []float64
		for trial := 0; trial < trials; trial++ {
			n := 10 + tr.RNG.Intn(100)
			ts := make([]wakeup.Target, n)
			for i := range ts {
				ts[i] = wakeup.Target{ID: i + 1,
					Pos: geom.Pt((tr.RNG.Float64()-0.5)*w, (tr.RNG.Float64()-0.5)*w)}
			}
			m := wakeup.Makespan(geom.Origin, wakeup.BuildTree(geom.Origin, ts))
			ratios = append(ratios, m/w)
		}
		return Row{w, trials, metrics.Mean(ratios), metrics.Max(ratios)}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// L5DFSampling measures Lemma 5's DFSampling time against the recruit count
// on chain instances. The lemma's single-robot-start regime O(ℓ²·log k) only
// covers k ≤ 4ℓ (beyond that the backtracking term 2kℓ stops being O(ℓ²)),
// so the sweep keeps k within 4ℓ for each ℓ.
func (r *Runner) L5DFSampling(scale Scale) (*report.Table, error) {
	type cfg struct {
		ell    float64
		target int
	}
	cfgs := []cfg{{2, 4}, {2, 8}, {4, 8}, {4, 16}}
	if scale == Full {
		cfgs = []cfg{{2, 4}, {2, 8}, {4, 8}, {4, 16}, {8, 16}, {8, 32}}
	}
	t := report.NewTable("L5 — DFSampling time vs recruits (chain; model ℓ²·lg k, valid for k ≤ 4ℓ)",
		"ell", "recruit target", "recruited", "duration", "model ℓ²lg(k)", "ratio")
	err := Sweep(r, t, cfgs, func(_ *Trial, c cfg) (Row, error) {
		dur, got, err := dfsampleDuration(c.ell, c.target)
		if err != nil {
			return nil, err
		}
		model := c.ell * c.ell * lg2(float64(c.target))
		return Row{c.ell, c.target, got, dur, model, dur / model}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

func dfsampleDuration(ell float64, target int) (float64, int, error) {
	// A chain long enough to saturate the largest target, spaced 1.5ℓ so
	// every consecutive pair is a 2ℓ-hop and every sample recruits.
	var pts []geom.Point
	for i := 1; i <= 2*target+4; i++ {
		pts = append(pts, geom.Pt(float64(i)*1.5*ell, 0))
	}
	e := sim.NewEngine(sim.Config{Source: geom.Origin, Sleepers: pts})
	region := geom.Sq(geom.Pt(float64(len(pts))*ell, 0), 8*float64(len(pts))*ell)
	var dur float64
	var got int
	var rerr error
	e.Spawn(sim.SourceID, func(p *sim.Proc) {
		start := p.Now()
		out, err := sampling.Run(p, nil, sampling.Request{
			Region:        region.Rect(),
			Square:        region,
			Ell:           ell,
			RecruitTarget: target,
			Seeds:         []sampling.Seed{{Pos: geom.Origin, AsleepID: -1}},
		})
		if err != nil {
			rerr = err
			return
		}
		dur = p.Now() - start
		got = len(out.Recruits)
	})
	if _, err := e.Run(); err != nil {
		return 0, 0, err
	}
	return dur, got, rerr
}

// XiSanity cross-checks the diskgraph parameter computations on the
// experiment families (an internal consistency row used by dftp-bench).
// Family construction is serial (the walk family consumes a shared RNG
// sequence); the parameter computations fan out per family.
func (r *Runner) XiSanity() (*report.Table, error) {
	t := report.NewTable("Parameter sanity (Proposition 1 on experiment families)",
		"instance", "ell*", "rho*", "xi", "ok: ℓ*≤ρ*≤ξ≤nℓ*")
	rng := r.trial(0).RNG
	families := []*instance.Instance{
		instance.Line(24, 1.5),
		instance.GridSwarm(5, 2),
		instance.RandomWalk(rng, 40, 0.9),
		instance.DiskGridStatic(10, 2, 40),
	}
	err := Sweep(r, t, families, func(_ *Trial, in *instance.Instance) (Row, error) {
		p := in.Params()
		ok := diskgraph.CheckProposition1(in.Source, in.Points)
		return Row{in.Name, p.Ell, p.Rho, p.Xi, fmt.Sprintf("%v", ok)}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// All runs every experiment at the given scale, returning the tables in
// presentation order. Used by cmd/dftp-bench. The tables themselves are
// generated sequentially; parallelism lives inside each table's trial sweep,
// which keeps the memory high-water mark at one experiment.
func (r *Runner) All(scale Scale) ([]*report.Table, error) {
	type gen struct {
		name string
		fn   func(Scale) (*report.Table, error)
	}
	gens := []gen{
		{"E1a", r.E1RhoSweep}, {"E1b", r.E1EllSweep}, {"E2", r.E2EnergyThreshold},
		{"E3", r.E3AGrid}, {"E4", r.E4AWave}, {"E5", r.E5LowerBound}, {"E6", r.E6Path},
		{"E7", r.E7Crossover},
		{"F1", r.F1Phases}, {"F4", r.F4Explore}, {"F5", r.F5Construction},
		{"F8", r.F8FaultResilience},
		{"L2", r.L2WakeTree}, {"L5", r.L5DFSampling},
		{"P1", r.P1Portfolio},
		{"M1", r.M1Metrics},
		{"H1", r.H1Heterogeneous},
	}
	var out []*report.Table
	for _, g := range gens {
		tb, err := g.fn(scale)
		if err != nil {
			return nil, fmt.Errorf("experiment %s: %w", g.name, err)
		}
		out = append(out, tb)
	}
	sanity, err := r.XiSanity()
	if err != nil {
		return nil, err
	}
	out = append(out, sanity)
	return out, nil
}

// All runs every experiment on a fresh default runner (GOMAXPROCS workers,
// DefaultSeed).
func All(scale Scale) ([]*report.Table, error) {
	return NewRunner().All(scale)
}
