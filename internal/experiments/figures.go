package experiments

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"freezetag/internal/dftp"
	"freezetag/internal/diskgraph"
	"freezetag/internal/explore"
	"freezetag/internal/geom"
	"freezetag/internal/instance"
	"freezetag/internal/metrics"
	"freezetag/internal/report"
	"freezetag/internal/sampling"
	"freezetag/internal/sim"
	"freezetag/internal/wakeup"
)

// F1Phases regenerates the content of Figures 1–2: the phase anatomy of one
// ASeparator execution — per recursion depth, the number of reorganization
// barriers (parallel branches) and square widths, plus the wake-up timeline.
func F1Phases(scale Scale) (*report.Table, error) {
	n := 48
	if scale == Full {
		n = 96
	}
	in := instance.DiskGridStatic(12, 2, n)
	tup := dftp.TupleFor(in)

	type depthStat struct {
		branches int
		width    float64
	}
	stats := map[int]*depthStat{}
	var wakeTimes []float64
	e := sim.NewEngine(sim.Config{
		Source:   in.Source,
		Sleepers: in.Points,
		Trace: func(ev sim.Event) {
			switch ev.Kind {
			case "wake":
				wakeTimes = append(wakeTimes, ev.T)
			case "barrier":
				// Keys look like reorg/<nonce>/<cx,cy>/<width>/<depth>.
				if !strings.HasPrefix(ev.Extra, "reorg/") {
					return
				}
				parts := strings.Split(ev.Extra, "/")
				var width float64
				var depth int
				fmt.Sscanf(parts[len(parts)-2], "%g", &width)
				fmt.Sscanf(parts[len(parts)-1], "%d", &depth)
				ds := stats[depth]
				if ds == nil {
					ds = &depthStat{width: width}
					stats[depth] = ds
				}
				ds.branches++
			}
		},
	})
	rep := dftp.ASeparator{}.Install(e, tup)
	res, err := e.Run()
	if err != nil {
		return nil, err
	}
	if !res.AllAwake || len(rep.Misses) > 0 {
		return nil, fmt.Errorf("F1: run failed (awake=%v misses=%d)", res.AllAwake, len(rep.Misses))
	}
	t := report.NewTable("F1/F2 — ASeparator phase anatomy (disk-grid ρ=12 ℓ=2)",
		"depth", "square width", "barrier arrivals", "wake quantile t25/t50/t75/t100")
	depths := make([]int, 0, len(stats))
	for d := range stats {
		depths = append(depths, d)
	}
	sort.Ints(depths)
	sort.Float64s(wakeTimes)
	q := func(f float64) float64 {
		if len(wakeTimes) == 0 {
			return 0
		}
		i := int(f * float64(len(wakeTimes)-1))
		return wakeTimes[i]
	}
	quant := fmt.Sprintf("%.1f/%.1f/%.1f/%.1f", q(0.25), q(0.5), q(0.75), q(1))
	for i, d := range depths {
		qcol := ""
		if i == 0 {
			qcol = quant
		}
		t.AddRow(d, stats[d].width, stats[d].branches, qcol)
	}
	return t, nil
}

// F4Explore regenerates Figure 4's content: Lemma 1 exploration cost across
// rectangle dimensions and team sizes, with the fitted model
// a·wh/k + b·(w+h) + c.
func F4Explore(scale Scale) (*report.Table, error) {
	dims := [][2]float64{{8, 8}, {16, 8}}
	ks := []int{1, 2, 4}
	if scale == Full {
		dims = [][2]float64{{8, 8}, {16, 8}, {16, 16}, {32, 16}}
		ks = []int{1, 2, 4, 8}
	}
	t := report.NewTable("F4 — Explore cost (Lemma 1: O(wh/k + w + h))",
		"w", "h", "k", "duration", "model wh/k+w+h", "ratio")
	var feats [][]float64
	var ys []float64
	for _, d := range dims {
		w, h := d[0], d[1]
		for _, k := range ks {
			dur, err := exploreDuration(w, h, k)
			if err != nil {
				return nil, err
			}
			model := w*h/float64(k) + w + h
			t.AddRow(w, h, k, dur, model, dur/model)
			feats = append(feats, []float64{w * h / float64(k), w + h, 1})
			ys = append(ys, dur)
		}
	}
	if coef, r2, err := metrics.FitLinear(feats, ys); err == nil {
		t.AddRow("fit", "", "", fmt.Sprintf("a=%.2f b=%.2f c=%.2f", coef[0], coef[1], coef[2]),
			fmt.Sprintf("R²=%.4f", r2), "")
	}
	return t, nil
}

// exploreDuration measures one team exploration of a w×h rectangle with k
// robots (k−1 teammates sleeping at the source get woken for free first).
func exploreDuration(w, h float64, k int) (float64, error) {
	var sleepers []geom.Point
	for i := 0; i < k-1; i++ {
		sleepers = append(sleepers, geom.Origin)
	}
	// One probe robot far inside so the sweep has something to find.
	sleepers = append(sleepers, geom.Pt(w*0.7, h*0.6))
	e := sim.NewEngine(sim.Config{Source: geom.Origin, Sleepers: sleepers})
	var dur float64
	var rerr error
	e.Spawn(sim.SourceID, func(p *sim.Proc) {
		var members []int
		for i := 1; i < k; i++ {
			p.Wake(i, nil)
			members = append(members, i)
		}
		start := p.Now()
		res, err := explore.Rect(p, members, geom.RectWH(geom.Origin, w, h), geom.Pt(w/2, h/2))
		if err != nil {
			rerr = err
			return
		}
		if len(res.Asleep) == 0 {
			rerr = fmt.Errorf("probe robot not found in %vx%v sweep", w, h)
			return
		}
		dur = p.Now() - start
	})
	if _, err := e.Run(); err != nil {
		return 0, err
	}
	return dur, rerr
}

// F5Construction regenerates Figure 5's content: the Theorem 2 layout
// statistics — |C| against the Lemma 12 bound 1+ρ²/ℓ², and the Lemma 13
// ℓ-connectivity of the disk-grid instances.
func F5Construction(scale Scale) (*report.Table, error) {
	type cfg struct{ rho, ell float64 }
	cfgs := []cfg{{8, 2}, {16, 2}}
	if scale == Full {
		cfgs = []cfg{{8, 2}, {16, 2}, {32, 4}, {48, 4}}
	}
	t := report.NewTable("F5 — Theorem 2 construction (Lemmas 12–13)",
		"rho", "ell", "|C|", "bound 1+ρ²/ℓ²", "ℓ* of disk-grid", "ℓ-connected")
	for _, c := range cfgs {
		centers := instance.CentersC(c.rho, c.ell)
		in := instance.DiskGridStatic(c.rho, c.ell, 1<<20)
		p := in.Params()
		t.AddRow(c.rho, c.ell, len(centers), 1+c.rho*c.rho/(c.ell*c.ell),
			p.Ell, fmt.Sprintf("%v", p.Ell <= c.ell+1e-9))
	}
	return t, nil
}

// L2WakeTree measures Lemma 2's constant: the worst makespan/width ratio of
// the centralized wake-up tree over random squares (paper constant 5 with
// the [BCGH24] tree; ours is the ≈10.1 longest-side-bisection constant).
func L2WakeTree(scale Scale) (*report.Table, error) {
	widths := []float64{4, 16}
	trials := 20
	if scale == Full {
		widths = []float64{4, 16, 64, 256}
		trials = 60
	}
	rng := rand.New(rand.NewSource(99))
	t := report.NewTable("L2 — wake-up tree makespan/width (paper: ≤5R; ours: ≤~10.1R)",
		"width", "trials", "mean ratio", "max ratio")
	for _, w := range widths {
		var ratios []float64
		for trial := 0; trial < trials; trial++ {
			n := 10 + rng.Intn(100)
			ts := make([]wakeup.Target, n)
			for i := range ts {
				ts[i] = wakeup.Target{ID: i + 1,
					Pos: geom.Pt((rng.Float64()-0.5)*w, (rng.Float64()-0.5)*w)}
			}
			m := wakeup.Makespan(geom.Origin, wakeup.BuildTree(geom.Origin, ts))
			ratios = append(ratios, m/w)
		}
		t.AddRow(w, trials, metrics.Mean(ratios), metrics.Max(ratios))
	}
	return t, nil
}

// L5DFSampling measures Lemma 5's DFSampling time against the recruit count
// on chain instances. The lemma's single-robot-start regime O(ℓ²·log k) only
// covers k ≤ 4ℓ (beyond that the backtracking term 2kℓ stops being O(ℓ²)),
// so the sweep keeps k within 4ℓ for each ℓ.
func L5DFSampling(scale Scale) (*report.Table, error) {
	type cfg struct {
		ell    float64
		target int
	}
	cfgs := []cfg{{2, 4}, {2, 8}, {4, 8}, {4, 16}}
	if scale == Full {
		cfgs = []cfg{{2, 4}, {2, 8}, {4, 8}, {4, 16}, {8, 16}, {8, 32}}
	}
	t := report.NewTable("L5 — DFSampling time vs recruits (chain; model ℓ²·lg k, valid for k ≤ 4ℓ)",
		"ell", "recruit target", "recruited", "duration", "model ℓ²lg(k)", "ratio")
	for _, c := range cfgs {
		dur, got, err := dfsampleDuration(c.ell, c.target)
		if err != nil {
			return nil, err
		}
		model := c.ell * c.ell * lg2(float64(c.target))
		t.AddRow(c.ell, c.target, got, dur, model, dur/model)
	}
	return t, nil
}

func dfsampleDuration(ell float64, target int) (float64, int, error) {
	// A chain long enough to saturate the largest target, spaced 1.5ℓ so
	// every consecutive pair is a 2ℓ-hop and every sample recruits.
	var pts []geom.Point
	for i := 1; i <= 2*target+4; i++ {
		pts = append(pts, geom.Pt(float64(i)*1.5*ell, 0))
	}
	e := sim.NewEngine(sim.Config{Source: geom.Origin, Sleepers: pts})
	region := geom.Sq(geom.Pt(float64(len(pts))*ell, 0), 8*float64(len(pts))*ell)
	var dur float64
	var got int
	var rerr error
	e.Spawn(sim.SourceID, func(p *sim.Proc) {
		start := p.Now()
		out, err := sampling.Run(p, nil, sampling.Request{
			Region:        region.Rect(),
			Square:        region,
			Ell:           ell,
			RecruitTarget: target,
			Seeds:         []sampling.Seed{{Pos: geom.Origin, AsleepID: -1}},
		})
		if err != nil {
			rerr = err
			return
		}
		dur = p.Now() - start
		got = len(out.Recruits)
	})
	if _, err := e.Run(); err != nil {
		return 0, 0, err
	}
	return dur, got, rerr
}

// XiSanity cross-checks the diskgraph parameter computations on the
// experiment families (an internal consistency row used by dftp-bench).
func XiSanity() (*report.Table, error) {
	t := report.NewTable("Parameter sanity (Proposition 1 on experiment families)",
		"instance", "ell*", "rho*", "xi", "ok: ℓ*≤ρ*≤ξ≤nℓ*")
	rng := rand.New(rand.NewSource(7))
	families := []*instance.Instance{
		instance.Line(24, 1.5),
		instance.GridSwarm(5, 2),
		instance.RandomWalk(rng, 40, 0.9),
		instance.DiskGridStatic(10, 2, 40),
	}
	for _, in := range families {
		p := in.Params()
		ok := diskgraph.CheckProposition1(in.Source, in.Points)
		t.AddRow(in.Name, p.Ell, p.Rho, p.Xi, fmt.Sprintf("%v", ok))
	}
	return t, nil
}

// All runs every experiment at the given scale, returning the tables in
// presentation order. Used by cmd/dftp-bench.
func All(scale Scale) ([]*report.Table, error) {
	type gen struct {
		name string
		fn   func(Scale) (*report.Table, error)
	}
	gens := []gen{
		{"E1a", E1RhoSweep}, {"E1b", E1EllSweep}, {"E2", E2EnergyThreshold},
		{"E3", E3AGrid}, {"E4", E4AWave}, {"E5", E5LowerBound}, {"E6", E6Path},
		{"E7", E7Crossover},
		{"F1", F1Phases}, {"F4", F4Explore}, {"F5", F5Construction},
		{"L2", L2WakeTree}, {"L5", L5DFSampling},
	}
	var out []*report.Table
	for _, g := range gens {
		tb, err := g.fn(scale)
		if err != nil {
			return nil, fmt.Errorf("experiment %s: %w", g.name, err)
		}
		out = append(out, tb)
	}
	sanity, err := XiSanity()
	if err != nil {
		return nil, err
	}
	out = append(out, sanity)
	return out, nil
}
