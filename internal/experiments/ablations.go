package experiments

import (
	"freezetag/internal/dftp"
	"freezetag/internal/geom"
	"freezetag/internal/instance"
	"freezetag/internal/metrics"
	"freezetag/internal/report"
	"freezetag/internal/sampling"
	"freezetag/internal/sim"
	"freezetag/internal/wakeup"
)

// A1TreeQuality measures the approximation ratio of the longest-side
// bisection wake-up tree (the Lemma 2 substitute for [BCGH24]) against the
// exact optimum computed by the O(3ⁿ) DP, over random squares.
func (r *Runner) A1TreeQuality(scale Scale) (*report.Table, error) {
	sizes := []int{4, 6, 8}
	trials := 25
	if scale == Full {
		sizes = []int{4, 6, 8, 10, 12}
		trials = 50
	}
	t := report.NewTable("A1 — wake-up tree vs exact optimum (approximation ratio)",
		"n", "trials", "mean ratio", "max ratio")
	err := Sweep(r, t, sizes, func(tr *Trial, n int) (Row, error) {
		var ratios []float64
		for trial := 0; trial < trials; trial++ {
			ts := make([]wakeup.Target, n)
			for i := range ts {
				ts[i] = wakeup.Target{ID: i + 1,
					Pos: geom.Pt(tr.RNG.Float64()*8-4, tr.RNG.Float64()*8-4)}
			}
			opt := wakeup.OptimalMakespan(geom.Origin, ts)
			heur := wakeup.Makespan(geom.Origin, wakeup.BuildTree(geom.Origin, ts))
			if opt > 0 {
				ratios = append(ratios, heur/opt)
			}
		}
		return Row{n, trials, metrics.Mean(ratios), metrics.Max(ratios)}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// A2RhoEstimation compares ASeparatorAuto (ℓ-only knowledge, §5) against
// ASeparator (told ρ): estimate quality and makespan overhead.
func (r *Runner) A2RhoEstimation(scale Scale) (*report.Table, error) {
	ns := []int{24, 48}
	if scale == Full {
		ns = []int{24, 48, 96}
	}
	t := report.NewTable("A2 — ρ-estimation (§5): ASeparatorAuto vs ASeparator",
		"n", "rho*", "auto makespan", "base makespan", "overhead")
	err := Sweep(r, t, ns, func(_ *Trial, n int) (Row, error) {
		in := instance.Line(n, 1)
		p := in.Params()
		mkAuto, _, err := solveOn(dftp.ASeparatorAuto{}, in, 0)
		if err != nil {
			return nil, err
		}
		mkBase, _, err := solveOn(dftp.ASeparator{}, in, 0)
		if err != nil {
			return nil, err
		}
		return Row{n, p.Rho, mkAuto, mkBase, mkAuto / mkBase}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// A3TeamGrowth quantifies the Lemma 5 team-growth effect: DFSampling time
// with recruits joining the sweeps versus the ablated variant where the
// initial robot sweeps alone (recruits only tag along).
func (r *Runner) A3TeamGrowth(scale Scale) (*report.Table, error) {
	type cfg struct {
		ell    float64
		target int
	}
	cfgs := []cfg{{2, 8}, {4, 16}}
	if scale == Full {
		cfgs = []cfg{{2, 8}, {4, 16}, {8, 32}}
	}
	t := report.NewTable("A3 — DFSampling with vs without team growth (Lemma 5 ablation)",
		"ell", "recruits", "with growth", "without growth", "speedup")
	err := Sweep(r, t, cfgs, func(_ *Trial, c cfg) (Row, error) {
		with, err := dfsampleAblation(c.ell, c.target, false)
		if err != nil {
			return nil, err
		}
		without, err := dfsampleAblation(c.ell, c.target, true)
		if err != nil {
			return nil, err
		}
		return Row{c.ell, c.target, with, without, without / with}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

func dfsampleAblation(ell float64, target int, noGrowth bool) (float64, error) {
	var pts []geom.Point
	for i := 1; i <= 2*target+4; i++ {
		pts = append(pts, geom.Pt(float64(i)*1.5*ell, 0))
	}
	e := sim.NewEngine(sim.Config{Source: geom.Origin, Sleepers: pts})
	region := geom.Sq(geom.Pt(float64(len(pts))*ell, 0), 8*float64(len(pts))*ell)
	var dur float64
	var rerr error
	e.Spawn(sim.SourceID, func(p *sim.Proc) {
		start := p.Now()
		_, err := sampling.Run(p, nil, sampling.Request{
			Region:        region.Rect(),
			Square:        region,
			Ell:           ell,
			RecruitTarget: target,
			Seeds:         []sampling.Seed{{Pos: geom.Origin, AsleepID: -1}},
			NoTeamGrowth:  noGrowth,
		})
		rerr = err
		dur = p.Now() - start
	})
	if _, err := e.Run(); err != nil {
		return 0, err
	}
	return dur, rerr
}

// A4EllRobustness checks Definition 1's "any admissible tuple" clause: the
// algorithms must stay correct (and degrade gracefully) when the source is
// given an over-estimate of ℓ*.
func (r *Runner) A4EllRobustness(scale Scale) (*report.Table, error) {
	mults := []float64{1, 2}
	if scale == Full {
		mults = []float64{1, 2, 4}
	}
	t := report.NewTable("A4 — robustness to over-estimated ℓ (line, ℓ*=1)",
		"ell given", "ASeparator makespan", "AGrid makespan", "AGrid maxEnergy")
	err := Sweep(r, t, mults, func(_ *Trial, m float64) (Row, error) {
		in := instance.Line(32, 1)
		tup := dftp.TupleFor(in)
		tup.Ell = tup.Ell * m
		sepRes, _, err := dftp.Solve(dftp.ASeparator{}, in, tup, 0)
		if err != nil {
			return nil, err
		}
		gridRes, _, err := dftp.Solve(dftp.AGrid{}, in, tup, 0)
		if err != nil {
			return nil, err
		}
		if !sepRes.AllAwake || !gridRes.AllAwake {
			return Row{tup.Ell, "INCOMPLETE", "INCOMPLETE", 0.0}, nil
		}
		return Row{tup.Ell, sepRes.Makespan, gridRes.Makespan, gridRes.MaxEnergy}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// A5Baseline compares the wake-up tree against the no-delegation chain
// baseline (one robot wakes everyone, nearest-first): the speedup is the
// payoff of Algorithm 1's workforce doubling, the mechanism all of the
// paper's makespan bounds stand on.
func (r *Runner) A5Baseline(scale Scale) (*report.Table, error) {
	sizes := []int{20, 100}
	if scale == Full {
		sizes = []int{20, 100, 400, 1000}
	}
	t := report.NewTable("A5 — wake-up tree vs single-robot chain baseline (width-20 square)",
		"n", "chain makespan", "tree makespan", "speedup")
	err := Sweep(r, t, sizes, func(tr *Trial, n int) (Row, error) {
		ts := make([]wakeup.Target, n)
		for i := range ts {
			ts[i] = wakeup.Target{ID: i + 1,
				Pos: geom.Pt(tr.RNG.Float64()*20-10, tr.RNG.Float64()*20-10)}
		}
		chain := wakeup.ChainMakespan(geom.Origin, ts)
		tree := wakeup.Makespan(geom.Origin, wakeup.BuildTree(geom.Origin, ts))
		return Row{n, chain, tree, chain / tree}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Ablations runs the ablation suite (A1–A5).
func (r *Runner) Ablations(scale Scale) ([]*report.Table, error) {
	type gen struct {
		name string
		fn   func(Scale) (*report.Table, error)
	}
	gens := []gen{
		{"A1", r.A1TreeQuality}, {"A2", r.A2RhoEstimation},
		{"A3", r.A3TeamGrowth}, {"A4", r.A4EllRobustness},
		{"A5", r.A5Baseline},
	}
	var out []*report.Table
	for _, g := range gens {
		tb, err := g.fn(scale)
		if err != nil {
			return nil, err
		}
		out = append(out, tb)
	}
	return out, nil
}

// Ablations runs the ablation suite on a fresh default runner (GOMAXPROCS
// workers, DefaultSeed).
func Ablations(scale Scale) ([]*report.Table, error) {
	return NewRunner().Ablations(scale)
}
