package experiments

import (
	"fmt"

	"freezetag/internal/dftp"
	"freezetag/internal/instance"
	"freezetag/internal/portfolio"
	"freezetag/internal/report"
)

// P1Portfolio measures the portfolio racing engine against each fixed
// algorithm across the instance families of E1 (sparse lines, where
// ASeparator's ρ-dominated bound wins), E4 (fat lines at ℓ=4, AWave's
// regime) and the A1-style random clustered swarms (chain instances): no
// single algorithm wins every family — the complementarity the portfolio
// exploits. The portfolio column must equal the per-row best fixed makespan
// (ratio 1), because a min-makespan race returns the argmin of its
// entrants; the winner column shows it switching algorithms per family.
func (r *Runner) P1Portfolio(scale Scale) (*report.Table, error) {
	entrants := []dftp.Algorithm{dftp.ASeparator{}, dftp.AGrid{}, dftp.AWave{}}
	type cfg struct {
		family string
		build  func(*Trial) *instance.Instance
	}
	cfgs := []cfg{
		{"line ℓ=1 (E1)", func(*Trial) *instance.Instance { return instance.Line(32, 1) }},
		{"line ℓ=4 (E4)", func(*Trial) *instance.Instance { return instance.Line(24, 4) }},
		{"clusters (A1)", func(tr *Trial) *instance.Instance { return instance.ClusterChain(tr.RNG, 3, 8, 5, 1) }},
	}
	if scale == Full {
		cfgs = append(cfgs,
			cfg{"line ℓ=1 long (E1)", func(*Trial) *instance.Instance { return instance.Line(96, 1) }},
			cfg{"line ℓ=4 long (E4)", func(*Trial) *instance.Instance { return instance.Line(60, 4) }},
			cfg{"clusters wide (A1)", func(tr *Trial) *instance.Instance { return instance.ClusterChain(tr.RNG, 5, 8, 8, 1) }},
		)
	}
	t := report.NewTable("P1 — portfolio vs fixed algorithms (min-makespan race)",
		"family", "n", "ASeparator", "AGrid", "AWave", "portfolio", "winner", "portfolio/best")
	err := Sweep(r, t, cfgs, func(tr *Trial, c cfg) (Row, error) {
		in := c.build(tr)
		tup := dftp.TupleFor(in)
		pf := portfolio.Portfolio{Algorithms: entrants, Objective: portfolio.MinMakespan{}, Seed: r.seed}
		res, err := portfolio.Race(pf, in, tup, 0, portfolio.Options{})
		if err != nil {
			return nil, fmt.Errorf("portfolio on %s: %w", in.Name, err)
		}
		// A min-makespan race never cancels, so every racer reports the
		// fixed algorithm's own deterministic makespan — the race IS the
		// per-algorithm baseline sweep, one simulation each.
		best := -1
		for i, rr := range res.Racers {
			if !rr.AllAwake {
				return nil, fmt.Errorf("%s on %s: incomplete wake-up", rr.Algorithm, in.Name)
			}
			if best < 0 || rr.Makespan < res.Racers[best].Makespan {
				best = i
			}
		}
		if res.Winner != best || res.Res.Makespan != res.Racers[best].Makespan {
			return nil, fmt.Errorf("portfolio on %s picked racer %d, argmin is %d", in.Name, res.Winner, best)
		}
		return Row{c.family, in.N(), res.Racers[0].Makespan, res.Racers[1].Makespan, res.Racers[2].Makespan,
			res.Res.Makespan, res.Racers[res.Winner].Algorithm, res.Res.Makespan / res.Racers[best].Makespan}, nil
	})
	if err != nil {
		return nil, err
	}
	return t, nil
}
