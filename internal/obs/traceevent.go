package obs

import (
	"io"
	"strconv"
	"time"
)

// WriteTraceEvent renders one trace in the Chrome trace_event JSON Array
// Format — the schema Perfetto, chrome://tracing, and speedscope all load.
// The writer is hand-rolled, like the Prometheus one, so the bytes are
// fully under this package's control and golden-testable.
//
// Layout: one "X" (complete) event per span — the request root on tid 1,
// stage spans on tid 1, child tracks (racers) on tid 1+Track — one "i"
// (instant) event per trace event, plus process/thread metadata so viewers
// label the tracks. Timestamps are microseconds relative to the trace
// start, with nanosecond precision kept as three decimal places.
func WriteTraceEvent(w io.Writer, t *Trace) error {
	b := make([]byte, 0, 1024)
	b = append(b, `{"displayTimeUnit":"ms","traceEvents":[`...)
	b = appendMeta(b, 1, "process_name", "dftp-serve", true)
	b = appendMeta(b, 1, "thread_name", "request", false)
	tracks := 0
	for _, sp := range t.Spans {
		if sp.Track > tracks {
			tracks = sp.Track
		}
	}
	for tr := 1; tr <= tracks; tr++ {
		b = appendMeta(b, 1+tr, "thread_name", "racer "+strconv.Itoa(tr), false)
	}
	// Root span: the whole request, annotated with identity and outcome.
	b = append(b, `,{"ph":"X","pid":1,"tid":1,"ts":0,"dur":`...)
	b = appendMicros(b, t.Total)
	b = append(b, `,"name":`...)
	b = appendJSONString(b, t.Name)
	b = append(b, `,"cat":"request","args":{"traceId":`...)
	b = appendJSONString(b, t.ID)
	b = append(b, `,"outcome":`...)
	b = appendJSONString(b, t.Outcome)
	if t.Error != "" {
		b = append(b, `,"error":`...)
		b = appendJSONString(b, t.Error)
	}
	b = append(b, `,"slow":`...)
	b = strconv.AppendBool(b, t.Slow)
	b = append(b, `,"sampled":`...)
	b = strconv.AppendBool(b, t.Sampled)
	b = append(b, `}}`...)
	for _, sp := range t.Spans {
		b = append(b, `,{"ph":"X","pid":1,"tid":`...)
		b = strconv.AppendInt(b, int64(1+sp.Track), 10)
		b = append(b, `,"ts":`...)
		b = appendMicros(b, sp.Start)
		b = append(b, `,"dur":`...)
		b = appendMicros(b, sp.D)
		b = append(b, `,"name":`...)
		b = appendJSONString(b, sp.Name)
		cat := "stage"
		if sp.Track > 0 {
			cat = "racer"
		}
		b = append(b, `,"cat":"`...)
		b = append(b, cat...)
		b = append(b, `"}`...)
	}
	for _, ev := range t.Events {
		b = append(b, `,{"ph":"i","pid":1,"tid":1,"ts":`...)
		b = appendMicros(b, ev.At)
		b = append(b, `,"s":"t","name":`...)
		b = appendJSONString(b, ev.Name)
		b = append(b, `,"cat":"event"}`...)
	}
	b = append(b, "]}\n"...)
	_, err := w.Write(b)
	return err
}

// appendMeta appends one "M" (metadata) event naming a process or thread.
// first suppresses the leading comma for the array's first element.
func appendMeta(b []byte, tid int, key, name string, first bool) []byte {
	if !first {
		b = append(b, ',')
	}
	b = append(b, `{"ph":"M","pid":1,"tid":`...)
	b = strconv.AppendInt(b, int64(tid), 10)
	b = append(b, `,"name":"`...)
	b = append(b, key...)
	b = append(b, `","args":{"name":`...)
	b = appendJSONString(b, name)
	b = append(b, `}}`...)
	return b
}

// appendMicros appends a duration as decimal microseconds with exactly as
// many fractional digits as the nanosecond remainder needs (none, or
// three). Integer math only, so the rendering is deterministic.
func appendMicros(b []byte, d time.Duration) []byte {
	if d < 0 {
		d = 0
	}
	us, ns := int64(d)/1000, int64(d)%1000
	b = strconv.AppendInt(b, us, 10)
	if ns != 0 {
		b = append(b, '.')
		b = append(b, byte('0'+ns/100), byte('0'+(ns/10)%10), byte('0'+ns%10))
	}
	return b
}

// appendJSONString appends s as a JSON string literal, escaping the
// characters JSON requires (quote, backslash, control bytes). Trace IDs
// and span names are ASCII in practice; multi-byte runes pass through
// verbatim, which is valid JSON.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c == '"':
			b = append(b, '\\', '"')
		case c == '\\':
			b = append(b, '\\', '\\')
		case c < 0x20:
			const hexDigits = "0123456789abcdef"
			b = append(b, '\\', 'u', '0', '0', hexDigits[c>>4], hexDigits[c&0xf])
		default:
			b = append(b, c)
		}
	}
	return append(b, '"')
}
