package obs

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// Trace is one completed request's timeline: the per-stage spans the
// request actually ran, instant events (cache verdicts, single-flight
// joins, sheds), and the policy verdicts that kept it in the flight
// recorder. Traces are built once, after the request finishes, and are
// immutable from then on — the store hands out shared pointers.
type Trace struct {
	// ID is the request's trace ID: an inbound W3C trace-id or client
	// request ID when one was supplied, a minted 16-byte lower-hex ID
	// otherwise. The same ID appears in the response's Server-Timing
	// header and the structured request log, so the three views join.
	ID string
	// Name is the endpoint that served the request ("solve", "portfolio").
	Name string
	// Outcome is the request outcome label (hit|coalesced|miss|shed|error).
	Outcome string
	// Error is the failure message for errored requests.
	Error string
	// Start is the request's wall-clock arrival; span and event offsets
	// are relative to it.
	Start time.Time
	// Total is the request's end-to-end duration.
	Total time.Duration
	// Slow and Sampled record why the trace was kept: Slow means the
	// always-keep-slow policy fired (Total ≥ the slow threshold; errored
	// and shed requests are always kept regardless), Sampled means the
	// probabilistic sampler selected the request at ingress.
	Slow    bool
	Sampled bool
	// Spans are the stage and child spans in recorded order.
	Spans []TraceSpan
	// Events are instant markers (cache-hit, single-flight-join, shed, …).
	Events []TraceEvent
}

// TraceSpan is one timed interval inside a trace.
type TraceSpan struct {
	// Name is the span label: a request stage (resolve, queue, sim,
	// marshal) or a child span like "racer:AGrid".
	Name string
	// Track separates parallel timelines: 0 is the request's own stage
	// track; racers get tracks 1..k so viewers render them side by side.
	Track int
	// Start is the span's offset from the trace start.
	Start time.Duration
	// D is the span's duration.
	D time.Duration
}

// TraceEvent is one instant marker inside a trace.
type TraceEvent struct {
	Name string
	// At is the event's offset from the trace start.
	At time.Duration
}

// NewTraceID mints a 16-byte random trace ID in lower-hex — the W3C
// trace-context trace-id format.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a zero ID is
		// invalid per W3C, so fall back to a fixed non-zero marker rather
		// than panicking on an exotic one.
		b[0] = 1
	}
	return hex.EncodeToString(b[:])
}

// ParseTraceparent extracts the trace-id and sampled flag from a W3C
// traceparent header value: "00-<32 hex trace-id>-<16 hex parent-id>-<2
// hex flags>". ok is false for malformed values and for the all-zero
// trace-id, which the spec declares invalid.
func ParseTraceparent(h string) (id string, sampled, ok bool) {
	if len(h) != 55 || h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return "", false, false
	}
	if !isLowerHex(h[:2]) || !isLowerHex(h[3:35]) || !isLowerHex(h[36:52]) || !isLowerHex(h[53:]) {
		return "", false, false
	}
	id = h[3:35]
	zero := true
	for i := 0; i < len(id); i++ {
		if id[i] != '0' {
			zero = false
			break
		}
	}
	if zero {
		return "", false, false
	}
	// flags bit 0 is "sampled"; the low nibble is the second hex digit.
	return id, hexVal(h[54])&1 == 1, true
}

func isLowerHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

func hexVal(c byte) int {
	if c >= 'a' {
		return int(c-'a') + 10
	}
	return int(c - '0')
}

// TraceStore is a fixed-capacity ring buffer of completed traces — the
// request-level flight recorder. Adds overwrite the oldest entry once the
// ring is full; readers get point-in-time snapshots.
//
// The store is lock-cheap by policy rather than by lock-free machinery:
// only *kept* traces ever reach Add (slow, errored, shed, or sampled
// requests — a small fraction of traffic by construction), so a plain
// mutex around an index increment and a slot write never contends with
// the request hot path, which does not touch the store at all.
type TraceStore struct {
	mu    sync.Mutex
	buf   []*Trace
	next  int   // slot the next Add writes
	total int64 // lifetime adds; total - len = evicted
}

// NewTraceStore returns a ring holding the last capacity traces.
// It panics if capacity < 1.
func NewTraceStore(capacity int) *TraceStore {
	if capacity < 1 {
		panic("obs: trace store needs capacity ≥ 1")
	}
	return &TraceStore{buf: make([]*Trace, 0, capacity)}
}

// Capacity returns the ring size.
func (ts *TraceStore) Capacity() int { return cap(ts.buf) }

// Add records a completed trace, evicting the oldest once full. The trace
// must not be mutated after Add.
func (ts *TraceStore) Add(t *Trace) {
	ts.mu.Lock()
	if len(ts.buf) < cap(ts.buf) {
		ts.buf = append(ts.buf, t)
	} else {
		ts.buf[ts.next] = t
	}
	ts.next++
	if ts.next == cap(ts.buf) {
		ts.next = 0
	}
	ts.total++
	ts.mu.Unlock()
}

// Len returns the number of traces currently held.
func (ts *TraceStore) Len() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.buf)
}

// Total returns the lifetime number of adds; Total() - Len() traces have
// been evicted.
func (ts *TraceStore) Total() int64 {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return ts.total
}

// Get returns the most recently added trace with the given ID. The ring
// is small by construction, so the scan is O(capacity).
func (ts *TraceStore) Get(id string) (*Trace, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	// Walk newest → oldest so duplicate IDs resolve to the latest trace.
	for i := 1; i <= len(ts.buf); i++ {
		slot := ts.next - i
		if slot < 0 {
			slot += len(ts.buf)
		}
		if ts.buf[slot].ID == id {
			return ts.buf[slot], true
		}
	}
	return nil, false
}

// Snapshot returns up to n traces, newest first (all of them when n ≤ 0
// or exceeds the held count). The returned slice is fresh; the traces it
// points to are immutable.
func (ts *TraceStore) Snapshot(n int) []*Trace {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if n <= 0 || n > len(ts.buf) {
		n = len(ts.buf)
	}
	out := make([]*Trace, n)
	for i := 0; i < n; i++ {
		slot := ts.next - 1 - i
		if slot < 0 {
			slot += len(ts.buf)
		}
		out[i] = ts.buf[slot]
	}
	return out
}
