package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "help")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("Load = %d, want 5", got)
	}
	// Idempotent registration returns the same instance.
	if r.Counter("x_total", "help") != c {
		t.Fatal("re-registration returned a different counter")
	}
	// Different labels → different series.
	c2 := r.Counter("x_total", "help", L("k", "v"))
	if c2 == c {
		t.Fatal("labeled series aliased the unlabeled one")
	}
}

func TestTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "help")
	defer func() {
		if recover() == nil {
			t.Fatal("registering x as gauge after counter did not panic")
		}
	}()
	r.Gauge("x", "help", func() float64 { return 0 })
}

func TestHistogramBuckets(t *testing.T) {
	// Bounds 2^-2 .. 2^2 = 0.25, 0.5, 1, 2, 4, +Inf.
	h := NewHistogram(-2, 2)
	cases := []struct {
		v    float64
		want int
	}{
		{0, 0}, {-1, 0}, {0.1, 0}, {0.25, 0}, // ≤ 2^-2
		{0.26, 1}, {0.5, 1},
		{0.75, 2}, {1, 2},
		{1.5, 3}, {2, 3},
		{3, 4}, {4, 4},
		{4.01, 5}, {1e9, 5}, // +Inf bucket
		{math.Inf(1), 5},
		{math.NaN(), 5},
	}
	for _, c := range cases {
		if got := h.bucket(c.v); got != c.want {
			t.Errorf("bucket(%g) = %d, want %d", c.v, got, c.want)
		}
	}
	snap := h.Snapshot()
	wantBounds := []float64{0.25, 0.5, 1, 2, 4}
	if len(snap.Bounds) != len(wantBounds) {
		t.Fatalf("bounds = %v", snap.Bounds)
	}
	for i, b := range wantBounds {
		if snap.Bounds[i] != b {
			t.Fatalf("bounds = %v, want %v", snap.Bounds, wantBounds)
		}
	}
}

func TestHistogramRecordAndSum(t *testing.T) {
	h := NewHistogram(-2, 2)
	for _, v := range []float64{0.1, 0.3, 1, 2.5, 100} {
		h.Record(v)
	}
	snap := h.Snapshot()
	if snap.Count != 5 {
		t.Fatalf("count = %d, want 5", snap.Count)
	}
	if want := 0.1 + 0.3 + 1 + 2.5 + 100; math.Abs(snap.Sum-want) > 1e-12 {
		t.Fatalf("sum = %g, want %g", snap.Sum, want)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines and
// asserts the final snapshot is exactly consistent: the per-bucket counts
// sum to the total, and the sum matches the recorded values. Run under
// -race this also proves the record path is data-race-free.
func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(-20, 5)
	const workers = 8
	const perWorker = 5000
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Spread observations across several octaves.
				h.Record(float64(1+(i+w)%64) / 1024)
			}
		}(w)
	}
	// Concurrent snapshots must always be internally consistent
	// (Count == Σ Counts by construction) even while recording runs.
	for i := 0; i < 100; i++ {
		snap := h.Snapshot()
		var total uint64
		for _, c := range snap.Counts {
			total += c
		}
		if total != snap.Count {
			t.Fatalf("mid-flight snapshot inconsistent: Σbuckets=%d count=%d", total, snap.Count)
		}
	}
	wg.Wait()
	snap := h.Snapshot()
	if want := uint64(workers * perWorker); snap.Count != want {
		t.Fatalf("count = %d, want %d", snap.Count, want)
	}
	var total uint64
	var wantSum float64
	for _, c := range snap.Counts {
		total += c
	}
	if total != snap.Count {
		t.Fatalf("Σbuckets = %d, count = %d", total, snap.Count)
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < perWorker; i++ {
			wantSum += float64(1+(i+w)%64) / 1024
		}
	}
	if math.Abs(snap.Sum-wantSum) > 1e-6*wantSum {
		t.Fatalf("sum = %g, want ≈ %g", snap.Sum, wantSum)
	}
}

func TestHistogramRecordAllocs(t *testing.T) {
	h := NewHistogram(-20, 5)
	allocs := testing.AllocsPerRun(1000, func() { h.Record(0.0042) })
	if allocs != 0 {
		t.Fatalf("Record allocates %v per op, want 0", allocs)
	}
}

func TestCounterAddAllocs(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("y_total", "help")
	allocs := testing.AllocsPerRun(1000, func() { c.Add(3) })
	if allocs != 0 {
		t.Fatalf("Add allocates %v per op, want 0", allocs)
	}
}

func TestSpanStages(t *testing.T) {
	sp := StartSpan()
	d1 := sp.Mark("resolve")
	sp.Observe("queue", 5*time.Millisecond)
	d2 := sp.Mark("sim")
	st := sp.Stages()
	if len(st) != 3 {
		t.Fatalf("stages = %v", st)
	}
	if st[0].Name != "resolve" || st[1].Name != "queue" || st[2].Name != "sim" {
		t.Fatalf("stage names = %v", st)
	}
	if st[0].D != d1 || st[1].D != 5*time.Millisecond || st[2].D != d2 {
		t.Fatalf("stage durations = %v", st)
	}
	if sp.Total() < d1+d2 {
		t.Fatalf("total %v < sum of marked stages %v", sp.Total(), d1+d2)
	}
	// Overflow past the fixed capacity is dropped, not grown.
	for i := 0; i < 2*maxSpanStages; i++ {
		sp.Observe("x", time.Millisecond)
	}
	if len(sp.Stages()) != maxSpanStages {
		t.Fatalf("span grew past its fixed capacity: %d stages", len(sp.Stages()))
	}
}

func TestAppendServerTiming(t *testing.T) {
	b := AppendServerTiming(nil, "sim", 1234567*time.Nanosecond)
	b = AppendServerTiming(b, "marshal", 42*time.Microsecond)
	if got, want := string(b), "sim;dur=1.235, marshal;dur=0.042"; got != want {
		t.Fatalf("Server-Timing = %q, want %q", got, want)
	}
}

// TestWritePrometheusGolden locks the exposition format byte for byte: a
// counter family with two series, a gauge, and a small histogram with
// known observations.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("dftp_test_requests_total", "Requests by outcome.", L("outcome", "hit"))
	c.Add(3)
	r.Counter("dftp_test_requests_total", "Requests by outcome.", L("outcome", "miss")).Add(1)
	r.Gauge("dftp_test_queue_depth", "Jobs queued.", func() float64 { return 2 })
	h := r.Histogram("dftp_test_latency_seconds", "Latency.", -2, 1, L("stage", "sim"))
	h.Record(0.2) // ≤ 0.25
	h.Record(0.4) // ≤ 0.5
	h.Record(0.4)
	h.Record(8) // +Inf

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := `# HELP dftp_test_latency_seconds Latency.
# TYPE dftp_test_latency_seconds histogram
dftp_test_latency_seconds_bucket{stage="sim",le="0.25"} 1
dftp_test_latency_seconds_bucket{stage="sim",le="0.5"} 3
dftp_test_latency_seconds_bucket{stage="sim",le="1"} 3
dftp_test_latency_seconds_bucket{stage="sim",le="2"} 3
dftp_test_latency_seconds_bucket{stage="sim",le="+Inf"} 4
dftp_test_latency_seconds_sum{stage="sim"} 9
dftp_test_latency_seconds_count{stage="sim"} 4
# HELP dftp_test_queue_depth Jobs queued.
# TYPE dftp_test_queue_depth gauge
dftp_test_queue_depth 2
# HELP dftp_test_requests_total Requests by outcome.
# TYPE dftp_test_requests_total counter
dftp_test_requests_total{outcome="hit"} 3
dftp_test_requests_total{outcome="miss"} 1
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestExpositionEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("esc_total", "line one\nline \\two", L("k", `a"b\c`+"\n")).Inc()
	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := "# HELP esc_total line one\\nline \\\\two\n" +
		"# TYPE esc_total counter\n" +
		"esc_total{k=\"a\\\"b\\\\c\\n\"} 1\n"
	if got := sb.String(); got != want {
		t.Fatalf("escaped exposition = %q, want %q", got, want)
	}
}
