package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strconv"
	"sync"
	"testing"
	"time"
)

// TestTraceStoreEvictionOrder: the ring keeps exactly the last capacity
// traces, Snapshot returns them newest first, and Total counts evictions.
func TestTraceStoreEvictionOrder(t *testing.T) {
	ts := NewTraceStore(4)
	for i := 0; i < 10; i++ {
		ts.Add(&Trace{ID: strconv.Itoa(i)})
	}
	if ts.Len() != 4 {
		t.Fatalf("Len = %d, want 4", ts.Len())
	}
	if ts.Total() != 10 {
		t.Fatalf("Total = %d, want 10", ts.Total())
	}
	got := ts.Snapshot(0)
	want := []string{"9", "8", "7", "6"}
	if len(got) != len(want) {
		t.Fatalf("Snapshot returned %d traces, want %d", len(got), len(want))
	}
	for i, tr := range got {
		if tr.ID != want[i] {
			t.Errorf("Snapshot[%d].ID = %q, want %q", i, tr.ID, want[i])
		}
	}
	// Evicted traces are gone; survivors are found.
	if _, ok := ts.Get("5"); ok {
		t.Error("evicted trace 5 still found")
	}
	if tr, ok := ts.Get("7"); !ok || tr.ID != "7" {
		t.Errorf("Get(7) = %v, %v; want trace 7", tr, ok)
	}
	// A limited snapshot returns the newest n.
	if got := ts.Snapshot(2); len(got) != 2 || got[0].ID != "9" || got[1].ID != "8" {
		t.Errorf("Snapshot(2) = %v, want [9 8]", []string{got[0].ID, got[1].ID})
	}
}

// TestTraceStorePartiallyFull: snapshots and lookups work before the ring
// wraps.
func TestTraceStorePartiallyFull(t *testing.T) {
	ts := NewTraceStore(8)
	ts.Add(&Trace{ID: "a"})
	ts.Add(&Trace{ID: "b"})
	if ts.Len() != 2 || ts.Total() != 2 {
		t.Fatalf("Len/Total = %d/%d, want 2/2", ts.Len(), ts.Total())
	}
	got := ts.Snapshot(0)
	if len(got) != 2 || got[0].ID != "b" || got[1].ID != "a" {
		t.Fatalf("Snapshot = %v, want [b a]", got)
	}
	if _, ok := ts.Get("a"); !ok {
		t.Error("Get(a) missed")
	}
	if _, ok := ts.Get("zzz"); ok {
		t.Error("Get(zzz) hit")
	}
}

// TestTraceStoreDuplicateIDs: Get resolves a duplicated ID to the most
// recently added trace.
func TestTraceStoreDuplicateIDs(t *testing.T) {
	ts := NewTraceStore(4)
	ts.Add(&Trace{ID: "dup", Name: "first"})
	ts.Add(&Trace{ID: "dup", Name: "second"})
	tr, ok := ts.Get("dup")
	if !ok || tr.Name != "second" {
		t.Fatalf("Get(dup) = %+v, want the second trace", tr)
	}
}

// TestTraceStoreConcurrent hammers the store from many writers and readers
// at once; run under -race this is the store's data-race proof.
func TestTraceStoreConcurrent(t *testing.T) {
	ts := NewTraceStore(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				ts.Add(&Trace{ID: fmt.Sprintf("w%d-%d", w, i)})
				if i%17 == 0 {
					ts.Snapshot(4)
					ts.Get(fmt.Sprintf("w%d-%d", w, i))
				}
			}
		}(w)
	}
	wg.Wait()
	if ts.Total() != 8*200 {
		t.Fatalf("Total = %d, want %d", ts.Total(), 8*200)
	}
	if ts.Len() != 16 {
		t.Fatalf("Len = %d, want 16", ts.Len())
	}
}

// TestParseTraceparent covers the accept and reject paths of the W3C
// header grammar.
func TestParseTraceparent(t *testing.T) {
	id, sampled, ok := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01")
	if !ok || id != "4bf92f3577b34da6a3ce929d0e0e4736" || !sampled {
		t.Fatalf("valid sampled traceparent: id=%q sampled=%v ok=%v", id, sampled, ok)
	}
	if _, sampled, ok := ParseTraceparent("00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00"); !ok || sampled {
		t.Errorf("unsampled flag parsed as sampled=%v ok=%v", sampled, ok)
	}
	for _, bad := range []string{
		"",
		"00-short-00f067aa0ba902b7-01",
		"00-00000000000000000000000000000000-00f067aa0ba902b7-01", // zero trace-id
		"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", // uppercase
		"00_4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", // bad separator
		"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0g", // bad hex
	} {
		if _, _, ok := ParseTraceparent(bad); ok {
			t.Errorf("ParseTraceparent(%q) accepted", bad)
		}
	}
}

// TestNewTraceID: minted IDs are 32 lower-hex chars and unique enough to
// never collide in a small sample.
func TestNewTraceID(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 100; i++ {
		id := NewTraceID()
		if len(id) != 32 || !isLowerHex(id) {
			t.Fatalf("NewTraceID() = %q, want 32 lower-hex chars", id)
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		seen[id] = true
	}
}

// goldenTrace is the fixed trace the writer goldens render: every feature
// in one — stages, a parallel racer track, instant events, an error,
// sub-microsecond offsets.
func goldenTrace() *Trace {
	return &Trace{
		ID:      "4bf92f3577b34da6a3ce929d0e0e4736",
		Name:    "portfolio",
		Outcome: "miss",
		Start:   time.Unix(1700000000, 0).UTC(),
		Total:   1503500 * time.Nanosecond,
		Slow:    true,
		Sampled: false,
		Spans: []TraceSpan{
			{Name: "resolve", Track: 0, Start: 0, D: 120 * time.Microsecond},
			{Name: "queue", Track: 0, Start: 120 * time.Microsecond, D: 4250 * time.Nanosecond},
			{Name: "sim", Track: 0, Start: 124250 * time.Nanosecond, D: 1200 * time.Microsecond},
			{Name: "marshal", Track: 0, Start: 1324250 * time.Nanosecond, D: 80 * time.Microsecond},
			{Name: "racer:AGrid", Track: 1, Start: 130 * time.Microsecond, D: 900 * time.Microsecond},
			{Name: "racer:AWave", Track: 2, Start: 131 * time.Microsecond, D: 1190 * time.Microsecond},
		},
		Events: []TraceEvent{
			{Name: "cache-miss", At: 120 * time.Microsecond},
			{Name: "racer-cancelled", At: 1100 * time.Microsecond},
		},
	}
}

// TestWriteTraceEventGolden locks the Chrome trace_event rendering byte
// for byte. Update the want string deliberately when the format changes.
func TestWriteTraceEventGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTraceEvent(&buf, goldenTrace()); err != nil {
		t.Fatal(err)
	}
	want := `{"displayTimeUnit":"ms","traceEvents":[` +
		`{"ph":"M","pid":1,"tid":1,"name":"process_name","args":{"name":"dftp-serve"}},` +
		`{"ph":"M","pid":1,"tid":1,"name":"thread_name","args":{"name":"request"}},` +
		`{"ph":"M","pid":1,"tid":2,"name":"thread_name","args":{"name":"racer 1"}},` +
		`{"ph":"M","pid":1,"tid":3,"name":"thread_name","args":{"name":"racer 2"}},` +
		`{"ph":"X","pid":1,"tid":1,"ts":0,"dur":1503.500,"name":"portfolio","cat":"request","args":{"traceId":"4bf92f3577b34da6a3ce929d0e0e4736","outcome":"miss","slow":true,"sampled":false}},` +
		`{"ph":"X","pid":1,"tid":1,"ts":0,"dur":120,"name":"resolve","cat":"stage"},` +
		`{"ph":"X","pid":1,"tid":1,"ts":120,"dur":4.250,"name":"queue","cat":"stage"},` +
		`{"ph":"X","pid":1,"tid":1,"ts":124.250,"dur":1200,"name":"sim","cat":"stage"},` +
		`{"ph":"X","pid":1,"tid":1,"ts":1324.250,"dur":80,"name":"marshal","cat":"stage"},` +
		`{"ph":"X","pid":1,"tid":2,"ts":130,"dur":900,"name":"racer:AGrid","cat":"racer"},` +
		`{"ph":"X","pid":1,"tid":3,"ts":131,"dur":1190,"name":"racer:AWave","cat":"racer"},` +
		`{"ph":"i","pid":1,"tid":1,"ts":120,"s":"t","name":"cache-miss","cat":"event"},` +
		`{"ph":"i","pid":1,"tid":1,"ts":1100,"s":"t","name":"racer-cancelled","cat":"event"}` +
		"]}\n"
	if buf.String() != want {
		t.Fatalf("trace-event bytes drifted:\ngot:  %s\nwant: %s", buf.String(), want)
	}
}

// TestWriteTraceEventValidJSON: the hand-rolled writer must emit parseable
// JSON with the trace_event envelope, including for traces with characters
// that need escaping.
func TestWriteTraceEventValidJSON(t *testing.T) {
	tr := goldenTrace()
	tr.Error = `sim "exploded"` + "\n\\boom\x01"
	tr.ID = `id"with\quotes`
	var buf bytes.Buffer
	if err := WriteTraceEvent(&buf, tr); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Ph   string          `json:"ph"`
			Name string          `json:"name"`
			Ts   float64         `json:"ts"`
			Dur  float64         `json:"dur"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("writer emitted invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	// 4 metadata + 1 root + 6 spans + 2 instants.
	if len(doc.TraceEvents) != 13 {
		t.Fatalf("got %d events, want 13", len(doc.TraceEvents))
	}
	var root struct {
		TraceID string `json:"traceId"`
		Error   string `json:"error"`
	}
	if err := json.Unmarshal(doc.TraceEvents[4].Args, &root); err != nil {
		t.Fatal(err)
	}
	if root.TraceID != tr.ID || root.Error != tr.Error {
		t.Errorf("escaped args round-trip: got %+v", root)
	}
}

// TestHistogramQuantile: quantile estimates interpolate within the right
// octave bucket and clamp sanely at the edges.
func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(-3, 3) // bounds 0.125 … 8
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
	// 100 observations in (1, 2]: every quantile lands inside that bucket.
	for i := 0; i < 100; i++ {
		h.Record(1.5)
	}
	s := h.Snapshot()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := s.Quantile(q)
		if got <= 1 || got > 2 {
			t.Errorf("Quantile(%v) = %v, want in (1, 2]", q, got)
		}
	}
	if p50, p99 := s.Quantile(0.5), s.Quantile(0.99); p50 >= p99 {
		t.Errorf("p50 %v ≥ p99 %v within one bucket", p50, p99)
	}
	// An observation beyond every bound lands in +Inf; the top quantile
	// clamps to the largest finite bound instead of inventing a value.
	h.Record(1e9)
	if got := h.Snapshot().Quantile(1); got != 8 {
		t.Errorf("overflow Quantile(1) = %v, want clamp to 8", got)
	}
}
