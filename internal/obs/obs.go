// Package obs is the dependency-free observability core of the serving
// tier: atomic counters, callback gauges, fixed-bucket latency histograms
// with power-of-two bounds, and a lightweight Span stopwatch, all owned by
// a Registry that renders itself in the Prometheus text exposition format.
//
// The design constraints come from the service's performance contract:
//
//   - The record path is lock-free and allocation-free: counters are a
//     single atomic add, histogram observations index their bucket with one
//     Frexp (power-of-two bounds make bucket search O(1) bit inspection,
//     not a binary search) and touch two atomics plus a CAS loop for the
//     sum. Instrumentation must cost ≤2% on the cold-solve benchmark, so
//     nothing on the hot path takes a lock or heap-allocates.
//   - Registration is init-time and idempotent: asking for the same
//     (name, labels) series twice returns the same instance, so wiring code
//     can be written naively; a type conflict panics, because it is always
//     a programming error.
//   - Exposition never perturbs recording: WritePrometheus reads atomics
//     and calls gauge functions without holding any lock that Record or
//     Add would contend on.
//
// Nothing in this package imports anything beyond the standard library's
// leaf packages, so every layer of the system — sim, portfolio, service —
// can depend on it without cycles.
package obs

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
)

// Label is one metric dimension, e.g. {Key: "stage", Value: "sim"}.
type Label struct{ Key, Value string }

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be ≥ 0; counters only go up).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// metricType tags a family's exposition TYPE line.
type metricType string

const (
	typeCounter   metricType = "counter"
	typeGauge     metricType = "gauge"
	typeHistogram metricType = "histogram"
)

// series is one labeled instance of a family: exactly one of counter,
// gauge, hist is set, matching the family's type.
type series struct {
	labels  []Label
	counter *Counter
	gauge   func() float64
	hist    *Histogram
}

// family is every series sharing one metric name.
type family struct {
	name   string
	help   string
	typ    metricType
	series []*series
}

// Registry owns a set of metric families and renders them as Prometheus
// text exposition. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// lookup finds or creates the family and returns the series matching the
// labels, creating it via mk when absent. It panics on a type conflict —
// one name cannot be both a counter and a histogram.
func (r *Registry) lookup(name, help string, typ metricType, labels []Label, mk func() *series) *series {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, typ: typ}
		r.families[name] = f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: %s registered as %s and %s", name, f.typ, typ))
	}
	for _, s := range f.series {
		if labelsEqual(s.labels, labels) {
			return s
		}
	}
	s := mk()
	s.labels = append([]Label(nil), labels...)
	f.series = append(f.series, s)
	return s
}

func labelsEqual(a, b []Label) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Counter returns the counter series (name, labels), registering it on
// first use. Repeated calls with the same name and labels return the same
// *Counter, so callers may resolve series eagerly at construction time and
// hold the pointer on the hot path.
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.lookup(name, help, typeCounter, labels, func() *series {
		return &series{counter: &Counter{}}
	})
	return s.counter
}

// Gauge registers a callback gauge: fn is called at exposition time. The
// function must be safe to call from any goroutine. Re-registering the
// same (name, labels) replaces the callback.
func (r *Registry) Gauge(name, help string, fn func() float64, labels ...Label) {
	s := r.lookup(name, help, typeGauge, labels, func() *series { return &series{} })
	s.gauge = fn
}

// Histogram returns the histogram series (name, labels) with power-of-two
// bucket bounds 2^minExp … 2^maxExp (see NewHistogram), registering it on
// first use. As with Counter, repeated registration returns the same
// instance; a bound mismatch on an existing series panics.
func (r *Registry) Histogram(name, help string, minExp, maxExp int, labels ...Label) *Histogram {
	s := r.lookup(name, help, typeHistogram, labels, func() *series {
		return &series{hist: NewHistogram(minExp, maxExp)}
	})
	if s.hist.minExp != minExp || len(s.hist.counts) != maxExp-minExp+2 {
		panic(fmt.Sprintf("obs: %s re-registered with different bounds", name))
	}
	return s.hist
}

// snapshotFamilies copies the family list under the lock so exposition can
// render without blocking registration. Series values are read live (they
// are atomics / callbacks), which is exactly the Prometheus contract: a
// scrape is a point-in-time read, not a transaction.
func (r *Registry) snapshotFamilies() []*family {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	return fams
}
