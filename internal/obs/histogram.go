package obs

import (
	"math"
	"sync/atomic"
)

// Histogram is a fixed-bucket latency histogram with power-of-two bucket
// bounds: bucket i has upper bound 2^(minExp+i), plus a final +Inf bucket.
// The record path is lock-free and allocation-free — one Frexp to index
// the bucket, two atomic adds, and a CAS loop for the float sum — so it is
// safe (and cheap) to call from every worker goroutine concurrently.
//
// Power-of-two bounds trade resolution for speed: each bucket spans one
// octave (a 2× range), which is exactly the granularity latency SLOs care
// about, and makes bucket search a bit inspection instead of a binary
// search over arbitrary bounds.
type Histogram struct {
	minExp int
	// counts[i] is the number of observations in bucket i (non-cumulative);
	// the last slot is the +Inf overflow bucket. Exposition accumulates.
	counts []atomic.Uint64
	// sumBits holds math.Float64bits of the running sum, advanced by CAS.
	sumBits atomic.Uint64
}

// NewHistogram returns a histogram with bounds 2^minExp, 2^(minExp+1), …,
// 2^maxExp (inclusive), plus the +Inf bucket. For latencies in seconds,
// NewHistogram(-20, 5) spans ~1µs to 32s in 26 octave buckets. It panics
// if maxExp < minExp.
func NewHistogram(minExp, maxExp int) *Histogram {
	if maxExp < minExp {
		panic("obs: histogram needs maxExp ≥ minExp")
	}
	return &Histogram{
		minExp: minExp,
		counts: make([]atomic.Uint64, maxExp-minExp+2),
	}
}

// bucket returns the index of the smallest bound ≥ v (len(counts)-1 = +Inf
// for values above every bound). Values ≤ 0 land in bucket 0; NaN lands in
// the +Inf bucket.
func (h *Histogram) bucket(v float64) int {
	if v <= 0 {
		return 0
	}
	if math.IsNaN(v) || math.IsInf(v, 1) {
		return len(h.counts) - 1
	}
	// v = frac·2^exp with frac ∈ [0.5, 1): v ≤ 2^(exp-1) exactly when
	// frac == 0.5, otherwise 2^(exp-1) < v < 2^exp.
	frac, exp := math.Frexp(v)
	e := exp
	if frac == 0.5 {
		e = exp - 1
	}
	idx := e - h.minExp
	if idx < 0 {
		return 0
	}
	if idx >= len(h.counts)-1 {
		return len(h.counts) - 1
	}
	return idx
}

// Record adds one observation. Lock-free; ~0 allocations.
func (h *Histogram) Record(v float64) {
	h.counts[h.bucket(v)].Add(1)
	for {
		old := h.sumBits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// HistSnapshot is a point-in-time read of a histogram.
type HistSnapshot struct {
	// Bounds are the bucket upper bounds (exclusive of the +Inf bucket).
	Bounds []float64
	// Counts are per-bucket observation counts; len(Counts) ==
	// len(Bounds)+1, the last being the +Inf bucket.
	Counts []uint64
	// Count is the total number of observations: exactly the sum of Counts,
	// so a snapshot is always internally consistent even under concurrent
	// recording.
	Count uint64
	// Sum is the running sum of observed values.
	Sum float64
}

// Quantile estimates the q-quantile (0 ≤ q ≤ 1) of the observed values by
// linear interpolation inside the bucket holding the target rank — the
// standard Prometheus histogram_quantile estimate, here over the
// power-of-two bounds. The first bucket interpolates from 0; ranks landing
// in the +Inf bucket return the largest finite bound (the estimate is
// clamped, not extrapolated). An empty snapshot returns 0.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	if rank < 1 {
		// Ranks below the first observation clamp to it; without this,
		// q=0 would interpolate below the first bucket's lower bound.
		rank = 1
	}
	cum := 0.0
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		if i >= len(s.Bounds) {
			return s.Bounds[len(s.Bounds)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		return lo + (s.Bounds[i]-lo)*(rank-prev)/float64(c)
	}
	return s.Bounds[len(s.Bounds)-1]
}

// Snapshot reads the histogram. The total count is derived from the bucket
// counts (not tracked separately), so Count == Σ Counts by construction —
// concurrent recorders can at worst make the snapshot a few observations
// stale, never inconsistent.
func (h *Histogram) Snapshot() HistSnapshot {
	snap := HistSnapshot{
		Bounds: make([]float64, len(h.counts)-1),
		Counts: make([]uint64, len(h.counts)),
	}
	for i := range snap.Bounds {
		snap.Bounds[i] = math.Ldexp(1, h.minExp+i)
	}
	for i := range h.counts {
		c := h.counts[i].Load()
		snap.Counts[i] = c
		snap.Count += c
	}
	snap.Sum = math.Float64frombits(h.sumBits.Load())
	return snap
}
