package obs

import (
	"io"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4): families sorted by name, each with
// its # HELP and # TYPE comment lines, series in registration order,
// histograms expanded into cumulative _bucket lines plus _sum and _count.
// The writer is hand-rolled — no client library — so the output is fully
// under this package's control and golden-testable byte for byte.
func (r *Registry) WritePrometheus(w io.Writer) error {
	var b []byte
	for _, f := range r.snapshotFamilies() {
		b = b[:0]
		b = append(b, "# HELP "...)
		b = append(b, f.name...)
		b = append(b, ' ')
		b = appendEscapedHelp(b, f.help)
		b = append(b, "\n# TYPE "...)
		b = append(b, f.name...)
		b = append(b, ' ')
		b = append(b, string(f.typ)...)
		b = append(b, '\n')
		for _, s := range f.series {
			switch f.typ {
			case typeCounter:
				b = appendSample(b, f.name, "", s.labels, nil, float64(s.counter.Load()))
			case typeGauge:
				v := 0.0
				if s.gauge != nil {
					v = s.gauge()
				}
				b = appendSample(b, f.name, "", s.labels, nil, v)
			case typeHistogram:
				snap := s.hist.Snapshot()
				cum := uint64(0)
				for i, bound := range snap.Bounds {
					cum += snap.Counts[i]
					le := Label{Key: "le", Value: formatFloat(bound)}
					b = appendSample(b, f.name, "_bucket", s.labels, &le, float64(cum))
				}
				cum += snap.Counts[len(snap.Counts)-1]
				inf := Label{Key: "le", Value: "+Inf"}
				b = appendSample(b, f.name, "_bucket", s.labels, &inf, float64(cum))
				b = appendSample(b, f.name, "_sum", s.labels, nil, snap.Sum)
				b = appendSample(b, f.name, "_count", s.labels, nil, float64(snap.Count))
			}
		}
		if _, err := w.Write(b); err != nil {
			return err
		}
	}
	return nil
}

// appendSample appends one `name_suffix{labels} value` line. extra, when
// non-nil, is appended after the series labels (the histogram `le` label).
func appendSample(b []byte, name, suffix string, labels []Label, extra *Label, v float64) []byte {
	b = append(b, name...)
	b = append(b, suffix...)
	if len(labels) > 0 || extra != nil {
		b = append(b, '{')
		for i, l := range labels {
			if i > 0 {
				b = append(b, ',')
			}
			b = appendLabel(b, l)
		}
		if extra != nil {
			if len(labels) > 0 {
				b = append(b, ',')
			}
			b = appendLabel(b, *extra)
		}
		b = append(b, '}')
	}
	b = append(b, ' ')
	b = append(b, formatFloat(v)...)
	return append(b, '\n')
}

func appendLabel(b []byte, l Label) []byte {
	b = append(b, l.Key...)
	b = append(b, `="`...)
	b = appendEscapedValue(b, l.Value)
	return append(b, '"')
}

// formatFloat renders a sample value the way Prometheus expects: shortest
// round-trip representation, integers without an exponent.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// appendEscapedHelp escapes a HELP string: backslash and newline.
func appendEscapedHelp(b []byte, s string) []byte {
	if !strings.ContainsAny(s, "\\\n") {
		return append(b, s...)
	}
	for _, r := range s {
		switch r {
		case '\\':
			b = append(b, `\\`...)
		case '\n':
			b = append(b, `\n`...)
		default:
			b = append(b, string(r)...)
		}
	}
	return b
}

// appendEscapedValue escapes a label value: backslash, double-quote, and
// newline.
func appendEscapedValue(b []byte, s string) []byte {
	if !strings.ContainsAny(s, "\\\"\n") {
		return append(b, s...)
	}
	for _, r := range s {
		switch r {
		case '\\':
			b = append(b, `\\`...)
		case '"':
			b = append(b, `\"`...)
		case '\n':
			b = append(b, `\n`...)
		default:
			b = append(b, string(r)...)
		}
	}
	return b
}
