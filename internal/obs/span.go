package obs

import (
	"strconv"
	"time"
)

// maxSpanStages bounds a span's stage list so Span can be a fixed-size
// value type: spans live on the caller's stack and never heap-allocate.
const maxSpanStages = 8

// Stage is one named interval inside a span.
type Stage struct {
	Name string
	D    time.Duration
}

// Span is a zero-allocation stopwatch for a request's per-stage breakdown:
// start one with StartSpan, call Mark at each stage boundary, and read the
// stages back for histograms, Server-Timing headers, or structured logs.
// Spans are plain values — copy them, embed them, keep them on the stack.
// A span must not be shared across goroutines; stages measured elsewhere
// are merged in with Observe.
type Span struct {
	begin  time.Time
	mark   time.Time
	n      int
	stages [maxSpanStages]Stage
}

// StartSpan begins a span at the current time.
func StartSpan() Span {
	now := time.Now()
	return Span{begin: now, mark: now}
}

// Mark closes the stage running since the previous mark (or the span
// start), records it under name, and returns its duration.
func (s *Span) Mark(name string) time.Duration {
	now := time.Now()
	d := now.Sub(s.mark)
	s.mark = now
	s.Observe(name, d)
	return d
}

// Observe merges an externally measured stage into the span — e.g. a
// queue wait or simulation time measured by a worker goroutine. Stages
// beyond the span's fixed capacity are dropped.
func (s *Span) Observe(name string, d time.Duration) {
	if s.n < len(s.stages) {
		s.stages[s.n] = Stage{Name: name, D: d}
		s.n++
	}
}

// Total returns the time elapsed since the span started.
func (s *Span) Total() time.Duration { return time.Since(s.begin) }

// Begin returns the span's start time — the anchor a trace's relative
// offsets are measured from.
func (s *Span) Begin() time.Time { return s.begin }

// Stages returns the recorded stages in order. The slice aliases the
// span's internal array; it is valid as long as the span is.
func (s *Span) Stages() []Stage { return s.stages[:s.n] }

// AppendServerTiming appends one Server-Timing metric — `name;dur=1.234`,
// duration in milliseconds per the header's spec — to b, preceded by ", "
// when b is non-empty. Building the header value with it costs one
// allocation for the caller's buffer, never per metric.
func AppendServerTiming(b []byte, name string, d time.Duration) []byte {
	if len(b) > 0 {
		b = append(b, ',', ' ')
	}
	b = append(b, name...)
	b = append(b, ";dur="...)
	return strconv.AppendFloat(b, float64(d)/float64(time.Millisecond), 'f', 3, 64)
}
