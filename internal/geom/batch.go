package geom

import "math"

// This file holds the batch distance kernels: DistBatch fills a block of
// distances from one origin in a single call, bit-identical to the per-call
// Dist loop, with the per-point interface dispatch and math-call overhead
// hoisted out. The scan consumers (spatial.Grid cell scans, the grid-Borůvka
// candidate rounds, the ρ* corner-bound scan) feed it contiguous point
// blocks instead of calling Dist once per point.
//
// Bit-identity is the contract, not an aspiration: every kernel either
// performs exactly the float64 operations the scalar path performs, or
// replays the platform math routine's instruction sequence on a restricted
// domain and is verified against the live routine at init (see batchProbe).
// Inputs outside a kernel's verified domain — NaN or Inf coordinates,
// degenerate ratios — take the scalar reference path point by point, so
// DistBatch equals the per-call loop on every input, always.

// DistBatch sets out[i] = m.Dist(p, pts[i]) for every i, producing exactly
// the float64 the per-call loop produces (the property fuzz in batch_test.go
// cross-checks every metric family). out must have at least len(pts)
// elements; the same backing array may be reused across calls. A nil metric
// defaults to ℓ2.
func DistBatch(m Metric, p Point, pts []Point, out []float64) {
	if len(pts) == 0 {
		return
	}
	out = out[:len(pts)]
	switch mm := MetricOrL2(m).(type) {
	case l2Metric:
		distBatchL2(p, pts, out)
	case l1Metric:
		distBatchL1(p, pts, out)
	case linfMetric:
		distBatchLInf(p, pts, out)
	case lpMetric:
		mm.distBatch(p, pts, out)
	default:
		for i, q := range pts {
			out[i] = m.Dist(p, q)
		}
	}
}

// distBatchL1 is the ℓ1 kernel: Abs(dx)+Abs(dy) is the entire scalar
// implementation (Point.DistL1), so the straight-line form is bit-identical
// on every input including NaN and Inf.
func distBatchL1(p Point, pts []Point, out []float64) {
	out = out[:len(pts)]
	px, py := p.X, p.Y
	for i, q := range pts {
		out[i] = math.Abs(px-q.X) + math.Abs(py-q.Y)
	}
}

// distBatchLInf is the ℓ∞ kernel. math.Max's special cases (NaN, signed
// zeros) only diverge from a plain comparison when a coordinate difference
// is NaN, which the dx-dx guard routes to the reference call.
func distBatchLInf(p Point, pts []Point, out []float64) {
	out = out[:len(pts)]
	px, py := p.X, p.Y
	for i, q := range pts {
		dx, dy := px-q.X, py-q.Y
		if dx-dx != 0 || dy-dy != 0 { // NaN or ±Inf difference
			out[i] = LInf.Dist(p, q)
			continue
		}
		ax, ay := math.Abs(dx), math.Abs(dy)
		if ay > ax {
			ax = ay
		}
		out[i] = ax
	}
}

// distBatchL2 is the Euclidean kernel: max·√(1+(min/max)²), the exact
// operation sequence of this platform's math.Hypot fast path (verified at
// init — hypotBatchOK). math.Sqrt compiles to the hardware instruction, so
// the kernel is call-free. Non-finite differences take the reference call.
func distBatchL2(p Point, pts []Point, out []float64) {
	out = out[:len(pts)]
	if !hypotBatchOK {
		for i, q := range pts {
			out[i] = p.Dist(q)
		}
		return
	}
	px, py := p.X, p.Y
	for i, q := range pts {
		dx, dy := px-q.X, py-q.Y
		if dx-dx != 0 || dy-dy != 0 { // NaN or ±Inf difference
			out[i] = math.Hypot(dx, dy)
			continue
		}
		hi, lo := math.Abs(dx), math.Abs(dy)
		if lo > hi {
			hi, lo = lo, hi
		}
		if hi == 0 {
			out[i] = 0
			continue
		}
		t := lo / hi
		out[i] = hi * math.Sqrt(1+t*t)
	}
}

// BatchAccelerated reports whether DistBatch runs a kernel materially
// faster than the per-call Dist loop for metric m. True only for the ℓp
// integer-exponent family, where staging the Log/Exp replicas is worth
// ≥ 2×; the ℓ1/ℓ2/ℓ∞ kernels only shave call overhead, which a consumer
// with a good inline scan (contiguous points, no map lookups) already
// avoids. Scan consumers use this to pick between DistBatch and their
// per-point loop — the two produce identical bits, so this is purely a
// dispatch hint.
func BatchAccelerated(m Metric) bool {
	mm, ok := MetricOrL2(m).(lpMetric)
	return ok && mm.ip != 0 && mm.invP <= 0.5 && lpBatchOK
}

// lpChunk is the stage width of the ℓp batch kernel: small enough that the
// stage buffers live on the stack and in L1, large enough to amortize the
// per-chunk bookkeeping and keep the divider and FMA units fed with
// independent work.
const lpChunk = 64

// distBatch is the ℓp kernel. For integer exponents it runs the whole Norm
// fast path — the mulPow power, then powFrac's Exp(y·Log(x)) with the
// platform Log/Exp replicas below — as staged, call-free, branch-light
// chunk loops: stage A extracts the component ratios (and routes NaN/Inf/
// zero/sub-mulSafe lanes to the reference), stage B raises to the integer
// power, stage C computes the logarithm with a branchless Frexp step, and
// stage D the exponential (one loop per platform exp flavor). Staging is
// where the ≥ 2× throughput comes from: the scalar path pays four
// non-inlined calls and several data-dependent branches per point, while
// the stages let the out-of-order core overlap the two divisions and the
// polynomial chains of neighboring points. Fractional exponents keep the
// per-point Norm call (the math.Pow inside dominates; there is nothing to
// batch away).
func (m lpMetric) distBatch(p Point, pts []Point, out []float64) {
	// powFrac branches on invP > ½ only for p < 2, which no integer fast
	// path reaches (p = 2 canonicalizes to L2); guard anyway so an
	// unexpected shape degrades to the reference, never to a wrong bit.
	if m.ip == 0 || m.invP > 0.5 || !lpBatchOK {
		for i, q := range pts {
			out[i] = m.Norm(Point{X: p.X - q.X, Y: p.Y - q.Y})
		}
		return
	}
	var hiB, tB, argB [lpChunk]float64
	var slow [lpChunk]int32
	px, py := p.X, p.Y
	ip, invP := m.ip, m.invP
	for base := 0; base < len(pts); base += lpChunk {
		n := len(pts) - base
		if n > lpChunk {
			n = lpChunk
		}
		blk := pts[base : base+n]
		o := out[base : base+n : base+n]
		hb, tb, ab := hiB[:n], tB[:n], argB[:n]
		ns := 0
		// Stage A: |Δ| ratios. A lane with a zero, NaN, or Inf component,
		// or a ratio below the mulSafe fast-path floor, is parked on the
		// slow list with neutral values and resolved by the reference call
		// in stage E.
		for i, q := range blk {
			dx, dy := px-q.X, py-q.Y
			ax, ay := math.Abs(dx), math.Abs(dy)
			hi, lo := max(ax, ay), min(ax, ay)
			t := lo / hi
			if !(t >= mulSafe) || hi-hi != 0 {
				// NaN t covers hi == 0 (0/0) and NaN components; hi-hi
				// catches Inf.
				slow[ns] = int32(i)
				ns++
				hi, t = 1, 0.5
			}
			hb[i], tb[i] = hi, t
		}
		// Stage B: tp = mulPow(t, ip) in mulPow's exact multiply-and-square
		// bit order, unrolled for the common small exponents. Exponents
		// large enough that 1+tp can round to 1 (ip ≥ 8 at t ≥ mulSafe)
		// take the guarded generic loop; hi is the exact result there, and
		// parking the lane lets the reference call reproduce it.
		switch {
		case ip == 3:
			for i := range tb {
				t := tb[i]
				tt := t * t
				tb[i] = t * tt
			}
		case ip == 4:
			for i := range tb {
				t := tb[i]
				tt := t * t
				tb[i] = tt * tt
			}
		case ip <= 7:
			// 1+tp cannot round to 1: tp ≥ mulSafe⁷ = 2⁻⁴⁹ > 2⁻⁵³·½.
			for i := range tb {
				tb[i] = mulPow(tb[i], ip)
			}
		default:
			for i := range tb {
				tp := mulPow(tb[i], ip)
				if tp == 0 || 1+tp == 1 {
					slow[ns] = int32(i)
					ns++
					tp = 0.125
				}
				tb[i] = tp
			}
		}
		// Stage C: arg = invP · Log(1+tp), the platform log's instruction
		// sequence on (1, 2] with the Frexp step reduced to a branchless
		// select (x ≤ √2 keeps f = x with k = 0; above it f = x/2, k = 1 —
		// both scalings exact). Matches logShort, which batchProbe verifies
		// against math.Log.
		for i := range tb {
			x := 1 + tb[i]
			var kb uint64
			if !(x*0.5 <= logHSqrt2) {
				kb = 1
			}
			f := x*math.Float64frombits(0x3FF0000000000000-kb<<52) - 1
			k := float64(kb)
			s := f / (2 + f)
			s2 := s * s
			s4 := s2 * s2
			t1 := s2 * (logL1 + s4*(logL3+s4*(logL5+s4*logL7)))
			t2 := s4 * (logL2 + s4*(logL4+s4*logL6))
			r := t1 + t2
			hfsq := 0.5 * f * f
			ab[i] = invP * (k*logLn2Hi - ((hfsq - (s*(r+hfsq) + k*logLn2Lo)) - f))
		}
		// Stage D: out = hi · Exp(arg), one loop per platform exp flavor
		// (fused vs separate multiply-add — see expShort, the verified
		// scalar twin of these bodies).
		if expUseFMA {
			for i := range o {
				x := ab[i]
				kf := (expLog2e*x + rneMagic) - rneMagic
				x = math.FMA(-kf, expLn2U, x)
				x = math.FMA(-kf, expLn2L, x)
				x *= 0.0625
				pl := math.FMA(expC9, x, expC8)
				pl = math.FMA(pl, x, expC7)
				pl = math.FMA(pl, x, expC6)
				pl = math.FMA(pl, x, expC5)
				pl = math.FMA(pl, x, expC4)
				pl = math.FMA(pl, x, 0.5)
				pl = math.FMA(pl, x, 1)
				u := x * pl
				u = u * (u + 2)
				u = u * (u + 2)
				u = u * (u + 2)
				u = math.FMA(u, u+2, 1)
				o[i] = hb[i] * (u * math.Float64frombits(uint64(int(kf)+1023)<<52))
			}
		} else {
			for i := range o {
				x := ab[i]
				kf := (expLog2e*x + rneMagic) - rneMagic
				x -= kf * expLn2U
				x -= kf * expLn2L
				x *= 0.0625
				pl := expC9*x + expC8
				pl = pl*x + expC7
				pl = pl*x + expC6
				pl = pl*x + expC5
				pl = pl*x + expC4
				pl = pl*x + 0.5
				pl = pl*x + 1
				u := x * pl
				u = u * (u + 2)
				u = u * (u + 2)
				u = u * (u + 2)
				u = u*(u+2) + 1
				o[i] = hb[i] * (u * math.Float64frombits(uint64(int(kf)+1023)<<52))
			}
		}
		// Stage E: parked lanes get the reference result.
		for _, i := range slow[:ns] {
			q := blk[i]
			o[i] = m.Norm(Point{X: px - q.X, Y: py - q.Y})
		}
	}
}

// The constants below are the exact constants of this platform's math.Log
// and math.Exp implementations (FDLIBM's log; Shibata's SIMD-oriented exp
// as shipped in the Go runtime). They exist so the restricted-domain
// replicas replay the same instruction sequences bit for bit; batchProbe
// verifies that claim at init against the live functions and disables the
// fast paths on any platform where it does not hold.
const (
	logHSqrt2 = 7.07106781186547524401e-01 // √2/2
	logLn2Hi  = 6.93147180369123816490e-01
	logLn2Lo  = 1.90821492927058770002e-10
	logL1     = 6.666666666666735130e-01
	logL2     = 3.999999999940941908e-01
	logL3     = 2.857142874366239149e-01
	logL4     = 2.222219843214978396e-01
	logL5     = 1.818357216161805012e-01
	logL6     = 1.531383769920937332e-01
	logL7     = 1.479819860511658591e-01

	expLog2e = 1.4426950408889634073599246810018920
	expLn2U  = 0.69314718055966295651160180568695068359375
	expLn2L  = 0.28235290563031577122588448175013436025525412068e-12
	expC9    = 2.4801587301587301587e-5
	expC8    = 1.9841269841269841270e-4
	expC7    = 1.3888888888888888889e-3
	expC6    = 8.3333333333333333333e-3
	expC5    = 4.1666666666666666667e-2
	expC4    = 1.6666666666666666667e-1

	// rneMagic rounds |v| < 2⁵¹ to the nearest integer (ties to even) by
	// add-subtract: v+rneMagic lands where the float64 ulp is exactly 1.
	rneMagic = 1<<52 + 1<<51
)

// logShort replays math.Log on the restricted domain x ∈ (1, 2]: the Frexp
// collapses to one exact comparison (x ≤ √2 keeps f = x with k = 0, above
// it f = x/2 with k = 1 — both scalings exact), and the negative/zero/Inf
// special cases cannot occur. Guarded by logBatchOK via batchProbe.
func logShort(x float64) float64 {
	var f, k float64
	if x*0.5 <= logHSqrt2 {
		f = x - 1
		k = 0
	} else {
		f = x*0.5 - 1
		k = 1
	}
	s := f / (2 + f)
	s2 := s * s
	s4 := s2 * s2
	t1 := s2 * (logL1 + s4*(logL3+s4*(logL5+s4*logL7)))
	t2 := s4 * (logL2 + s4*(logL4+s4*logL6))
	r := t1 + t2
	hfsq := 0.5 * f * f
	return k*logLn2Hi - ((hfsq - (s*(r+hfsq) + k*logLn2Lo)) - f)
}

// expUseFMA selects between the two instruction sequences of the platform
// exp — fused multiply-add or separate multiply/add — mirroring the runtime
// CPU dispatch. batchProbe picks whichever replica matches the live
// math.Exp, so the selection can never be wrong, only conservative.
var expUseFMA bool

// expShort replays math.Exp on the restricted domain 0 < x ≤ ln 2 (the
// powFrac argument range for fractional exponents ≤ ½): no overflow, no
// denormal rescale, and the round-to-nearest exponent k ∈ {0, 1}. Guarded
// by expBatchOK via batchProbe.
func expShort(x float64) float64 {
	kf := (expLog2e*x + rneMagic) - rneMagic // round to nearest, ties to even
	if expUseFMA {
		x = math.FMA(-kf, expLn2U, x)
		x = math.FMA(-kf, expLn2L, x)
		x *= 0.0625
		p := math.FMA(expC9, x, expC8)
		p = math.FMA(p, x, expC7)
		p = math.FMA(p, x, expC6)
		p = math.FMA(p, x, expC5)
		p = math.FMA(p, x, expC4)
		p = math.FMA(p, x, 0.5)
		p = math.FMA(p, x, 1)
		u := x * p
		u = u * (u + 2)
		u = u * (u + 2)
		u = u * (u + 2)
		u = math.FMA(u, u+2, 1)
		return scaleExp2(u, int(kf))
	}
	x -= kf * expLn2U
	x -= kf * expLn2L
	x *= 0.0625
	p := expC9*x + expC8
	p = p*x + expC7
	p = p*x + expC6
	p = p*x + expC5
	p = p*x + expC4
	p = p*x + 0.5
	p = p*x + 1
	u := x * p
	u = u * (u + 2)
	u = u * (u + 2)
	u = u * (u + 2)
	u = u*(u+2) + 1
	return scaleExp2(u, int(kf))
}

// scaleExp2 multiplies by 2^k exactly the way the platform exp's final
// scaling does — one multiply by the bit-constructed power of two. The
// restricted domain keeps k ∈ {0, 1}, far from the denormal and overflow
// rescues.
func scaleExp2(u float64, k int) float64 {
	return u * math.Float64frombits(uint64(k+1023)<<52)
}

// Kernel enables, set once by batchProbe before any DistBatch call. A false
// flag means "use the per-point reference on this path": slower, never
// wrong.
var hypotBatchOK, lpBatchOK bool

func init() { batchProbe() }

// batchProbe verifies each replica against the live math routine over a
// deterministic sweep of its restricted domain — including the branch
// boundaries (√2 for log, the k = 0/1 split for exp, equal components for
// hypot) — and enables the corresponding kernels only on exact agreement.
// The sweep uses a splitmix-style generator so it covers ulp-scale
// neighborhoods without depending on math/rand.
func batchProbe() {
	next := uint64(0x9E3779B97F4A7C15)
	rnd := func() float64 { // uniform in [0, 1)
		next += 0x9E3779B97F4A7C15
		z := next
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		return float64((z^(z>>31))>>11) / (1 << 53)
	}

	// Hypot: max·√(1+(min/max)²) over magnitude-spread finite pairs.
	hypotBatchOK = true
	for i := 0; i < 2048 && hypotBatchOK; i++ {
		a := (rnd() - 0.5) * math.Exp2(float64(int(rnd()*600))-300)
		b := (rnd() - 0.5) * math.Exp2(float64(int(rnd()*600))-300)
		if i%7 == 0 {
			b = a // equal-component branch
		}
		hi, lo := math.Abs(a), math.Abs(b)
		if lo > hi {
			hi, lo = lo, hi
		}
		var got float64
		if hi != 0 {
			t := lo / hi
			got = hi * math.Sqrt(1+t*t)
		}
		if math.Float64bits(got) != math.Float64bits(math.Hypot(a, b)) {
			hypotBatchOK = false
		}
	}

	// Log on (1, 2] and Exp on (0, ln 2], jointly as powFrac and alone.
	// Exp tries the FMA sequence first, then the plain one; lp batching
	// stays enabled only if one of them matches everywhere.
	logOK := true
	for i := 0; i < 2048 && logOK; i++ {
		x := 1 + rnd()
		switch i {
		case 0:
			x = math.Sqrt2 // the Frexp branch boundary
		case 1:
			x = 2
		case 2:
			x = 1 + 0x1p-52
		case 3:
			x = math.Nextafter(math.Sqrt2, 2)
		}
		if math.Float64bits(logShort(x)) != math.Float64bits(math.Log(x)) {
			logOK = false
		}
	}
	expOK := false
	for _, fma := range []bool{true, false} {
		expUseFMA = fma
		ok := true
		for i := 0; i < 2048 && ok; i++ {
			x := rnd() * math.Ln2
			switch i {
			case 0:
				x = math.Ln2
			case 1:
				x = 0x1p-60 // deep k = 0 territory
			case 2:
				x = 0.5 * math.Ln2 // near the k rounding boundary
			}
			if x <= 0 {
				continue
			}
			if math.Float64bits(expShort(x)) != math.Float64bits(math.Exp(x)) {
				ok = false
			}
		}
		if ok {
			expOK = true
			break
		}
	}
	lpBatchOK = logOK && expOK
}
