package geom

import (
	"math"
	"testing"
)

// fakeMetric wraps a built-in norm while hiding its concrete type, forcing
// UnitBallArea and CircumradiusL2 onto their numeric fallback paths.
type fakeMetric struct{ Metric }

func (f fakeMetric) Name() string { return "fake-" + f.Metric.Name() }

func TestUnitBallAreaClosedForms(t *testing.T) {
	cases := []struct {
		name string
		want float64
	}{
		{"l1", 2},
		{"l2", math.Pi},
		{"linf", 4},
		{"lp:2", math.Pi},        // normalizes to ℓ2
		{"lp:1.000001", 2},       // → ℓ1 area as p→1
		{"lp:4", 3.7081493546},   // 4Γ(5/4)²/Γ(3/2)
		{"lp:1.5", 2.7378536239}, // 4Γ(5/3)²/Γ(7/3)
	}
	for _, c := range cases {
		m, err := ParseMetric(c.name)
		if err != nil {
			t.Fatal(err)
		}
		if got := UnitBallArea(m); math.Abs(got-c.want) > 1e-5 {
			t.Errorf("UnitBallArea(%s) = %v, want %v", c.name, got, c.want)
		}
	}
	if got := UnitBallArea(nil); got != math.Pi {
		t.Errorf("UnitBallArea(nil) = %v, want π", got)
	}
}

// The numeric fallback must agree with the closed forms for every built-in,
// since any Metric implementation outside this package lands on it.
func TestUnitBallAreaNumericFallback(t *testing.T) {
	for _, name := range []string{"l1", "l2", "linf", "lp:3", "lp:1.5"} {
		m, err := ParseMetric(name)
		if err != nil {
			t.Fatal(err)
		}
		want := UnitBallArea(m)
		got := UnitBallArea(fakeMetric{m})
		if math.Abs(got-want)/want > 1e-3 {
			t.Errorf("numeric UnitBallArea(%s) = %v, closed form %v", name, got, want)
		}
	}
}

func TestCircumradiusL2(t *testing.T) {
	cases := []struct {
		name string
		want float64
	}{
		{"l1", 1},
		{"l2", 1},
		{"linf", math.Sqrt2},
		{"lp:1.5", 1},
		{"lp:2", 1},
		{"lp:4", math.Exp2(0.25)}, // 2^(1/2−1/4)
	}
	for _, c := range cases {
		m, err := ParseMetric(c.name)
		if err != nil {
			t.Fatal(err)
		}
		if got := CircumradiusL2(m); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("CircumradiusL2(%s) = %v, want %v", c.name, got, c.want)
		}
	}
	if got := CircumradiusL2(nil); got != 1 {
		t.Errorf("CircumradiusL2(nil) = %v, want 1", got)
	}
	// The numeric fallback must never undershoot (coverage arguments depend
	// on it) and must stay within a fraction of a percent of the truth.
	for _, name := range []string{"l1", "linf", "lp:6"} {
		m, _ := ParseMetric(name)
		want := CircumradiusL2(m)
		got := CircumradiusL2(fakeMetric{m})
		if got < want-1e-12 {
			t.Errorf("numeric CircumradiusL2(%s) = %v undershoots %v", name, got, want)
		}
		if got > want*1.01 {
			t.Errorf("numeric CircumradiusL2(%s) = %v overshoots %v by >1%%", name, got, want)
		}
	}
	// Sanity: the circumradius bounds every sampled boundary point.
	for _, name := range []string{"l1", "linf", "lp:3"} {
		m, _ := ParseMetric(name)
		r := CircumradiusL2(m)
		for i := 0; i < 360; i++ {
			theta := float64(i) * math.Pi / 180
			v := Pt(math.Cos(theta), math.Sin(theta))
			bd := v.Scale(1 / m.Norm(v)) // on the metric unit sphere
			if bd.Norm() > r+1e-12 {
				t.Fatalf("%s: boundary point %v at ℓ2 radius %v exceeds circumradius %v",
					name, bd, bd.Norm(), r)
			}
		}
	}
}
