package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRectNormalizes(t *testing.T) {
	r := NewRect(Pt(3, 4), Pt(1, 2))
	if r.Min != Pt(1, 2) || r.Max != Pt(3, 4) {
		t.Errorf("NewRect = %v", r)
	}
}

func TestRectBasics(t *testing.T) {
	r := RectWH(Pt(0, 0), 4, 3)
	if r.Width() != 4 || r.Height() != 3 {
		t.Errorf("dims = %v x %v", r.Width(), r.Height())
	}
	if r.Area() != 12 {
		t.Errorf("Area = %v", r.Area())
	}
	if !r.Center().Eq(Pt(2, 1.5)) {
		t.Errorf("Center = %v", r.Center())
	}
	if math.Abs(r.Diam()-5) > 1e-12 {
		t.Errorf("Diam = %v", r.Diam())
	}
}

func TestRectContains(t *testing.T) {
	r := RectWH(Pt(0, 0), 2, 2)
	cases := []struct {
		p    Point
		want bool
	}{
		{Pt(1, 1), true},
		{Pt(0, 0), true},
		{Pt(2, 2), true},
		{Pt(2+1e-12, 2), true}, // Eps slack
		{Pt(2.1, 1), false},
		{Pt(-0.1, 1), false},
	}
	for _, c := range cases {
		if got := r.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestRectContainsStrict(t *testing.T) {
	r := RectWH(Pt(0, 0), 2, 2)
	if !r.ContainsStrict(Pt(0, 0)) {
		t.Error("strict should include min corner")
	}
	if r.ContainsStrict(Pt(2, 1)) {
		t.Error("strict should exclude max edge")
	}
}

func TestClampDist(t *testing.T) {
	r := RectWH(Pt(0, 0), 2, 2)
	if got := r.Clamp(Pt(5, 1)); !got.Eq(Pt(2, 1)) {
		t.Errorf("Clamp = %v", got)
	}
	if got := r.Clamp(Pt(1, 1)); !got.Eq(Pt(1, 1)) {
		t.Errorf("Clamp interior = %v", got)
	}
	if d := r.DistTo(Pt(5, 1)); math.Abs(d-3) > 1e-12 {
		t.Errorf("DistTo = %v", d)
	}
	if d := r.DistTo(Pt(1, 1)); d != 0 {
		t.Errorf("DistTo interior = %v", d)
	}
}

func TestIntersects(t *testing.T) {
	a := RectWH(Pt(0, 0), 2, 2)
	b := RectWH(Pt(1, 1), 2, 2)
	c := RectWH(Pt(3, 3), 1, 1)
	if !a.Intersects(b) {
		t.Error("a should intersect b")
	}
	if a.Intersects(c) {
		t.Error("a should not intersect c")
	}
	// Touching edges count as intersecting (closed rects).
	d := RectWH(Pt(2, 0), 1, 1)
	if !a.Intersects(d) {
		t.Error("touching rects should intersect")
	}
}

func TestInset(t *testing.T) {
	r := RectWH(Pt(0, 0), 10, 10)
	in := r.Inset(2)
	if !in.Min.Eq(Pt(2, 2)) || !in.Max.Eq(Pt(8, 8)) {
		t.Errorf("Inset = %v", in)
	}
	// Over-inset collapses to center.
	tiny := r.Inset(6)
	if !tiny.Min.Eq(Pt(5, 5)) || !tiny.Max.Eq(Pt(5, 5)) {
		t.Errorf("over-Inset = %v", tiny)
	}
}

func TestCorners(t *testing.T) {
	r := RectWH(Pt(0, 0), 2, 3)
	c := r.Corners()
	want := [4]Point{Pt(0, 0), Pt(2, 0), Pt(2, 3), Pt(0, 3)}
	if c != want {
		t.Errorf("Corners = %v", c)
	}
}

func TestSplitLongestSide(t *testing.T) {
	r := RectWH(Pt(0, 0), 4, 2)
	a, b := r.SplitLongestSide()
	if a.Width() != 2 || b.Width() != 2 || a.Height() != 2 {
		t.Errorf("horizontal split: %v %v", a, b)
	}
	tall := RectWH(Pt(0, 0), 2, 4)
	a, b = tall.SplitLongestSide()
	if a.Height() != 2 || b.Height() != 2 {
		t.Errorf("vertical split: %v %v", a, b)
	}
}

func TestQuadrants(t *testing.T) {
	r := RectWH(Pt(0, 0), 4, 4)
	q := r.Quadrants()
	if !q[0].Center().Eq(Pt(1, 1)) || !q[1].Center().Eq(Pt(3, 1)) ||
		!q[2].Center().Eq(Pt(3, 3)) || !q[3].Center().Eq(Pt(1, 3)) {
		t.Errorf("Quadrants = %v", q)
	}
	var area float64
	for _, s := range q {
		area += s.Area()
	}
	if math.Abs(area-r.Area()) > 1e-9 {
		t.Errorf("quadrant areas sum to %v, want %v", area, r.Area())
	}
}

func TestHStrips(t *testing.T) {
	r := RectWH(Pt(0, 0), 4, 3)
	strips := r.HStrips(3)
	if len(strips) != 3 {
		t.Fatalf("len = %d", len(strips))
	}
	for i, s := range strips {
		if math.Abs(s.Height()-1) > 1e-12 {
			t.Errorf("strip %d height = %v", i, s.Height())
		}
	}
	if strips[2].Max.Y != 3 {
		t.Errorf("top strip must reach r.Max.Y, got %v", strips[2].Max.Y)
	}
}

func TestHStripsPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("HStrips(0) should panic")
		}
	}()
	RectWH(Pt(0, 0), 1, 1).HStrips(0)
}

func TestBoundingRect(t *testing.T) {
	pts := []Point{Pt(1, 5), Pt(-2, 3), Pt(4, -1)}
	r := BoundingRect(pts)
	if !r.Min.Eq(Pt(-2, -1)) || !r.Max.Eq(Pt(4, 5)) {
		t.Errorf("BoundingRect = %v", r)
	}
}

// Property: Clamp output is always contained in the rectangle and is a
// no-op for interior points.
func TestClampProperty(t *testing.T) {
	f := func(px, py float64) bool {
		r := RectWH(Pt(-5, -5), 10, 10)
		p := clampPt(px, py)
		c := r.Clamp(p)
		if !r.Contains(c) {
			return false
		}
		if r.Contains(p) && !c.Eq(p) {
			return false
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: HStrips tile the rectangle — every random interior point lies in
// exactly one strip (strict containment).
func TestHStripsTileProperty(t *testing.T) {
	r := RectWH(Pt(0, 0), 7, 5)
	strips := r.HStrips(4)
	f := func(px, py float64) bool {
		p := Pt(math.Mod(math.Abs(px), 7), math.Mod(math.Abs(py), 5))
		n := 0
		for _, s := range strips {
			if s.ContainsStrict(p) {
				n++
			}
		}
		return n == 1
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}
