package geom

import (
	"math"
	"math/rand"
	"testing"
)

// gridScanInstances generates the point-set shapes the grid scans must
// handle: uniform spreads, tight clusters with outliers, near-collinear
// sets, and duplicates.
func gridScanInstances(rng *rand.Rand) [][]Point {
	uniform := make([]Point, 300)
	for i := range uniform {
		uniform[i] = Pt(rng.Float64()*100-50, rng.Float64()*100-50)
	}
	clustered := make([]Point, 0, 300)
	for c := 0; c < 5; c++ {
		cx, cy := rng.Float64()*1000, rng.Float64()*1000
		for i := 0; i < 58; i++ {
			clustered = append(clustered, Pt(cx+rng.Float64(), cy+rng.Float64()))
		}
	}
	clustered = append(clustered, Pt(-5000, 7000), Pt(9000, -3000)) // far outliers
	line := make([]Point, 200)
	for i := range line {
		line[i] = Pt(float64(i)*3.7, rng.Float64()*0.01)
	}
	dup := make([]Point, 100)
	for i := range dup {
		dup[i] = Pt(float64(i%7), float64(i%5))
	}
	small := []Point{Pt(0, 0), Pt(1, 2), Pt(-3, 1)}
	return [][]Point{uniform, clustered, line, dup, small, nil}
}

// The grid-accelerated scans must return exactly — bit for bit — what the
// dense scans return, under every metric family the suite covers.
func TestGridScansMatchBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, m := range builtins(t) {
		for trial, pts := range gridScanInstances(rng) {
			if got, want := MinPairDistGridIn(m, pts), MinPairDistIn(m, pts); got != want {
				t.Errorf("%s instance %d: MinPairDistGridIn = %x, dense = %x", m.Name(), trial, got, want)
			}
			o := Pt(rng.Float64()*10-5, rng.Float64()*10-5)
			if got, want := MaxDistFromGridIn(m, o, pts), MaxDistFromIn(m, o, pts); got != want {
				t.Errorf("%s instance %d: MaxDistFromGridIn = %x, dense = %x", m.Name(), trial, got, want)
			}
		}
	}
}

// Fuzz small random sets across scales so the certify/rescan logic of the
// closest-pair pass and the corner-bound pruning see many cell geometries.
func TestGridScansFuzzed(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for _, m := range builtins(t) {
		for i := 0; i < 150; i++ {
			n := gridScanMinN + rng.Intn(120)
			scale := math.Pow(10, float64(rng.Intn(7)-3))
			pts := make([]Point, n)
			for j := range pts {
				pts[j] = Pt((rng.Float64()-0.5)*scale, (rng.Float64()-0.5)*scale)
			}
			if rng.Intn(3) == 0 {
				pts[n-1] = pts[rng.Intn(n-1)] // exact duplicate: min pair 0
			}
			if got, want := MinPairDistGridIn(m, pts), MinPairDistIn(m, pts); got != want {
				t.Fatalf("%s n=%d scale=%g: MinPairDistGridIn = %x, dense = %x", m.Name(), n, scale, got, want)
			}
			o := randPt(rng)
			if got, want := MaxDistFromGridIn(m, o, pts), MaxDistFromIn(m, o, pts); got != want {
				t.Fatalf("%s n=%d scale=%g: MaxDistFromGridIn = %x, dense = %x", m.Name(), n, scale, got, want)
			}
		}
	}
}

func TestGridScansDegenerate(t *testing.T) {
	same := make([]Point, 100)
	for i := range same {
		same[i] = Pt(3, 4)
	}
	if got := MinPairDistGridIn(nil, same); got != 0 {
		t.Errorf("coincident MinPairDistGridIn = %v, want 0", got)
	}
	if got := MaxDistFromGridIn(nil, Origin, same); got != 5 {
		t.Errorf("coincident MaxDistFromGridIn = %v, want 5", got)
	}
	if got := MinPairDistGridIn(nil, nil); !math.IsInf(got, 1) {
		t.Errorf("empty MinPairDistGridIn = %v, want +Inf", got)
	}
	if got := MaxDistFromGridIn(nil, Origin, nil); got != 0 {
		t.Errorf("empty MaxDistFromGridIn = %v, want 0", got)
	}
	nan := make([]Point, 100)
	for i := range nan {
		nan[i] = Pt(float64(i), 0)
	}
	nan[50] = Pt(math.NaN(), 1)
	if got, want := MaxDistFromGridIn(nil, Origin, nan), MaxDistFromIn(nil, Origin, nan); got != want {
		t.Errorf("NaN MaxDistFromGridIn = %v, dense = %v", got, want)
	}
}
