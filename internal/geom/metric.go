package geom

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Metric is a pluggable distance on the plane. Every implementation is a
// norm-induced metric (translation-invariant and absolutely homogeneous), so
// straight segments are geodesics and the point a fraction t of the metric
// length along a segment is the ordinary Lerp — which is what lets the
// simulator keep straight-line motion and budget-truncated moves unchanged
// across metrics.
//
// Implementations must additionally dominate the Chebyshev distance:
//
//	Dist(p, q) ≥ max(|p.X−q.X|, |p.Y−q.Y|)
//
// for all p, q. Every ℓp metric with p ≥ 1 satisfies this; the invariant is
// what lets spatial.Grid bound a metric ball query by a square of cells and
// keep its ring-expansion nearest-neighbor search correct.
type Metric interface {
	// Name is the canonical CLI/wire spelling — "l1", "l2", "linf", or
	// "lp:<p>" — and is part of the content-addressed request hash for every
	// non-ℓ2 metric, so it must be stable.
	Name() string
	// Dist returns the distance between p and q.
	Dist(p, q Point) float64
	// Norm returns the distance from the origin to v, i.e. the norm of v.
	Norm(v Point) float64
	// InscribedSquare returns the side length of the largest axis-aligned
	// square inscribed in the unit ball (2^(1−1/p) for ℓp): the snapshot
	// pitch at which a lattice of radius-1 Looks covers the plane, used by
	// the exploration sweeps.
	InscribedSquare() float64
	// Stretch returns sup_{v≠0} Norm(v)/‖v‖₂, the worst-case inflation of a
	// Euclidean length under this metric (2^(1/p−1/2) for p < 2, else 1).
	// Travel-time budgets calibrated against ℓ2 stay valid when multiplied
	// by it.
	Stretch() float64
}

// The built-in metrics. L2 is the Euclidean plane the paper works in and the
// default everywhere a Metric is optional.
var (
	L1   Metric = l1Metric{}
	L2   Metric = l2Metric{}
	LInf Metric = linfMetric{}
)

// MetricOrL2 returns m, defaulting a nil metric to L2. Every layer that
// stores an optional Metric normalizes through it.
func MetricOrL2(m Metric) Metric {
	if m == nil {
		return L2
	}
	return m
}

// IsL2 reports whether m is (or defaults to) the Euclidean metric — the case
// where canonical request hashes must stay byte-identical to the pre-metric
// encoding.
func IsL2(m Metric) bool { return MetricOrL2(m).Name() == "l2" }

type l2Metric struct{}

func (l2Metric) Name() string             { return "l2" }
func (l2Metric) Dist(p, q Point) float64  { return p.Dist(q) }
func (l2Metric) Norm(v Point) float64     { return v.Norm() }
func (l2Metric) InscribedSquare() float64 { return math.Sqrt2 }
func (l2Metric) Stretch() float64         { return 1 }

type l1Metric struct{}

func (l1Metric) Name() string             { return "l1" }
func (l1Metric) Dist(p, q Point) float64  { return p.DistL1(q) }
func (l1Metric) Norm(v Point) float64     { return math.Abs(v.X) + math.Abs(v.Y) }
func (l1Metric) InscribedSquare() float64 { return 1 }
func (l1Metric) Stretch() float64         { return math.Sqrt2 }

type linfMetric struct{}

func (linfMetric) Name() string { return "linf" }
func (linfMetric) Dist(p, q Point) float64 {
	return math.Max(math.Abs(p.X-q.X), math.Abs(p.Y-q.Y))
}
func (linfMetric) Norm(v Point) float64     { return math.Max(math.Abs(v.X), math.Abs(v.Y)) }
func (linfMetric) InscribedSquare() float64 { return 2 }
func (linfMetric) Stretch() float64         { return 1 }

// UnitBallArea returns the area of m's unit ball — 2 for ℓ1, π for ℓ2, 4
// for ℓ∞, and 4·Γ(1+1/p)²/Γ(1+2/p) for general ℓp (nil defaults to ℓ2).
// It is the constant in the metric generalization of the Theorem 3 energy
// threshold: sweeping the radius-ℓ ball minus the freebie radius-1 look
// costs area/2, so the ℓ2 bound π(ℓ²−1)/2 becomes A·(ℓ²−1)/2. Unknown
// Metric implementations are integrated numerically in polar form
// (½∮ r(θ)² dθ with r(θ) = 1/Norm(cos θ, sin θ)), which is exact to
// quadrature error for any norm ball.
func UnitBallArea(m Metric) float64 {
	switch mm := MetricOrL2(m).(type) {
	case l1Metric:
		return 2
	case l2Metric:
		return math.Pi
	case linfMetric:
		return 4
	case lpMetric:
		g := math.Gamma(1 + mm.invP)
		return 4 * g * g / math.Gamma(1+2*mm.invP)
	}
	const steps = 1 << 16
	sum := 0.0
	for i := 0; i < steps; i++ {
		theta := (float64(i) + 0.5) * (2 * math.Pi / steps)
		r := 1 / m.Norm(Pt(math.Cos(theta), math.Sin(theta)))
		sum += r * r
	}
	return sum * math.Pi / steps
}

// CircumradiusL2 returns the ℓ2 circumradius of m's unit ball,
// sup{‖v‖₂ : m.Norm(v) ≤ 1} — 1 for every ℓp with p ≤ 2 (their balls fit
// the Euclidean disk), 2^(1/2−1/p) for p > 2, √2 for ℓ∞ (the corners).
// A sweep calibrated to Euclidean radius r covers the metric ball
// B_m(c, r) only when extended to radius r·CircumradiusL2 (nil defaults
// to ℓ2). Unknown Metric implementations are maximized numerically over
// sampled directions with a one-step safety factor.
func CircumradiusL2(m Metric) float64 {
	switch mm := MetricOrL2(m).(type) {
	case l1Metric, l2Metric:
		return 1
	case linfMetric:
		return math.Sqrt2
	case lpMetric:
		if mm.p <= 2 {
			return 1
		}
		return math.Exp2(0.5 - mm.invP)
	}
	const steps = 1 << 12
	best := 0.0
	for i := 0; i < steps; i++ {
		theta := (float64(i) + 0.5) * (2 * math.Pi / steps)
		if r := 1 / m.Norm(Pt(math.Cos(theta), math.Sin(theta))); r > best {
			best = r
		}
	}
	// Sampling can only undershoot the true maximum; pad by one step's
	// worth of curvature so callers' coverage arguments stay conservative.
	return best * (1 + math.Pi/steps)
}

// lpMetric is the general ℓp metric for finite p ≥ 1. The canonical cases
// p = 1, 2 and p = +Inf are always represented by L1/L2/LInf (Lp normalizes
// them), so an lpMetric value is never one of those.
//
// invP caches 1/p (the same value the formula previously recomputed per
// call) and ip caches p as an int when p is integral, unlocking the
// pow-free inner power below. Both are derived from p alone, so two
// lpMetric values built from the same exponent stay comparable.
type lpMetric struct {
	p    float64
	invP float64
	ip   int // p when integral and small, else 0
}

// maxIntExponent bounds the integer exponents the repeated-multiplication
// fast path covers; larger integral p falls back to math.Pow (where the
// squaring loop no longer wins anything).
const maxIntExponent = 64

// newLpMetric builds the metric for a finite non-canonical exponent p > 1.
func newLpMetric(p float64) lpMetric {
	m := lpMetric{p: p, invP: 1 / p}
	if i, frac := math.Modf(p); frac == 0 && i <= maxIntExponent {
		m.ip = int(i)
	}
	return m
}

func (m lpMetric) Name() string {
	return "lp:" + strconv.FormatFloat(m.p, 'g', -1, 64)
}

func (m lpMetric) Dist(p, q Point) float64 { return m.Norm(p.Sub(q)) }

func (m lpMetric) Norm(v Point) float64 {
	ax, ay := math.Abs(v.X), math.Abs(v.Y)
	// Factor out the larger component so intermediate powers can neither
	// overflow nor underflow for representable inputs.
	hi := math.Max(ax, ay)
	if hi == 0 {
		return 0
	}
	lo := math.Min(ax, ay)
	t := lo / hi
	var tp float64
	switch {
	case m.ip != 0 && t >= mulSafe:
		tp = mulPow(t, m.ip)
	case m.ip != 0:
		tp = ipow(t, m.ip)
	default:
		tp = math.Pow(t, m.p)
	}
	if tp == 0 || 1+tp == 1 {
		// math.Pow(1, y) is exactly 1, so the remaining factor drops out.
		return hi
	}
	return hi * powFrac(1+tp, m.invP)
}

// mulSafe is the ratio floor below which the plain multiply-and-square loop
// could push an intermediate into the subnormal range (t**128 for the
// deepest square of a ≤ 64 exponent reaches 2^-896 at t = 2^-7) and drift
// from math.Pow's normalized-mantissa rounding; below it the Frexp-faithful
// ipow takes over.
const mulSafe = 0x1p-7

// mulPow is x**n by plain multiply-and-square in the same bit order as
// math.Pow's integral-exponent loop. For x ∈ [mulSafe, 1] and n ≤
// maxIntExponent every intermediate stays normal, where scaling by powers
// of two is exact and each product therefore rounds identically to Pow's
// Frexp-normalized form — bit-identical, without the Frexp/Ldexp overhead.
func mulPow(x float64, n int) float64 {
	a := 1.0
	for ; n != 0; n >>= 1 {
		if n&1 == 1 {
			a *= x
		}
		x *= x
	}
	return a
}

// powFrac replicates math.Pow(x, y) bit for bit on the norm's residual
// domain — finite x ∈ (1, 2], fractional y ∈ (0, 1), y ≠ ½ — without Pow's
// special-case dispatch: on that domain Pow computes exactly Exp(y·Log(x)),
// with one extra multiply by x when y > ½ (Pow's yf-overflow adjustment
// folds the integer part back in via its squaring loop, which for yi = 1
// reduces to a single product). NaN flows through both branches the way it
// flows through Pow. Guarded against the live math.Pow by the bit-identity
// fuzz in metric_test.go.
func powFrac(x, y float64) float64 {
	if y > 0.5 {
		return math.Exp((y-1)*math.Log(x)) * x
	}
	return math.Exp(y * math.Log(x))
}

// ipow returns x**n for 0 ≤ x ≤ 1 and 1 ≤ n ≤ maxIntExponent, bit-identical
// to math.Pow(x, float64(n)): it replays Pow's integral-exponent branch —
// repeated squaring over the Frexp-normalized mantissa with the exponent
// tracked separately and a single Ldexp at the end — so every intermediate
// rounding (including the subnormal double-rounding at the final scaling)
// matches Pow's. A plain x*x*…*x would drift from Pow once x**k dips into
// the subnormal range mid-product; this never does.
func ipow(x float64, n int) float64 {
	a1 := 1.0
	ae := 0
	x1, xe := math.Frexp(x)
	for i := n; i != 0; i >>= 1 {
		if xe < -1<<12 || 1<<12 < xe {
			// Catastrophic underflow/overflow of the running exponent:
			// mirror Pow's bail-out (the result rounds to 0 or Inf anyway).
			ae += xe
			break
		}
		if i&1 == 1 {
			a1 *= x1
			ae += xe
		}
		x1 *= x1
		xe <<= 1
		if x1 < .5 {
			x1 += x1
			xe--
		}
	}
	return math.Ldexp(a1, ae)
}

func (m lpMetric) InscribedSquare() float64 { return math.Exp2(1 - 1/m.p) }

func (m lpMetric) Stretch() float64 {
	if m.p >= 2 {
		return 1
	}
	return math.Exp2(1/m.p - 0.5)
}

// Lp returns the ℓp metric. p = 1, 2 and +Inf normalize to L1, L2, LInf (so
// lp:2 and l2 are the same metric with the same Name and therefore the same
// request hash). Degenerate exponents — NaN, p < 1 (not a metric: the
// triangle inequality fails), or anything non-positive — are rejected.
func Lp(p float64) (Metric, error) {
	switch {
	case math.IsNaN(p):
		return nil, fmt.Errorf("geom: lp metric exponent must be a number, got NaN")
	case p < 1:
		return nil, fmt.Errorf("geom: lp metric needs exponent ≥ 1, got %g (the triangle inequality fails below 1)", p)
	case p == 1:
		return L1, nil
	case p == 2:
		return L2, nil
	case math.IsInf(p, 1):
		return LInf, nil
	}
	return newLpMetric(p), nil
}

// MetricNames lists the accepted ParseMetric spellings for usage messages.
func MetricNames() string { return "l1, l2, linf, lp:<p≥1>" }

// ParseMetric resolves the CLI/wire spelling of a metric. The empty string
// defaults to ℓ2. Unknown names and degenerate ℓp exponents (lp:0, lp:NaN,
// lp:0.5, …) are errors, never silently defaulted.
func ParseMetric(s string) (Metric, error) {
	name := strings.ToLower(strings.TrimSpace(s))
	switch name {
	case "", "l2", "euclidean":
		return L2, nil
	case "l1", "manhattan":
		return L1, nil
	case "linf", "chebyshev":
		return LInf, nil
	}
	if rest, ok := strings.CutPrefix(name, "lp:"); ok {
		p, err := strconv.ParseFloat(rest, 64)
		if err != nil {
			return nil, fmt.Errorf("geom: bad lp exponent %q (want lp:<p≥1>)", rest)
		}
		return Lp(p)
	}
	return nil, fmt.Errorf("geom: unknown metric %q (have %s)", s, MetricNames())
}

// WithinIn reports whether p is within metric distance d of q, with Eps
// slack — the metric generalization of Point.Within. Every layer that
// decides visibility or coverage under a metric (spatial index, explorer,
// sampler) must go through it so the closed-ball-with-Eps convention can
// never desynchronize between them.
func WithinIn(m Metric, p, q Point, d float64) bool {
	return MetricOrL2(m).Dist(p, q) <= d+Eps
}

// MoveToward returns the point at metric distance d from `from` along the
// straight segment toward `to`, clamping at `to`. Straight segments are
// geodesics of every norm metric, so this is unit-speed motion along a
// metric geodesic; it is how the simulator places a robot whose energy
// budget runs out mid-move.
func MoveToward(m Metric, from, to Point, d float64) Point {
	total := MetricOrL2(m).Dist(from, to)
	if d <= 0 || total <= Eps {
		return from
	}
	if d >= total {
		return to
	}
	return from.Lerp(to, d/total)
}

// PathLengthIn returns the total metric length of the polyline through pts.
func PathLengthIn(m Metric, pts []Point) float64 {
	m = MetricOrL2(m)
	var total float64
	for i := 1; i < len(pts); i++ {
		total += m.Dist(pts[i-1], pts[i])
	}
	return total
}

// MaxDistFromIn returns the largest metric distance from o to any point of
// pts — the radius ρ* under m when o is the source. Empty input yields 0.
func MaxDistFromIn(m Metric, o Point, pts []Point) float64 {
	m = MetricOrL2(m)
	var r float64
	for _, p := range pts {
		if d := m.Dist(o, p); d > r {
			r = d
		}
	}
	return r
}

// MinPairDistIn returns the smallest pairwise metric distance among pts, or
// +Inf for fewer than two points. O(n²); tests and generators only.
func MinPairDistIn(m Metric, pts []Point) float64 {
	m = MetricOrL2(m)
	best := math.Inf(1)
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if d := m.Dist(pts[i], pts[j]); d < best {
				best = d
			}
		}
	}
	return best
}
