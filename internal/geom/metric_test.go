package geom

import (
	"math"
	"math/rand"
	"testing"
)

// builtins returns every metric the suite fuzzes: the three named ones plus
// representative general ℓp exponents.
func builtins(t *testing.T) []Metric {
	t.Helper()
	ms := []Metric{L1, L2, LInf}
	for _, p := range []float64{1.5, 2.5, 3, 7} {
		m, err := Lp(p)
		if err != nil {
			t.Fatalf("Lp(%g): %v", p, err)
		}
		ms = append(ms, m)
	}
	return ms
}

func randPt(rng *rand.Rand) Point {
	return Pt((rng.Float64()-0.5)*200, (rng.Float64()-0.5)*200)
}

// The metric axioms — identity, symmetry, triangle inequality — plus
// translation invariance and homogeneity (the norm properties the simulator
// relies on for straight-line geodesics), fuzzed for every built-in.
func TestMetricAxiomsFuzzed(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for _, m := range builtins(t) {
		for i := 0; i < 2000; i++ {
			a, b, c := randPt(rng), randPt(rng), randPt(rng)
			dab, dba := m.Dist(a, b), m.Dist(b, a)
			if dab != dba {
				t.Fatalf("%s: asymmetric: d(%v,%v)=%v, d(%v,%v)=%v", m.Name(), a, b, dab, b, a, dba)
			}
			if d := m.Dist(a, a); d != 0 {
				t.Fatalf("%s: d(a,a) = %v, want 0", m.Name(), d)
			}
			if dab < 0 {
				t.Fatalf("%s: negative distance %v", m.Name(), dab)
			}
			if dab == 0 && !a.Eq(b) {
				t.Fatalf("%s: d=0 for distinct points %v %v", m.Name(), a, b)
			}
			// Triangle inequality with a relative float tolerance.
			dac, dcb := m.Dist(a, c), m.Dist(c, b)
			if dab > dac+dcb+1e-9*(1+dab) {
				t.Fatalf("%s: triangle violated: d(a,b)=%v > %v+%v", m.Name(), dab, dac, dcb)
			}
			// Translation invariance and homogeneity.
			shift := randPt(rng)
			if ds := m.Dist(a.Add(shift), b.Add(shift)); math.Abs(ds-dab) > 1e-9*(1+dab) {
				t.Fatalf("%s: not translation invariant: %v vs %v", m.Name(), ds, dab)
			}
			k := rng.Float64() * 3
			if nk := m.Norm(a.Scale(k)); math.Abs(nk-k*m.Norm(a)) > 1e-9*(1+nk) {
				t.Fatalf("%s: not homogeneous: ‖%g·a‖=%v, %g·‖a‖=%v", m.Name(), k, nk, k, k*m.Norm(a))
			}
		}
	}
}

// Every supported metric must dominate Chebyshev (the spatial.Grid
// invariant) and the ℓp family must be monotone in p: d₁ ≥ d_p ≥ d_∞.
func TestMetricDominatesChebyshev(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, m := range builtins(t) {
		for i := 0; i < 2000; i++ {
			a, b := randPt(rng), randPt(rng)
			dinf := LInf.Dist(a, b)
			d := m.Dist(a, b)
			if d < dinf-1e-9*(1+dinf) {
				t.Fatalf("%s: %v below Chebyshev %v for %v %v", m.Name(), d, dinf, a, b)
			}
			if d1 := L1.Dist(a, b); d > d1+1e-9*(1+d1) {
				t.Fatalf("%s: %v above ℓ1 %v for %v %v", m.Name(), d, d1, a, b)
			}
		}
	}
}

// Norm must agree with Dist from the origin, and the known closed forms must
// hold on an exact example.
func TestMetricKnownValues(t *testing.T) {
	a, b := Pt(1, 1), Pt(4, 5)
	if d := L1.Dist(a, b); math.Abs(d-7) > 1e-12 {
		t.Errorf("ℓ1 = %v, want 7", d)
	}
	if d := L2.Dist(a, b); math.Abs(d-5) > 1e-12 {
		t.Errorf("ℓ2 = %v, want 5", d)
	}
	if d := LInf.Dist(a, b); math.Abs(d-4) > 1e-12 {
		t.Errorf("ℓ∞ = %v, want 4", d)
	}
	m, _ := Lp(3)
	want := math.Cbrt(27 + 64)
	if d := m.Dist(a, b); math.Abs(d-want) > 1e-12 {
		t.Errorf("ℓ3 = %v, want %v", d, want)
	}
	rng := rand.New(rand.NewSource(3))
	for _, mm := range builtins(t) {
		for i := 0; i < 200; i++ {
			v := randPt(rng)
			if got, want := mm.Norm(v), mm.Dist(Origin, v); got != want {
				t.Fatalf("%s: Norm(%v)=%v != Dist(0,v)=%v", mm.Name(), v, got, want)
			}
		}
	}
}

// InscribedSquare must actually inscribe: all four corners of the axis
// square of that side centered at the origin lie in the closed unit ball,
// and a slightly larger square must poke out.
func TestMetricInscribedSquare(t *testing.T) {
	for _, m := range builtins(t) {
		s := m.InscribedSquare()
		corner := Pt(s/2, s/2)
		if n := m.Norm(corner); n > 1+1e-9 {
			t.Errorf("%s: inscribed-square corner norm %v > 1", m.Name(), n)
		}
		big := Pt(s/2*1.01, s/2*1.01)
		if n := m.Norm(big); n <= 1 {
			t.Errorf("%s: inscribed square not maximal (1.01× corner norm %v ≤ 1)", m.Name(), n)
		}
	}
}

// Stretch must bound Dist/DistL2 over random pairs, tightly for the known
// extremes.
func TestMetricStretchBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, m := range builtins(t) {
		st := m.Stretch()
		worst := 0.0
		for i := 0; i < 5000; i++ {
			a, b := randPt(rng), randPt(rng)
			d2 := L2.Dist(a, b)
			if d2 < 1e-9 {
				continue
			}
			if r := m.Dist(a, b) / d2; r > worst {
				worst = r
			}
		}
		if worst > st+1e-9 {
			t.Errorf("%s: observed stretch %v exceeds declared %v", m.Name(), worst, st)
		}
		// The diagonal realizes the ℓ1 stretch exactly.
		if m.Name() == "l1" {
			if r := m.Dist(Origin, Pt(1, 1)) / L2.Dist(Origin, Pt(1, 1)); math.Abs(r-st) > 1e-12 {
				t.Errorf("ℓ1 diagonal stretch %v != declared %v", r, st)
			}
		}
	}
}

// lpNormGeneric is the pre-specialization two-Pow formulation of the ℓp
// norm, kept verbatim as the reference the fast paths must match bit for
// bit: same factoring, same 1/p division per call.
func lpNormGeneric(p float64, v Point) float64 {
	ax, ay := math.Abs(v.X), math.Abs(v.Y)
	hi := math.Max(ax, ay)
	if hi == 0 {
		return 0
	}
	lo := math.Min(ax, ay)
	return hi * math.Pow(1+math.Pow(lo/hi, p), 1/p)
}

// The integer-exponent fast path (repeated multiplication, precomputed 1/p,
// single-Pow inverse) must be bit-identical to the generic Pow formulation —
// this is what lets ℓ*, request hashes, and race winners survive the
// specialization unchanged. Fuzzed over ordinary coordinates plus extreme
// magnitudes that push the inner power through the subnormal range.
func TestLpIntegerFastPathBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	// Non-integer exponents exercise the generic inner branch; 1.5 drives
	// the outer inverse through powFrac's y > ½ adjustment (1/p > ½ ⇔ p < 2).
	exps := []float64{3, 4, 5, 7, 11, 64, 1.5, 2.5, 6.5}
	scales := []float64{1, 1e-150, 1e-300, 1e150, 1e307}
	for _, p := range exps {
		m, err := Lp(p)
		if err != nil {
			t.Fatalf("Lp(%g): %v", p, err)
		}
		for i := 0; i < 5000; i++ {
			v := randPt(rng).Scale(scales[i%len(scales)])
			if i%17 == 0 {
				v.Y = 0 // axis-aligned: inner power is exactly zero
			}
			if i%23 == 0 {
				v.Y = v.X * 1e-200 // extreme ratio: inner power underflows
			}
			got, want := m.Norm(v), lpNormGeneric(p, v)
			if got != want && !(math.IsNaN(got) && math.IsNaN(want)) {
				t.Fatalf("lp:%g Norm(%v) = %x, generic Pow formulation = %x", p, v, got, want)
			}
		}
	}
}

// ipow must replay math.Pow's integral-exponent squaring loop exactly for
// the whole domain the norm feeds it: ratios in [0, 1], exponents 1..64.
func TestIpowMatchesPow(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for n := 1; n <= maxIntExponent; n++ {
		for _, x := range []float64{0, 1, 0.5, 1e-10, 1e-100, 1e-300, math.SmallestNonzeroFloat64} {
			if got, want := ipow(x, n), math.Pow(x, float64(n)); got != want {
				t.Fatalf("ipow(%g, %d) = %x, math.Pow = %x", x, n, got, want)
			}
		}
		for i := 0; i < 500; i++ {
			x := rng.Float64()
			if got, want := ipow(x, n), math.Pow(x, float64(n)); got != want {
				t.Fatalf("ipow(%v, %d) = %x, math.Pow = %x", x, n, got, want)
			}
		}
	}
}

func TestParseMetric(t *testing.T) {
	good := map[string]string{
		"":          "l2",
		"l2":        "l2",
		"L2":        "l2",
		"euclidean": "l2",
		"l1":        "l1",
		"manhattan": "l1",
		"linf":      "linf",
		"chebyshev": "linf",
		"lp:1":      "l1",
		"lp:2":      "l2",
		"lp:+Inf":   "linf",
		"lp:2.5":    "lp:2.5",
		" lp:3 ":    "lp:3",
	}
	for in, want := range good {
		m, err := ParseMetric(in)
		if err != nil {
			t.Errorf("ParseMetric(%q): %v", in, err)
			continue
		}
		if m.Name() != want {
			t.Errorf("ParseMetric(%q).Name() = %q, want %q", in, m.Name(), want)
		}
	}
	bad := []string{"l3", "lp:", "lp:0", "lp:0.5", "lp:NaN", "lp:-2", "lp:x", "manhatten", "l∞"}
	for _, in := range bad {
		if m, err := ParseMetric(in); err == nil {
			t.Errorf("ParseMetric(%q) accepted as %q, want error", in, m.Name())
		}
	}
	// Lp must reject degenerate exponents directly too.
	for _, p := range []float64{math.NaN(), 0, 0.99, -1} {
		if _, err := Lp(p); err == nil {
			t.Errorf("Lp(%v) accepted, want error", p)
		}
	}
}

// MoveToward must advance exactly the requested metric distance along the
// segment (norm homogeneity), clamp at the endpoints, and agree with Lerp
// under ℓ2.
func TestMoveToward(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, m := range builtins(t) {
		for i := 0; i < 1000; i++ {
			a, b := randPt(rng), randPt(rng)
			total := m.Dist(a, b)
			if total < 1e-6 {
				continue
			}
			d := rng.Float64() * total
			p := MoveToward(m, a, b, d)
			got := m.Dist(a, p)
			if math.Abs(got-d) > 1e-9*(1+total) {
				t.Fatalf("%s: MoveToward travelled %v, want %v", m.Name(), got, d)
			}
			// Remaining distance must close the segment: p is on it.
			if rest := m.Dist(p, b); math.Abs(got+rest-total) > 1e-9*(1+total) {
				t.Fatalf("%s: MoveToward left the segment: %v+%v != %v", m.Name(), got, rest, total)
			}
		}
		a, b := Pt(0, 0), Pt(3, 4)
		if p := MoveToward(m, a, b, -1); p != a {
			t.Errorf("%s: negative distance moved to %v", m.Name(), p)
		}
		if p := MoveToward(m, a, b, 1e18); p != b {
			t.Errorf("%s: overshoot not clamped: %v", m.Name(), p)
		}
	}
}

func TestMetricHelpers(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(1, 1), Pt(4, 1)}
	if got := PathLengthIn(L1, pts); math.Abs(got-5) > 1e-12 {
		t.Errorf("PathLengthIn ℓ1 = %v, want 5", got)
	}
	if got, want := PathLengthIn(L2, pts), PathLength(pts); got != want {
		t.Errorf("PathLengthIn ℓ2 = %v, PathLength = %v", got, want)
	}
	if got := MaxDistFromIn(LInf, Origin, pts); got != 4 {
		t.Errorf("MaxDistFromIn ℓ∞ = %v, want 4", got)
	}
	if got := MinPairDistIn(L1, pts); got != 2 {
		t.Errorf("MinPairDistIn ℓ1 = %v, want 2", got)
	}
	if !IsL2(nil) || !IsL2(L2) || IsL2(L1) {
		t.Error("IsL2 misclassifies")
	}
	if MetricOrL2(nil) != L2 {
		t.Error("MetricOrL2(nil) != L2")
	}
}
