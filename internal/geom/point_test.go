package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointArith(t *testing.T) {
	p, q := Pt(1, 2), Pt(3, -4)
	if got := p.Add(q); got != Pt(4, -2) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(q); got != Pt(-2, 6) {
		t.Errorf("Sub = %v", got)
	}
	if got := p.Scale(2); got != Pt(2, 4) {
		t.Errorf("Scale = %v", got)
	}
	if got := p.Dot(q); got != 3-8 {
		t.Errorf("Dot = %v", got)
	}
}

func TestDist(t *testing.T) {
	if d := Pt(0, 0).Dist(Pt(3, 4)); math.Abs(d-5) > 1e-12 {
		t.Errorf("Dist = %v, want 5", d)
	}
	if d := Pt(0, 0).Dist2(Pt(3, 4)); math.Abs(d-25) > 1e-12 {
		t.Errorf("Dist2 = %v, want 25", d)
	}
	if d := Pt(1, 1).DistL1(Pt(-2, 3)); math.Abs(d-5) > 1e-12 {
		t.Errorf("DistL1 = %v, want 5", d)
	}
}

func TestEqAndWithin(t *testing.T) {
	p := Pt(1, 1)
	if !p.Eq(Pt(1+1e-10, 1-1e-10)) {
		t.Error("Eq should tolerate sub-Eps noise")
	}
	if p.Eq(Pt(1.001, 1)) {
		t.Error("Eq should reject 1e-3 offsets")
	}
	if !p.Within(Pt(2, 1), 1) {
		t.Error("Within(d=1) should accept exact distance 1")
	}
	if p.Within(Pt(2.1, 1), 1) {
		t.Error("Within(d=1) should reject distance 1.1")
	}
}

func TestLerpMidpoint(t *testing.T) {
	p, q := Pt(0, 0), Pt(2, 4)
	if got := p.Lerp(q, 0.25); !got.Eq(Pt(0.5, 1)) {
		t.Errorf("Lerp = %v", got)
	}
	if got := p.Midpoint(q); !got.Eq(Pt(1, 2)) {
		t.Errorf("Midpoint = %v", got)
	}
}

func TestPathLength(t *testing.T) {
	if l := PathLength(nil); l != 0 {
		t.Errorf("empty path length = %v", l)
	}
	if l := PathLength([]Point{Pt(0, 0)}); l != 0 {
		t.Errorf("single point path length = %v", l)
	}
	path := []Point{Pt(0, 0), Pt(3, 4), Pt(3, 0)}
	if l := PathLength(path); math.Abs(l-9) > 1e-12 {
		t.Errorf("path length = %v, want 9", l)
	}
}

func TestCentroidMaxDist(t *testing.T) {
	pts := []Point{Pt(0, 0), Pt(2, 0), Pt(2, 2), Pt(0, 2)}
	if c := Centroid(pts); !c.Eq(Pt(1, 1)) {
		t.Errorf("Centroid = %v", c)
	}
	if r := MaxDistFrom(Pt(0, 0), pts); math.Abs(r-2*math.Sqrt2) > 1e-12 {
		t.Errorf("MaxDistFrom = %v", r)
	}
	if r := MaxDistFrom(Pt(0, 0), nil); r != 0 {
		t.Errorf("MaxDistFrom(empty) = %v", r)
	}
}

func TestMinPairDist(t *testing.T) {
	if d := MinPairDist([]Point{Pt(0, 0)}); !math.IsInf(d, 1) {
		t.Errorf("MinPairDist singleton = %v", d)
	}
	pts := []Point{Pt(0, 0), Pt(10, 0), Pt(10.5, 0)}
	if d := MinPairDist(pts); math.Abs(d-0.5) > 1e-12 {
		t.Errorf("MinPairDist = %v", d)
	}
}

func TestCentroidPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Centroid(nil) should panic")
		}
	}()
	Centroid(nil)
}

// Property: the triangle inequality holds for Dist.
func TestDistTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		a, b, c := clampPt(ax, ay), clampPt(bx, by), clampPt(cx, cy)
		return a.Dist(c) <= a.Dist(b)+b.Dist(c)+1e-9
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: Dist is symmetric and zero iff points equal (for clean inputs).
func TestDistSymmetry(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := clampPt(ax, ay), clampPt(bx, by)
		return math.Abs(a.Dist(b)-b.Dist(a)) < 1e-12
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: Dist2 = Dist².
func TestDist2Consistency(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := clampPt(ax, ay), clampPt(bx, by)
		d := a.Dist(b)
		return math.Abs(a.Dist2(b)-d*d) <= 1e-6*(1+d*d)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: L1 distance dominates L2 distance and is at most √2 times it.
func TestL1L2Relation(t *testing.T) {
	f := func(ax, ay, bx, by float64) bool {
		a, b := clampPt(ax, ay), clampPt(bx, by)
		l1, l2 := a.DistL1(b), a.Dist(b)
		return l1 >= l2-1e-9 && l1 <= math.Sqrt2*l2+1e-9
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// clampPt maps arbitrary quick-generated floats into a sane bounded range so
// properties are not defeated by NaN/Inf/overflow artifacts.
func clampPt(x, y float64) Point {
	c := func(v float64) float64 {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0
		}
		return math.Mod(v, 1e6)
	}
	return Pt(c(x), c(y))
}

func quickCfg() *quick.Config {
	return &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(42))}
}
