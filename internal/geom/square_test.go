package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSquareRect(t *testing.T) {
	s := Sq(Pt(1, 1), 4)
	r := s.Rect()
	if !r.Min.Eq(Pt(-1, -1)) || !r.Max.Eq(Pt(3, 3)) {
		t.Errorf("Rect = %v", r)
	}
	if !s.LowerLeft().Eq(Pt(-1, -1)) {
		t.Errorf("LowerLeft = %v", s.LowerLeft())
	}
	if math.Abs(s.Diam()-4*math.Sqrt2) > 1e-9 {
		t.Errorf("Diam = %v", s.Diam())
	}
}

func TestSubSquares(t *testing.T) {
	s := Sq(Pt(0, 0), 8)
	sub := s.SubSquares()
	wantCenters := [4]Point{Pt(-2, -2), Pt(2, -2), Pt(2, 2), Pt(-2, 2)}
	for i, ss := range sub {
		if !ss.Center.Eq(wantCenters[i]) {
			t.Errorf("sub %d center = %v, want %v", i, ss.Center, wantCenters[i])
		}
		if ss.Width != 4 {
			t.Errorf("sub %d width = %v", i, ss.Width)
		}
	}
}

func TestAdjacent8(t *testing.T) {
	s := Sq(Pt(0, 0), 2)
	adj := s.Adjacent8()
	// First is east, order counter-clockwise.
	if !adj[0].Center.Eq(Pt(2, 0)) {
		t.Errorf("adj[0] = %v", adj[0])
	}
	if !adj[2].Center.Eq(Pt(0, 2)) {
		t.Errorf("adj[2] = %v", adj[2])
	}
	if !adj[4].Center.Eq(Pt(-2, 0)) {
		t.Errorf("adj[4] = %v", adj[4])
	}
	if !adj[6].Center.Eq(Pt(0, -2)) {
		t.Errorf("adj[6] = %v", adj[6])
	}
	seen := map[Point]bool{}
	for _, a := range adj {
		if a.Width != 2 {
			t.Errorf("adjacent width = %v", a.Width)
		}
		if seen[a.Center] {
			t.Errorf("duplicate adjacent center %v", a.Center)
		}
		seen[a.Center] = true
	}
}

func TestGridCell(t *testing.T) {
	// Width-2 grid: cells centered at even integers.
	cases := []struct {
		p    Point
		want Point
	}{
		{Pt(0, 0), Pt(0, 0)},
		{Pt(0.9, 0), Pt(0, 0)},
		{Pt(1.1, 0), Pt(2, 0)},
		{Pt(-0.9, -0.9), Pt(0, 0)},
		{Pt(-1.1, -1.1), Pt(-2, -2)},
		{Pt(1, 0), Pt(0, 0)}, // boundary ties go to the lower cell
		{Pt(3, 5), Pt(2, 4)}, // likewise on every axis
		{Pt(-1, -1), Pt(-2, -2)},
	}
	for _, c := range cases {
		got := GridCell(c.p, 2)
		if !got.Center.Eq(c.want) {
			t.Errorf("GridCell(%v) center = %v, want %v", c.p, got.Center, c.want)
		}
	}
}

func TestGridIndex(t *testing.T) {
	kx, ky := GridIndex(Pt(4.2, -3.9), 2)
	if kx != 2 || ky != -2 {
		t.Errorf("GridIndex = (%d,%d), want (2,-2)", kx, ky)
	}
}

// Property: every point belongs to the grid cell GridCell says it does.
func TestGridCellContainsProperty(t *testing.T) {
	f := func(px, py float64) bool {
		p := clampPt(px, py)
		cell := GridCell(p, 2)
		return cell.Contains(p)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// Property: a grid cell's Adjacent8 are exactly the 8 distinct cells whose
// index differs by at most 1 in each coordinate.
func TestAdjacent8Property(t *testing.T) {
	f := func(px, py float64) bool {
		p := clampPt(px, py)
		cell := GridCell(p, 4)
		kx, ky := GridIndex(cell.Center, 4)
		seen := map[[2]int]bool{}
		for _, a := range cell.Adjacent8() {
			ax, ay := GridIndex(a.Center, 4)
			dx, dy := ax-kx, ay-ky
			if dx < -1 || dx > 1 || dy < -1 || dy > 1 || (dx == 0 && dy == 0) {
				return false
			}
			seen[[2]int{dx, dy}] = true
		}
		return len(seen) == 8
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestDisk(t *testing.T) {
	d := DiskAt(Pt(1, 1), 2)
	if !d.Contains(Pt(1, 3)) {
		t.Error("boundary point should be contained")
	}
	if d.Contains(Pt(1, 3.1)) {
		t.Error("exterior point should not be contained")
	}
	if math.Abs(d.Area()-math.Pi*4) > 1e-9 {
		t.Errorf("Area = %v", d.Area())
	}
	bs := d.BoundingSquare()
	if bs.Width != 4 || !bs.Center.Eq(Pt(1, 1)) {
		t.Errorf("BoundingSquare = %v", bs)
	}
	if !d.Intersects(DiskAt(Pt(5, 1), 2)) {
		t.Error("touching disks should intersect")
	}
	if d.Intersects(DiskAt(Pt(6, 1), 2)) {
		t.Error("separated disks should not intersect")
	}
}
