package geom

import (
	"fmt"
	"math"
)

// Disk is the closed disk B_c(r) of center Center and radius R, the paper's
// B_p(r) notation.
type Disk struct {
	Center Point
	R      float64
}

// DiskAt builds the disk of the given center and radius.
func DiskAt(center Point, r float64) Disk { return Disk{Center: center, R: r} }

// Contains reports whether p ∈ B_c(r), with Eps slack.
func (d Disk) Contains(p Point) bool { return d.Center.Within(p, d.R) }

// Area returns πr².
func (d Disk) Area() float64 { return math.Pi * d.R * d.R }

// BoundingSquare returns the smallest axis-parallel square containing d,
// used when a disk must be explored with the rectangle routine of Lemma 1.
func (d Disk) BoundingSquare() Square { return Square{d.Center, 2 * d.R} }

// Intersects reports whether two closed disks overlap (Eps slack).
func (d Disk) Intersects(o Disk) bool {
	return d.Center.Dist(o.Center) <= d.R+o.R+Eps
}

// String implements fmt.Stringer.
func (d Disk) String() string { return fmt.Sprintf("B(%v,%.6g)", d.Center, d.R) }
