package geom

import (
	"fmt"
	"math"
)

// Rect is an axis-parallel rectangle [MinX, MaxX] × [MinY, MaxY].
// A Rect with Min == Max is a single point; degenerate (inverted) rectangles
// are normalized by NewRect.
type Rect struct {
	Min, Max Point
}

// NewRect builds the axis-parallel rectangle spanned by corners a and b,
// normalizing the coordinate order.
func NewRect(a, b Point) Rect {
	return Rect{
		Min: Point{math.Min(a.X, b.X), math.Min(a.Y, b.Y)},
		Max: Point{math.Max(a.X, b.X), math.Max(a.Y, b.Y)},
	}
}

// RectWH builds the rectangle with lower-left corner ll, width w and height h.
// Negative extents are normalized.
func RectWH(ll Point, w, h float64) Rect {
	return NewRect(ll, Point{ll.X + w, ll.Y + h})
}

// Width returns the horizontal extent.
func (r Rect) Width() float64 { return r.Max.X - r.Min.X }

// Height returns the vertical extent.
func (r Rect) Height() float64 { return r.Max.Y - r.Min.Y }

// Area returns width × height.
func (r Rect) Area() float64 { return r.Width() * r.Height() }

// Center returns the center point of r.
func (r Rect) Center() Point { return r.Min.Midpoint(r.Max) }

// Diam returns the diagonal length, the diameter of r.
func (r Rect) Diam() float64 { return r.Min.Dist(r.Max) }

// Contains reports whether p lies inside r, with Eps slack on each side.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X-Eps && p.X <= r.Max.X+Eps &&
		p.Y >= r.Min.Y-Eps && p.Y <= r.Max.Y+Eps
}

// ContainsStrict reports whether p lies inside r with no tolerance, used by
// partition logic that must assign boundary points to exactly one cell.
func (r Rect) ContainsStrict(p Point) bool {
	return p.X >= r.Min.X && p.X < r.Max.X && p.Y >= r.Min.Y && p.Y < r.Max.Y
}

// Clamp returns the point of r closest to p.
func (r Rect) Clamp(p Point) Point {
	return Point{
		X: math.Max(r.Min.X, math.Min(r.Max.X, p.X)),
		Y: math.Max(r.Min.Y, math.Min(r.Max.Y, p.Y)),
	}
}

// DistTo returns the Euclidean distance from p to the closest point of r
// (zero when p is inside).
func (r Rect) DistTo(p Point) float64 { return p.Dist(r.Clamp(p)) }

// Intersects reports whether r and q overlap (closed rectangles, Eps slack).
func (r Rect) Intersects(q Rect) bool {
	return r.Min.X <= q.Max.X+Eps && q.Min.X <= r.Max.X+Eps &&
		r.Min.Y <= q.Max.Y+Eps && q.Min.Y <= r.Max.Y+Eps
}

// ContainsRect reports whether q is entirely inside r (Eps slack).
func (r Rect) ContainsRect(q Rect) bool {
	return r.Contains(q.Min) && r.Contains(q.Max)
}

// Inset returns r shrunk by d on every side. If 2d exceeds an extent the
// result collapses to the center line/point of that axis.
func (r Rect) Inset(d float64) Rect {
	out := Rect{
		Min: Point{r.Min.X + d, r.Min.Y + d},
		Max: Point{r.Max.X - d, r.Max.Y - d},
	}
	if out.Min.X > out.Max.X {
		c := (r.Min.X + r.Max.X) / 2
		out.Min.X, out.Max.X = c, c
	}
	if out.Min.Y > out.Max.Y {
		c := (r.Min.Y + r.Max.Y) / 2
		out.Min.Y, out.Max.Y = c, c
	}
	return out
}

// Corners returns the four corners in counter-clockwise order starting from
// the lower-left.
func (r Rect) Corners() [4]Point {
	return [4]Point{
		r.Min,
		{r.Max.X, r.Min.Y},
		r.Max,
		{r.Min.X, r.Max.Y},
	}
}

// LowerLeft returns the minimum corner. AGrid and AWave gather teams there.
func (r Rect) LowerLeft() Point { return r.Min }

// SplitLongestSide cuts r into two halves across its longer side. Ties are
// split vertically (along x). Used by the wake-up tree construction, where
// the alternating cut directions make the diameter shrink geometrically.
func (r Rect) SplitLongestSide() (Rect, Rect) {
	if r.Width() >= r.Height() {
		mid := (r.Min.X + r.Max.X) / 2
		return Rect{r.Min, Point{mid, r.Max.Y}}, Rect{Point{mid, r.Min.Y}, r.Max}
	}
	mid := (r.Min.Y + r.Max.Y) / 2
	return Rect{r.Min, Point{r.Max.X, mid}}, Rect{Point{r.Min.X, mid}, r.Max}
}

// Quadrants partitions r into its four quadrant sub-rectangles, ordered
// lower-left, lower-right, upper-right, upper-left (counter-clockwise), the
// order ASeparator uses for sub-squares S1..S4.
func (r Rect) Quadrants() [4]Rect {
	c := r.Center()
	return [4]Rect{
		{r.Min, c},
		{Point{c.X, r.Min.Y}, Point{r.Max.X, c.Y}},
		{c, r.Max},
		{Point{r.Min.X, c.Y}, Point{c.X, r.Max.Y}},
	}
}

// HStrips partitions r into k horizontal strips of equal height, bottom-up.
// k must be positive. This is the Lemma 1 team-exploration partition.
func (r Rect) HStrips(k int) []Rect {
	if k <= 0 {
		panic("geom: HStrips requires k > 0")
	}
	strips := make([]Rect, k)
	h := r.Height() / float64(k)
	for i := 0; i < k; i++ {
		y0 := r.Min.Y + float64(i)*h
		y1 := r.Min.Y + float64(i+1)*h
		if i == k-1 {
			y1 = r.Max.Y // absorb rounding on the top strip
		}
		strips[i] = Rect{Point{r.Min.X, y0}, Point{r.Max.X, y1}}
	}
	return strips
}

// BoundingRect returns the smallest axis-parallel rectangle containing pts.
// It panics on an empty slice.
func BoundingRect(pts []Point) Rect {
	if len(pts) == 0 {
		panic("geom: BoundingRect of empty point set")
	}
	r := Rect{pts[0], pts[0]}
	for _, p := range pts[1:] {
		r.Min.X = math.Min(r.Min.X, p.X)
		r.Min.Y = math.Min(r.Min.Y, p.Y)
		r.Max.X = math.Max(r.Max.X, p.X)
		r.Max.Y = math.Max(r.Max.Y, p.Y)
	}
	return r
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%v-%v]", r.Min, r.Max)
}
