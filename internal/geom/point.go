// Package geom provides the planar geometry kernel used throughout the
// distributed Freeze Tag simulator: points, rectangles, squares, disks, and
// the epsilon-tolerant predicates the Look-Compute-Move model relies on.
//
// All coordinates are float64. Distance comparisons that decide model-level
// facts (co-location, visibility, disk-graph adjacency) go through the
// tolerant predicates in this package so that accumulated floating-point
// error never flips a decision for well-separated inputs.
package geom

import (
	"fmt"
	"math"
)

// Eps is the tolerance used by the co-location and containment predicates.
// All paper constructions keep meaningful distances at least 1e-6 away from
// decision thresholds, so 1e-9 is safely below any real geometric gap while
// absorbing float64 rounding from path arithmetic.
const Eps = 1e-9

// Point is a position in the Euclidean plane.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{X: x, Y: y} }

// Origin is the source position p0 = (0,0) of the dFTP model.
var Origin = Point{}

// Add returns p + q component-wise.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q component-wise.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Scale returns p scaled by k.
func (p Point) Scale(k float64) Point { return Point{p.X * k, p.Y * k} }

// Dot returns the dot product p·q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Norm returns the Euclidean norm of p viewed as a vector.
func (p Point) Norm() float64 { return math.Hypot(p.X, p.Y) }

// Dist returns the Euclidean distance |pq|.
func (p Point) Dist(q Point) float64 { return math.Hypot(p.X-q.X, p.Y-q.Y) }

// Dist2 returns the squared Euclidean distance, cheaper than Dist when only
// comparisons are needed.
func (p Point) Dist2(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return dx*dx + dy*dy
}

// DistL1 returns the L1 (Manhattan) distance between p and q. The Theorem 6
// construction reasons about rectilinear paths in this norm.
func (p Point) DistL1(q Point) float64 {
	return math.Abs(p.X-q.X) + math.Abs(p.Y-q.Y)
}

// Eq reports whether p and q coincide up to Eps in each coordinate.
func (p Point) Eq(q Point) bool {
	return math.Abs(p.X-q.X) <= Eps && math.Abs(p.Y-q.Y) <= Eps
}

// Within reports whether p is within distance d of q, with Eps slack. This is
// the predicate behind visibility (d = 1), co-location (d = 0) and disk-graph
// adjacency (d = δ).
func (p Point) Within(q Point, d float64) bool {
	return p.Dist(q) <= d+Eps
}

// Lerp returns the point a fraction t of the way from p to q.
// t = 0 yields p, t = 1 yields q; t is not clamped.
func (p Point) Lerp(q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Midpoint returns the midpoint of segment pq.
func (p Point) Midpoint(q Point) Point { return p.Lerp(q, 0.5) }

// Angle returns the angle of the vector p in radians, in (-π, π].
func (p Point) Angle() float64 { return math.Atan2(p.Y, p.X) }

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%.6g,%.6g)", p.X, p.Y) }

// PathLength returns the total Euclidean length of the polyline through pts.
// Fewer than two points have length zero.
func PathLength(pts []Point) float64 {
	var total float64
	for i := 1; i < len(pts); i++ {
		total += pts[i-1].Dist(pts[i])
	}
	return total
}

// Centroid returns the arithmetic mean of pts. It panics on an empty slice;
// callers own the non-emptiness invariant.
func Centroid(pts []Point) Point {
	if len(pts) == 0 {
		panic("geom: Centroid of empty point set")
	}
	var c Point
	for _, p := range pts {
		c = c.Add(p)
	}
	return c.Scale(1 / float64(len(pts)))
}

// MaxDistFrom returns the largest distance from origin o to any point of pts,
// i.e. the radius ρ* when o is the source. Empty input yields 0.
func MaxDistFrom(o Point, pts []Point) float64 {
	var r float64
	for _, p := range pts {
		if d := o.Dist(p); d > r {
			r = d
		}
	}
	return r
}

// MinPairDist returns the smallest pairwise distance among pts, or +Inf for
// fewer than two points. O(n²); used by tests and generators, not hot paths.
func MinPairDist(pts []Point) float64 {
	best := math.Inf(1)
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if d := pts[i].Dist(pts[j]); d < best {
				best = d
			}
		}
	}
	return best
}
