package geom

import (
	"math"
	"sort"
)

// This file holds grid-accelerated variants of the quadratic/linear point
// scans in metric.go. They bucket the slice into square cells once per call
// (spatial.Grid imports geom, so geom carries its own one-shot bucketing)
// and return exactly the same float64 the brute-force scans return — the
// pruning arguments below only ever discard points that cannot change the
// extremum, so the winning Dist call is the same call the dense scan makes.

// gridScanMinN is the size below which the dense scans win: bucketing costs
// a map build, which only amortizes once the quadratic (or the full linear
// max pass) is big enough to matter.
const gridScanMinN = 48

// scanBoundMargin inflates cell pruning bounds by a hair so that the few
// ulps of rounding inside a metric's Dist can never make a bound computed
// at a cell corner dip below the computed distance of a point inside the
// cell. Metric distances are accurate to ~1e-13 relative; 1e-9 is orders of
// magnitude of slack and costs at most a handful of extra cells scanned.
const scanBoundMargin = 1 + 1e-9

// bboxOf returns the bounding box of pts; ok is false when any coordinate
// is NaN (the dense scans own that degenerate case).
func bboxOf(pts []Point) (minX, minY, maxX, maxY float64, ok bool) {
	minX, minY = math.Inf(1), math.Inf(1)
	maxX, maxY = math.Inf(-1), math.Inf(-1)
	for _, p := range pts {
		minX = math.Min(minX, p.X)
		minY = math.Min(minY, p.Y)
		maxX = math.Max(maxX, p.X)
		maxY = math.Max(maxY, p.Y)
	}
	if math.IsNaN(maxX-minX) || math.IsNaN(maxY-minY) {
		return 0, 0, 0, 0, false
	}
	return minX, minY, maxX, maxY, true
}

// bucketPts assigns every point index to its cell of the given size.
func bucketPts(pts []Point, cell float64) map[[2]int][]int32 {
	buckets := make(map[[2]int][]int32, len(pts))
	for i, p := range pts {
		k := [2]int{int(math.Floor(p.X / cell)), int(math.Floor(p.Y / cell))}
		buckets[k] = append(buckets[k], int32(i))
	}
	return buckets
}

// bucketPoints buckets the points themselves — the farthest-point scan never
// needs indices, and contiguous per-cell blocks are what lets it scan
// sequentially and feed whole cells to DistBatch.
func bucketPoints(pts []Point, cell float64) map[[2]int][]Point {
	buckets := make(map[[2]int][]Point, len(pts))
	for _, p := range pts {
		k := [2]int{int(math.Floor(p.X / cell)), int(math.Floor(p.Y / cell))}
		buckets[k] = append(buckets[k], p)
	}
	return buckets
}

// scanBatchMin is the cell population below which the farthest-point scan
// stays per-point; both paths fold identical bits in identical order.
const scanBatchMin = 8

// MinPairDistGridIn is MinPairDistIn accelerated with cell bucketing:
// near-linear for well-spread sets instead of O(n²), and exactly equal to
// the dense scan (same float64). Every supported metric dominates Chebyshev,
// so a pair at metric distance ≤ cell lands in adjacent cells and a 3×3
// neighborhood scan sees it; when the first pass proves nothing that close
// exists, one rescan at the observed candidate distance certifies it.
func MinPairDistGridIn(m Metric, pts []Point) float64 {
	if len(pts) < gridScanMinN {
		return MinPairDistIn(m, pts)
	}
	m = MetricOrL2(m)
	minX, minY, maxX, maxY, ok := bboxOf(pts)
	if !ok {
		return MinPairDistIn(m, pts)
	}
	ext := math.Max(maxX-minX, maxY-minY)
	if ext == 0 {
		// All points coincide: the dense scan's minimum is Dist(p, p) = 0.
		return 0
	}
	cell := ext / math.Sqrt(float64(len(pts)))
	if cell == 0 {
		return MinPairDistIn(m, pts) // subnormal extent: cell size underflowed
	}
	// Cell coordinates come from floating-point division, so a pair within
	// distance d is guaranteed adjacent only for d a hair below the cell
	// size; certify and rescan with that margin (the closest-pair analogue
	// of the bottleneck pass's ringSafety), keeping the result bit-equal to
	// the dense scan.
	const certify = 1 - 1e-9
	for {
		best := minPairScan(m, pts, cell)
		if best <= cell*certify {
			return best // certified: a closer pair would have been adjacent
		}
		if !math.IsInf(best, 1) {
			// A candidate exists but wasn't certified by this cell size; one
			// rescan at the candidate distance (margin-inflated) sees every
			// pair that could beat it.
			return minPairScan(m, pts, best/certify)
		}
		cell *= 2 // no neighbor pairs at all; coarsen until some cell pairs up
	}
}

// minPairScan returns the smallest metric distance among pairs whose cells
// are within one step of each other, +Inf if no such pair exists.
func minPairScan(m Metric, pts []Point, cell float64) float64 {
	buckets := bucketPts(pts, cell)
	best := math.Inf(1)
	for i, p := range pts {
		cx := int(math.Floor(p.X / cell))
		cy := int(math.Floor(p.Y / cell))
		for dx := -1; dx <= 1; dx++ {
			for dy := -1; dy <= 1; dy++ {
				for _, j := range buckets[[2]int{cx + dx, cy + dy}] {
					if int(j) <= i {
						continue // each pair once, in the dense scan's (i, j) order
					}
					if d := m.Dist(p, pts[j]); d < best {
						best = d
					}
				}
			}
		}
	}
	return best
}

// MaxDistFromGridIn is MaxDistFromIn accelerated with cell bucketing and
// best-first pruning: cells are visited in decreasing order of an upper
// bound on the distance any of their points can reach (norms are convex, so
// the bound is attained at a cell corner), and the scan stops at the first
// cell whose bound cannot beat the best point seen. Exactly equal to the
// dense scan (same float64): the bound carries scanBoundMargin, so the true
// farthest point is never pruned, and its distance is computed by the same
// Dist call the dense scan makes.
func MaxDistFromGridIn(m Metric, o Point, pts []Point) float64 {
	if len(pts) < gridScanMinN {
		return MaxDistFromIn(m, o, pts)
	}
	m = MetricOrL2(m)
	minX, minY, maxX, maxY, ok := bboxOf(pts)
	if !ok {
		return MaxDistFromIn(m, o, pts)
	}
	ext := math.Max(maxX-minX, maxY-minY)
	if ext == 0 {
		return m.Dist(o, pts[0])
	}
	cell := ext / math.Sqrt(float64(len(pts)))
	buckets := bucketPoints(pts, cell)
	type cellBound struct {
		key   [2]int
		bound float64
	}
	bounds := make([]cellBound, 0, len(buckets))
	for k := range buckets {
		x0, y0 := float64(k[0])*cell, float64(k[1])*cell
		x1, y1 := x0+cell, y0+cell
		b := m.Dist(o, Pt(x0, y0))
		b = math.Max(b, m.Dist(o, Pt(x1, y0)))
		b = math.Max(b, m.Dist(o, Pt(x0, y1)))
		b = math.Max(b, m.Dist(o, Pt(x1, y1)))
		bounds = append(bounds, cellBound{key: k, bound: b * scanBoundMargin})
	}
	sort.Slice(bounds, func(i, j int) bool { return bounds[i].bound > bounds[j].bound })
	batch := BatchAccelerated(m)
	var dists []float64
	var best float64
	for _, cb := range bounds {
		if cb.bound <= best {
			break // no remaining cell can contain a farther point
		}
		cp := buckets[cb.key]
		if batch && len(cp) >= scanBatchMin {
			if cap(dists) < len(cp) {
				dists = make([]float64, len(cp)+len(cp)/2)
			}
			d := dists[:len(cp)]
			DistBatch(m, o, cp, d)
			for _, dd := range d {
				if dd > best {
					best = dd
				}
			}
			continue
		}
		for _, q := range cp {
			if d := m.Dist(o, q); d > best {
				best = d
			}
		}
	}
	return best
}
