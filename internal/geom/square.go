package geom

import (
	"fmt"
	"math"
)

// Square is an axis-parallel square identified by its center and width. The
// paper's algorithms reason about squares by center (team meeting points) and
// width (the scale parameter R), so Square keeps both explicit rather than
// reducing to Rect.
type Square struct {
	Center Point
	Width  float64
}

// Sq builds the square of the given center and width.
func Sq(center Point, width float64) Square { return Square{Center: center, Width: width} }

// Rect converts s to its Rect representation.
func (s Square) Rect() Rect {
	h := s.Width / 2
	return Rect{
		Min: Point{s.Center.X - h, s.Center.Y - h},
		Max: Point{s.Center.X + h, s.Center.Y + h},
	}
}

// Contains reports whether p lies in s (closed, Eps slack).
func (s Square) Contains(p Point) bool { return s.Rect().Contains(p) }

// LowerLeft returns the minimum corner of s.
func (s Square) LowerLeft() Point { return s.Rect().Min }

// Diam returns the diagonal length of s.
func (s Square) Diam() float64 { return s.Width * sqrt2 }

// SubSquares partitions s into four sub-squares of half width, ordered
// lower-left, lower-right, upper-right, upper-left, matching Rect.Quadrants.
func (s Square) SubSquares() [4]Square {
	q := s.Width / 4
	w := s.Width / 2
	return [4]Square{
		{Point{s.Center.X - q, s.Center.Y - q}, w},
		{Point{s.Center.X + q, s.Center.Y - q}, w},
		{Point{s.Center.X + q, s.Center.Y + q}, w},
		{Point{s.Center.X - q, s.Center.Y + q}, w},
	}
}

// Adjacent8 returns the eight squares of the same width adjacent to s in the
// regular grid of width-s.Width squares, in counter-clockwise order starting
// from the east neighbor. AGrid and AWave visit neighbors in this order.
func (s Square) Adjacent8() [8]Square {
	w := s.Width
	c := s.Center
	off := [8]Point{
		{w, 0}, {w, w}, {0, w}, {-w, w},
		{-w, 0}, {-w, -w}, {0, -w}, {w, -w},
	}
	var out [8]Square
	for i, d := range off {
		out[i] = Square{c.Add(d), w}
	}
	return out
}

// GridCell returns the square of the regular grid of the given width that
// contains p. Grid squares are centered at {(k·w, k'·w)} following the AGrid
// partition "squares of width 2ℓ centered at positions (2kℓ, 2k'ℓ)".
// Cells are half-open per axis as (c−w/2, c+w/2]: a point exactly on a
// boundary belongs to the lower-index cell. This keeps a robot at distance
// exactly ℓ in the +x/+y direction inside the source's cell, which the AGrid
// round-0 chain relies on (see internal/dftp).
func GridCell(p Point, width float64) Square {
	kx := roundToGrid(p.X, width)
	ky := roundToGrid(p.Y, width)
	return Square{Point{kx * width, ky * width}, width}
}

// roundToGrid returns the integer k with x ∈ (k·w − w/2, k·w + w/2].
func roundToGrid(x, w float64) float64 {
	return math.Ceil(x/w - 0.5)
}

// GridIndex returns the integer grid coordinates (kx, ky) of the cell of
// width w containing p, such that the cell center is (kx·w, ky·w).
func GridIndex(p Point, w float64) (int, int) {
	return int(roundToGrid(p.X, w)), int(roundToGrid(p.Y, w))
}

// String implements fmt.Stringer.
func (s Square) String() string {
	return fmt.Sprintf("Sq(c=%v w=%.6g)", s.Center, s.Width)
}

const sqrt2 = 1.41421356237309504880168872420969808
