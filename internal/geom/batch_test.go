package geom

import (
	"math"
	"math/rand"
	"testing"
)

// batchMetrics is the metric family battery every DistBatch property runs
// under: the three canonical metrics plus fractional and integer ℓp
// exponents (the integer ones exercise the inlined Log/Exp fast path, the
// fractional one the per-point Pow fallback).
func batchMetrics(t *testing.T) []Metric {
	t.Helper()
	ms := []Metric{L1, L2, LInf}
	for _, p := range []float64{2.5, 3, 4, 5, 7, 64} {
		m, err := Lp(p)
		if err != nil {
			t.Fatalf("Lp(%g): %v", p, err)
		}
		ms = append(ms, m)
	}
	return ms
}

// assertBatchEq checks DistBatch against the per-call Dist loop bit for bit.
func assertBatchEq(t *testing.T, m Metric, p Point, pts []Point, out []float64) {
	t.Helper()
	DistBatch(m, p, pts, out)
	for i, q := range pts {
		want := m.Dist(p, q)
		if math.Float64bits(out[i]) != math.Float64bits(want) {
			t.Fatalf("%s: DistBatch[%d] = %v (bits %x), Dist = %v (bits %x) for p=%v q=%v",
				m.Name(), i, out[i], math.Float64bits(out[i]), want, math.Float64bits(want), p, q)
		}
	}
}

// TestDistBatchMatchesDist fuzzes every metric family across coordinate
// scales from subnormal-adjacent to near-overflow: batch results must be
// bit-identical to the scalar loop at any magnitude.
func TestDistBatchMatchesDist(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	out := make([]float64, 256)
	for _, m := range batchMetrics(t) {
		for round := 0; round < 40; round++ {
			scale := math.Exp2(float64(rng.Intn(600) - 300))
			n := rng.Intn(len(out))
			pts := make([]Point, n)
			for i := range pts {
				pts[i] = Pt((rng.Float64()-0.5)*scale, (rng.Float64()-0.5)*scale)
			}
			origin := Pt((rng.Float64()-0.5)*scale, (rng.Float64()-0.5)*scale)
			assertBatchEq(t, m, origin, pts, out)
		}
	}
}

// TestDistBatchEdgeCases pins the degenerate inputs the kernels route to
// their reference paths: empty and length-1 blocks, unaligned lengths,
// coincident points, zero/one-axis differences, NaN and ±Inf coordinates,
// and ratios below the mulSafe fast-path floor.
func TestDistBatchEdgeCases(t *testing.T) {
	inf, nan := math.Inf(1), math.NaN()
	blocks := [][]Point{
		nil,
		{},
		{Pt(1, 2)},
		{Pt(0, 0), Pt(0, 0), Pt(3, 4)},
		{Pt(1, 0), Pt(0, 1), Pt(-1, 0), Pt(0, -1), Pt(5, 0), Pt(0, 5), Pt(2, 2)},
		{Pt(inf, 0), Pt(-inf, 3), Pt(nan, 1), Pt(2, nan), Pt(inf, inf), Pt(nan, nan), Pt(1, 1)},
		{Pt(1e-320, 0), Pt(0, 1e-320), Pt(1e-320, 1e308), Pt(1e308, 1e308)},
		// lo/hi under mulSafe = 2⁻⁷: exercises the ipow reference branch.
		{Pt(1, 0x1p-9), Pt(0x1p-9, 1), Pt(1, 0x1p-7), Pt(1, math.Nextafter(0x1p-7, 0))},
		// 1+tp == 1: tiny ratios where the power underflows the addition.
		{Pt(1, 1e-18), Pt(1e-18, 1)},
	}
	out := make([]float64, 16)
	for _, m := range batchMetrics(t) {
		for _, pts := range blocks {
			for _, origin := range []Point{Pt(0, 0), Pt(-3, 7), Pt(inf, 0), Pt(nan, nan)} {
				assertBatchEq(t, m, origin, pts, out)
			}
		}
	}
}

// TestDistBatchOutReuse reuses one out buffer across calls of shrinking
// length — stale tail values from earlier, longer calls must never leak
// into a later result, and the tail beyond len(pts) must stay untouched.
func TestDistBatchOutReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	out := make([]float64, 64)
	for i := range out {
		out[i] = -1
	}
	for _, m := range batchMetrics(t) {
		for _, n := range []int{64, 63, 31, 7, 1, 0} {
			pts := make([]Point, n)
			for i := range pts {
				pts[i] = Pt(rng.Float64()*10-5, rng.Float64()*10-5)
			}
			sentinel := math.Inf(-1)
			for i := n; i < len(out); i++ {
				out[i] = sentinel
			}
			assertBatchEq(t, m, Pt(1, -2), pts, out)
			for i := n; i < len(out); i++ {
				if out[i] != sentinel {
					t.Fatalf("%s: DistBatch wrote out[%d] beyond len(pts)=%d", m.Name(), i, n)
				}
			}
		}
	}
}

// TestDistBatchShortOut verifies the documented contract that an undersized
// out panics (a silent truncation would corrupt scan consumers).
func TestDistBatchShortOut(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("DistBatch with len(out) < len(pts) did not panic")
		}
	}()
	DistBatch(L2, Origin, make([]Point, 4), make([]float64, 3))
}

// TestDistBatchUnknownMetric routes a Metric implementation outside the
// known concrete types through the generic per-call fallback.
func TestDistBatchUnknownMetric(t *testing.T) {
	m := weirdMetric{}
	pts := []Point{Pt(1, 1), Pt(-2, 3), Pt(0, 0)}
	out := make([]float64, len(pts))
	DistBatch(m, Pt(1, 0), pts, out)
	for i, q := range pts {
		if want := m.Dist(Pt(1, 0), q); out[i] != want {
			t.Fatalf("unknown metric: out[%d] = %v, want %v", i, out[i], want)
		}
	}
}

// weirdMetric is a Chebyshev-dominating metric unknown to the kernel switch.
type weirdMetric struct{}

func (weirdMetric) Name() string             { return "weird" }
func (weirdMetric) Dist(p, q Point) float64  { return 2 * LInf.Dist(p, q) }
func (weirdMetric) Norm(v Point) float64     { return 2 * LInf.Norm(v) }
func (weirdMetric) InscribedSquare() float64 { return 1 }
func (weirdMetric) Stretch() float64         { return 2 }

// TestBatchProbeEnabled asserts the replica fast paths actually engaged on
// this platform — if a toolchain update changes math.Log/Exp/Hypot, this
// fails loudly instead of silently benchmarking the fallback.
func TestBatchProbeEnabled(t *testing.T) {
	if !hypotBatchOK {
		t.Error("hypot batch kernel disabled by probe: math.Hypot no longer matches the replica")
	}
	if !lpBatchOK {
		t.Error("lp batch kernel disabled by probe: math.Log/math.Exp no longer match the replicas")
	}
}

// TestLogExpShortReplicas fuzzes the restricted-domain Log/Exp replicas
// directly, far past the init probe's sweep.
func TestLogExpShortReplicas(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200000; i++ {
		x := 1 + rng.Float64()
		if got, want := logShort(x), math.Log(x); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("logShort(%v) = %x, math.Log = %x", x, math.Float64bits(got), math.Float64bits(want))
		}
		y := rng.Float64() * math.Ln2
		if y == 0 {
			continue
		}
		if got, want := expShort(y), math.Exp(y); math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("expShort(%v) = %x, math.Exp = %x", y, math.Float64bits(got), math.Float64bits(want))
		}
	}
}

// FuzzDistBatch is the go-fuzz entry: arbitrary coordinate bit patterns
// through every metric family must match the scalar loop bit for bit.
func FuzzDistBatch(f *testing.F) {
	f.Add(1.5, -2.25, 3.0, 4.0, 0.125, 1e300)
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
	f.Add(math.Inf(1), 1.0, math.NaN(), -1e-308, 2.0, 0x1p-7)
	metrics := []Metric{L1, L2, LInf}
	for _, p := range []float64{2.5, 3, 4} {
		m, _ := Lp(p)
		metrics = append(metrics, m)
	}
	f.Fuzz(func(t *testing.T, ox, oy, x1, y1, x2, y2 float64) {
		origin := Pt(ox, oy)
		pts := []Point{Pt(x1, y1), Pt(x2, y2), Pt(x1, y2), Pt(x2, y1)}
		out := make([]float64, len(pts))
		for _, m := range metrics {
			DistBatch(m, origin, pts, out)
			for i, q := range pts {
				want := m.Dist(origin, q)
				if math.Float64bits(out[i]) != math.Float64bits(want) {
					t.Fatalf("%s: DistBatch[%d] bits %x != Dist bits %x (origin=%v q=%v)",
						m.Name(), i, math.Float64bits(out[i]), math.Float64bits(want), origin, q)
				}
			}
		}
	})
}
