package arena

import (
	"sync"
	"testing"
)

func TestSlabTakeBasics(t *testing.T) {
	var s Slab[int]
	a := s.Take(3)
	if len(a) != 0 || cap(a) != 3 {
		t.Fatalf("Take(3) = len %d cap %d, want 0/3", len(a), cap(a))
	}
	a = append(a, 1, 2, 3)
	b := s.Take(2)
	b = append(b, 4, 5)
	if a[0] != 1 || a[2] != 3 || b[0] != 4 || b[1] != 5 {
		t.Fatalf("slab regions overlap: a=%v b=%v", a, b)
	}
}

func TestSlabTakeClipsCapacity(t *testing.T) {
	var s Slab[int]
	a := s.Take(2)
	a = append(a, 1, 2)
	b := s.Take(2)
	// Appending past a's capacity must reallocate a, not scribble over b.
	a = append(a, 99)
	b = append(b, 7, 8)
	if b[0] != 7 || b[1] != 8 {
		t.Fatalf("over-append corrupted neighbor region: b=%v", b)
	}
	if a[2] != 99 {
		t.Fatalf("over-append lost value: a=%v", a)
	}
}

func TestSlabGrowKeepsOldChunksValid(t *testing.T) {
	var s Slab[int]
	a := s.Take(slabMinChunk)
	for i := 0; i < slabMinChunk; i++ {
		a = append(a, i)
	}
	// Force a new chunk; the old one must stay intact behind a.
	b := s.Take(4 * slabMinChunk)
	for i := range cap(b) {
		b = append(b, -i)
	}
	for i := 0; i < slabMinChunk; i++ {
		if a[i] != i {
			t.Fatalf("old chunk corrupted at %d: %d", i, a[i])
		}
	}
}

func TestSlabResetReusesWithoutAlloc(t *testing.T) {
	var s Slab[float64]
	warm := func() {
		s.Reset()
		x := s.Take(100)
		_ = append(x, 1)
	}
	warm()
	allocs := testing.AllocsPerRun(50, warm)
	if allocs != 0 {
		t.Fatalf("steady-state Take after Reset allocates %v/op, want 0", allocs)
	}
}

func TestArenaOfAndReset(t *testing.T) {
	type box struct{ n int }
	a := New("w0")
	b1 := Of(a, "box", func() *box { return &box{} })
	b1.n = 7
	b2 := Of(a, "box", func() *box { t.Fatal("mk ran twice"); return nil })
	if b1 != b2 {
		t.Fatal("Of returned a different value on second lookup")
	}
	a.Reset()
	if b3 := Of(a, "box", func() *box { t.Fatal("mk ran after Reset"); return nil }); b3.n != 7 {
		t.Fatal("Reset dropped stashed value")
	}
}

type resettable struct{ resets int }

func (r *resettable) ResetJob() { r.resets++ }

type closable struct{ closed *bool }

func (c *closable) Close() { *c.closed = true }

func TestArenaResetFiresJobReset(t *testing.T) {
	a := New("w0")
	r := Of(a, "r", func() *resettable { return &resettable{} })
	a.Reset()
	a.Reset()
	if r.resets != 2 {
		t.Fatalf("ResetJob fired %d times, want 2", r.resets)
	}
}

func TestArenaCloseFiresCloseAndEmpties(t *testing.T) {
	a := New("w0")
	closed := false
	Of(a, "c", func() *closable { return &closable{closed: &closed} })
	a.Close()
	if !closed {
		t.Fatal("Close did not fire stashed Close")
	}
	made := false
	Of(a, "c", func() *closable { made = true; return &closable{closed: &closed} })
	if !made {
		t.Fatal("stash not emptied by Close")
	}
}

// TestArenasNeverAlias pins the worker-isolation contract: concurrent workers
// hammering their own arenas share no memory. Run under -race this fails
// loudly if any slab region or stashed structure is reachable from two
// arenas.
func TestArenasNeverAlias(t *testing.T) {
	const workers = 4
	const jobs = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			a := New("worker")
			defer a.Close()
			type scratch struct {
				ints Slab[int]
				buf  []byte
			}
			sc := Of(a, "scratch", func() *scratch { return &scratch{} })
			for j := 0; j < jobs; j++ {
				a.Reset()
				sc.ints.Reset()
				xs := sc.ints.Take(64)
				for i := 0; i < 64; i++ {
					xs = append(xs, w*1_000_000+j*64+i)
				}
				bs := a.Bytes(128)
				for i := 0; i < 128; i++ {
					bs = append(bs, byte(w))
				}
				for i, v := range xs {
					if v != w*1_000_000+j*64+i {
						t.Errorf("worker %d job %d: slab cross-talk at %d: %d", w, j, i, v)
						return
					}
				}
				for i, b := range bs {
					if b != byte(w) {
						t.Errorf("worker %d job %d: byte slab cross-talk at %d: %d", w, j, i, b)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}
