// Package arena provides per-job scratch reuse for the serving tier: a
// worker slot owns one Arena for its whole lifetime, and the entire
// resolve → derive → simulate → marshal chain of each job allocates from it,
// so repeated request shapes converge to (near-)zero allocations per solve.
//
// Two mechanisms compose:
//
//   - Slab[T]: a grow-only bump allocator for run-lifetime slices. Take(n)
//     hands out a zero-length, capacity-n sub-slice of a retained chunk;
//     Reset rewinds the whole slab without freeing. Nothing is ever freed
//     individually — the intended lifetime of every Take is "until the owner
//     resets", which is what makes the bump pointer sound.
//
//   - the stash: a string-keyed registry of reusable structures (a simulation
//     engine, a hash scratch, an algorithm's round registry). Maps and
//     long-lived object graphs cannot be bump-allocated, so they are reused
//     in place instead: fetched by key with Of, cleared by their owner on
//     checkout, and retained across Reset.
//
// An Arena is confined to one goroutine at a time (the worker that owns it);
// it performs no locking. The race test in arena_test.go pins the contract
// that two workers' arenas never alias each other's memory.
package arena

// Slab is a typed grow-only bump allocator. The zero value is ready to use.
//
// Take returns slices carved from an internal chunk; when the chunk is
// exhausted a larger one is allocated and the old chunk is left behind
// (still referenced by previously returned slices, so they stay valid).
// Reset keeps only the newest — largest — chunk and rewinds it, so a steady
// workload settles into zero allocations after the first few runs.
type Slab[T any] struct {
	cur []T // len(cur) = bump offset into the newest chunk
}

// slabMinChunk is the smallest chunk a slab allocates; tiny first Takes
// shouldn't cause a cascade of doublings.
const slabMinChunk = 64

// Take returns a zero-length slice with capacity at least n, carved from the
// slab. The caller appends up to n elements; the capacity is clipped to
// exactly n so an overflowing append falls off the slab instead of
// corrupting a neighbor's region.
func (s *Slab[T]) Take(n int) []T {
	if n < 0 {
		panic("arena: Take of negative size")
	}
	if cap(s.cur)-len(s.cur) < n {
		c := 2 * cap(s.cur)
		if c < n {
			c = n
		}
		if c < slabMinChunk {
			c = slabMinChunk
		}
		s.cur = make([]T, 0, c)
	}
	off := len(s.cur)
	s.cur = s.cur[:off+n]
	return s.cur[off : off : off+n]
}

// Reset rewinds the slab: every slice handed out since the previous Reset is
// invalidated (its memory will be reused by future Takes). The newest chunk
// is retained, so the slab's capacity is monotone.
func (s *Slab[T]) Reset() { s.cur = s.cur[:0] }

// Cap returns the capacity of the slab's current chunk, for tests and
// telemetry.
func (s *Slab[T]) Cap() int { return cap(s.cur) }

// Arena is one worker slot's reusable scratch: a stash of keyed structures
// plus a byte slab for encodings. It is not safe for concurrent use — each
// worker owns exactly one.
type Arena struct {
	owner string
	stash map[string]any
	bytes Slab[byte]
}

// New builds an empty arena. The owner tag names the worker slot that owns
// it; it exists for diagnostics and the no-alias race test.
func New(owner string) *Arena {
	return &Arena{owner: owner, stash: make(map[string]any)}
}

// Owner returns the arena's owner tag.
func (a *Arena) Owner() string { return a.owner }

// Bytes bump-allocates a zero-length byte slice with capacity n from the
// arena's byte slab; it is invalidated by the next Reset.
func (a *Arena) Bytes(n int) []byte { return a.bytes.Take(n) }

// JobReset is implemented by stashed values that must rewind between jobs;
// Arena.Reset invokes it on every stashed value that has it. Values whose
// reuse is parameterized (e.g. a simulation engine reset against a new
// instance) reset themselves on checkout instead.
type JobReset interface{ ResetJob() }

// Reset marks the boundary between two jobs: the byte slab rewinds and every
// stashed JobReset fires. Stashed structures themselves persist — reuse, not
// reallocation, is the point.
func (a *Arena) Reset() {
	a.bytes.Reset()
	for _, v := range a.stash {
		if r, ok := v.(JobReset); ok {
			r.ResetJob()
		}
	}
}

// closer matches stashed values owning resources beyond memory (an engine's
// pooled process goroutines); Close releases them.
type closer interface{ Close() }

// Close releases every stashed value that implements Close and empties the
// stash. The arena remains usable, but starts cold.
func (a *Arena) Close() {
	for k, v := range a.stash {
		if c, ok := v.(closer); ok {
			c.Close()
		}
		delete(a.stash, k)
	}
}

// Of returns the stashed value under key, building it with mk on first use.
// The type parameter pins the key to one concrete type; a key reused at a
// different type panics (a programming error, not a runtime condition).
func Of[T any](a *Arena, key string, mk func() T) T {
	if v, ok := a.stash[key]; ok {
		return v.(T)
	}
	v := mk()
	a.stash[key] = v
	return v
}
