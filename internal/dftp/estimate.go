package dftp

import (
	"math"

	"freezetag/internal/explore"
	"freezetag/internal/geom"
	"freezetag/internal/sampling"
	"freezetag/internal/separator"
	"freezetag/internal/sim"
)

// ASeparatorAuto is the §5 (Discussion) variant of ASeparator that only
// needs an upper bound ℓ on the connectivity threshold: the source first
// computes a constant approximation ρ̂ of ρ* (EstimateRho), then runs the
// ordinary rounds on the square of width 2ρ̂. The estimation overhead is
// O(ℓ²logℓ + ρ), of the same order as ASeparator itself, so the makespan
// bound of Theorem 1 is preserved.
type ASeparatorAuto struct{}

// Name implements Algorithm.
func (ASeparatorAuto) Name() string { return "ASeparatorAuto" }

// Install implements Algorithm; tup.Rho is ignored.
func (ASeparatorAuto) Install(e *sim.Engine, tup Tuple) *Report {
	rep := &Report{}
	e.Spawn(sim.SourceID, func(p *sim.Proc) {
		est := EstimateRho(p, tup.Ell, rep)
		if est.Covered {
			// The initial sampling already discovered everything: finish
			// with a single centralized awakening (the small-ρ* regime).
			ctx := &sepCtx{eng: e, tup: tup, rep: rep}
			ctx.nonce = "auto"
			all := geom.Sq(p.Self().Pos(), 4*est.Rho+4*tup.Ell+2)
			ctx.terminalWake(p, est.Team, all, all.Contains, est.Known)
			return
		}
		tup.Rho = est.Rho
		S := geom.Sq(p.Self().InitPos(), 2*est.Rho)
		ctx := &sepCtx{eng: e, tup: tup, rep: rep}
		ctx.nonce = "auto"
		if _, err := p.Escort(est.Team, S.Center); err != nil {
			rep.miss("auto escort: %v", err)
			return
		}
		ctx.round(p, est.Team, S, S.Contains, asleepNow(e, est.Known), 1)
	})
	return rep
}

// Estimate is the outcome of EstimateRho.
type Estimate struct {
	// Rho is the estimated radius ρ̂ with ρ* ≤ ρ̂ ≤ 3ρ* (a 3-approximation,
	// §5), except in the Covered case where it is exact.
	Rho float64
	// Covered reports that the initial 4ℓ-recruitment already discovered all
	// of P (the sampling exhausted below its target), making Rho exact.
	Covered bool
	// Team is the recruited team (passive, co-located with the caller).
	Team []int
	// Known maps every robot discovered during estimation to its initial
	// position.
	Known map[int]geom.Point
}

// EstimateRho implements the §5 procedure on the calling process (the
// source): (1) recruit up to 4ℓ robots by DFSampling; (2) explore the
// ℓ-separators of squares of width ℓ·2^i for i = 1, 2, … until one is empty
// of initial positions; by Corollary 2 the whole swarm then lies inside that
// square, so its width bounds 2ρ*... and the previous non-empty separator
// witnesses ρ* ≥ ℓ·2^(i-1)/2, giving a constant-factor estimate.
func EstimateRho(p *sim.Proc, ell float64, rep *Report) Estimate {
	l4 := 4 * Tuple{Ell: ell}.L()
	// The sampling region is unbounded in the model; use a square far larger
	// than any reachable geometry (the DFS only ever visits robot positions).
	huge := geom.Sq(p.Self().InitPos(), 1e9)
	out, err := sampling.Run(p, nil, sampling.Request{
		Region:        huge.Rect(),
		Square:        huge,
		Ell:           ell,
		RecruitTarget: l4 - 1,
		Seeds:         []sampling.Seed{{Pos: p.Self().InitPos(), AsleepID: -1}},
	})
	if err != nil {
		rep.miss("estimate sampling: %v", err)
	}
	known := out.Discovered
	if out.Covered {
		// Everything is discovered: ρ* is exact (in the run metric).
		metric := p.Engine().Metric()
		rho := 0.0
		for _, pos := range known {
			if d := metric.Dist(p.Self().InitPos(), pos); d > rho {
				rho = d
			}
		}
		for _, id := range out.Members {
			if d := metric.Dist(p.Self().InitPos(), p.Engine().Robot(id).InitPos()); d > rho {
				rho = d
			}
		}
		return Estimate{Rho: math.Max(rho, ell), Covered: true, Team: out.Members, Known: known}
	}

	// Doubling separator scan. The i-th square has width ℓ·2^i; explore its
	// separator with the team and stop when no initial position lies in it.
	origin := p.Self().InitPos()
	team := out.Members
	for i := 1; ; i++ {
		s := geom.Sq(origin, ell*math.Exp2(float64(i)))
		sep := separator.Of(s, ell)
		occupied := false
		// Awake robots (the team and the source) count via their origins.
		for _, id := range append([]int{p.ID()}, team...) {
			if sep.Contains(p.Engine().Robot(id).InitPos()) {
				occupied = true
			}
		}
		rects := sep.Rects()
		for j, r := range rects {
			dest := s.Center
			if j < len(rects)-1 {
				dest = rects[j+1].Min
			}
			res, err := explore.Rect(p, team, r, dest)
			if err != nil {
				rep.miss("estimate explore: %v", err)
				return Estimate{Rho: s.Width, Team: team, Known: known}
			}
			for id, pos := range res.Asleep {
				known[id] = pos
				if sep.Contains(pos) {
					occupied = true
				}
			}
			for id := range res.AwakeSeen {
				if sep.Contains(p.Engine().Robot(id).InitPos()) {
					occupied = true
				}
			}
		}
		if !occupied {
			// Empty separator: P is confined to the inside of s (Cor. 2),
			// so ρ* ≤ diag/2 ≤ width; and the scan reached width ℓ·2^i only
			// because the previous separator was occupied, witnessing
			// ρ* ≥ ℓ·2^(i-1) − ℓ. Return the width as ρ̂.
			return Estimate{Rho: s.Width, Team: team, Known: known}
		}
	}
}
