package dftp

import (
	"context"
	"math/rand"
	"testing"

	"freezetag/internal/geom"
	"freezetag/internal/instance"
)

// Every algorithm must complete the wake-up on heterogeneous instances —
// slow robots stretch the schedule (the slot bounds scale by 1/min-speed)
// but never break it — under every built-in metric, with the physics floor
// makespan ≥ max_i d_m(source, pᵢ)/s_max respected.
func TestAlgorithmsSolveHeterogeneous(t *testing.T) {
	algs := []Algorithm{ASeparator{}, AGrid{}, AWave{}}
	metrics := []string{"", "l1", "linf"}
	// Capacities generous enough to never bind: the property under test is
	// that speed heterogeneity alone cannot break a schedule.
	fams := []string{"line+speedband:0.25", "walk+speedband:0.5+capband:500", "chain+speedband:0.2"}
	for _, fam := range fams {
		in, err := instance.Family(fam, 16, 1, 5)
		if err != nil {
			t.Fatal(err)
		}
		for _, mn := range metrics {
			var m geom.Metric
			if mn != "" {
				if m, err = geom.ParseMetric(mn); err != nil {
					t.Fatal(err)
				}
			}
			tup := TupleForIn(m, in)
			mm := geom.MetricOrL2(m)
			smax := 1.0
			for _, p := range in.Profiles {
				if p.Speed > smax {
					smax = p.Speed
				}
			}
			var floor float64
			for _, pt := range in.Points {
				if d := mm.Dist(in.Source, pt) / smax; d > floor {
					floor = d
				}
			}
			for _, alg := range algs {
				res, rep, err := SolveIn(context.Background(), m, alg, in, tup, 0, nil)
				if err != nil {
					t.Fatalf("%s on %s under %s: %v", alg.Name(), in.Name, mm.Name(), err)
				}
				if !res.AllAwake {
					t.Fatalf("%s on %s under %s: %d robots still asleep",
						alg.Name(), in.Name, mm.Name(), in.N()-res.Awakened)
				}
				if len(rep.Misses) > 0 {
					t.Fatalf("%s on %s under %s: schedule miss: %s",
						alg.Name(), in.Name, mm.Name(), rep.Misses[0])
				}
				if res.Makespan < floor-1e-9 {
					t.Fatalf("%s on %s under %s: makespan %v beats the physics floor %v",
						alg.Name(), in.Name, mm.Name(), res.Makespan, floor)
				}
			}
		}
	}
}

// Tight per-robot capacities may leave robots asleep — couriers die on the
// way — but never crash: the solve returns, reports the shortfall in the
// result, and records every halt as a violation. (A stale team roster after
// a mid-schedule death used to panic the strict-handoff Escort check.)
func TestHeteroTightCapacitiesDegradeGracefully(t *testing.T) {
	in, err := instance.Family("walk+speedband:0.5+capband:50", 16, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, alg := range []Algorithm{ASeparator{}, AGrid{}, AWave{}} {
		res, _, err := SolveIn(context.Background(), nil, alg, in, TupleFor(in), 0, nil)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if !res.AllAwake && len(res.Violations) == 0 {
			t.Errorf("%s: incomplete wake-up with no recorded budget violations", alg.Name())
		}
	}
}

// Slowing the swarm must never shrink any algorithm's makespan: the same
// instance at speedbands 1 (plain), 0.5, 0.25 gives nondecreasing makespans,
// and the plain run matches the all-unit-profile run exactly (bit-identity
// of the homogeneous path).
func TestHeteroMakespanMonotoneInSlowdown(t *testing.T) {
	for _, alg := range []Algorithm{ASeparator{}, AGrid{}, AWave{}} {
		prev := 0.0
		for _, band := range []string{"", "+speedband:0.5", "+speedband:0.25"} {
			in, err := instance.Family("line"+band, 20, 1, 3)
			if err != nil {
				t.Fatal(err)
			}
			// Uniform slowdown: overwrite the banded profiles with the band
			// floor so the comparison is exact, not distributional.
			if band != "" {
				s := 0.5
				if band == "+speedband:0.25" {
					s = 0.25
				}
				for i := range in.Profiles {
					in.Profiles[i] = instance.Profile{Speed: s}
				}
			}
			res, _ := runAlg(t, alg, in, 0)
			if res.Makespan < prev-1e-9 {
				t.Fatalf("%s: slowing robots improved makespan: %v after %v",
					alg.Name(), res.Makespan, prev)
			}
			prev = res.Makespan
		}
	}
}

// All-unit profiles are the homogeneous run, bit for bit: same makespan,
// duration, and energy from every algorithm.
func TestHeteroUnitProfilesBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	in := instance.RandomWalk(rng, 18, 0.9)
	unit := *in
	unit.Profiles = make([]instance.Profile, in.N())
	for i := range unit.Profiles {
		unit.Profiles[i] = instance.Profile{Speed: 1}
	}
	for _, alg := range []Algorithm{ASeparator{}, AGrid{}, AWave{}} {
		a, _ := runAlg(t, alg, in, 0)
		b, _ := runAlg(t, alg, &unit, 0)
		if a.Makespan != b.Makespan || a.Duration != b.Duration || a.TotalEnergy != b.TotalEnergy {
			t.Fatalf("%s: unit profiles perturbed the run: makespan %v vs %v, duration %v vs %v, energy %v vs %v",
				alg.Name(), a.Makespan, b.Makespan, a.Duration, b.Duration, a.TotalEnergy, b.TotalEnergy)
		}
	}
}
