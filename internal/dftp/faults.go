package dftp

import (
	"context"
	"errors"
	"fmt"
	"math"
	"strconv"

	"freezetag/internal/adversary/wander"
	"freezetag/internal/arena"
	"freezetag/internal/geom"
	"freezetag/internal/instance"
	"freezetag/internal/sim"
	"freezetag/internal/wakeup"
)

// Faults is the wire-level fault specification shared by the HTTP API, the
// CLIs, and the experiment sweeps: a named fault kind plus its parameters,
// all deterministic under Seed. It is the serializable face of sim.FaultPlan,
// kept in this layer so the service and tools never touch engine types.
type Faults struct {
	// Kind names the failure model: "crash-stop", "crash-recovery",
	// "wake-drop", "wake-dup", or "byzantine".
	Kind string `json:"kind"`
	// Rate is the per-robot crash probability (crash kinds) or per-wake
	// fault probability (wake kinds), in [0, 1]. Ignored by byzantine.
	Rate float64 `json:"rate,omitempty"`
	// Seed roots every fault draw; equal seeds give identical fault
	// sequences.
	Seed int64 `json:"seed,omitempty"`
	// Byzantine is the number of adversary-controlled robots (kind
	// "byzantine" only, ≥ 1).
	Byzantine int `json:"byzantine,omitempty"`
	// Downtime scales crash-recovery outages; 0 derives a default from the
	// instance tuple (≈ ℓ).
	Downtime float64 `json:"downtime,omitempty"`
	// Repair arms the self-stabilizing wake-tree repair layer
	// (wakeup.InstallRepair).
	Repair bool `json:"repair,omitempty"`
}

// FaultKindNames lists the accepted Faults.Kind spellings.
func FaultKindNames() []string {
	return []string{"crash-stop", "crash-recovery", "wake-drop", "wake-dup", "byzantine"}
}

// simKind maps the wire spelling to the engine's kind.
func (f *Faults) simKind() (sim.FaultKind, bool) {
	switch f.Kind {
	case "crash-stop":
		return sim.FaultCrashStop, true
	case "crash-recovery":
		return sim.FaultCrashRecovery, true
	case "wake-drop":
		return sim.FaultWakeDrop, true
	case "wake-dup":
		return sim.FaultWakeDup, true
	case "byzantine":
		return sim.FaultByzantine, true
	}
	return 0, false
}

// Validate checks the specification. A nil receiver (no faults requested) is
// valid. Malformed numeric fields — NaN rates, negative rates, rates above
// one, non-finite downtimes — are request errors, caught here so the serving
// tier can 400 them before any work happens.
func (f *Faults) Validate() error {
	if f == nil {
		return nil
	}
	kind, ok := f.simKind()
	if !ok {
		return fmt.Errorf("dftp: unknown fault kind %q (have crash-stop, crash-recovery, wake-drop, wake-dup, byzantine)", f.Kind)
	}
	if !(f.Rate >= 0 && f.Rate <= 1) { // rejects NaN too
		return fmt.Errorf("dftp: fault rate must be in [0, 1], got %g", f.Rate)
	}
	if math.IsNaN(f.Downtime) || math.IsInf(f.Downtime, 0) || f.Downtime < 0 {
		return fmt.Errorf("dftp: fault downtime must be finite and ≥ 0, got %g", f.Downtime)
	}
	if kind == sim.FaultByzantine {
		if f.Byzantine < 1 {
			return fmt.Errorf("dftp: byzantine faults need byzantine ≥ 1, got %d", f.Byzantine)
		}
	} else if f.Byzantine != 0 {
		return fmt.Errorf("dftp: byzantine count is only valid for kind \"byzantine\"")
	}
	return nil
}

// Canon returns the deterministic canonical encoding of the specification —
// the faults line of the dftp-request/v4 content address, also used as the
// fault component of in-process memo keys. Floats encode in exact hex form
// with -0 normalized, mirroring the instance encoding. Empty for nil (the
// fault-free request, which must keep its fault-free hash).
func (f *Faults) Canon() string {
	if f == nil {
		return ""
	}
	b := make([]byte, 0, 96)
	b = append(b, "kind="...)
	b = append(b, f.Kind...)
	b = append(b, ";rate="...)
	b = appendCanonHex(b, f.Rate)
	b = append(b, ";seed="...)
	b = strconv.AppendInt(b, f.Seed, 10)
	b = append(b, ";byz="...)
	b = strconv.AppendInt(b, int64(f.Byzantine), 10)
	b = append(b, ";down="...)
	b = appendCanonHex(b, f.Downtime)
	b = append(b, ";repair="...)
	if f.Repair {
		b = append(b, '1')
	} else {
		b = append(b, '0')
	}
	return string(b)
}

// appendCanonHex appends f in exact hex float form with -0 normalized to 0,
// mirroring the instance layer's canonical float encoding.
func appendCanonHex(b []byte, f float64) []byte {
	if f == 0 { // catches -0.0 too
		f = 0
	}
	if math.IsNaN(f) {
		return append(b, "nan"...)
	}
	return strconv.AppendFloat(b, f, 'x', -1, 64)
}

// Plan compiles the wire specification into the engine's fault plan for a
// run of inst under tup: crash odometer draws scale with ρ (a robot's work
// is proportional to its disk), downtimes default to the ℓ travel scale, and
// Byzantine robots wander the instance's bounding region via the adversary
// package's deterministic program. Nil in, nil out.
func (f *Faults) Plan(m geom.Metric, in *instance.Instance, tup Tuple) *sim.FaultPlan {
	if f == nil {
		return nil
	}
	kind, _ := f.simKind()
	plan := &sim.FaultPlan{
		Kind:      kind,
		Seed:      f.Seed,
		Rate:      f.Rate,
		CrashDist: math.Max(1, tup.Rho),
		Downtime:  f.Downtime,
		Byzantine: f.Byzantine,
	}
	if plan.Downtime <= 0 {
		plan.Downtime = math.Max(1, tup.Ell)
	}
	if kind == sim.FaultByzantine {
		region := geom.Rect{Min: in.Source, Max: in.Source}
		for _, p := range in.Points {
			region.Min.X = math.Min(region.Min.X, p.X)
			region.Min.Y = math.Min(region.Min.Y, p.Y)
			region.Max.X = math.Max(region.Max.X, p.X)
			region.Max.Y = math.Max(region.Max.Y, p.Y)
		}
		plan.WanderPath = wander.Program(f.Seed, region, 4)
	}
	return plan
}

// SolveFaulted is SolveArena under a fault specification: the engine runs
// faults.Plan, and when faults.Repair is set the wakeup repair layer is
// armed after the algorithm installs (polling at the ℓ travel scale of the
// slowest robot). A nil faults delegates to SolveArena outright, so the
// fault-free path — and its pooled-engine allocation profile — is
// bit-identical to the pre-fault code.
//
// An unreleasable deadlock under injection (orphaned synchronization whose
// branches died) is an expected incompletion mode, not a harness failure: it
// is swallowed and reported through the result's AllAwake/Awakened fields
// instead.
func SolveFaulted(ctx context.Context, ar *arena.Arena, m geom.Metric, alg Algorithm, in *instance.Instance, tup Tuple, budget float64, faults *Faults, traceFn func(sim.Event)) (sim.Result, *Report, error) {
	if faults == nil {
		return SolveArena(ctx, ar, m, alg, in, tup, budget, traceFn)
	}
	if err := faults.Validate(); err != nil {
		return sim.Result{}, &Report{}, err
	}
	e := sim.NewEngineIn(ar, sim.Config{
		Source:   in.Source,
		Sleepers: in.Points,
		Budget:   budget,
		Profiles: simProfiles(in),
		Metric:   m,
		Trace:    traceFn,
		Faults:   faults.Plan(geom.MetricOrL2(m), in, tup),
	})
	rep := alg.Install(e, tup)
	if faults.Repair {
		wakeup.InstallRepair(e, wakeup.RepairConfig{Poll: math.Max(1, tup.Ell) / e.MinSpeed()})
	}
	res, err := e.RunCtx(ctx)
	if err != nil && errors.Is(err, sim.ErrDeadlock) {
		err = nil
	}
	return res, rep, err
}
