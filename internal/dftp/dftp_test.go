package dftp

import (
	"math/rand"
	"testing"

	"freezetag/internal/geom"
	"freezetag/internal/instance"
	"freezetag/internal/sim"
)

// runAlg solves inst with alg and asserts complete wake-up with no
// engine errors, no deadline misses, and no budget violations.
func runAlg(t *testing.T, alg Algorithm, inst *instance.Instance, budget float64) (sim.Result, *Report) {
	t.Helper()
	tup := TupleFor(inst)
	res, rep, err := Solve(alg, inst, tup, budget)
	if err != nil {
		t.Fatalf("%s on %s: %v", alg.Name(), inst.Name, err)
	}
	if !res.AllAwake {
		t.Fatalf("%s on %s: %d of %d robots still asleep (makespan %.4g)",
			alg.Name(), inst.Name, inst.N()-res.Awakened, inst.N(), res.Makespan)
	}
	if len(rep.Misses) > 0 {
		t.Fatalf("%s on %s: %d schedule misses, first: %s",
			alg.Name(), inst.Name, len(rep.Misses), rep.Misses[0])
	}
	if len(res.Violations) > 0 {
		t.Fatalf("%s on %s: budget violations: %v", alg.Name(), inst.Name, res.Violations)
	}
	return res, rep
}

func TestTuple(t *testing.T) {
	tu := Tuple{Ell: 2.5, Rho: 10, N: 10}
	if tu.L() != 3 {
		t.Errorf("L = %d, want 3", tu.L())
	}
	if !tu.Admissible() {
		t.Error("tuple should be admissible")
	}
	if (Tuple{Ell: 2, Rho: 30, N: 10}).Admissible() {
		t.Error("ρ > nℓ should be inadmissible")
	}
}

func TestTupleFor(t *testing.T) {
	in := instance.Line(10, 1.5)
	tup := TupleFor(in)
	if tup.Ell != 2 || tup.Rho != 15 || tup.N != 10 {
		t.Errorf("tuple = %+v", tup)
	}
	if !tup.Admissible() {
		t.Error("derived tuple should be admissible")
	}
}

func TestAssignSubTotal(t *testing.T) {
	s := geom.Sq(geom.Pt(0, 0), 8)
	subs := s.SubSquares()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		p := geom.Pt(rng.Float64()*8-4, rng.Float64()*8-4)
		idx := assignSub(p, subs)
		if !subs[idx].Contains(p) {
			t.Fatalf("point %v assigned to sub %d not containing it", p, idx)
		}
	}
	// Center belongs to exactly one.
	if idx := assignSub(geom.Pt(0, 0), subs); idx != 2 {
		// strict containment: (0,0) is min-corner of quadrant 2 (upper-right)
		t.Errorf("center assigned to %d", idx)
	}
}

// --- ASeparator correctness --------------------------------------------------

func TestASeparatorLine(t *testing.T) {
	in := instance.Line(20, 1)
	res, _ := runAlg(t, ASeparator{}, in, 0)
	if res.Makespan <= 0 {
		t.Error("zero makespan")
	}
}

func TestASeparatorRandomWalks(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 5; trial++ {
		in := instance.RandomWalk(rng, 20+rng.Intn(40), 0.9)
		runAlg(t, ASeparator{}, in, 0)
	}
}

func TestASeparatorUniformDisk(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := instance.UniformDisk(rng, 60, 6)
	runAlg(t, ASeparator{}, in, 0)
}

func TestASeparatorClusterChain(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	in := instance.ClusterChain(rng, 3, 8, 5, 0.8)
	runAlg(t, ASeparator{}, in, 0)
}

func TestASeparatorGrid(t *testing.T) {
	in := instance.GridSwarm(5, 1.2)
	runAlg(t, ASeparator{}, in, 0)
}

func TestASeparatorSingleRobot(t *testing.T) {
	in := &instance.Instance{Name: "one", Source: geom.Origin,
		Points: []geom.Point{geom.Pt(3, 1)}}
	res, _ := runAlg(t, ASeparator{}, in, 0)
	if res.Makespan <= 0 {
		t.Error("zero makespan for singleton")
	}
}

func TestASeparatorDenseCluster(t *testing.T) {
	// Everything within the radius-1 ball: terminal path, wake in O(1).
	rng := rand.New(rand.NewSource(5))
	pts := make([]geom.Point, 30)
	for i := range pts {
		pts[i] = geom.Pt(rng.Float64()*0.9, rng.Float64()*0.9)
	}
	in := &instance.Instance{Name: "dense", Source: geom.Origin, Points: pts}
	res, _ := runAlg(t, ASeparator{}, in, 0)
	if res.Makespan > 50 {
		t.Errorf("makespan %v too large for a unit cluster", res.Makespan)
	}
}

// --- AGrid correctness --------------------------------------------------------

func TestAGridLine(t *testing.T) {
	in := instance.Line(15, 1)
	res, _ := runAlg(t, AGrid{}, in, 0)
	tup := TupleFor(in)
	// Theorem 4 energy bound: O(ℓ²) per robot. Constant from the
	// implementation: ≤ 8 slots × (sweep + travel + wake) ≈ 10·(R²+20R).
	r := 2 * tup.Ell
	if bound := 10 * (r*r + 20*r); res.MaxEnergy > bound {
		t.Errorf("MaxEnergy %.4g exceeds O(ℓ²) bound %.4g", res.MaxEnergy, bound)
	}
}

func TestAGridRandomWalks(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for trial := 0; trial < 3; trial++ {
		in := instance.RandomWalk(rng, 25, 0.8)
		runAlg(t, AGrid{}, in, 0)
	}
}

func TestAGridClusterChain(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	in := instance.ClusterChain(rng, 3, 6, 4, 0.6)
	runAlg(t, AGrid{}, in, 0)
}

func TestAGridWithBudget(t *testing.T) {
	// AGrid must succeed under an O(ℓ²) per-robot budget (Theorem 4).
	in := instance.Line(12, 1)
	tup := TupleFor(in)
	r := 2 * tup.Ell
	budget := 10 * (r*r + 20*r)
	res, _ := runAlg(t, AGrid{}, in, budget)
	if res.MaxEnergy > budget {
		t.Errorf("energy %v over budget %v", res.MaxEnergy, budget)
	}
}

func TestAGridSingleCell(t *testing.T) {
	// Everything in the source's own cell: round 0 suffices.
	pts := []geom.Point{geom.Pt(0.4, 0.3), geom.Pt(-0.5, 0.2), geom.Pt(0.1, -0.6)}
	in := &instance.Instance{Name: "cell", Source: geom.Origin, Points: pts}
	runAlg(t, AGrid{}, in, 0)
}

// --- AWave correctness ---------------------------------------------------------

func TestAWaveSingleSquare(t *testing.T) {
	// ℓ = 1 ⇒ wave ℓ = 4, R = 256: a radius-20 swarm fits in the source's
	// square, so AWave reduces to one ASeparator execution.
	rng := rand.New(rand.NewSource(8))
	in := instance.RandomWalk(rng, 40, 0.9)
	res, _ := runAlg(t, AWave{}, in, 0)
	if res.Makespan <= 0 {
		t.Error("zero makespan")
	}
}

func TestAWaveDense(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	in := instance.UniformDisk(rng, 50, 5)
	runAlg(t, AWave{}, in, 0)
}

// --- Cross-algorithm agreement -------------------------------------------------

func TestAllAlgorithmsAgreeOnWakeup(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	in := instance.RandomWalk(rng, 30, 0.85)
	for _, alg := range []Algorithm{ASeparator{}, AGrid{}, AWave{}} {
		res, _ := runAlg(t, alg, in, 0)
		if res.Awakened != in.N() {
			t.Errorf("%s woke %d of %d", alg.Name(), res.Awakened, in.N())
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	in := instance.RandomWalk(rng, 25, 0.9)
	for _, alg := range []Algorithm{ASeparator{}, AGrid{}} {
		r1, _ := runAlg(t, alg, in, 0)
		r2, _ := runAlg(t, alg, in, 0)
		if r1.Makespan != r2.Makespan || r1.TotalEnergy != r2.TotalEnergy {
			t.Errorf("%s nondeterministic: %v/%v vs %v/%v",
				alg.Name(), r1.Makespan, r1.TotalEnergy, r2.Makespan, r2.TotalEnergy)
		}
	}
}
