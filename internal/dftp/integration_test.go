package dftp

import (
	"math/rand"
	"testing"

	"freezetag/internal/geom"
	"freezetag/internal/instance"
	"freezetag/internal/sim"
)

// Property: every algorithm's makespan respects the travel floor ρ* (the
// farthest robot cannot be woken before a robot has traveled to it), and
// every robot's wake time respects its own distance floor.
func TestMakespanTravelFloor(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	algs := []Algorithm{ASeparator{}, ASeparatorAuto{}, AGrid{}}
	for trial := 0; trial < 4; trial++ {
		in := instance.RandomWalk(rng, 15+rng.Intn(25), 0.9)
		p := in.Params()
		for _, alg := range algs {
			tup := TupleFor(in)
			e := sim.NewEngine(sim.Config{Source: in.Source, Sleepers: in.Points})
			rep := alg.Install(e, tup)
			res, err := e.Run()
			if err != nil {
				t.Fatalf("%s: %v", alg.Name(), err)
			}
			if !res.AllAwake || len(rep.Misses) > 0 {
				t.Fatalf("%s trial %d: awake=%v misses=%d", alg.Name(), trial, res.AllAwake, len(rep.Misses))
			}
			if res.Makespan < p.Rho-1e-9 {
				t.Errorf("%s: makespan %v below ρ* = %v", alg.Name(), res.Makespan, p.Rho)
			}
			for i := 1; i <= in.N(); i++ {
				r := e.Robot(i)
				if r.WakeTime() < r.InitPos().Dist(in.Source)-1e-9 {
					t.Errorf("%s: robot %d woke at %v, below distance %v",
						alg.Name(), i, r.WakeTime(), r.InitPos().Dist(in.Source))
				}
			}
		}
	}
}

func TestASeparatorOnDiskGrid(t *testing.T) {
	in := instance.DiskGridStatic(10, 2, 50)
	runAlg(t, ASeparator{}, in, 0)
}

func TestASeparatorOnPath(t *testing.T) {
	in, err := instance.BuildPath(instance.PathSpec{Ell: 2, Rho: 30, B: 4, Xi: 60})
	if err != nil {
		t.Fatal(err)
	}
	runAlg(t, ASeparator{}, in, 0)
}

func TestAGridOnGridSwarm(t *testing.T) {
	in := instance.GridSwarm(6, 1.5)
	runAlg(t, AGrid{}, in, 0)
}

func TestAGridOnUniformDisk(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	in := instance.UniformDisk(rng, 60, 6)
	runAlg(t, AGrid{}, in, 0)
}

func TestAGridOnPath(t *testing.T) {
	in, err := instance.BuildPath(instance.PathSpec{Ell: 2, Rho: 30, B: 4, Xi: 50})
	if err != nil {
		t.Fatal(err)
	}
	runAlg(t, AGrid{}, in, 0)
}

// ASeparator with a generous (but finite) budget must not trip violations:
// its per-robot travel is O(ρ + ℓ²log(ρ/ℓ)) with moderate constants.
func TestASeparatorWithinGenerousBudget(t *testing.T) {
	in := instance.Line(32, 1)
	tup := TupleFor(in)
	budget := 100 * (tup.Rho + tup.Ell*tup.Ell*8)
	res, _ := runAlg(t, ASeparator{}, in, budget)
	if res.MaxEnergy > budget {
		t.Errorf("energy %v exceeded budget %v", res.MaxEnergy, budget)
	}
}

// Seeds sweep: the full pipeline on many random instances, all algorithms.
func TestSeedSweepAllAlgorithms(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep is slow")
	}
	algs := []Algorithm{ASeparator{}, ASeparatorAuto{}, AGrid{}}
	for seed := int64(100); seed < 110; seed++ {
		rng := rand.New(rand.NewSource(seed))
		in := instance.RandomWalk(rng, 10+rng.Intn(40), 0.7+rng.Float64()*0.3)
		for _, alg := range algs {
			res, _ := runAlg(t, alg, in, 0)
			if res.Awakened != in.N() {
				t.Fatalf("seed %d %s: woke %d/%d", seed, alg.Name(), res.Awakened, in.N())
			}
		}
	}
}

// Two robots at the same position must both be woken (co-located targets).
func TestCoLocatedSleepers(t *testing.T) {
	pts := []geom.Point{geom.Pt(2, 1), geom.Pt(2, 1), geom.Pt(3, 1)}
	in := &instance.Instance{Name: "dup", Source: geom.Origin, Points: pts}
	for _, alg := range []Algorithm{ASeparator{}, AGrid{}} {
		runAlg(t, alg, in, 0)
	}
}

// An empty instance (n = 0) terminates immediately for every algorithm.
func TestEmptyInstance(t *testing.T) {
	in := &instance.Instance{Name: "empty", Source: geom.Origin}
	for _, alg := range []Algorithm{ASeparator{}, AGrid{}, AWave{}} {
		tup := Tuple{Ell: 1, Rho: 1, N: 0}
		res, _, err := Solve(alg, in, tup, 0)
		if err != nil {
			t.Fatalf("%s: %v", alg.Name(), err)
		}
		if !res.AllAwake {
			t.Fatalf("%s: empty instance not 'all awake'", alg.Name())
		}
	}
}

// A cluster far from the source but within ρ: ASeparator must find it even
// though large parts of the square are empty (separator pruning at work).
func TestASeparatorSparseFarCluster(t *testing.T) {
	var pts []geom.Point
	// Bridge of robots leading to a far cluster (keeps ℓ* small).
	for i := 1; i <= 20; i++ {
		pts = append(pts, geom.Pt(float64(i), 0))
	}
	rng := rand.New(rand.NewSource(79))
	for i := 0; i < 15; i++ {
		pts = append(pts, geom.Pt(20+rng.Float64(), rng.Float64()))
	}
	in := &instance.Instance{Name: "farcluster", Source: geom.Origin, Points: pts}
	runAlg(t, ASeparator{}, in, 0)
}

// Report.Rounds grows with instance extent for AGrid (the wave advances one
// cell per round).
func TestAGridRoundsGrowWithExtent(t *testing.T) {
	_, repSmall := runAlg(t, AGrid{}, instance.Line(8, 1), 0)
	_, repLarge := runAlg(t, AGrid{}, instance.Line(40, 1), 0)
	if repLarge.Rounds <= repSmall.Rounds {
		t.Errorf("rounds: small=%d large=%d — wave not advancing",
			repSmall.Rounds, repLarge.Rounds)
	}
}
