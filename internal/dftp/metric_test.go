package dftp

import (
	"context"
	"math/rand"
	"testing"

	"freezetag/internal/geom"
	"freezetag/internal/instance"
	"freezetag/internal/sim"
)

// Every algorithm must solve end-to-end under every built-in metric: all
// robots awake, and no robot woken before anything travelling at unit metric
// speed could have reached it (the trivial per-robot lower bound, which is
// metric-dependent and therefore catches a simulator measuring in the wrong
// norm).
func TestAlgorithmsSolveUnderAllMetrics(t *testing.T) {
	metrics := []geom.Metric{geom.L1, geom.L2, geom.LInf}
	algs := []Algorithm{ASeparator{}, AGrid{}, AWave{}, ASeparatorAuto{}}
	instances := []*instance.Instance{
		instance.Line(12, 1),
		instance.RandomWalk(rand.New(rand.NewSource(4)), 16, 0.9),
		instance.ClusterChain(rand.New(rand.NewSource(9)), 2, 6, 4, 1),
	}
	for _, m := range metrics {
		for _, in := range instances {
			tup := TupleForIn(m, in)
			for _, alg := range algs {
				res, _, err := solveEngine(t, m, alg, in, tup)
				if err != nil {
					t.Errorf("%s on %s under %s: %v", alg.Name(), in.Name, m.Name(), err)
					continue
				}
				if !res.AllAwake {
					t.Errorf("%s on %s under %s: %d/%d awake",
						alg.Name(), in.Name, m.Name(), res.Awakened, in.N())
				}
			}
		}
	}
}

// solveEngine runs the algorithm keeping the engine visible so per-robot
// wake times can be checked against the metric lower bound.
func solveEngine(t *testing.T, m geom.Metric, alg Algorithm, in *instance.Instance, tup Tuple) (sim.Result, *Report, error) {
	t.Helper()
	e := sim.NewEngine(sim.Config{Source: in.Source, Sleepers: in.Points, Metric: m})
	rep := alg.Install(e, tup)
	res, err := e.RunCtx(context.Background())
	if err != nil {
		return res, rep, err
	}
	for _, r := range e.AllRobots() {
		if r.ID() == sim.SourceID || r.State() != sim.Awake {
			continue
		}
		lb := geom.MetricOrL2(m).Dist(in.Source, r.InitPos())
		if r.WakeTime() < lb-1e-9 {
			t.Errorf("%s under %s: robot %d woken at %.6g before metric lower bound %.6g",
				alg.Name(), m.Name(), r.ID(), r.WakeTime(), lb)
		}
	}
	return res, rep, err
}

// The ℓ2 entry points must be wrappers: SolveIn(nil) ≡ SolveIn(L2) ≡ Solve,
// result for result.
func TestSolveInL2MatchesSolve(t *testing.T) {
	in := instance.RandomWalk(rand.New(rand.NewSource(2)), 20, 0.9)
	tup := TupleFor(in)
	base, baseRep, err := Solve(AGrid{}, in, tup, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []geom.Metric{nil, geom.L2} {
		res, rep, err := SolveIn(context.Background(), m, AGrid{}, in, tup, 0, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan != base.Makespan || res.TotalEnergy != base.TotalEnergy ||
			res.MaxEnergy != base.MaxEnergy || rep.Rounds != baseRep.Rounds {
			t.Fatalf("SolveIn(%v) diverged from Solve: %+v vs %+v", m, res, base)
		}
	}
}

// TupleForIn must measure in the requested metric: on an instance with
// diagonal structure, ℓ1 parameters dominate ℓ2 which dominate ℓ∞.
func TestTupleForInOrdering(t *testing.T) {
	in := instance.RandomWalk(rand.New(rand.NewSource(8)), 24, 1.1)
	p1 := in.ParamsIn(geom.L1)
	p2 := in.ParamsIn(geom.L2)
	pi := in.ParamsIn(geom.LInf)
	if !(p1.Rho >= p2.Rho && p2.Rho >= pi.Rho) {
		t.Errorf("ρ* not monotone across metrics: ℓ1=%g ℓ2=%g ℓ∞=%g", p1.Rho, p2.Rho, pi.Rho)
	}
	if !(p1.Ell >= pi.Ell) {
		t.Errorf("ℓ* not ℓ1 ≥ ℓ∞: %g vs %g", p1.Ell, pi.Ell)
	}
	if p1.Rho == pi.Rho {
		t.Errorf("walk instance has identical ρ* under ℓ1 and ℓ∞ (%g) — metric not threaded?", p1.Rho)
	}
}
