// Package dftp implements the paper's three distributed Freeze Tag
// algorithms on the simulator:
//
//   - ASeparator (§3, Theorem 1): divide-and-conquer with geometric
//     separators; makespan O(ρ + ℓ²log(ρ/ℓ)), unconstrained energy.
//   - AGrid (§8.1, Theorem 4): BFS wave over a grid of width-2ℓ squares;
//     energy O(ℓ²), makespan O(ℓ·ξℓ).
//   - AWave (§8.2, Theorem 5): the AGrid wave with width-8ℓ²log₂ℓ squares,
//     each woken by ASeparator; energy O(ℓ²logℓ), makespan
//     O(ξℓ + ℓ²log(ξℓ/ℓ)).
//
// Implementation deviations from the paper, documented in DESIGN.md §6:
// round schedules use 9 slot-widths per round instead of 8 (one slot of
// explicit slack for gathering and late wake-ups), and the slot-work
// constants t(·) are explicit calibrated upper bounds for this codebase's
// exploration and wake-tree constants. Neither changes any asymptotic bound.
package dftp

import (
	"context"
	"fmt"
	"math"
	"sort"

	"freezetag/internal/arena"
	"freezetag/internal/diskgraph"
	"freezetag/internal/geom"
	"freezetag/internal/instance"
	"freezetag/internal/sim"
	"freezetag/internal/wakeup"
)

// Tuple is the (ℓ, ρ, n) input handed to the source robot (Definition 1).
type Tuple struct {
	Ell float64
	Rho float64
	N   int
}

// L returns the integer team-size parameter ⌈ℓ⌉ used for 4ℓ team targets.
func (t Tuple) L() int {
	l := int(math.Ceil(t.Ell))
	if l < 1 {
		l = 1
	}
	return l
}

// Admissible reports ℓ ≤ ρ ≤ nℓ with ℓ > 0.
func (t Tuple) Admissible() bool {
	return t.Ell > 0 && t.Rho >= t.Ell && t.Rho <= float64(t.N)*t.Ell
}

// TupleFor computes an admissible tuple from an instance's exact Euclidean
// parameters, rounding ℓ and ρ up to integers as the paper assumes.
func TupleFor(inst *instance.Instance) Tuple { return TupleForIn(nil, inst) }

// TupleForIn computes the admissible tuple under metric m (nil defaults to
// ℓ2): ℓ* and ρ* are metric-dependent, so the knowledge handed to the source
// must be measured in the metric the simulation runs in.
func TupleForIn(m geom.Metric, inst *instance.Instance) Tuple {
	return TupleFromParams(inst.ParamsIn(m))
}

// TupleFromParams rounds already-computed exact parameters into the
// admissible tuple. Callers that need the params for their own reporting
// use this to avoid a second O(n²) derivation.
func TupleFromParams(p diskgraph.Params) Tuple {
	ell := math.Ceil(p.Ell)
	if ell < 1 {
		ell = 1
	}
	rho := math.Ceil(p.Rho)
	if rho < ell {
		rho = ell
	}
	return Tuple{Ell: ell, Rho: rho, N: p.N}
}

// Report carries run diagnostics surfaced by the algorithms.
type Report struct {
	// Misses lists synchronization-deadline misses. A correct configuration
	// produces none; any entry means the calibrated slot constants were too
	// tight for the instance.
	Misses []string
	// Rounds is the highest round index (AGrid/AWave) or recursion depth
	// (ASeparator) reached.
	Rounds int
}

func (r *Report) miss(format string, args ...interface{}) {
	r.Misses = append(r.Misses, fmt.Sprintf(format, args...))
}

func (r *Report) sawRound(k int) {
	if k > r.Rounds {
		r.Rounds = k
	}
}

// Algorithm is one of the paper's dFTP algorithms.
type Algorithm interface {
	Name() string
	// Install spawns the source program on the engine. The returned Report
	// is filled in during the subsequent Engine.Run.
	Install(e *sim.Engine, tup Tuple) *Report
}

// Solve runs alg on inst with the given per-robot energy budget (≤ 0 for
// unconstrained) and returns the simulation result and report.
func Solve(alg Algorithm, inst *instance.Instance, tup Tuple, budget float64) (sim.Result, *Report, error) {
	return SolveTraced(alg, inst, tup, budget, nil)
}

// SolveTraced is Solve with an event-trace callback attached to the engine
// (nil for none). It is the facade used by callers that need the event
// stream — cmd/dftp-run and the solver service — without reaching into the
// engine themselves. Tracing never changes the result.
func SolveTraced(alg Algorithm, inst *instance.Instance, tup Tuple, budget float64, traceFn func(sim.Event)) (sim.Result, *Report, error) {
	return SolveCtx(context.Background(), alg, inst, tup, budget, traceFn)
}

// SolveCtx is SolveTraced with cooperative cancellation: cancelling ctx
// abandons the simulation at the next event dispatch and returns the partial
// result with an error wrapping sim.ErrCancelled and ctx.Err(). It is the
// entry point of the portfolio racing engine, which cancels losing racers
// once a winner is decided. A nil or background context behaves like Solve.
func SolveCtx(ctx context.Context, alg Algorithm, inst *instance.Instance, tup Tuple, budget float64, traceFn func(sim.Event)) (sim.Result, *Report, error) {
	return SolveIn(ctx, nil, alg, inst, tup, budget, traceFn)
}

// SolveIn is the root of the Solve family: it runs alg on inst with all
// distances — travel times, energy, the radius-1 Look — measured under
// metric m (nil defaults to ℓ2, making every other Solve* a thin wrapper).
// The tuple should be measured in the same metric (see TupleForIn). A
// heterogeneous instance hands its per-robot profiles to the engine, so
// travel times divide by speed and private capacities cap energy; budget
// stays the uniform fallback for robots without a capacity of their own.
func SolveIn(ctx context.Context, m geom.Metric, alg Algorithm, inst *instance.Instance, tup Tuple, budget float64, traceFn func(sim.Event)) (sim.Result, *Report, error) {
	return SolveArena(ctx, nil, m, alg, inst, tup, budget, traceFn)
}

// SolveArena is SolveIn running on the worker arena ar: the simulation
// engine (robot block, spatial indexes, process-goroutine pool, algorithm
// scratch) is checked out of the arena and reset against inst instead of
// being rebuilt, so a steady stream of same-shape jobs simulates without
// allocating. A nil arena degrades to a fresh one-shot engine. The result
// and report are bit-identical to SolveIn's either way, but everything they
// reference is invalidated by the arena's next job — callers marshal within
// the job, which the serving tier does.
func SolveArena(ctx context.Context, ar *arena.Arena, m geom.Metric, alg Algorithm, inst *instance.Instance, tup Tuple, budget float64, traceFn func(sim.Event)) (sim.Result, *Report, error) {
	e := sim.NewEngineIn(ar, sim.Config{
		Source:   inst.Source,
		Sleepers: inst.Points,
		Budget:   budget,
		Profiles: simProfiles(inst),
		Metric:   m,
		Trace:    traceFn,
	})
	rep := alg.Install(e, tup)
	res, err := e.RunCtx(ctx)
	return res, rep, err
}

// simProfiles converts an instance's profiles to the simulator's mirror
// type (nil for homogeneous instances).
func simProfiles(inst *instance.Instance) []sim.Profile {
	if len(inst.Profiles) == 0 {
		return nil
	}
	ps := make([]sim.Profile, len(inst.Profiles))
	for i, p := range inst.Profiles {
		ps[i] = sim.Profile{Speed: p.Speed, Capacity: p.Capacity}
	}
	return ps
}

// wakeTarget builds the wakeup.Target of robot id at pos, attaching the
// robot's capability profile when the engine is heterogeneous. Profile-free
// engines keep the zero-valued targets that reproduce the pre-profile wake
// trees exactly (see wakeup.BuildTreeIn).
func wakeTarget(e *sim.Engine, id int, pos geom.Point) wakeup.Target {
	t := wakeup.Target{ID: id, Pos: pos}
	if e.Heterogeneous() {
		r := e.Robot(id)
		t.Speed = r.Speed()
		if b := r.Budget(); !math.IsInf(b, 1) {
			t.Capacity = b - r.Energy()
		}
	}
	return t
}

// asleepNow filters a discovery map down to robots still asleep, which under
// region exclusivity equals the caller's logical knowledge.
func asleepNow(e *sim.Engine, known map[int]geom.Point) map[int]geom.Point {
	out := make(map[int]geom.Point, len(known))
	for id, pos := range known {
		if e.Robot(id).State() == sim.Asleep {
			out[id] = pos
		}
	}
	return out
}

// sortedIDs returns the keys of set in ascending order.
func sortedIDs(set map[int]geom.Point) []int {
	ids := make([]int, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	return ids
}

// assignSub maps a point to the index of the sub-square that owns it:
// the first quadrant strictly containing it, falling back to tolerant
// containment for points on the top/right boundary. Every point of the
// parent square is assigned to exactly one sub-square.
func assignSub(p geom.Point, subs [4]geom.Square) int {
	for i, s := range subs {
		if s.Rect().ContainsStrict(p) {
			return i
		}
	}
	for i, s := range subs {
		if s.Contains(p) {
			return i
		}
	}
	// Outside the parent square entirely: attribute to the nearest
	// sub-square so the caller's filters can still reject it consistently.
	best, bd := 0, math.Inf(1)
	for i, s := range subs {
		if d := s.Rect().DistTo(p); d < bd {
			best, bd = i, d
		}
	}
	return best
}
