package dftp

import (
	"math/rand"
	"testing"

	"freezetag/internal/instance"
)

// Stress tests exercise the full pipeline at swarm sizes well above the
// regular suite; they are skipped with -short.

func TestStressASeparatorLargeWalk(t *testing.T) {
	if testing.Short() {
		t.Skip("stress")
	}
	rng := rand.New(rand.NewSource(501))
	in := instance.RandomWalk(rng, 400, 0.9)
	res, _ := runAlg(t, ASeparator{}, in, 0)
	if res.Awakened != 400 {
		t.Fatalf("woke %d/400", res.Awakened)
	}
}

func TestStressASeparatorLongLine(t *testing.T) {
	if testing.Short() {
		t.Skip("stress")
	}
	in := instance.Line(500, 1)
	res, _ := runAlg(t, ASeparator{}, in, 0)
	p := in.Params()
	// Makespan stays within the usual constant of the model even at scale.
	model := p.Rho + 1*8 // ℓ=1: lg(500) ≈ 9
	if res.Makespan > 40*model {
		t.Errorf("makespan %v blew past 40x model %v", res.Makespan, model)
	}
}

func TestStressAGridDenseDisk(t *testing.T) {
	if testing.Short() {
		t.Skip("stress")
	}
	rng := rand.New(rand.NewSource(503))
	in := instance.UniformDisk(rng, 300, 8)
	runAlg(t, AGrid{}, in, 0)
}

func TestStressDeterminismAtScale(t *testing.T) {
	if testing.Short() {
		t.Skip("stress")
	}
	rng := rand.New(rand.NewSource(505))
	in := instance.RandomWalk(rng, 250, 0.85)
	a, _ := runAlg(t, ASeparator{}, in, 0)
	b, _ := runAlg(t, ASeparator{}, in, 0)
	if a.Makespan != b.Makespan || a.TotalEnergy != b.TotalEnergy {
		t.Fatalf("nondeterminism at scale: %v/%v vs %v/%v",
			a.Makespan, a.TotalEnergy, b.Makespan, b.TotalEnergy)
	}
}

func TestStressAdversarialMidSize(t *testing.T) {
	if testing.Short() {
		t.Skip("stress")
	}
	in := instance.DiskGridStatic(20, 2, 120)
	runAlg(t, ASeparator{}, in, 0)
}
