package dftp

import (
	"fmt"
	"sort"

	"freezetag/internal/explore"
	"freezetag/internal/geom"
	"freezetag/internal/sampling"
	"freezetag/internal/separator"
	"freezetag/internal/sim"
	"freezetag/internal/wakeup"
)

// ASeparator is the unconstrained-energy algorithm of §3 (Theorem 1).
type ASeparator struct{}

// Name implements Algorithm.
func (ASeparator) Name() string { return "ASeparator" }

// Install implements Algorithm: the source recruits an initial team of 4ℓ
// robots by DFSampling the width-2ρ square (Round 0), then runs the
// partition/explore/recruit/reorganize rounds.
func (ASeparator) Install(e *sim.Engine, tup Tuple) *Report {
	rep := &Report{}
	e.Spawn(sim.SourceID, func(p *sim.Proc) {
		S := geom.Sq(p.Self().Pos(), 2*tup.Rho)
		ctx := &sepCtx{eng: e, tup: tup, rep: rep}
		ctx.runFromSource(p, S, S.Contains)
	})
	return rep
}

// sepCtx is the shared state of one ASeparator execution (standalone, or one
// AWave slot).
type sepCtx struct {
	eng *sim.Engine
	tup Tuple
	rep *Report
	// cont, when non-nil, runs on every robot woken by this execution after
	// its share of the work completes (AWave round participation).
	cont func(*sim.Proc)
	// imported marks robots that entered the region from outside (AWave wave
	// teams); they never join reorganized teams and return to the caller.
	imported map[int]bool
	// wg, when non-nil, tracks spawned recursion branches so an AWave slot
	// leader can wait for the whole subtree.
	wg *sim.WaitGroup
	// nonce makes barrier keys unique across separate executions that may
	// visit the same square.
	nonce string
}

// runFromSource executes Round 0 (initial recruitment from the source) and
// then the round recursion on square S. admit is the ownership predicate
// for S (exclusive cell assignment when neighboring regions exist). It
// returns true when the source's own round was terminal, in which case the
// caller decides whether the source itself gets the continuation.
func (c *sepCtx) runFromSource(p *sim.Proc, S geom.Square, admit func(geom.Point) bool) bool {
	l4 := 4 * c.tup.L()
	c.nonce = fmt.Sprintf("sep@%d/%.6g", p.ID(), p.Now())
	out, err := sampling.Run(p, nil, sampling.Request{
		Region:        S.Rect(),
		Square:        S,
		Ell:           c.tup.Ell,
		RecruitTarget: l4 - 1,
		Seeds:         []sampling.Seed{{Pos: p.Self().Pos(), AsleepID: -1}},
		Admit:         admit,
	})
	if err != nil {
		c.rep.miss("round 0 sampling: %v", err)
		return false
	}
	if _, err := p.Escort(out.Members, S.Center); err != nil {
		c.rep.miss("round 0 escort: %v", err)
		return false
	}
	known := asleepNow(c.eng, out.Discovered)
	return c.round(p, out.Members, S, admit, known, 1)
}

// round executes Round k on square S with the calling process as leader and
// members as co-located passive teammates, all positioned at the center of
// S. admit is the ownership predicate for S (points of sibling regions are
// excluded); known maps discovered, still-sleeping robots of S to their
// positions. It returns true when this was a terminal round (the leader's
// robot is free afterwards) and false when the team was partitioned into new
// teams that own the leader's robot.
func (c *sepCtx) round(p *sim.Proc, members []int, S geom.Square,
	admit func(geom.Point) bool, known map[int]geom.Point, depth int) bool {
	c.rep.sawRound(depth)
	l4 := 4 * c.tup.L()
	total := len(members) + 1
	if total < l4 {
		c.terminalWake(p, members, S, admit, known)
		return true
	}
	if S.Width <= 4*c.tup.Ell {
		// Base case: the square is small enough to sweep outright within one
		// round budget (Corollary 1); recursing further cannot shrink teams.
		c.baseExploreWake(p, members, S, admit, known)
		return true
	}

	// --- Partition -----------------------------------------------------
	subs := S.SubSquares()
	groups := partitionTeam(p.ID(), members)
	st := &roundState{}
	key := fmt.Sprintf("reorg/%s/%.6g,%.6g/%.6g/%d", c.nonce, S.Center.X, S.Center.Y, S.Width, depth)
	allTeam := append([]int{p.ID()}, members...)

	for i := 1; i < 4; i++ {
		i := i
		g := groups[i]
		if len(g) == 0 {
			// Degenerate tiny team split; mark the slot empty.
			st.outcomes[i].Discovered = map[int]geom.Point{}
			continue
		}
		leader, rest := g[0], g[1:]
		st.active++
		c.eng.Spawn(leader, func(q *sim.Proc) {
			c.groupWork(q, rest, S, subs, i, admit, known, allTeam, st, key)
		})
	}
	st.active++
	c.groupWork(p, groups[0], S, subs, 0, admit, known, allTeam, st, key)

	// --- Reorganization (coordinator = group-0 leader) ------------------
	c.reorganize(p, S, subs, admit, known, allTeam, st, depth)
	return false
}

// roundState is the blackboard the four group leaders share; writes happen
// before the reorganization barrier, reads after, under strict handoff.
type roundState struct {
	outcomes [4]sampling.Outcome
	active   int // number of group processes participating in the barrier
}

// partitionTeam splits leader+members into four groups of near-equal size.
// groups[0] belongs to the calling leader and excludes its own id; groups
// 1..3 are led by their first element.
func partitionTeam(leaderID int, members []int) [4][]int {
	rest := append([]int(nil), members...)
	sort.Ints(rest)
	var groups [4][]int
	n := len(rest) + 1 // leader included in group 0's headcount
	for i := 0; i < 4; i++ {
		share := n / 4
		if i < n%4 {
			share++
		}
		if i == 0 {
			share-- // leader itself fills one slot of group 0
		}
		if share > len(rest) {
			share = len(rest)
		}
		groups[i] = rest[:share]
		rest = rest[share:]
	}
	// Any remainder from clamping joins group 0.
	groups[0] = append(groups[0], rest...)
	return groups
}

// groupWork is phase (iii)+(iv) for one sub-square: explore its separator,
// recruit by DFSampling, then return to the center of S and synchronize.
func (c *sepCtx) groupWork(q *sim.Proc, rest []int, S geom.Square, subs [4]geom.Square,
	i int, admit func(geom.Point) bool, known map[int]geom.Point,
	allTeam []int, st *roundState, key string) {

	sub := subs[i]
	subAdmit := func(pt geom.Point) bool { return admit(pt) && assignSub(pt, subs) == i }
	sep := separator.Of(sub, c.tup.Ell)

	// (iii) Exploration of sep(sub): sweep its rectangles, gathering at the
	// sub-square center.
	disc := make(map[int]geom.Point, len(known))
	for id, pos := range known {
		disc[id] = pos
	}
	rects := sep.Rects()
	team := rest
	for j, r := range rects {
		dest := sub.Center
		if j < len(rects)-1 {
			dest = rects[j+1].Min
		}
		res, err := explore.Rect(q, team, r, dest)
		if err != nil {
			c.rep.miss("sep explore: %v", err)
		}
		for id, pos := range res.Asleep {
			if _, ok := disc[id]; !ok {
				disc[id] = pos
			}
		}
	}

	// (iv) Recruitment: seeds X_i are the initial positions in sep(sub) of
	// robots found asleep plus those of already-awake robots (the team's
	// own origins in the separator).
	var seeds []sampling.Seed
	for id, pos := range asleepNow(c.eng, disc) {
		if sep.Contains(pos) && subAdmit(pos) {
			seeds = append(seeds, sampling.Seed{Pos: pos, AsleepID: id})
		}
	}
	for _, id := range allTeam {
		pos := c.eng.Robot(id).InitPos()
		if sep.Contains(pos) && subAdmit(pos) {
			seeds = append(seeds, sampling.Seed{Pos: pos, AsleepID: -1})
		}
	}

	existing := 0
	for _, id := range allTeam {
		if !c.imported[id] && assignSub(c.eng.Robot(id).InitPos(), subs) == i && admit(c.eng.Robot(id).InitPos()) {
			existing++
		}
	}
	l4 := 4 * c.tup.L()
	out := sampling.Outcome{Discovered: disc, Members: team}
	if target := l4 - existing; target > 0 {
		var err error
		out, err = sampling.Run(q, team, sampling.Request{
			Region:        sub.Rect(),
			Square:        sub,
			Ell:           c.tup.Ell,
			RecruitTarget: target,
			Seeds:         seeds,
			Known:         disc,
			Admit:         subAdmit,
		})
		if err != nil {
			c.rep.miss("dfsampling: %v", err)
		}
	}
	st.outcomes[i] = out

	// Return to the center of S and synchronize with the sibling groups.
	if _, err := q.Escort(out.Members, S.Center); err != nil {
		c.rep.miss("return escort: %v", err)
	}
	q.Barrier(key, st.active)
	// Groups 1..3 end here; their robots are passive at the center of S and
	// get re-teamed by the coordinator. Group 0 continues in round().
}

// reorganize is phase (v): form the next-round teams by sub-square of
// origin, spawn their leaders, and dispatch them.
func (c *sepCtx) reorganize(p *sim.Proc, S geom.Square, subs [4]geom.Square,
	admit func(geom.Point) bool, known map[int]geom.Point,
	allTeam []int, st *roundState, depth int) {

	merged := make(map[int]geom.Point, len(known))
	for id, pos := range known {
		merged[id] = pos
	}
	var teams [4][]int
	for i := range st.outcomes {
		for id, pos := range st.outcomes[i].Discovered {
			if _, ok := merged[id]; !ok {
				merged[id] = pos
			}
		}
		teams[i] = append(teams[i], st.outcomes[i].Recruits...)
	}
	// Existing robots join the team of their origin's sub-square; imported
	// robots stay with the caller.
	for _, id := range allTeam {
		if c.imported[id] {
			continue
		}
		origin := c.eng.Robot(id).InitPos()
		if !admit(origin) {
			continue
		}
		teams[assignSub(origin, subs)] = append(teams[assignSub(origin, subs)], id)
	}

	stillAsleep := asleepNow(c.eng, merged)
	for i := range teams {
		if len(teams[i]) == 0 {
			continue
		}
		i := i
		team := teams[i]
		sort.Ints(team)
		leader, rest := team[0], team[1:]
		subAdmit := func(pt geom.Point) bool { return admit(pt) && assignSub(pt, subs) == i }
		childKnown := make(map[int]geom.Point)
		for id, pos := range stillAsleep {
			if subAdmit(pos) {
				childKnown[id] = pos
			}
		}
		if c.wg != nil {
			c.wg.Add(1)
		}
		c.eng.Spawn(leader, func(q *sim.Proc) {
			if _, err := q.Escort(rest, subs[i].Center); err != nil {
				c.rep.miss("dispatch escort: %v", err)
			}
			terminal := c.round(q, rest, subs[i], subAdmit, childKnown, depth+1)
			if c.wg != nil {
				c.wg.Done()
			}
			if terminal && c.cont != nil {
				c.cont(q)
			}
		})
	}
	// The coordinator's process ends in round()'s caller; if its robot was
	// re-teamed, the new leader's process now owns it. Imported robots
	// (AWave) remain with the caller at the center of S.
}

// terminalWake is the Termination phase: a centralized awakening of the
// known sleeping robots of S (the team was recruited below 4ℓ, so Lemma 5
// guarantees known covers all of P ∩ S).
func (c *sepCtx) terminalWake(p *sim.Proc, members []int, S geom.Square,
	admit func(geom.Point) bool, known map[int]geom.Point) {

	targets := make([]wakeup.Target, 0, len(known))
	for _, id := range sortedIDs(asleepNow(c.eng, known)) {
		pos := known[id]
		if admit(pos) {
			targets = append(targets, wakeTarget(c.eng, id, pos))
		}
	}
	tree := wakeup.BuildTreeIn(c.eng.Metric(), p.Self().Pos(), targets)
	if err := wakeup.Propagate(p, tree, c.cont); err != nil {
		c.rep.miss("terminal propagate: %v", err)
	}
	c.releaseMembers(members)
}

// baseExploreWake handles squares of width ≤ 4ℓ: sweep the whole square with
// the team, then wake every discovered robot with a wake-up tree
// (Corollary 1's explore-and-wake, generalized to a team).
func (c *sepCtx) baseExploreWake(p *sim.Proc, members []int, S geom.Square,
	admit func(geom.Point) bool, known map[int]geom.Point) {

	res, err := explore.Rect(p, members, S.Rect(), S.Center)
	if err != nil {
		c.rep.miss("base explore: %v", err)
	}
	merged := make(map[int]geom.Point, len(known)+len(res.Asleep))
	for id, pos := range known {
		merged[id] = pos
	}
	for id, pos := range res.Asleep {
		merged[id] = pos
	}
	targets := make([]wakeup.Target, 0, len(merged))
	for _, id := range sortedIDs(asleepNow(c.eng, merged)) {
		pos := merged[id]
		if admit(pos) {
			targets = append(targets, wakeTarget(c.eng, id, pos))
		}
	}
	tree := wakeup.BuildTreeIn(c.eng.Metric(), p.Self().Pos(), targets)
	if err := wakeup.Propagate(p, tree, c.cont); err != nil {
		c.rep.miss("base propagate: %v", err)
	}
	c.releaseMembers(members)
}

// releaseMembers ends the team life of passive members after a terminal
// round: fresh robots get the continuation, imported robots stay passive
// for their caller to collect.
func (c *sepCtx) releaseMembers(members []int) {
	if c.cont == nil {
		return
	}
	for _, id := range members {
		if c.imported[id] {
			continue
		}
		c.eng.Spawn(id, c.cont)
	}
}
