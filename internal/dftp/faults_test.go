package dftp

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"freezetag/internal/instance"
	"freezetag/internal/sim"
)

func faultAlgs() []Algorithm {
	return []Algorithm{ASeparator{}, AGrid{}, AWave{}, ASeparatorAuto{}}
}

func solveFaulted(t *testing.T, alg Algorithm, in *instance.Instance, f *Faults, traceFn func(sim.Event)) (sim.Result, *Report) {
	t.Helper()
	tup := TupleFor(in)
	res, rep, err := SolveFaulted(context.Background(), nil, nil, alg, in, tup, math.Inf(1), f, traceFn)
	if err != nil {
		t.Fatalf("%s on %s: %v", alg.Name(), in.Name, err)
	}
	return res, rep
}

func TestFaultsValidate(t *testing.T) {
	cases := []struct {
		name string
		f    *Faults
		ok   bool
	}{
		{"nil", nil, true},
		{"crash-stop", &Faults{Kind: "crash-stop", Rate: 0.3}, true},
		{"crash-recovery", &Faults{Kind: "crash-recovery", Rate: 1, Downtime: 2.5}, true},
		{"wake-drop", &Faults{Kind: "wake-drop", Rate: 0.5, Seed: 9}, true},
		{"wake-dup", &Faults{Kind: "wake-dup", Rate: 0}, true},
		{"byzantine", &Faults{Kind: "byzantine", Byzantine: 2}, true},
		{"unknown kind", &Faults{Kind: "meteor"}, false},
		{"empty kind", &Faults{}, false},
		{"negative rate", &Faults{Kind: "crash-stop", Rate: -0.1}, false},
		{"rate above one", &Faults{Kind: "crash-stop", Rate: 1.5}, false},
		{"nan rate", &Faults{Kind: "crash-stop", Rate: math.NaN()}, false},
		{"nan downtime", &Faults{Kind: "crash-recovery", Rate: 0.1, Downtime: math.NaN()}, false},
		{"inf downtime", &Faults{Kind: "crash-recovery", Rate: 0.1, Downtime: math.Inf(1)}, false},
		{"negative downtime", &Faults{Kind: "crash-recovery", Rate: 0.1, Downtime: -1}, false},
		{"byzantine without count", &Faults{Kind: "byzantine"}, false},
		{"byzantine count on crash", &Faults{Kind: "crash-stop", Rate: 0.1, Byzantine: 3}, false},
	}
	for _, c := range cases {
		err := c.f.Validate()
		if c.ok && err != nil {
			t.Errorf("%s: unexpected error %v", c.name, err)
		}
		if !c.ok && err == nil {
			t.Errorf("%s: expected an error", c.name)
		}
	}
}

func TestFaultsCanon(t *testing.T) {
	var nilF *Faults
	if got := nilF.Canon(); got != "" {
		t.Errorf("nil Canon = %q, want empty", got)
	}
	f := &Faults{Kind: "crash-stop", Rate: 0.25, Seed: 7, Repair: true}
	want := "kind=crash-stop;rate=0x1p-02;seed=7;byz=0;down=0x0p+00;repair=1"
	if got := f.Canon(); got != want {
		t.Errorf("Canon = %q, want %q", got, want)
	}
	// -0 normalizes: a spec differing only by float zero sign must collide.
	a := &Faults{Kind: "wake-drop", Rate: 0, Downtime: math.Copysign(0, -1)}
	b := &Faults{Kind: "wake-drop", Rate: 0, Downtime: 0}
	if a.Canon() != b.Canon() {
		t.Errorf("-0 not normalized: %q vs %q", a.Canon(), b.Canon())
	}
}

// TestSolveFaultedNilDelegates checks that a nil fault spec is byte-for-byte
// the fault-free solver: same makespan, same wake order, zero fault stats.
func TestSolveFaultedNilDelegates(t *testing.T) {
	in := instance.UniformDisk(rand.New(rand.NewSource(11)), 40, 10)
	for _, alg := range faultAlgs() {
		base, _ := runAlg(t, alg, in, math.Inf(1))
		res, _ := solveFaulted(t, alg, in, nil, nil)
		if res.Makespan != base.Makespan || res.Awakened != base.Awakened {
			t.Errorf("%s: nil faults diverged: makespan %v vs %v", alg.Name(), res.Makespan, base.Makespan)
		}
		if res.Faults.Injected() != 0 {
			t.Errorf("%s: fault stats on nil plan: %+v", alg.Name(), res.Faults)
		}
	}
}

// TestCrashStopRepairCompletes is the headline resilience guarantee: under
// crash-stop faults with the repair layer armed, every algorithm still wakes
// the whole swarm (the source is fault-immune, so a live rescuer always
// exists), and the makespan inflation stays bounded.
func TestCrashStopRepairCompletes(t *testing.T) {
	in := instance.UniformDisk(rand.New(rand.NewSource(5)), 60, 12)
	for _, alg := range faultAlgs() {
		base, _ := runAlg(t, alg, in, math.Inf(1))
		f := &Faults{Kind: "crash-stop", Rate: 0.3, Seed: 42, Repair: true}
		res, _ := solveFaulted(t, alg, in, f, nil)
		if !res.AllAwake {
			t.Errorf("%s: crash-stop with repair left %d asleep (faults %+v)",
				alg.Name(), in.N()-res.Awakened, res.Faults)
		}
		if res.Faults.CrashStops == 0 {
			t.Errorf("%s: rate 0.3 over %d robots injected no crashes", alg.Name(), in.N())
		}
		if res.Faults.Repairs == 0 {
			t.Errorf("%s: crashes occurred but no repairs dispatched", alg.Name())
		}
		// Bounded inflation: generous constant, but it must not blow up.
		if res.Makespan > 10*base.Makespan {
			t.Errorf("%s: repaired makespan %.4g vs fault-free %.4g exceeds 10x",
				alg.Name(), res.Makespan, base.Makespan)
		}
	}
}

// TestCrashStopNoRepairIncomplete pins the contrast: the same fault draw
// without the repair layer strands sleepers (crashed carriers take their
// subtrees with them).
func TestCrashStopNoRepairIncomplete(t *testing.T) {
	in := instance.UniformDisk(rand.New(rand.NewSource(5)), 60, 12)
	f := &Faults{Kind: "crash-stop", Rate: 0.3, Seed: 42}
	stranded := false
	for _, alg := range faultAlgs() {
		res, _ := solveFaulted(t, alg, in, f, nil)
		if !res.AllAwake {
			stranded = true
		}
	}
	if !stranded {
		t.Error("rate-0.3 crash-stop without repair completed on every algorithm; fault injection looks inert")
	}
}

func TestCrashRecoveryRepairCompletes(t *testing.T) {
	in := instance.UniformDisk(rand.New(rand.NewSource(17)), 50, 10)
	for _, alg := range faultAlgs() {
		f := &Faults{Kind: "crash-recovery", Rate: 0.4, Seed: 7, Repair: true}
		res, _ := solveFaulted(t, alg, in, f, nil)
		if !res.AllAwake {
			t.Errorf("%s: crash-recovery with repair left %d asleep (faults %+v)",
				alg.Name(), in.N()-res.Awakened, res.Faults)
		}
	}
}

func TestWakeDropRepairCompletes(t *testing.T) {
	in := instance.UniformDisk(rand.New(rand.NewSource(23)), 50, 10)
	for _, alg := range faultAlgs() {
		f := &Faults{Kind: "wake-drop", Rate: 0.3, Seed: 3, Repair: true}
		res, _ := solveFaulted(t, alg, in, f, nil)
		if !res.AllAwake {
			t.Errorf("%s: wake-drop with repair left %d asleep (faults %+v)",
				alg.Name(), in.N()-res.Awakened, res.Faults)
		}
		if res.Faults.WakeDrops == 0 {
			t.Errorf("%s: rate 0.3 injected no wake drops", alg.Name())
		}
	}
}

func TestWakeDupHarmless(t *testing.T) {
	in := instance.UniformDisk(rand.New(rand.NewSource(29)), 40, 10)
	for _, alg := range faultAlgs() {
		f := &Faults{Kind: "wake-dup", Rate: 0.5, Seed: 13, Repair: true}
		res, _ := solveFaulted(t, alg, in, f, nil)
		if !res.AllAwake {
			t.Errorf("%s: wake-dup left %d asleep", alg.Name(), in.N()-res.Awakened)
		}
	}
}

func TestByzantineRepairCompletes(t *testing.T) {
	in := instance.UniformDisk(rand.New(rand.NewSource(31)), 50, 10)
	for _, alg := range faultAlgs() {
		f := &Faults{Kind: "byzantine", Byzantine: 3, Seed: 19, Repair: true}
		res, _ := solveFaulted(t, alg, in, f, nil)
		if !res.AllAwake {
			t.Errorf("%s: byzantine with repair left %d asleep (faults %+v)",
				alg.Name(), in.N()-res.Awakened, res.Faults)
		}
		if res.Faults.ByzTakeovers == 0 {
			t.Errorf("%s: 3 byzantine robots never took over a wake", alg.Name())
		}
	}
}

// TestFaultEventDeterminism: same instance + same fault seed must produce the
// identical fault event sequence and the identical repaired result.
func TestFaultEventDeterminism(t *testing.T) {
	in := instance.UniformDisk(rand.New(rand.NewSource(37)), 50, 10)
	for _, kind := range []string{"crash-stop", "crash-recovery", "wake-drop", "byzantine"} {
		f := &Faults{Kind: kind, Rate: 0.35, Seed: 99, Repair: true}
		if kind == "byzantine" {
			f = &Faults{Kind: kind, Byzantine: 2, Seed: 99, Repair: true}
		}
		for _, alg := range faultAlgs() {
			run := func() (string, sim.Result) {
				var sb strings.Builder
				res, _ := solveFaulted(t, alg, in, f, func(ev sim.Event) {
					if strings.HasPrefix(ev.Kind, "fault-") || ev.Kind == "repair" {
						fmt.Fprintf(&sb, "%s@%d t=%v;", ev.Kind, ev.Robot, ev.T)
					}
				})
				return sb.String(), res
			}
			ev1, r1 := run()
			ev2, r2 := run()
			if ev1 != ev2 {
				t.Fatalf("%s/%s: fault event sequences diverged between identical runs", alg.Name(), kind)
			}
			if r1.Makespan != r2.Makespan || r1.Awakened != r2.Awakened || r1.Faults != r2.Faults {
				t.Fatalf("%s/%s: results diverged: %+v vs %+v", alg.Name(), kind, r1.Faults, r2.Faults)
			}
		}
	}
}

// TestFaultSeedsDiffer: different fault seeds draw different fault sets (the
// plan is actually consuming the seed, not a constant).
func TestFaultSeedsDiffer(t *testing.T) {
	in := instance.UniformDisk(rand.New(rand.NewSource(41)), 60, 10)
	f1 := &Faults{Kind: "crash-stop", Rate: 0.5, Seed: 1, Repair: true}
	f2 := &Faults{Kind: "crash-stop", Rate: 0.5, Seed: 2, Repair: true}
	r1, _ := solveFaulted(t, ASeparator{}, in, f1, nil)
	r2, _ := solveFaulted(t, ASeparator{}, in, f2, nil)
	if r1.Faults == r2.Faults && r1.Makespan == r2.Makespan {
		t.Error("seeds 1 and 2 produced identical fault stats and makespan; seed looks unused")
	}
}
