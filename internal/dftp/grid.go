package dftp

import (
	"math"
	"sort"

	"freezetag/internal/explore"
	"freezetag/internal/geom"
	"freezetag/internal/sim"
	"freezetag/internal/wakeup"
)

// AGrid is the minimal-energy algorithm of §8.1 (Theorem 4): the plane is
// partitioned into squares of width 2ℓ; the source wakes its own square, and
// every newly woken generation wakes the 8 adjacent squares of its square on
// a fixed synchronized schedule. Each robot moves only during its own round,
// so the per-robot energy is O(ℓ²).
type AGrid struct{}

// Name implements Algorithm.
func (AGrid) Name() string { return "AGrid" }

// gridSlotWork returns t(ℓ): a guaranteed upper bound on one
// explore-and-wake of a width-R square with this codebase's constants:
// ≤ √2R corner entry + R²/√2+3R sweep + √2R to center + 12R wake tree,
// bounded by R² + 20R (the paper's R² + (10+√2)R with our slack).
func gridSlotWork(r float64) float64 { return r*r + 20*r }

// Install implements Algorithm. The run state lives in the engine's scratch
// stash, so on a pooled engine (arena-backed serving) a repeat AGrid job
// reuses the previous run's registry, report, participant handlers, and
// wake-tree buffers instead of rebuilding them.
func (AGrid) Install(e *sim.Engine, tup Tuple) *Report {
	g := sim.ScratchOf(e, "dftp.agrid", func() *gridRun {
		return &gridRun{reg: make(map[gridKey][]int), rep: &Report{}}
	})
	g.reset(e, tup)
	e.Spawn(sim.SourceID, g.srcFn)
	return g.rep
}

type gridKey struct {
	k      int // round index
	kx, ky int // grid cell of the participants' home square
}

// gridRun is the shared state of one AGrid execution. On a pooled engine
// the same gridRun serves every AGrid run of that engine: reset rewinds the
// per-run state and all the amortized storage (registry value slices, the
// participant-handler cache, the explore/wake staging buffers) carries over.
type gridRun struct {
	eng   *sim.Engine
	rep   *Report
	r     float64 // square width R = 2ℓ
	t     float64 // per-square work bound t(ℓ)
	slotW float64 // slot width t + 3R (√2R travel plus slack)
	reg   map[gridKey][]int

	// srcFn is the source program; conts[k] is the round-k participant
	// handler. Both close over g alone — whose fields reset per run — so
	// they are built once and reused for the life of the engine, instead of
	// allocating one closure per wake.
	srcFn func(*sim.Proc)
	conts []func(*sim.Proc)
	// ids and targets stage one exploreWake's tree construction. They are
	// filled and consumed with no yield in between (the wake-tree builder
	// copies the targets), so concurrent explorers on the same engine never
	// see each other's staging.
	ids     []int
	targets []wakeup.Target
}

// reset rewinds the run state for a fresh execution over tup. Registry keys
// are retained with their value slices truncated: a repeat instance shape
// touches exactly the same (round, cell) teams, so registration allocates
// nothing; stale keys from a previous shape are never read (reads are keyed
// by the current run's home squares).
func (g *gridRun) reset(e *sim.Engine, tup Tuple) {
	g.eng = e
	g.rep.Misses = g.rep.Misses[:0]
	g.rep.Rounds = 0
	g.r = 2 * tup.Ell
	// The slot-work constants are calibrated upper bounds on ℓ2 travel at
	// unit speed; inflating them by the metric's stretch keeps them valid
	// bounds under any ℓp (1× for p ≥ 2, √2× for ℓ1 — see
	// geom.Metric.Stretch), and dividing by the swarm's slowest speed keeps
	// them valid travel-time bounds under heterogeneous profiles (÷1 — the
	// exact IEEE identity — in the homogeneous model).
	st := e.Metric().Stretch() / e.MinSpeed()
	g.t = gridSlotWork(g.r) * st
	g.slotW = g.t + 3*g.r*st
	for k, v := range g.reg {
		g.reg[k] = v[:0]
	}
	if g.srcFn == nil {
		g.srcFn = func(p *sim.Proc) {
			s := geom.GridCell(p.Self().Pos(), g.r)
			g.exploreWake(p, s, g.cont(1))
			if p.Now() > g.t+geom.Eps {
				g.rep.miss("round 0 overran t(ℓ): %.4g > %.4g", p.Now(), g.t)
			}
		}
	}
}

// cont returns the memoized participant handler for round k.
func (g *gridRun) cont(k int) func(*sim.Proc) {
	for len(g.conts) <= k {
		kk := len(g.conts)
		g.conts = append(g.conts, func(p *sim.Proc) { g.runParticipant(kk, p) })
	}
	return g.conts[k]
}

// roundStart returns t_k, the start of round k ≥ 1. Rounds are 9 slot-widths
// apart: 8 work slots plus one slack slot for travel and late wake-ups (a
// schedule deviation from the paper's 8, documented in the package comment).
func (g *gridRun) roundStart(k int) float64 {
	return g.t + 9*g.slotW*float64(k-1)
}

// workDeadline returns the start of work slot i ∈ [1,8] of round k.
func (g *gridRun) workDeadline(k, i int) float64 {
	return g.roundStart(k) + g.slotW*float64(i)
}

// register adds a participant to its (round, home-square) team and returns
// nothing; teams are read at work deadlines, strictly after every round-k
// registration (all wake-ups of round k-1 precede t_k).
func (g *gridRun) register(k int, s geom.Square, id int) {
	kx, ky := geom.GridIndex(s.Center, g.r)
	key := gridKey{k: k, kx: kx, ky: ky}
	g.reg[key] = append(g.reg[key], id)
}

func (g *gridRun) teamLeader(k int, s geom.Square) int {
	kx, ky := geom.GridIndex(s.Center, g.r)
	ids := g.reg[gridKey{k: k, kx: kx, ky: ky}]
	leader := math.MaxInt32
	for _, id := range ids {
		if id < leader {
			leader = id
		}
	}
	return leader
}

// runParticipant is the body run by every robot woken during round k-1:
// visit the 8 adjacent squares of the home square in counter-clockwise
// order; at each synchronized work deadline the lowest-id participant of the
// home square explores and wakes the target square.
func (g *gridRun) runParticipant(k int, p *sim.Proc) {
	g.rep.sawRound(k)
	home := geom.GridCell(p.Self().InitPos(), g.r)
	g.register(k, home, p.ID())
	adj := home.Adjacent8()
	for i, target := range adj {
		if err := p.MoveTo(target.LowerLeft()); err != nil {
			g.rep.miss("round %d corner move: %v", k, err)
			return
		}
		d := g.workDeadline(k, i+1)
		if p.Now() > d+geom.Eps {
			g.rep.miss("robot %d late for round %d slot %d: %.4g > %.4g",
				p.ID(), k, i+1, p.Now(), d)
		}
		p.WaitUntil(d)
		if g.teamLeader(k, home) == p.ID() {
			g.exploreWake(p, target, g.cont(k+1))
		}
	}
}

// exploreWake is Corollary 1's explore-and-wake of one grid square: sweep it
// from its lower-left corner, then wake every sleeping robot belonging to
// the square with a wake-up tree, attaching cont to each woken robot.
func (g *gridRun) exploreWake(p *sim.Proc, s geom.Square, cont func(*sim.Proc)) {
	if err := p.MoveTo(s.LowerLeft()); err != nil {
		g.rep.miss("explore entry: %v", err)
		return
	}
	res, err := explore.Rect(p, nil, s.Rect(), s.Center)
	if err != nil {
		g.rep.miss("explore: %v", err)
		return
	}
	kx, ky := geom.GridIndex(s.Center, g.r)
	ids := g.ids[:0]
	for id := range res.Asleep {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	targets := g.targets[:0]
	for _, id := range ids {
		pos := res.Asleep[id]
		// Sweeps see up to distance 1 beyond the square; only robots whose
		// cell is this square belong to this wake-up tree (the neighbor's
		// explorer owns the rest).
		if cx, cy := geom.GridIndex(pos, g.r); cx != kx || cy != ky {
			continue
		}
		if g.eng.Robot(id).State() != sim.Asleep {
			continue
		}
		targets = append(targets, wakeTarget(g.eng, id, pos))
	}
	g.ids, g.targets = ids, targets
	b := wakeup.BuilderOf(g.eng)
	tree := b.BuildIn(g.eng.Metric(), p.Self().Pos(), targets)
	explore.Recycle(p, res)
	if err := b.Propagate(p, tree, cont); err != nil {
		g.rep.miss("propagate: %v", err)
	}
}
