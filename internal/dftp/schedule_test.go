package dftp

import (
	"math"
	"testing"

	"freezetag/internal/geom"
	"freezetag/internal/instance"
)

func TestGridScheduleMonotone(t *testing.T) {
	g := &gridRun{r: 2, t: gridSlotWork(2)}
	g.slotW = g.t + 3*g.r
	prev := 0.0
	for k := 1; k <= 4; k++ {
		if start := g.roundStart(k); start <= prev {
			t.Fatalf("round %d start %v not after %v", k, start, prev)
		} else {
			prev = start
		}
		for i := 1; i <= 8; i++ {
			d := g.workDeadline(k, i)
			if d <= prev && i > 1 {
				t.Fatalf("slot (%d,%d) deadline %v not increasing", k, i, d)
			}
			prev = d
		}
	}
}

func TestGridSlotWindowsCoverWork(t *testing.T) {
	// A slot window (slotW) must exceed the per-square work bound t plus the
	// corner-to-corner travel 3R — the disjointness argument of §8.1.
	for _, ell := range []float64{1, 2, 4, 8} {
		r := 2 * ell
		wk := gridSlotWork(r)
		slotW := wk + 3*r
		if slotW <= wk+2*math.Sqrt2*r {
			t.Errorf("ℓ=%v: slot width %v too tight for work %v + travel", ell, slotW, wk)
		}
	}
}

func TestGridRegistrationLeader(t *testing.T) {
	g := &gridRun{r: 2, reg: make(map[gridKey][]int)}
	s := geom.GridCell(geom.Pt(0.3, 0.3), 2)
	g.register(1, s, 7)
	g.register(1, s, 3)
	g.register(1, s, 9)
	if leader := g.teamLeader(1, s); leader != 3 {
		t.Errorf("leader = %d, want 3", leader)
	}
	// Different round: separate team.
	g.register(2, s, 5)
	if leader := g.teamLeader(2, s); leader != 5 {
		t.Errorf("round-2 leader = %d, want 5", leader)
	}
}

func TestWaveConstantsExported(t *testing.T) {
	// Exported accessors must agree with the internal schedule.
	for _, ell := range []float64{1, 4, 8} {
		r := AWaveCellWidth(ell)
		lw := math.Max(ell, 4)
		want := 8 * lw * lw * math.Log2(lw)
		if math.Abs(r-want) > 1e-9 {
			t.Errorf("cell width(%v) = %v, want %v", ell, r, want)
		}
		if AWaveSlotWidth(ell) <= r {
			t.Errorf("slot width must exceed cell width at ℓ=%v", ell)
		}
	}
	if AGridSlotWidth(1) != gridSlotWork(2)+6 {
		t.Errorf("AGridSlotWidth(1) = %v", AGridSlotWidth(1))
	}
}

func TestPartitionTeamShapes(t *testing.T) {
	cases := []struct {
		members int
		wantMin int // minimum group size including the leader in group 0
	}{
		{3, 1},  // total 4: groups 1,1,1,1
		{7, 2},  // total 8: groups of 2
		{15, 4}, // total 16
		{12, 3}, // total 13: 4,3,3,3
	}
	for _, c := range cases {
		members := make([]int, c.members)
		for i := range members {
			members[i] = i + 1
		}
		groups := partitionTeam(0, members)
		total := 1
		seen := map[int]bool{}
		for gi, g := range groups {
			size := len(g)
			if gi == 0 {
				size++ // leader
			}
			if size < c.wantMin {
				t.Errorf("members=%d: group %d size %d below %d", c.members, gi, size, c.wantMin)
			}
			total += len(g)
			for _, id := range g {
				if seen[id] {
					t.Errorf("members=%d: id %d in two groups", c.members, id)
				}
				seen[id] = true
			}
		}
		if total != c.members+1 {
			t.Errorf("members=%d: partition covers %d, want %d", c.members, total, c.members+1)
		}
	}
}

func TestAWaveTwoRounds(t *testing.T) {
	// A line long enough to need one real wave round beyond the source
	// square (cell width 256 at ℓ=4): robots out to 1.2·R.
	if testing.Short() {
		t.Skip("multi-round AWave is slow")
	}
	r := AWaveCellWidth(4)
	n := int(r * 1.2 / 4)
	in := instance.Line(n, 4)
	res, rep := runAlg(t, AWave{}, in, 0)
	if rep.Rounds < 1 {
		t.Errorf("rounds = %d, want ≥ 1 wave round", rep.Rounds)
	}
	if res.Makespan <= r {
		t.Errorf("makespan %v suspiciously small for a %v-long line", res.Makespan, float64(n)*4)
	}
}

func TestAWaveEnergyIndependentOfExtent(t *testing.T) {
	// Theorem 5's energy bound: robots in a longer swarm must not spend
	// more than those in a shorter one (each acts in O(1) rounds).
	if testing.Short() {
		t.Skip("multi-round AWave is slow")
	}
	r := AWaveCellWidth(4)
	short, _ := runAlg(t, AWave{}, instance.Line(int(r*0.4/4), 4), 0)
	long, _ := runAlg(t, AWave{}, instance.Line(int(r*1.2/4), 4), 0)
	if long.MaxEnergy > 2*short.MaxEnergy+4*r {
		t.Errorf("max energy grew with extent: %v vs %v", long.MaxEnergy, short.MaxEnergy)
	}
}
