package dftp

import (
	"fmt"
	"math"
	"sort"

	"freezetag/internal/geom"
	"freezetag/internal/sim"
)

// AWave is the energy-efficient wave algorithm of §8.2 (Theorem 5): the
// AGrid wave structure with squares of width 8ℓ²log₂ℓ, each square woken by
// a full ASeparator execution seeded with a team of ≥ 4ℓ imported robots.
// Energy per robot is O(ℓ²logℓ) and the makespan O(ξℓ + ℓ²log(ξℓ/ℓ)).
type AWave struct{}

// Name implements Algorithm.
func (AWave) Name() string { return "AWave" }

// waveEll applies the paper's ℓ ← max(ℓ, 4) adjustment.
func waveEll(ell float64) float64 { return math.Max(ell, 4) }

// waveWidth returns the square width R = 8ℓ²log₂ℓ (with ℓ ≥ 4, so log₂ℓ ≥ 2).
func waveWidth(ell float64) float64 {
	l := waveEll(ell)
	return 8 * l * l * math.Log2(l)
}

// AWaveCellWidth exposes the wave grid cell width R = 8·max(ℓ,4)²·log₂max(ℓ,4)
// for harness-level rate computations.
func AWaveCellWidth(ell float64) float64 { return waveWidth(ell) }

// AWaveSlotWidth exposes the wave schedule's slot width t(R) + 3R.
func AWaveSlotWidth(ell float64) float64 {
	r := waveWidth(ell)
	return waveSlotWork(r, ell) + 3*r
}

// AGridSlotWidth exposes AGrid's slot width t(ℓ) + 3R with R = 2ℓ.
func AGridSlotWidth(ell float64) float64 {
	r := 2 * ell
	return gridSlotWork(r) + 3*r
}

// waveSlotWork returns t(R): a calibrated upper bound on one ASeparator
// execution inside a width-R square starting from a co-located team of 4ℓ,
// covering the whole recursion subtree. ASeparator's cost is
// O(R + ℓ²log(R/ℓ)); the constants below were calibrated against the test
// suite with ample margin (deadline misses are detected and reported).
func waveSlotWork(r, ell float64) float64 {
	l := waveEll(ell)
	return 12*r + 60*l*l*math.Log2(r/l+2)
}

// Install implements Algorithm.
func (AWave) Install(e *sim.Engine, tup Tuple) *Report {
	rep := &Report{}
	w := &waveRun{
		eng: e,
		rep: rep,
		tup: tup,
		ell: waveEll(tup.Ell),
		reg: make(map[gridKey][]int),
	}
	w.r = waveWidth(tup.Ell)
	// Slot-work bounds are ℓ2-calibrated at unit speed; the metric stretch
	// keeps them valid travel bounds under any ℓp, and dividing by the
	// slowest speed keeps them valid travel-time bounds under heterogeneous
	// profiles (see AGrid.Install).
	st := e.Metric().Stretch() / e.MinSpeed()
	w.t = waveSlotWork(w.r, tup.Ell) * st
	w.slotW = w.t + 3*w.r*st
	e.Spawn(sim.SourceID, func(p *sim.Proc) {
		s := geom.GridCell(p.Self().Pos(), w.r)
		admit := w.cellAdmit(s)
		ctx := &sepCtx{
			eng:  e,
			tup:  w.sepTuple(),
			rep:  rep,
			cont: w.participant(1),
		}
		terminal := ctx.runFromSource(p, s, admit)
		if p.Now() > w.t+geom.Eps {
			rep.miss("round 0 overran t(R): %.4g > %.4g", p.Now(), w.t)
		}
		if terminal {
			// The source helps the first wave like any other awake robot.
			w.participant(1)(p)
		}
	})
	return rep
}

// waveRun is the shared state of one AWave execution.
type waveRun struct {
	eng   *sim.Engine
	rep   *Report
	tup   Tuple
	ell   float64 // max(ℓ, 4)
	r     float64 // square width R
	t     float64 // per-square ASeparator bound t(R)
	slotW float64
	reg   map[gridKey][]int
}

// sepTuple is the tuple handed to the inner ASeparator executions: the wave
// parameter ℓ and the square's own radius.
func (w *waveRun) sepTuple() Tuple {
	return Tuple{Ell: w.ell, Rho: w.r, N: w.tup.N}
}

// cellAdmit returns the exclusive ownership predicate of a wave cell.
func (w *waveRun) cellAdmit(s geom.Square) func(geom.Point) bool {
	kx, ky := geom.GridIndex(s.Center, w.r)
	return func(p geom.Point) bool {
		cx, cy := geom.GridIndex(p, w.r)
		return cx == kx && cy == ky
	}
}

func (w *waveRun) roundStart(k int) float64 { return w.t + 9*w.slotW*float64(k-1) }

func (w *waveRun) gatherDeadline(k int) float64 { return w.roundStart(k) + 0.5*w.slotW }

func (w *waveRun) workDeadline(k, i int) float64 {
	return w.roundStart(k) + w.slotW*float64(i)
}

func (w *waveRun) register(k int, s geom.Square, id int) {
	kx, ky := geom.GridIndex(s.Center, w.r)
	w.reg[gridKey{k: k, kx: kx, ky: ky}] = append(w.reg[gridKey{k: k, kx: kx, ky: ky}], id)
}

func (w *waveRun) team(k int, s geom.Square) []int {
	kx, ky := geom.GridIndex(s.Center, w.r)
	ids := append([]int(nil), w.reg[gridKey{k: k, kx: kx, ky: ky}]...)
	sort.Ints(ids)
	return ids
}

// participant returns the handler run by every robot woken during round k-1:
// gather at the home square's lower-left corner; if the gathered team has at
// least 4ℓ robots, its lowest-id member leads it through the 8 adjacent
// squares, waking each with ASeparator.
func (w *waveRun) participant(k int) func(*sim.Proc) {
	return func(p *sim.Proc) {
		w.rep.sawRound(k)
		home := geom.GridCell(p.Self().InitPos(), w.r)
		w.register(k, home, p.ID())
		corner := home.LowerLeft()
		if err := p.MoveTo(corner); err != nil {
			w.rep.miss("round %d gather move: %v", k, err)
			return
		}
		gd := w.gatherDeadline(k)
		if p.Now() > gd+geom.Eps {
			w.rep.miss("robot %d late gathering for round %d: %.4g > %.4g",
				p.ID(), k, p.Now(), gd)
		}
		p.WaitUntil(gd)
		team := w.team(k, home)
		if len(team) < 4*w.sepTuple().L() {
			return // Tr too small to act (per §8.2); everyone stops.
		}
		if team[0] != p.ID() {
			return // passive member: the leader escorts this robot from here on
		}
		w.leadSlots(p, k, home, team[1:])
	}
}

// leadSlots drives a wave team through the 8 adjacent squares of home.
func (w *waveRun) leadSlots(p *sim.Proc, k int, home geom.Square, members []int) {
	members = w.present(p, members)
	imported := map[int]bool{p.ID(): true}
	for _, id := range members {
		imported[id] = true
	}
	for i, target := range home.Adjacent8() {
		var err error
		members, err = p.Escort(members, target.LowerLeft())
		if err != nil {
			w.rep.miss("round %d slot %d corner escort: %v", k, i+1, err)
			return
		}
		d := w.workDeadline(k, i+1)
		if p.Now() > d+geom.Eps {
			w.rep.miss("round %d slot %d late: %.4g > %.4g", k, i+1, p.Now(), d)
		}
		p.WaitUntil(d)
		members, err = p.Escort(members, target.Center)
		if err != nil {
			w.rep.miss("round %d slot %d center escort: %v", k, i+1, err)
			return
		}
		ctx := &sepCtx{
			eng:      w.eng,
			tup:      w.sepTuple(),
			rep:      w.rep,
			cont:     w.participant(k + 1),
			imported: imported,
			wg:       w.eng.NewWaitGroup(),
		}
		ctx.nonce = fmt.Sprintf("wave%d.%d@%d", k, i, p.ID())
		ctx.round(p, members, target, w.cellAdmit(target), nil, 1)
		ctx.wg.Wait(p)
		// The imported team reassembles at the center of the target square
		// (reorganize leaves it there) before heading to the next corner.
	}
}

// present filters the member list to robots actually co-located with the
// leader, dropping stragglers that registered but failed to arrive (each
// such drop is a schedule violation reported elsewhere).
func (w *waveRun) present(p *sim.Proc, members []int) []int {
	out := make([]int, 0, len(members))
	for _, id := range members {
		if w.eng.Robot(id).Pos().Eq(p.Self().Pos()) {
			out = append(out, id)
		} else {
			w.rep.miss("robot %d missing at gather of leader %d", id, p.ID())
		}
	}
	return out
}
