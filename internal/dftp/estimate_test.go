package dftp

import (
	"math"
	"math/rand"
	"testing"

	"freezetag/internal/geom"
	"freezetag/internal/instance"
	"freezetag/internal/sim"
)

func TestEstimateRhoAccuracy(t *testing.T) {
	// On instances large enough to leave the initial sampling unsaturated,
	// ρ̂ must satisfy ρ* ≤ ρ̂ ≤ c·ρ* for the doubling constant c = 4 (the
	// scan returns the first power-of-two width with an empty separator,
	// which is < 4ρ* since width/2 − ℓ > ρ* already empties it).
	cases := []*instance.Instance{
		instance.Line(40, 1),
		instance.GridSwarm(7, 1.2),
	}
	for _, in := range cases {
		p := in.Params()
		tup := TupleFor(in)
		e := sim.NewEngine(sim.Config{Source: in.Source, Sleepers: in.Points})
		rep := &Report{}
		var est Estimate
		e.Spawn(sim.SourceID, func(pr *sim.Proc) {
			est = EstimateRho(pr, tup.Ell, rep)
		})
		if _, err := e.Run(); err != nil {
			t.Fatalf("%s: %v", in.Name, err)
		}
		if len(rep.Misses) > 0 {
			t.Fatalf("%s: %v", in.Name, rep.Misses)
		}
		if est.Covered {
			if math.Abs(est.Rho-p.Rho) > 1e-6 {
				t.Errorf("%s: covered estimate %v, want exact %v", in.Name, est.Rho, p.Rho)
			}
			continue
		}
		if est.Rho < p.Rho-1e-9 {
			t.Errorf("%s: ρ̂ = %v underestimates ρ* = %v", in.Name, est.Rho, p.Rho)
		}
		if est.Rho > 4*p.Rho+4*tup.Ell {
			t.Errorf("%s: ρ̂ = %v too far above ρ* = %v", in.Name, est.Rho, p.Rho)
		}
	}
}

func TestEstimateRhoCoveredSmallSwarm(t *testing.T) {
	// A tiny swarm saturates below 4ℓ: the estimate must be exact.
	in := instance.Line(3, 1)
	p := in.Params()
	e := sim.NewEngine(sim.Config{Source: in.Source, Sleepers: in.Points})
	rep := &Report{}
	var est Estimate
	e.Spawn(sim.SourceID, func(pr *sim.Proc) {
		est = EstimateRho(pr, 1, rep)
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !est.Covered {
		t.Fatal("3-robot swarm should be covered by the initial sampling")
	}
	if math.Abs(est.Rho-p.Rho) > 1e-9 {
		t.Errorf("ρ̂ = %v, want exact %v", est.Rho, p.Rho)
	}
}

func TestASeparatorAutoWakesAll(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	cases := []*instance.Instance{
		instance.Line(30, 1),
		instance.RandomWalk(rng, 40, 0.9),
		instance.GridSwarm(5, 1.5),
		{Name: "tiny", Source: geom.Origin, Points: []geom.Point{geom.Pt(2, 1)}},
	}
	for _, in := range cases {
		res, _ := runAlg(t, ASeparatorAuto{}, in, 0)
		if !res.AllAwake {
			t.Errorf("%s: incomplete", in.Name)
		}
	}
}

func TestASeparatorAutoIgnoresRho(t *testing.T) {
	// Even a wildly wrong ρ in the tuple must not matter.
	in := instance.Line(25, 1)
	tup := TupleFor(in)
	tup.Rho = 1 // nonsense
	res, rep, err := Solve(ASeparatorAuto{}, in, tup, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !res.AllAwake || len(rep.Misses) > 0 {
		t.Fatalf("auto run failed: awake=%v misses=%v", res.AllAwake, rep.Misses)
	}
}

func TestASeparatorAutoOverheadBounded(t *testing.T) {
	// §5: the estimation overhead keeps the total within a constant factor
	// of plain ASeparator (which is told ρ).
	// The doubling scan can overshoot ρ* by up to 4x (the rounds then run on
	// a square up to 4x wider) plus the scan's own sweeps: a constant, but
	// not a small one. 6x covers it with margin on this family.
	in := instance.Line(48, 1)
	resAuto, _ := runAlg(t, ASeparatorAuto{}, in, 0)
	resBase, _ := runAlg(t, ASeparator{}, in, 0)
	if resAuto.Makespan > 6*resBase.Makespan {
		t.Errorf("auto makespan %v vs base %v: overhead above 6x",
			resAuto.Makespan, resBase.Makespan)
	}
}
