package instance

import (
	"bytes"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"freezetag/internal/geom"
)

func testInstance() *Instance {
	return &Instance{
		Name:   "canon",
		Source: geom.Origin,
		Points: []geom.Point{geom.Pt(1, 0), geom.Pt(0.5, -2.25), geom.Pt(1e-9, 3)},
	}
}

// The canonical request hash is the cache key of the solver service: it must
// be a pure function of (algorithm, instance, tuple, budget) and nothing
// else. The golden value locks the encoding — if it changes, bump
// canonVersion and update here.
func TestHashRequestGolden(t *testing.T) {
	const want = "c8bafa151788a565e606d322a908d1413cad24d4bb9f73a21d30a1cfeea8fcaa"
	got := HashRequest("agrid", testInstance(), 1, 3, 3, 0)
	if got != want {
		t.Fatalf("canonical hash changed:\n got  %s\n want %s", got, want)
	}
}

func TestHashRequestDeterministic(t *testing.T) {
	a := HashRequest("awave", testInstance(), 2, 5, 3, 1.5)
	b := HashRequest("awave", testInstance(), 2, 5, 3, 1.5)
	if a != b {
		t.Fatalf("identical requests hashed differently: %s vs %s", a, b)
	}
}

func TestHashRequestDistinguishes(t *testing.T) {
	base := func() *Instance { return testInstance() }
	ref := HashRequest("agrid", base(), 1, 3, 3, 0)

	mutants := map[string]string{}
	mutants["algorithm"] = HashRequest("awave", base(), 1, 3, 3, 0)
	mutants["ell"] = HashRequest("agrid", base(), 2, 3, 3, 0)
	mutants["rho"] = HashRequest("agrid", base(), 1, 4, 3, 0)
	mutants["n"] = HashRequest("agrid", base(), 1, 3, 4, 0)
	mutants["budget"] = HashRequest("agrid", base(), 1, 3, 3, 7)

	renamed := base()
	renamed.Name = "other"
	mutants["name"] = HashRequest("agrid", renamed, 1, 3, 3, 0)

	moved := base()
	moved.Points[1] = geom.Pt(0.5, -2.250000001)
	mutants["point"] = HashRequest("agrid", moved, 1, 3, 3, 0)

	reordered := base()
	reordered.Points[0], reordered.Points[1] = reordered.Points[1], reordered.Points[0]
	mutants["order"] = HashRequest("agrid", reordered, 1, 3, 3, 0)

	seen := map[string]string{ref: "reference"}
	for field, h := range mutants {
		if prev, dup := seen[h]; dup {
			t.Errorf("mutating %s collided with %s: %s", field, prev, h)
		}
		seen[h] = field
	}
}

func TestHashRequestNormalizesFloats(t *testing.T) {
	pos := testInstance()
	neg := testInstance()
	neg.Source = geom.Pt(math.Copysign(0, -1), 0) // -0.0 must hash like +0.0
	if HashRequest("agrid", pos, 1, 3, 3, 0) != HashRequest("agrid", neg, 1, 3, 3, 0) {
		t.Fatal("-0.0 and +0.0 hash differently")
	}
	// All non-positive budgets mean "unconstrained" and share a key.
	if HashRequest("agrid", pos, 1, 3, 3, 0) != HashRequest("agrid", pos, 1, 3, 3, -5) {
		t.Fatal("budget 0 and budget -5 hash differently")
	}
}

// Save/Load must round-trip exactly and the on-disk encoding must be stable
// byte-for-byte — the prerequisite for content-addressing requests that
// arrive as files. (instance_test.go checks value round-tripping; this locks
// the bytes and the field order.)
func TestSaveLoadCanonicalStability(t *testing.T) {
	in := testInstance()
	path := filepath.Join(t.TempDir(), "canon.json")
	if err := in.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(in, got) {
		t.Fatalf("round trip changed the instance:\n saved  %+v\n loaded %+v", in, got)
	}

	a, err := in.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	b, err := got.MarshalCanonical()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("canonical marshal unstable across a round trip:\n%s\nvs\n%s", a, b)
	}

	// Field order is part of the contract: name, then source, then points.
	s := string(a)
	iName, iSource, iPoints := strings.Index(s, `"name"`), strings.Index(s, `"source"`), strings.Index(s, `"points"`)
	if iName < 0 || iSource < 0 || iPoints < 0 || !(iName < iSource && iSource < iPoints) {
		t.Fatalf("field order not (name, source, points):\n%s", s)
	}
}

func TestFamilyGenerators(t *testing.T) {
	for _, name := range FamilyNames() {
		in, err := Family(name, 16, 1.0, 7)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if in.N() == 0 {
			t.Fatalf("%s: empty instance", name)
		}
		again, err := Family(name, 16, 1.0, 7)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(in, again) {
			t.Fatalf("%s: not deterministic for equal (n, param, seed)", name)
		}
	}
	if _, err := Family("nope", 16, 1.0, 7); err == nil {
		t.Fatal("unknown family accepted")
	}
	if _, err := Family("line", 0, 1.0, 7); err == nil {
		t.Fatal("n=0 accepted")
	}
	if _, err := Family("line", 4, 0, 7); err == nil {
		t.Fatal("param=0 accepted")
	}
	if _, err := Family("line", 4, math.NaN(), 7); err == nil {
		t.Fatal("param=NaN accepted")
	}
	if _, err := Family("line", 4, math.Inf(1), 7); err == nil {
		t.Fatal("param=+Inf accepted")
	}
}
