// Package instance defines dFTP problem instances (a source plus a sleeping
// point set) and generators for the workload families used across the test
// and benchmark suites: random ℓ-connected swarms, cluster chains, grids,
// the Theorem 6 rectilinear-path construction, and the Theorem 2 disk-grid
// layout.
package instance

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"

	"freezetag/internal/diskgraph"
	"freezetag/internal/geom"
)

// Profile is one robot's capability profile. Speed scales travel time
// (moving distance δ takes time δ/Speed); Capacity is the robot's private
// energy budget, with ≤ 0 meaning "inherit the uniform budget". The
// homogeneous model is Profile{Speed: 1, Capacity: 0} for every robot.
type Profile struct {
	Speed    float64 `json:"speed"`
	Capacity float64 `json:"capacity,omitempty"`
}

// Instance is one dFTP problem: a source position and the initial positions
// of the sleeping robots. Profiles, when non-empty, pairs Points[i] with the
// capability profile of robot i+1 (the source is always unit-speed); an
// empty Profiles means the homogeneous unit-speed model every layer
// defaulted to before heterogeneity existed.
type Instance struct {
	Name     string       `json:"name"`
	Source   geom.Point   `json:"source"`
	Points   []geom.Point `json:"points"`
	Profiles []Profile    `json:"profiles,omitempty"`
}

// N returns the number of sleeping robots.
func (in *Instance) N() int { return len(in.Points) }

// Heterogeneous reports whether the instance carries per-robot profiles.
func (in *Instance) Heterogeneous() bool { return len(in.Profiles) > 0 }

// ValidateProfiles checks the profile list: it must be empty or exactly one
// profile per point, every speed finite and > 0, and no capacity NaN.
// Negative capacities are legal (they mean "inherit the uniform budget",
// like a zero) but NaN is always a request error.
func (in *Instance) ValidateProfiles() error {
	if len(in.Profiles) == 0 {
		return nil
	}
	if len(in.Profiles) != len(in.Points) {
		return fmt.Errorf("instance: %d profiles for %d points (need one per sleeping robot)",
			len(in.Profiles), len(in.Points))
	}
	for i, p := range in.Profiles {
		if !(p.Speed > 0) || math.IsInf(p.Speed, 1) { // rejects NaN, ≤ 0, +Inf
			return fmt.Errorf("instance: profile %d: speed must be finite and > 0, got %g", i, p.Speed)
		}
		if math.IsNaN(p.Capacity) {
			return fmt.Errorf("instance: profile %d: capacity must not be NaN", i)
		}
	}
	return nil
}

// MinSpeed returns the slowest speed across the swarm including the
// unit-speed source: exactly 1 for homogeneous instances, and the factor by
// which worst-case travel-time bounds must be inflated for heterogeneous
// ones.
func (in *Instance) MinSpeed() float64 {
	min := 1.0
	for _, p := range in.Profiles {
		if p.Speed > 0 && p.Speed < min {
			min = p.Speed
		}
	}
	return min
}

// Params computes the exact Euclidean (ρ*, ℓ*, ξ) of the instance.
func (in *Instance) Params() diskgraph.Params {
	return diskgraph.ComputeParams(in.Source, in.Points)
}

// ParamsIn computes the exact (ρ*, ℓ*, ξ) of the instance under metric m
// (nil defaults to ℓ2): the same point set generally has different
// parameters — and different admissible tuples — per metric.
func (in *Instance) ParamsIn(m geom.Metric) diskgraph.Params {
	return diskgraph.ComputeParamsIn(m, in.Source, in.Points)
}

// MarshalCanonical encodes the instance as indented JSON with deterministic
// field order (name, source, points, then profiles when present — the
// struct declaration order, which encoding/json preserves; empty Profiles
// are omitted, so homogeneous instances marshal exactly as they always
// have). Equal instances always marshal to equal bytes; the canonical
// request hashes in canonical.go rely on this stability.
func (in *Instance) MarshalCanonical() ([]byte, error) {
	data, err := json.MarshalIndent(in, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("instance: marshal: %w", err)
	}
	return data, nil
}

// Save writes the instance as canonical JSON to path.
func (in *Instance) Save(path string) error {
	data, err := in.MarshalCanonical()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("instance: write %s: %w", path, err)
	}
	return nil
}

// Load reads a JSON instance from path.
func Load(path string) (*Instance, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("instance: read %s: %w", path, err)
	}
	var in Instance
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, fmt.Errorf("instance: parse %s: %w", path, err)
	}
	return &in, nil
}

// RandomWalk generates n points by a random walk from the source with steps
// uniform in [step/2, step] and uniform directions. The result is
// (step)-connected by construction (every consecutive pair is within step),
// giving dense, organic swarms.
func RandomWalk(rng *rand.Rand, n int, step float64) *Instance {
	pts := make([]geom.Point, n)
	cur := geom.Origin
	for i := range pts {
		d := step/2 + rng.Float64()*step/2
		ang := rng.Float64() * 2 * math.Pi
		cur = cur.Add(geom.Pt(d*math.Cos(ang), d*math.Sin(ang)))
		pts[i] = cur
	}
	return &Instance{
		Name:   fmt.Sprintf("walk-n%d-s%.2g", n, step),
		Source: geom.Origin,
		Points: pts,
	}
}

// UniformDisk generates n points uniformly in the disk of the given radius
// around the source. Connectivity is whatever density yields; dense settings
// (n ≫ radius²) give small ℓ*.
func UniformDisk(rng *rand.Rand, n int, radius float64) *Instance {
	pts := make([]geom.Point, n)
	for i := range pts {
		r := radius * math.Sqrt(rng.Float64())
		ang := rng.Float64() * 2 * math.Pi
		pts[i] = geom.Pt(r*math.Cos(ang), r*math.Sin(ang))
	}
	return &Instance{
		Name:   fmt.Sprintf("disk-n%d-r%.3g", n, radius),
		Source: geom.Origin,
		Points: pts,
	}
}

// ClusterChain generates `clusters` dense clusters of `per` points each,
// strung on a line with centers `sep` apart and cluster radius `radius`.
// With sep ≫ radius this family has ℓ* ≈ sep − 2·radius and exercises the
// regime where ℓ dominates the makespan bounds.
func ClusterChain(rng *rand.Rand, clusters, per int, sep, radius float64) *Instance {
	var pts []geom.Point
	for c := 1; c <= clusters; c++ {
		center := geom.Pt(float64(c)*sep, 0)
		for i := 0; i < per; i++ {
			r := radius * math.Sqrt(rng.Float64())
			ang := rng.Float64() * 2 * math.Pi
			pts = append(pts, center.Add(geom.Pt(r*math.Cos(ang), r*math.Sin(ang))))
		}
	}
	return &Instance{
		Name:   fmt.Sprintf("chain-c%d-p%d-sep%.3g", clusters, per, sep),
		Source: geom.Origin,
		Points: pts,
	}
}

// GridSwarm generates a k×k grid of robots with the given spacing, the
// lower-left robot at (spacing, spacing). Connectivity threshold equals
// spacing exactly; a fully deterministic, reproducible workload.
func GridSwarm(k int, spacing float64) *Instance {
	pts := make([]geom.Point, 0, k*k)
	for i := 1; i <= k; i++ {
		for j := 1; j <= k; j++ {
			pts = append(pts, geom.Pt(float64(i)*spacing, float64(j)*spacing))
		}
	}
	return &Instance{
		Name:   fmt.Sprintf("grid-%dx%d-s%.3g", k, k, spacing),
		Source: geom.Origin,
		Points: pts,
	}
}

// Line generates n robots on the x-axis spaced `spacing` apart starting at
// (spacing, 0): the canonical maximum-eccentricity instance with ξℓ = ρ* =
// n·spacing.
func Line(n int, spacing float64) *Instance {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Pt(float64(i+1)*spacing, 0)
	}
	return &Instance{
		Name:   fmt.Sprintf("line-n%d-s%.3g", n, spacing),
		Source: geom.Origin,
		Points: pts,
	}
}
