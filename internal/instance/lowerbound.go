package instance

import (
	"fmt"
	"math"

	"freezetag/internal/geom"
)

// --- Theorem 2 construction: centers C and connected subsets C_m ------------

// CentersC returns the paper's set C = {(x,y) ∈ (ℓ/2·Z)² : √(x²+y²) ≤ ρ−ℓ/4}
// — the candidate disk centers of the Theorem 2 lower-bound construction
// (Figure 5a). The origin is included (C; C* excludes it).
func CentersC(rho, ell float64) []geom.Point {
	h := ell / 2
	lim := rho - ell/4
	kmax := int(math.Floor(lim / h))
	var out []geom.Point
	for i := -kmax; i <= kmax; i++ {
		for j := -kmax; j <= kmax; j++ {
			p := geom.Pt(float64(i)*h, float64(j)*h)
			if p.Norm() <= lim+geom.Eps {
				out = append(out, p)
			}
		}
	}
	return out
}

// ConnectedCenters returns a connected subset C_m ⊆ C* of exactly m centers
// that contains the vertical column {(0, ℓ/2), …, (0, ⌊ρ/ℓ⌋·ℓ/2)} required by
// the Theorem 2 proof, built by BFS from the column over the grid adjacency
// (axis-neighbors at distance ℓ/2). It panics when m exceeds |C*| — callers
// clamp m = min(n, |C*|) first, mirroring the paper.
func ConnectedCenters(rho, ell float64, m int) []geom.Point {
	all := CentersC(rho, ell)
	type key [2]int
	h := ell / 2
	toKey := func(p geom.Point) key {
		return key{int(math.Round(p.X / h)), int(math.Round(p.Y / h))}
	}
	inC := make(map[key]bool, len(all))
	for _, p := range all {
		inC[toKey(p)] = true
	}
	if m > len(all)-1 {
		panic(fmt.Sprintf("instance: m=%d exceeds |C*|=%d", m, len(all)-1))
	}
	var out []geom.Point
	seen := map[key]bool{{0, 0}: true} // origin is in C but not in C*
	var queue []key
	// Seed with the mandatory column (0, j·ℓ/2) for j = 1..⌊ρ/ℓ⌋.
	colLen := int(math.Floor(rho / ell))
	for j := 1; j <= colLen && len(out) < m; j++ {
		k := key{0, j}
		if !inC[k] || seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, geom.Pt(0, float64(j)*h))
		queue = append(queue, k)
	}
	if len(queue) == 0 {
		// Degenerate (ρ < ℓ): BFS from the origin's neighbors instead.
		queue = append(queue, key{0, 0})
	}
	for len(queue) > 0 && len(out) < m {
		k := queue[0]
		queue = queue[1:]
		for _, d := range [4]key{{1, 0}, {-1, 0}, {0, 1}, {0, -1}} {
			nk := key{k[0] + d[0], k[1] + d[1]}
			if !inC[nk] || seen[nk] {
				continue
			}
			seen[nk] = true
			out = append(out, geom.Pt(float64(nk[0])*h, float64(nk[1])*h))
			queue = append(queue, nk)
			if len(out) == m {
				break
			}
		}
	}
	return out
}

// DiskGridStatic builds a static Theorem 2-style instance: one robot per
// disk D_c = B_c(ℓ/4) for the m = min(n, |C*|) connected centers, each placed
// at the point of its disk diametrically away from the origin — the spot a
// sweep from the source tends to reach last. The truly adversarial (lazy)
// placement lives in package adversary; this static variant provides a
// deterministic, reusable hard instance.
func DiskGridStatic(rho, ell float64, n int) *Instance {
	all := CentersC(rho, ell)
	m := n
	if m > len(all)-1 {
		m = len(all) - 1
	}
	centers := ConnectedCenters(rho, ell, m)
	pts := make([]geom.Point, 0, len(centers))
	for _, c := range centers {
		dir := c
		if dir.Norm() < geom.Eps {
			dir = geom.Pt(1, 0)
		} else {
			dir = dir.Scale(1 / dir.Norm())
		}
		pts = append(pts, c.Add(dir.Scale(ell/4)))
	}
	return &Instance{
		Name:   fmt.Sprintf("diskgrid-rho%.3g-ell%.3g", rho, ell),
		Source: geom.Origin,
		Points: pts,
	}
}

// CentersOnly builds the baseline (non-adversarial) variant of the Theorem 2
// layout with one robot exactly at each connected center — the "easy"
// placement the replay adversary is compared against.
func CentersOnly(rho, ell float64, n int) *Instance {
	all := CentersC(rho, ell)
	m := n
	if m > len(all)-1 {
		m = len(all) - 1
	}
	return &Instance{
		Name:   fmt.Sprintf("centers-rho%.3g-ell%.3g", rho, ell),
		Source: geom.Origin,
		Points: ConnectedCenters(rho, ell, m),
	}
}

// --- Theorem 6 construction: rectilinear path Π ------------------------------

// PathSpec carries the Theorem 6 parameters.
type PathSpec struct {
	Ell float64 // connectivity parameter ℓ (must be > 0)
	Rho float64 // radius ρ
	B   float64 // energy budget (must be > ℓ per the theorem)
	Xi  float64 // prescribed ℓ-eccentricity ξ ∈ [ρ, ρ²/(2(B+1))+1]
}

// XiRangeMax returns the upper end of the admissible ξ range for the spec,
// min over the theorem's two constraints given n robots.
func (s PathSpec) XiRangeMax(n int) float64 {
	return math.Min(float64(n)*s.Ell-s.Rho/3, s.Rho*s.Rho/(2*(s.B+1))+1)
}

// BuildPath constructs the Theorem 6 rectilinear-path instance: a path Π of
// horizontal segments of length H = ρ/√2 and vertical segments of length
// V = B+1, with robots spread along it at spacing ≤ ℓ so that the ℓ-disk
// graph follows the path with no shortcuts (V > ℓ keeps horizontal runs more
// than an energy budget apart). Robots are also spread along [v0, (ρ,0)]
// when needed so that ρ* = ρ.
//
// The instance's ξℓ equals the length of the generated path (≈ the requested
// ξ, quantized to whole sections), and ℓ* ≤ ℓ.
func BuildPath(spec PathSpec) (*Instance, error) {
	if spec.Ell <= 0 || spec.Rho < spec.Ell {
		return nil, fmt.Errorf("instance: invalid spec %+v", spec)
	}
	if spec.B <= spec.Ell {
		return nil, fmt.Errorf("instance: Theorem 6 requires B > ℓ (B=%v ℓ=%v)", spec.B, spec.Ell)
	}
	h := spec.Rho / math.Sqrt2
	v := spec.B + 1
	if spec.Xi < spec.Rho {
		return nil, fmt.Errorf("instance: ξ=%v below ρ=%v", spec.Xi, spec.Rho)
	}
	// Theorem 6's upper range (Eq. 15): beyond it the path's vertical extent
	// would push ρ* past ρ.
	if limit := spec.Rho*spec.Rho/(2*(spec.B+1)) + 1; spec.Xi > limit+geom.Eps {
		return nil, fmt.Errorf("instance: ξ=%v exceeds admissible max %v (Eq. 15)", spec.Xi, limit)
	}
	j := int(math.Floor(spec.Xi / (h + v)))
	// Build the polyline u0 → v0 → v1 → u1 → u2 → v2 → … : section k is the
	// horizontal segment [u_k v_k] followed by a vertical hop on alternating
	// sides.
	var poly []geom.Point
	poly = append(poly, geom.Origin) // u0 = ps
	for k := 0; k <= j; k++ {
		y := float64(k) * v
		uk := geom.Pt(0, y)
		vk := geom.Pt(h, y)
		if k%2 == 0 {
			// Arrive at u_k, traverse to v_k, climb on the right side.
			poly = append(poly, uk, vk)
		} else {
			poly = append(poly, vk, uk)
		}
	}
	// Truncate the polyline at total length ξ.
	poly = truncatePolyline(poly, spec.Xi)
	pts := spreadAlong(poly, spec.Ell)
	// Ensure ρ* = ρ: extend along [v0, (ρ,0)] when the path stays short.
	far := geom.MaxDistFrom(geom.Origin, pts)
	if far < spec.Rho-geom.Eps {
		// Anchor a robot at v0 itself (the main path's spread rarely lands
		// exactly there), then spread along [v0, (ρ,0)] at ℓ spacing.
		v0 := geom.Pt(h, 0)
		pts = append(pts, v0)
		pts = append(pts, spreadAlong([]geom.Point{v0, geom.Pt(spec.Rho, 0)}, spec.Ell)...)
	}
	return &Instance{
		Name:   fmt.Sprintf("path-xi%.3g-B%.3g-rho%.3g", spec.Xi, spec.B, spec.Rho),
		Source: geom.Origin,
		Points: pts,
	}, nil
}

// truncatePolyline cuts the polyline at arc length limit.
func truncatePolyline(poly []geom.Point, limit float64) []geom.Point {
	out := []geom.Point{poly[0]}
	acc := 0.0
	for i := 1; i < len(poly); i++ {
		d := poly[i-1].Dist(poly[i])
		if acc+d >= limit {
			t := (limit - acc) / d
			out = append(out, poly[i-1].Lerp(poly[i], t))
			return out
		}
		acc += d
		out = append(out, poly[i])
	}
	return out
}

// spreadAlong places points along the polyline every `step` of arc length,
// starting one step after the first vertex (the source sits at poly[0] and
// is not a robot) and always including segment endpoints' final point.
func spreadAlong(poly []geom.Point, step float64) []geom.Point {
	var pts []geom.Point
	carry := step
	for i := 1; i < len(poly); i++ {
		a, b := poly[i-1], poly[i]
		segLen := a.Dist(b)
		pos := carry
		for pos < segLen {
			pts = append(pts, a.Lerp(b, pos/segLen))
			pos += step
		}
		carry = pos - segLen
		if carry > step-geom.Eps {
			carry = step
		}
	}
	// Always include the final endpoint so the path's far end is populated.
	last := poly[len(poly)-1]
	if len(pts) == 0 || !pts[len(pts)-1].Eq(last) {
		pts = append(pts, last)
	}
	return pts
}
