package instance

import (
	"math"
	"strings"
	"testing"
)

// A speedband/capband modifier must not perturb the base point stream: the
// profile RNG is salted off the family seed, so the modified family's points
// are byte-identical to the plain family's at every (n, param, seed).
func TestFamilyModifierKeepsPointsIdentical(t *testing.T) {
	for _, fam := range FamilyNames() {
		plain, err := Family(fam, 20, 1, 42)
		if err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		mod, err := Family(fam+"+speedband:0.25+capband:30", 20, 1, 42)
		if err != nil {
			t.Fatalf("%s modified: %v", fam, err)
		}
		if plain.Source != mod.Source || len(plain.Points) != len(mod.Points) {
			t.Fatalf("%s: modifier changed the instance shape", fam)
		}
		for i := range plain.Points {
			if plain.Points[i] != mod.Points[i] {
				t.Errorf("%s: point %d moved: %v vs %v", fam, i, plain.Points[i], mod.Points[i])
			}
		}
		if plain.Heterogeneous() {
			t.Errorf("%s: plain family grew profiles", fam)
		}
		if !mod.Heterogeneous() {
			t.Errorf("%s: modified family has no profiles", fam)
		}
	}
}

func TestFamilyModifierProfiles(t *testing.T) {
	in, err := Family("line+speedband:0.25+capband:30", 40, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.ValidateProfiles(); err != nil {
		t.Fatalf("generated profiles invalid: %v", err)
	}
	if !strings.HasSuffix(in.Name, "+speedband:0.25+capband:30") {
		t.Errorf("name lacks canonical modifier suffix: %q", in.Name)
	}
	for i, p := range in.Profiles {
		if p.Speed < 0.25 || p.Speed > 1 {
			t.Errorf("profile %d speed %g outside [0.25, 1]", i, p.Speed)
		}
		if p.Capacity < 15 || p.Capacity > 30 {
			t.Errorf("profile %d capacity %g outside [15, 30]", i, p.Capacity)
		}
	}
	if ms := in.MinSpeed(); ms >= 1 || ms < 0.25 {
		t.Errorf("MinSpeed %g outside (0.25, 1) band", ms)
	}
	// speedband > 1 means faster-than-unit robots: speeds in [1, s].
	fast, err := Family("line+speedband:3", 40, 1, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range fast.Profiles {
		if p.Speed < 1 || p.Speed > 3 {
			t.Errorf("fast profile %d speed %g outside [1, 3]", i, p.Speed)
		}
	}
	if ms := fast.MinSpeed(); ms != 1 {
		// MinSpeed caps at 1: speeds above unit never loosen the bounds.
		t.Errorf("MinSpeed with all-fast profiles = %g, want 1", ms)
	}
}

// Modifier spellings normalize: order-insensitive, case-insensitive, same
// canonical name — so two spellings of one modified family produce equal
// instances and therefore equal request hashes.
func TestFamilyModifierNormalization(t *testing.T) {
	a, err := Family("walk+speedband:0.5+capband:8", 12, 0.9, 3)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Family("WALK+capband:8+Speedband:0.5", 12, 0.9, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Name != b.Name {
		t.Errorf("names differ: %q vs %q", a.Name, b.Name)
	}
	ha := HashRequestIn(nil, "agrid", a, 1, 8, a.N(), 0)
	hb := HashRequestIn(nil, "agrid", b, 1, 8, b.N(), 0)
	if ha != hb {
		t.Errorf("hashes differ for equivalent spellings:\n %s\n %s", ha, hb)
	}
}

func TestFamilyModifierErrors(t *testing.T) {
	for _, name := range []string{
		"line+speedband",               // no value
		"line+speedband:0",             // not positive
		"line+speedband:-2",            // negative
		"line+speedband:inf",           // infinite
		"line+speedband:nan",           // NaN
		"line+turbo:2",                 // unknown modifier
		"line+speedband:1+speedband:2", // duplicate
		"line+capband:3+capband:3",     // duplicate
	} {
		if _, err := Family(name, 8, 1, 1); err == nil {
			t.Errorf("Family(%q) accepted", name)
		}
	}
}

func TestValidateProfiles(t *testing.T) {
	in, err := Family("line", 4, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := in.ValidateProfiles(); err != nil {
		t.Fatalf("homogeneous instance invalid: %v", err)
	}
	bad := []struct {
		desc string
		ps   []Profile
	}{
		{"length mismatch", []Profile{{Speed: 1}}},
		{"zero speed", []Profile{{Speed: 1}, {Speed: 0}, {Speed: 1}, {Speed: 1}}},
		{"negative speed", []Profile{{Speed: 1}, {Speed: -1}, {Speed: 1}, {Speed: 1}}},
		{"NaN capacity", []Profile{{Speed: 1, Capacity: math.NaN()}, {Speed: 1}, {Speed: 1}, {Speed: 1}}},
	}
	for _, c := range bad {
		cp := *in
		cp.Profiles = c.ps
		if err := cp.ValidateProfiles(); err == nil {
			t.Errorf("%s: ValidateProfiles accepted", c.desc)
		}
	}
	// Negative capacity is legal: it means "inherit the uniform budget".
	ok := *in
	ok.Profiles = []Profile{{Speed: 1, Capacity: -2}, {Speed: 1}, {Speed: 1}, {Speed: 1}}
	if err := ok.ValidateProfiles(); err != nil {
		t.Errorf("negative capacity (inherit) rejected: %v", err)
	}
}
