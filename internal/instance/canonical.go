package instance

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"math"
	"math/rand"
	"strconv"
	"strings"

	"freezetag/internal/geom"
)

// This file defines the canonical request encoding that content-addresses a
// solve request (algorithm, instance, tuple, budget, metric). Two requests
// share a hash iff they are semantically the same solve, so the encoding
// must be deterministic: fields are written in a fixed order and floats are
// normalized (negative zero collapses to zero, values print in exact hex
// form, budgets ≤ 0 all mean "unconstrained" and encode as 0).

// canonVersion is bumped whenever the canonical encoding changes, so stale
// hashes from older encodings can never alias new ones.
//
// Versioning rule for the metric field (the v1→v2 bump): requests under the
// Euclidean metric — the only metric v1 could express — keep the v1
// encoding with no metric line, so every pre-metric hash (and therefore
// every cache key ever handed to a client) is byte-identical under the new
// code; this is locked by the fixtures in testdata/hash_golden_pr3.json.
// Any other metric encodes under v2 with an explicit metric line, which can
// never collide with a v1 hash because the version line differs.
const (
	canonVersion   = "dftp-request/v1"
	canonVersionV2 = "dftp-request/v2"
)

// canonFloat formats f for the canonical encoding: exact (hex mantissa, no
// rounding ambiguity), with -0 normalized to 0 so the two IEEE zeros hash
// identically.
func canonFloat(f float64) string {
	if f == 0 { // catches -0.0 too
		f = 0
	}
	if math.IsNaN(f) {
		return "nan"
	}
	return strconv.FormatFloat(f, 'x', -1, 64)
}

// appendCanonical writes the instance's canonical encoding: name, source,
// then the points in stored order. Point order is intentionally significant
// — robot ids are positional, so reordering points is a different instance.
func (in *Instance) appendCanonical(w io.Writer) {
	fmt.Fprintf(w, "name=%q\n", in.Name)
	fmt.Fprintf(w, "source=%s,%s\n", canonFloat(in.Source.X), canonFloat(in.Source.Y))
	fmt.Fprintf(w, "points=%d\n", len(in.Points))
	for _, p := range in.Points {
		fmt.Fprintf(w, "p=%s,%s\n", canonFloat(p.X), canonFloat(p.Y))
	}
}

// HashRequest returns the content-addressed key of a Euclidean solve
// request: the SHA-256 (hex) of the canonical encoding of (algorithm,
// instance, tuple, budget). The tuple is passed as its raw (ℓ, ρ, n) fields
// so this package does not depend on the algorithm layer. Budgets ≤ 0 are
// all "unconstrained" and hash identically.
func HashRequest(algorithm string, in *Instance, ell, rho float64, n int, budget float64) string {
	return HashRequestIn(nil, algorithm, in, ell, rho, n, budget)
}

// HashRequestIn is HashRequest under metric m (nil defaults to ℓ2). The ℓ2
// metric — canonical name "l2", or a nil/omitted metric — produces the
// pre-metric v1 encoding byte-for-byte, so existing cache keys survive; any
// other metric encodes under v2 with its canonical name as an extra field.
func HashRequestIn(m geom.Metric, algorithm string, in *Instance, ell, rho float64, n int, budget float64) string {
	if budget <= 0 {
		budget = 0
	}
	h := sha256.New()
	if geom.IsL2(m) {
		fmt.Fprintf(h, "%s\n", canonVersion)
		fmt.Fprintf(h, "alg=%s\n", algorithm)
	} else {
		fmt.Fprintf(h, "%s\n", canonVersionV2)
		fmt.Fprintf(h, "alg=%s\n", algorithm)
		fmt.Fprintf(h, "metric=%s\n", m.Name())
	}
	fmt.Fprintf(h, "tuple=%s,%s,%d\n", canonFloat(ell), canonFloat(rho), n)
	fmt.Fprintf(h, "budget=%s\n", canonFloat(budget))
	in.appendCanonical(h)
	return hex.EncodeToString(h.Sum(nil))
}

// FamilyNames lists the workload families Family accepts.
func FamilyNames() []string { return []string{"line", "walk", "disk", "grid", "chain"} }

// Family generates an instance from a named workload family, the single
// source of truth for "family/n/param/seed" requests (cmd/dftp-run and the
// solver service share it, so equal parameters give equal instances and
// therefore equal request hashes):
//
//	line   n robots spaced param apart on the x-axis
//	walk   random walk, steps in [param/2, param]
//	disk   uniform in a disk of radius 10·param
//	grid   smallest k×k grid with k² ≥ n, spacing param
//	chain  ⌈n/8⌉+1 clusters of 8, separation 5·param, radius param
func Family(name string, n int, param float64, seed int64) (*Instance, error) {
	if n < 1 {
		return nil, fmt.Errorf("instance: family %q: n must be ≥ 1, got %d", name, n)
	}
	if !(param > 0) || math.IsInf(param, 1) { // rejects NaN, ≤ 0, and ±Inf
		return nil, fmt.Errorf("instance: family %q: param must be a finite positive number, got %g", name, param)
	}
	rng := rand.New(rand.NewSource(seed))
	switch strings.ToLower(name) {
	case "line":
		return Line(n, param), nil
	case "walk":
		return RandomWalk(rng, n, param), nil
	case "disk":
		return UniformDisk(rng, n, param*10), nil
	case "grid":
		k := 1
		for k*k < n {
			k++
		}
		return GridSwarm(k, param), nil
	case "chain":
		return ClusterChain(rng, n/8+1, 8, param*5, param), nil
	default:
		return nil, fmt.Errorf("instance: unknown family %q (have %s)",
			name, strings.Join(FamilyNames(), ", "))
	}
}
