package instance

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"
	"math/rand"
	"strconv"
	"strings"
	"sync"

	"freezetag/internal/geom"
)

// This file defines the canonical request encoding that content-addresses a
// solve request (algorithm, instance, tuple, budget, metric). Two requests
// share a hash iff they are semantically the same solve, so the encoding
// must be deterministic: fields are written in a fixed order and floats are
// normalized (negative zero collapses to zero, values print in exact hex
// form, budgets ≤ 0 all mean "unconstrained" and encode as 0).

// canonVersion is bumped whenever the canonical encoding changes, so stale
// hashes from older encodings can never alias new ones.
//
// Versioning rule for the metric field (the v1→v2 bump): requests under the
// Euclidean metric — the only metric v1 could express — keep the v1
// encoding with no metric line, so every pre-metric hash (and therefore
// every cache key ever handed to a client) is byte-identical under the new
// code; this is locked by the fixtures in testdata/hash_golden_pr3.json.
// Any other metric encodes under v2 with an explicit metric line, which can
// never collide with a v1 hash because the version line differs.
//
// The v2→v3 bump follows the same rule for per-robot profiles: homogeneous
// requests (no Profiles) keep their v1/v2 encoding byte-for-byte — locked by
// testdata/hash_golden_pr5.json — while heterogeneous ones encode under v3
// with an always-explicit metric line plus one profile line per robot.
//
// The v3→v4 bump, once more by the same rule, covers fault plans: fault-free
// requests keep their v1/v2/v3 encoding byte-for-byte (HashRequestFaulted
// with an empty faults line IS HashRequestIn), while fault-injected requests
// encode under v4 with an always-explicit metric line plus the canonical
// faults line, never aliasing any fault-free hash.
const (
	canonVersion   = "dftp-request/v1"
	canonVersionV2 = "dftp-request/v2"
	canonVersionV3 = "dftp-request/v3"
	canonVersionV4 = "dftp-request/v4"
)

// canonFloat appends f's canonical form to b: exact (hex mantissa, no
// rounding ambiguity), with -0 normalized to 0 so the two IEEE zeros hash
// identically. Append-based because the hot caller (HashRequestIn via the
// serving tier) encodes thousands of floats per request; a string-returning
// formatter would allocate every one of them.
func canonFloat(b []byte, f float64) []byte {
	if f == 0 { // catches -0.0 too
		f = 0
	}
	if math.IsNaN(f) {
		return append(b, "nan"...)
	}
	return strconv.AppendFloat(b, f, 'x', -1, 64)
}

// appendCanonical appends the instance's canonical encoding: name, source,
// then the points in stored order, then (heterogeneous instances only) the
// profiles in the same order. Point order is intentionally significant —
// robot ids are positional, so reordering points is a different instance —
// and so is profile order, since Profiles[i] belongs to Points[i].
// Capacities ≤ 0 all mean "inherit the uniform budget" and encode as 0,
// mirroring the budget normalization. strconv.AppendQuote is fmt's own %q
// (fmt delegates to strconv.Quote), so the bytes match the historical
// Fprintf-built encoding exactly.
func (in *Instance) appendCanonical(b []byte) []byte {
	b = append(b, "name="...)
	b = strconv.AppendQuote(b, in.Name)
	b = append(b, "\nsource="...)
	b = canonFloat(b, in.Source.X)
	b = append(b, ',')
	b = canonFloat(b, in.Source.Y)
	b = append(b, "\npoints="...)
	b = strconv.AppendInt(b, int64(len(in.Points)), 10)
	b = append(b, '\n')
	for _, p := range in.Points {
		b = append(b, "p="...)
		b = canonFloat(b, p.X)
		b = append(b, ',')
		b = canonFloat(b, p.Y)
		b = append(b, '\n')
	}
	if len(in.Profiles) > 0 {
		b = append(b, "profiles="...)
		b = strconv.AppendInt(b, int64(len(in.Profiles)), 10)
		b = append(b, '\n')
		for _, pr := range in.Profiles {
			cap := pr.Capacity
			if cap <= 0 {
				cap = 0
			}
			b = append(b, "f="...)
			b = canonFloat(b, pr.Speed)
			b = append(b, ',')
			b = canonFloat(b, cap)
			b = append(b, '\n')
		}
	}
	return b
}

// HashRequest returns the content-addressed key of a Euclidean solve
// request: the SHA-256 (hex) of the canonical encoding of (algorithm,
// instance, tuple, budget). The tuple is passed as its raw (ℓ, ρ, n) fields
// so this package does not depend on the algorithm layer. Budgets ≤ 0 are
// all "unconstrained" and hash identically.
func HashRequest(algorithm string, in *Instance, ell, rho float64, n int, budget float64) string {
	return HashRequestIn(nil, algorithm, in, ell, rho, n, budget)
}

// HashRequestIn is HashRequest under metric m (nil defaults to ℓ2). The ℓ2
// metric — canonical name "l2", or a nil/omitted metric — produces the
// pre-metric v1 encoding byte-for-byte, so existing cache keys survive; any
// other metric encodes under v2 with its canonical name as an extra field.
// Heterogeneous instances (non-empty Profiles) always encode under v3 with
// an explicit metric line (ℓ2 included) and the profile lines appended by
// appendCanonical; they can never alias a homogeneous hash because the
// version line differs.
// canonBufPool recycles the canonical-encoding scratch across requests. The
// encoding is built fully in one buffer and hashed with sha256.Sum256 (stack
// digest, stack sum), so a steady request stream pays exactly one allocation
// per hash: the returned hex string itself.
var canonBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

func HashRequestIn(m geom.Metric, algorithm string, in *Instance, ell, rho float64, n int, budget float64) string {
	if budget <= 0 {
		budget = 0
	}
	bp := canonBufPool.Get().(*[]byte)
	b := (*bp)[:0]
	if len(in.Profiles) > 0 {
		b = append(b, canonVersionV3...)
		b = append(b, "\nalg="...)
		b = append(b, algorithm...)
		b = append(b, "\nmetric="...)
		b = append(b, geom.MetricOrL2(m).Name()...)
		b = append(b, '\n')
	} else if geom.IsL2(m) {
		b = append(b, canonVersion...)
		b = append(b, "\nalg="...)
		b = append(b, algorithm...)
		b = append(b, '\n')
	} else {
		b = append(b, canonVersionV2...)
		b = append(b, "\nalg="...)
		b = append(b, algorithm...)
		b = append(b, "\nmetric="...)
		b = append(b, m.Name()...)
		b = append(b, '\n')
	}
	b = append(b, "tuple="...)
	b = canonFloat(b, ell)
	b = append(b, ',')
	b = canonFloat(b, rho)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(n), 10)
	b = append(b, "\nbudget="...)
	b = canonFloat(b, budget)
	b = append(b, '\n')
	b = in.appendCanonical(b)
	sum := sha256.Sum256(b)
	*bp = b
	canonBufPool.Put(bp)
	var hx [2 * sha256.Size]byte
	hex.Encode(hx[:], sum[:])
	return string(hx[:])
}

// HashRequestFaulted is HashRequestIn for requests that may carry a fault
// plan, passed as its canonical line (see the dftp layer's Faults.Canon; this
// package stays agnostic of its fields). An empty line is a fault-free
// request and delegates to HashRequestIn byte-for-byte — the golden-locked
// v1/v2/v3 encodings are untouched. A non-empty line encodes under v4 with
// an always-explicit metric line, the faults line, and the full instance
// encoding (profile lines included when present).
func HashRequestFaulted(m geom.Metric, algorithm string, in *Instance, ell, rho float64, n int, budget float64, faultsLine string) string {
	if faultsLine == "" {
		return HashRequestIn(m, algorithm, in, ell, rho, n, budget)
	}
	if budget <= 0 {
		budget = 0
	}
	bp := canonBufPool.Get().(*[]byte)
	b := (*bp)[:0]
	b = append(b, canonVersionV4...)
	b = append(b, "\nalg="...)
	b = append(b, algorithm...)
	b = append(b, "\nmetric="...)
	b = append(b, geom.MetricOrL2(m).Name()...)
	b = append(b, "\nfaults="...)
	b = append(b, faultsLine...)
	b = append(b, "\ntuple="...)
	b = canonFloat(b, ell)
	b = append(b, ',')
	b = canonFloat(b, rho)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(n), 10)
	b = append(b, "\nbudget="...)
	b = canonFloat(b, budget)
	b = append(b, '\n')
	b = in.appendCanonical(b)
	sum := sha256.Sum256(b)
	*bp = b
	canonBufPool.Put(bp)
	var hx [2 * sha256.Size]byte
	hex.Encode(hx[:], sum[:])
	return string(hx[:])
}

// FamilyNames lists the workload families Family accepts.
func FamilyNames() []string { return []string{"line", "walk", "disk", "grid", "chain"} }

// profileSeedSalt decorrelates the profile stream from the point stream, so
// "walk+speedband:2" generates the exact point set of "walk" at the same
// (n, param, seed) and only adds profiles on top.
const profileSeedSalt = 0x50524F46 // "PROF"

// Family generates an instance from a named workload family, the single
// source of truth for "family/n/param/seed" requests (cmd/dftp-run and the
// solver service share it, so equal parameters give equal instances and
// therefore equal request hashes):
//
//	line   n robots spaced param apart on the x-axis
//	walk   random walk, steps in [param/2, param]
//	disk   uniform in a disk of radius 10·param
//	grid   smallest k×k grid with k² ≥ n, spacing param
//	chain  ⌈n/8⌉+1 clusters of 8, separation 5·param, radius param
//
// A base family may carry "+"-separated heterogeneity modifiers, e.g.
// "walk+speedband:2" or "grid+speedband:4+capband:30":
//
//	speedband:<s>  per-robot speeds uniform in [min(1,s), max(1,s)]
//	capband:<c>    per-robot capacities uniform in [c/2, c]
//
// Modifiers draw from a profile RNG salted off the family seed, so the base
// point set is byte-identical to the unmodified family; only Profiles (and
// the instance name, which gains the modifier suffix) change.
func Family(name string, n int, param float64, seed int64) (*Instance, error) {
	base, mods, err := parseFamilyModifiers(name)
	if err != nil {
		return nil, err
	}
	if n < 1 {
		return nil, fmt.Errorf("instance: family %q: n must be ≥ 1, got %d", name, n)
	}
	if !(param > 0) || math.IsInf(param, 1) { // rejects NaN, ≤ 0, and ±Inf
		return nil, fmt.Errorf("instance: family %q: param must be a finite positive number, got %g", name, param)
	}
	rng := rand.New(rand.NewSource(seed))
	var in *Instance
	switch base {
	case "line":
		in = Line(n, param)
	case "walk":
		in = RandomWalk(rng, n, param)
	case "disk":
		in = UniformDisk(rng, n, param*10)
	case "grid":
		k := 1
		for k*k < n {
			k++
		}
		in = GridSwarm(k, param)
	case "chain":
		in = ClusterChain(rng, n/8+1, 8, param*5, param)
	default:
		return nil, fmt.Errorf("instance: unknown family %q (have %s, optionally +speedband:<s>/+capband:<c>)",
			name, strings.Join(FamilyNames(), ", "))
	}
	if mods.speedBand > 0 || mods.capBand > 0 {
		prng := rand.New(rand.NewSource(seed ^ profileSeedSalt))
		in.Profiles = make([]Profile, len(in.Points))
		for i := range in.Profiles {
			in.Profiles[i].Speed = 1
			if mods.speedBand > 0 {
				lo, hi := math.Min(1, mods.speedBand), math.Max(1, mods.speedBand)
				in.Profiles[i].Speed = lo + prng.Float64()*(hi-lo)
			}
			if mods.capBand > 0 {
				in.Profiles[i].Capacity = mods.capBand/2 + prng.Float64()*mods.capBand/2
			}
		}
		in.Name += mods.suffix
	}
	return in, nil
}

// familyModifiers is the parsed heterogeneity suffix of a family name.
type familyModifiers struct {
	speedBand float64 // 0 = absent
	capBand   float64 // 0 = absent
	suffix    string  // canonical "+speedband:…+capband:…" spelling
}

// parseFamilyModifiers splits "walk+speedband:2+capband:30" into the base
// family and its modifiers. Modifier order is normalized (speedband before
// capband) and duplicates are rejected, so two spellings of the same
// modified family produce identical instance names.
func parseFamilyModifiers(name string) (string, familyModifiers, error) {
	var mods familyModifiers
	parts := strings.Split(name, "+")
	base := strings.ToLower(strings.TrimSpace(parts[0]))
	for _, part := range parts[1:] {
		part = strings.ToLower(strings.TrimSpace(part))
		kind, val, ok := strings.Cut(part, ":")
		if !ok {
			return "", mods, fmt.Errorf("instance: family modifier %q: want speedband:<s> or capband:<c>", part)
		}
		v, err := strconv.ParseFloat(val, 64)
		if err != nil || !(v > 0) || math.IsInf(v, 1) {
			return "", mods, fmt.Errorf("instance: family modifier %q: value must be a finite positive number", part)
		}
		switch kind {
		case "speedband":
			if mods.speedBand > 0 {
				return "", mods, fmt.Errorf("instance: duplicate speedband modifier in %q", name)
			}
			mods.speedBand = v
		case "capband":
			if mods.capBand > 0 {
				return "", mods, fmt.Errorf("instance: duplicate capband modifier in %q", name)
			}
			mods.capBand = v
		default:
			return "", mods, fmt.Errorf("instance: unknown family modifier %q (have speedband, capband)", kind)
		}
	}
	if mods.speedBand > 0 {
		mods.suffix += fmt.Sprintf("+speedband:%g", mods.speedBand)
	}
	if mods.capBand > 0 {
		mods.suffix += fmt.Sprintf("+capband:%g", mods.capBand)
	}
	return base, mods, nil
}
