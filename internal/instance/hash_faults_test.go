package instance

import (
	"strings"
	"testing"
)

// A fault-free request must keep its exact pre-fault cache key: an empty
// faults line makes HashRequestFaulted byte-identical to HashRequestIn, for
// every fixture of the PR 5 golden set (all metrics, inline and family
// instances, every algorithm, the portfolio descriptor).
func TestHashFaultedEmptyLineCompat(t *testing.T) {
	for _, f := range loadHashFixturesPR5(t) {
		in := f.instance(t)
		m := f.metric(t)
		if got := HashRequestFaulted(m, f.Alg, in, f.Ell, f.Rho, f.TupN, f.Budget, ""); got != f.Hash {
			t.Errorf("%s: empty faults line changed the key:\n got  %s\n want %s", f.Desc, got, f.Hash)
		}
	}
}

// A non-empty faults line is part of the request identity: it must change
// the hash (v4 encoding), distinct lines must produce distinct hashes, and
// equal lines equal ones — independent of whether the base request was v1,
// v2, or v3.
func TestHashFaultedDistinguishes(t *testing.T) {
	lines := []string{
		"kind=crash-stop;rate=0x1p-02;seed=7;byz=0;down=0x0p+00;repair=1",
		"kind=crash-stop;rate=0x1p-02;seed=8;byz=0;down=0x0p+00;repair=1",
		"kind=wake-drop;rate=0x1p-02;seed=7;byz=0;down=0x0p+00;repair=0",
	}
	for _, f := range loadHashFixturesPR5(t)[:3] {
		in := f.instance(t)
		m := f.metric(t)
		seen := map[string]string{f.Hash: "fault-free"}
		for _, line := range lines {
			h := HashRequestFaulted(m, f.Alg, in, f.Ell, f.Rho, f.TupN, f.Budget, line)
			if prev, dup := seen[h]; dup {
				t.Errorf("%s: faults line %q collides with %s", f.Desc, line, prev)
			}
			seen[h] = line
			if h2 := HashRequestFaulted(m, f.Alg, in, f.Ell, f.Rho, f.TupN, f.Budget, line); h2 != h {
				t.Errorf("%s: faulted hash not deterministic", f.Desc)
			}
		}
	}
}

// Faulted hashes keep the sha256-hex shape shared by every version of the
// encoding — clients key caches by the string, so the format must not drift.
func TestHashFaultedShape(t *testing.T) {
	f := loadHashFixturesPR5(t)[0]
	h := HashRequestFaulted(f.metric(t), f.Alg, f.instance(t), f.Ell, f.Rho, f.TupN, f.Budget,
		"kind=byzantine;rate=0x0p+00;seed=1;byz=2;down=0x0p+00;repair=1")
	if len(h) != 64 || strings.ToLower(h) != h {
		t.Errorf("faulted hash %q is not lowercase sha256 hex", h)
	}
}
