package instance

import (
	"math"
	"math/rand"
	"path/filepath"
	"testing"

	"freezetag/internal/diskgraph"
	"freezetag/internal/geom"
)

func TestRandomWalkConnected(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	in := RandomWalk(rng, 50, 0.8)
	if in.N() != 50 {
		t.Fatalf("N = %d", in.N())
	}
	p := in.Params()
	if p.Ell > 0.8+1e-9 {
		t.Errorf("ℓ* = %v, want ≤ step 0.8", p.Ell)
	}
}

func TestUniformDiskInRadius(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	in := UniformDisk(rng, 200, 5)
	for _, p := range in.Points {
		if p.Norm() > 5+1e-9 {
			t.Fatalf("point %v outside radius", p)
		}
	}
	if par := in.Params(); par.Rho > 5+1e-9 {
		t.Errorf("ρ* = %v", par.Rho)
	}
}

func TestClusterChainStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	in := ClusterChain(rng, 4, 10, 6, 0.5)
	if in.N() != 40 {
		t.Fatalf("N = %d", in.N())
	}
	p := in.Params()
	// Gap between clusters is ≥ 6−2·0.5 = 5; ℓ* must be in [4, 6].
	if p.Ell < 4 || p.Ell > 6+1e-9 {
		t.Errorf("ℓ* = %v, want ∈ [4, 6]", p.Ell)
	}
}

func TestGridSwarm(t *testing.T) {
	in := GridSwarm(5, 2)
	if in.N() != 25 {
		t.Fatalf("N = %d", in.N())
	}
	p := in.Params()
	// Source at origin, first robot at (2,2): ℓ* = 2√2; grid spacing 2.
	if math.Abs(p.Ell-2*math.Sqrt2) > 1e-9 {
		t.Errorf("ℓ* = %v, want 2√2", p.Ell)
	}
}

func TestLineParams(t *testing.T) {
	in := Line(10, 1.5)
	p := in.Params()
	if math.Abs(p.Ell-1.5) > 1e-9 {
		t.Errorf("ℓ* = %v", p.Ell)
	}
	if math.Abs(p.Rho-15) > 1e-9 {
		t.Errorf("ρ* = %v", p.Rho)
	}
	if math.Abs(p.Xi-15) > 1e-9 {
		t.Errorf("ξ = %v", p.Xi)
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	in := RandomWalk(rng, 20, 1)
	path := filepath.Join(t.TempDir(), "inst.json")
	if err := in.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != in.Name || got.N() != in.N() {
		t.Fatalf("round trip mismatch: %v vs %v", got, in)
	}
	for i := range in.Points {
		if !got.Points[i].Eq(in.Points[i]) {
			t.Fatalf("point %d differs", i)
		}
	}
}

func TestLoadMissing(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.json")); err == nil {
		t.Fatal("want error for missing file")
	}
}

func TestCentersCLemma12(t *testing.T) {
	// Lemma 12: |C| ≥ 1 + ρ²/ℓ².
	for _, c := range []struct{ rho, ell float64 }{
		{8, 2}, {16, 2}, {32, 4}, {10, 1},
	} {
		centers := CentersC(c.rho, c.ell)
		want := 1 + c.rho*c.rho/(c.ell*c.ell)
		if float64(len(centers)) < want {
			t.Errorf("|C|(ρ=%v,ℓ=%v) = %d < %v", c.rho, c.ell, len(centers), want)
		}
		for _, p := range centers {
			if p.Norm() > c.rho-c.ell/4+1e-9 {
				t.Errorf("center %v outside allowed disk", p)
			}
		}
	}
}

func TestConnectedCentersConnected(t *testing.T) {
	rho, ell := 12.0, 2.0
	m := 40
	centers := ConnectedCenters(rho, ell, m)
	if len(centers) != m {
		t.Fatalf("got %d centers, want %d", len(centers), m)
	}
	// Connectivity at grid spacing ℓ/2 together with the origin.
	g := diskgraph.New(geom.Origin, centers, ell/2+1e-9)
	if !g.Connected() {
		t.Error("C_m ∪ {origin} not connected at ℓ/2 adjacency")
	}
	// Must contain the mandatory column.
	colLen := int(rho / ell)
	have := map[geom.Point]bool{}
	for _, p := range centers {
		have[p] = true
	}
	for j := 1; j <= colLen; j++ {
		p := geom.Pt(0, float64(j)*ell/2)
		if !have[p] {
			t.Errorf("missing mandatory column point %v", p)
		}
	}
}

func TestDiskGridStaticValid(t *testing.T) {
	rho, ell := 10.0, 2.0
	in := DiskGridStatic(rho, ell, 60)
	p := in.Params()
	if p.Ell > ell+1e-9 {
		t.Errorf("ℓ* = %v exceeds ℓ = %v (Lemma 13 violated)", p.Ell, ell)
	}
	if p.Rho > rho+1e-9 {
		t.Errorf("ρ* = %v exceeds ρ = %v", p.Rho, rho)
	}
	// Each robot sits in its disk: distance from some center ≤ ℓ/4.
	centers := CentersC(rho, ell)
	for _, pt := range in.Points {
		ok := false
		for _, c := range centers {
			if c.Within(pt, ell/4) {
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("robot %v not inside any disk D_c", pt)
		}
	}
}

func TestBuildPathBasic(t *testing.T) {
	spec := PathSpec{Ell: 2, Rho: 20, B: 5, Xi: 30}
	in, err := BuildPath(spec)
	if err != nil {
		t.Fatal(err)
	}
	p := in.Params()
	if p.Ell > spec.Ell+1e-9 {
		t.Errorf("ℓ* = %v exceeds ℓ = %v", p.Ell, spec.Ell)
	}
	if math.Abs(p.Rho-spec.Rho) > spec.Ell {
		t.Errorf("ρ* = %v, want ≈ %v", p.Rho, spec.Rho)
	}
	// ξ at the prescribed ℓ should be within a section length of ξ.
	xi := diskgraph.XiAt(in.Source, in.Points, spec.Ell)
	if math.IsInf(xi, 1) {
		t.Fatal("path instance disconnected at ℓ")
	}
	if xi < spec.Rho-1e-9 {
		t.Errorf("ξℓ = %v below ρ", xi)
	}
	if xi > spec.Xi*1.6+spec.Ell {
		t.Errorf("ξℓ = %v far above prescribed %v", xi, spec.Xi)
	}
}

func TestBuildPathXiGrowsWithSpec(t *testing.T) {
	// Larger prescribed ξ must give larger realized ξℓ.
	prev := 0.0
	for _, xi := range []float64{50, 100, 180} {
		in, err := BuildPath(PathSpec{Ell: 2, Rho: 40, B: 3, Xi: xi})
		if err != nil {
			t.Fatal(err)
		}
		got := diskgraph.XiAt(in.Source, in.Points, 2)
		if math.IsInf(got, 1) {
			t.Fatalf("ξ=%v: disconnected", xi)
		}
		if got <= prev {
			t.Errorf("ξℓ did not grow: %v after %v", got, prev)
		}
		prev = got
	}
}

func TestBuildPathNoShortcuts(t *testing.T) {
	// The B-separation property: points on different horizontal runs are at
	// least B+1−2ℓ apart vertically unless connected along the path. Check
	// that the realized ξℓ is at least ~ the path length, i.e. the ℓ-disk
	// graph has no vertical shortcut collapsing the path.
	spec := PathSpec{Ell: 1, Rho: 20, B: 4, Xi: 25}
	in, err := BuildPath(spec)
	if err != nil {
		t.Fatal(err)
	}
	xi := diskgraph.XiAt(in.Source, in.Points, spec.Ell)
	if xi < 0.5*spec.Xi {
		t.Errorf("ξℓ = %v collapsed below half the prescribed %v: shortcut exists", xi, spec.Xi)
	}
}

func TestBuildPathRejectsBadSpecs(t *testing.T) {
	if _, err := BuildPath(PathSpec{Ell: 2, Rho: 20, B: 1, Xi: 30}); err == nil {
		t.Error("B ≤ ℓ should be rejected")
	}
	if _, err := BuildPath(PathSpec{Ell: 2, Rho: 20, B: 5, Xi: 10}); err == nil {
		t.Error("ξ < ρ should be rejected")
	}
	if _, err := BuildPath(PathSpec{Ell: 2, Rho: 20, B: 5, Xi: 120}); err == nil {
		t.Error("ξ above the Eq. 15 range should be rejected")
	}
	if _, err := BuildPath(PathSpec{Ell: 0, Rho: 20, B: 5, Xi: 30}); err == nil {
		t.Error("ℓ = 0 should be rejected")
	}
}

func TestXiRangeMax(t *testing.T) {
	s := PathSpec{Ell: 2, Rho: 20, B: 5}
	// n large: the ρ²/(2(B+1))+1 term dominates.
	if got, want := s.XiRangeMax(1000), 400.0/12+1; math.Abs(got-want) > 1e-9 {
		t.Errorf("XiRangeMax = %v, want %v", got, want)
	}
	// n small: nℓ−ρ/3 dominates.
	if got, want := s.XiRangeMax(10), 20-20.0/3; math.Abs(got-want) > 1e-9 {
		t.Errorf("XiRangeMax = %v, want %v", got, want)
	}
}
