package spatial

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"freezetag/internal/geom"
)

// Metric-aware grids must agree with an O(n) brute-force scan for every
// query — the ring/box pruning may only skip cells that provably cannot
// contain a match.
func TestGridWithinMatchesBruteForceUnderMetrics(t *testing.T) {
	metrics := []geom.Metric{geom.L1, geom.LInf, mustLp(t, 2.5)}
	for _, m := range metrics {
		t.Run(m.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(99))
			g := NewGridIn(m, 1)
			pts := make(map[int]geom.Point)
			for id := 0; id < 300; id++ {
				p := geom.Pt((rng.Float64()-0.5)*40, (rng.Float64()-0.5)*40)
				pts[id] = p
				g.Insert(id, p)
			}
			for trial := 0; trial < 200; trial++ {
				q := geom.Pt((rng.Float64()-0.5)*44, (rng.Float64()-0.5)*44)
				r := rng.Float64() * 6
				got := g.Within(nil, q, r)
				sort.Ints(got)
				var want []int
				for id, p := range pts {
					if m.Dist(p, q) <= r+geom.Eps {
						want = append(want, id)
					}
				}
				sort.Ints(want)
				if len(got) != len(want) {
					t.Fatalf("Within(%v, %g): got %d ids, brute force %d", q, r, len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("Within(%v, %g): got %v, want %v", q, r, got, want)
					}
				}
			}
		})
	}
}

func TestGridNearestMatchesBruteForceUnderMetrics(t *testing.T) {
	for _, m := range []geom.Metric{geom.L1, geom.LInf} {
		t.Run(m.Name(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(17))
			g := NewGridIn(m, 1.5)
			pts := make(map[int]geom.Point)
			for id := 0; id < 200; id++ {
				p := geom.Pt((rng.Float64()-0.5)*30, (rng.Float64()-0.5)*30)
				pts[id] = p
				g.Insert(id, p)
			}
			for trial := 0; trial < 200; trial++ {
				q := geom.Pt((rng.Float64()-0.5)*36, (rng.Float64()-0.5)*36)
				skip := func(id int) bool { return id%7 == trial%7 }
				_, gotD, ok := g.Nearest(q, skip)
				bestD := math.Inf(1)
				for id, p := range pts {
					if skip(id) {
						continue
					}
					if d := m.Dist(p, q); d < bestD {
						bestD = d
					}
				}
				if !ok {
					t.Fatalf("Nearest(%v) found nothing, brute force %v", q, bestD)
				}
				// Ties between equidistant items may resolve differently;
				// the distance itself must be optimal.
				if gotD != bestD {
					t.Fatalf("Nearest(%v) = %v, brute force %v", q, gotD, bestD)
				}
			}
		})
	}
}

// The ℓ2 grid keeps its exact pre-metric semantics: Within under an explicit
// L2 equals Within of a default grid, item for item.
func TestGridL2DefaultUnchanged(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	def := NewGrid(1)
	exp := NewGridIn(geom.L2, 1)
	for id := 0; id < 200; id++ {
		p := geom.Pt((rng.Float64()-0.5)*20, (rng.Float64()-0.5)*20)
		def.Insert(id, p)
		exp.Insert(id, p)
	}
	for trial := 0; trial < 100; trial++ {
		q := geom.Pt((rng.Float64()-0.5)*22, (rng.Float64()-0.5)*22)
		r := rng.Float64() * 4
		a, b := def.Within(nil, q, r), exp.Within(nil, q, r)
		sort.Ints(a)
		sort.Ints(b)
		if len(a) != len(b) {
			t.Fatalf("default vs explicit ℓ2 differ: %v vs %v", a, b)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("default vs explicit ℓ2 differ: %v vs %v", a, b)
			}
		}
	}
}

func mustLp(t *testing.T, p float64) geom.Metric {
	t.Helper()
	m, err := geom.Lp(p)
	if err != nil {
		t.Fatal(err)
	}
	return m
}
