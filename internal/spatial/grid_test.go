package spatial

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"freezetag/internal/geom"
)

func TestInsertRemove(t *testing.T) {
	g := NewGrid(1)
	g.Insert(1, geom.Pt(0.5, 0.5))
	g.Insert(2, geom.Pt(1.5, 0.5))
	if g.Len() != 2 {
		t.Fatalf("Len = %d", g.Len())
	}
	p, ok := g.At(1)
	if !ok || !p.Eq(geom.Pt(0.5, 0.5)) {
		t.Fatalf("At(1) = %v, %v", p, ok)
	}
	g.Remove(1)
	if g.Len() != 1 {
		t.Fatalf("Len after remove = %d", g.Len())
	}
	if _, ok := g.At(1); ok {
		t.Fatal("removed item still present")
	}
	g.Remove(99) // no-op
}

func TestInsertMoves(t *testing.T) {
	g := NewGrid(1)
	g.Insert(1, geom.Pt(0, 0))
	g.Insert(1, geom.Pt(10, 10))
	if g.Len() != 1 {
		t.Fatalf("Len = %d", g.Len())
	}
	ids := g.Within(nil, geom.Pt(10, 10), 0.1)
	if len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("Within after move = %v", ids)
	}
	if got := g.Within(nil, geom.Pt(0, 0), 0.1); len(got) != 0 {
		t.Fatalf("stale position still indexed: %v", got)
	}
}

func TestWithin(t *testing.T) {
	g := NewGrid(1)
	g.Insert(1, geom.Pt(0, 0))
	g.Insert(2, geom.Pt(1, 0))   // exactly on radius
	g.Insert(3, geom.Pt(1.5, 0)) // outside
	g.Insert(4, geom.Pt(0, -0.5))
	ids := g.Within(nil, geom.Pt(0, 0), 1)
	sort.Ints(ids)
	want := []int{1, 2, 4}
	if len(ids) != len(want) {
		t.Fatalf("Within = %v, want %v", ids, want)
	}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("Within = %v, want %v", ids, want)
		}
	}
	if got := g.Within(nil, geom.Pt(0, 0), -1); len(got) != 0 {
		t.Fatalf("negative radius should return nothing, got %v", got)
	}
}

func TestInRect(t *testing.T) {
	g := NewGrid(2)
	g.Insert(1, geom.Pt(0, 0))
	g.Insert(2, geom.Pt(3, 3))
	g.Insert(3, geom.Pt(5, 5))
	ids := g.InRect(nil, geom.NewRect(geom.Pt(-1, -1), geom.Pt(4, 4)))
	sort.Ints(ids)
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 2 {
		t.Fatalf("InRect = %v", ids)
	}
}

func TestNearest(t *testing.T) {
	g := NewGrid(1)
	if _, _, ok := g.Nearest(geom.Pt(0, 0), nil); ok {
		t.Fatal("Nearest on empty grid should report !ok")
	}
	g.Insert(1, geom.Pt(10, 0))
	g.Insert(2, geom.Pt(3, 4))
	g.Insert(3, geom.Pt(-1, -1))
	id, d, ok := g.Nearest(geom.Pt(0, 0), nil)
	if !ok || id != 3 || math.Abs(d-math.Sqrt2) > 1e-9 {
		t.Fatalf("Nearest = %d, %v, %v", id, d, ok)
	}
	// Skip the closest: should find the next.
	id, d, ok = g.Nearest(geom.Pt(0, 0), func(i int) bool { return i == 3 })
	if !ok || id != 2 || math.Abs(d-5) > 1e-9 {
		t.Fatalf("Nearest with skip = %d, %v, %v", id, d, ok)
	}
	// Skip everything.
	if _, _, ok := g.Nearest(geom.Pt(0, 0), func(int) bool { return true }); ok {
		t.Fatal("Nearest skipping all should report !ok")
	}
}

func TestNearestFarQuery(t *testing.T) {
	// Query point far outside the populated region: ring expansion must still
	// reach the items.
	g := NewGrid(1)
	g.Insert(7, geom.Pt(100, 100))
	id, d, ok := g.Nearest(geom.Pt(0, 0), nil)
	if !ok || id != 7 || math.Abs(d-100*math.Sqrt2) > 1e-6 {
		t.Fatalf("Nearest far = %d %v %v", id, d, ok)
	}
}

func TestForEach(t *testing.T) {
	g := NewGrid(1)
	g.Insert(1, geom.Pt(0, 0))
	g.Insert(2, geom.Pt(5, 5))
	seen := map[int]geom.Point{}
	g.ForEach(func(id int, p geom.Point) { seen[id] = p })
	if len(seen) != 2 || !seen[2].Eq(geom.Pt(5, 5)) {
		t.Fatalf("ForEach = %v", seen)
	}
}

func TestNewGridPanicsOnBadCell(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewGrid(0) should panic")
		}
	}()
	NewGrid(0)
}

// Property: Within agrees with a brute-force scan on random configurations.
func TestWithinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		g := NewGrid(0.5 + rng.Float64()*3)
		pts := make(map[int]geom.Point)
		n := 1 + rng.Intn(60)
		for i := 0; i < n; i++ {
			p := geom.Pt(rng.Float64()*40-20, rng.Float64()*40-20)
			pts[i] = p
			g.Insert(i, p)
		}
		q := geom.Pt(rng.Float64()*40-20, rng.Float64()*40-20)
		r := rng.Float64() * 10
		got := g.Within(nil, q, r)
		sort.Ints(got)
		var want []int
		for id, p := range pts {
			if p.Dist(q) <= r+geom.Eps {
				want = append(want, id)
			}
		}
		sort.Ints(want)
		if len(got) != len(want) {
			t.Fatalf("trial %d: Within = %v, brute = %v", trial, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("trial %d: Within = %v, brute = %v", trial, got, want)
			}
		}
	}
}

// Property: Nearest agrees with brute force.
func TestNearestMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		g := NewGrid(1)
		n := 1 + rng.Intn(40)
		pts := make(map[int]geom.Point, n)
		for i := 0; i < n; i++ {
			p := geom.Pt(rng.Float64()*60-30, rng.Float64()*60-30)
			pts[i] = p
			g.Insert(i, p)
		}
		q := geom.Pt(rng.Float64()*60-30, rng.Float64()*60-30)
		_, gotD, ok := g.Nearest(q, nil)
		if !ok {
			t.Fatalf("trial %d: Nearest !ok with %d items", trial, n)
		}
		best := math.Inf(1)
		for _, p := range pts {
			if d := p.Dist(q); d < best {
				best = d
			}
		}
		if math.Abs(gotD-best) > 1e-9 {
			t.Fatalf("trial %d: Nearest dist = %v, brute = %v", trial, gotD, best)
		}
	}
}

// Property (quick): inserting then querying with radius 0 finds the item.
func TestInsertFindSelf(t *testing.T) {
	f := func(x, y float64) bool {
		if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
			return true
		}
		x, y = math.Mod(x, 1e4), math.Mod(y, 1e4)
		g := NewGrid(1)
		g.Insert(1, geom.Pt(x, y))
		ids := g.Within(nil, geom.Pt(x, y), 0)
		return len(ids) == 1 && ids[0] == 1
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}
