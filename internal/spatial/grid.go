// Package spatial provides a uniform grid hash over the plane supporting
// near-constant-time radius queries. The simulator uses it to implement the
// robots' radius-1 "look" primitive without scanning the whole swarm, the
// disk-graph builder uses it to enumerate δ-neighbors, and the connectivity
// threshold ℓ* is derived with its nearest-neighbor search.
package spatial

import (
	"math"

	"freezetag/internal/geom"
)

// Grid indexes items identified by int IDs at points in the plane, bucketed
// into square cells of a fixed size. Query cost is proportional to the number
// of items in the cells overlapping the query ball.
//
// Radius queries and nearest-neighbor searches are evaluated under the grid's
// metric (ℓ2 unless built with NewGridIn). The cell bookkeeping itself is
// metric-independent: a metric ball of radius r is always contained in the
// axis-aligned square of half-width r because every supported metric
// dominates the Chebyshev distance (see geom.Metric).
//
// Cells store their members as parallel id/point slices, so query scans walk
// contiguous points (and can hand whole cells to geom.DistBatch) instead of
// chasing a map lookup per member. Cells are retained (empty) when their last
// member leaves, so an item oscillating between two cells — the simulator's
// move loop — allocates nothing in steady state.
//
// Grid is not safe for concurrent use; the simulator serializes all access.
type Grid struct {
	cell   float64
	metric geom.Metric
	euclid bool // cached IsL2(metric): keeps the Dist2 fast path branch cheap
	batch  bool // geom.BatchAccelerated(metric): big cells go through DistBatch
	items  map[int]geom.Point
	cells  map[[2]int]*gridCell
	// dists is the DistBatch scratch for metric cell scans, grown to the
	// largest cell ever scanned and reused across queries.
	dists []float64
	// Grow-only bounds of every cell that ever held an item: a constant-time
	// upper bound on useful ring expansion in Nearest (stale-but-larger
	// bounds only cost extra empty rings when no eligible item exists).
	hasBounds    bool
	minCX, maxCX int
	minCY, maxCY int
	// cellBlock bump-allocates gridCell structs in chunks, so an item
	// sweeping across fresh territory (a racer engine's robots crossing
	// thousands of never-seen cells) costs one allocation per block rather
	// than one per cell. Handed-out pointers stay valid when a block fills:
	// the full block is abandoned to the cells map and a fresh one started.
	cellBlock []gridCell
	// idBlock/ptBlock seed each new cell with a small capacity-clipped
	// window carved from a shared array, so a cell's first members don't
	// cost a slice allocation each. Appends past the window's capacity fall
	// off into an ordinary grown slice; the three-index clip guarantees a
	// growing cell can never overwrite its neighbour's window.
	idBlock []int
	ptBlock []geom.Point
}

// cellBlockSize is how many gridCell structs (and seed windows) each bump
// block holds; cellSeedCap is the member capacity a fresh cell starts with.
// Most cells a moving robot sweeps through hold one or two members at a
// time, so the seed window absorbs the common case outright.
const (
	cellBlockSize = 256
	cellSeedCap   = 2
)

// newCell hands out a zeroed cell from the bump blocks.
func (g *Grid) newCell() *gridCell {
	if len(g.cellBlock) == cap(g.cellBlock) {
		g.cellBlock = make([]gridCell, 0, cellBlockSize)
	}
	g.cellBlock = g.cellBlock[:len(g.cellBlock)+1]
	c := &g.cellBlock[len(g.cellBlock)-1]
	if cap(g.idBlock)-len(g.idBlock) < cellSeedCap {
		g.idBlock = make([]int, 0, cellBlockSize*cellSeedCap)
	}
	off := len(g.idBlock)
	c.ids = g.idBlock[off : off : off+cellSeedCap]
	g.idBlock = g.idBlock[:off+cellSeedCap]
	if cap(g.ptBlock)-len(g.ptBlock) < cellSeedCap {
		g.ptBlock = make([]geom.Point, 0, cellBlockSize*cellSeedCap)
	}
	off = len(g.ptBlock)
	c.pts = g.ptBlock[off : off : off+cellSeedCap]
	g.ptBlock = g.ptBlock[:off+cellSeedCap]
	return c
}

// gridCell holds one cell's members as parallel slices: ids[i] sits at
// pts[i]. The point copy is the whole optimization — scans read points
// sequentially from the cell instead of indirecting through the item map.
type gridCell struct {
	ids []int
	pts []geom.Point
}

// batchScanMin is the cell population below which metric scans stay on the
// per-point path even when the metric is batch-accelerated: DistBatch's
// dispatch and staging don't pay for themselves on near-empty cells (the
// simulator's look cells typically hold a handful of robots). Either path
// produces identical bits; this is purely a knob.
const batchScanMin = 8

// NewGrid builds an empty Euclidean grid with the given cell size. The cell
// size should be of the order of the most common query radius; it must be
// positive.
func NewGrid(cellSize float64) *Grid { return NewGridIn(nil, cellSize) }

// NewGridIn builds an empty grid whose radius and nearest queries measure
// under m (nil defaults to ℓ2).
func NewGridIn(m geom.Metric, cellSize float64) *Grid {
	return NewGridInCap(m, cellSize, 0)
}

// NewGridInCap is NewGridIn with a capacity hint: the item index is sized
// for n items up front, so bulk loads (the simulator's robot population,
// the disk-graph vertex set) skip the incremental map growth.
func NewGridInCap(m geom.Metric, cellSize float64, n int) *Grid {
	if cellSize <= 0 {
		panic("spatial: cell size must be positive")
	}
	if n < 0 {
		n = 0
	}
	metric := geom.MetricOrL2(m)
	return &Grid{
		cell:   cellSize,
		metric: metric,
		euclid: geom.IsL2(metric),
		batch:  geom.BatchAccelerated(metric),
		items:  make(map[int]geom.Point, n),
		cells:  make(map[[2]int]*gridCell, n),
	}
}

// Reset empties the grid for reuse under metric m (nil defaults to ℓ2),
// retaining all allocated storage: the item index, every cell's member
// slices, and the batch scratch survive, so a simulation engine re-running
// an instance of the same shape re-populates the grid without allocating.
// Cells left empty by Reset are harmless to queries — they are skipped like
// any other empty cell — and their capacity is exactly what the next run of
// the same shape needs.
func (g *Grid) Reset(m geom.Metric) {
	metric := geom.MetricOrL2(m)
	g.metric = metric
	g.euclid = geom.IsL2(metric)
	g.batch = geom.BatchAccelerated(metric)
	clear(g.items)
	for _, c := range g.cells {
		c.ids = c.ids[:0]
		c.pts = c.pts[:0]
	}
	g.hasBounds = false
	g.minCX, g.maxCX, g.minCY, g.maxCY = 0, 0, 0, 0
}

// Len returns the number of indexed items.
func (g *Grid) Len() int { return len(g.items) }

// CellSize returns the configured cell size.
func (g *Grid) CellSize() float64 { return g.cell }

// Metric returns the metric the grid's queries measure under.
func (g *Grid) Metric() geom.Metric { return g.metric }

func (g *Grid) key(p geom.Point) [2]int {
	return [2]int{int(math.Floor(p.X / g.cell)), int(math.Floor(p.Y / g.cell))}
}

// Insert adds or moves item id to point p.
func (g *Grid) Insert(id int, p geom.Point) {
	if old, ok := g.items[id]; ok {
		g.removeFromCell(id, old)
	}
	g.items[id] = p
	k := g.key(p)
	c := g.cells[k]
	if c == nil {
		c = g.newCell()
		g.cells[k] = c
	}
	c.ids = append(c.ids, id)
	c.pts = append(c.pts, p)
	if !g.hasBounds {
		g.hasBounds = true
		g.minCX, g.maxCX = k[0], k[0]
		g.minCY, g.maxCY = k[1], k[1]
		return
	}
	g.minCX = min(g.minCX, k[0])
	g.maxCX = max(g.maxCX, k[0])
	g.minCY = min(g.minCY, k[1])
	g.maxCY = max(g.maxCY, k[1])
}

// Remove deletes item id; unknown ids are a no-op.
func (g *Grid) Remove(id int) {
	p, ok := g.items[id]
	if !ok {
		return
	}
	g.removeFromCell(id, p)
	delete(g.items, id)
}

func (g *Grid) removeFromCell(id int, p geom.Point) {
	c := g.cells[g.key(p)]
	if c == nil {
		return
	}
	for i, v := range c.ids {
		if v == id {
			last := len(c.ids) - 1
			c.ids[i] = c.ids[last]
			c.pts[i] = c.pts[last]
			c.ids = c.ids[:last] // keep the empty slices for reuse
			c.pts = c.pts[:last]
			return
		}
	}
}

// At returns the indexed position of id and whether it exists.
func (g *Grid) At(id int) (geom.Point, bool) {
	p, ok := g.items[id]
	return p, ok
}

// cellDists fills g.dists with the metric distances from p to every member
// of c via the batch kernel and returns the block.
func (g *Grid) cellDists(p geom.Point, c *gridCell) []float64 {
	if cap(g.dists) < len(c.pts) {
		g.dists = make([]float64, len(c.pts)+lenSlack(len(c.pts)))
	}
	d := g.dists[:len(c.pts)]
	geom.DistBatch(g.metric, p, c.pts, d)
	return d
}

// lenSlack over-allocates scratch growth so a sequence of slightly-growing
// cells settles after a few queries.
func lenSlack(n int) int { return n/2 + 8 }

// Within appends to dst the ids of all items within metric distance r of p
// (closed ball, geom.Eps slack) and returns the extended slice. Results are
// in unspecified order. The scanned cell range is the bounding square of the
// ball, which covers the metric ball of every supported metric.
func (g *Grid) Within(dst []int, p geom.Point, r float64) []int {
	if r < 0 {
		return dst
	}
	minX := int(math.Floor((p.X - r) / g.cell))
	maxX := int(math.Floor((p.X + r) / g.cell))
	minY := int(math.Floor((p.Y - r) / g.cell))
	maxY := int(math.Floor((p.Y + r) / g.cell))
	r2 := (r + geom.Eps) * (r + geom.Eps)
	rEps := r + geom.Eps
	for cx := minX; cx <= maxX; cx++ {
		for cy := minY; cy <= maxY; cy++ {
			c := g.cells[[2]int{cx, cy}]
			if c == nil {
				continue
			}
			switch {
			case g.euclid:
				// Squared-distance fast path, bit-identical to the
				// pre-metric grid.
				for i, q := range c.pts {
					if q.Dist2(p) <= r2 {
						dst = append(dst, c.ids[i])
					}
				}
			case g.batch && len(c.pts) >= batchScanMin:
				for i, d := range g.cellDists(p, c) {
					if d <= rEps {
						dst = append(dst, c.ids[i])
					}
				}
			default:
				for i, q := range c.pts {
					if geom.WithinIn(g.metric, q, p, r) {
						dst = append(dst, c.ids[i])
					}
				}
			}
		}
	}
	return dst
}

// InRect appends to dst the ids of items inside rectangle r (closed, Eps
// slack) and returns the extended slice.
func (g *Grid) InRect(dst []int, r geom.Rect) []int {
	minX := int(math.Floor(r.Min.X / g.cell))
	maxX := int(math.Floor(r.Max.X / g.cell))
	minY := int(math.Floor(r.Min.Y / g.cell))
	maxY := int(math.Floor(r.Max.Y / g.cell))
	for cx := minX; cx <= maxX; cx++ {
		for cy := minY; cy <= maxY; cy++ {
			c := g.cells[[2]int{cx, cy}]
			if c == nil {
				continue
			}
			for i, q := range c.pts {
				if r.Contains(q) {
					dst = append(dst, c.ids[i])
				}
			}
		}
	}
	return dst
}

// Nearest returns the id of the indexed item closest to p under the grid's
// metric, excluding ids for which skip returns true, along with its distance.
// ok is false when no eligible item exists. skip may be nil.
//
// The search expands square rings of cells outward from p. Once a candidate
// is found at distance d, the search only needs to continue until the ring
// boundary exceeds d (any item in ring k is at Chebyshev distance, hence at
// metric distance, > (k−1)·cell); the ring count is additionally capped by
// the grid's populated-cell bounds, so the loop always terminates.
//
// Populated cells hand their whole point block to the batch kernel; the
// running minimum then folds over the block in index order, which is the
// same comparison sequence as the per-point loop, so the winner (and its
// exact distance bits) never depends on which path ran.
func (g *Grid) Nearest(p geom.Point, skip func(id int) bool) (id int, dist float64, ok bool) {
	if len(g.items) == 0 {
		return 0, 0, false
	}
	ck := g.key(p)
	maxRing := g.maxRingFrom(ck)
	best := math.Inf(1)
	bestID := 0
	found := false
	for ring := 0; ring <= maxRing; ring++ {
		for cx := ck[0] - ring; cx <= ck[0]+ring; cx++ {
			for cy := ck[1] - ring; cy <= ck[1]+ring; cy++ {
				if ring > 0 && cx > ck[0]-ring && cx < ck[0]+ring &&
					cy > ck[1]-ring && cy < ck[1]+ring {
					continue // interior cells scanned in earlier rings
				}
				c := g.cells[[2]int{cx, cy}]
				if c == nil {
					continue
				}
				if g.batch && len(c.pts) >= batchScanMin {
					for i, d := range g.cellDists(p, c) {
						if d < best {
							id := c.ids[i]
							if skip != nil && skip(id) {
								continue
							}
							best, bestID, found = d, id, true
						}
					}
					continue
				}
				for i, id := range c.ids {
					if skip != nil && skip(id) {
						continue
					}
					if d := g.metric.Dist(c.pts[i], p); d < best {
						best, bestID, found = d, id, true
					}
				}
			}
		}
		// Any item in ring k is at distance > (k-1)·cell, so once the current
		// best is within ring·cell no farther ring can improve it.
		if found && best <= float64(ring)*g.cell {
			break
		}
	}
	if !found {
		return 0, 0, false
	}
	return bestID, best, true
}

// maxRingFrom returns the largest Chebyshev cell-distance from origin cell ck
// to any cell that ever held an item — the upper bound on useful ring
// expansion, from the grow-only bounds in constant time.
func (g *Grid) maxRingFrom(ck [2]int) int {
	if !g.hasBounds {
		return 0
	}
	ring := max(g.maxCX-ck[0], ck[0]-g.minCX)
	ring = max(ring, g.maxCY-ck[1])
	ring = max(ring, ck[1]-g.minCY)
	return max(ring, 0)
}

// ForEach calls fn for every (id, point) pair in unspecified order.
func (g *Grid) ForEach(fn func(id int, p geom.Point)) {
	for id, p := range g.items {
		fn(id, p)
	}
}
