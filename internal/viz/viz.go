// Package viz renders instances and wake-up progressions as ASCII pictures
// for terminals — the repository's stand-in for the paper's figures. It
// draws point sets on a character grid (source, sleeping and awake robots)
// and can replay a recorded trace as a sequence of wake-front frames.
package viz

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"freezetag/internal/geom"
	"freezetag/internal/sim"
)

// Glyphs used by the renderer.
const (
	GlyphSource = 'S'
	GlyphAsleep = '.'
	GlyphAwake  = 'o'
	GlyphMulti  = '*' // several robots in one cell
	GlyphEmpty  = ' '
)

// Canvas is a fixed-size character grid mapped onto a world rectangle.
type Canvas struct {
	cols, rows int
	world      geom.Rect
	cells      [][]rune
}

// NewCanvas builds a canvas of the given character dimensions covering the
// world rectangle (expanded slightly so border points stay inside).
func NewCanvas(cols, rows int, world geom.Rect) *Canvas {
	if cols < 2 || rows < 2 {
		panic("viz: canvas must be at least 2x2")
	}
	pad := math.Max(world.Width(), world.Height()) * 0.02
	if pad == 0 {
		pad = 1
	}
	w := geom.NewRect(
		geom.Pt(world.Min.X-pad, world.Min.Y-pad),
		geom.Pt(world.Max.X+pad, world.Max.Y+pad),
	)
	cells := make([][]rune, rows)
	for r := range cells {
		cells[r] = make([]rune, cols)
		for c := range cells[r] {
			cells[r][c] = GlyphEmpty
		}
	}
	return &Canvas{cols: cols, rows: rows, world: w, cells: cells}
}

// cell maps a world point to grid coordinates.
func (cv *Canvas) cell(p geom.Point) (col, row int, ok bool) {
	if !cv.world.Contains(p) {
		return 0, 0, false
	}
	fx := (p.X - cv.world.Min.X) / cv.world.Width()
	fy := (p.Y - cv.world.Min.Y) / cv.world.Height()
	col = int(fx * float64(cv.cols-1))
	row = cv.rows - 1 - int(fy*float64(cv.rows-1)) // y grows upward
	return col, row, true
}

// Plot draws glyph at world point p; overlapping distinct glyphs become
// GlyphMulti (the source glyph always wins).
func (cv *Canvas) Plot(p geom.Point, glyph rune) {
	col, row, ok := cv.cell(p)
	if !ok {
		return
	}
	cur := cv.cells[row][col]
	switch {
	case cur == GlyphEmpty || cur == glyph:
		cv.cells[row][col] = glyph
	case cur == GlyphSource || glyph == GlyphSource:
		cv.cells[row][col] = GlyphSource
	default:
		cv.cells[row][col] = GlyphMulti
	}
}

// String renders the canvas with a border.
func (cv *Canvas) String() string {
	var b strings.Builder
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", cv.cols))
	b.WriteString("+\n")
	for _, row := range cv.cells {
		b.WriteByte('|')
		b.WriteString(string(row))
		b.WriteString("|\n")
	}
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", cv.cols))
	b.WriteString("+\n")
	return b.String()
}

// Swarm renders a snapshot of an instance: the source, sleeping robots, and
// optionally a set of awake robot positions.
func Swarm(cols, rows int, source geom.Point, asleep, awake []geom.Point) string {
	pts := make([]geom.Point, 0, len(asleep)+len(awake)+1)
	pts = append(pts, source)
	pts = append(pts, asleep...)
	pts = append(pts, awake...)
	cv := NewCanvas(cols, rows, geom.BoundingRect(pts))
	for _, p := range asleep {
		cv.Plot(p, GlyphAsleep)
	}
	for _, p := range awake {
		cv.Plot(p, GlyphAwake)
	}
	cv.Plot(source, GlyphSource)
	return cv.String()
}

// Frame is one step of a wake-front replay.
type Frame struct {
	T      float64
	Awake  int
	Canvas string
}

// Replay renders `frames` equally spaced snapshots of a recorded run: at
// each snapshot time, robots woken by then are drawn awake. Events must be
// the engine's trace (only "wake" events are consulted); initial positions
// come from the instance.
func Replay(cols, rows int, source geom.Point, sleepers []geom.Point,
	events []sim.Event, frames int) []Frame {
	if frames < 1 {
		frames = 1
	}
	type wakeEv struct {
		t  float64
		id int
	}
	var wakes []wakeEv
	var tMax float64
	for _, ev := range events {
		if ev.T > tMax {
			tMax = ev.T
		}
		if ev.Kind == "wake" {
			wakes = append(wakes, wakeEv{t: ev.T, id: ev.Robot})
		}
	}
	sort.Slice(wakes, func(i, j int) bool { return wakes[i].t < wakes[j].t })
	out := make([]Frame, 0, frames)
	for f := 1; f <= frames; f++ {
		limit := tMax * float64(f) / float64(frames)
		var asleep, awake []geom.Point
		woken := map[int]bool{}
		for _, w := range wakes {
			if w.t <= limit+geom.Eps {
				woken[w.id] = true
			}
		}
		for i, p := range sleepers {
			if woken[i+1] {
				awake = append(awake, p)
			} else {
				asleep = append(asleep, p)
			}
		}
		out = append(out, Frame{
			T:      limit,
			Awake:  len(awake),
			Canvas: Swarm(cols, rows, source, asleep, awake),
		})
	}
	return out
}

// Legend returns the glyph legend line.
func Legend() string {
	return fmt.Sprintf("legend: %c source  %c asleep  %c awake  %c several",
		GlyphSource, GlyphAsleep, GlyphAwake, GlyphMulti)
}
