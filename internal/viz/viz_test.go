package viz

import (
	"strings"
	"testing"

	"freezetag/internal/geom"
	"freezetag/internal/sim"
)

func TestCanvasBasics(t *testing.T) {
	cv := NewCanvas(20, 10, geom.RectWH(geom.Origin, 10, 10))
	cv.Plot(geom.Pt(5, 5), GlyphAsleep)
	out := cv.String()
	if !strings.Contains(out, string(GlyphAsleep)) {
		t.Errorf("plotted glyph missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 12 { // 10 rows + 2 borders
		t.Errorf("line count = %d", len(lines))
	}
	for _, l := range lines {
		if len([]rune(l)) != 22 {
			t.Errorf("row width = %d, want 22: %q", len([]rune(l)), l)
		}
	}
}

func TestPlotOverlap(t *testing.T) {
	cv := NewCanvas(10, 10, geom.RectWH(geom.Origin, 10, 10))
	p := geom.Pt(5, 5)
	cv.Plot(p, GlyphAsleep)
	cv.Plot(p, GlyphAwake)
	if !strings.Contains(cv.String(), string(GlyphMulti)) {
		t.Error("overlapping distinct glyphs should render as multi")
	}
	// Source wins.
	cv2 := NewCanvas(10, 10, geom.RectWH(geom.Origin, 10, 10))
	cv2.Plot(p, GlyphAsleep)
	cv2.Plot(p, GlyphSource)
	if !strings.Contains(cv2.String(), string(GlyphSource)) {
		t.Error("source glyph should win overlaps")
	}
}

func TestPlotOutsideIgnored(t *testing.T) {
	cv := NewCanvas(10, 10, geom.RectWH(geom.Origin, 10, 10))
	cv.Plot(geom.Pt(100, 100), GlyphAwake)
	if strings.Contains(cv.String(), string(GlyphAwake)) {
		t.Error("out-of-world point should be ignored")
	}
}

func TestSwarm(t *testing.T) {
	out := Swarm(30, 12, geom.Origin,
		[]geom.Point{geom.Pt(3, 1), geom.Pt(5, 2)},
		[]geom.Point{geom.Pt(1, 1)})
	for _, g := range []rune{GlyphSource, GlyphAsleep, GlyphAwake} {
		if !strings.Contains(out, string(g)) {
			t.Errorf("missing glyph %c:\n%s", g, out)
		}
	}
}

func TestReplayFrames(t *testing.T) {
	sleepers := []geom.Point{geom.Pt(2, 0), geom.Pt(4, 0)}
	events := []sim.Event{
		{T: 2, Robot: 1, Kind: "wake", Pos: sleepers[0]},
		{T: 4, Robot: 2, Kind: "wake", Pos: sleepers[1]},
		{T: 5, Robot: 2, Kind: "done"},
	}
	frames := Replay(20, 8, geom.Origin, sleepers, events, 5)
	if len(frames) != 5 {
		t.Fatalf("frames = %d", len(frames))
	}
	if frames[0].Awake != 0 {
		t.Errorf("frame 0 awake = %d (t=%v)", frames[0].Awake, frames[0].T)
	}
	if frames[4].Awake != 2 {
		t.Errorf("final frame awake = %d", frames[4].Awake)
	}
	// Awake counts are monotone.
	for i := 1; i < len(frames); i++ {
		if frames[i].Awake < frames[i-1].Awake {
			t.Errorf("awake count decreased at frame %d", i)
		}
	}
}

func TestReplayDegenerate(t *testing.T) {
	frames := Replay(10, 5, geom.Origin, nil, nil, 0)
	if len(frames) != 1 {
		t.Fatalf("frames = %d, want clamped 1", len(frames))
	}
}

func TestLegend(t *testing.T) {
	if !strings.Contains(Legend(), "source") {
		t.Error("legend missing source")
	}
}

func TestCanvasPanicsTooSmall(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("1x1 canvas should panic")
		}
	}()
	NewCanvas(1, 1, geom.RectWH(geom.Origin, 1, 1))
}
