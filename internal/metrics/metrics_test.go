package metrics

import (
	"math"
	"math/rand"
	"testing"
)

func TestFitLinearExact(t *testing.T) {
	// y = 3a + 2b exactly.
	var feats [][]float64
	var ys []float64
	for a := 1.0; a <= 5; a++ {
		for b := 1.0; b <= 3; b++ {
			feats = append(feats, []float64{a, b})
			ys = append(ys, 3*a+2*b)
		}
	}
	coef, r2, err := FitLinear(feats, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(coef[0]-3) > 1e-9 || math.Abs(coef[1]-2) > 1e-9 {
		t.Errorf("coef = %v, want [3 2]", coef)
	}
	if r2 < 0.999999 {
		t.Errorf("R² = %v", r2)
	}
}

func TestFitLinearNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var feats [][]float64
	var ys []float64
	for i := 0; i < 200; i++ {
		x := rng.Float64() * 10
		feats = append(feats, []float64{x, 1})
		ys = append(ys, 5*x+7+rng.NormFloat64()*0.1)
	}
	coef, r2, err := FitLinear(feats, ys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(coef[0]-5) > 0.05 || math.Abs(coef[1]-7) > 0.2 {
		t.Errorf("coef = %v, want ≈ [5 7]", coef)
	}
	if r2 < 0.99 {
		t.Errorf("R² = %v", r2)
	}
}

func TestFitLinearErrors(t *testing.T) {
	if _, _, err := FitLinear(nil, nil); err == nil {
		t.Error("empty input should error")
	}
	if _, _, err := FitLinear([][]float64{{1, 2}}, []float64{1}); err == nil {
		t.Error("underdetermined system should error")
	}
	// Collinear columns.
	feats := [][]float64{{1, 2}, {2, 4}, {3, 6}}
	if _, _, err := FitLinear(feats, []float64{1, 2, 3}); err == nil {
		t.Error("singular system should error")
	}
}

func TestGrowthExponent(t *testing.T) {
	var xs, ys []float64
	for x := 1.0; x <= 64; x *= 2 {
		xs = append(xs, x)
		ys = append(ys, 3*x*x) // exponent 2
	}
	if a := GrowthExponent(xs, ys); math.Abs(a-2) > 1e-9 {
		t.Errorf("exponent = %v, want 2", a)
	}
	// Linear data.
	ys = ys[:0]
	for _, x := range xs {
		ys = append(ys, 7*x)
	}
	if a := GrowthExponent(xs, ys); math.Abs(a-1) > 1e-9 {
		t.Errorf("exponent = %v, want 1", a)
	}
	if a := GrowthExponent([]float64{1}, []float64{1}); !math.IsNaN(a) {
		t.Errorf("single point exponent = %v, want NaN", a)
	}
	// Non-positive data skipped.
	if a := GrowthExponent([]float64{-1, 1, 2}, []float64{5, 3, 6}); math.IsNaN(a) {
		t.Error("should fit on the positive subset")
	}
}

func TestMeanMaxRatio(t *testing.T) {
	if Mean(nil) != 0 || Max(nil) != 0 {
		t.Error("empty aggregates should be 0")
	}
	if m := Mean([]float64{1, 2, 3}); m != 2 {
		t.Errorf("Mean = %v", m)
	}
	if m := Max([]float64{3, 1, 2}); m != 3 {
		t.Errorf("Max = %v", m)
	}
	if r := Ratio([]float64{2, 4}, []float64{1, 2}); r != 2 {
		t.Errorf("Ratio = %v", r)
	}
	if r := Ratio([]float64{2}, []float64{0}); r != 0 {
		t.Errorf("Ratio with zero denominator = %v", r)
	}
}
