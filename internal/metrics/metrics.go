// Package metrics provides the small statistics toolkit the benchmark
// harness uses to compare measured makespans and energies against the
// paper's complexity models: least-squares fits against model terms,
// goodness-of-fit, and log-log growth exponents.
package metrics

import (
	"errors"
	"math"
)

// FitLinear computes the least-squares coefficients x minimizing ‖F·x − y‖²
// where F's rows are feature vectors (model terms evaluated at each data
// point). It returns the coefficients and the R² of the fit. The system is
// solved by normal equations with Gaussian elimination and partial pivoting,
// adequate for the handful of terms the harness fits.
func FitLinear(features [][]float64, y []float64) ([]float64, float64, error) {
	n := len(features)
	if n == 0 || n != len(y) {
		return nil, 0, errors.New("metrics: feature/target size mismatch")
	}
	k := len(features[0])
	for _, row := range features {
		if len(row) != k {
			return nil, 0, errors.New("metrics: ragged feature matrix")
		}
	}
	if n < k {
		return nil, 0, errors.New("metrics: underdetermined system")
	}
	// Normal equations: (FᵀF) x = Fᵀ y.
	ftf := make([][]float64, k)
	fty := make([]float64, k)
	for i := 0; i < k; i++ {
		ftf[i] = make([]float64, k)
		for j := 0; j < k; j++ {
			var s float64
			for r := 0; r < n; r++ {
				s += features[r][i] * features[r][j]
			}
			ftf[i][j] = s
		}
		var s float64
		for r := 0; r < n; r++ {
			s += features[r][i] * y[r]
		}
		fty[i] = s
	}
	coef, err := solve(ftf, fty)
	if err != nil {
		return nil, 0, err
	}
	return coef, rSquared(features, y, coef), nil
}

// solve performs Gaussian elimination with partial pivoting on a copy of
// (a | b).
func solve(a [][]float64, b []float64) ([]float64, error) {
	k := len(a)
	m := make([][]float64, k)
	for i := range m {
		m[i] = append(append([]float64(nil), a[i]...), b[i])
	}
	for col := 0; col < k; col++ {
		pivot := col
		for r := col + 1; r < k; r++ {
			if math.Abs(m[r][col]) > math.Abs(m[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(m[pivot][col]) < 1e-12 {
			return nil, errors.New("metrics: singular system (collinear model terms)")
		}
		m[col], m[pivot] = m[pivot], m[col]
		for r := 0; r < k; r++ {
			if r == col {
				continue
			}
			f := m[r][col] / m[col][col]
			for c := col; c <= k; c++ {
				m[r][c] -= f * m[col][c]
			}
		}
	}
	x := make([]float64, k)
	for i := 0; i < k; i++ {
		x[i] = m[i][k] / m[i][i]
	}
	return x, nil
}

func rSquared(features [][]float64, y []float64, coef []float64) float64 {
	var mean float64
	for _, v := range y {
		mean += v
	}
	mean /= float64(len(y))
	var ssRes, ssTot float64
	for r := range y {
		var pred float64
		for c, x := range coef {
			pred += features[r][c] * x
		}
		d := y[r] - pred
		ssRes += d * d
		t := y[r] - mean
		ssTot += t * t
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// GrowthExponent estimates the exponent α in y ≈ c·x^α by least-squares on
// log-log data; pairs with non-positive coordinates are skipped. It returns
// NaN when fewer than two usable pairs remain.
func GrowthExponent(xs, ys []float64) float64 {
	var lx, ly []float64
	for i := range xs {
		if i < len(ys) && xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log(xs[i]))
			ly = append(ly, math.Log(ys[i]))
		}
	}
	if len(lx) < 2 {
		return math.NaN()
	}
	var sx, sy, sxx, sxy float64
	for i := range lx {
		sx += lx[i]
		sy += ly[i]
		sxx += lx[i] * lx[i]
		sxy += lx[i] * ly[i]
	}
	n := float64(len(lx))
	den := n*sxx - sx*sx
	if math.Abs(den) < 1e-12 {
		return math.NaN()
	}
	return (n*sxy - sx*sy) / den
}

// Mean returns the arithmetic mean (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Max returns the maximum (0 for empty input).
func Max(xs []float64) float64 {
	var m float64
	for i, v := range xs {
		if i == 0 || v > m {
			m = v
		}
	}
	return m
}

// Ratio returns element-wise ys[i]/xs[i] means, a quick "measured over
// model" summary used in EXPERIMENTS.md tables.
func Ratio(ys, xs []float64) float64 {
	var rs []float64
	for i := range ys {
		if i < len(xs) && xs[i] != 0 {
			rs = append(rs, ys[i]/xs[i])
		}
	}
	return Mean(rs)
}
