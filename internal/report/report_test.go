package report

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "name", "value", "ratio")
	tb.AddRow("alpha", 3.14159, 1.0)
	tb.AddRow("beta-long-name", 123456.0, 0.001)
	out := tb.String()
	if !strings.Contains(out, "## Demo") {
		t.Errorf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "beta-long-name") {
		t.Errorf("missing rows:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("unexpected line count %d:\n%s", len(lines), out)
	}
	// Alignment: header and separator have the same width.
	if len(lines[1]) != len(lines[2]) {
		t.Errorf("misaligned separator:\n%s", out)
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestFloatFormatting(t *testing.T) {
	if s := formatFloat(0); s != "0" {
		t.Errorf("0 -> %q", s)
	}
	if s := formatFloat(3.14159); s != "3.14" {
		t.Errorf("pi -> %q", s)
	}
	if s := formatFloat(123456); !strings.Contains(s, "e+") {
		t.Errorf("large -> %q", s)
	}
	if s := formatFloat(0.0001); !strings.Contains(s, "e-") {
		t.Errorf("small -> %q", s)
	}
}

// TestAddRowMixedTypes pins the AddRow formatting contract: sweeps append
// string label/summary rows into numeric columns (e.g. E1a's growth-exponent
// row), so every cell type must have a defined rendering.
func TestAddRowMixedTypes(t *testing.T) {
	tb := NewTable("Mixed", "rho", "ell", "n", "makespan")
	tb.AddRow(16.0, 1.0, 16, 21.5)
	// The E1a-style summary row: string label in a float column, empty
	// strings for unused columns, a float where an int usually lives.
	tb.AddRow("growth exponent in rho", "", "", 1.02)
	tb.AddRow(nil, true, float32(2.5), 3*time.Second) // nil, bool, float32, Stringer
	out := tb.String()
	for _, want := range []string{"growth exponent in rho", "1.02", "true", "2.50", "3s", "16"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "<nil>") {
		t.Errorf("nil cell leaked fmt fallback:\n%s", out)
	}
	if s := formatCell(nil); s != "" {
		t.Errorf("nil cell -> %q, want empty", s)
	}
}

// TestAddRowRagged pins the padding contract: short rows are padded to the
// header width, and rows longer than the header still render and export.
func TestAddRowRagged(t *testing.T) {
	tb := NewTable("Ragged", "a", "b", "c")
	tb.AddRow(1) // short: padded to 3 cells
	tb.AddRow(1, 2, 3, 4, 5)
	out := tb.String() // must not panic on the wide row
	if !strings.Contains(out, "5") {
		t.Errorf("extra cells dropped:\n%s", out)
	}
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if lines[1] != "1,," {
		t.Errorf("short row not padded in CSV: %q", lines[1])
	}
	if lines[2] != "1,2,3,4,5" {
		t.Errorf("wide row mangled in CSV: %q", lines[2])
	}
}

func TestFloatSpecialValues(t *testing.T) {
	if s := formatFloat(math.NaN()); s != "NaN" {
		t.Errorf("NaN -> %q", s)
	}
	if s := formatFloat(math.Inf(1)); !strings.Contains(s, "Inf") {
		t.Errorf("+Inf -> %q", s)
	}
}

func TestWriteCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(1, 2.5)
	tb.AddRow("x,y", "quote\"d")
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("csv header missing: %q", out)
	}
	if !strings.Contains(out, `"x,y"`) {
		t.Errorf("csv quoting broken: %q", out)
	}
}
