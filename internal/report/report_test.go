package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tb := NewTable("Demo", "name", "value", "ratio")
	tb.AddRow("alpha", 3.14159, 1.0)
	tb.AddRow("beta-long-name", 123456.0, 0.001)
	out := tb.String()
	if !strings.Contains(out, "## Demo") {
		t.Errorf("missing title:\n%s", out)
	}
	if !strings.Contains(out, "alpha") || !strings.Contains(out, "beta-long-name") {
		t.Errorf("missing rows:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Errorf("unexpected line count %d:\n%s", len(lines), out)
	}
	// Alignment: header and separator have the same width.
	if len(lines[1]) != len(lines[2]) {
		t.Errorf("misaligned separator:\n%s", out)
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestFloatFormatting(t *testing.T) {
	if s := formatFloat(0); s != "0" {
		t.Errorf("0 -> %q", s)
	}
	if s := formatFloat(3.14159); s != "3.14" {
		t.Errorf("pi -> %q", s)
	}
	if s := formatFloat(123456); !strings.Contains(s, "e+") {
		t.Errorf("large -> %q", s)
	}
	if s := formatFloat(0.0001); !strings.Contains(s, "e-") {
		t.Errorf("small -> %q", s)
	}
}

func TestWriteCSV(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(1, 2.5)
	tb.AddRow("x,y", "quote\"d")
	var b strings.Builder
	if err := tb.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("csv header missing: %q", out)
	}
	if !strings.Contains(out, `"x,y"`) {
		t.Errorf("csv quoting broken: %q", out)
	}
}
