// Package report renders the experiment harness's result tables as aligned
// ASCII (for terminals and EXPERIMENTS.md) and CSV (for downstream
// plotting).
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a simple column-ordered result table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row. Mixed-type rows are part of the contract — sweeps
// append summary/label rows (strings) into otherwise-numeric columns — so
// each cell is formatted by its own type:
//
//   - float64, float32: compact float formatting (fixed up to 2 decimals in
//     [0.01, 10000), scientific with 3 decimals outside; NaN/Inf spelled out)
//   - string: verbatim
//   - nil: empty cell
//   - fmt.Stringer: its String()
//   - anything else (ints, bools, ...): fmt's %v
//
// Rows shorter than the header are padded with empty cells so partial rows
// render and export with the full column count; longer rows are kept intact
// (Render and WriteCSV widen to the longest row).
func (t *Table) AddRow(cells ...interface{}) {
	n := len(cells)
	if n < len(t.Headers) {
		n = len(t.Headers)
	}
	row := make([]string, n)
	for i, c := range cells {
		row[i] = formatCell(c)
	}
	t.rows = append(t.rows, row)
}

func formatCell(c interface{}) string {
	switch v := c.(type) {
	case nil:
		return ""
	case float64:
		return formatFloat(v)
	case float32:
		return formatFloat(float64(v))
	case string:
		return v
	case fmt.Stringer:
		return v.String()
	default:
		return fmt.Sprintf("%v", v)
	}
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

func formatFloat(v float64) string {
	a := v
	if a < 0 {
		a = -a
	}
	switch {
	case v == 0:
		return "0"
	case a >= 10000 || a < 0.01:
		return strconv.FormatFloat(v, 'e', 3, 64)
	default:
		return strconv.FormatFloat(v, 'f', 2, 64)
	}
}

// Render writes the table as aligned ASCII. Column widths cover the longest
// row, so rows wider than the header render rather than panic.
func (t *Table) Render(w io.Writer) error {
	ncols := len(t.Headers)
	for _, row := range t.rows {
		if len(row) > ncols {
			ncols = len(row)
		}
	}
	widths := make([]int, ncols)
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for pad := len(c); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string, for tests and logs.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return fmt.Sprintf("report: render failed: %v", err)
	}
	return b.String()
}

// WriteCSV emits the table (headers + rows) as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return fmt.Errorf("report: csv header: %w", err)
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("report: csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
