// Package report renders the experiment harness's result tables as aligned
// ASCII (for terminals and EXPERIMENTS.md) and CSV (for downstream
// plotting).
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Table is a simple column-ordered result table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are formatted with %v, floats compactly.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = formatFloat(v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

func formatFloat(v float64) string {
	a := v
	if a < 0 {
		a = -a
	}
	switch {
	case v == 0:
		return "0"
	case a >= 10000 || a < 0.01:
		return strconv.FormatFloat(v, 'e', 3, 64)
	default:
		return strconv.FormatFloat(v, 'f', 2, 64)
	}
}

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "## %s\n", t.Title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for pad := len(c); pad < widths[i]; pad++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.rows {
		line(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string, for tests and logs.
func (t *Table) String() string {
	var b strings.Builder
	if err := t.Render(&b); err != nil {
		return fmt.Sprintf("report: render failed: %v", err)
	}
	return b.String()
}

// WriteCSV emits the table (headers + rows) as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Headers); err != nil {
		return fmt.Errorf("report: csv header: %w", err)
	}
	for _, row := range t.rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("report: csv row: %w", err)
		}
	}
	cw.Flush()
	return cw.Error()
}
