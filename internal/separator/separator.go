// Package separator implements the paper's geometric separators (§2.3).
//
// Given a square S of width R > 2ℓ, sep(S) is the annular region between S
// and the concentric square of width R−2ℓ. Lemma 3: any path of the ℓ-disk
// graph connecting a robot inside S to one outside contains a robot located
// in sep(S); Corollary 2: an empty separator splits the instance cleanly.
package separator

import (
	"freezetag/internal/geom"
)

// Sep describes the separator annulus of a square.
type Sep struct {
	Outer geom.Square
	Ell   float64
}

// Of returns the separator of square s for connectivity parameter ell.
// The paper requires s.Width > 2ℓ; narrower squares yield a separator that
// degenerates to the full square (inner region empty), which is still sound:
// membership only grows.
func Of(s geom.Square, ell float64) Sep { return Sep{Outer: s, Ell: ell} }

// Inner returns the inner square of width R−2ℓ (collapsed to width 0 when
// R ≤ 2ℓ).
func (sp Sep) Inner() geom.Square {
	w := sp.Outer.Width - 2*sp.Ell
	if w < 0 {
		w = 0
	}
	return geom.Sq(sp.Outer.Center, w)
}

// Contains reports whether p lies in the separator annulus: inside the outer
// square but not strictly inside the inner square.
func (sp Sep) Contains(p geom.Point) bool {
	if !sp.Outer.Contains(p) {
		return false
	}
	in := sp.Inner().Rect()
	// Strict interior of the inner square is excluded; its boundary belongs
	// to the separator.
	return !(p.X > in.Min.X+geom.Eps && p.X < in.Max.X-geom.Eps &&
		p.Y > in.Min.Y+geom.Eps && p.Y < in.Max.Y-geom.Eps)
}

// Filter returns the subset of pts lying in the separator, preserving order.
func (sp Sep) Filter(pts []geom.Point) []geom.Point {
	var out []geom.Point
	for _, p := range pts {
		if sp.Contains(p) {
			out = append(out, p)
		}
	}
	return out
}

// Rects decomposes the separator into four axis-parallel rectangles (top and
// bottom full-width strips plus left and right side strips), the shape the
// Exploration phase of ASeparator sweeps with Explore. For R ≤ 2ℓ it returns
// a single rectangle covering the whole square.
func (sp Sep) Rects() []geom.Rect {
	out := sp.Outer.Rect()
	in := sp.Inner().Rect()
	if sp.Inner().Width <= 0 {
		return []geom.Rect{out}
	}
	return []geom.Rect{
		{Min: geom.Pt(out.Min.X, in.Max.Y), Max: out.Max},                     // top strip
		{Min: out.Min, Max: geom.Pt(out.Max.X, in.Min.Y)},                     // bottom strip
		{Min: geom.Pt(out.Min.X, in.Min.Y), Max: geom.Pt(in.Min.X, in.Max.Y)}, // left side
		{Min: geom.Pt(in.Max.X, in.Min.Y), Max: geom.Pt(out.Max.X, in.Max.Y)}, // right side
	}
}

// SeparatesLemma3 verifies the Lemma 3 property on a concrete instance: for
// every edge (u,v) of the ℓ-disk graph over pts with u strictly inside the
// inner square and v outside the outer square (or vice versa), the edge is
// impossible — equivalently, every ℓ-path from inside to outside must stop
// in the annulus. The check returns false only if some pair violates it,
// i.e. some u inside and v outside are within ℓ with neither in sep(S).
// Used by the property test-suite.
func (sp Sep) SeparatesLemma3(pts []geom.Point) bool {
	inner := sp.Inner().Rect()
	for i, u := range pts {
		if !inner.Contains(u) || sp.Contains(u) {
			continue // u is not strictly interior
		}
		for j, v := range pts {
			if i == j || sp.Outer.Contains(v) {
				continue // v is not strictly exterior
			}
			if u.Dist(v) <= sp.Ell+geom.Eps {
				return false
			}
		}
	}
	return true
}
