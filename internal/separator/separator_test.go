package separator

import (
	"math"
	"math/rand"
	"testing"

	"freezetag/internal/geom"
)

func TestSepContains(t *testing.T) {
	sp := Of(geom.Sq(geom.Origin, 10), 1) // outer 10, inner 8
	cases := []struct {
		p    geom.Point
		want bool
	}{
		{geom.Pt(4.5, 0), true},   // in the annulus
		{geom.Pt(0, -4.5), true},  // annulus, south
		{geom.Pt(0, 0), false},    // deep inside
		{geom.Pt(3.9, 0), false},  // inside inner square
		{geom.Pt(6, 0), false},    // outside outer square
		{geom.Pt(4, 0), true},     // inner boundary belongs to separator
		{geom.Pt(5, 5), true},     // outer corner
		{geom.Pt(4.2, 4.2), true}, // annulus corner region
	}
	for _, c := range cases {
		if got := sp.Contains(c.p); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestSepDegenerate(t *testing.T) {
	// Width ≤ 2ℓ: the separator is the whole square.
	sp := Of(geom.Sq(geom.Origin, 2), 1.5)
	if sp.Inner().Width != 0 {
		t.Errorf("inner width = %v, want 0", sp.Inner().Width)
	}
	if !sp.Contains(geom.Origin) {
		t.Error("degenerate separator should contain the center")
	}
	rects := sp.Rects()
	if len(rects) != 1 {
		t.Fatalf("degenerate separator rects = %d", len(rects))
	}
}

func TestSepRectsTileAnnulus(t *testing.T) {
	sp := Of(geom.Sq(geom.Origin, 12), 2)
	rects := sp.Rects()
	if len(rects) != 4 {
		t.Fatalf("rects = %d, want 4", len(rects))
	}
	// Total area must equal the annulus area: 12² − 8² = 80.
	var area float64
	for _, r := range rects {
		area += r.Area()
	}
	if math.Abs(area-80) > 1e-9 {
		t.Errorf("rect areas sum to %v, want 80", area)
	}
	// Every random separator point is in some rect, and rects stay in the
	// annulus.
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 500; i++ {
		p := geom.Pt(rng.Float64()*12-6, rng.Float64()*12-6)
		inRects := false
		for _, r := range rects {
			if r.Contains(p) {
				inRects = true
				break
			}
		}
		if sp.Contains(p) != inRects {
			// Boundary points may legitimately differ by Eps; re-check with
			// a strict margin before failing.
			if distToAnnulusBoundary(sp, p) > 1e-6 {
				t.Fatalf("point %v: sep=%v rects=%v", p, sp.Contains(p), inRects)
			}
		}
	}
}

// distToAnnulusBoundary approximates how close p is to the annulus edges.
func distToAnnulusBoundary(sp Sep, p geom.Point) float64 {
	out := sp.Outer.Rect()
	in := sp.Inner().Rect()
	d := math.Abs(out.DistTo(p))
	for _, v := range []float64{
		math.Abs(p.X - out.Min.X), math.Abs(p.X - out.Max.X),
		math.Abs(p.Y - out.Min.Y), math.Abs(p.Y - out.Max.Y),
		math.Abs(p.X - in.Min.X), math.Abs(p.X - in.Max.X),
		math.Abs(p.Y - in.Min.Y), math.Abs(p.Y - in.Max.Y),
	} {
		if v < d {
			d = v
		}
	}
	return d
}

func TestFilter(t *testing.T) {
	sp := Of(geom.Sq(geom.Origin, 10), 1)
	pts := []geom.Point{geom.Pt(4.5, 0), geom.Pt(0, 0), geom.Pt(9, 9)}
	got := sp.Filter(pts)
	if len(got) != 1 || !got[0].Eq(geom.Pt(4.5, 0)) {
		t.Errorf("Filter = %v", got)
	}
}

// Lemma 3 property: on random ℓ-connected instances, any ℓ-edge from strictly
// inside the inner square to strictly outside the outer square cannot exist.
func TestLemma3Random(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 50; trial++ {
		ell := 0.5 + rng.Float64()*2
		width := 4*ell + rng.Float64()*10
		sp := Of(geom.Sq(geom.Origin, width), ell)
		n := 20 + rng.Intn(60)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Pt(rng.Float64()*2*width-width, rng.Float64()*2*width-width)
		}
		if !sp.SeparatesLemma3(pts) {
			t.Fatalf("trial %d: Lemma 3 violated (ℓ=%v width=%v)", trial, ell, width)
		}
	}
}

// Corollary 2 property: if no point lies in sep(S), then points are either
// all inside or all outside — for ℓ-connected point sets.
func TestCorollary2(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	for trial := 0; trial < 40; trial++ {
		// Build an ℓ-connected random walk.
		ell := 1.0
		n := 10 + rng.Intn(30)
		pts := make([]geom.Point, n)
		cur := geom.Origin
		for i := range pts {
			cur = cur.Add(geom.Pt(rng.Float64()*1.2-0.6, rng.Float64()*1.2-0.6))
			pts[i] = cur
		}
		width := 4 + rng.Float64()*10
		sp := Of(geom.Sq(geom.Origin, width), ell)
		if len(sp.Filter(pts)) > 0 {
			continue // separator occupied: Corollary 2 says nothing
		}
		inner := sp.Inner().Rect()
		in, outCount := 0, 0
		for _, p := range pts {
			if inner.Contains(p) {
				in++
			} else if !sp.Outer.Contains(p) {
				outCount++
			}
		}
		if in > 0 && outCount > 0 {
			t.Fatalf("trial %d: empty separator but points on both sides (%d in, %d out)",
				trial, in, outCount)
		}
	}
}
